(** Auxiliary-view derivation: which projections make a view
    self-maintainable.

    SWEEP probes a join partner for exactly the attributes the view query
    references anywhere — select list, local filters, join predicates
    (see {!Dyno_vm.Maint_query.needed_attrs}).  A projection of the
    partner onto that attribute set therefore answers every maintenance
    probe the view can ever issue, and because SPJ queries are linear
    over signed multisets, the count-summed projection joins to exactly
    the same result as the full relation.  [derive] reads the (current,
    possibly VS-rewritten) view definition and emits one such projection
    descriptor per joined table — the plan the {!Aux_store} materializes
    and keeps current from the delivered update stream. *)

open Dyno_relational

type aux_def = {
  source : string;  (** data source owning the projected relation *)
  rel : string;  (** relation name at the source *)
  alias : string;  (** the view alias the projection stands in for *)
  attrs : string list;
      (** needed attributes, in first-reference order — the probe columns *)
}

let pp_def ppf d =
  Fmt.pf ppf "%s = π[%s] %s.%s" d.alias
    (String.concat ", " d.attrs)
    d.source d.rel

(** [derive mv] — one projection per table the view joins, onto the
    attributes its maintenance probes need.  An invalidated view
    definition (the view is undefined after an unhandled drop) or an
    alias whose references cannot be resolved yields no descriptor: the
    store simply never covers it and maintenance falls back to probing. *)
let derive (mv : Dyno_view.Mat_view.t) : aux_def list =
  let vd = Dyno_view.Mat_view.def mv in
  if not (Dyno_view.View_def.is_valid vd) then []
  else
    let q = Dyno_view.View_def.peek vd in
    let schemas = Dyno_view.View_def.schemas vd in
    let owner = Dyno_vm.Maint_query.owner_of_schemas schemas in
    List.filter_map
      (fun (tr : Query.table_ref) ->
        match Dyno_vm.Maint_query.needed_attrs q owner tr.Query.alias with
        | [] -> None
        | attrs ->
            Some
              {
                source = tr.Query.source;
                rel = tr.Query.rel;
                alias = tr.Query.alias;
                attrs;
              }
        | exception Eval.Error _ -> None)
      (Query.from q)
