(** The auxiliary-view store: materialized probe-column projections kept
    current at the view manager, so most data updates are maintained with
    zero probe round trips.

    {b Contents invariant.}  A valid projection holds exactly
    [π_attrs (R₀ + Σ delivered DUs)] of its relation — the source's
    initial state plus every update the exactly-once sequencer has
    admitted into a UMQ, i.e. the relation at the per-source {e delivered
    frontier}.  The store is fed for free from the admitted stream (the
    updates already ride the wire for the UMQ): each admitted DU's delta
    is projected and applied in place before the scheduler ever sees the
    entry.  This is precisely the state a SWEEP probe would observe
    {e after} compensation, so the local path in
    {!Dyno_vm.Sweep.delta_view_local} subtracts all pending unmaintained
    updates (no answer-time cutoff) and lands on the identical view
    delta.

    {b Invalidation.}  A schema change invalidates every projection of
    its source the moment it is admitted: the projected columns may be
    renamed or dropped, and the view definition itself is about to be
    rewritten by VS/VA.  Projections of a source stay invalid while
    {e any} schema change of that source is still queued (an eager
    re-seed could answer locally where the baseline would probe into the
    conflict and abort); once the queue holds none, [sync] re-derives the
    source's descriptors from the — by then rewritten — view definition
    and re-seeds them from the memoized source snapshot at the delivered
    frontier.  Snapshots at the frontier are exact and exclude committed
    but undelivered updates, which neither the probed-then-compensated
    path nor the local path may see. *)

open Dyno_relational
module Obs = Dyno_obs.Obs
module Metrics = Dyno_obs.Metrics
open Dyno_view

type proj = {
  def : Aux_plan.aux_def;
  mutable data : Relation.t option;  (** [None] = invalidated *)
}

type t = {
  obs : Dyno_obs.Obs.t;
  lookup : source:string -> rel:string -> version:int -> Relation.t option;
  view : string;  (** view name, for the per-view coverage gauge *)
  refresh_cost : delta_tuples:int -> float;
  frontier : (string, int) Hashtbl.t;
      (** per-source delivered frontier: highest admitted source version *)
  mutable projs : proj list;
  mutable dirty : bool;  (** any projection invalid — [sync] has work *)
  mutable probes_avoided : int;
  mutable bytes_saved : int;
  mutable invalidations : int;  (** projections invalidated by SCs *)
}

let probes_avoided t = t.probes_avoided
let bytes_saved t = t.bytes_saved
let invalidations t = t.invalidations

let coverage t =
  match t.projs with
  | [] -> 0.0
  | ps ->
      let valid =
        List.fold_left
          (fun n p -> if p.data = None then n else n + 1)
          0 ps
      in
      float_of_int valid /. float_of_int (List.length ps)

let gauge_coverage t =
  Metrics.set_gauge (Obs.metrics t.obs)
    (Fmt.str "selfmaint.%s.coverage" t.view)
    (coverage t)

let delivered_frontier t source =
  Option.value (Hashtbl.find_opt t.frontier source) ~default:0

(* Seed (or re-seed) one projection from the source snapshot at the
   delivered frontier.  A missing source, out-of-range version or a
   projected attribute absent from the snapshot schema leaves the
   projection invalid — maintenance falls back to probing. *)
let seed t (def : Aux_plan.aux_def) =
  let version = delivered_frontier t def.Aux_plan.source in
  let data =
    match
      t.lookup ~source:def.Aux_plan.source ~rel:def.Aux_plan.rel ~version
    with
    | None -> None
    | Some r ->
        let s = Relation.schema r in
        if List.for_all (Schema.mem s) def.Aux_plan.attrs then
          Some (Relation.project r def.Aux_plan.attrs)
        else None
  in
  { def; data }

let create ~obs ~lookup ~frontier ~refresh_cost (mv : Mat_view.t) =
  let defs = Aux_plan.derive mv in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Aux_plan.aux_def) ->
      if not (Hashtbl.mem tbl d.Aux_plan.source) then
        Hashtbl.replace tbl d.Aux_plan.source (frontier d.Aux_plan.source))
    defs;
  let t =
    {
      obs;
      lookup;
      view = View_def.name (Mat_view.def mv);
      refresh_cost;
      frontier = tbl;
      projs = [];
      dirty = false;
      probes_avoided = 0;
      bytes_saved = 0;
      invalidations = 0;
    }
  in
  t.projs <- List.map (seed t) defs;
  t.dirty <- List.exists (fun p -> p.data = None) t.projs;
  gauge_coverage t;
  t

let invalidate t p =
  if p.data <> None then begin
    p.data <- None;
    t.invalidations <- t.invalidations + 1;
    Metrics.incr (Obs.metrics t.obs) "selfmaint.invalidations"
  end;
  t.dirty <- true

(* The admit hook: called once per message the exactly-once sequencer
   admits into a UMQ (post-dedup, in per-source order), before the
   scheduler sees the entry. *)
let on_message t (m : Update_msg.t) =
  let src = Update_msg.source m in
  (if Hashtbl.mem t.frontier src then
     let prev = delivered_frontier t src in
     Hashtbl.replace t.frontier src (max prev (Update_msg.source_version m)));
  match Update_msg.payload m with
  | Update_msg.Sc _ ->
      let touched = ref false in
      List.iter
        (fun p ->
          if String.equal p.def.Aux_plan.source src then begin
            invalidate t p;
            touched := true
          end)
        t.projs;
      if !touched then gauge_coverage t
  | Update_msg.Du u ->
      let rel = Update.rel u in
      List.iter
        (fun p ->
          if
            String.equal p.def.Aux_plan.source src
            && String.equal p.def.Aux_plan.rel rel
          then
            match p.data with
            | None -> ()
            | Some d -> (
                let delta = Update.delta u in
                let s = Relation.schema delta in
                if not (List.for_all (Schema.mem s) p.def.Aux_plan.attrs)
                then invalidate t p
                else
                  let pd = Relation.project delta p.def.Aux_plan.attrs in
                  match Relation.apply_delta_in_place d pd with
                  | () ->
                      (* The refresh rides the delivered update — no wire
                         cost, no clock charge; its estimated local cost
                         is observed so the saving is auditable. *)
                      let mx = Obs.metrics t.obs in
                      Metrics.incr mx "selfmaint.aux_refresh";
                      Metrics.observe mx "selfmaint.aux_refresh_s"
                        (t.refresh_cost ~delta_tuples:(Relation.mass pd))
                  | exception Invalid_argument _ ->
                      (* Negative residue: the delta stream does not match
                         the seeded state (should not happen under the
                         exactly-once sequencer) — drop to the probed
                         path rather than serve wrong answers. *)
                      invalidate t p))
        t.projs

(* Re-derive and re-seed the projections of every invalidated source that
   no longer has a schema change queued.  Cheap no-op unless an SC
   invalidated something since the last call. *)
let sync t (mv : Mat_view.t) ~(sc_queued : string -> bool) =
  if t.dirty then begin
    let dirty_sources =
      List.sort_uniq String.compare
        (List.filter_map
           (fun p ->
             if p.data = None then Some p.def.Aux_plan.source else None)
           t.projs)
    in
    let cleared = List.filter (fun s -> not (sc_queued s)) dirty_sources in
    if cleared <> [] then begin
      let defs = Aux_plan.derive mv in
      List.iter
        (fun src ->
          let keep =
            List.filter
              (fun p -> not (String.equal p.def.Aux_plan.source src))
              t.projs
          in
          let fresh =
            List.filter_map
              (fun (d : Aux_plan.aux_def) ->
                if String.equal d.Aux_plan.source src then Some (seed t d)
                else None)
              defs
          in
          t.projs <- keep @ fresh)
        cleared;
      t.dirty <- List.exists (fun p -> p.data = None) t.projs;
      gauge_coverage t
    end
  end

let aux t alias =
  List.find_map
    (fun p ->
      if String.equal p.def.Aux_plan.alias alias then p.data else None)
    t.projs

let local t : Dyno_vm.Sweep.local =
  {
    Dyno_vm.Sweep.aux = (fun alias -> aux t alias);
    note_avoided =
      (fun ~probes ~bytes ->
        t.probes_avoided <- t.probes_avoided + probes;
        t.bytes_saved <- t.bytes_saved + bytes;
        let mx = Obs.metrics t.obs in
        Metrics.incr mx ~by:probes "selfmaint.probes_avoided";
        Metrics.incr mx ~by:bytes "selfmaint.bytes_saved");
  }
