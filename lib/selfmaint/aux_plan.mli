(** Auxiliary-view derivation: the projections that make a view
    self-maintainable.  One descriptor per joined table, onto exactly the
    attributes the view's maintenance probes reference
    ({!Dyno_vm.Maint_query.needed_attrs}); SPJ linearity over signed
    multisets guarantees the count-summed projection answers every probe
    with the same result as the full relation. *)

type aux_def = {
  source : string;  (** data source owning the projected relation *)
  rel : string;  (** relation name at the source *)
  alias : string;  (** the view alias the projection stands in for *)
  attrs : string list;
      (** needed attributes, in first-reference order — the probe columns *)
}

val pp_def : Format.formatter -> aux_def -> unit

val derive : Dyno_view.Mat_view.t -> aux_def list
(** [derive mv] — one projection descriptor per table the (current,
    possibly rewritten) view definition joins.  An invalidated view or an
    unresolvable alias yields no descriptor, so maintenance falls back to
    probing rather than trusting a stale plan. *)
