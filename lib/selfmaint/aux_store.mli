(** The auxiliary-view store: materialized probe-column projections kept
    current at the view manager from the delivered update stream, so most
    data updates are maintained locally with zero probe round trips.

    A valid projection holds [π_attrs (R₀ + Σ delivered DUs)] — the
    relation at the source's {e delivered frontier} — which is exactly
    the state a SWEEP probe observes after compensation; the local path
    in {!Dyno_vm.Sweep.delta_view_local} therefore computes the identical
    view delta.  A schema change invalidates every projection of its
    source on admission; the projections stay invalid while any SC of the
    source remains queued and are re-derived (from the rewritten view
    definition) and re-seeded at the frontier by {!sync} once it clears. *)

open Dyno_view

type t

val create :
  obs:Dyno_obs.Obs.t ->
  lookup:
    (source:string ->
    rel:string ->
    version:int ->
    Dyno_relational.Relation.t option) ->
  frontier:(string -> int) ->
  refresh_cost:(delta_tuples:int -> float) ->
  Mat_view.t ->
  t
(** [create ~obs ~lookup ~frontier ~refresh_cost mv] derives the view's
    projections ({!Aux_plan.derive}) and seeds each from
    [lookup ~source ~rel ~version] at the per-source delivered frontier
    ([frontier source] — the highest already-admitted source version, 0
    for none).  [lookup] must return the {e exact} historical relation at
    that version (not the live state, which may contain committed but
    undelivered updates); returning [None] leaves the projection invalid
    and maintenance on the probed path.  [refresh_cost] prices an
    incremental refresh for the [selfmaint.aux_refresh_s] metric — the
    refreshes ride delivered updates and are never charged on the
    clock. *)

val on_message : t -> Update_msg.t -> unit
(** The admit hook ({!Query_engine.add_admit_hook}): advances the
    source's delivered frontier; a DU's delta refreshes the matching
    valid projections in place, an SC invalidates every projection of its
    source. *)

val sync : t -> Mat_view.t -> sc_queued:(string -> bool) -> unit
(** Re-derive (from the current, possibly rewritten, view definition) and
    re-seed the projections of every invalidated source for which
    [sc_queued source] is false.  Sources with a schema change still
    queued stay invalid — an eager re-seed could answer locally where the
    baseline would probe into the conflict and abort.  Cheap no-op when
    nothing is invalid; call it once per scheduler iteration. *)

val aux : t -> string -> Dyno_relational.Relation.t option
(** Current auxiliary data for a view alias, [None] if uncovered or
    invalidated. *)

val local : t -> Dyno_vm.Sweep.local
(** The closure pair the maintenance layer consumes: {!aux} plus the
    avoided-probe accounting ([selfmaint.probes_avoided],
    [selfmaint.bytes_saved] and the store's counters). *)

val probes_avoided : t -> int
val bytes_saved : t -> int

val invalidations : t -> int
(** Projections invalidated by schema changes since creation. *)

val coverage : t -> float
(** Fraction of derived projections currently valid, in [0, 1] (0 when
    the view derives none). *)
