(** Maintenance of schema changes and of merged update batches (Section 5).

    A batch node holds cyclically-dependent updates — data updates and
    schema changes, possibly from several sources — that must be processed
    in one atomic maintenance step.  The pipeline is:

    + {b preprocess} — per relation, fold the schema changes into one net
      {!Dyno_relational.Schema_change.Delta} ("rename A to B" then "rename
      B to C" combines to "rename A to C") and re-project the interleaved
      data updates into the final schema so they merge into one homogeneous
      delta ("insert (3,4)", "drop first attribute", "insert (5)" →
      "insert (4),(5)");
    + {b synchronize} — rewrite the view definition once for the combined
      schema changes (producing e.g. the paper's Query (5) for the cyclic
      SC1/SC2 example);
    + {b adapt} — bring the extent in line: incrementally via Equation 6
      when the rewriting preserved the view's output schema, otherwise by
      compensated re-materialization.

    A single schema-change message is maintained as a singleton batch. *)

open Dyno_relational
open Dyno_view

type outcome =
  | Adapted  (** maintenance succeeded; view definition + extent updated *)
  | Aborted of Dyno_source.Data_source.broken
      (** an adaptation query broke (type (4) anomaly); the in-memory view
          definition has been rolled back *)
  | Unreachable of Dyno_net.Retry.unreachable
      (** an adaptation query exhausted its transport retry budget; the
          in-memory rewrite has been rolled back so the step can be re-run
          cleanly once the source recovers — transient, no correction *)
  | View_undefined of string
      (** synchronization found no rewriting; the view is invalid *)

(* ------------------------------------------------------------------ *)
(* Preprocessing (Section 5, step 1)                                   *)
(* ------------------------------------------------------------------ *)

type prep = {
  scs : Schema_change.t list;  (** all schema changes, in commit order *)
  du_deltas : (string * string * Relation.t) list;
      (** (source, relation name {e after} all changes, merged delta
          re-projected into the final schema) *)
  dropped_du_tuples : int;
      (** data-update tuples discarded because their relation was dropped *)
}

(** [preprocess msgs] runs the per-source, per-relation combination step.
    Data updates are carried forward through each subsequent schema change
    on their relation via {!Schema_change.Delta.project_delta}. *)
let preprocess (msgs : Update_msg.t list) : prep =
  (* (source, current rel name) -> (current schema, accumulated delta) *)
  let accum : (string * string, Schema.t * Relation.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let dropped = ref 0 in
  let scs = ref [] in
  List.iter
    (fun m ->
      match Update_msg.payload m with
      | Update_msg.Du u ->
          let key = (Update.source u, Update.rel u) in
          let schema = Update.schema u in
          let cur =
            match Hashtbl.find_opt accum key with
            | Some (s, acc) ->
                if not (Schema.equal s schema) then
                  (* Should not happen: an intervening SC re-keys the
                     entry and re-projects; a mismatch means the source
                     emitted an inconsistent delta. *)
                  invalid_arg
                    (Fmt.str "batch: delta schema mismatch on %s" (snd key))
                else Relation.sum acc (Update.delta u)
            | None -> Relation.copy (Update.delta u)
          in
          Hashtbl.replace accum key (schema, cur)
      | Update_msg.Sc sc -> (
          scs := sc :: !scs;
          let source = Schema_change.source sc in
          let key = (source, Schema_change.rel sc) in
          match Hashtbl.find_opt accum key with
          | None -> ()
          | Some (schema, acc) -> (
              Hashtbl.remove accum key;
              let step =
                Schema_change.Delta.of_changes ~source
                  ~rel:(Schema_change.rel sc) schema [ sc ]
              in
              if Schema_change.Delta.dropped_relation step then
                dropped := !dropped + Relation.mass acc
              else
                let acc' = Schema_change.Delta.project_delta step schema acc in
                let new_name =
                  match step.Schema_change.Delta.new_rel with
                  | Some n -> n
                  | None -> assert false
                in
                let schema' = Schema_change.Delta.apply_schema step schema in
                match Hashtbl.find_opt accum (source, new_name) with
                | None -> Hashtbl.replace accum (source, new_name) (schema', acc')
                | Some (s2, acc2) ->
                    (* A rename landed on a name that already accumulates
                       deltas (rename swap games); merge if compatible. *)
                    if Schema.equal s2 schema' then
                      Hashtbl.replace accum (source, new_name)
                        (s2, Relation.sum acc2 acc')
                    else
                      invalid_arg
                        (Fmt.str "batch: rename collision on %s" new_name))))
    msgs;
  {
    scs = List.rev !scs;
    du_deltas =
      Hashtbl.fold (fun (src, rel) (_, d) acc -> (src, rel, d) :: acc) accum [];
    dropped_du_tuples = !dropped;
  }

(* ------------------------------------------------------------------ *)
(* Shape comparison: is the rewritten view delta-compatible?           *)
(* ------------------------------------------------------------------ *)

(** The Equation 6 refresh path applies only when the rewritten definition
    kept the same aliases and the same output schema — true for pure
    renames and pure data batches, false as soon as an attribute was
    dropped from the select list or a relation replaced. *)
let same_shape ~old_query ~old_schemas ~new_query ~new_schemas =
  try
    List.equal String.equal (Query.aliases old_query) (Query.aliases new_query)
    && Schema.equal
         (Dyno_vm.Maint_query.view_output_schema old_query old_schemas)
         (Dyno_vm.Maint_query.view_output_schema new_query new_schemas)
    && List.for_all2
         (fun (a : Query.table_ref) (b : Query.table_ref) ->
           String.equal a.source b.source)
         (Query.from old_query) (Query.from new_query)
  with _ -> false

(* ------------------------------------------------------------------ *)
(* The maintenance process M(SC) / M(batch)                            *)
(* ------------------------------------------------------------------ *)

(** [maintain w mv mk msgs] runs the full maintenance process for a batch
    (or singleton schema change): r(VD) w(VD) r(DS₁)…r(DSₙ) w(MV) c(MV).
    On a broken adaptation query the in-memory view definition rewrite is
    rolled back (the paper's footnote 1: the physical rewrite only happens
    at w(MV)) so the process can be cleanly re-run after correction. *)
let rec maintain ?(applied = []) (w : Query_engine.t) (mv : Mat_view.t)
    (mk : Dyno_source.Meta_knowledge.t) (msgs : Update_msg.t list) : outcome =
  let sp = Dyno_obs.Obs.spans (Query_engine.obs w) in
  let now () = Query_engine.now w in
  Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Batch
    (Fmt.str "batch of %d" (List.length msgs))
    (fun batch_id ->
      let outcome = maintain_unspanned ~applied w mv mk msgs in
      Dyno_obs.Span.set_attr sp batch_id "msgs"
        (string_of_int (List.length msgs));
      Dyno_obs.Span.set_attr sp batch_id "outcome"
        (match outcome with
        | Adapted -> "adapted"
        | Aborted _ -> "aborted"
        | Unreachable _ -> "unreachable"
        | View_undefined _ -> "view-undefined");
      outcome)

and maintain_unspanned ~applied (w : Query_engine.t) (mv : Mat_view.t)
    (mk : Dyno_source.Meta_knowledge.t) (msgs : Update_msg.t list) : outcome =
  let vd = Mat_view.def mv in
  let saved = View_def.save vd in
  let saved_mk = Dyno_source.Meta_knowledge.save mk in
  let old_query, _ = View_def.read vd in
  let old_schemas = View_def.schemas vd in
  let ids = List.map Update_msg.id msgs in
  let exclude_ids = ids @ applied in
  let prep = preprocess msgs in
  let trace = Query_engine.trace w in
  if prep.dropped_du_tuples > 0 then
    Dyno_sim.Trace.recordf trace ~time:(Query_engine.now w) Dyno_sim.Trace.Info
      "batch: %d DU tuple(s) absorbed by a relation drop"
      prep.dropped_du_tuples;
  (* Step 2: one synchronization for the combined schema changes. *)
  match
    Dyno_vs.Synchronizer.sync_many mk
      (Query_engine.registry w)
      ~query:old_query ~schemas:old_schemas prep.scs
  with
  | exception Dyno_vs.Synchronizer.Failed reason ->
      Dyno_obs.Span.with_span
        (Dyno_obs.Obs.spans (Query_engine.obs w))
        ~now:(fun () -> Query_engine.now w)
        Dyno_obs.Span.Vs "sync (failed)"
        (fun _ ->
          Query_engine.advance w
            (Dyno_sim.Cost_model.synchronize (Query_engine.cost w)));
      View_def.invalidate vd;
      Dyno_sim.Trace.recordf trace ~time:(Query_engine.now w)
        Dyno_sim.Trace.Sync "view %s is now UNDEFINED: %s"
        (Query.name old_query) reason;
      View_undefined reason
  | sync ->
      if prep.scs <> [] then
        Dyno_obs.Span.with_span
          (Dyno_obs.Obs.spans (Query_engine.obs w))
          ~now:(fun () -> Query_engine.now w)
          Dyno_obs.Span.Vs
          (Fmt.str "sync %d SC(s)" (List.length prep.scs))
          (fun _ ->
            Query_engine.advance w
              (float_of_int (List.length prep.scs)
              *. Dyno_sim.Cost_model.synchronize (Query_engine.cost w));
            View_def.write vd ~schemas:sync.Dyno_vs.Synchronizer.schemas
              sync.Dyno_vs.Synchronizer.query;
            List.iter
              (fun a ->
                Dyno_sim.Trace.recordf trace ~time:(Query_engine.now w)
                  Dyno_sim.Trace.Sync "%a" Dyno_vs.Synchronizer.pp_action a)
              sync.Dyno_vs.Synchronizer.actions);
      let new_query = View_def.peek vd in
      let new_schemas = View_def.schemas vd in
      (* Fast path: the batch leaves the view definition untouched and
         carries no data (schema changes on relations the view does not
         read).  Acknowledge without adaptation. *)
      if
        prep.du_deltas = [] && new_query = old_query
        && new_schemas = old_schemas
      then begin
        Mat_view.record_commit mv ~at:(Query_engine.now w) ~maintained:ids;
        Adapted
      end
      else
      (* Step 3: adapt. *)
      let result =
        let sp = Dyno_obs.Obs.spans (Query_engine.obs w) in
        let t0 = Query_engine.now w in
        let r =
          if
            same_shape ~old_query ~old_schemas ~new_query ~new_schemas
          then
            Dyno_obs.Span.with_span sp
              ~now:(fun () -> Query_engine.now w)
              Dyno_obs.Span.Va "adapt (equation 6)"
              (fun _ ->
                let batch_deltas =
                  List.filter_map
                    (fun (tr : Query.table_ref) ->
                      List.find_map
                        (fun (src, rel, d) ->
                          if
                            String.equal src tr.source
                            && String.equal rel tr.rel
                            && not (Relation.is_empty d)
                          then Some (tr.alias, d)
                          else None)
                        prep.du_deltas)
                    (Query.from new_query)
                in
                Adapt.refresh_with_equation6 w mv ~maintained:ids
                  ~batch_deltas ~exclude:exclude_ids)
          else
            Dyno_obs.Span.with_span sp
              ~now:(fun () -> Query_engine.now w)
              Dyno_obs.Span.Va "adapt (re-materialize)"
              (fun _ ->
                Adapt.replace_extent w mv ~maintained:ids
                  ~exclude:exclude_ids)
        in
        Dyno_obs.Metrics.observe
          (Dyno_obs.Obs.metrics (Query_engine.obs w))
          "batch.adapt_s"
          (Query_engine.now w -. t0);
        r
      in
      (match result with
      | Ok () -> Adapted
      | Error f ->
          View_def.restore vd saved;
          Dyno_source.Meta_knowledge.restore mk saved_mk;
          (match f with
          | Query_engine.Broken b -> Aborted b
          | Query_engine.Unreachable u -> Unreachable u))
