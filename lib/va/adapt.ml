(** View Adaptation (VA): bringing the materialized extent in line with a
    (possibly rewritten) view definition.

    Two mechanisms:

    - {!equation6} — the incremental delta of Section 5:
      [ΔV = ΔR₁ ⋈ R₂ ⋈ … ⋈ Rₙ + R₁ⁿᵉʷ ⋈ ΔR₂ ⋈ R₃ ⋈ … + … +
      R₁ⁿᵉʷ ⋈ … ⋈ Rₙ₋₁ⁿᵉʷ ⋈ ΔRₙ], evaluated over signed multisets so
      insertions and deletions ride in one pass;
    - {!fetch_compensated} / {!replace_extent} — re-reading the (filtered)
      source relations through maintenance queries, compensating away
      pending unmaintained data updates, and rebuilding the extent; used
      when the rewriting changed the view's shape so no delta against the
      old extent exists.

    Both go through {!Dyno_view.Query_engine}, so concurrent schema changes
    can break adaptation queries too — that is the type (4) anomaly (SC
    conflicting with M(SC)), and its abort is the expensive one in the
    paper's Figure 9. *)

open Dyno_relational
open Dyno_view

(** [equation6 ~old_env ~new_env query] computes
    [eval query new_env − eval query old_env] incrementally, term by term.
    [old_env]/[new_env] bind every alias of [query] to its old/new state;
    the delta of each alias is derived as [new − old].  Aliases whose delta
    is empty contribute no term (their join work is skipped), which is what
    makes the batch maintenance of a few changed relations cheap. *)
let equation6 ?(planner : Eval.plan = `Indexed)
    ~(old_env : (string * Relation.t) list)
    ~(new_env : (string * Relation.t) list) (query : Query.t) : Relation.t =
  let aliases = Query.aliases query in
  let get env alias =
    match List.assoc_opt alias env with
    | Some r -> r
    | None -> raise (Eval.Error (Fmt.str "equation6: alias %s unbound" alias))
  in
  let deltas =
    List.map
      (fun a -> (a, Relation.diff (get new_env a) (get old_env a)))
      aliases
  in
  let terms =
    List.mapi
      (fun i (alias_i, delta_i) ->
        if Relation.is_empty delta_i then None
        else
          Some
            (List.mapi
               (fun j alias_j ->
                 if j < i then (alias_j, get new_env alias_j)
                 else if j = i then (alias_i, delta_i)
                 else (alias_j, get old_env alias_j))
               aliases))
      deltas
  in
  List.fold_left
    (fun acc term ->
      match term with
      | None -> acc
      | Some env -> (
          let dv = Eval.run ~planner ~catalog:(Eval.catalog env) query in
          match acc with
          | None -> Some dv
          | Some a -> Some (Relation.sum a dv)))
    None terms
  |> function
  | Some dv -> dv
  | None ->
      (* No alias changed: the delta is empty with the view's schema. *)
      Eval.run ~planner
        ~catalog:(Eval.catalog (List.map (fun a -> (a, Relation.create (Relation.schema (get new_env a))))
           aliases))
        query

(** [fetch_compensated w ~query ~schemas tr ~exclude] reads table [tr]'s
    current (filtered, projected) extent through a maintenance query and
    compensates away every pending unmaintained DU on it except those in
    [exclude] (the ids being maintained right now, whose effects {e must}
    stay in).  Returns the compensated relation. *)
let fetch_compensated ?(extra_cost = 0.0) (w : Query_engine.t)
    ~(query : Query.t) ~(schemas : (string * Schema.t) list)
    (tr : Query.table_ref) ~(exclude : int list) :
    (Relation.t, Query_engine.failure) result =
  let owner = Dyno_vm.Maint_query.owner_of_schemas schemas in
  let fq = Dyno_vm.Maint_query.fetch_query query owner tr in
  match Query_engine.execute w fq ~bound:[] ~target:tr.Query.source with
  | Error b -> Error b
  | Ok ans -> (
      (* Read the pending set at the same commit frontier the answer was
         computed at — BEFORE charging further work, which would deliver
         newer commits that the answer cannot contain. *)
      let pending =
        List.filter
          (fun (m, _) -> not (List.mem (Update_msg.id m) exclude))
          (Query_engine.pending_dus w ~source:tr.Query.source ~rel:tr.Query.rel)
      in
      (* Adaptation joins each fetched relation in as it arrives; charge
         that incremental work now so that an abort mid-adaptation carries
         a realistic sunk cost (the expensive abort of Figure 9). *)
      Query_engine.advance w
        (((Query_engine.cost w).Dyno_sim.Cost_model.va_per_tuple
         *. Dyno_sim.Cost_model.rows (Query_engine.cost w)
              ans.Dyno_source.Data_source.scanned)
        +. extra_cost);
      (* Group by schema and compensate each group in one evaluation
         (SPJ linearity over signed multisets). *)
      let groups =
        List.fold_left
          (fun acc (_, u) ->
            let s = Update.schema u in
            let rec insert = function
              | [] -> [ (s, Relation.copy (Update.delta u)) ]
              | (s', d) :: rest when Schema.equal s s' ->
                  (s', Relation.sum d (Update.delta u)) :: rest
              | g :: rest -> g :: insert rest
            in
            insert acc)
          [] pending
      in
      try
        Ok
          (List.fold_left
             (fun acc (_, combined) ->
               let contribution =
                 Eval.run
                   ~planner:(Query_engine.planner w)
                   ~catalog:(Eval.catalog [ (tr.Query.alias, combined) ]) fq
               in
               Relation.diff acc contribution)
             ans.Dyno_source.Data_source.rows groups)
      with Eval.Error reason ->
        Error
          (Query_engine.Broken
             {
               Dyno_source.Data_source.source = tr.Query.source;
               query_name = Query.name fq;
               reason = Fmt.str "adaptation compensation failed: %s" reason;
             }))

(** [fetch_all w ~query ~schemas ~exclude] fetches every view relation,
    compensated; stops at the first broken probe. *)
let fetch_all ?(extra_per_fetch = 0.0) w ~query ~schemas ~exclude :
    ((string * Relation.t) list, Query_engine.failure) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tr :: rest -> (
        match
          fetch_compensated ~extra_cost:extra_per_fetch w ~query ~schemas tr
            ~exclude
        with
        | Error b -> Error b
        | Ok r -> go ((tr.Query.alias, r) :: acc) rest)
  in
  go [] (Query.from query)

(** [validated_tail w ~query ~schemas ~tail_cost] — the back half of an
    adaptation: the remaining local work ([tail_cost] simulated seconds,
    e.g. the extent rebuild at the view server) interleaved with
    lightweight metadata {e validation probes} to every source the view
    reads.  An Equation-6 style adaptation touches the sources repeatedly
    until it commits, so a schema change landing anywhere in the window is
    detected (in-exec) before w(MV) — this is what makes late aborts both
    possible and expensive, as in Figures 9–11. *)
let validated_tail (w : Query_engine.t) ~(query : Query.t)
    ~(schemas : (string * Schema.t) list) ~(tail_cost : float) :
    (unit, Query_engine.failure) result =
  let owner = Dyno_vm.Maint_query.owner_of_schemas schemas in
  let waves = 4 in
  let chunk = tail_cost /. float_of_int waves in
  let rec wave k =
    if k > waves then Ok ()
    else begin
      Query_engine.advance w chunk;
      let rec check = function
        | [] -> wave (k + 1)
        | (tr : Query.table_ref) :: rest -> (
            let fq = Dyno_vm.Maint_query.fetch_query query owner tr in
            match Query_engine.validate w fq ~target:tr.Query.source with
            | Ok () -> check rest
            | Error b -> Error b)
      in
      check (Query.from query)
    end
  in
  wave 1

(** [replace_extent w mv ~maintained ~exclude] rebuilds the view extent
    from compensated source reads against the current (rewritten)
    definition, charging adaptation cost, and commits.  The view changed
    shape, so the view server deletes and reinserts the whole extent —
    which is why this path (e.g. a dropped attribute) costs well above a
    rename. *)
let replace_extent (w : Query_engine.t) (mv : Mat_view.t)
    ~(maintained : int list) ~(exclude : int list) :
    (unit, Query_engine.failure) result =
  let vd = Mat_view.def mv in
  let query, _ = View_def.read vd in
  let schemas = View_def.schemas vd in
  match fetch_all w ~query ~schemas ~exclude with
  | Error b -> Error b
  | Ok env -> (
      let extent =
        Eval.run
          ~planner:(Query_engine.planner w)
          ~catalog:(Eval.catalog env) query
      in
      let tail_cost =
        Dyno_sim.Cost_model.adapt (Query_engine.cost w) ~scanned:0
          ~written:(Relation.support extent)
        +. Dyno_sim.Cost_model.rebuild (Query_engine.cost w)
             ~written:(Relation.support extent)
      in
      match validated_tail w ~query ~schemas ~tail_cost with
      | Error b -> Error b
      | Ok () ->
          Mat_view.replace mv ~at:(Query_engine.now w) ~maintained extent;
          Dyno_sim.Trace.recordf (Query_engine.trace w)
            ~time:(Query_engine.now w) Dyno_sim.Trace.Adapt
            "view %s re-materialized: %d tuples" (Query.name query)
            (Relation.cardinality extent);
          Ok ())

(** [refresh_with_equation6 w mv ~maintained ~batch_deltas ~exclude]
    adapts incrementally: fetches compensated new states, reconstructs the
    old states by subtracting the batch's own accumulated deltas
    ([batch_deltas] : alias → ΔRᵢ, already projected to the current
    schema), runs {!equation6} and refreshes the extent in place.  Only
    valid when the rewriting preserved the view's output schema (renames
    and pure data batches). *)
let refresh_with_equation6 (w : Query_engine.t) (mv : Mat_view.t)
    ~(maintained : int list) ~(batch_deltas : (string * Relation.t) list)
    ~(exclude : int list) : (unit, Query_engine.failure) result =
  let vd = Mat_view.def mv in
  let query, _ = View_def.read vd in
  let schemas = View_def.schemas vd in
  match fetch_all w ~query ~schemas ~exclude with
  | Error b -> Error b
  | Ok new_env ->
      let owner = Dyno_vm.Maint_query.owner_of_schemas schemas in
      let old_env =
        List.map
          (fun (alias, new_r) ->
            match List.assoc_opt alias batch_deltas with
            | None -> (alias, new_r)
            | Some d ->
                (* The fetched state is filtered/projected; express the
                   delta the same way before subtracting. *)
                let tr =
                  List.find
                    (fun (t : Query.table_ref) -> String.equal t.alias alias)
                    (Query.from query)
                in
                let fq = Dyno_vm.Maint_query.fetch_query query owner tr in
                let d' =
                  Eval.run
                    ~planner:(Query_engine.planner w)
                    ~catalog:(Eval.catalog [ (alias, d) ]) fq
                in
                (alias, Relation.diff new_r d'))
          new_env
      in
      let dv =
        equation6 ~planner:(Query_engine.planner w) ~old_env ~new_env query
      in
      (* Per-fetch join work already charged in [fetch_compensated]. *)
      let tail_cost =
        Dyno_sim.Cost_model.adapt (Query_engine.cost w) ~scanned:0
          ~written:(Relation.mass dv)
      in
      match validated_tail w ~query ~schemas ~tail_cost with
      | Error b -> Error b
      | Ok () ->
          Mat_view.refresh mv ~at:(Query_engine.now w) ~maintained dv;
          Dyno_sim.Trace.recordf (Query_engine.trace w)
            ~time:(Query_engine.now w) Dyno_sim.Trace.Adapt
            "view %s += %d tuple(s) via Equation 6" (Query.name query)
            (Relation.mass dv);
          Ok ()
