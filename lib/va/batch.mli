(** Maintenance of schema changes and merged update batches (Section 5):
    preprocess (combine schema changes, re-project and merge interleaved
    data updates), synchronize once for the combined changes, then adapt —
    incrementally via Equation 6 when the rewriting preserved the view's
    output shape, otherwise by compensated re-materialization.  A single
    schema change is maintained as a singleton batch. *)

open Dyno_relational
open Dyno_view

type outcome =
  | Adapted  (** view definition + extent updated and committed *)
  | Aborted of Dyno_source.Data_source.broken
      (** an adaptation query broke (type (4) anomaly); the in-memory view
          definition and meta-knowledge re-keying have been rolled back *)
  | Unreachable of Dyno_net.Retry.unreachable
      (** an adaptation query exhausted its transport retry budget; rolled
          back like an abort but transient — re-run after recovery, no
          correction *)
  | View_undefined of string
      (** synchronization found no rewriting; the view is invalid *)

type prep = {
  scs : Schema_change.t list;  (** all schema changes, in commit order *)
  du_deltas : (string * string * Relation.t) list;
      (** (source, relation name {e after} all changes, merged delta
          re-projected into the final schema) *)
  dropped_du_tuples : int;
      (** data-update tuples discarded because their relation was dropped *)
}

val preprocess : Update_msg.t list -> prep
(** The per-source, per-relation combination step: data updates are
    carried forward through each subsequent schema change on their
    relation ("insert (3,4)", "drop first attribute", "insert (5)" →
    "insert (4),(5)"). *)

val same_shape :
  old_query:Query.t ->
  old_schemas:(string * Schema.t) list ->
  new_query:Query.t ->
  new_schemas:(string * Schema.t) list ->
  bool
(** Is the rewritten view delta-compatible with the old extent?  True for
    pure renames and pure data batches; false once an attribute left the
    select list or a relation was replaced. *)

val maintain :
  ?applied:int list ->
  Query_engine.t ->
  Mat_view.t ->
  Dyno_source.Meta_knowledge.t ->
  Update_msg.t list ->
  outcome
(** The full maintenance process for a batch:
    [r(VD) w(VD) r(DS₁) … r(DSₙ) w(MV) c(MV)].  [applied] lists queued
    message ids this view has already integrated (multi-view mode), kept
    out of compensation. *)
