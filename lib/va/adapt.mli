(** View Adaptation (VA): bringing the materialized extent in line with a
    (possibly rewritten) view definition — the incremental Equation 6 of
    Section 5, compensated source re-reads, and shape-changing
    re-materialization.  All source access goes through the query engine,
    so concurrent schema changes can break adaptation too (the type (4)
    anomaly, whose abort is the expensive one in Figure 9). *)

open Dyno_relational
open Dyno_view

val equation6 :
  ?planner:Eval.plan ->
  old_env:(string * Relation.t) list ->
  new_env:(string * Relation.t) list ->
  Query.t ->
  Relation.t
(** [ΔV = ΔR₁ ⋈ R₂ ⋈ … ⋈ Rₙ + R₁ⁿᵉʷ ⋈ ΔR₂ ⋈ … + … +
    R₁ⁿᵉʷ ⋈ … ⋈ ΔRₙ] over signed multisets; equals
    [eval query new_env − eval query old_env].  Aliases whose delta is
    empty contribute no term.  [planner] (default [`Indexed]) picks the
    physical plan each term is evaluated with. *)

val fetch_compensated :
  ?extra_cost:float ->
  Query_engine.t ->
  query:Query.t ->
  schemas:(string * Schema.t) list ->
  Query.table_ref ->
  exclude:int list ->
  (Relation.t, Query_engine.failure) result
(** Read one table's current (filtered, projected) extent through a
    maintenance query, compensating away every pending unmaintained DU on
    it except the ids in [exclude] (being maintained right now, whose
    effects must stay in).  [extra_cost] simulated seconds are charged
    after the probe (pipelined adaptation work). *)

val fetch_all :
  ?extra_per_fetch:float ->
  Query_engine.t ->
  query:Query.t ->
  schemas:(string * Schema.t) list ->
  exclude:int list ->
  ((string * Relation.t) list, Query_engine.failure) result
(** Fetch every view relation, compensated; stops at the first broken
    probe. *)

val validated_tail :
  Query_engine.t ->
  query:Query.t ->
  schemas:(string * Schema.t) list ->
  tail_cost:float ->
  (unit, Query_engine.failure) result
(** The back half of an adaptation: the remaining local work interleaved
    with metadata validation probes to every source, so a schema change
    landing anywhere in the maintenance window is detected before w(MV). *)

val replace_extent :
  Query_engine.t ->
  Mat_view.t ->
  maintained:int list ->
  exclude:int list ->
  (unit, Query_engine.failure) result
(** Rebuild the extent from compensated reads against the current
    (rewritten) definition — the shape-changing path, charged with the
    full extent rebuild. *)

val refresh_with_equation6 :
  Query_engine.t ->
  Mat_view.t ->
  maintained:int list ->
  batch_deltas:(string * Relation.t) list ->
  exclude:int list ->
  (unit, Query_engine.failure) result
(** Adapt incrementally: fetch compensated new states, reconstruct old
    states by subtracting the batch's own deltas, run {!equation6}, and
    refresh in place.  Only valid when the rewriting preserved the view's
    output schema. *)
