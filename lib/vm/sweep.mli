(** The SWEEP compensation algorithm (Agrawal et al., SIGMOD'97), adapted
    to the Dyno framework: maintenance of a delta sweeps outwards from its
    relation, shipping the partial result with each probe; the effects of
    pending unmaintained data updates are removed from each answer locally
    (no locking, no extra round trips).  A probe that fails on a
    concurrent schema change surfaces as [Error (Broken _)] — the in-exec
    detection signal; one that exhausts its transport retry budget as
    [Error (Unreachable _)]. *)

open Dyno_relational
open Dyno_view

type stats = {
  probes : int;  (** maintenance queries sent *)
  compensations : int;  (** probe answers that needed compensation *)
  comp_tuples : int;  (** tuples removed/added by compensation *)
  probes_avoided : int;
      (** probes answered locally from auxiliary views (self-maintenance) *)
  bytes_saved : int;
      (** estimated wire bytes those avoided probes would have shipped *)
}

val no_stats : stats

(** The hooks the self-maintenance tier ({!Dyno_selfmaint.Aux_store})
    hands down: per-alias current auxiliary data plus avoided-probe
    accounting.  A closure record so this library stays free of a
    dependency on the store. *)
type local = {
  aux : string -> Relation.t option;
      (** current auxiliary data for a view alias — [None] when the alias
          is uncovered or its projection is invalidated/stale *)
  note_avoided : probes:int -> bytes:int -> unit;
      (** accounting callback, called once per successful local sweep *)
}

val delta_view :
  ?compensate:bool ->
  Query_engine.t ->
  view_query:Query.t ->
  schemas:(string * Schema.t) list ->
  pivot:Query.table_ref ->
  delta:Relation.t ->
  exclude:int list ->
  (Relation.t * stats, Query_engine.failure) result
(** [delta_view w ~view_query ~schemas ~pivot ~delta ~exclude] computes
    the view delta for [delta] against alias [pivot].  [schemas] are the
    view manager's believed alias schemas; [exclude] lists message ids
    whose effects must stay in the probe answers: the message being
    maintained (never compensated against itself) plus, in multi-view
    mode, every queued update this view has already applied. *)

type local_input
(** A local sweep captured at dispatch: the view query, pivot delta,
    auxiliary snapshots and pre-grouped pending compensation deltas —
    everything {!compute_local} needs, with no reference back to the
    engine.  Relations inside are never mutated after capture, so the
    value may be shipped to a worker domain. *)

val prepare_local :
  Query_engine.t ->
  view_query:Query.t ->
  schemas:(string * Schema.t) list ->
  pivot:Query.table_ref ->
  delta:Relation.t ->
  exclude:int list ->
  local:local ->
  local_input option
(** Coordinator-only phase of the local sweep: checks that every swept
    alias has current auxiliary data covering its needed attributes and
    captures the inputs.  [None] means the coverage check failed — the
    caller falls back to the probed path. *)

val compute_local : local_input -> (Relation.t * stats) option
(** Pure compute phase: the sweep itself — per-alias local probe answers
    and compensation by [Eval.run] over the captured snapshot.  Touches
    no engine, observability or simulated-clock state, so it is safe to
    evaluate on a worker domain ({!Dyno_sim.Domain_pool}).  [None] means
    a local evaluation failed and the probed path must decide. *)

val record_local :
  Query_engine.t -> local:local -> local_input -> Relation.t * stats -> unit
(** Coordinator-side bookkeeping for a successful {!compute_local}
    result: the {!Dyno_obs.Span.Local} span, avoided-probe accounting
    callback and lineage note the inline path emits.  The multicore
    scheduler calls this while harvesting worker results; the ambient
    lineage scope must already name the maintained update. *)

val delta_view_local :
  Query_engine.t ->
  view_query:Query.t ->
  schemas:(string * Schema.t) list ->
  pivot:Query.table_ref ->
  delta:Relation.t ->
  exclude:int list ->
  local:local ->
  (Relation.t * stats) option
(** The self-maintenance path: the same sweep as {!delta_view}, with
    every probe answered locally by evaluating over the auxiliary
    projection of the probed alias — zero round trips, recorded under a
    {!Dyno_obs.Span.Local} span and not charged on the simulated clock.
    Compensation subtracts {e all} pending unmaintained updates (no
    answer-time cutoff: valid auxiliary data reflects every delivered
    commit, which is exactly a probe answer after compensation, so the
    computed view delta is identical).  Returns [None] — caller falls
    back to the probed path — when any swept alias lacks current covering
    auxiliary data or a local evaluation fails.  Equivalent to
    {!prepare_local} + {!compute_local} + the inline bookkeeping. *)
