(** The SWEEP compensation algorithm (Agrawal et al., SIGMOD'97), adapted
    to the Dyno framework: maintenance of a delta sweeps outwards from its
    relation, shipping the partial result with each probe; the effects of
    pending unmaintained data updates are removed from each answer locally
    (no locking, no extra round trips).  A probe that fails on a
    concurrent schema change surfaces as [Error (Broken _)] — the in-exec
    detection signal; one that exhausts its transport retry budget as
    [Error (Unreachable _)]. *)

open Dyno_relational
open Dyno_view

type stats = {
  probes : int;  (** maintenance queries sent *)
  compensations : int;  (** probe answers that needed compensation *)
  comp_tuples : int;  (** tuples removed/added by compensation *)
}

val no_stats : stats

val delta_view :
  ?compensate:bool ->
  Query_engine.t ->
  view_query:Query.t ->
  schemas:(string * Schema.t) list ->
  pivot:Query.table_ref ->
  delta:Relation.t ->
  exclude:int list ->
  (Relation.t * stats, Query_engine.failure) result
(** [delta_view w ~view_query ~schemas ~pivot ~delta ~exclude] computes
    the view delta for [delta] against alias [pivot].  [schemas] are the
    view manager's believed alias schemas; [exclude] lists message ids
    whose effects must stay in the probe answers: the message being
    maintained (never compensated against itself) plus, in multi-view
    mode, every queued update this view has already applied. *)
