(** The SWEEP compensation algorithm (Agrawal et al., SIGMOD'97), adapted
    to the Dyno framework.

    Maintenance of a data update [Δ] at view alias [A] computes the view
    delta [ΔV = R_1 ⋈ … ⋈ Δ ⋈ … ⋈ R_n] by sweeping outwards from [A]:
    the partial result is shipped with a probe query to each remaining
    relation's source in turn.  Because sources answer against their
    {e current} state, a probe's answer may include the effects of data
    updates committed after [Δ] but not yet maintained (the duplication
    anomaly, type (1)/(2)).  SWEEP removes those effects {e locally} at the
    view manager: for every pending unmaintained DU [δ] on the probed
    relation, it subtracts [δ ⋈ partial] (computed with the same probe
    query) from the answer.  No locking, no extra round trips.

    A probe that fails due to a concurrent schema change surfaces as
    [Error (Broken _)] — the in-exec detection signal consumed by the Dyno
    scheduler; compensation cannot help there (Section 3.2).  A probe that
    exhausts its transport retry budget surfaces as
    [Error (Unreachable _)] — a transient stall, retried by the scheduler
    without aborting. *)

open Dyno_relational
open Dyno_view

type stats = {
  probes : int;  (** maintenance queries sent *)
  compensations : int;  (** probe answers that needed compensation *)
  comp_tuples : int;  (** tuples removed/added by compensation *)
}

let no_stats = { probes = 0; compensations = 0; comp_tuples = 0 }

(** [delta_view w ~view_query ~schemas ~pivot ~delta ~exclude] computes the
    view delta for update [delta] against relation alias [pivot].

    [schemas] are the alias schemas the view manager believes (last
    synchronization); [exclude] is the id of the update message being
    maintained (it must not compensate against itself).

    Returns [Ok (delta_view, stats)], or [Error _] when any probe hits a
    schema conflict or exhausts its transport retry budget. *)
let delta_view ?(compensate = true) (w : Query_engine.t)
    ~(view_query : Query.t) ~(schemas : (string * Schema.t) list)
    ~(pivot : Query.table_ref) ~(delta : Relation.t) ~(exclude : int list) :
    (Relation.t * stats, Query_engine.failure) result =
  let owner = Maint_query.owner_of_schemas schemas in
  let partial = ref (Maint_query.initial_partial view_query owner pivot delta) in
  let bound = ref [ pivot.Query.alias ] in
  let stats = ref no_stats in
  let trace = Query_engine.trace w in
  let exception Failed of Query_engine.failure in
  try
    if Relation.is_empty !partial then
      (* The delta is filtered out locally; nothing joins, no probes needed. *)
      Ok
        ( Relation.create (Maint_query.view_output_schema view_query schemas),
          !stats )
    else begin
      List.iter
        (fun (tr : Query.table_ref) ->
          let probe =
            Maint_query.probe_query view_query owner tr
              ~partial_schema:(Relation.schema !partial)
              ~bound:!bound
          in
          let answer, answered_at =
            match
              Query_engine.execute_timed w probe
                ~bound:[ (Maint_query.partial_alias, !partial) ]
                ~target:tr.Query.source
            with
            | Ok (a, at) -> (a.Dyno_source.Data_source.rows, at)
            | Error f -> raise (Failed f)
          in
          stats := { !stats with probes = !stats.probes + 1 };
          (* Compensation: remove the contribution of every pending,
             unmaintained DU on the probed relation.  SPJ queries are
             linear in each input over signed multisets, so all pending
             deltas with a common schema are summed and compensated in one
             evaluation.  The frontier is the instant the source computed
             the answer: under concurrent maintenance other tasks may have
             delivered commits while this task parked on the result
             transfer, and those later updates are not in the answer, so
             they must not be compensated away.  (Serially the filter is
             a no-op: every pending update arrived — hence committed —
             before the answer.) *)
          let pending =
            if not compensate then []
            else
              List.filter
                (fun (m, _) ->
                  (not (List.mem (Update_msg.id m) exclude))
                  && Update_msg.commit_time m <= answered_at +. 1e-12)
                (Query_engine.pending_dus w ~source:tr.Query.source
                   ~rel:tr.Query.rel)
          in
          let groups =
            (* Partition by delta schema (pending updates straddling an
               unmaintained schema change carry different schemas). *)
            List.fold_left
              (fun acc (m, u) ->
                let s = Update.schema u in
                let rec insert = function
                  | [] -> [ (s, Relation.copy (Update.delta u), [ m ]) ]
                  | (s', d, ms) :: rest when Schema.equal s s' ->
                      (s', Relation.sum d (Update.delta u), m :: ms) :: rest
                  | g :: rest -> g :: insert rest
                in
                insert acc)
              [] pending
          in
          let compensated =
            List.fold_left
              (fun acc (_, combined, ms) ->
                match
                  Eval.run
                    ~planner:(Query_engine.planner w)
                    ~catalog:(Eval.catalog [
                      (tr.Query.alias, combined);
                      (Maint_query.partial_alias, !partial);
                    ])
                    probe
                with
                | contribution ->
                    if Relation.is_empty contribution then acc
                    else begin
                      stats :=
                        {
                          !stats with
                          compensations = !stats.compensations + 1;
                          comp_tuples =
                            !stats.comp_tuples + Relation.mass contribution;
                        };
                      Dyno_sim.Trace.recordf trace
                        ~time:(Query_engine.now w) Dyno_sim.Trace.Compensate
                        "removed %d tuple(s) of %d pending update(s) from \
                         probe %s"
                        (Relation.mass contribution)
                        (List.length ms) (Query.name probe);
                      (* Compensation is local view-manager work, not
                         charged on the clock: a zero-duration span marks
                         where it happened inside the enclosing probe. *)
                      let sp = Dyno_obs.Obs.spans (Query_engine.obs w) in
                      let sid =
                        Dyno_obs.Span.begin_span sp
                          ~time:(Query_engine.now w)
                          Dyno_obs.Span.Compensate (Query.name probe)
                      in
                      Dyno_obs.Span.set_attr sp sid "tuples"
                        (string_of_int (Relation.mass contribution));
                      Dyno_obs.Span.end_span sp ~time:(Query_engine.now w)
                        sid;
                      Dyno_obs.Metrics.incr
                        (Dyno_obs.Obs.metrics (Query_engine.obs w))
                        ~by:(Relation.mass contribution)
                        "sweep.comp_tuples";
                      Relation.diff acc contribution
                    end
                | exception Eval.Error reason ->
                    (* The pending updates are expressed against a schema
                       the probe cannot see — a schema conflict is in
                       flight; treat the probe as broken (conservative,
                       sound). *)
                    raise
                      (Failed
                         (Query_engine.Broken
                            {
                              Dyno_source.Data_source.source =
                                tr.Query.source;
                              query_name = Query.name probe;
                              reason =
                                Fmt.str "compensation impossible: %s" reason;
                            })))
              answer groups
          in
          partial := compensated;
          bound := tr.Query.alias :: !bound)
        (Maint_query.sweep_order view_query pivot.Query.alias);
      Ok (Maint_query.final_projection view_query owner !partial, !stats)
    end
  with Failed f -> Error f
