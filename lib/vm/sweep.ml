(** The SWEEP compensation algorithm (Agrawal et al., SIGMOD'97), adapted
    to the Dyno framework.

    Maintenance of a data update [Δ] at view alias [A] computes the view
    delta [ΔV = R_1 ⋈ … ⋈ Δ ⋈ … ⋈ R_n] by sweeping outwards from [A]:
    the partial result is shipped with a probe query to each remaining
    relation's source in turn.  Because sources answer against their
    {e current} state, a probe's answer may include the effects of data
    updates committed after [Δ] but not yet maintained (the duplication
    anomaly, type (1)/(2)).  SWEEP removes those effects {e locally} at the
    view manager: for every pending unmaintained DU [δ] on the probed
    relation, it subtracts [δ ⋈ partial] (computed with the same probe
    query) from the answer.  No locking, no extra round trips.

    A probe that fails due to a concurrent schema change surfaces as
    [Error (Broken _)] — the in-exec detection signal consumed by the Dyno
    scheduler; compensation cannot help there (Section 3.2).  A probe that
    exhausts its transport retry budget surfaces as
    [Error (Unreachable _)] — a transient stall, retried by the scheduler
    without aborting. *)

open Dyno_relational
open Dyno_view

type stats = {
  probes : int;  (** maintenance queries sent *)
  compensations : int;  (** probe answers that needed compensation *)
  comp_tuples : int;  (** tuples removed/added by compensation *)
  probes_avoided : int;
      (** probes answered locally from auxiliary views (self-maintenance) *)
  bytes_saved : int;
      (** estimated wire bytes those avoided probes would have shipped *)
}

let no_stats =
  {
    probes = 0;
    compensations = 0;
    comp_tuples = 0;
    probes_avoided = 0;
    bytes_saved = 0;
  }

(** The hooks the self-maintenance tier ({!Dyno_selfmaint.Aux_store})
    hands down: per-alias current auxiliary data plus avoided-probe
    accounting.  Kept as a closure record so this library stays free of a
    dependency on the store. *)
type local = {
  aux : string -> Relation.t option;
      (** current auxiliary data for a view alias — [None] when the alias
          is uncovered or its projection is invalidated/stale *)
  note_avoided : probes:int -> bytes:int -> unit;
      (** accounting callback, called once per successful local sweep *)
}

(** [delta_view w ~view_query ~schemas ~pivot ~delta ~exclude] computes the
    view delta for update [delta] against relation alias [pivot].

    [schemas] are the alias schemas the view manager believes (last
    synchronization); [exclude] is the id of the update message being
    maintained (it must not compensate against itself).

    Returns [Ok (delta_view, stats)], or [Error _] when any probe hits a
    schema conflict or exhausts its transport retry budget. *)
let delta_view ?(compensate = true) (w : Query_engine.t)
    ~(view_query : Query.t) ~(schemas : (string * Schema.t) list)
    ~(pivot : Query.table_ref) ~(delta : Relation.t) ~(exclude : int list) :
    (Relation.t * stats, Query_engine.failure) result =
  let owner = Maint_query.owner_of_schemas schemas in
  let partial = ref (Maint_query.initial_partial view_query owner pivot delta) in
  let bound = ref [ pivot.Query.alias ] in
  let stats = ref no_stats in
  let trace = Query_engine.trace w in
  let exception Failed of Query_engine.failure in
  try
    if Relation.is_empty !partial then
      (* The delta is filtered out locally; nothing joins, no probes needed. *)
      Ok
        ( Relation.create (Maint_query.view_output_schema view_query schemas),
          !stats )
    else begin
      List.iter
        (fun (tr : Query.table_ref) ->
          let probe =
            Maint_query.probe_query view_query owner tr
              ~partial_schema:(Relation.schema !partial)
              ~bound:!bound
          in
          let answer, answered_at =
            match
              Query_engine.execute_timed w probe
                ~bound:[ (Maint_query.partial_alias, !partial) ]
                ~target:tr.Query.source
            with
            | Ok (a, at) -> (a.Dyno_source.Data_source.rows, at)
            | Error f -> raise (Failed f)
          in
          stats := { !stats with probes = !stats.probes + 1 };
          (* Compensation: remove the contribution of every pending,
             unmaintained DU on the probed relation.  SPJ queries are
             linear in each input over signed multisets, so all pending
             deltas with a common schema are summed and compensated in one
             evaluation.  The frontier is the instant the source computed
             the answer: under concurrent maintenance other tasks may have
             delivered commits while this task parked on the result
             transfer, and those later updates are not in the answer, so
             they must not be compensated away.  (Serially the filter is
             a no-op: every pending update arrived — hence committed —
             before the answer.) *)
          let pending =
            if not compensate then []
            else
              List.filter
                (fun (m, _) ->
                  (not (List.mem (Update_msg.id m) exclude))
                  && Update_msg.commit_time m <= answered_at +. 1e-12)
                (Query_engine.pending_dus w ~source:tr.Query.source
                   ~rel:tr.Query.rel)
          in
          let groups =
            (* Partition by delta schema (pending updates straddling an
               unmaintained schema change carry different schemas). *)
            List.fold_left
              (fun acc (m, u) ->
                let s = Update.schema u in
                let rec insert = function
                  | [] -> [ (s, Relation.copy (Update.delta u), [ m ]) ]
                  | (s', d, ms) :: rest when Schema.equal s s' ->
                      (s', Relation.sum d (Update.delta u), m :: ms) :: rest
                  | g :: rest -> g :: insert rest
                in
                insert acc)
              [] pending
          in
          let compensated =
            List.fold_left
              (fun acc (_, combined, ms) ->
                match
                  Eval.run
                    ~planner:(Query_engine.planner w)
                    ~catalog:(Eval.catalog [
                      (tr.Query.alias, combined);
                      (Maint_query.partial_alias, !partial);
                    ])
                    probe
                with
                | contribution ->
                    if Relation.is_empty contribution then acc
                    else begin
                      stats :=
                        {
                          !stats with
                          compensations = !stats.compensations + 1;
                          comp_tuples =
                            !stats.comp_tuples + Relation.mass contribution;
                        };
                      Dyno_sim.Trace.recordf trace
                        ~time:(Query_engine.now w) Dyno_sim.Trace.Compensate
                        "removed %d tuple(s) of %d pending update(s) from \
                         probe %s"
                        (Relation.mass contribution)
                        (List.length ms) (Query.name probe);
                      (* Compensation is local view-manager work, not
                         charged on the clock: a zero-duration span marks
                         where it happened inside the enclosing probe. *)
                      let sp = Dyno_obs.Obs.spans (Query_engine.obs w) in
                      let sid =
                        Dyno_obs.Span.begin_span sp
                          ~time:(Query_engine.now w)
                          Dyno_obs.Span.Compensate (Query.name probe)
                      in
                      Dyno_obs.Span.set_attr sp sid "tuples"
                        (string_of_int (Relation.mass contribution));
                      Dyno_obs.Span.end_span sp ~time:(Query_engine.now w)
                        sid;
                      Dyno_obs.Metrics.incr
                        (Dyno_obs.Obs.metrics (Query_engine.obs w))
                        ~by:(Relation.mass contribution)
                        "sweep.comp_tuples";
                      Relation.diff acc contribution
                    end
                | exception Eval.Error reason ->
                    (* The pending updates are expressed against a schema
                       the probe cannot see — a schema conflict is in
                       flight; treat the probe as broken (conservative,
                       sound). *)
                    raise
                      (Failed
                         (Query_engine.Broken
                            {
                              Dyno_source.Data_source.source =
                                tr.Query.source;
                              query_name = Query.name probe;
                              reason =
                                Fmt.str "compensation impossible: %s" reason;
                            })))
              answer groups
          in
          partial := compensated;
          bound := tr.Query.alias :: !bound)
        (Maint_query.sweep_order view_query pivot.Query.alias);
      Ok (Maint_query.final_projection view_query owner !partial, !stats)
    end
  with Failed f -> Error f

(* [delta_view_local w ~view_query ~schemas ~pivot ~delta ~exclude
    ~local] — the self-maintenance path: the same sweep as {!delta_view},
    but every probe is answered by [Eval.run] over the auxiliary
    projection of the probed alias instead of a round trip through
    {!Query_engine.execute_timed}.  Returns [None] whenever any swept
    alias lacks current auxiliary data covering its needed attributes, or
    any local evaluation fails (e.g. pending deltas straddling a schema
    drift) — the caller then falls back to the probed path unchanged.

    Correctness: a valid projection holds the relation at the source's
    delivered frontier (initial state + every delivered DU), which is
    exactly what a probe answer looks like {e after} compensation.  So
    compensation here subtracts {e all} pending unmaintained updates on
    the probed relation — no answer-time cutoff: the local join happens
    "now", after every delivered commit.  The local path never parks, so
    no delivery can interleave mid-sweep even under parallel rounds.

    The work is local view-manager computation and is not charged on the
    simulated clock (same bargain as compensation); a {!Dyno_obs.Span.Local}
    span marks it so reports can split local vs probed cost. *)
(** The local sweep is split into a {e prepare} phase (coordinator-only:
    reads the engine's auxiliary data and pending queues) and a pure
    {e compute} phase over the captured snapshot.  The inline simulated
    path composes them back to back; the multicore runtime prepares every
    round member on the coordinator, ships the captured inputs to worker
    domains, and replays the bookkeeping ({!record_local}) when the
    results come home.  The split is sound because the local path never
    parks: between prepare and compute no delivery, commit or clock
    movement can change what the sweep would read. *)
type local_input = {
  in_query : Query.t;
  in_schemas : (string * Schema.t) list;
  in_pivot : Query.table_ref;
  in_planner : Eval.plan;
  in_partial0 : Relation.t;  (** initial partial (pivot ⋈ delta, filtered) *)
  in_auxes : (Query.table_ref * Relation.t * Relation.t list) list;
      (** per swept alias: (table ref, auxiliary data, pending-DU deltas
          pre-grouped by schema and summed — already filtered by the
          exclusion set) *)
}

let prepare_local (w : Query_engine.t) ~(view_query : Query.t)
    ~(schemas : (string * Schema.t) list) ~(pivot : Query.table_ref)
    ~(delta : Relation.t) ~(exclude : int list) ~(local : local) :
    local_input option =
  try
    let owner = Maint_query.owner_of_schemas schemas in
    let order = Maint_query.sweep_order view_query pivot.Query.alias in
    (* Coverage check up front: every non-pivot alias must have current
       auxiliary data carrying all the attributes its probe needs (the
       projection may legitimately carry more — counts sum out). *)
    let auxes =
      List.map
        (fun (tr : Query.table_ref) ->
          match local.aux tr.Query.alias with
          | None -> raise Exit
          | Some r ->
              let s = Relation.schema r in
              let needed =
                Maint_query.needed_attrs view_query owner tr.Query.alias
              in
              if needed = [] || not (List.for_all (Schema.mem s) needed)
              then raise Exit;
              (* Pending unmaintained DUs on the probed relation — all of
                 them, no answer-time cutoff: the auxiliary data already
                 reflects every delivered commit.  Partitioned by delta
                 schema (updates straddling an unmaintained schema change
                 carry different schemas) and summed per group — SPJ
                 queries are linear in each input over signed multisets. *)
              let pending =
                List.filter
                  (fun (m, _) -> not (List.mem (Update_msg.id m) exclude))
                  (Query_engine.pending_dus w ~source:tr.Query.source
                     ~rel:tr.Query.rel)
              in
              let groups =
                List.fold_left
                  (fun acc (_, u) ->
                    let s = Update.schema u in
                    let rec insert = function
                      | [] -> [ (s, Relation.copy (Update.delta u)) ]
                      | (s', d) :: rest when Schema.equal s s' ->
                          (s', Relation.sum d (Update.delta u)) :: rest
                      | g :: rest -> g :: insert rest
                    in
                    insert acc)
                  [] pending
              in
              (tr, r, List.map snd groups))
        order
    in
    Some
      {
        in_query = view_query;
        in_schemas = schemas;
        in_pivot = pivot;
        in_planner = Query_engine.planner w;
        in_partial0 =
          Maint_query.initial_partial view_query owner pivot delta;
        in_auxes = auxes;
      }
  with Exit | Maint_query.Unsupported _ -> None

let compute_local (i : local_input) : (Relation.t * stats) option =
  try
    let owner = Maint_query.owner_of_schemas i.in_schemas in
    let partial = ref i.in_partial0 in
    if Relation.is_empty !partial then
      (* Filtered out locally — the probed path sends no probes either. *)
      Some
        ( Relation.create
            (Maint_query.view_output_schema i.in_query i.in_schemas),
          no_stats )
    else begin
      let bound = ref [ i.in_pivot.Query.alias ] in
      let stats = ref no_stats in
      List.iter
        (fun ((tr : Query.table_ref), aux_data, combineds) ->
          let probe =
            Maint_query.probe_query i.in_query owner tr
              ~partial_schema:(Relation.schema !partial)
              ~bound:!bound
          in
          let answer =
            Eval.run ~planner:i.in_planner
              ~catalog:
                (Eval.catalog
                   [
                     (tr.Query.alias, aux_data);
                     (Maint_query.partial_alias, !partial);
                   ])
              probe
          in
          (* Wire-cost estimate for the round trip this replaced: the
             partial shipped out plus the answer shipped back, 8 bytes a
             field. *)
          let est r =
            8 * Relation.support r
            * List.length (Schema.attrs (Relation.schema r))
          in
          stats :=
            {
              !stats with
              probes_avoided = !stats.probes_avoided + 1;
              bytes_saved = !stats.bytes_saved + est !partial + est answer;
            };
          let compensated =
            List.fold_left
              (fun acc combined ->
                let contribution =
                  Eval.run ~planner:i.in_planner
                    ~catalog:
                      (Eval.catalog
                         [
                           (tr.Query.alias, combined);
                           (Maint_query.partial_alias, !partial);
                         ])
                    probe
                in
                if Relation.is_empty contribution then acc
                else begin
                  stats :=
                    {
                      !stats with
                      compensations = !stats.compensations + 1;
                      comp_tuples =
                        !stats.comp_tuples + Relation.mass contribution;
                    };
                  Relation.diff acc contribution
                end)
              answer combineds
          in
          partial := compensated;
          bound := tr.Query.alias :: !bound)
        i.in_auxes;
      Some (Maint_query.final_projection i.in_query owner !partial, !stats)
    end
  with Eval.Error _ | Maint_query.Unsupported _ ->
    (* A local evaluation the probed path might survive (or surface as
       Broken, triggering correction) — fall back rather than guess. *)
    None

let record_local (w : Query_engine.t) ~(local : local) (i : local_input)
    ((_, st) : Relation.t * stats) : unit =
  let sp = Dyno_obs.Obs.spans (Query_engine.obs w) in
  let id =
    Dyno_obs.Span.begin_span sp ~time:(Query_engine.now w)
      Dyno_obs.Span.Local
      (Fmt.str "local:%s:%s" (Query.name i.in_query) i.in_pivot.Query.alias)
  in
  Dyno_obs.Span.set_attr sp id "probes_avoided"
    (string_of_int st.probes_avoided);
  Dyno_obs.Span.end_span sp ~time:(Query_engine.now w) id;
  local.note_avoided ~probes:st.probes_avoided ~bytes:st.bytes_saved;
  Dyno_obs.Lineage.note_scope
    (Dyno_obs.Obs.lineage (Query_engine.obs w))
    ~time:(Query_engine.now w) ~kind:"local-answer"
    ~detail:
      (Fmt.str
         "self-maintenance tier answered locally: %d probe(s) avoided, \
          %d byte(s) saved"
         st.probes_avoided st.bytes_saved)

let delta_view_local (w : Query_engine.t) ~(view_query : Query.t)
    ~(schemas : (string * Schema.t) list) ~(pivot : Query.table_ref)
    ~(delta : Relation.t) ~(exclude : int list) ~(local : local) :
    (Relation.t * stats) option =
  match
    prepare_local w ~view_query ~schemas ~pivot ~delta ~exclude ~local
  with
  | None -> None
  | Some input ->
      if Relation.is_empty input.in_partial0 then
        (* Filtered out locally — no span, matching the probed path which
           sends no probes either. *)
        match Maint_query.view_output_schema view_query schemas with
        | s -> Some (Relation.create s, no_stats)
        | exception Maint_query.Unsupported _ -> None
      else begin
        let sp = Dyno_obs.Obs.spans (Query_engine.obs w) in
        let sid =
          Dyno_obs.Span.begin_span sp ~time:(Query_engine.now w)
            Dyno_obs.Span.Local
            (Fmt.str "local:%s:%s" (Query.name view_query)
               pivot.Query.alias)
        in
        match compute_local input with
        | Some (result, st) ->
            Dyno_obs.Span.set_attr sp sid "probes_avoided"
              (string_of_int st.probes_avoided);
            Dyno_obs.Span.end_span sp ~time:(Query_engine.now w) sid;
            local.note_avoided ~probes:st.probes_avoided
              ~bytes:st.bytes_saved;
            Dyno_obs.Lineage.note_scope
              (Dyno_obs.Obs.lineage (Query_engine.obs w))
              ~time:(Query_engine.now w) ~kind:"local-answer"
              ~detail:
                (Fmt.str
                   "self-maintenance tier answered locally: %d probe(s) \
                    avoided, %d byte(s) saved"
                   st.probes_avoided st.bytes_saved);
            Some (result, st)
        | None ->
            Dyno_obs.Span.set_attr sp sid "fallback" "true";
            Dyno_obs.Span.end_span sp ~time:(Query_engine.now w) sid;
            None
      end
