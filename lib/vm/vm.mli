(** View Maintenance (VM): the maintenance process of the paper's
    Definition 1(1) — [M(DU) = r(VD) r(DS_1) … r(DS_n) w(MV) c(MV)] —
    with SWEEP compensation for concurrent data updates. *)

open Dyno_relational
open Dyno_view

type outcome =
  | Refreshed of { delta_tuples : int; stats : Sweep.stats }
      (** maintenance succeeded; MV refreshed and committed *)
  | Irrelevant
      (** the update does not touch any relation of the view; a commit
          record is still made so consistency bookkeeping sees it *)
  | Aborted of Dyno_source.Data_source.broken
      (** a maintenance query broke (in-exec detection fired) *)
  | Unreachable of Dyno_net.Retry.unreachable
      (** a probe exhausted its transport retry budget — transient; the
          scheduler waits for recovery and retries the step, no abort *)

exception Invalid_view of string

val maintain :
  ?compensate:bool ->
  ?applied:int list ->
  ?local:Sweep.local ->
  Query_engine.t ->
  Mat_view.t ->
  Update_msg.t ->
  Update.t ->
  outcome
(** Run one full VM process for a data update.  [compensate:false]
    disables SWEEP (demonstrating the duplication anomaly); [applied]
    lists queued message ids this view has already integrated (multi-view
    mode) so compensation leaves their effects in.  [local] (installed by
    a scheduler running the self-maintenance tier) lets a sweep whose
    aliases are all covered by current auxiliary data be answered without
    probing — {!Sweep.delta_view_local}; any miss falls back to the
    probed path unchanged.  Ignored when [compensate] is false.
    @raise Invalid_view when the view is undefined.
    @raise Maint_query.Unsupported on a self-join of the target relation. *)

(** The sweep half of {!maintain}, without the refresh/commit — what one
    concurrent maintenance task computes.  The refresh mutates the view
    and charges the clock serially, so the parallel scheduler applies
    {!commit_swept} per successful sweep at the round barrier, in
    corrected queue order. *)
type swept =
  | Swept of Relation.t * Sweep.stats  (** view delta, refresh pending *)
  | Swept_irrelevant  (** commit record pending *)
  | Swept_aborted of Dyno_source.Data_source.broken
  | Swept_unreachable of Dyno_net.Retry.unreachable

val maintain_sweep :
  ?compensate:bool ->
  ?applied:int list ->
  ?exclude_extra:int list ->
  ?local:Sweep.local ->
  Query_engine.t ->
  Mat_view.t ->
  Update_msg.t ->
  Update.t ->
  swept
(** Probe + compensate for one data update without touching the view.
    [exclude_extra] lists message ids of antichain members dispatched
    earlier in the same parallel round — maintained concurrently, so
    compensation must not subtract their deltas (exclusion sets are
    fixed at dispatch).
    @raise Invalid_view when the view is undefined.
    @raise Maint_query.Unsupported on a self-join of the target relation. *)

(** The dispatch-time split of {!maintain_sweep} used by the multicore
    runtime ([`Domains _] in {!Run_config}): the prelude and the
    local-sweep capture run on the coordinator, so what remains for an
    [Offloadable] member is pure compute a worker domain can evaluate
    with no engine access. *)
type prepared =
  | Settled of swept
      (** decided without any sweep (irrelevant pivot or schema abort) *)
  | Offloadable of Sweep.local_input
      (** fully covered local sweep: run {!Sweep.compute_local} on a
          worker domain, then {!Sweep.record_local} + {!commit_swept} on
          the coordinator *)
  | Needs_probes
      (** not locally answerable — run the ordinary cooperative
          {!maintain_sweep} on the executor *)

val prepare_sweep :
  ?compensate:bool ->
  ?applied:int list ->
  ?exclude_extra:int list ->
  ?local:Sweep.local ->
  Query_engine.t ->
  Mat_view.t ->
  Update_msg.t ->
  Update.t ->
  prepared
(** Same prelude and arguments as {!maintain_sweep}; coordinator-only.
    @raise Invalid_view when the view is undefined.
    @raise Maint_query.Unsupported on a self-join of the target relation. *)

val commit_swept :
  Query_engine.t ->
  Mat_view.t ->
  Update_msg.t ->
  Relation.t ->
  Sweep.stats ->
  outcome
(** The refresh half of {!maintain} for a delta computed by
    {!maintain_sweep}: charge the refresh cost, refresh and commit the
    view.  Serial code — call at the round barrier, never inside a
    task. *)

val maintain_group :
  ?compensate:bool ->
  ?overlap:bool ->
  ?local:Sweep.local ->
  Query_engine.t ->
  Mat_view.t ->
  Update_msg.t list ->
  outcome
(** Deferred/grouped maintenance of a queue prefix of data updates: one
    merged sweep per relation, one view commit for the whole group
    (probe-level telescoping of Equation 6).  With [overlap] (default
    false), the per-relation sweeps run as concurrent tasks whose probe
    round trips overlap; exclusion sets are fixed at dispatch to match
    the serial left-to-right pass exactly.
    @raise Invalid_argument if a schema change is in the group.
    @raise Invalid_view when the view is undefined. *)

val initialize : Query_engine.t -> Mat_view.t -> unit
(** Fully (re)materialize the view from the sources' current states,
    charged as one big adaptation (system start). *)
