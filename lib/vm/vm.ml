(** View Maintenance (VM): the maintenance process of Definition 1(1).

    [M(DU) = r(VD) r(DS_1) … r(DS_n) w(MV) c(MV)]: read the view
    definition, probe each source through {!Sweep} (with compensation for
    concurrent data updates), then refresh and commit the materialized
    view.  A probe hitting a concurrent schema change aborts the process —
    the broken-query anomaly the Dyno scheduler corrects. *)

open Dyno_relational
open Dyno_view

type outcome =
  | Refreshed of { delta_tuples : int; stats : Sweep.stats }
      (** maintenance succeeded; MV refreshed and committed *)
  | Irrelevant
      (** the update does not touch any relation of the view; a commit
          record is still made so consistency bookkeeping sees it *)
  | Aborted of Dyno_source.Data_source.broken
      (** a maintenance query broke (in-exec detection fired) *)
  | Unreachable of Dyno_net.Retry.unreachable
      (** a probe exhausted its transport retry budget — transient; the
          scheduler waits for recovery and retries the step, no abort *)

exception Invalid_view of string

(* One sweep, preferring the self-maintenance path when the scheduler
   installed local hooks and coverage holds.  Local answering is sound
   only in compensated mode: the auxiliary data reflects every delivered
   commit, and the local path removes pending unmaintained updates by
   construction — with compensation off the baseline deliberately keeps
   them in, so it must keep probing. *)
let sweep_delta ?local ~compensate w ~view_query ~schemas ~pivot ~delta
    ~exclude =
  match local with
  | Some l when compensate -> (
      match
        Sweep.delta_view_local w ~view_query ~schemas ~pivot ~delta ~exclude
          ~local:l
      with
      | Some ok -> Ok ok
      | None ->
          Sweep.delta_view ~compensate w ~view_query ~schemas ~pivot ~delta
            ~exclude)
  | _ ->
      Sweep.delta_view ~compensate w ~view_query ~schemas ~pivot ~delta
        ~exclude

(** [maintain w mv msg du] runs one full VM process for data update [du]
    carried by message [msg].  [local] (from the self-maintenance tier)
    lets covered sweeps be answered without probing. *)
let maintain ?(compensate = true) ?(applied = []) ?local
    (w : Query_engine.t) (mv : Mat_view.t) (msg : Update_msg.t)
    (du : Update.t) : outcome =
  let vd = Mat_view.def mv in
  if not (View_def.is_valid vd) then
    raise (Invalid_view (View_def.name vd));
  let q, _version = View_def.read vd in
  let schemas = View_def.schemas vd in
  let pivots =
    List.filter
      (fun (tr : Query.table_ref) ->
        String.equal tr.source (Update.source du)
        && String.equal tr.rel (Update.rel du))
      (Query.from q)
  in
  match pivots with
  | [] ->
      (* The update's relation is not in the view (e.g. it was replaced by
         synchronization); the view trivially reflects it. *)
      Mat_view.record_commit mv ~at:(Query_engine.now w)
        ~maintained:[ Update_msg.id msg ];
      Irrelevant
  | _ :: _ :: _ ->
      raise
        (Maint_query.Unsupported
           (Fmt.str "relation %s@%s occurs more than once in view %s"
              (Update.rel du) (Update.source du) (Query.name q)))
  | [ pivot ] -> (
      (* The delta must be expressed against the schema the view believes;
         a mismatch means a schema change at that source overtook the view
         definition — a conflict VM cannot handle (Dyno will reorder). *)
      let believed = List.assoc_opt pivot.Query.alias schemas in
      let actual = Relation.schema (Update.delta du) in
      match believed with
      | Some s when not (Schema.equal s actual) ->
          Aborted
            {
              Dyno_source.Data_source.source = Update.source du;
              query_name = Query.name q;
              reason =
                Fmt.str
                  "delta schema %a of %s diverges from believed schema %a"
                  Schema.pp actual (Update.rel du) Schema.pp s;
            }
      | None ->
          Aborted
            {
              Dyno_source.Data_source.source = Update.source du;
              query_name = Query.name q;
              reason = Fmt.str "no believed schema for alias %s" pivot.Query.alias;
            }
      | Some _ -> (
          match
            sweep_delta ?local ~compensate w ~view_query:q ~schemas ~pivot
              ~delta:(Update.delta du)
              ~exclude:(Update_msg.id msg :: applied)
          with
          | Error (Query_engine.Broken b) -> Aborted b
          | Error (Query_engine.Unreachable u) -> Unreachable u
          | Ok (dv, stats) ->
              let delta_tuples = Relation.mass dv in
              Dyno_obs.Span.with_span
                (Dyno_obs.Obs.spans (Query_engine.obs w))
                ~now:(fun () -> Query_engine.now w)
                Dyno_obs.Span.Refresh (Query.name q)
                (fun _ ->
                  Query_engine.advance w
                    (Dyno_sim.Cost_model.refresh (Query_engine.cost w)
                       ~delta_tuples);
                  Mat_view.refresh mv ~at:(Query_engine.now w)
                    ~maintained:[ Update_msg.id msg ] dv);
              Dyno_obs.Metrics.incr
                (Dyno_obs.Obs.metrics (Query_engine.obs w))
                "vm.refreshes";
              Dyno_sim.Trace.recordf (Query_engine.trace w)
                ~time:(Query_engine.now w) Dyno_sim.Trace.Refresh
                "view %s += %d tuple(s) for #%d" (Query.name q) delta_tuples
                (Update_msg.id msg);
              Dyno_obs.Lineage.note
                (Dyno_obs.Obs.lineage (Query_engine.obs w))
                ~ids:[ Update_msg.id msg ]
                ~time:(Query_engine.now w) ~kind:"refresh"
                ~detail:
                  (Fmt.str "view %s += %d tuple(s)" (Query.name q)
                     delta_tuples);
              Refreshed { delta_tuples; stats }))

(** The sweep half of {!maintain}, without the refresh/commit: what a
    concurrent maintenance task runs.  The refresh must mutate the view
    and charge the clock serially, so the parallel scheduler calls
    {!commit_swept} for each successful sweep at the round barrier, in
    corrected queue order. *)
type swept =
  | Swept of Relation.t * Sweep.stats  (** view delta, refresh pending *)
  | Swept_irrelevant  (** commit record pending *)
  | Swept_aborted of Dyno_source.Data_source.broken
  | Swept_unreachable of Dyno_net.Retry.unreachable

(** [maintain_sweep w mv msg du ~exclude_extra] — probe + compensate for
    [du] without touching the view.  [exclude_extra] carries the message
    ids of antichain members dispatched earlier in the same round: their
    deltas are being maintained concurrently, so compensation must not
    subtract them (their exclusion set is fixed at dispatch). *)
let maintain_sweep ?(compensate = true) ?(applied = []) ?(exclude_extra = [])
    ?local (w : Query_engine.t) (mv : Mat_view.t) (msg : Update_msg.t)
    (du : Update.t) : swept =
  let vd = Mat_view.def mv in
  if not (View_def.is_valid vd) then raise (Invalid_view (View_def.name vd));
  let q, _version = View_def.read vd in
  let schemas = View_def.schemas vd in
  let pivots =
    List.filter
      (fun (tr : Query.table_ref) ->
        String.equal tr.source (Update.source du)
        && String.equal tr.rel (Update.rel du))
      (Query.from q)
  in
  match pivots with
  | [] -> Swept_irrelevant
  | _ :: _ :: _ ->
      raise
        (Maint_query.Unsupported
           (Fmt.str "relation %s@%s occurs more than once in view %s"
              (Update.rel du) (Update.source du) (Query.name q)))
  | [ pivot ] -> (
      let believed = List.assoc_opt pivot.Query.alias schemas in
      let actual = Relation.schema (Update.delta du) in
      match believed with
      | Some s when not (Schema.equal s actual) ->
          Swept_aborted
            {
              Dyno_source.Data_source.source = Update.source du;
              query_name = Query.name q;
              reason =
                Fmt.str
                  "delta schema %a of %s diverges from believed schema %a"
                  Schema.pp actual (Update.rel du) Schema.pp s;
            }
      | None ->
          Swept_aborted
            {
              Dyno_source.Data_source.source = Update.source du;
              query_name = Query.name q;
              reason =
                Fmt.str "no believed schema for alias %s" pivot.Query.alias;
            }
      | Some _ -> (
          match
            sweep_delta ?local ~compensate w ~view_query:q ~schemas ~pivot
              ~delta:(Update.delta du)
              ~exclude:((Update_msg.id msg :: applied) @ exclude_extra)
          with
          | Error (Query_engine.Broken b) -> Swept_aborted b
          | Error (Query_engine.Unreachable u) -> Swept_unreachable u
          | Ok (dv, stats) -> Swept (dv, stats)))

(** The dispatch-time split of {!maintain_sweep} the multicore runtime
    uses: the prelude (view validity, pivot lookup, believed-schema
    checks) and the local-sweep capture run on the coordinator; members
    that come back [Offloadable] carry a pure {!Sweep.compute_local}
    input a worker domain can evaluate with no engine access. *)
type prepared =
  | Settled of swept
      (** decided without any sweep (irrelevant pivot or schema abort) *)
  | Offloadable of Sweep.local_input
      (** fully covered local sweep: compute on a worker domain, then
          {!Sweep.record_local} + {!commit_swept} on the coordinator *)
  | Needs_probes
      (** not locally answerable — run the ordinary cooperative
          {!maintain_sweep} on the executor *)

let prepare_sweep ?(compensate = true) ?(applied = []) ?(exclude_extra = [])
    ?local (w : Query_engine.t) (mv : Mat_view.t) (msg : Update_msg.t)
    (du : Update.t) : prepared =
  let vd = Mat_view.def mv in
  if not (View_def.is_valid vd) then raise (Invalid_view (View_def.name vd));
  let q, _version = View_def.read vd in
  let schemas = View_def.schemas vd in
  let pivots =
    List.filter
      (fun (tr : Query.table_ref) ->
        String.equal tr.source (Update.source du)
        && String.equal tr.rel (Update.rel du))
      (Query.from q)
  in
  match pivots with
  | [] -> Settled Swept_irrelevant
  | _ :: _ :: _ ->
      raise
        (Maint_query.Unsupported
           (Fmt.str "relation %s@%s occurs more than once in view %s"
              (Update.rel du) (Update.source du) (Query.name q)))
  | [ pivot ] -> (
      let believed = List.assoc_opt pivot.Query.alias schemas in
      let actual = Relation.schema (Update.delta du) in
      match believed with
      | Some s when not (Schema.equal s actual) ->
          Settled
            (Swept_aborted
               {
                 Dyno_source.Data_source.source = Update.source du;
                 query_name = Query.name q;
                 reason =
                   Fmt.str
                     "delta schema %a of %s diverges from believed schema %a"
                     Schema.pp actual (Update.rel du) Schema.pp s;
               })
      | None ->
          Settled
            (Swept_aborted
               {
                 Dyno_source.Data_source.source = Update.source du;
                 query_name = Query.name q;
                 reason =
                   Fmt.str "no believed schema for alias %s"
                     pivot.Query.alias;
               })
      | Some _ -> (
          match local with
          | Some l when compensate -> (
              match
                Sweep.prepare_local w ~view_query:q ~schemas ~pivot
                  ~delta:(Update.delta du)
                  ~exclude:((Update_msg.id msg :: applied) @ exclude_extra)
                  ~local:l
              with
              | Some input -> Offloadable input
              | None -> Needs_probes)
          | _ -> Needs_probes))

(** [commit_swept w mv msg dv stats] — the refresh half of {!maintain}
    for a delta computed by {!maintain_sweep}: charge the refresh cost,
    refresh and commit the view.  Serial code — called at the round
    barrier, never inside a task. *)
let commit_swept (w : Query_engine.t) (mv : Mat_view.t)
    (msg : Update_msg.t) (dv : Relation.t) (stats : Sweep.stats) : outcome =
  let q = View_def.peek (Mat_view.def mv) in
  let delta_tuples = Relation.mass dv in
  Dyno_obs.Span.with_span
    (Dyno_obs.Obs.spans (Query_engine.obs w))
    ~now:(fun () -> Query_engine.now w)
    Dyno_obs.Span.Refresh (Query.name q)
    (fun _ ->
      Query_engine.advance w
        (Dyno_sim.Cost_model.refresh (Query_engine.cost w) ~delta_tuples);
      Mat_view.refresh mv ~at:(Query_engine.now w)
        ~maintained:[ Update_msg.id msg ] dv);
  Dyno_obs.Metrics.incr
    (Dyno_obs.Obs.metrics (Query_engine.obs w))
    "vm.refreshes";
  Dyno_sim.Trace.recordf (Query_engine.trace w) ~time:(Query_engine.now w)
    Dyno_sim.Trace.Refresh "view %s += %d tuple(s) for #%d" (Query.name q)
    delta_tuples (Update_msg.id msg);
  Dyno_obs.Lineage.note
    (Dyno_obs.Obs.lineage (Query_engine.obs w))
    ~ids:[ Update_msg.id msg ]
    ~time:(Query_engine.now w) ~kind:"refresh"
    ~detail:(Fmt.str "view %s += %d tuple(s)" (Query.name q) delta_tuples);
  Refreshed { delta_tuples; stats }

(** [maintain_group w mv msgs] — deferred/grouped maintenance of a queue
    prefix of data updates (no schema changes): updates are merged into
    one delta per relation and each merged delta is swept once, with the
    already-processed deltas excluded from compensation (so they count as
    maintained) — the probe-level telescoping of Equation 6.  The view is
    refreshed and committed {e once} for the whole group, so the claimed
    source-state vector stays valid and strong consistency is preserved;
    the view simply skips the intermediate states.

    With [overlap] (and outside any executor task), the per-(source,rel)
    sweeps — independent by construction until the final delta sum — run
    as concurrent tasks whose probe round trips overlap; each sweep's
    compensation exclusion set is fixed at dispatch to exactly what the
    serial left-to-right pass would use, so the frontiers stay exact. *)
let maintain_group ?(compensate = true) ?(overlap = false) ?local
    (w : Query_engine.t) (mv : Mat_view.t) (msgs : Update_msg.t list) :
    outcome =
  let vd = Mat_view.def mv in
  if not (View_def.is_valid vd) then raise (Invalid_view (View_def.name vd));
  let q, _ = View_def.read vd in
  let schemas = View_def.schemas vd in
  let all_ids = List.map Update_msg.id msgs in
  (* Merge per (source, rel), preserving first-occurrence order. *)
  let groups : (string * string, Relation.t * int list) Hashtbl.t =
    Hashtbl.create 8
  in
  let order = ref [] in
  List.iter
    (fun m ->
      match Update_msg.as_du m with
      | None -> invalid_arg "maintain_group: schema change in a DU group"
      | Some u ->
          let key = (Update.source u, Update.rel u) in
          (match Hashtbl.find_opt groups key with
          | Some (d, ids) ->
              Hashtbl.replace groups key
                (Relation.sum d (Update.delta u), Update_msg.id m :: ids)
          | None ->
              order := key :: !order;
              Hashtbl.replace groups key
                (Relation.copy (Update.delta u), [ Update_msg.id m ])))
    msgs;
  let order = List.rev !order in
  let exception Abort of Dyno_source.Data_source.broken in
  let exception Stall of Dyno_net.Retry.unreachable in
  try
    let total = ref None in
    let processed = ref [] in
    let add_delta dv =
      total :=
        Some (match !total with None -> dv | Some acc -> Relation.sum acc dv)
    in
    let pivot_of (source, rel) =
      List.find_opt
        (fun (tr : Query.table_ref) ->
          String.equal tr.source source && String.equal tr.rel rel)
        (Query.from q)
    in
    let check_schema (pivot : Query.table_ref) delta rel =
      match List.assoc_opt pivot.Query.alias schemas with
      | Some s when Schema.equal s (Relation.schema delta) -> ()
      | _ ->
          raise
            (Abort
               {
                 Dyno_source.Data_source.source = pivot.Query.source;
                 query_name = Query.name q;
                 reason = Fmt.str "group delta schema diverges on %s" rel;
               })
    in
    let exec = Query_engine.executor w in
    let use_tasks =
      overlap
      && (not (Dyno_sim.Executor.in_task exec))
      && List.length order > 1
    in
    if use_tasks then begin
      (* Concurrent sweeps.  Irrelevant keys are settled first (their ids
         never occur in any probed relation's pending set, so excluding
         them is a no-op either way); schema checks are free of clock
         cost, so running them all up front preserves the serial
         outcome.  Each sweep's exclusion set — its own ids plus those of
         groups the serial pass would have processed before it — is
         frozen at dispatch.  Failures resolve in group order: the first
         failing group wins, later sweeps are discarded (their updates
         stay queued and are re-swept on retry). *)
      let relevant =
        List.filter_map
          (fun key ->
            let delta, ids = Hashtbl.find groups key in
            match pivot_of key with
            | None ->
                processed := ids @ !processed;
                None
            | Some pivot -> Some (key, pivot, delta, ids))
          order
      in
      List.iter
        (fun ((_, rel), pivot, delta, _) -> check_schema pivot delta rel)
        relevant;
      let results = Array.make (List.length relevant) None in
      let thunks =
        let before = ref !processed in
        List.mapi
          (fun i (_, pivot, delta, ids) ->
            let exclude = ids @ !before in
            before := ids @ !before;
            fun () ->
              results.(i) <-
                Some
                  (sweep_delta ?local ~compensate w ~view_query:q ~schemas
                     ~pivot ~delta ~exclude))
          relevant
      in
      Dyno_sim.Executor.run_all exec thunks;
      List.iteri
        (fun i (_, _, _, ids) ->
          match results.(i) with
          | Some (Ok (dv, _)) ->
              processed := ids @ !processed;
              add_delta dv
          | Some (Error (Query_engine.Broken b)) -> raise (Abort b)
          | Some (Error (Query_engine.Unreachable u)) -> raise (Stall u)
          | None -> assert false)
        relevant
    end
    else
      List.iter
        (fun key ->
          let delta, ids = Hashtbl.find groups key in
          let _, rel = key in
          match pivot_of key with
          | None -> processed := ids @ !processed (* irrelevant to the view *)
          | Some pivot -> (
              check_schema pivot delta rel;
              match
                sweep_delta ?local ~compensate w ~view_query:q ~schemas
                  ~pivot ~delta
                  ~exclude:(ids @ !processed)
              with
              | Error (Query_engine.Broken b) -> raise (Abort b)
              | Error (Query_engine.Unreachable u) -> raise (Stall u)
              | Ok (dv, _) ->
                  processed := ids @ !processed;
                  add_delta dv))
        order;
    (match !total with
    | None ->
        Mat_view.record_commit mv ~at:(Query_engine.now w) ~maintained:all_ids
    | Some dv ->
        Dyno_obs.Span.with_span
          (Dyno_obs.Obs.spans (Query_engine.obs w))
          ~now:(fun () -> Query_engine.now w)
          Dyno_obs.Span.Refresh (Query.name q)
          (fun _ ->
            Query_engine.advance w
              (Dyno_sim.Cost_model.refresh (Query_engine.cost w)
                 ~delta_tuples:(Relation.mass dv));
            Mat_view.refresh mv ~at:(Query_engine.now w) ~maintained:all_ids
              dv);
        Dyno_obs.Metrics.incr
          (Dyno_obs.Obs.metrics (Query_engine.obs w))
          "vm.refreshes";
        Dyno_sim.Trace.recordf (Query_engine.trace w)
          ~time:(Query_engine.now w) Dyno_sim.Trace.Refresh
          "view %s += %d tuple(s) for group of %d" (Query.name q)
          (Relation.mass dv) (List.length msgs);
        Dyno_obs.Lineage.note
          (Dyno_obs.Obs.lineage (Query_engine.obs w))
          ~ids:(List.map Update_msg.id msgs)
          ~time:(Query_engine.now w) ~kind:"refresh"
          ~detail:
            (Fmt.str "view %s += %d tuple(s) (grouped)" (Query.name q)
               (Relation.mass dv)));
    Refreshed { delta_tuples = 0; stats = Sweep.no_stats }
  with
  | Abort b -> Aborted b
  | Stall u -> Unreachable u

(** [initialize w mv] fully (re)materializes the view from the sources'
    current states — used at system start.  Charged as one big adaptation. *)
let initialize (w : Query_engine.t) (mv : Mat_view.t) : unit =
  let vd = Mat_view.def mv in
  let q = View_def.peek vd in
  let scanned = ref 0 in
  let env (tr : Query.table_ref) =
    match Query_engine.source_relation w ~source:tr.source ~rel:tr.rel with
    | Some r ->
        scanned := !scanned + Relation.support r;
        r
    | None -> raise (Eval.Error (Fmt.str "missing relation %s@%s" tr.rel tr.source))
  in
  let extent = Eval.run ~planner:(Query_engine.planner w) ~catalog:env q in
  Query_engine.advance w
    (Dyno_sim.Cost_model.adapt (Query_engine.cost w) ~scanned:!scanned
       ~written:(Relation.support extent));
  Mat_view.replace mv ~at:(Query_engine.now w) ~maintained:[] extent
