(** Minimal RFC-8259 JSON: a value type, a strict recursive-descent
    parser, and a small pretty-printing emitter.  No external JSON
    library is in the dependency cone on purpose; this covers exactly
    what the repo needs — emitting and re-reading the benchmark baseline
    files ([bench --json] / [bench --check]) and validating exporter
    output in tests and CI. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict RFC 8259: rejects trailing garbage, unescaped control
    characters, bare NaN/Infinity.  The error carries a byte offset. *)

val check : string -> (unit, string) result
(** Well-formedness only. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup ([None] on non-objects too). *)

val num : t -> float option
val str : t -> string option
val arr : t -> t list option

val to_string : t -> string
(** Pretty form: 2-space indent, one array element or object member per
    line, numbers in [%.6g] (integers without a point), no trailing
    newline. *)

val quote : string -> string
(** A JSON string literal, quotes included. *)
