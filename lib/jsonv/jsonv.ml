(* Minimal RFC-8259 JSON value + strict parser + emitter.  The grammar
   is exactly RFC 8259 (objects, arrays, strings with escapes, numbers,
   true/false/null); anything else — trailing garbage, control
   characters, lone surrogates' hex digits are still accepted as \u
   escapes — is rejected with a byte offset. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string * int

type cursor = { s : string; mutable pos : int }

let fail (c : cursor) msg = raise (Bad (msg, c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> fail c "unexpected end of input"

let expect c ch =
  let got = next c in
  if got <> ch then
    raise (Bad (Printf.sprintf "expected %C, got %C" ch got, c.pos - 1))

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        c.pos <- c.pos + 1;
        go ()
    | _ -> ()
  in
  go ()

let expect_lit c lit = String.iter (fun ch -> expect c ch) lit

let hex_digit c =
  match next c with
  | '0' .. '9' as ch -> Char.code ch - Char.code '0'
  | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
  | ch -> raise (Bad (Printf.sprintf "bad hex digit %C" ch, c.pos - 1))

let hex4 c =
  let a = hex_digit c in
  let b = hex_digit c in
  let d = hex_digit c in
  let e = hex_digit c in
  (a lsl 12) lor (b lsl 8) lor (d lsl 4) lor e

(* UTF-8 encode one scalar value into the buffer. *)
let encode_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match next c with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (match next c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let cp = hex4 c in
            let cp =
              (* surrogate pair: \uD800-\uDBFF must be followed by a low
                 surrogate escape; combine into one scalar value. *)
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                expect c '\\';
                expect c 'u';
                let lo = hex4 c in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail c "high surrogate not followed by a low surrogate";
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                fail c "lone low surrogate"
              else cp
            in
            encode_utf8 buf cp
        | ch -> raise (Bad (Printf.sprintf "bad escape %C" ch, c.pos - 1)));
        go ()
    | ch when Char.code ch < 0x20 ->
        raise (Bad ("unescaped control character in string", c.pos - 1))
    | ch ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  (match peek c with Some '-' -> ignore (next c) | _ -> ());
  let digits () =
    let n = ref 0 in
    let rec go () =
      match peek c with
      | Some '0' .. '9' ->
          incr n;
          c.pos <- c.pos + 1;
          go ()
      | _ -> ()
    in
    go ();
    if !n = 0 then fail c "expected digit"
  in
  digits ();
  (match peek c with
  | Some '.' ->
      c.pos <- c.pos + 1;
      digits ()
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some ('+' | '-') -> c.pos <- c.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  float_of_string (String.sub c.s start (c.pos - start))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '"' -> Str (parse_string c)
  | Some '{' -> parse_object c
  | Some '[' -> parse_array c
  | Some 't' ->
      expect_lit c "true";
      Bool true
  | Some 'f' ->
      expect_lit c "false";
      Bool false
  | Some 'n' ->
      expect_lit c "null";
      Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)
  | None -> fail c "unexpected end of input"

and parse_object c =
  expect c '{';
  skip_ws c;
  match peek c with
  | Some '}' ->
      c.pos <- c.pos + 1;
      Obj []
  | _ ->
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match next c with
        | ',' -> members ((k, v) :: acc)
        | '}' -> Obj (List.rev ((k, v) :: acc))
        | ch ->
            raise
              (Bad (Printf.sprintf "expected , or }, got %C" ch, c.pos - 1))
      in
      members []

and parse_array c =
  expect c '[';
  skip_ws c;
  match peek c with
  | Some ']' ->
      c.pos <- c.pos + 1;
      Arr []
  | _ ->
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match next c with
        | ',' -> elements (v :: acc)
        | ']' -> Arr (List.rev (v :: acc))
        | ch ->
            raise
              (Bad (Printf.sprintf "expected , or ], got %C" ch, c.pos - 1))
      in
      elements []

let parse s =
  let c = { s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    (v, peek c)
  with
  | v, None -> Ok v
  | _, Some ch -> Error (Printf.sprintf "trailing %C at %d" ch c.pos)
  | exception Bad (msg, pos) -> Error (Printf.sprintf "%s at %d" msg pos)

let check s = Result.map (fun _ -> ()) (parse s)

let parse_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      parse s

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let num = function Num f -> Some f | _ -> None
let str = function Str s -> Some s | _ -> None
let arr = function Arr l -> Some l | _ -> None

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.6g" f
  else "null" (* NaN/inf have no JSON representation *)

let to_string v =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> Buffer.add_string buf (quote s)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr l ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            go (depth + 1) v)
          l;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            Buffer.add_string buf (quote k);
            Buffer.add_string buf ": ";
            go (depth + 1) v)
          kvs;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf
