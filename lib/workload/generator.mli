(** Workload generation for the experiments of Section 6.  The generator
    walks a mirror of the sources' evolving state, so every generated
    event is valid at its commit time even across renames, drops and adds:
    a DU scheduled after "rename R3 to R3_r1" targets [R3_r1] with the
    post-change schema, as a real autonomous source would emit it. *)

open Dyno_sim

(** Kinds of schema changes the experiments use. *)
type sc_kind =
  | Drop_attr  (** drop a random non-key attribute *)
  | Rename_rel
  | Rename_attr
  | Add_attr

(** One scheduled event request: when, and what kind. *)
type request = At_du of float | At_sc of float * sc_kind

val build : rows:int -> seed:int -> request list -> Timeline.t
(** Walk the requests in time order against a fresh mirror; requests that
    cannot be satisfied (e.g. a drop with no droppable attribute left)
    retry on another relation, then are skipped. *)

val mixed :
  rows:int ->
  seed:int ->
  ?du_start:float ->
  ?du_interval:float ->
  n_dus:int ->
  ?sc_start:float ->
  sc_interval:float ->
  sc_kinds:sc_kind list ->
  unit ->
  Timeline.t
(** The paper's mixed workloads: [n_dus] data updates spaced by
    [du_interval] plus a schema-change train spaced by [sc_interval]. *)

val drop_then_renames : int -> sc_kind list
(** The Figure 10/11/12 train: one drop-attribute followed by [n-1]
    rename-relation operations. *)

val zipf : alpha:float -> n:int -> float array
(** Normalized Zipf weights [w_i ∝ (i+1)^(-alpha)]; [alpha = 0] is
    uniform, larger values concentrate mass on the first entries. *)

val heavy_tailed :
  rows:int ->
  seed:int ->
  n_dus:int ->
  horizon:float ->
  ?alpha:float ->
  unit ->
  Timeline.t
(** [n_dus] data updates evenly spaced over [0, horizon), each targeting
    a relation drawn from {!zipf} [~alpha] (default 0.7) — the
    heavy-tailed per-source commit distribution of the scale bench. *)
