(** Scenario assembly and execution: glue that builds the whole simulated
    world (sources, view, engine, workload) and runs the Dyno scheduler
    over it.  Used by benches, examples and integration tests. *)

open Dyno_relational
open Dyno_view

module Config = struct
  type t = {
    rows : int;
    cost : Dyno_sim.Cost_model.t;
    track_snapshots : bool;
    trace_enabled : bool;
    faults : Dyno_net.Channel.faults;
    retry : Dyno_net.Retry.policy option;
    net_seed : int;
    obs : Dyno_obs.Obs.t;
    shards : int;
    partition : (string * int) list;
  }

  let default =
    {
      rows = 200;
      cost = Dyno_sim.Cost_model.default;
      track_snapshots = false;
      trace_enabled = false;
      faults = Dyno_net.Channel.reliable;
      retry = None;
      net_seed = 0;
      obs = Dyno_obs.Obs.disabled;
      shards = 1;
      partition = [];
    }

  let with_rows rows t = { t with rows }
  let with_cost cost t = { t with cost }
  let with_snapshots track_snapshots t = { t with track_snapshots }
  let with_trace trace_enabled t = { t with trace_enabled }
  let with_faults faults t = { t with faults }
  let with_retry retry t = { t with retry = Some retry }
  let with_net_seed net_seed t = { t with net_seed }
  let with_obs obs t = { t with obs }
  let with_shards shards t = { t with shards }
  let with_partition partition t = { t with partition }
end

module Run_config = Dyno_core.Run_config

type t = {
  registry : Dyno_source.Registry.t;
  mk : Dyno_source.Meta_knowledge.t;
  umq : Umq.t;
  plan : Dyno_core.Shard.t;
  timeline : Dyno_sim.Timeline.t;
  engine : Query_engine.t;
  mv : Mat_view.t;
  trace : Dyno_sim.Trace.t;
}

let make (c : Config.t) ~timeline : t =
  let registry = Paper_schema.build_sources ~rows:c.Config.rows in
  let mk = Paper_schema.build_meta () in
  let plan =
    Dyno_core.Shard.plan ~partition:c.Config.partition ~shards:c.Config.shards
      Paper_schema.sources
  in
  (* One shared id counter across every shard's queue: ids stay globally
     unique (exclusion sets, the consistency checker's message index and
     the cross-shard commit order key on them) and double as the global
     arrival order. *)
  let ids = ref 0 in
  let umqs =
    Array.init (Dyno_core.Shard.count plan) (fun _ -> Umq.create ~ids ())
  in
  let trace = Dyno_sim.Trace.create ~enabled:c.Config.trace_enabled () in
  let engine =
    Query_engine.create ~trace ~faults:c.Config.faults
      ~net_seed:c.Config.net_seed ?retry:c.Config.retry ~obs:c.Config.obs
      ~cost:c.Config.cost ~registry ~timeline ~umq:umqs.(0) ()
  in
  if Dyno_core.Shard.count plan > 1 then
    Query_engine.install_routes engine ~umqs
      ~route_of:(Dyno_core.Shard.owner plan);
  let query = Paper_schema.view_query () in
  let schemas = Paper_schema.view_schemas () in
  let vd = View_def.create ~schemas query in
  let mv =
    Mat_view.create ~track_snapshots:c.Config.track_snapshots vd
      (Relation.create Schema.empty)
  in
  (* Initial materialization, uncharged. *)
  let env (tr : Query.table_ref) =
    Dyno_source.Data_source.relation
      (Dyno_source.Registry.find registry tr.source)
      tr.rel
  in
  Mat_view.replace mv ~at:0.0 ~maintained:[]
    (Eval.run ~planner:(Query_engine.planner engine) ~catalog:env query);
  { registry; mk; umq = umqs.(0); plan; timeline; engine; mv; trace }

let run (t : t) ~(config : Run_config.t) : Dyno_core.Stats.t =
  Dyno_core.Shard_scheduler.run ~config ~plan:t.plan t.engine t.mv t.mk

(** [msg_index t] — message id → (source, source version), for the strong
    consistency checker.  Ids are globally unique (shared counter), so
    concatenating the per-shard histories is a well-formed index. *)
let msg_index (t : t) =
  List.concat_map
    (fun umq ->
      List.map
        (fun m ->
          ( Update_msg.id m,
            (Update_msg.source m, Update_msg.source_version m) ))
        (Umq.history umq))
    (Query_engine.umqs t.engine)

let check_convergent (t : t) = Dyno_core.Consistency.convergent t.engine t.mv

let check_strong (t : t) =
  Dyno_core.Consistency.check_strong t.engine t.mv ~msg_index:(msg_index t)

(** [recompute_extent t] — oracle: the view evaluated over current source
    states (raises if the definition no longer matches the sources). *)
let recompute_extent (t : t) =
  let query = View_def.peek (Mat_view.def t.mv) in
  let env (tr : Query.table_ref) =
    Dyno_source.Data_source.relation
      (Dyno_source.Registry.find t.registry tr.source)
      tr.rel
  in
  Eval.run ~planner:(Query_engine.planner t.engine) ~catalog:env query
