(** Scenario assembly and execution: glue that builds the whole simulated
    world (sources, view, engine, workload) and runs the Dyno scheduler
    over it.  Used by benches, examples and integration tests. *)

open Dyno_relational
open Dyno_view

type t = {
  registry : Dyno_source.Registry.t;
  mk : Dyno_source.Meta_knowledge.t;
  umq : Umq.t;
  timeline : Dyno_sim.Timeline.t;
  engine : Query_engine.t;
  mv : Mat_view.t;
  trace : Dyno_sim.Trace.t;
}

(** [make ~rows ~cost ?track_snapshots ?trace_enabled ~timeline ()] builds
    the paper's 6-relation world, loads [rows] tuples per relation,
    materializes the view (free of charge — initialization is not part of
    any measured experiment) and wires the engine around [timeline]. *)
let make ~rows ~cost ?(track_snapshots = false) ?(trace_enabled = false)
    ?faults ?retry ?net_seed ?obs ~timeline () : t =
  let registry = Paper_schema.build_sources ~rows in
  let mk = Paper_schema.build_meta () in
  let umq = Umq.create () in
  let trace = Dyno_sim.Trace.create ~enabled:trace_enabled () in
  let engine =
    Query_engine.create ~trace ?faults ?net_seed ?retry ?obs ~cost ~registry
      ~timeline ~umq ()
  in
  let query = Paper_schema.view_query () in
  let schemas = Paper_schema.view_schemas () in
  let vd = View_def.create ~schemas query in
  let mv = Mat_view.create ~track_snapshots vd (Relation.create Schema.empty) in
  (* Initial materialization, uncharged. *)
  let env (tr : Query.table_ref) =
    Dyno_source.Data_source.relation
      (Dyno_source.Registry.find registry tr.source)
      tr.rel
  in
  Mat_view.replace mv ~at:0.0 ~maintained:[]
    (Eval.run ~planner:(Query_engine.planner engine) ~catalog:env query);
  { registry; mk; umq; timeline; engine; mv; trace }

(** [run t ~strategy] drives the Dyno loop to completion. *)
let run ?(max_steps = 1_000_000) ?(compensate = true)
    ?(vm_mode = Dyno_core.Scheduler.Incremental) ?(du_group = 1)
    ?(parallel = 1) (t : t) ~strategy : Dyno_core.Stats.t =
  Dyno_core.Scheduler.run
    ~config:
      {
        Dyno_core.Scheduler.strategy;
        max_steps;
        compensate;
        vm_mode;
        du_group;
        parallel;
      }
    t.engine t.mv t.mk

(** [msg_index t] — message id → (source, source version), for the strong
    consistency checker. *)
let msg_index (t : t) =
  List.map
    (fun m ->
      (Update_msg.id m, (Update_msg.source m, Update_msg.source_version m)))
    (Umq.history t.umq)

let check_convergent (t : t) = Dyno_core.Consistency.convergent t.engine t.mv

let check_strong (t : t) =
  Dyno_core.Consistency.check_strong t.engine t.mv ~msg_index:(msg_index t)

(** [recompute_extent t] — oracle: the view evaluated over current source
    states (raises if the definition no longer matches the sources). *)
let recompute_extent (t : t) =
  let query = View_def.peek (Mat_view.def t.mv) in
  let env (tr : Query.table_ref) =
    Dyno_source.Data_source.relation
      (Dyno_source.Registry.find t.registry tr.source)
      tr.rel
  in
  Eval.run ~planner:(Query_engine.planner t.engine) ~catalog:env query
