(** Scenario assembly and execution: build the whole simulated world
    (sources, view, engine, workload) and run the Dyno scheduler over it.
    Used by benches, examples and integration tests.

    World construction is driven by an explicit {!Config.t} record (no
    optional-argument soup): build one with {!Config.default} and the
    [with_]-style helpers, hand it to {!make}.  Runs are driven by the
    shared {!Dyno_core.Run_config.t} record (aliased here as
    {!Run_config}), the same record every scheduler consumes. *)

open Dyno_relational
open Dyno_view

(** World-construction parameters. *)
module Config : sig
  type t = {
    rows : int;  (** tuples loaded per relation *)
    cost : Dyno_sim.Cost_model.t;
    track_snapshots : bool;
        (** retain per-commit view snapshots (consistency checkers) *)
    trace_enabled : bool;
    faults : Dyno_net.Channel.faults;
        (** wrapper→UMQ transport faults (reliable by default) *)
    retry : Dyno_net.Retry.policy option;
        (** probe retry policy ([None] derives it from [cost]) *)
    net_seed : int;  (** channel RNG stream; shard [i] draws seed + i *)
    obs : Dyno_obs.Obs.t;
    shards : int;
        (** view-manager shards; sources are partitioned across them *)
    partition : (string * int) list;
        (** explicit source→shard overrides (round-robin otherwise) *)
  }

  val default : t
  (** 200 rows, {!Dyno_sim.Cost_model.default}, no snapshots, no trace,
      reliable transport, disabled observability, 1 shard. *)

  val with_rows : int -> t -> t
  val with_cost : Dyno_sim.Cost_model.t -> t -> t
  val with_snapshots : bool -> t -> t
  val with_trace : bool -> t -> t
  val with_faults : Dyno_net.Channel.faults -> t -> t
  val with_retry : Dyno_net.Retry.policy -> t -> t
  val with_net_seed : int -> t -> t
  val with_obs : Dyno_obs.Obs.t -> t -> t
  val with_shards : int -> t -> t
  val with_partition : (string * int) list -> t -> t
end

(** Alias of {!Dyno_core.Run_config}: the shared scheduler-run record
    ([strategy], [max_steps], [compensate], [vm_mode], [du_group],
    [parallel]) with its own [default] / [of_strategy] / [with_]
    helpers. *)
module Run_config = Dyno_core.Run_config

type t = {
  registry : Dyno_source.Registry.t;
  mk : Dyno_source.Meta_knowledge.t;
  umq : Umq.t;  (** shard 0's queue — {e the} queue of a 1-shard world *)
  plan : Dyno_core.Shard.t;  (** source→shard partition plan *)
  timeline : Dyno_sim.Timeline.t;
  engine : Query_engine.t;
  mv : Mat_view.t;
  trace : Dyno_sim.Trace.t;
}

val make : Config.t -> timeline:Dyno_sim.Timeline.t -> t
(** Build the paper's 6-relation world, load [Config.rows] tuples per
    relation, materialize the view (uncharged — initialization is not
    part of any measured experiment) and wire the engine around the
    timeline.  With [Config.shards > 1] the sources are partitioned by
    {!Dyno_core.Shard.plan} and the engine gets one transport route per
    shard, every queue drawing message ids from one shared counter. *)

val run : t -> config:Run_config.t -> Dyno_core.Stats.t
(** Drive the maintenance loop to completion via
    {!Dyno_core.Shard_scheduler.run} — which, on a 1-shard plan, is
    {!Dyno_core.Scheduler.run} bit for bit. *)

val msg_index : t -> (int * (string * int)) list
(** Message id → (source, source version) across every shard's queue,
    for {!Dyno_core.Consistency.check_strong}. *)

val check_convergent : t -> (bool, string) result
val check_strong : t -> Dyno_core.Consistency.report

val recompute_extent : t -> Relation.t
(** Oracle: the view evaluated over current source states (raises if the
    definition no longer matches the sources). *)
