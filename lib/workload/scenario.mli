(** Scenario assembly and execution: build the whole simulated world
    (sources, view, engine, workload) and run the Dyno scheduler over it.
    Used by benches, examples and integration tests. *)

open Dyno_relational
open Dyno_view

type t = {
  registry : Dyno_source.Registry.t;
  mk : Dyno_source.Meta_knowledge.t;
  umq : Umq.t;
  timeline : Dyno_sim.Timeline.t;
  engine : Query_engine.t;
  mv : Mat_view.t;
  trace : Dyno_sim.Trace.t;
}

val make :
  rows:int ->
  cost:Dyno_sim.Cost_model.t ->
  ?track_snapshots:bool ->
  ?trace_enabled:bool ->
  ?faults:Dyno_net.Channel.faults ->
  ?retry:Dyno_net.Retry.policy ->
  ?net_seed:int ->
  ?obs:Dyno_obs.Obs.t ->
  timeline:Dyno_sim.Timeline.t ->
  unit ->
  t
(** Build the paper's 6-relation world, load [rows] tuples per relation,
    materialize the view (uncharged — initialization is not part of any
    measured experiment) and wire the engine around the timeline.
    [faults]/[retry]/[net_seed] configure the transport channel between
    the view manager and the sources (reliable by default); [obs]
    (default disabled) is the observability handle passed to the
    engine. *)

val run :
  ?max_steps:int ->
  ?compensate:bool ->
  ?vm_mode:Dyno_core.Scheduler.vm_mode ->
  ?du_group:int ->
  ?parallel:int ->
  t ->
  strategy:Dyno_core.Strategy.t ->
  Dyno_core.Stats.t
(** Drive the Dyno loop to completion. *)

val msg_index : t -> (int * (string * int)) list
(** Message id → (source, source version), for
    {!Dyno_core.Consistency.check_strong}. *)

val check_convergent : t -> (bool, string) result
val check_strong : t -> Dyno_core.Consistency.report

val recompute_extent : t -> Relation.t
(** Oracle: the view evaluated over current source states (raises if the
    definition no longer matches the sources). *)
