(** Workload generation for the experiments of Section 6.

    The generator pre-computes a {e timeline} of autonomous source commits
    (data updates and schema changes) against a mirror of the sources'
    evolving state, so that every generated event is valid at its commit
    time even across renames and attribute drops: a DU scheduled after
    "rename R3 to R3_r1" targets [R3_r1] with the post-change schema, just
    as a real autonomous source would emit it. *)

open Dyno_relational
open Dyno_sim

(** Mutable mirror of one relation's state as the generator walks the
    timeline. *)
type mirror_rel = {
  mutable name : string;
  mutable schema : Schema.t;
  mutable tuples : Tuple.t list;  (** current extent (sampled for deletes) *)
  mutable next_salt : int;
}

type mirror = {
  rels : mirror_rel array;  (** index i ↔ paper relation R(i+1) *)
  rows : int;
}

let make_mirror ~rows =
  {
    rels =
      Array.init Paper_schema.n_relations (fun i ->
          let i = i + 1 in
          {
            name = Paper_schema.rel_name i;
            schema = Paper_schema.schema_of_rel i;
            tuples =
              List.init rows (fun k ->
                  Tuple.of_list (Paper_schema.tuple_for i k));
            next_salt = 1;
          });
    rows;
  }

let source_of_index i = Paper_schema.source_of_rel (i + 1)

(** [gen_du mirror rng i] produces a valid data update against relation
    index [i]: an insert of a fresh tuple on an existing join key (so the
    view delta is non-empty), or a delete of a current tuple. *)
let gen_du (m : mirror) rng i : Update.t =
  let r = m.rels.(i) in
  let insert () =
    let k = Rng.int rng m.rows in
    let salt = r.next_salt in
    r.next_salt <- r.next_salt + 1;
    let base = Paper_schema.tuple_for ~salt (i + 1) k in
    (* Trim/extend the canonical tuple to the current schema arity: drops
       and adds may have changed it. *)
    let arity = Schema.arity r.schema in
    let values =
      List.filteri (fun j _ -> j < arity) base
      @ List.init (max 0 (arity - List.length base)) (fun _ -> Value.null)
    in
    (* Fix types positionally against the current schema. *)
    let values =
      List.map2
        (fun a v ->
          if Value.has_type v (Attr.ty a) then v
          else
            match Value.coerce_to (Attr.ty a) v with
            | Some v' -> v'
            | None -> Value.null)
        (Schema.attrs r.schema) values
    in
    let tup = Tuple.of_list values in
    r.tuples <- tup :: r.tuples;
    Update.insert ~source:(source_of_index i) ~rel:r.name r.schema
      (Tuple.to_list tup)
  in
  match r.tuples with
  | [] -> insert ()
  | tuples ->
      if Rng.bool rng then insert ()
      else begin
        let victim = List.nth tuples (Rng.int rng (List.length tuples)) in
        let removed = ref false in
        r.tuples <-
          List.filter
            (fun t ->
              if (not !removed) && Tuple.equal t victim then begin
                removed := true;
                false
              end
              else true)
            tuples;
        Update.delete ~source:(source_of_index i) ~rel:r.name r.schema
          (Tuple.to_list victim)
      end

(** Kinds of schema changes the experiments use. *)
type sc_kind =
  | Drop_attr  (** drop a random non-key attribute (paper: "drop attribute") *)
  | Rename_rel  (** rename the relation (paper: "rename relation") *)
  | Rename_attr
  | Add_attr

(** [gen_sc mirror rng i kind] produces a valid schema change against
    relation index [i], updating the mirror. *)
let gen_sc (m : mirror) rng i (kind : sc_kind) : Schema_change.t option =
  let r = m.rels.(i) in
  let source = source_of_index i in
  let non_key_attrs =
    List.filter
      (fun a ->
        not (String.equal (Attr.name a) (Paper_schema.key_attr (i + 1))))
      (Schema.attrs r.schema)
  in
  match kind with
  | Drop_attr -> (
      match non_key_attrs with
      | [] -> None (* nothing droppable left *)
      | attrs ->
          let a = Rng.pick rng attrs in
          let pos = Schema.index_of r.schema (Attr.name a) in
          r.schema <- Schema.drop r.schema (Attr.name a);
          r.tuples <- List.map (fun t -> Tuple.drop_at t pos) r.tuples;
          Some
            (Schema_change.Drop_attribute
               { source; rel = r.name; attr = Attr.name a }))
  | Rename_rel ->
      let new_name = Fmt.str "%s_r%d" r.name r.next_salt in
      r.next_salt <- r.next_salt + 1;
      let sc =
        Schema_change.Rename_relation
          { source; old_name = r.name; new_name }
      in
      r.name <- new_name;
      Some sc
  | Rename_attr -> (
      match non_key_attrs with
      | [] -> None
      | attrs ->
          let a = Rng.pick rng attrs in
          let new_name = Fmt.str "%s_n%d" (Attr.name a) r.next_salt in
          r.next_salt <- r.next_salt + 1;
          let sc =
            Schema_change.Rename_attribute
              { source; rel = r.name; old_name = Attr.name a; new_name }
          in
          r.schema <-
            Schema.rename r.schema ~old_name:(Attr.name a) ~new_name;
          Some sc)
  | Add_attr ->
      let name = Fmt.str "X%d_%d" (i + 1) r.next_salt in
      r.next_salt <- r.next_salt + 1;
      let attr = Attr.int name in
      let default = Value.int 0 in
      r.schema <- Schema.add r.schema attr;
      r.tuples <- List.map (fun t -> Tuple.append t default) r.tuples;
      Some (Schema_change.Add_attribute { source; rel = r.name; attr; default })

(** One scheduled event request: when, and what kind. *)
type request = At_du of float | At_sc of float * sc_kind

(** [build ~rows ~seed requests] walks the requests in time order against a
    fresh mirror and returns the valid timeline.  Requests that cannot be
    satisfied (e.g. a drop on a relation with no droppable attribute left)
    retry on another random relation, then are skipped. *)
let build ~rows ~seed (requests : request list) : Timeline.t =
  let rng = Rng.make seed in
  let m = make_mirror ~rows in
  let timeline = Timeline.create () in
  let sorted =
    List.stable_sort
      (fun a b ->
        let ta = match a with At_du t | At_sc (t, _) -> t in
        let tb = match b with At_du t | At_sc (t, _) -> t in
        Float.compare ta tb)
      requests
  in
  List.iter
    (fun req ->
      match req with
      | At_du time ->
          let i = Rng.int rng Paper_schema.n_relations in
          Timeline.schedule timeline ~time (Timeline.Du (gen_du m rng i))
      | At_sc (time, kind) ->
          let rec try_rel attempts =
            if attempts = 0 then ()
            else
              let i = Rng.int rng Paper_schema.n_relations in
              match gen_sc m rng i kind with
              | Some sc -> Timeline.schedule timeline ~time (Timeline.Sc sc)
              | None -> try_rel (attempts - 1)
          in
          try_rel 12)
    sorted;
  timeline

(** The paper's mixed workloads: [n_dus] data updates flooding in at
    [du_start] (spaced by [du_interval]) plus a schema-change train —
    [sc_kinds] in order, starting at [sc_start], spaced by [sc_interval]. *)
let mixed ~rows ~seed ?(du_start = 0.0) ?(du_interval = 0.0) ~n_dus
    ?(sc_start = 0.0) ~sc_interval ~sc_kinds () : Timeline.t =
  let dus =
    List.init n_dus (fun k ->
        At_du (du_start +. (float_of_int k *. du_interval)))
  in
  let scs =
    List.mapi
      (fun k kind -> At_sc (sc_start +. (float_of_int k *. sc_interval), kind))
      sc_kinds
  in
  build ~rows ~seed (dus @ scs)

(** The Figure 10/11/12 schema-change train: one drop-attribute followed by
    [n - 1] rename-relation operations. *)
let drop_then_renames n : sc_kind list =
  Drop_attr :: List.init (max 0 (n - 1)) (fun _ -> Rename_rel)

(** Zipf weights: [w_i ∝ (i + 1)^(-alpha)], normalized to sum 1.  The
    canonical heavy-tailed popularity law — [alpha = 0] is uniform,
    larger [alpha] concentrates commits on the first few relations. *)
let zipf ~alpha ~n : float array =
  if n <= 0 then invalid_arg "Generator.zipf: n <= 0";
  let w = Array.init n (fun i -> (float_of_int (i + 1)) ** -.alpha) in
  let z = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. z) w

(** Heavy-tailed DU-only workload: [n_dus] data updates evenly spaced
    over [0, horizon), each targeting a relation drawn from a Zipf law
    of exponent [alpha] over the paper schema's relations.  The skew is
    what makes shard-partition quality visible: a hot relation pins its
    whole stream to one shard. *)
let heavy_tailed ~rows ~seed ~n_dus ~horizon ?(alpha = 0.7) () : Timeline.t =
  let rng = Rng.make seed in
  let m = make_mirror ~rows in
  let timeline = Timeline.create () in
  let weights = zipf ~alpha ~n:Paper_schema.n_relations in
  let spacing = horizon /. float_of_int (max 1 n_dus) in
  for k = 0 to n_dus - 1 do
    let time = float_of_int k *. spacing in
    (* Inverse-CDF draw over the relation weights. *)
    let u = Rng.float rng 1.0 in
    let i =
      let rec find i acc =
        if i >= Array.length weights - 1 then i
        else
          let acc = acc +. weights.(i) in
          if u < acc then i else find (i + 1) acc
      in
      find 0 0.0
    in
    Timeline.schedule timeline ~time (Timeline.Du (gen_du m rng i))
  done;
  timeline
