(** Retry policy (timeout + exponential backoff + budget) for
    maintenance-query RPCs. *)

type policy = {
  timeout : float;  (** wait per attempt before declaring it lost, s *)
  backoff : float;  (** delay before the first retry, s *)
  multiplier : float;  (** backoff growth factor per further retry *)
  max_attempts : int;  (** total attempts (first try included), >= 1 *)
}

val make :
  ?backoff:float ->
  ?multiplier:float ->
  ?max_attempts:int ->
  timeout:float ->
  unit ->
  policy
(** [backoff] defaults to [timeout /. 2]. *)

val of_cost : Dyno_sim.Cost_model.t -> policy
(** Policy derived from the cost model's [rpc_timeout]. *)

val backoff_delay : policy -> attempt:int -> float
(** Delay charged before retry number [attempt] (first retry = 1). *)

(** Verdict after the retry budget is exhausted: a transient transport
    failure, not a broken query. *)
type unreachable = { source : string; attempts : int; waited : float }

val pp_unreachable : Format.formatter -> unreachable -> unit
val pp_policy : Format.formatter -> policy -> unit
