(** Retry policy for maintenance-query RPCs.

    A probe that gets no answer within [timeout] simulated seconds is
    retried after an exponentially growing backoff, up to [max_attempts]
    total attempts.  Exhausting the budget yields an {!unreachable}
    verdict — a {e transient} transport failure, distinct from a broken
    query: the scheduler waits for the source to recover and retries the
    maintenance step instead of aborting into VS/VA. *)

open Dyno_sim

type policy = {
  timeout : float;  (** wait per attempt before declaring it lost, s *)
  backoff : float;  (** delay before the first retry, s *)
  multiplier : float;  (** backoff growth factor per further retry *)
  max_attempts : int;  (** total attempts (first try included), >= 1 *)
}

let make ?(backoff = 0.0) ?(multiplier = 2.0) ?(max_attempts = 5) ~timeout ()
    =
  let backoff = if backoff > 0.0 then backoff else timeout /. 2.0 in
  { timeout; backoff; multiplier; max_attempts = max 1 max_attempts }

(** Derive a policy from the cost model's transport constants. *)
let of_cost (cm : Cost_model.t) = make ~timeout:cm.rpc_timeout ()

(** [backoff_delay p ~attempt] — delay charged before retry number
    [attempt] (the first retry is attempt 1). *)
let backoff_delay p ~attempt =
  p.backoff *. (p.multiplier ** float_of_int (max 0 (attempt - 1)))

(** Verdict after the retry budget is exhausted. *)
type unreachable = {
  source : string;
  attempts : int;  (** how many probes were sent *)
  waited : float;  (** simulated seconds spent on timeouts + backoff *)
}

let pp_unreachable ppf u =
  Fmt.pf ppf "source %s unreachable after %d attempts (%.3fs waited)"
    u.source u.attempts u.waited

let pp_policy ppf p =
  Fmt.pf ppf "timeout=%.3fs backoff=%.3fs x%.1f max_attempts=%d" p.timeout
    p.backoff p.multiplier p.max_attempts
