(** A simulated, unreliable message channel between the view manager and
    one population of autonomous sources.

    The paper assumes loosely-coupled sources reached over a network; this
    module is that network.  Every wrapper→UMQ update message and every
    maintenance-query RPC crosses a channel that can misbehave in the
    classic ways:

    - {b latency / jitter} — a fixed one-way delay plus a uniform random
      component per message;
    - {b loss} — a transmission is dropped; the wrapper retransmits after
      [retransmit] seconds until one copy gets through (messages are
      {e eventually} delivered — sources cannot abort, so their updates
      cannot be forgotten);
    - {b duplication} — the wrapper's retransmission races the original and
      both copies arrive (exactly-once delivery is restored downstream by
      the UMQ's sequence-number dedup);
    - {b reordering} — a message is held back by [reorder_delay], letting
      later messages overtake it (healed downstream by the UMQ's gap-aware
      hold buffer);
    - {b outages} — timed windows during which a source is unreachable:
      RPCs time out and in-flight messages park until the window closes.

    All randomness comes from one {!Dyno_sim.Rng} stream owned by the
    channel, so runs are exactly reproducible; a {!reliable} channel draws
    {e nothing} and delivers at send time, making the zero-fault
    configuration bit-identical to a direct in-process call. *)

open Dyno_sim

type outage = {
  source : string;  (** unreachable source *)
  starts : float;  (** window start (inclusive), s *)
  ends : float;  (** window end (exclusive), s *)
}

type faults = {
  latency : float;  (** fixed one-way delivery delay, s *)
  jitter : float;  (** max extra uniform delay per message, s *)
  loss : float;  (** P[one transmission is lost] *)
  dup : float;  (** P[a message is delivered twice] *)
  reorder : float;  (** P[a message is held back past its successors] *)
  reorder_delay : float;  (** how long a held-back message is delayed, s *)
  retransmit : float;  (** wrapper retransmission interval after a loss, s *)
  outages : outage list;
}

let reliable =
  {
    latency = 0.0;
    jitter = 0.0;
    loss = 0.0;
    dup = 0.0;
    reorder = 0.0;
    reorder_delay = 0.0;
    retransmit = 0.0;
    outages = [];
  }

let is_reliable f =
  f.latency = 0.0 && f.jitter = 0.0 && f.loss = 0.0 && f.dup = 0.0
  && f.reorder = 0.0 && f.outages = []

let pp_outage ppf o =
  Fmt.pf ppf "%s off [%.3fs, %.3fs)" o.source o.starts o.ends

let pp_faults ppf f =
  Fmt.pf ppf
    "@[<h>latency=%.3fs jitter=%.3fs loss=%.2f dup=%.2f reorder=%.2f \
     retransmit=%.3fs%a@]"
    f.latency f.jitter f.loss f.dup f.reorder f.retransmit
    Fmt.(list ~sep:nop (any " " ++ pp_outage))
    f.outages

type 'a packet = {
  source : string;
  seq : int;  (** per-source monotone sequence number *)
  sent : float;  (** commit time at the source *)
  arrival : float;  (** when the view manager receives this copy *)
  payload : 'a;
}

(** One maintenance-query round trip in flight on the wire. *)
type rpc = {
  rpc_id : int;
  rpc_source : string;
  issued : float;  (** when the request left the view manager *)
  ready : float;  (** when the answer arrives back *)
}

type 'a t = {
  faults : faults;
  rng : Rng.t;
  obs : Dyno_obs.Obs.t;
  mutable emitted : int;  (** tie-break for equal arrival times *)
  mutable order : ('a packet * int) list;  (** in flight: packet, emit idx *)
  mutable rpcs : rpc list;  (** in-flight maintenance-query RPCs *)
  mutable next_rpc : int;
  mutable lost_transmissions : int;
  mutable duplicates_sent : int;
}

let create ?(faults = reliable) ?(obs = Dyno_obs.Obs.disabled) ~seed () =
  {
    faults;
    rng = Rng.make seed;
    obs;
    emitted = 0;
    order = [];
    rpcs = [];
    next_rpc = 1;
    lost_transmissions = 0;
    duplicates_sent = 0;
  }

let faults t = t.faults
let in_flight t = List.length t.order
let lost_transmissions t = t.lost_transmissions
let duplicates_sent t = t.duplicates_sent

let outage_at t ~source ~now =
  List.find_opt
    (fun (o : outage) ->
      String.equal o.source source && o.starts <= now && now < o.ends)
    t.faults.outages

(** [rpc_lost t] — fate of one maintenance-query round trip: the request or
    the reply is lost.  Draws nothing when the loss rate is zero. *)
let rpc_lost t =
  let lost = Rng.bernoulli t.rng t.faults.loss in
  (* Evaluate the reply's fate unconditionally so the stream of draws does
     not depend on the request's outcome. *)
  let reply_lost = Rng.bernoulli t.rng t.faults.loss in
  lost || reply_lost

(* Delay the arrival past any outage window covering it: transmissions
   into a partitioned source fail until the window closes. *)
let past_outages t ~source arrival =
  List.fold_left
    (fun a (o : outage) ->
      if String.equal o.source source && o.starts <= a && a < o.ends then
        Float.max a o.ends
      else a)
    arrival t.faults.outages

let push t packet =
  t.order <- (packet, t.emitted) :: t.order;
  t.emitted <- t.emitted + 1

type send_report = {
  transmissions : int;  (** 1 + number of lost copies before one arrived *)
  duplicated : bool;
  arrival : float;  (** arrival of the first surviving copy *)
}

(** [send t ~now ~source ~seq payload] injects one update message.  The
    channel decides its fate deterministically from the fault config and
    the channel RNG; the message always arrives at least once. *)
let send t ~now ~source ~seq payload : send_report =
  let f = t.faults in
  (* Retransmit until one copy survives (geometric in the loss rate). *)
  let rec surviving k =
    if k > 1000 then k (* loss = 1.0 safety valve *)
    else if Rng.bernoulli t.rng f.loss then begin
      t.lost_transmissions <- t.lost_transmissions + 1;
      surviving (k + 1)
    end
    else k
  in
  let transmissions = surviving 1 in
  let jitter = if f.jitter > 0.0 then Rng.float t.rng f.jitter else 0.0 in
  let held = Rng.bernoulli t.rng f.reorder in
  let sp = Dyno_obs.Obs.spans t.obs
  and mx = Dyno_obs.Obs.metrics t.obs in
  if transmissions > 1 then begin
    Dyno_obs.Metrics.incr mx ~by:(transmissions - 1) "net.lost_transmissions";
    Dyno_obs.Span.instant sp ~time:now ~thread:source "msg-lost"
      (Fmt.str "seq=%d lost=%d" seq (transmissions - 1))
  end;
  if held then begin
    Dyno_obs.Metrics.incr mx "net.reorder_held";
    Dyno_obs.Span.instant sp ~time:now ~thread:source "msg-held"
      (Fmt.str "seq=%d delay=%.3fs" seq f.reorder_delay)
  end;
  let arrival =
    now +. f.latency
    +. (float_of_int (transmissions - 1) *. f.retransmit)
    +. jitter
    +. (if held then f.reorder_delay else 0.0)
    |> past_outages t ~source
  in
  push t { source; seq; sent = now; arrival; payload };
  let duplicated = Rng.bernoulli t.rng f.dup in
  if duplicated then begin
    t.duplicates_sent <- t.duplicates_sent + 1;
    Dyno_obs.Metrics.incr mx "net.duplicates_sent";
    Dyno_obs.Span.instant sp ~time:now ~thread:source "msg-dup"
      (Fmt.str "seq=%d" seq);
    let echo_lag = Float.max f.retransmit f.latency in
    let arrival2 = past_outages t ~source (arrival +. echo_lag) in
    push t { source; seq; sent = now; arrival = arrival2; payload }
  end;
  { transmissions; duplicated; arrival }

let compare_arrival ((a : _ packet), ia) ((b : _ packet), ib) =
  match Float.compare a.arrival b.arrival with
  | 0 -> Int.compare ia ib
  | c -> c

(** [due t ~now] pops every copy whose arrival time has passed, in arrival
    order. *)
let due t ~now =
  match t.order with
  | [] -> []
  | _ ->
      let ready, rest =
        List.partition
          (fun ((p : _ packet), _) -> p.arrival <= now +. 1e-12)
          t.order
      in
      t.order <- rest;
      List.map fst (List.sort compare_arrival ready)

(** [flush_source t ~source] pops {e every} in-flight copy from [source],
    regardless of arrival time, in sequence order — the FIFO-stream
    semantics of SWEEP: a maintenance-query answer travels the same
    ordered stream as the source's update messages, so its arrival implies
    every earlier message has arrived too. *)
let flush_source t ~source =
  let mine, rest =
    List.partition
      (fun ((p : _ packet), _) -> String.equal p.source source)
      t.order
  in
  t.order <- rest;
  List.map fst
    (List.sort
       (fun ((a : _ packet), ia) ((b : _ packet), ib) ->
         match Int.compare a.seq b.seq with
         | 0 -> Int.compare ia ib
         | c -> c)
       mine)

(* ------------------------------------------------------------------ *)
(* Split-phase maintenance-query RPCs                                  *)
(* ------------------------------------------------------------------ *)

(** [issue_rpc t ~now ~source ~ready] — register one maintenance-query
    round trip on the wire: the request leaves now, the answer lands at
    [ready].  Splitting issue from completion is what lets concurrent
    maintenance tasks overlap their round trips: each task parks until
    its own [ready] while other requests share the wire. *)
let issue_rpc t ~now ~source ~ready =
  let id = t.next_rpc in
  t.next_rpc <- id + 1;
  t.rpcs <- { rpc_id = id; rpc_source = source; issued = now; ready } :: t.rpcs;
  Dyno_obs.Metrics.set_gauge
    (Dyno_obs.Obs.metrics t.obs)
    "net.rpc_inflight"
    (float_of_int (List.length t.rpcs));
  id

let rpc_ready t id =
  match List.find_opt (fun r -> r.rpc_id = id) t.rpcs with
  | Some r -> r.ready
  | None -> invalid_arg "Channel.rpc_ready: unknown rpc id"

(** [complete_rpc t id] — take the finished round trip off the wire. *)
let complete_rpc t id =
  t.rpcs <- List.filter (fun r -> r.rpc_id <> id) t.rpcs;
  Dyno_obs.Metrics.set_gauge
    (Dyno_obs.Obs.metrics t.obs)
    "net.rpc_inflight"
    (float_of_int (List.length t.rpcs))

let rpcs_in_flight t = List.length t.rpcs

(** Earliest pending arrival, if any. *)
let next_arrival t =
  List.fold_left
    (fun acc ((p : _ packet), _) ->
      match acc with
      | None -> Some p.arrival
      | Some a -> Some (Float.min a p.arrival))
    None t.order

let pp ppf t =
  Fmt.pf ppf "@[<v>channel (%d in flight): %a@]" (in_flight t) pp_faults
    t.faults
