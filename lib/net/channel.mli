(** Simulated unreliable message channel between the view manager and the
    autonomous sources, with deterministic fault injection.

    A {!reliable} channel is a structural pass-through: it draws nothing
    from its RNG and delivers every message at its send time, so the
    zero-fault configuration behaves bit-identically to a direct
    in-process call. *)

(** A timed window during which one source is unreachable. *)
type outage = {
  source : string;  (** unreachable source *)
  starts : float;  (** window start (inclusive), s *)
  ends : float;  (** window end (exclusive), s *)
}

type faults = {
  latency : float;  (** fixed one-way delivery delay, s *)
  jitter : float;  (** max extra uniform delay per message, s *)
  loss : float;  (** P[one transmission is lost] *)
  dup : float;  (** P[a message is delivered twice] *)
  reorder : float;  (** P[a message is held back past its successors] *)
  reorder_delay : float;  (** how long a held-back message is delayed, s *)
  retransmit : float;  (** wrapper retransmission interval after a loss, s *)
  outages : outage list;
}

val reliable : faults
(** All rates and delays zero; no outages. *)

val is_reliable : faults -> bool

val pp_faults : Format.formatter -> faults -> unit

(** One delivered copy of an update message. *)
type 'a packet = {
  source : string;
  seq : int;  (** per-source monotone sequence number *)
  sent : float;  (** commit time at the source *)
  arrival : float;  (** when the view manager receives this copy *)
  payload : 'a;
}

type 'a t

(** [create ?faults ?obs ~seed ()] — [obs] (default
    {!Dyno_obs.Obs.disabled}) receives instant events ([msg-lost],
    [msg-dup], [msg-held], on the source's logical thread) and the
    [net.*] fault counters. *)
val create :
  ?faults:faults -> ?obs:Dyno_obs.Obs.t -> seed:int -> unit -> 'a t
val faults : 'a t -> faults
val in_flight : 'a t -> int

val lost_transmissions : 'a t -> int
(** Total transmissions dropped by the channel (each was retransmitted). *)

val duplicates_sent : 'a t -> int
(** Total messages the channel delivered twice. *)

type send_report = {
  transmissions : int;  (** 1 + number of lost copies before one arrived *)
  duplicated : bool;
  arrival : float;  (** arrival of the first surviving copy *)
}

val send :
  'a t -> now:float -> source:string -> seq:int -> 'a -> send_report
(** Inject one update message.  Loss is modelled as wrapper retransmission
    — every message eventually arrives, delayed by
    [lost × retransmit]. *)

val due : 'a t -> now:float -> 'a packet list
(** Pop every copy whose arrival time has passed, in arrival order. *)

val flush_source : 'a t -> source:string -> 'a packet list
(** Pop every in-flight copy from [source] regardless of arrival time, in
    sequence order.  Called when a maintenance-query answer arrives from
    that source: under SWEEP's FIFO-stream assumption the answer travels
    the same ordered stream as the updates, so its arrival implies all of
    them arrived first. *)

val next_arrival : 'a t -> float option
(** Earliest pending arrival, if any. *)

val issue_rpc : 'a t -> now:float -> source:string -> ready:float -> int
(** Register one maintenance-query round trip on the wire: the request
    leaves at [now], the answer lands at [ready]; returns a request id.
    The split issue/complete halves let concurrent maintenance tasks
    overlap their round trips — each task parks until its own [ready]
    while other requests share the wire. *)

val rpc_ready : 'a t -> int -> float
(** Arrival time of an in-flight RPC's answer.
    @raise Invalid_argument on an unknown id. *)

val complete_rpc : 'a t -> int -> unit
(** Take a finished round trip off the wire (idempotent). *)

val rpcs_in_flight : 'a t -> int

val outage_at : 'a t -> source:string -> now:float -> outage option
(** The outage window covering [now] for [source], if any. *)

val rpc_lost : 'a t -> bool
(** Decide the fate of one maintenance-query round trip (request or reply
    lost).  Draws nothing when the loss rate is zero. *)

val pp : Format.formatter -> 'a t -> unit
