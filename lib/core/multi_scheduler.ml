(** Multi-view Dyno: one update stream, several materialized views.

    The paper frames Dyno for a single view but notes it "has the
    potential to be plugged into any view system"; this module is that
    extension.  One UMQ and one dependency-correction pipeline serve a
    {e set} of views:

    - a schema change induces concurrent dependencies as soon as it
      conflicts with {e any} view ({!Dep_graph.build_many}), so the legal
      order is legal for every view at once;
    - the head entry is maintained against each view in turn.  If a later
      view's maintenance breaks, the entry stays queued while the earlier
      views have already committed it — so the scheduler tracks, per view,
      the set of {e applied} message ids still in the queue: on retry (or
      after the entry is merged into a larger batch) each view maintains
      only the messages it has not yet applied, and compensation is told
      to keep the applied ones in ([~applied]).

    Statistics are aggregated across views; per-view consistency is
    checked with the ordinary {!Consistency} tools against each view's own
    commit log. *)

open Dyno_view
open Dyno_sim

type view_state = {
  mv : Mat_view.t;
  mutable applied : int list;  (** queued message ids already integrated *)
}

type t = { views : view_state list }

let create mvs = { views = List.map (fun mv -> { mv; applied = [] }) mvs }

let views t = List.map (fun v -> v.mv) t.views

(* Detection + correction against all views at once. *)
let detect_and_correct ~(force : bool) (w : Query_engine.t) (t : t)
    (stats : Stats.t) : unit =
  let umq = Query_engine.umq w in
  let cost = Query_engine.cost w in
  let t0 = Query_engine.now w in
  let fired =
    if force then begin
      ignore (Umq.test_and_clear_schema_change_flag umq);
      true
    end
    else Umq.test_and_clear_schema_change_flag umq
  in
  if not fired then Query_engine.advance w cost.Cost_model.detect_flag
  else begin
    let obs = Query_engine.obs w in
    let sp = Dyno_obs.Obs.spans obs
    and mx = Dyno_obs.Obs.metrics obs in
    let now () = Query_engine.now w in
    let view_specs =
      List.filter_map
        (fun v ->
          let vd = Mat_view.def v.mv in
          if View_def.is_valid vd then
            Some (View_def.peek vd, View_def.schemas vd)
          else None)
        t.views
    in
    let g =
      Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Detect
        (Fmt.str "detect over %d view(s)" (List.length view_specs))
        (fun _ ->
          let td = now () in
          let g = Dep_graph.build_many view_specs (Umq.entries umq) in
          stats.Stats.detections <- stats.Stats.detections + 1;
          let n = Dep_graph.size g in
          let m =
            List.length (List.filter Update_msg.is_sc (Umq.messages umq))
          in
          Query_engine.advance w
            (Cost_model.detect cost ~n:(n * max 1 (List.length view_specs)) ~m);
          Dyno_obs.Metrics.observe mx "detect.pass_s" (now () -. td);
          g)
    in
    Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Correct "correct"
      (fun _ ->
        let tc = now () in
        let lin = Dyno_obs.Obs.lineage obs in
        List.iter
          (fun e ->
            Dyno_obs.Lineage.edge lin
              ~dep_ids:(Dep_graph.edge_dependent_ids g e)
              ~time:tc ~detail:(Dep_graph.describe_edge g e))
          (Dep_graph.unsafe g);
        let r = Correct.apply umq g in
        List.iter
          (fun ids ->
            Dyno_obs.Lineage.merged lin ~ids ~time:tc
              ~detail:
                (Fmt.str
                   "dependency cycle merged: %d update(s) now one batch"
                   (List.length ids)))
          r.Correct.merged_members;
        Query_engine.advance w
          (Cost_model.correct cost ~nodes:r.Correct.nodes
             ~edges:r.Correct.edges);
        Dyno_obs.Metrics.observe mx "correct.pass_s" (now () -. tc);
        if r.Correct.reordered then
          stats.Stats.corrections <- stats.Stats.corrections + 1;
        if r.Correct.merged_cycles > 0 then
          stats.Stats.merges <- stats.Stats.merges + r.Correct.merged_cycles)
  end;
  stats.Stats.busy <- stats.Stats.busy +. (Query_engine.now w -. t0)

(* Maintain one entry against one view, skipping already-applied msgs. *)
let maintain_for_view ?local ~compensate (w : Query_engine.t)
    (mk : Dyno_source.Meta_knowledge.t) (stats : Stats.t) (v : view_state)
    (entry : Umq.entry) : (unit, Query_engine.failure) result =
  let vd = Mat_view.def v.mv in
  let todo =
    List.filter
      (fun m -> not (List.mem (Update_msg.id m) v.applied))
      (Umq.entry_messages entry)
  in
  if todo = [] || not (View_def.is_valid vd) then Ok ()
  else
    let outcome =
      match todo with
      | [ m ] when Update_msg.is_du m -> (
          match Update_msg.as_du m with
          | Some u -> (
              match
                Dyno_vm.Vm.maintain ~compensate ~applied:v.applied ?local w
                  v.mv m u
              with
              | Dyno_vm.Vm.Refreshed { stats = s; _ } ->
                  stats.Stats.du_maintained <- stats.Stats.du_maintained + 1;
                  stats.Stats.probes <- stats.Stats.probes + s.Dyno_vm.Sweep.probes;
                  stats.Stats.probes_avoided <-
                    stats.Stats.probes_avoided + s.Dyno_vm.Sweep.probes_avoided;
                  stats.Stats.bytes_saved <-
                    stats.Stats.bytes_saved + s.Dyno_vm.Sweep.bytes_saved;
                  stats.Stats.view_commits <- stats.Stats.view_commits + 1;
                  Ok ()
              | Dyno_vm.Vm.Irrelevant ->
                  stats.Stats.irrelevant <- stats.Stats.irrelevant + 1;
                  Ok ()
              | Dyno_vm.Vm.Aborted b -> Error (Query_engine.Broken b)
              | Dyno_vm.Vm.Unreachable u ->
                  Error (Query_engine.Unreachable u))
          | None -> Ok ())
      | msgs -> (
          match Dyno_va.Batch.maintain ~applied:v.applied w v.mv mk msgs with
          | Dyno_va.Batch.Adapted ->
              (if List.exists Update_msg.is_sc msgs then
                 if List.length msgs > 1 then begin
                   stats.Stats.batches <- stats.Stats.batches + 1;
                   stats.Stats.batch_updates <-
                     stats.Stats.batch_updates + List.length msgs
                 end
                 else stats.Stats.sc_maintained <- stats.Stats.sc_maintained + 1);
              stats.Stats.view_commits <- stats.Stats.view_commits + 1;
              Ok ()
          | Dyno_va.Batch.Aborted b -> Error (Query_engine.Broken b)
          | Dyno_va.Batch.Unreachable u -> Error (Query_engine.Unreachable u)
          | Dyno_va.Batch.View_undefined _ ->
              stats.Stats.view_undefined <- true;
              Ok ())
    in
    match outcome with
    | Ok () ->
        v.applied <- List.map Update_msg.id todo @ v.applied;
        Ok ()
    | Error f -> Error f

(** The shared {!Run_config.t} record.  This scheduler consumes
    [strategy], [max_steps], [compensate] and [parallel] (per-view sweep
    overlap of a single-DU head entry, committing serially at the barrier
    in view order); [vm_mode] and [du_group] are ignored — the multi-view
    path always maintains incrementally, one entry at a time. *)
type config = Run_config.t = {
  strategy : Strategy.t;
  max_steps : int;
  compensate : bool;
  vm_mode : Run_config.vm_mode;
  du_group : int;
  parallel : int;
  self_maint : bool;
  runtime : [ `Simulated | `Domains of int ];
}

let default_config = Run_config.default

(* Per-view concurrent maintenance of one single-DU entry: the sweeps for
   distinct views are independent (each view has its own extent and
   commit log), so their probe round trips overlap on executor tasks;
   the refreshes commit serially at the barrier, in view order, stopping
   at the first failure.  Earlier views keep their commits — [applied]
   remembers them for the retry, exactly as in the serial loop. *)
let parallel_views ?(local_for = fun _ -> None) ?pool ~compensate
    (w : Query_engine.t) (stats : Stats.t) (vs : view_state list)
    (m : Update_msg.t) (u : Dyno_relational.Update.t) :
    (unit, Query_engine.failure) result =
  let obs = Query_engine.obs w in
  let sp = Dyno_obs.Obs.spans obs
  and mx = Dyno_obs.Obs.metrics obs in
  let exec = Query_engine.executor w in
  let k = List.length vs in
  Dyno_obs.Metrics.set_gauge mx "sched.inflight" (float_of_int k);
  Dyno_obs.Metrics.observe mx "sched.antichain_size" (float_of_int k);
  let t0 = Query_engine.now w in
  let results = Array.make k None in
  let spent = Array.make k 0.0 in
  (* Multicore runtime: fully-covered per-view local sweeps evaluate on
     the worker-domain pool; the rest takes the executor.  The per-view
     sweeps are independent (each view has its own extent and commit
     log) and no exclusion set is needed: a single shared update is
     being maintained, not an antichain. *)
  (match pool with
  | None -> ()
  | Some pool ->
      let precomputed =
        Scheduler.pool_sweeps ~pool ~compensate w stats
          (Array.of_list
             (List.map
                (fun v ->
                  {
                    Scheduler.pj_mv = v.mv;
                    pj_msg = m;
                    pj_du = u;
                    pj_applied = v.applied;
                    pj_exclude_extra = [];
                    pj_local = local_for v;
                  })
                vs))
      in
      Array.iteri
        (fun i r ->
          match r with Some s -> results.(i) <- Some s | None -> ())
        precomputed);
  let thunks =
    List.concat
      (List.mapi
         (fun i v ->
           if results.(i) <> None then []
           else
             [
               (fun () ->
                 Dyno_obs.Span.with_span sp
                   ~now:(fun () -> Query_engine.now w)
                   ~thread:(Fmt.str "view-%d" i) Dyno_obs.Span.Task
                   (Fmt.str "maintain #%d" (Update_msg.id m))
                   (fun _ ->
                     Dyno_obs.Lineage.set_scope
                       (Dyno_obs.Obs.lineage obs)
                       [ Update_msg.id m ];
                     let ts = Query_engine.now w in
                     results.(i) <-
                       Some
                         (Dyno_vm.Vm.maintain_sweep ~compensate
                            ~applied:v.applied ?local:(local_for v) w v.mv m
                            u);
                     spent.(i) <- Query_engine.now w -. ts));
             ])
         vs)
  in
  Executor.run_all exec thunks;
  let failure = ref None in
  List.iteri
    (fun i v ->
      if !failure = None then
        match results.(i) with
        | Some (Dyno_vm.Vm.Swept (dv, s)) -> (
            match Dyno_vm.Vm.commit_swept w v.mv m dv s with
            | Dyno_vm.Vm.Refreshed { stats = s; _ } ->
                stats.Stats.du_maintained <- stats.Stats.du_maintained + 1;
                stats.Stats.probes <-
                  stats.Stats.probes + s.Dyno_vm.Sweep.probes;
                stats.Stats.probes_avoided <-
                  stats.Stats.probes_avoided + s.Dyno_vm.Sweep.probes_avoided;
                stats.Stats.bytes_saved <-
                  stats.Stats.bytes_saved + s.Dyno_vm.Sweep.bytes_saved;
                stats.Stats.view_commits <- stats.Stats.view_commits + 1;
                v.applied <- Update_msg.id m :: v.applied
            | _ -> assert false)
        | Some Dyno_vm.Vm.Swept_irrelevant ->
            Mat_view.record_commit v.mv ~at:(Query_engine.now w)
              ~maintained:[ Update_msg.id m ];
            stats.Stats.irrelevant <- stats.Stats.irrelevant + 1;
            v.applied <- Update_msg.id m :: v.applied
        | Some (Dyno_vm.Vm.Swept_aborted b) ->
            failure := Some (Query_engine.Broken b)
        | Some (Dyno_vm.Vm.Swept_unreachable u) ->
            failure := Some (Query_engine.Unreachable u)
        | None -> assert false)
    vs;
  let elapsed = Query_engine.now w -. t0 in
  Dyno_obs.Metrics.add_gauge mx "net.overlap_saved_s"
    (Float.max 0.0 (Array.fold_left ( +. ) 0.0 spent -. elapsed));
  Dyno_obs.Metrics.set_gauge mx "sched.inflight" 0.0;
  match !failure with None -> Ok () | Some f -> Error f

(** [run ?config w t mk] — the multi-view Dyno loop: drains the UMQ and
    the timeline, maintaining every entry against every view. *)
let run ?(config = default_config) (w : Query_engine.t) (t : t)
    (mk : Dyno_source.Meta_knowledge.t) : Stats.t =
  let stats = Stats.create () in
  let umq = Query_engine.umq w in
  let steps = ref 0 in
  let trace = Query_engine.trace w in
  let obs = Query_engine.obs w in
  let sp = Dyno_obs.Obs.spans obs in
  let lin = Dyno_obs.Obs.lineage obs in
  let now () = Query_engine.now w in
  (* One auxiliary-view store per view: each view has its own join
     partners and coverage, so the stores are independent even though
     they all ride the same admitted stream. *)
  let stores =
    if config.self_maint then
      List.map
        (fun v ->
          let s = Scheduler.aux_store w v.mv in
          Query_engine.add_admit_hook w (Dyno_selfmaint.Aux_store.on_message s);
          (v, s))
        t.views
    else []
  in
  let local_for v =
    Option.map Dyno_selfmaint.Aux_store.local (List.assq_opt v stores)
  in
  (* Multicore runtime: one worker-domain pool for the run's per-view
     round compute. *)
  let pool =
    match config.runtime with
    | `Simulated -> None
    | `Domains d -> Some (Dyno_sim.Domain_pool.create ~domains:d)
  in
  (* One freshness tracker per view.  Frontiers are advanced only when an
     entry has been integrated by {e every} view (the Ok branch below) —
     a partially-applied entry still counts as unapplied lag for the
     views that already committed it, which is the conservative reading. *)
  let trackers =
    List.map
      (fun v ->
        ( v,
          Freshness.create
            ~metrics:(Dyno_obs.Obs.metrics obs)
            ~mv:v.mv
            ~registry:(Query_engine.registry w)
            ~queued:(Umq.messages umq) () ))
      t.views
  in
  let series = Dyno_obs.Obs.series obs in
  if Dyno_obs.Timeseries.enabled series then begin
    let mx = Dyno_obs.Obs.metrics obs in
    Dyno_obs.Timeseries.probe series "umq.depth" (fun _ ->
        float_of_int (List.length (Umq.entries umq)));
    Dyno_obs.Timeseries.probe series "sched.inflight" (fun _ ->
        Dyno_obs.Metrics.gauge_value mx "sched.inflight");
    Dyno_obs.Timeseries.probe series ~kind:`Counter "sched.view_commits"
      (fun _ -> float_of_int stats.Stats.view_commits);
    Dyno_obs.Timeseries.probe series ~kind:`Counter "sched.aborts" (fun _ ->
        float_of_int stats.Stats.aborts);
    Dyno_obs.Timeseries.probe series ~kind:`Counter "net.retries" (fun _ ->
        float_of_int (Query_engine.net_retries w));
    (* Aggregate = the worst (most stale) view. *)
    Dyno_obs.Timeseries.probe series "staleness_s" (fun now ->
        List.fold_left
          (fun acc (_, f) ->
            Float.max acc (Freshness.staleness_seconds f ~now))
          0.0 trackers);
    Dyno_obs.Timeseries.probe series "staleness_versions" (fun _ ->
        float_of_int
          (List.fold_left
             (fun acc (_, f) -> max acc (Freshness.lag_versions f))
             0 trackers));
    List.iter (fun (_, f) -> Freshness.register_probes f series) trackers
  end;
  (* Iteration body inside a [Maintain] span; as in {!Scheduler.run},
     every clock advance here is charged to [Stats.busy], so Σ maintain
     span durations = busy. *)
  let iteration mid =
    (match config.strategy with
    | Strategy.Pessimistic -> detect_and_correct ~force:false w t stats
    | Strategy.Optimistic | Strategy.Merge_all -> ());
    match Umq.head umq with
    | None -> ()
    | Some entry -> (
        Dyno_obs.Span.set_name sp mid (Fmt.str "%a" Umq.pp_entry entry);
        Umq.clear_broken_query_flag umq;
        let t0 = Query_engine.now w in
        let eids = Umq.entry_ids entry in
        Dyno_obs.Lineage.dispatch lin ~ids:eids ~time:t0
          ~detail:
            (Fmt.str "dispatched at queue head (%d view(s))"
               (List.length t.views))
          ();
        (* Serial view-by-view probes charge the head entry's updates. *)
        Dyno_obs.Lineage.set_scope lin eids;
        let rec maintain_views = function
          | [] -> Ok ()
          | v :: rest -> (
              match
                maintain_for_view ?local:(local_for v)
                  ~compensate:config.compensate w mk stats v entry
              with
              | Ok () -> maintain_views rest
              | Error f -> Error f)
        in
        (* With [parallel > 1] a single-DU entry's sweeps run for all
           eligible views concurrently (capped at [parallel]; any
           remainder — and every other entry shape — takes the serial
           view-by-view path, which skips already-applied views). *)
        let outcome =
          match entry with
          | Umq.Single m when config.parallel > 1 && Update_msg.is_du m -> (
              match Update_msg.as_du m with
              | Some u -> (
                  let eligible =
                    List.filter
                      (fun v ->
                        View_def.is_valid (Mat_view.def v.mv)
                        && not (List.mem (Update_msg.id m) v.applied))
                      t.views
                  in
                  if List.length eligible < 2 then maintain_views t.views
                  else
                    let chunk =
                      List.filteri (fun i _ -> i < config.parallel) eligible
                    in
                    match
                      parallel_views ~local_for ?pool
                        ~compensate:config.compensate w stats chunk m u
                    with
                    | Ok () -> maintain_views t.views
                    | Error f -> Error f)
              | None -> maintain_views t.views)
          | _ -> maintain_views t.views
        in
        match outcome with
        | Ok () ->
            Dyno_obs.Span.set_attr sp mid "outcome" "done";
            stats.Stats.busy <-
              stats.Stats.busy +. (Query_engine.now w -. t0);
            (* Entry fully integrated everywhere: dequeue and drop its
               ids from the applied sets (they can never reappear). *)
            let msgs = Umq.entry_messages entry in
            List.iter
              (fun (_, f) ->
                Freshness.note_entry f ~now:(Query_engine.now w) msgs)
              trackers;
            Dyno_obs.Lineage.finish lin ~ids:eids ~time:(Query_engine.now w)
              ~state:Dyno_obs.Lineage.Applied
              ~detail:
                (Fmt.str "integrated by all %d view(s)" (List.length t.views));
            List.iter
              (fun v ->
                v.applied <-
                  List.filter (fun id -> not (List.mem id eids)) v.applied)
              t.views;
            Umq.remove_head umq
        | Error (Query_engine.Unreachable u) ->
            (* Transient transport failure: the partially-applied entry
               stays queued ([applied] remembers which views already
               integrated it); wait out the outage and retry.  No abort,
               no correction — the queue order is not the problem. *)
            Dyno_obs.Span.set_attr sp mid "outcome" "stalled";
            let dt = Query_engine.now w -. t0 in
            stats.Stats.busy <- stats.Stats.busy +. dt;
            stats.Stats.net_stalls <- stats.Stats.net_stalls + 1;
            Dyno_obs.Metrics.incr (Dyno_obs.Obs.metrics obs) "net.stalls";
            Trace.recordf trace ~time:(Query_engine.now w) Trace.Outage
              "multi-view maintenance stalled: %a; waiting for recovery"
              Dyno_net.Retry.pp_unreachable u;
            let waited =
              Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Stall
                (Fmt.str "stall on %s" u.Dyno_net.Retry.source)
                (fun _ ->
                  Query_engine.await_recovery w
                    ~source:u.Dyno_net.Retry.source)
            in
            stats.Stats.busy <- stats.Stats.busy +. waited;
            Dyno_obs.Lineage.stall lin ~ids:eids ~time:(Query_engine.now w)
              ~detail:(Fmt.str "%a" Dyno_net.Retry.pp_unreachable u)
        | Error (Query_engine.Broken b) ->
            let dt = Query_engine.now w -. t0 in
            stats.Stats.busy <- stats.Stats.busy +. dt;
            stats.Stats.abort_cost <- stats.Stats.abort_cost +. dt;
            stats.Stats.aborts <- stats.Stats.aborts + 1;
            stats.Stats.broken_queries <- stats.Stats.broken_queries + 1;
            Dyno_obs.Span.set_attr sp mid "outcome" "aborted";
            Dyno_obs.Span.set_attr sp mid "abort_s" (Fmt.str "%.17g" dt);
            Trace.recordf trace ~time:(Query_engine.now w) Trace.Abort
              "multi-view maintenance aborted: %a"
              Dyno_source.Data_source.pp_broken b;
            Dyno_obs.Lineage.abort lin ~ids:eids ~time:(Query_engine.now w)
              ~detail:(Scheduler.abort_provenance umq b);
            (match config.strategy with
            | Strategy.Pessimistic ->
                if not (Umq.peek_schema_change_flag umq) then
                  detect_and_correct ~force:true w t stats
            | Strategy.Optimistic -> detect_and_correct ~force:true w t stats
            | Strategy.Merge_all ->
                let r = Correct.merge_all umq in
                if r.Correct.reordered then begin
                  stats.Stats.corrections <- stats.Stats.corrections + 1;
                  stats.Stats.merges <- stats.Stats.merges + 1;
                  Scheduler.note_merge_all lin ~time:(Query_engine.now w) r
                end))
  in
  let rec loop () =
    incr steps;
    if !steps > config.max_steps then
      raise (Scheduler.Step_limit_exceeded !steps);
    Query_engine.deliver_due w;
    List.iter (fun (v, s) -> Scheduler.sync_aux w s v.mv) stores;
    ignore
      (Dyno_obs.Timeseries.maybe_sample series ~now:(Query_engine.now w)
        : bool);
    if Umq.is_empty umq then begin
      (* Wake for the next commit or the next in-flight message arrival. *)
      match Query_engine.next_wakeup w with
      | None -> ()
      | Some tm ->
          let dt = tm -. Query_engine.now w in
          if dt > 0.0 then stats.Stats.idle <- stats.Stats.idle +. dt;
          Query_engine.idle_until w tm;
          loop ()
    end
    else begin
      Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Maintain
        (Fmt.str "step %d" !steps)
        iteration;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Dyno_sim.Domain_pool.shutdown pool)
    loop;
  Dyno_obs.Timeseries.sample series ~now:(Query_engine.now w);
  stats.Stats.end_time <- Query_engine.now w;
  Scheduler.record_net_stats w stats;
  Scheduler.mirror_stats obs stats;
  stats
