(** The dependency graph over the Update Message Queue and its correction
    (Sections 4.1.1 and 4.2): graph construction in O(m·n + n), unsafe
    detection, Tarjan SCC cycle merging, stable topological sort into a
    legal order (Theorem 2). *)

open Dyno_relational
open Dyno_view

type t

val build : Query.t -> (string * Schema.t) list -> Umq.entry list -> t
(** [build view_query believed_schemas entries] constructs the dependency
    graph for the current queue contents. *)

val build_many :
  (Query.t * (string * Schema.t) list) list -> Umq.entry list -> t
(** Multi-view construction: a schema change induces concurrent
    dependencies as soon as it conflicts with {e any} of the views. *)

val make : nodes:Umq.entry list -> edges:Dependency.edge list -> t
(** Build a graph directly from nodes and edges (analysis of hand-crafted
    dependency structures; [build] is the normal entry point). *)

val nodes : t -> Umq.entry list
val edges : t -> Dependency.edge list
val size : t -> int

val unsafe : t -> Dependency.edge list
(** Unsafe dependencies under the current queue order (Definition 6).
    Cached at construction (node indices are queue positions, and the graph
    is immutable), so this is O(1) per call. *)

val unsafe_count : t -> int
(** [List.length (unsafe g)], without materializing anything new. *)

val has_unsafe : t -> bool

val scc : t -> int list list
(** Strongly connected components (each a list of node indices), Tarjan's
    algorithm, O(n + e).  Multi-node components are the maintenance
    deadlocks of Section 3.5. *)

val describe_edge : t -> Dependency.edge -> string
(** A human-readable account of why the edge exists, naming the message
    ids involved and (for concurrent dependencies) the triggering schema
    change — the provenance [dyno explain] replays. *)

val edge_dependent_ids : t -> Dependency.edge -> int list
(** Message ids of the edge's dependent entry — where the provenance is
    recorded in the lineage. *)

type correction = {
  order : Umq.entry list;  (** the legal order to install in the UMQ *)
  merged_cycles : int;  (** number of cycles collapsed into batches *)
  merged_updates : int;  (** messages involved in those cycles *)
  merged_members : int list list;
      (** message ids of each collapsed cycle, one list per new batch *)
}

val correct : t -> correction
(** Compute a legal order: cycles merged into batch entries (members in
    commit order), then a stable topological sort — updates are reordered
    only as far as the dependencies force.  By Theorem 2 every dependency
    is safe in the result. *)

val pp : Format.formatter -> t -> unit
