(** The shared runtime configuration record consumed by all three
    schedulers — serial ({!Scheduler}), multi-view ({!Multi_scheduler})
    and sharded ({!Shard_scheduler}).  One record, one set of defaults,
    one CLI plumbing path.  Schedulers that do not implement a knob
    document it as ignored ({!Multi_scheduler} ignores [vm_mode] and
    [du_group]). *)

(** How data updates are maintained. *)
type vm_mode =
  | Incremental  (** SWEEP-style probes computing a view delta (default) *)
  | Recompute
      (** naive baseline: re-materialize the whole view per update — the
          classic strawman incremental maintenance is measured against *)

type t = {
  strategy : Strategy.t;
  max_steps : int;  (** safety valve against livelock in tests *)
  compensate : bool;
      (** SWEEP compensation for concurrent DUs; disable only to
          demonstrate the duplication anomaly (Example 1.a) *)
  vm_mode : vm_mode;
  du_group : int;
      (** deferred/grouped maintenance: up to this many consecutive queued
          data updates are maintained as one atomic batch (1 = the paper's
          per-update processing).  Groups never cross schema changes or
          merged batches and preserve queue order, so dependencies stay
          safe; the view skips intermediate states (freshness for
          throughput). *)
  parallel : int;
      (** dependency-parallel maintenance: up to this many mutually
          independent queued entries — an antichain of the corrected
          topological order — are maintained concurrently per queue,
          overlapping their probe round trips on cooperative executor
          tasks.  [1] (the default) is the strictly serial per-queue
          scheduler. *)
  self_maint : bool;
      (** self-maintenance tier: keep auxiliary probe-column projections
          current at the view manager and answer maintenance sweeps
          locally whenever they cover the probed aliases, falling back to
          SWEEP probes on any coverage miss or schema-change
          invalidation.  [false] (the default) is byte-identical to a
          build without the tier. *)
  runtime : [ `Simulated | `Domains of int ];
      (** execution backend for the CPU-heavy sweep compute.
          [`Simulated] (the default) runs everything on the cooperative
          effect-handler executor — single host core, deterministic,
          byte-identical to every prior release.  [`Domains n] evaluates
          the pure local-sweep compute of a dispatched round on a pool
          of [n] real OCaml 5 domains ({!Dyno_sim.Domain_pool}) while
          admission, the UMQ sequencer, probe scheduling, commits and
          the cross-shard barrier stay serial on the coordinator domain
          — same extents, same verdicts, real wall-clock speedup (see
          DESIGN.md §17). *)
}

val default : t
(** Pessimistic, compensated, incremental, no grouping, serial, one
    million steps. *)

val of_strategy : Strategy.t -> t
(** [default] with the given strategy — the most common construction. *)

val with_strategy : Strategy.t -> t -> t
val with_max_steps : int -> t -> t
val with_compensate : bool -> t -> t
val with_vm_mode : vm_mode -> t -> t
val with_du_group : int -> t -> t
val with_parallel : int -> t -> t
val with_self_maint : bool -> t -> t
val with_runtime : [ `Simulated | `Domains of int ] -> t -> t
