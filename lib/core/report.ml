(** Post-run reporting: cost breakdowns derived from an execution trace.

    {!Stats} carries the aggregate counters the benchmarks plot; this
    module digs into the {!Dyno_sim.Trace} to answer the operational
    questions a user of the system asks after a run: how long do
    maintenance processes take, split by kind and outcome?  where do
    broken queries happen?  how much time went to each activity? *)

open Dyno_sim

(** Classification of one maintenance episode found in the trace. *)
type episode_kind = Du_maint | Sc_maint | Batch_maint

let episode_kind_to_string = function
  | Du_maint -> "data update"
  | Sc_maint -> "schema change"
  | Batch_maint -> "merged batch"

type episode = {
  kind : episode_kind;
  started : float;
  duration : float;
  aborted : bool;
}

(** Summary statistics over a list of durations. *)
type summary = {
  count : int;
  total : float;
  mean : float;
  max : float;
}

let summarize durations =
  match durations with
  | [] -> { count = 0; total = 0.0; mean = 0.0; max = 0.0 }
  | ds ->
      let total = List.fold_left ( +. ) 0.0 ds in
      {
        count = List.length ds;
        total;
        mean = total /. float_of_int (List.length ds);
        max = List.fold_left Float.max 0.0 ds;
      }

type t = {
  episodes : episode list;
  event_counts : (Trace.kind * int) list;  (** non-zero kinds only *)
  broken_by_source : (string * int) list;
}

(* A maintenance episode starts at Maint_start and ends at the next
   Refresh/Adapt (success) or Abort; its kind is inferred from the entry
   text (single DU vs SC vs BATCH). *)
let episodes_of_trace (tr : Trace.t) : episode list =
  let entries = Trace.entries tr in
  let rec go acc = function
    | [] -> List.rev acc
    | (e : Trace.entry) :: rest when e.kind = Trace.Maint_start ->
        let kind =
          if String.length e.detail >= 5 && String.sub e.detail 0 5 = "BATCH"
          then Batch_maint
          else if
            (* "#id@t DU(...)" vs "#id@t SC(...)" *)
            match String.index_opt e.detail ' ' with
            | Some i ->
                i + 2 < String.length e.detail
                && String.sub e.detail (i + 1) 2 = "SC"
            | None -> false
          then Sc_maint
          else Du_maint
        in
        let rec finish = function
          | [] -> None
          | (f : Trace.entry) :: more -> (
              match f.kind with
              | Trace.Refresh | Trace.Adapt ->
                  Some (f.time, false, more)
              | Trace.Abort -> Some (f.time, true, more)
              | Trace.Maint_start -> None (* no terminal event recorded *)
              | _ -> finish more)
        in
        (match finish rest with
        | Some (endt, aborted, _) ->
            go
              ({ kind; started = e.time; duration = endt -. e.time; aborted }
              :: acc)
              rest
        | None -> go acc rest)
    | _ :: rest -> go acc rest
  in
  go [] entries

let broken_by_source (tr : Trace.t) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.entry) ->
      (* detail ends with "... at <source>: reason" *)
      match String.split_on_char ' ' e.detail with
      | _ ->
          let detail = e.detail in
          let marker = " at " in
          let rec find_from i =
            if i + 4 > String.length detail then None
            else if String.sub detail i 4 = marker then Some (i + 4)
            else find_from (i + 1)
          in
          (match find_from 0 with
          | Some start ->
              let rest = String.sub detail start (String.length detail - start) in
              let src =
                match String.index_opt rest ':' with
                | Some j -> String.sub rest 0 j
                | None -> rest
              in
              Hashtbl.replace tbl src
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl src))
          | None -> ()))
    (Trace.find_all tr Trace.Broken_query);
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let all_kinds =
  [
    Trace.Commit; Trace.Enqueue; Trace.Maint_start; Trace.Query_sent;
    Trace.Query_answered; Trace.Broken_query; Trace.Compensate; Trace.Abort;
    Trace.Refresh; Trace.Detect; Trace.Correct; Trace.Merge; Trace.Sync;
    Trace.Adapt; Trace.Msg_dropped; Trace.Msg_duplicated; Trace.Timeout;
    Trace.Retry; Trace.Outage; Trace.Info;
  ]

(** [of_trace tr] builds the full report. *)
let of_trace (tr : Trace.t) : t =
  {
    episodes = episodes_of_trace tr;
    event_counts =
      List.filter_map
        (fun k ->
          let c = Trace.count tr k in
          if c > 0 then Some (k, c) else None)
        all_kinds;
    broken_by_source = broken_by_source tr;
  }

(** [by_kind r kind ~aborted] durations of matching episodes. *)
let by_kind (r : t) kind ~aborted =
  List.filter_map
    (fun e ->
      if e.kind = kind && e.aborted = aborted then Some e.duration else None)
    r.episodes

let pp ppf (r : t) =
  Fmt.pf ppf "@[<v>maintenance episodes:@,";
  List.iter
    (fun kind ->
      List.iter
        (fun aborted ->
          let s = summarize (by_kind r kind ~aborted) in
          if s.count > 0 then
            Fmt.pf ppf
              "  %-13s %-9s  n=%-4d total=%8.2fs  mean=%7.3fs  max=%7.3fs@,"
              (episode_kind_to_string kind)
              (if aborted then "(aborted)" else "(ok)")
              s.count s.total s.mean s.max)
        [ false; true ])
    [ Du_maint; Sc_maint; Batch_maint ];
  Fmt.pf ppf "event counts:@,";
  List.iter
    (fun (k, c) -> Fmt.pf ppf "  %-15s %d@," (Trace.kind_to_string k) c)
    r.event_counts;
  if r.broken_by_source <> [] then begin
    Fmt.pf ppf "broken queries by source:@,";
    List.iter
      (fun (s, c) -> Fmt.pf ppf "  %-10s %d@," s c)
      r.broken_by_source
  end;
  Fmt.pf ppf "@]"
