(** Sharded Dyno: scale-out of the dynamic reordering scheduler.

    Sources are partitioned across shards by a {!Shard.t} plan; each
    shard owns its own UMQ, transport channel and exactly-once sequencer
    (installed by {!Dyno_view.Query_engine.install_routes}) and drains
    single data updates independently — per round, every shard
    contributes an antichain of DUs from distinct sources, all sweeps
    run as concurrent executor tasks, and refreshes commit serially in
    global arrival order (message id), exactly the dispatch-time
    exclusion-set discipline of {!Scheduler}'s parallel rounds lifted
    across queues.

    Schema changes cannot stay shard-local: a drop/rename conflicts with
    the one global view definition, and its concurrent dependencies may
    reach data updates queued on {e other} shards.  The first round that
    sees any shard's schema-change flag raised becomes a {b cross-shard
    barrier}: every queue pauses, the union of all queued entries (in
    global arrival order) runs through the {!Dep_graph} detection +
    correction machinery, and the corrected legal order is maintained
    serially up to and including its last schema change — so the global
    commit order is always a corrected topological order, shard
    boundaries notwithstanding.  The corrected order is ephemeral: shard
    queues are never rewritten, the pure-DU suffix simply resumes
    independent parallel draining.  An in-exec abort during the barrier
    restarts it on a fresh snapshot (the newly-detected conflict is part
    of the next graph).

    With a 1-shard plan this delegates to {!Scheduler.run} — bit-for-bit
    the historical behaviour. *)

open Dyno_view

val run :
  ?config:Run_config.t ->
  plan:Shard.t ->
  Query_engine.t ->
  Mat_view.t ->
  Dyno_source.Meta_knowledge.t ->
  Stats.t
(** Drain every shard's UMQ and the timeline.  [config.parallel] is the
    {e per-shard} antichain width (total in-flight sweeps per round is at
    most [parallel × shards]); [config.vm_mode = Recompute] forces the
    serial path.  The engine must have exactly one route per shard of
    [plan] (raises [Invalid_argument] otherwise; a 1-shard plan accepts
    the default single route).
    @raise Scheduler.Step_limit_exceeded beyond [config.max_steps]. *)
