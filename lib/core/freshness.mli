(** Per-view freshness/staleness tracking against the sources' commit
    frontiers: versions lag (committed-but-unapplied updates) and seconds
    staleness (time since the view was last a faithful image of every
    source; exactly 0 at quiescence).  Records per-view and aggregate
    [staleness_s] / [staleness_versions] histograms at every apply and
    registers sampler probes for staleness-over-time.  Pure bookkeeping —
    never touches the simulated clock, trace or spans. *)

type t

val create :
  metrics:Dyno_obs.Metrics.t ->
  mv:Dyno_view.Mat_view.t ->
  registry:Dyno_source.Registry.t ->
  queued:Dyno_view.Update_msg.t list ->
  unit ->
  t
(** [queued] — messages already admitted to the UMQ at tracker creation:
    their versions count as unapplied; everything older is the initial
    materialization's baseline. *)

val view_name : t -> string

val lag_versions : t -> int
(** Committed-but-unapplied updates, summed over sources. *)

val staleness_seconds : t -> now:float -> float
(** Seconds since the view last reflected every source (0 when caught
    up). *)

val note_applied :
  t -> now:float -> source:string -> version:int -> commit_time:float -> unit
(** The view now reflects [source] up to [version].  Re-derives the lag
    before/after at the same [now] and counts any monotonicity violation
    in [freshness.monotonicity_violations] (pinned at 0 by tests). *)

val note_entry : t -> now:float -> Dyno_view.Update_msg.t list -> unit
(** {!note_applied} for every message of a maintained queue entry. *)

val register_probes : t -> Dyno_obs.Timeseries.t -> unit
(** Staleness gauges + per-source commit/applied frontier probes
    ([`Counter]-kinded, so the sampler derives commit/apply rates). *)

val frontier : t -> (string * int * int) list
(** Per-source [(source, applied version, committed version)]. *)
