(** Dependency correction (Section 4.2): install a legal order in the UMQ.
    Cycles are merged — sources cannot abort, so a maintenance deadlock is
    resolved by processing its members as one atomic batch. *)

open Dyno_view

type report = {
  reordered : bool;  (** the queue order actually changed *)
  merged_cycles : int;
  merged_updates : int;
  merged_members : int list list;
      (** message ids of each collapsed cycle — merge provenance *)
  nodes : int;
  edges : int;
}

val apply : Umq.t -> Dep_graph.t -> report
(** [apply umq g] corrects the queue according to graph [g] and installs
    the legal order.  The set of queued updates is preserved exactly
    ({!Umq.replace} enforces it). *)

val merge_all : Umq.t -> report
(** The strawman correction the paper argues against: collapse the whole
    queue into a single batch (members in commit order).  Kept as an
    experimental baseline. *)
