(** Consistency checkers: the correctness criteria of Section 4.4, made
    executable.

    - {b Convergence}: once every update is maintained, the view extent
      equals a full re-evaluation of the (current) view definition over the
      sources' current states.
    - {b Strong consistency} [20]: every committed view state equals the
      view definition {e at that commit} evaluated over a {e valid} source
      state vector, and those vectors advance monotonically in source-commit
      order — i.e. the view walks through real source states, in order,
      skipping none that it claimed to reflect.

    The strong check replays the commit log: the cumulative set of
    maintained message ids determines, per source, the version the view
    claims to reflect; the versioned stores of [Dyno_source.Data_source]
    reconstruct exactly that state. *)

open Dyno_relational
open Dyno_view

type mismatch = {
  commit_index : int;
  at : float;
  reason : string;
}

type report = { checked : int; skipped : int; mismatches : mismatch list }

let ok r = r.mismatches = []

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "consistent (%d commit(s) checked, %d skipped)" r.checked
      r.skipped
  else
    Fmt.pf ppf "@[<v>%d INCONSISTENT commit(s) of %d:@,%a@]"
      (List.length r.mismatches)
      r.checked
      Fmt.(
        list ~sep:cut (fun ppf m ->
            Fmt.pf ppf "  commit %d at %.3fs: %s" m.commit_index m.at m.reason))
      r.mismatches

(** [convergent w mv] — final-state check.  [Ok true] when the extent
    matches a recompute; [Error] when the view is invalid (nothing to
    check). *)
let convergent (w : Query_engine.t) (mv : Mat_view.t) :
    (bool, string) Stdlib.result =
  let vd = Mat_view.def mv in
  if not (View_def.is_valid vd) then Error "view is undefined"
  else
    let q = View_def.peek vd in
    try
      let env (tr : Query.table_ref) =
        match Query_engine.source_relation w ~source:tr.source ~rel:tr.rel with
        | Some r -> r
        | None ->
            raise (Eval.Error (Fmt.str "missing %s@%s" tr.rel tr.source))
      in
      let expected = Eval.run ~planner:(Query_engine.planner w) ~catalog:env q in
      Ok (Relation.equal expected (Mat_view.extent mv))
    with Eval.Error e -> Error e

(** [check_strong w mv] — replay every snapshot-tracked commit.

    For commit [k], the claimed source-state vector assigns each source the
    highest version among the maintained messages' [source_version]s seen
    so far (or the initial version 0).  The commit is consistent iff its
    snapshot equals its definition snapshot evaluated over those
    reconstructed states.  Commits without snapshots are skipped (snapshot
    tracking off). *)
let check_strong (w : Query_engine.t) (mv : Mat_view.t)
    ~(msg_index : (int * (string * int)) list) : report =
  (* [msg_index]: message id -> (source id, source_version). *)
  let versions : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let checked = ref 0 and skipped = ref 0 in
  let mismatches = ref [] in
  List.iteri
    (fun k (c : Mat_view.commit) ->
      (* Advance the claimed vector with this commit's maintained ids. *)
      List.iter
        (fun id ->
          match List.assoc_opt id msg_index with
          | None -> ()
          | Some (src, v) ->
              let cur = Option.value ~default:0 (Hashtbl.find_opt versions src) in
              if v > cur then Hashtbl.replace versions src v)
        c.Mat_view.maintained;
      match (c.Mat_view.snapshot, c.Mat_view.def_snapshot) with
      | Some extent, Some (q, _) -> (
          incr checked;
          try
            let env (tr : Query.table_ref) =
              let s =
                Dyno_source.Registry.find (Query_engine.registry w) tr.source
              in
              let v =
                Option.value ~default:0 (Hashtbl.find_opt versions tr.source)
              in
              Dyno_source.Data_source.relation_at s ~version:v tr.rel
            in
            let expected =
              Eval.run ~planner:(Query_engine.planner w) ~catalog:env q
            in
            if not (Relation.equal expected extent) then
              mismatches :=
                {
                  commit_index = k;
                  at = c.Mat_view.at;
                  reason =
                    Fmt.str
                      "extent (%d tuples) differs from view over claimed \
                       source states (%d tuples)"
                      (Relation.cardinality extent)
                      (Relation.cardinality expected);
                }
                :: !mismatches
          with
          | Eval.Error e | Failure e ->
              mismatches :=
                { commit_index = k; at = c.Mat_view.at; reason = e }
                :: !mismatches
          | Catalog.No_such_relation r ->
              mismatches :=
                {
                  commit_index = k;
                  at = c.Mat_view.at;
                  reason = Fmt.str "relation %s absent at claimed version" r;
                }
                :: !mismatches)
      | _ -> incr skipped)
    (Mat_view.commits mv);
  { checked = !checked; skipped = !skipped; mismatches = List.rev !mismatches }
