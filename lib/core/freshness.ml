(** Per-view freshness/staleness tracking.

    The question the paper's consistency levels do not answer is {e how
    far behind} the view runs while Dyno reorders, aborts and corrects.
    This tracker measures it, per view, against the sources' commit
    frontiers:

    - {b versions lag} — Σ over sources of (source commit version −
      applied version): how many committed updates the view has not yet
      integrated;
    - {b seconds staleness} at time [t] — [t − min over sources τ_s]
      where [τ_s] is the commit time of the {e oldest unapplied} commit
      of source [s] (and [t] itself when the view is caught up with
      [s]).  Equivalently: how long ago did the view stop being a
      faithful image of the source state?  Exactly 0 at quiescence.

    Both are monotone under maintenance: applying an update can only
    raise an applied frontier, which can only lower (never raise) the
    staleness read at a fixed instant.  {!note_applied} re-derives the
    lag before and after each frontier advance at the same [now] and
    counts any violation in the [freshness.monotonicity_violations]
    counter — the qcheck property in [test/test_obs.ml] pins it at 0.

    Every {!note_applied} also records the {e age} of the update being
    applied ([now − commit_time]) into the [view.<name>.staleness_s] and
    aggregate [staleness_s] histograms (versions lag likewise into
    [*.staleness_versions]), so [dyno report] can print p50/p90/p99
    staleness even without the sampler; the {!register_probes} gauges
    feed the {!Dyno_obs.Timeseries} sampler for staleness-over-time.

    The tracker is pure bookkeeping: it never touches the simulated
    clock, the trace or the spans, so it cannot perturb a run. *)

open Dyno_view

type src = {
  ds : Dyno_source.Data_source.t;
  mutable applied : int;  (** highest source version the view reflects *)
}

type t = {
  metrics : Dyno_obs.Metrics.t;
  view : string;
  mv : Mat_view.t;
  sources : (string * src) list;  (** sorted by source id *)
}

(* The view's applied baseline for a source: everything committed before
   the run start is part of the initial materialization — except commits
   whose messages are already sitting in the UMQ unmaintained, which are
   exactly the queue's business.  (Messages still on the wire surface
   later through [note_applied]'s max semantics.) *)
let baseline ds queued =
  let id = Dyno_source.Data_source.id ds in
  let min_queued =
    List.fold_left
      (fun acc m ->
        if String.equal (Update_msg.source m) id then
          match acc with
          | None -> Some (Update_msg.seq m)
          | Some s -> Some (min s (Update_msg.seq m))
        else acc)
      None queued
  in
  match min_queued with
  | Some s -> s - 1
  | None -> Dyno_source.Data_source.version ds

(** [create ~metrics ~mv ~registry ~queued ()] — [queued] is the list of
    messages already admitted to the UMQ at tracker creation (their
    versions count as unapplied; everything older is the initial
    materialization's baseline). *)
let create ~metrics ~mv ~registry ~queued () =
  let view = View_def.name (Mat_view.def mv) in
  let sources =
    Dyno_source.Registry.sources registry
    |> List.map (fun ds ->
           (Dyno_source.Data_source.id ds, { ds; applied = baseline ds queued }))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { metrics; view; mv; sources }

let view_name t = t.view

(** Committed-but-unapplied updates, summed over sources. *)
let lag_versions t =
  List.fold_left
    (fun acc (_, s) ->
      acc + max 0 (Dyno_source.Data_source.version s.ds - s.applied))
    0 t.sources

(** Seconds since the view last was a faithful image of every source
    (0 when caught up). *)
let staleness_seconds t ~now =
  let tau =
    List.fold_left
      (fun acc (_, s) ->
        if Dyno_source.Data_source.version s.ds > s.applied then
          match
            Dyno_source.Data_source.commit_time_of_version s.ds (s.applied + 1)
          with
          | Some ct -> Float.min acc ct
          | None -> acc
        else acc)
      now t.sources
  in
  now -. tau

(** [note_applied t ~now ~source ~version ~commit_time] — the view now
    reflects [source] up to [version] (committed at [commit_time]).
    Called by the schedulers at every path that integrates a message:
    refresh, irrelevant-commit, batch adaptation, view-undefined drop. *)
let note_applied t ~now ~source ~version ~commit_time =
  match List.assoc_opt source t.sources with
  | None -> ()
  | Some s ->
      let before_s = staleness_seconds t ~now in
      let before_v = lag_versions t in
      if version > s.applied then begin
        s.applied <- version;
        Mat_view.note_applied t.mv ~source ~version ~commit_time
      end;
      let after_s = staleness_seconds t ~now in
      if after_s > before_s +. 1e-9 then
        Dyno_obs.Metrics.incr t.metrics "freshness.monotonicity_violations";
      let age = Float.max 0.0 (now -. commit_time) in
      Dyno_obs.Metrics.observe t.metrics
        (Fmt.str "view.%s.staleness_s" t.view) age;
      Dyno_obs.Metrics.observe t.metrics "staleness_s" age;
      Dyno_obs.Metrics.observe t.metrics
        (Fmt.str "view.%s.staleness_versions" t.view)
        (float_of_int before_v);
      Dyno_obs.Metrics.observe t.metrics "staleness_versions"
        (float_of_int before_v)

(** [note_entry t ~now msgs] — {!note_applied} for every message of a
    maintained queue entry. *)
let note_entry t ~now msgs =
  List.iter
    (fun m ->
      note_applied t ~now ~source:(Update_msg.source m)
        ~version:(Update_msg.source_version m)
        ~commit_time:(Update_msg.commit_time m))
    msgs

(** [register_probes t series] — per-view staleness gauges plus
    per-source commit/applied frontiers for the time-series sampler.
    Frontier probes are [`Counter]-kinded, so the sampler derives
    per-source commit and apply rates for free. *)
let register_probes t series =
  let open Dyno_obs in
  Timeseries.probe series (Fmt.str "view.%s.staleness_s" t.view) (fun now ->
      staleness_seconds t ~now);
  Timeseries.probe series
    (Fmt.str "view.%s.staleness_versions" t.view)
    (fun _ -> float_of_int (lag_versions t));
  List.iter
    (fun (id, s) ->
      Timeseries.probe series ~kind:`Counter (Fmt.str "src.%s.version" id)
        (fun _ -> float_of_int (Dyno_source.Data_source.version s.ds));
      Timeseries.probe series ~kind:`Counter
        (Fmt.str "view.%s.applied.%s" t.view id)
        (fun _ -> float_of_int s.applied))
    t.sources

(** Per-source frontier snapshot: [(source, applied, committed)]. *)
let frontier t =
  List.map
    (fun (id, s) -> (id, s.applied, Dyno_source.Data_source.version s.ds))
    t.sources
