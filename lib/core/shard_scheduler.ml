(* Sharded Dyno: see shard_scheduler.mli for the protocol. *)

open Dyno_view
open Dyno_sim

(* Global arrival order: message ids are drawn from one shared counter
   across every shard's queue (Umq.create ~ids), so the minimum id of an
   entry totally orders the union of the queues; the source name breaks
   ties defensively for worlds built without a shared counter. *)
let entry_min_id e =
  match Umq.entry_ids e with
  | [] -> max_int
  | ids -> List.fold_left min max_int ids

let entry_source e =
  match Umq.entry_messages e with [] -> "" | m :: _ -> Update_msg.source m

let compare_arrival a b =
  match compare (entry_min_id a) (entry_min_id b) with
  | 0 -> String.compare (entry_source a) (entry_source b)
  | c -> c

let run ?(config = Run_config.default) ~plan (w : Query_engine.t)
    (mv : Mat_view.t) (mk : Dyno_source.Meta_knowledge.t) : Stats.t =
  let n = Shard.count plan in
  if n <= 1 then Scheduler.run ~config w mv mk
  else begin
    if Query_engine.route_count w <> n then
      invalid_arg
        (Fmt.str "Shard_scheduler.run: %d shard(s) but %d engine route(s)" n
           (Query_engine.route_count w));
    let stats = Stats.create () in
    let umqs = Array.init n (Query_engine.route_umq w) in
    let steps = ref 0 in
    let force_barrier = ref false in
    let trace = Query_engine.trace w in
    let obs = Query_engine.obs w in
    let sp = Dyno_obs.Obs.spans obs
    and mx = Dyno_obs.Obs.metrics obs in
    let lin = Dyno_obs.Obs.lineage obs in
    let now () = Query_engine.now w in
    (* Abort provenance looks for the conflicting SC in the broken
       source's owning shard queue. *)
    let provenance (b : Dyno_source.Data_source.broken) =
      Scheduler.abort_provenance
        umqs.(Shard.owner plan b.Dyno_source.Data_source.source)
        b
    in
    let fresh =
      Freshness.create ~metrics:mx ~mv
        ~registry:(Query_engine.registry w)
        ~queued:(Array.to_list umqs |> List.concat_map Umq.messages)
        ()
    in
    (* Per-shard auxiliary stores.  Every store is a full replica (it
       covers all of the view's join partners, so it must see the whole
       admitted stream to stay current); the per-shard split decides
       which replica a member's maintenance reads, keeping shard-local
       counters honest.  One hook feeds them all. *)
    let stores =
      if config.Run_config.self_maint then begin
        let arr = Array.init n (fun _ -> Scheduler.aux_store w mv) in
        Query_engine.add_admit_hook w (fun m ->
            Array.iter
              (fun s -> Dyno_selfmaint.Aux_store.on_message s m)
              arr);
        Some arr
      end
      else None
    in
    let local_of_shard i =
      Option.map (fun arr -> Dyno_selfmaint.Aux_store.local arr.(i)) stores
    in
    let local_of_source src = local_of_shard (Shard.owner plan src) in
    (* Multicore runtime: one worker-domain pool shared by every shard's
       round compute (the rounds are coordinator-driven and sequential;
       only the per-member sweep compute fans out). *)
    let pool =
      match config.Run_config.runtime with
      | `Simulated -> None
      | `Domains d -> Some (Domain_pool.create ~domains:d)
    in
    let series = Dyno_obs.Obs.series obs in
    if Dyno_obs.Timeseries.enabled series then begin
      Dyno_obs.Timeseries.probe series "umq.depth" (fun _ ->
          float_of_int (Array.fold_left (fun a q -> a + Umq.length q) 0 umqs));
      Dyno_obs.Timeseries.probe series "sched.inflight" (fun _ ->
          Dyno_obs.Metrics.gauge_value mx "sched.inflight");
      Dyno_obs.Timeseries.probe series ~kind:`Counter "sched.view_commits"
        (fun _ -> float_of_int stats.Stats.view_commits);
      Dyno_obs.Timeseries.probe series "staleness_s" (fun now ->
          Freshness.staleness_seconds fresh ~now);
      Dyno_obs.Timeseries.probe series "staleness_versions" (fun _ ->
          float_of_int (Freshness.lag_versions fresh));
      Freshness.register_probes fresh series
    end;
    let tick () =
      incr steps;
      if !steps > config.Run_config.max_steps then
        raise (Scheduler.Step_limit_exceeded !steps)
    in
    let clear_broken () = Array.iter Umq.clear_broken_query_flag umqs in
    let owning_umq m = umqs.(Shard.owner plan (Update_msg.source m)) in
    let remove_messages entry =
      (* A corrected entry may merge messages owned by several shards;
         each still sits as its own [Single] in its owning queue. *)
      List.iter
        (fun m -> Umq.remove_entry (owning_umq m) (Umq.Single m))
        (Umq.entry_messages entry)
    in
    let charge_abort b ~t0 ~what =
      let dt = now () -. t0 in
      stats.Stats.busy <- stats.Stats.busy +. dt;
      stats.Stats.abort_cost <- stats.Stats.abort_cost +. dt;
      stats.Stats.aborts <- stats.Stats.aborts + 1;
      stats.Stats.broken_queries <- stats.Stats.broken_queries + 1;
      Trace.recordf trace ~time:(now ()) Trace.Abort
        "%s aborted after %.3f s: %a" what dt
        Dyno_source.Data_source.pp_broken b
    in
    (* Serial fallback (Recompute mode, undefined view, or a non-DU head
       without a raised flag): maintain the globally-oldest head entry
       with the per-entry machinery shared with the serial scheduler. *)
    let serial_step mid =
      let best = ref None in
      Array.iteri
        (fun i q ->
          match Umq.head q with
          | None -> ()
          | Some e -> (
              match !best with
              | Some (_, be, _) when compare_arrival be e <= 0 -> ()
              | _ -> best := Some (i, e, entry_min_id e)))
        umqs;
      match !best with
      | None -> ()
      | Some (qi, entry, _) -> (
          Dyno_obs.Span.set_name sp mid (Fmt.str "%a" Umq.pp_entry entry);
          clear_broken ();
          let t0 = now () in
          Dyno_obs.Lineage.dispatch lin ~ids:(Umq.entry_ids entry) ~time:t0
            ~detail:(Fmt.str "dispatched at shard %d queue head" qi)
            ();
          match
            Scheduler.maintain_entry ?local:(local_of_shard qi)
              ~compensate:config.Run_config.compensate
              ~vm_mode:config.Run_config.vm_mode w mv mk stats entry
          with
          | Scheduler.Done ->
              Dyno_obs.Span.set_attr sp mid "outcome" "done";
              stats.Stats.busy <- stats.Stats.busy +. (now () -. t0);
              Freshness.note_entry fresh ~now:(now ())
                (Umq.entry_messages entry);
              Umq.remove_head umqs.(qi)
          | Scheduler.UnreachableStep u ->
              Dyno_obs.Span.set_attr sp mid "outcome" "stalled";
              Scheduler.stall_and_wait w stats ~t0 u;
              Dyno_obs.Lineage.stall lin ~ids:(Umq.entry_ids entry)
                ~time:(now ())
                ~detail:(Fmt.str "%a" Dyno_net.Retry.pp_unreachable u)
          | Scheduler.AbortedStep b ->
              Dyno_obs.Span.set_attr sp mid "outcome" "aborted";
              charge_abort b ~t0 ~what:"shard maintenance";
              Dyno_obs.Lineage.abort lin ~ids:(Umq.entry_ids entry)
                ~time:(now ()) ~detail:(provenance b);
              force_barrier := true)
    in
    (* One shard-parallel round: every shard contributes up to
       [config.parallel] single DUs from distinct sources off its queue
       prefix; sweeps run as concurrent executor tasks with exclusion
       sets fixed at dispatch in global arrival order; refreshes commit
       serially at the barrier in that same order, stopping at the first
       failure (later members stay queued and re-sweep next round). *)
    let du_round mid =
      let per_shard = max 1 config.Run_config.parallel in
      let members =
        Array.to_list umqs
        |> List.concat_map (fun q ->
               let rec scan acc k seen = function
                 | Umq.Single m :: rest when Update_msg.is_du m ->
                     if k >= per_shard then List.rev acc
                     else
                       let src = Update_msg.source m in
                       if List.exists (String.equal src) seen then
                         scan acc k seen rest
                       else (
                         match Update_msg.as_du m with
                         | Some u ->
                             scan ((m, u) :: acc) (k + 1) (src :: seen) rest
                         | None -> List.rev acc)
                 | _ -> List.rev acc
               in
               scan [] 0 [] (Umq.entries q))
        |> List.sort (fun (a, _) (b, _) ->
               compare_arrival (Umq.Single a) (Umq.Single b))
      in
      match members with
      | [] -> serial_step mid
      | members -> (
          let k = List.length members in
          Dyno_obs.Span.set_name sp mid (Fmt.str "shard round of %d" k);
          Dyno_obs.Metrics.set_gauge mx "sched.inflight" (float_of_int k);
          clear_broken ();
          let t0 = now () in
          List.iter
            (fun (m, _) ->
              Trace.recordf trace ~time:t0 Trace.Maint_start "%a" Umq.pp_entry
                (Umq.Single m))
            members;
          List.iter
            (fun (m, _) ->
              Dyno_obs.Lineage.dispatch lin
                ~ids:[ Update_msg.id m ]
                ~time:t0
                ~detail:
                  (Fmt.str "dispatched into shard round of %d (shard %d)" k
                     (Shard.owner plan (Update_msg.source m)))
                ())
            members;
          let results = Array.make k None in
          let spent = Array.make k 0.0 in
          (* Exclusion sets fixed at dispatch: member [i] must not
             compensate against members earlier in global arrival
             order — they are being maintained concurrently, exactly
             as if a serial pass had already processed them. *)
          let excludes =
            let earlier = ref [] in
            Array.of_list
              (List.map
                 (fun (m, _) ->
                   let e = !earlier in
                   earlier := Update_msg.id m :: !earlier;
                   e)
                 members)
          in
          (* Multicore runtime: fully-covered local sweeps evaluate on
             the worker-domain pool; the rest takes the executor. *)
          (match pool with
          | None -> ()
          | Some pool ->
              let precomputed =
                Scheduler.pool_sweeps ~pool
                  ~compensate:config.Run_config.compensate w stats
                  (Array.of_list
                     (List.mapi
                        (fun i (m, u) ->
                          {
                            Scheduler.pj_mv = mv;
                            pj_msg = m;
                            pj_du = u;
                            pj_applied = [];
                            pj_exclude_extra = excludes.(i);
                            pj_local =
                              local_of_source (Update_msg.source m);
                          })
                        members))
              in
              Array.iteri
                (fun i r ->
                  match r with Some s -> results.(i) <- Some s | None -> ())
                precomputed);
          let thunks =
            List.concat
              (List.mapi
                 (fun i (m, u) ->
                   if results.(i) <> None then []
                   else
                     [
                       (fun () ->
                         Dyno_obs.Span.with_span sp ~now
                           ~thread:(Update_msg.source m) Dyno_obs.Span.Task
                           (Fmt.str "maintain #%d" (Update_msg.id m))
                           (fun _ ->
                             Dyno_obs.Lineage.set_scope lin
                               [ Update_msg.id m ];
                             let ts = now () in
                             results.(i) <-
                               Some
                                 (Dyno_vm.Vm.maintain_sweep
                                    ~compensate:config.Run_config.compensate
                                    ~exclude_extra:excludes.(i)
                                    ?local:
                                      (local_of_source (Update_msg.source m))
                                    w mv m u);
                             spent.(i) <- now () -. ts));
                     ])
                 members)
          in
          Executor.run_all (Query_engine.executor w) thunks;
          List.iteri
            (fun i (m, _) ->
              Dyno_obs.Metrics.add_gauge mx
                (Fmt.str "shard.%d.busy_s"
                   (Shard.owner plan (Update_msg.source m)))
                spent.(i))
            members;
          let failure = ref None in
          List.iteri
            (fun i (m, _) ->
              if !failure <> None then
                Dyno_obs.Lineage.note lin
                  ~ids:[ Update_msg.id m ]
                  ~time:(now ()) ~kind:"requeued"
                  ~detail:
                    "earlier round member failed; sweep discarded, requeued"
              else
                match results.(i) with
                | Some (Dyno_vm.Vm.Swept (dv, s)) -> (
                    match Dyno_vm.Vm.commit_swept w mv m dv s with
                    | Dyno_vm.Vm.Refreshed { stats = s; _ } ->
                        stats.Stats.du_maintained <-
                          stats.Stats.du_maintained + 1;
                        stats.Stats.probes <-
                          stats.Stats.probes + s.Dyno_vm.Sweep.probes;
                        stats.Stats.compensations <-
                          stats.Stats.compensations
                          + s.Dyno_vm.Sweep.compensations;
                        stats.Stats.probes_avoided <-
                          stats.Stats.probes_avoided
                          + s.Dyno_vm.Sweep.probes_avoided;
                        stats.Stats.bytes_saved <-
                          stats.Stats.bytes_saved + s.Dyno_vm.Sweep.bytes_saved;
                        stats.Stats.view_commits <-
                          stats.Stats.view_commits + 1;
                        Freshness.note_entry fresh ~now:(now ()) [ m ];
                        Dyno_obs.Lineage.finish lin
                          ~ids:[ Update_msg.id m ]
                          ~time:(now ()) ~state:Dyno_obs.Lineage.Applied
                          ~detail:
                            (Fmt.str
                               "view refreshed in shard round (%d probe(s), \
                                %d compensation(s))"
                               s.Dyno_vm.Sweep.probes
                               s.Dyno_vm.Sweep.compensations);
                        Umq.remove_entry (owning_umq m) (Umq.Single m)
                    | _ -> assert false)
                | Some Dyno_vm.Vm.Swept_irrelevant ->
                    Mat_view.record_commit mv ~at:(now ())
                      ~maintained:[ Update_msg.id m ];
                    stats.Stats.irrelevant <- stats.Stats.irrelevant + 1;
                    Freshness.note_entry fresh ~now:(now ()) [ m ];
                    Dyno_obs.Lineage.finish lin
                      ~ids:[ Update_msg.id m ]
                      ~time:(now ()) ~state:Dyno_obs.Lineage.Irrelevant
                      ~detail:"no pivot row in the view";
                    Umq.remove_entry (owning_umq m) (Umq.Single m)
                | Some (Dyno_vm.Vm.Swept_aborted b) ->
                    failure := Some (`Aborted (b, m))
                | Some (Dyno_vm.Vm.Swept_unreachable u) ->
                    failure := Some (`Unreachable (u, m))
                | None -> assert false)
            members;
          let elapsed = now () -. t0 in
          Dyno_obs.Metrics.add_gauge mx "net.overlap_saved_s"
            (Float.max 0.0 (Array.fold_left ( +. ) 0.0 spent -. elapsed));
          Dyno_obs.Metrics.set_gauge mx "sched.inflight" 0.0;
          match !failure with
          | None ->
              Dyno_obs.Span.set_attr sp mid "outcome" "done";
              stats.Stats.busy <- stats.Stats.busy +. elapsed
          | Some (`Unreachable (u, m)) ->
              Dyno_obs.Span.set_attr sp mid "outcome" "stalled";
              Scheduler.stall_and_wait w stats ~t0 u;
              Dyno_obs.Lineage.stall lin
                ~ids:[ Update_msg.id m ]
                ~time:(now ())
                ~detail:(Fmt.str "%a" Dyno_net.Retry.pp_unreachable u)
          | Some (`Aborted (b, m)) ->
              Dyno_obs.Span.set_attr sp mid "outcome" "aborted";
              charge_abort b ~t0 ~what:"sharded round";
              Dyno_obs.Lineage.abort lin
                ~ids:[ Update_msg.id m ]
                ~time:(now ()) ~detail:(provenance b);
              force_barrier := true)
    in
    (* Cross-shard barrier: every shard pauses; the union of the queues
       in global arrival order runs through detection + correction, and
       the corrected legal order is maintained serially up to and
       including its last schema change.  The corrected order is
       ephemeral — shard queues are never rewritten; the pure-DU suffix
       resumes parallel draining.  An in-exec abort restarts the pass on
       a fresh snapshot. *)
    let barrier mid =
      Dyno_obs.Span.set_name sp mid "cross-shard barrier";
      stats.Stats.cross_shard_barriers <- stats.Stats.cross_shard_barriers + 1;
      Dyno_obs.Metrics.incr mx "sched.cross_shard_barriers";
      force_barrier := false;
      let rec pass () =
        Array.iter
          (fun q -> ignore (Umq.test_and_clear_schema_change_flag q : bool))
          umqs;
        let snapshot =
          Array.to_list umqs
          |> List.concat_map Umq.entries
          |> List.sort compare_arrival
        in
        if List.exists Umq.entry_has_sc snapshot then begin
          let vd = Mat_view.def mv in
          let cost = Query_engine.cost w in
          let t0 = now () in
          stats.Stats.detections <- stats.Stats.detections + 1;
          let nn = List.length snapshot in
          let m =
            List.length
              (List.filter Update_msg.is_sc
                 (List.concat_map Umq.entry_messages snapshot))
          in
          Query_engine.advance w (Cost_model.detect cost ~n:nn ~m);
          let order, merged_cycles, merged_updates, reordered =
            match config.Run_config.strategy with
            | Strategy.Merge_all ->
                (* The strawman collapses everything it can see — here,
                   the whole cross-shard snapshot — into one batch. *)
                let msgs = List.concat_map Umq.entry_messages snapshot in
                if List.length msgs > 1 then begin
                  Dyno_obs.Lineage.merged lin
                    ~ids:(List.map Update_msg.id msgs)
                    ~time:(now ())
                    ~detail:
                      (Fmt.str
                         "merge-all at cross-shard barrier: %d update(s) \
                          collapsed into one batch"
                         (List.length msgs));
                  ([ Umq.Batch msgs ], 1, List.length msgs, true)
                end
                else (snapshot, 0, 0, false)
            | Strategy.Pessimistic | Strategy.Optimistic ->
                let g =
                  Dep_graph.build (View_def.peek vd) (View_def.schemas vd)
                    snapshot
                in
                List.iter
                  (fun e ->
                    Dyno_obs.Lineage.edge lin
                      ~dep_ids:(Dep_graph.edge_dependent_ids g e)
                      ~time:(now ())
                      ~detail:(Dep_graph.describe_edge g e))
                  (Dep_graph.unsafe g);
                let r = Dep_graph.correct g in
                List.iter
                  (fun ids ->
                    Dyno_obs.Lineage.merged lin ~ids ~time:(now ())
                      ~detail:
                        (Fmt.str
                           "dependency cycle merged at cross-shard barrier: \
                            %d update(s) now one batch"
                           (List.length ids)))
                  r.Dep_graph.merged_members;
                Query_engine.advance w
                  (Cost_model.correct cost ~nodes:(Dep_graph.size g)
                     ~edges:(List.length (Dep_graph.edges g)));
                ( r.Dep_graph.order,
                  r.Dep_graph.merged_cycles,
                  r.Dep_graph.merged_updates,
                  List.concat_map Umq.entry_ids r.Dep_graph.order
                  <> List.concat_map Umq.entry_ids snapshot )
          in
          if reordered then begin
            stats.Stats.corrections <- stats.Stats.corrections + 1;
            Trace.recordf trace ~time:(now ()) Trace.Correct
              "cross-shard barrier: legal order over %d entr%s" nn
              (if nn = 1 then "y" else "ies")
          end;
          if merged_cycles > 0 then begin
            stats.Stats.merges <- stats.Stats.merges + merged_cycles;
            Trace.recordf trace ~time:(now ()) Trace.Merge
              "%d cycle(s) merged (%d update(s))" merged_cycles merged_updates
          end;
          stats.Stats.busy <- stats.Stats.busy +. (now () -. t0);
          let last_sc =
            List.fold_left
              (fun (i, last) e ->
                (i + 1, if Umq.entry_has_sc e then i else last))
              (0, -1) order
            |> snd
          in
          let prefix = List.filteri (fun i _ -> i <= last_sc) order in
          let restart = ref false in
          let rec process = function
            | [] -> ()
            | entry :: rest -> (
                tick ();
                clear_broken ();
                let t0 = now () in
                Dyno_obs.Lineage.dispatch lin ~ids:(Umq.entry_ids entry)
                  ~time:t0 ~seg:Dyno_obs.Lineage.Barrier
                  ~detail:"dispatched from cross-shard barrier drain" ();
                match
                  Scheduler.maintain_entry
                    ?local:(local_of_source (entry_source entry))
                    ~compensate:config.Run_config.compensate
                    ~vm_mode:config.Run_config.vm_mode w mv mk stats entry
                with
                | Scheduler.Done ->
                    stats.Stats.busy <- stats.Stats.busy +. (now () -. t0);
                    Freshness.note_entry fresh ~now:(now ())
                      (Umq.entry_messages entry);
                    remove_messages entry;
                    process rest
                | Scheduler.UnreachableStep u ->
                    Scheduler.stall_and_wait w stats ~t0 u;
                    Dyno_obs.Lineage.stall lin ~ids:(Umq.entry_ids entry)
                      ~time:(now ())
                      ~detail:(Fmt.str "%a" Dyno_net.Retry.pp_unreachable u);
                    process (entry :: rest)
                | Scheduler.AbortedStep b ->
                    charge_abort b ~t0 ~what:"barrier maintenance";
                    Dyno_obs.Lineage.abort lin ~ids:(Umq.entry_ids entry)
                      ~time:(now ()) ~detail:(provenance b);
                    restart := true)
          in
          process prefix;
          if !restart then pass ()
        end
      in
      pass ()
    in
    let all_empty () = Array.for_all Umq.is_empty umqs in
    let iteration mid =
      if !force_barrier || Array.exists Umq.peek_schema_change_flag umqs then
        barrier mid
      else if
        config.Run_config.vm_mode <> Run_config.Incremental
        || not (View_def.is_valid (Mat_view.def mv))
      then serial_step mid
      else du_round mid
    in
    let rec loop () =
      tick ();
      Query_engine.deliver_due w;
      (match stores with
      | Some arr -> Array.iter (fun s -> Scheduler.sync_aux w s mv) arr
      | None -> ());
      ignore (Dyno_obs.Timeseries.maybe_sample series ~now:(now ()) : bool);
      if all_empty () then begin
        match Query_engine.next_wakeup w with
        | None -> ()
        | Some t ->
            let dt = t -. now () in
            if dt > 0.0 then stats.Stats.idle <- stats.Stats.idle +. dt;
            Query_engine.idle_until w t;
            loop ()
      end
      else begin
        Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Maintain
          (Fmt.str "step %d" !steps)
          iteration;
        loop ()
      end
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Domain_pool.shutdown pool)
      loop;
    Dyno_obs.Timeseries.sample series ~now:(now ());
    stats.Stats.end_time <- now ();
    Scheduler.record_net_stats w stats;
    Scheduler.mirror_stats obs stats;
    if Dyno_obs.Metrics.enabled mx then begin
      Dyno_obs.Metrics.set_gauge mx "sched.shards" (float_of_int n);
      Dyno_obs.Metrics.set_counter mx "sched.cross_shard_barriers"
        stats.Stats.cross_shard_barriers
    end;
    stats
  end
