(** Dependency detection (Section 4.1).

    Two modes:

    - {b pre-exec} ({!pre_exec}): before maintenance starts, build the
      dependency graph over the UMQ and look for unsafe dependencies.
      Guarded by the schema-change flag: with only data updates queued
      there can be no unsafe dependency and detection is O(1) (the flag
      check) — the optimization behind Figure 8's "almost unobservable"
      overhead.
    - {b in-exec}: broken-query detection inside the query engine; it is
      implemented in {!Dyno_view.Query_engine.execute} (which raises the
      broken-query flag) — by Theorem 1 a broken query implies an unsafe
      dependency, so a failed probe is itself the detection signal. *)

open Dyno_view

type outcome = {
  graph : Dep_graph.t option;  (** [None] when the flag fast path fired *)
  unsafe : int;  (** number of unsafe dependencies found *)
}

(** [pre_exec vd umq] — the pre-exec detection pass.  Consumes the
    schema-change flag ([Test_If_True_Set_False] of Figure 6, line 1): if
    no schema change arrived since the last pass, skips graph construction
    entirely. *)
let pre_exec (vd : View_def.t) (umq : Umq.t) : outcome =
  if not (Umq.test_and_clear_schema_change_flag umq) then
    { graph = None; unsafe = 0 }
  else begin
    let query = View_def.peek vd in
    let schemas = View_def.schemas vd in
    let g = Dep_graph.build query schemas (Umq.entries umq) in
    { graph = Some g; unsafe = Dep_graph.unsafe_count g }
  end

(** [force vd umq] — unconditional graph construction (used by the
    in-exec correction path after a broken query, regardless of flag). *)
let force (vd : View_def.t) (umq : Umq.t) : outcome =
  (* Consume the flag too: this pass subsumes a pending pre-exec pass. *)
  ignore (Umq.test_and_clear_schema_change_flag umq);
  let query = View_def.peek vd in
  let schemas = View_def.schemas vd in
  let g = Dep_graph.build query schemas (Umq.entries umq) in
  { graph = Some g; unsafe = Dep_graph.unsafe_count g }
