(** Multi-view Dyno: one update stream, one UMQ and one dependency
    correction pipeline serving several materialized views — the "plugged
    into any view system" extension the paper's conclusion sketches.

    A schema change induces concurrent dependencies as soon as it
    conflicts with {e any} view, so the corrected legal order is legal for
    all of them at once.  The head entry is maintained against each view
    in turn; if a later view's maintenance breaks while earlier views have
    already committed the entry, per-view {e applied sets} ensure the
    retry (possibly as part of a larger merged batch) only maintains what
    each view has not yet integrated, and that compensation keeps
    already-applied effects in. *)

open Dyno_view

type t

val create : Mat_view.t list -> t
val views : t -> Mat_view.t list

(** The shared {!Run_config.t} record (one record drives the serial,
    multi-view and sharded schedulers).  This scheduler consumes
    [strategy], [max_steps], [compensate] and [parallel] — when > 1, the
    per-view sweeps of a single-DU head entry run as concurrent executor
    tasks so their probe round trips overlap; refreshes still commit
    serially at the barrier, in view order.  [vm_mode] and [du_group] are
    ignored: the multi-view path always maintains incrementally, one
    entry at a time.  [self_maint] builds one auxiliary-view store per
    view (each view has its own join partners and coverage), fed by one
    shared admit hook per store. *)
type config = Run_config.t = {
  strategy : Strategy.t;
  max_steps : int;
  compensate : bool;
  vm_mode : Run_config.vm_mode;
  du_group : int;
  parallel : int;
  self_maint : bool;
  runtime : [ `Simulated | `Domains of int ];
      (** execution backend for per-view sweep compute — see
          {!Run_config.t} *)
}

val default_config : config
(** [= Run_config.default]. *)

val run :
  ?config:config ->
  Query_engine.t ->
  t ->
  Dyno_source.Meta_knowledge.t ->
  Stats.t
(** Drain the UMQ and the timeline, maintaining every entry against every
    view; statistics are aggregated across views.
    @raise Scheduler.Step_limit_exceeded beyond [config.max_steps]. *)
