(** Dyno: the dynamic reordering scheduler (Figure 6).

    The main loop processes the UMQ head forever:

    + (pessimistic only) if the schema-change flag is set, run pre-exec
      detection — build the dependency graph — and correct the queue into
      a legal order (merging cycles);
    + maintain the head entry: VM for a data update, VS+VA for a schema
      change, batch adaptation for a merged node;
    + if the maintenance aborted on a broken query (in-exec detection),
      leave the entry queued and correct: the pessimistic strategy picks
      the conflict up via the schema-change flag on the next iteration,
      the optimistic strategy runs detection+correction right now, and the
      merge-all strawman collapses the whole queue;
    + otherwise remove the head and continue.

    The loop runs until both the UMQ and the timeline of future source
    commits are drained (a real deployment runs forever; experiments have
    finite workloads). *)

open Dyno_view
open Dyno_sim

(** How data updates are maintained (re-exported from {!Run_config} so
    historical [Scheduler.Incremental] call sites keep reading
    naturally). *)
type vm_mode = Run_config.vm_mode =
  | Incremental  (** SWEEP-style probes computing a view delta (default) *)
  | Recompute
      (** naive baseline: re-materialize the whole view per update — the
          classic strawman incremental maintenance is measured against *)

(** The scheduler consumes the shared {!Run_config.t} record — the same
    record drives the multi-view and sharded schedulers, so CLI plumbing
    is written once. *)
type config = Run_config.t = {
  strategy : Strategy.t;
  max_steps : int;
  compensate : bool;
  vm_mode : vm_mode;
  du_group : int;
  parallel : int;
  self_maint : bool;
  runtime : [ `Simulated | `Domains of int ];
}

let default_config = Run_config.default

exception Step_limit_exceeded of int

type step_outcome =
  | Done
  | AbortedStep of Dyno_source.Data_source.broken
  | UnreachableStep of Dyno_net.Retry.unreachable
      (** a maintenance query exhausted its transport retry budget; the
          entry stays at the queue head and is retried after recovery *)

(* Charge a detection pass + correction on the simulated clock and update
   stats; returns true when the queue was actually reordered. *)
let detect_and_correct ~(force : bool) (w : Query_engine.t) (mv : Mat_view.t)
    (stats : Stats.t) : unit =
  let umq = Query_engine.umq w in
  let cost = Query_engine.cost w in
  let vd = Mat_view.def mv in
  let t0 = Query_engine.now w in
  let outcome =
    if force then Detect.force vd umq else Detect.pre_exec vd umq
  in
  let obs = Query_engine.obs w in
  let sp = Dyno_obs.Obs.spans obs
  and mx = Dyno_obs.Obs.metrics obs in
  let now () = Query_engine.now w in
  (match outcome.Detect.graph with
  | None ->
      (* Flag fast path: O(1); no span — it would swamp the trace with one
         flag check per iteration. *)
      Query_engine.advance w cost.Cost_model.detect_flag
  | Some g ->
      stats.Stats.detections <- stats.Stats.detections + 1;
      let n = Dep_graph.size g in
      let m =
        List.length
          (List.filter Update_msg.is_sc (Umq.messages umq))
      in
      Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Detect
        (Fmt.str "detect %d node(s)" n)
        (fun _ ->
          let td = now () in
          Query_engine.advance w (Cost_model.detect cost ~n ~m);
          Dyno_obs.Metrics.observe mx "detect.pass_s" (now () -. td));
      Trace.recordf (Query_engine.trace w) ~time:(Query_engine.now w)
        Trace.Detect "graph: %d node(s), %d edge(s), %d unsafe" n
        (List.length (Dep_graph.edges g))
        outcome.Detect.unsafe;
      Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Correct "correct"
        (fun cid ->
          let tc = now () in
          let lin = Dyno_obs.Obs.lineage obs in
          (* Forensic provenance: every unsafe edge (the ones forcing the
             reorder) lands on the dependent updates' lineage records
             before the correction rewrites the queue. *)
          List.iter
            (fun e ->
              Dyno_obs.Lineage.edge lin
                ~dep_ids:(Dep_graph.edge_dependent_ids g e)
                ~time:tc ~detail:(Dep_graph.describe_edge g e))
            (Dep_graph.unsafe g);
          let r = Correct.apply umq g in
          List.iter
            (fun ids ->
              Dyno_obs.Lineage.merged lin ~ids ~time:tc
                ~detail:
                  (Fmt.str
                     "dependency cycle merged: %d update(s) now one batch"
                     (List.length ids)))
            r.Correct.merged_members;
          Query_engine.advance w
            (Cost_model.correct cost ~nodes:r.Correct.nodes
               ~edges:r.Correct.edges);
          Dyno_obs.Metrics.observe mx "correct.pass_s" (now () -. tc);
          Dyno_obs.Span.set_attr sp cid "reordered"
            (string_of_bool r.Correct.reordered);
          if r.Correct.reordered then begin
            stats.Stats.corrections <- stats.Stats.corrections + 1;
            Trace.recordf (Query_engine.trace w) ~time:(Query_engine.now w)
              Trace.Correct "queue reordered into a legal order"
          end;
          if r.Correct.merged_cycles > 0 then begin
            stats.Stats.merges <- stats.Stats.merges + r.Correct.merged_cycles;
            Trace.recordf (Query_engine.trace w) ~time:(Query_engine.now w)
              Trace.Merge "%d cycle(s) merged (%d update(s))"
              r.Correct.merged_cycles r.Correct.merged_updates
          end));
  stats.Stats.busy <- stats.Stats.busy +. (Query_engine.now w -. t0)

(* Maintain one queue entry.  Updates counters on success.  [local] is
   the self-maintenance hook pair (None unless [config.self_maint]). *)
let maintain_entry ?local ~(compensate : bool) ~(vm_mode : vm_mode)
    (w : Query_engine.t) (mv : Mat_view.t)
    (mk : Dyno_source.Meta_knowledge.t) (stats : Stats.t)
    (entry : Umq.entry) : step_outcome =
  let trace = Query_engine.trace w in
  let vd = Mat_view.def mv in
  let lin = Dyno_obs.Obs.lineage (Query_engine.obs w) in
  let ids = Umq.entry_ids entry in
  let finish state detail =
    Dyno_obs.Lineage.finish lin ~ids ~time:(Query_engine.now w) ~state ~detail
  in
  (* Probe round-trips issued by this maintenance step are charged to
     this entry's updates via the ambient scope. *)
  Dyno_obs.Lineage.set_scope lin ids;
  Trace.recordf trace ~time:(Query_engine.now w) Trace.Maint_start "%a"
    Umq.pp_entry entry;
  if not (View_def.is_valid vd) then begin
    (* The view is undefined; updates are acknowledged and dropped. *)
    Trace.recordf trace ~time:(Query_engine.now w) Trace.Info
      "view undefined; dropping %a" Umq.pp_entry entry;
    stats.Stats.irrelevant <-
      stats.Stats.irrelevant + List.length (Umq.entry_messages entry);
    finish Dyno_obs.Lineage.Dropped_undefined
      "view undefined; update acknowledged and dropped";
    Done
  end
  else
    match entry with
    | Umq.Single m -> (
        match Update_msg.payload m with
        | Update_msg.Du u when vm_mode = Recompute -> (
            ignore u;
            match
              Dyno_va.Adapt.replace_extent w mv
                ~maintained:[ Update_msg.id m ]
                ~exclude:[ Update_msg.id m ]
            with
            | Ok () ->
                stats.Stats.du_maintained <- stats.Stats.du_maintained + 1;
                stats.Stats.view_commits <- stats.Stats.view_commits + 1;
                finish Dyno_obs.Lineage.Applied "view re-materialized";
                Done
            | Error (Query_engine.Broken b) -> AbortedStep b
            | Error (Query_engine.Unreachable u) -> UnreachableStep u)
        | Update_msg.Du u -> (
            match Dyno_vm.Vm.maintain ~compensate ?local w mv m u with
            | Dyno_vm.Vm.Refreshed { stats = s; _ } ->
                stats.Stats.du_maintained <- stats.Stats.du_maintained + 1;
                stats.Stats.probes <- stats.Stats.probes + s.Dyno_vm.Sweep.probes;
                stats.Stats.compensations <-
                  stats.Stats.compensations + s.Dyno_vm.Sweep.compensations;
                stats.Stats.probes_avoided <-
                  stats.Stats.probes_avoided + s.Dyno_vm.Sweep.probes_avoided;
                stats.Stats.bytes_saved <-
                  stats.Stats.bytes_saved + s.Dyno_vm.Sweep.bytes_saved;
                stats.Stats.view_commits <- stats.Stats.view_commits + 1;
                finish Dyno_obs.Lineage.Applied
                  (Fmt.str "view refreshed (%d probe(s), %d compensation(s))"
                     s.Dyno_vm.Sweep.probes s.Dyno_vm.Sweep.compensations);
                Done
            | Dyno_vm.Vm.Irrelevant ->
                stats.Stats.irrelevant <- stats.Stats.irrelevant + 1;
                finish Dyno_obs.Lineage.Irrelevant "no pivot row in the view";
                Done
            | Dyno_vm.Vm.Aborted b -> AbortedStep b
            | Dyno_vm.Vm.Unreachable u -> UnreachableStep u)
        | Update_msg.Sc _ -> (
            match Dyno_va.Batch.maintain w mv mk [ m ] with
            | Dyno_va.Batch.Adapted ->
                stats.Stats.sc_maintained <- stats.Stats.sc_maintained + 1;
                stats.Stats.view_commits <- stats.Stats.view_commits + 1;
                finish Dyno_obs.Lineage.Applied "view adapted (VS + VA)";
                Done
            | Dyno_va.Batch.Aborted b -> AbortedStep b
            | Dyno_va.Batch.Unreachable u -> UnreachableStep u
            | Dyno_va.Batch.View_undefined _ ->
                stats.Stats.view_undefined <- true;
                finish Dyno_obs.Lineage.Applied
                  "schema change left the view undefined";
                Done))
    | Umq.Batch msgs -> (
        match Dyno_va.Batch.maintain w mv mk msgs with
        | Dyno_va.Batch.Adapted ->
            stats.Stats.batches <- stats.Stats.batches + 1;
            stats.Stats.batch_updates <-
              stats.Stats.batch_updates + List.length msgs;
            stats.Stats.view_commits <- stats.Stats.view_commits + 1;
            finish Dyno_obs.Lineage.Applied
              (Fmt.str "batch of %d adapted atomically" (List.length msgs));
            Done
        | Dyno_va.Batch.Aborted b -> AbortedStep b
        | Dyno_va.Batch.Unreachable u -> UnreachableStep u
        | Dyno_va.Batch.View_undefined _ ->
            stats.Stats.view_undefined <- true;
            finish Dyno_obs.Lineage.Applied
              "schema change left the view undefined";
            Done)

(* A maintenance step stalled on an unreachable source: charge the sunk
   work as busy (it is NOT thrown away — the entry stays queued and is
   re-run), wait for recovery, and let the loop retry.  Unlike an abort,
   no correction runs: the queue order is not the problem. *)
let stall_and_wait (w : Query_engine.t) (stats : Stats.t) ~(t0 : float)
    (u : Dyno_net.Retry.unreachable) : unit =
  let trace = Query_engine.trace w in
  let dt = Query_engine.now w -. t0 in
  stats.Stats.busy <- stats.Stats.busy +. dt;
  stats.Stats.net_stalls <- stats.Stats.net_stalls + 1;
  Trace.recordf trace ~time:(Query_engine.now w) Trace.Outage
    "maintenance stalled: %a; waiting for recovery"
    Dyno_net.Retry.pp_unreachable u;
  Dyno_obs.Metrics.incr
    (Dyno_obs.Obs.metrics (Query_engine.obs w))
    "net.stalls";
  let waited =
    Dyno_obs.Span.with_span
      (Dyno_obs.Obs.spans (Query_engine.obs w))
      ~now:(fun () -> Query_engine.now w)
      Dyno_obs.Span.Stall
      (Fmt.str "stall on %s" u.Dyno_net.Retry.source)
      (fun _ -> Query_engine.await_recovery w ~source:u.Dyno_net.Retry.source)
  in
  stats.Stats.busy <- stats.Stats.busy +. waited

(* Name the schema change behind a broken query: in-exec detection only
   diagnoses the query, so the lineage narrative looks up the queued SC
   from the broken source — the conflict the correction will resolve. *)
let abort_provenance (umq : Umq.t) (b : Dyno_source.Data_source.broken) :
    string =
  let sc =
    List.find_opt
      (fun m ->
        Update_msg.is_sc m
        && String.equal (Update_msg.source m) b.Dyno_source.Data_source.source)
      (Umq.messages umq)
  in
  match sc with
  | Some m ->
      Fmt.str "broken query %s (%s); aborting SC #%d at %s"
        b.Dyno_source.Data_source.query_name b.Dyno_source.Data_source.reason
        (Update_msg.id m) b.Dyno_source.Data_source.source
  | None ->
      Fmt.str "broken query %s at %s: %s"
        b.Dyno_source.Data_source.query_name b.Dyno_source.Data_source.source
        b.Dyno_source.Data_source.reason

(* Merge-all provenance: the strawman collapse is a causal rebirth too —
   members gain a parent link to the batch's oldest update. *)
let note_merge_all (lin : Dyno_obs.Lineage.t) ~(time : float)
    (r : Correct.report) : unit =
  List.iter
    (fun ids ->
      Dyno_obs.Lineage.merged lin ~ids ~time
        ~detail:
          (Fmt.str "merge-all: %d update(s) collapsed into one batch"
             (List.length ids)))
    r.Correct.merged_members

(* --- Multicore runtime ([`Domains _]) ------------------------------- *)

(* One round member as the worker-domain pool sees it.  [pj_mv] and
   [pj_local] vary per member only in the multi-view scheduler; the
   serial and sharded schedulers pass one view and the member's owning
   shard's store. *)
type pool_job = {
  pj_mv : Mat_view.t;
  pj_msg : Update_msg.t;
  pj_du : Dyno_relational.Update.t;
  pj_applied : int list;
  pj_exclude_extra : int list;
  pj_local : Dyno_vm.Sweep.local option;
}

(* Evaluate a dispatched round's fully-covered local sweeps on the
   worker-domain pool.  Phase A (coordinator): run each member's
   {!Dyno_vm.Vm.prepare_sweep} prelude in round order, capturing pure
   compute inputs with exclusion sets already frozen.  Phase B: one pool
   batch over {!Dyno_vm.Sweep.compute_local} — pure CPU, no engine,
   clock or observability access on the workers.  Phase C (coordinator):
   replay the local-answer bookkeeping for each harvested result.  The
   returned array holds [Some swept] for members decided here; [None]
   members still need the cooperative probed path on the executor.
   Admission, commits and the simulated clock never leave the
   coordinator, so Theorems 1–2 are untouched: this only relocates
   compute the cooperative path would have run inline at dispatch
   time. *)
let pool_sweeps ~(pool : Dyno_sim.Domain_pool.t) ~(compensate : bool)
    (w : Query_engine.t) (stats : Stats.t) (jobs : pool_job array) :
    Dyno_vm.Vm.swept option array =
  let prepared =
    Array.map
      (fun j ->
        Dyno_vm.Vm.prepare_sweep ~compensate ~applied:j.pj_applied
          ~exclude_extra:j.pj_exclude_extra ?local:j.pj_local w j.pj_mv
          j.pj_msg j.pj_du)
      jobs
  in
  let offload = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Dyno_vm.Vm.Offloadable input -> offload := (i, input) :: !offload
      | Dyno_vm.Vm.Settled _ | Dyno_vm.Vm.Needs_probes -> ())
    prepared;
  let offload = Array.of_list (List.rev !offload) in
  let outs =
    Dyno_sim.Domain_pool.run_all pool
      (Array.map
         (fun (_, input) () -> Dyno_vm.Sweep.compute_local input)
         offload)
  in
  stats.Stats.mcore_tasks <- stats.Stats.mcore_tasks + Array.length offload;
  let results =
    Array.map
      (function Dyno_vm.Vm.Settled s -> Some s | _ -> None)
      prepared
  in
  let lin = Dyno_obs.Obs.lineage (Query_engine.obs w) in
  Array.iteri
    (fun k (i, input) ->
      match outs.(k) with
      | Some ((dv, st) as ok) ->
          let j = jobs.(i) in
          Dyno_obs.Lineage.set_scope lin [ Update_msg.id j.pj_msg ];
          (match j.pj_local with
          | Some l -> Dyno_vm.Sweep.record_local w ~local:l input ok
          | None -> ());
          results.(i) <- Some (Dyno_vm.Vm.Swept (dv, st))
      | None ->
          (* The pure compute fell back (a local evaluation failed); let
             the probed path decide, exactly as the inline path would. *)
          ())
    offload;
  results

(* One concurrent maintenance round over an antichain of single data
   updates from distinct sources (no queued schema change ahead of them).
   The sweeps — probe round trips included — run as cooperative executor
   tasks and overlap on the wire; refreshes and dequeues then commit
   serially at the barrier, in queue order, stopping at the first failed
   member.  Later members' results are discarded: their entries stay
   queued (exclusion sets were fixed at dispatch, so a re-sweep on the
   next round compensates correctly).  With [pool] (the [`Domains _]
   runtime) fully-covered local sweeps are evaluated on worker domains
   first; only the remainder takes the executor. *)
let parallel_round ?local ?pool ~(config : config) ~(fresh : Freshness.t)
    (w : Query_engine.t) (mv : Mat_view.t) (stats : Stats.t) (mid : int)
    (members : (Update_msg.t * Dyno_relational.Update.t) list) : unit =
  let trace = Query_engine.trace w in
  let obs = Query_engine.obs w in
  let sp = Dyno_obs.Obs.spans obs
  and mx = Dyno_obs.Obs.metrics obs in
  let lin = Dyno_obs.Obs.lineage obs in
  let umq = Query_engine.umq w in
  let exec = Query_engine.executor w in
  let k = List.length members in
  Dyno_obs.Span.set_name sp mid (Fmt.str "round of %d" k);
  Dyno_obs.Metrics.set_gauge mx "sched.inflight" (float_of_int k);
  Dyno_obs.Metrics.observe mx "sched.antichain_size" (float_of_int k);
  Umq.clear_broken_query_flag umq;
  let t0 = Query_engine.now w in
  List.iter
    (fun (m, _) ->
      Trace.recordf trace ~time:t0 Trace.Maint_start "%a" Umq.pp_entry
        (Umq.Single m))
    members;
  List.iteri
    (fun i (m, _) ->
      Dyno_obs.Lineage.dispatch lin
        ~ids:[ Update_msg.id m ]
        ~time:t0
        ~detail:(Fmt.str "dispatched into parallel round of %d (slot %d)" k i)
        ())
    members;
  let results = Array.make k None in
  let spent = Array.make k 0.0 in
  (* Exclusion sets are fixed at dispatch: member [i] must not
     compensate against members earlier in queue order — they are being
     maintained concurrently, exactly as if the serial pass had already
     processed them. *)
  let excludes =
    let earlier = ref [] in
    Array.of_list
      (List.map
         (fun (m, _) ->
           let e = !earlier in
           earlier := Update_msg.id m :: !earlier;
           e)
         members)
  in
  (* Multicore runtime: fully-covered local sweeps evaluate on the
     worker-domain pool before the executor round; members decided there
     skip their cooperative task entirely. *)
  (match pool with
  | None -> ()
  | Some pool ->
      let precomputed =
        pool_sweeps ~pool ~compensate:config.compensate w stats
          (Array.of_list
             (List.mapi
                (fun i (m, u) ->
                  {
                    pj_mv = mv;
                    pj_msg = m;
                    pj_du = u;
                    pj_applied = [];
                    pj_exclude_extra = excludes.(i);
                    pj_local = local;
                  })
                members))
      in
      Array.iteri
        (fun i r ->
          match r with Some s -> results.(i) <- Some s | None -> ())
        precomputed);
  let thunks =
    List.concat
      (List.mapi
         (fun i (m, u) ->
           if results.(i) <> None then []
           else
             [
               (fun () ->
                 Dyno_obs.Span.with_span sp
                   ~now:(fun () -> Query_engine.now w)
                   ~thread:(Update_msg.source m) Dyno_obs.Span.Task
                   (Fmt.str "maintain #%d" (Update_msg.id m))
                   (fun _ ->
                     (* Scope this task's context to its update so probe
                        round-trips land on the right lineage record. *)
                     Dyno_obs.Lineage.set_scope lin [ Update_msg.id m ];
                     let ts = Query_engine.now w in
                     results.(i) <-
                       Some
                         (Dyno_vm.Vm.maintain_sweep
                            ~compensate:config.compensate
                            ~exclude_extra:excludes.(i) ?local w mv m u);
                     spent.(i) <- Query_engine.now w -. ts));
             ])
         members)
  in
  Executor.run_all exec thunks;
  let failure = ref None in
  List.iteri
    (fun i (m, _) ->
      if !failure <> None then
        (* Later members' sweeps are discarded: the wasted work shows up
           as [Queue] time on re-dispatch, keeping segment sums exact. *)
        Dyno_obs.Lineage.note lin
          ~ids:[ Update_msg.id m ]
          ~time:(Query_engine.now w) ~kind:"requeued"
          ~detail:"earlier round member failed; sweep discarded, requeued"
      else
        match results.(i) with
        | Some (Dyno_vm.Vm.Swept (dv, s)) -> (
            match Dyno_vm.Vm.commit_swept w mv m dv s with
            | Dyno_vm.Vm.Refreshed { stats = s; _ } ->
                stats.Stats.du_maintained <- stats.Stats.du_maintained + 1;
                stats.Stats.probes <-
                  stats.Stats.probes + s.Dyno_vm.Sweep.probes;
                stats.Stats.compensations <-
                  stats.Stats.compensations + s.Dyno_vm.Sweep.compensations;
                stats.Stats.probes_avoided <-
                  stats.Stats.probes_avoided + s.Dyno_vm.Sweep.probes_avoided;
                stats.Stats.bytes_saved <-
                  stats.Stats.bytes_saved + s.Dyno_vm.Sweep.bytes_saved;
                stats.Stats.view_commits <- stats.Stats.view_commits + 1;
                Freshness.note_entry fresh ~now:(Query_engine.now w) [ m ];
                Dyno_obs.Lineage.finish lin
                  ~ids:[ Update_msg.id m ]
                  ~time:(Query_engine.now w) ~state:Dyno_obs.Lineage.Applied
                  ~detail:
                    (Fmt.str
                       "view refreshed in parallel round (%d probe(s), %d \
                        compensation(s))"
                       s.Dyno_vm.Sweep.probes s.Dyno_vm.Sweep.compensations);
                Umq.remove_entry umq (Umq.Single m)
            | _ -> assert false)
        | Some Dyno_vm.Vm.Swept_irrelevant ->
            Mat_view.record_commit mv ~at:(Query_engine.now w)
              ~maintained:[ Update_msg.id m ];
            stats.Stats.irrelevant <- stats.Stats.irrelevant + 1;
            Freshness.note_entry fresh ~now:(Query_engine.now w) [ m ];
            Dyno_obs.Lineage.finish lin
              ~ids:[ Update_msg.id m ]
              ~time:(Query_engine.now w) ~state:Dyno_obs.Lineage.Irrelevant
              ~detail:"no pivot row in the view";
            Umq.remove_entry umq (Umq.Single m)
        | Some (Dyno_vm.Vm.Swept_aborted b) -> failure := Some (`Aborted (b, m))
        | Some (Dyno_vm.Vm.Swept_unreachable u) ->
            failure := Some (`Unreachable (u, m))
        | None -> assert false)
    members;
  let elapsed = Query_engine.now w -. t0 in
  (* Overlap saved: the spread between the members' summed task lifetimes
     and the round's wall time — what back-to-back execution of the same
     intervals would have cost extra. *)
  Dyno_obs.Metrics.add_gauge mx "net.overlap_saved_s"
    (Float.max 0.0 (Array.fold_left ( +. ) 0.0 spent -. elapsed));
  Dyno_obs.Metrics.set_gauge mx "sched.inflight" 0.0;
  match !failure with
  | None ->
      Dyno_obs.Span.set_attr sp mid "outcome" "done";
      stats.Stats.busy <- stats.Stats.busy +. elapsed
  | Some (`Unreachable (u, m)) ->
      Dyno_obs.Span.set_attr sp mid "outcome" "stalled";
      stall_and_wait w stats ~t0 u;
      Dyno_obs.Lineage.stall lin
        ~ids:[ Update_msg.id m ]
        ~time:(Query_engine.now w)
        ~detail:(Fmt.str "%a" Dyno_net.Retry.pp_unreachable u)
  | Some (`Aborted (b, m)) ->
      let dt = Query_engine.now w -. t0 in
      stats.Stats.busy <- stats.Stats.busy +. dt;
      stats.Stats.abort_cost <- stats.Stats.abort_cost +. dt;
      stats.Stats.aborts <- stats.Stats.aborts + 1;
      stats.Stats.broken_queries <- stats.Stats.broken_queries + 1;
      Dyno_obs.Span.set_attr sp mid "outcome" "aborted";
      Dyno_obs.Span.set_attr sp mid "abort_s" (Fmt.str "%.17g" dt);
      Trace.recordf trace ~time:(Query_engine.now w) Trace.Abort
        "parallel round aborted after %.3f s: %a" dt
        Dyno_source.Data_source.pp_broken b;
      Dyno_obs.Lineage.abort lin
        ~ids:[ Update_msg.id m ]
        ~time:(Query_engine.now w)
        ~detail:(abort_provenance umq b);
      (match config.strategy with
      | Strategy.Pessimistic ->
          if not (Umq.peek_schema_change_flag umq) then
            detect_and_correct ~force:true w mv stats
      | Strategy.Optimistic -> detect_and_correct ~force:true w mv stats
      | Strategy.Merge_all ->
          let r = Correct.merge_all umq in
          if r.Correct.reordered then begin
            stats.Stats.corrections <- stats.Stats.corrections + 1;
            stats.Stats.merges <- stats.Stats.merges + 1;
            note_merge_all lin ~time:(Query_engine.now w) r
          end)

(* The frontier of concurrently-maintainable entries: single data updates
   from distinct sources, scanned from the queue head, stopping at the
   first schema change or merged batch (those carry Concurrent edges to
   every other entry) and serializing same-source chains (Semantic edges
   keep per-source commit order) by deferring their later links to a
   later round. *)
let antichain ~(config : config) (umq : Umq.t) (mv : Mat_view.t) :
    (Update_msg.t * Dyno_relational.Update.t) list =
  if
    config.parallel <= 1
    || config.vm_mode <> Incremental
    || not (View_def.is_valid (Mat_view.def mv))
  then []
  else
    let rec scan acc seen = function
      | Umq.Single m :: rest when Update_msg.is_du m ->
          if List.length acc >= config.parallel then List.rev acc
          else
            let src = Update_msg.source m in
            if List.exists (String.equal src) seen then scan acc seen rest
            else (
              match Update_msg.as_du m with
              | Some u -> scan ((m, u) :: acc) (src :: seen) rest
              | None -> List.rev acc)
      | _ -> List.rev acc
    in
    scan [] [] (Umq.entries umq)

(* ---- Self-maintenance tier wiring (shared by all schedulers) ---- *)

(* Build a view's auxiliary store against this engine: projections are
   seeded (and re-seeded after schema-change invalidation) from the
   memoized source snapshots at the per-source delivered frontier — the
   exact historical state, never the live one, which may hold committed
   but undelivered updates neither maintenance path is allowed to see. *)
let aux_store (w : Query_engine.t) (mv : Mat_view.t) :
    Dyno_selfmaint.Aux_store.t =
  let registry = Query_engine.registry w in
  let lookup ~source ~rel ~version =
    match Dyno_source.Registry.find_opt registry source with
    | None -> None
    | Some ds -> (
        try Some (Dyno_source.Data_source.relation_at ds ~version rel)
        with _ -> None)
  in
  let history = List.concat_map Umq.history (Query_engine.umqs w) in
  let frontier source =
    List.fold_left
      (fun acc m ->
        if String.equal (Update_msg.source m) source then
          max acc (Update_msg.source_version m)
        else acc)
      0 history
  in
  let refresh_cost ~delta_tuples =
    Cost_model.refresh (Query_engine.cost w) ~delta_tuples
  in
  Dyno_selfmaint.Aux_store.create
    ~obs:(Query_engine.obs w)
    ~lookup ~frontier ~refresh_cost mv

(* A source's projections may only revalidate once no schema change of
   that source remains queued anywhere (the cross-shard barrier handles
   queued SCs globally, so the scan covers every route's queue). *)
let sync_aux (w : Query_engine.t) (store : Dyno_selfmaint.Aux_store.t)
    (mv : Mat_view.t) : unit =
  Dyno_selfmaint.Aux_store.sync store mv ~sc_queued:(fun src ->
      List.exists
        (fun u ->
          List.exists
            (fun m ->
              Update_msg.is_sc m && String.equal (Update_msg.source m) src)
            (Umq.messages u))
        (Query_engine.umqs w))

(* Copy the engine- and queue-level transport counters into the run's
   statistics (absolute values: one engine drives one run). *)
let record_net_stats (w : Query_engine.t) (stats : Stats.t) : unit =
  stats.Stats.retries <- Query_engine.net_retries w;
  stats.Stats.timeouts <- Query_engine.net_timeouts w;
  stats.Stats.net_wait <- Query_engine.net_wait w;
  stats.Stats.msgs_lost <- Query_engine.net_msgs_lost w;
  stats.Stats.msgs_duplicated <- Query_engine.net_msgs_duplicated w;
  stats.Stats.dups_dropped <- Query_engine.umq_dups_dropped w;
  stats.Stats.reorders_healed <- Query_engine.umq_reorders_healed w

(* Mirror the run's final statistics into the metrics registry, so the
   exported metrics JSON is self-contained.  Live counters ([net.*],
   [umq.*], [vm.*]) are incremented where they happen; this adds the
   scheduler-level totals under [sched.*]. *)
let mirror_stats (obs : Dyno_obs.Obs.t) (stats : Stats.t) : unit =
  let mx = Dyno_obs.Obs.metrics obs in
  if Dyno_obs.Metrics.enabled mx then begin
    Dyno_obs.Metrics.set_gauge mx "sched.busy_s" stats.Stats.busy;
    Dyno_obs.Metrics.set_gauge mx "sched.abort_cost_s" stats.Stats.abort_cost;
    Dyno_obs.Metrics.set_gauge mx "sched.idle_s" stats.Stats.idle;
    Dyno_obs.Metrics.set_gauge mx "sched.end_time_s" stats.Stats.end_time;
    Dyno_obs.Metrics.set_gauge mx "sched.net_wait_s" stats.Stats.net_wait;
    Dyno_obs.Metrics.set_gauge mx "sched.stall_ratio"
      (if stats.Stats.end_time > 0.0 then
         stats.Stats.net_wait /. stats.Stats.end_time
       else 0.0);
    Dyno_obs.Metrics.set_counter mx "sched.du_maintained"
      stats.Stats.du_maintained;
    Dyno_obs.Metrics.set_counter mx "sched.sc_maintained"
      stats.Stats.sc_maintained;
    Dyno_obs.Metrics.set_counter mx "sched.batches" stats.Stats.batches;
    Dyno_obs.Metrics.set_counter mx "sched.irrelevant" stats.Stats.irrelevant;
    Dyno_obs.Metrics.set_counter mx "sched.aborts" stats.Stats.aborts;
    Dyno_obs.Metrics.set_counter mx "sched.broken_queries"
      stats.Stats.broken_queries;
    Dyno_obs.Metrics.set_counter mx "sched.detections" stats.Stats.detections;
    Dyno_obs.Metrics.set_counter mx "sched.corrections"
      stats.Stats.corrections;
    Dyno_obs.Metrics.set_counter mx "sched.merges" stats.Stats.merges;
    Dyno_obs.Metrics.set_counter mx "sched.probes" stats.Stats.probes;
    Dyno_obs.Metrics.set_counter mx "sched.compensations"
      stats.Stats.compensations;
    Dyno_obs.Metrics.set_counter mx "sched.view_commits"
      stats.Stats.view_commits;
    (* Self-maintenance totals: only when the tier actually fired, so
       baseline metric exports keep their historical key set. *)
    if stats.Stats.probes_avoided > 0 then begin
      Dyno_obs.Metrics.set_counter mx "sched.probes_avoided"
        stats.Stats.probes_avoided;
      Dyno_obs.Metrics.set_counter mx "sched.bytes_saved"
        stats.Stats.bytes_saved
    end
  end

(** [run ?config w mv mk] drives the Dyno loop until the UMQ and the
    timeline are both drained; returns the collected statistics. *)
let run ?(config = default_config) (w : Query_engine.t) (mv : Mat_view.t)
    (mk : Dyno_source.Meta_knowledge.t) : Stats.t =
  let stats = Stats.create () in
  let umq = Query_engine.umq w in
  let steps = ref 0 in
  let trace = Query_engine.trace w in
  let obs = Query_engine.obs w in
  let sp = Dyno_obs.Obs.spans obs in
  let lin = Dyno_obs.Obs.lineage obs in
  let now () = Query_engine.now w in
  let store =
    if config.self_maint then begin
      let s = aux_store w mv in
      Query_engine.add_admit_hook w (Dyno_selfmaint.Aux_store.on_message s);
      Some s
    end
    else None
  in
  let local = Option.map Dyno_selfmaint.Aux_store.local store in
  (* Multicore runtime: a fixed worker-domain pool for the lifetime of
     the run.  [`Domains 1] still routes through the prepare/compute
     split (serially, on the coordinator) — the honest baseline for
     speedup measurements. *)
  let pool =
    match config.runtime with
    | `Simulated -> None
    | `Domains n -> Some (Dyno_sim.Domain_pool.create ~domains:n)
  in
  let fresh =
    Freshness.create
      ~metrics:(Dyno_obs.Obs.metrics obs)
      ~mv
      ~registry:(Query_engine.registry w)
      ~queued:(Umq.messages umq) ()
  in
  let series = Dyno_obs.Obs.series obs in
  if Dyno_obs.Timeseries.enabled series then begin
    let mx = Dyno_obs.Obs.metrics obs in
    Dyno_obs.Timeseries.probe series "umq.depth" (fun _ ->
        float_of_int (List.length (Umq.entries umq)));
    Dyno_obs.Timeseries.probe series "sched.inflight" (fun _ ->
        Dyno_obs.Metrics.gauge_value mx "sched.inflight");
    Dyno_obs.Timeseries.probe series ~kind:`Counter "sched.view_commits"
      (fun _ -> float_of_int stats.Stats.view_commits);
    Dyno_obs.Timeseries.probe series ~kind:`Counter "sched.probes" (fun _ ->
        float_of_int stats.Stats.probes);
    Dyno_obs.Timeseries.probe series ~kind:`Counter "sched.aborts" (fun _ ->
        float_of_int stats.Stats.aborts);
    Dyno_obs.Timeseries.probe series ~kind:`Counter "net.retries" (fun _ ->
        float_of_int (Query_engine.net_retries w));
    Dyno_obs.Timeseries.probe series "sched.busy_ratio" (fun now ->
        if now > 0.0 then stats.Stats.busy /. now else 0.0);
    Dyno_obs.Timeseries.probe series "sched.abort_ratio" (fun _ ->
        if stats.Stats.busy > 0.0 then stats.Stats.abort_cost /. stats.Stats.busy
        else 0.0);
    Dyno_obs.Timeseries.probe series "staleness_s" (fun now ->
        Freshness.staleness_seconds fresh ~now);
    Dyno_obs.Timeseries.probe series "staleness_versions" (fun _ ->
        float_of_int (Freshness.lag_versions fresh));
    Freshness.register_probes fresh series
  end;
  (* One iteration over a non-empty queue, run inside a [Maintain] span.
     Every clock advance below is charged to [Stats.busy] (detection,
     maintenance, post-abort correction, stall recovery), so the span's
     duration equals exactly the busy time this iteration contributes —
     the invariant Σ maintain-span durations = Stats.busy rests on it. *)
  let iteration mid =
    (match config.strategy with
    | Strategy.Pessimistic -> detect_and_correct ~force:false w mv stats
    | Strategy.Optimistic | Strategy.Merge_all ->
        (* No pre-exec pass; the flag is left set and ignored. *)
        ());
    (* Deferred/grouped maintenance: collapse a prefix of single DUs
       into one transient batch entry.  Taking a queue prefix preserves
       the legal order. *)
    let group_size =
      if config.du_group <= 1 || not (View_def.is_valid (Mat_view.def mv))
      then 0
      else begin
        let rec count n = function
          | Umq.Single m :: rest
            when Update_msg.is_du m && n < config.du_group ->
              count (n + 1) rest
          | _ -> n
        in
        count 0 (Umq.entries umq)
      end
    in
    if group_size > 1 then begin
      Dyno_obs.Span.set_name sp mid (Fmt.str "group of %d" group_size);
      let msgs =
        List.filteri (fun i _ -> i < group_size) (Umq.entries umq)
        |> List.concat_map Umq.entry_messages
      in
      Umq.clear_broken_query_flag umq;
      let t0 = Query_engine.now w in
      let gids = List.map Update_msg.id msgs in
      Dyno_obs.Lineage.dispatch lin ~ids:gids ~time:t0
        ~detail:(Fmt.str "dispatched in a grouped sweep of %d" group_size)
        ();
      Dyno_obs.Lineage.set_scope lin gids;
      match
        Dyno_vm.Vm.maintain_group ~compensate:config.compensate ?local w mv
          msgs
      with
      | Dyno_vm.Vm.Unreachable u ->
          Dyno_obs.Span.set_attr sp mid "outcome" "stalled";
          stall_and_wait w stats ~t0 u;
          Dyno_obs.Lineage.stall lin ~ids:gids ~time:(Query_engine.now w)
            ~detail:(Fmt.str "%a" Dyno_net.Retry.pp_unreachable u)
      | (Dyno_vm.Vm.Refreshed _ | Dyno_vm.Vm.Irrelevant) as res ->
          Dyno_obs.Span.set_attr sp mid "outcome" "done";
          stats.Stats.busy <- stats.Stats.busy +. (Query_engine.now w -. t0);
          stats.Stats.batches <- stats.Stats.batches + 1;
          stats.Stats.batch_updates <-
            stats.Stats.batch_updates + List.length msgs;
          stats.Stats.view_commits <- stats.Stats.view_commits + 1;
          Freshness.note_entry fresh ~now:(Query_engine.now w) msgs;
          (let state, detail =
             match res with
             | Dyno_vm.Vm.Irrelevant ->
                 ( Dyno_obs.Lineage.Irrelevant,
                   "grouped sweep: no pivot rows in the view" )
             | _ ->
                 ( Dyno_obs.Lineage.Applied,
                   Fmt.str "grouped sweep of %d applied atomically" group_size
                 )
           in
           Dyno_obs.Lineage.finish lin ~ids:gids ~time:(Query_engine.now w)
             ~state ~detail);
          for _ = 1 to group_size do
            Umq.remove_head umq
          done
      | Dyno_vm.Vm.Aborted b ->
          let dt = Query_engine.now w -. t0 in
          stats.Stats.busy <- stats.Stats.busy +. dt;
          stats.Stats.abort_cost <- stats.Stats.abort_cost +. dt;
          stats.Stats.aborts <- stats.Stats.aborts + 1;
          stats.Stats.broken_queries <- stats.Stats.broken_queries + 1;
          Dyno_obs.Span.set_attr sp mid "outcome" "aborted";
          Dyno_obs.Span.set_attr sp mid "abort_s" (Fmt.str "%.17g" dt);
          Trace.recordf trace ~time:(Query_engine.now w) Trace.Abort
            "grouped maintenance aborted after %.3f s: %a" dt
            Dyno_source.Data_source.pp_broken b;
          Dyno_obs.Lineage.abort lin ~ids:gids ~time:(Query_engine.now w)
            ~detail:(abort_provenance umq b);
          (match config.strategy with
          | Strategy.Pessimistic ->
              if not (Umq.peek_schema_change_flag umq) then
                detect_and_correct ~force:true w mv stats
          | Strategy.Optimistic -> detect_and_correct ~force:true w mv stats
          | Strategy.Merge_all ->
              let r = Correct.merge_all umq in
              if r.Correct.reordered then begin
                stats.Stats.corrections <- stats.Stats.corrections + 1;
                stats.Stats.merges <- stats.Stats.merges + 1
              end)
    end
    else
      (* Dependency-parallel dispatch: maintain a whole antichain of the
         corrected topological order concurrently.  Falls through to the
         historical serial path when fewer than two entries qualify, so
         [parallel = 1] is bit-identical to the serial scheduler. *)
      match antichain ~config umq mv with
      | _ :: _ :: _ as members ->
          parallel_round ?local ?pool ~config ~fresh w mv stats mid members
      | _ -> (
          match Umq.head umq with
          | None -> ()
          | Some entry -> (
        Dyno_obs.Span.set_name sp mid (Fmt.str "%a" Umq.pp_entry entry);
        Umq.clear_broken_query_flag umq;
        let t0 = Query_engine.now w in
        Dyno_obs.Lineage.dispatch lin ~ids:(Umq.entry_ids entry) ~time:t0
          ~detail:"dispatched at queue head" ();
        match
          maintain_entry ?local ~compensate:config.compensate
            ~vm_mode:config.vm_mode w mv mk stats entry
        with
        | Done ->
            Dyno_obs.Span.set_attr sp mid "outcome" "done";
            stats.Stats.busy <- stats.Stats.busy +. (Query_engine.now w -. t0);
            Freshness.note_entry fresh ~now:(Query_engine.now w)
              (Umq.entry_messages entry);
            Umq.remove_head umq
        | UnreachableStep u ->
            Dyno_obs.Span.set_attr sp mid "outcome" "stalled";
            stall_and_wait w stats ~t0 u;
            Dyno_obs.Lineage.stall lin ~ids:(Umq.entry_ids entry)
              ~time:(Query_engine.now w)
              ~detail:(Fmt.str "%a" Dyno_net.Retry.pp_unreachable u)
        | AbortedStep b ->
            let dt = Query_engine.now w -. t0 in
            stats.Stats.busy <- stats.Stats.busy +. dt;
            stats.Stats.abort_cost <- stats.Stats.abort_cost +. dt;
            stats.Stats.aborts <- stats.Stats.aborts + 1;
            stats.Stats.broken_queries <- stats.Stats.broken_queries + 1;
            Dyno_obs.Span.set_attr sp mid "outcome" "aborted";
            Dyno_obs.Span.set_attr sp mid "abort_s" (Fmt.str "%.17g" dt);
            Trace.recordf trace ~time:(Query_engine.now w) Trace.Abort
              "maintenance aborted after %.3f s: %a" dt
              Dyno_source.Data_source.pp_broken b;
            Dyno_obs.Lineage.abort lin ~ids:(Umq.entry_ids entry)
              ~time:(Query_engine.now w) ~detail:(abort_provenance umq b);
            (match config.strategy with
            | Strategy.Pessimistic ->
                (* The SC that broke us set the schema-change flag when it
                   was enqueued; the next iteration's pre-exec pass will
                   correct the queue (Figure 6: "corrected in the next
                   loop").  Defensive: if the flag is somehow already
                   consumed, force a correction now rather than retry the
                   same doomed head forever. *)
                if not (Umq.peek_schema_change_flag umq) then
                  detect_and_correct ~force:true w mv stats
            | Strategy.Optimistic ->
                (* In-exec detection is the only mechanism: correct now. *)
                detect_and_correct ~force:true w mv stats
            | Strategy.Merge_all ->
                let t1 = Query_engine.now w in
                let r = Correct.merge_all umq in
                if r.Correct.reordered then begin
                  stats.Stats.corrections <- stats.Stats.corrections + 1;
                  stats.Stats.merges <- stats.Stats.merges + 1;
                  Trace.recordf trace ~time:(Query_engine.now w) Trace.Merge
                    "merge-all: %d update(s) collapsed" r.Correct.merged_updates;
                  note_merge_all lin ~time:(Query_engine.now w) r
                end;
                stats.Stats.busy <-
                  stats.Stats.busy +. (Query_engine.now w -. t1))))
  in
  let rec loop () =
    incr steps;
    if !steps > config.max_steps then raise (Step_limit_exceeded !steps);
    Query_engine.deliver_due w;
    (* Revalidate auxiliary projections whose invalidating schema changes
       have all been maintained (no-op unless something is invalid). *)
    (match store with Some s -> sync_aux w s mv | None -> ());
    (* Sampling at scheduler wakeups: every state change in the simulation
       happens at a wakeup, so sampling here (rate-limited to the series
       interval) captures every change-point without touching the clock. *)
    ignore
      (Dyno_obs.Timeseries.maybe_sample series ~now:(Query_engine.now w)
        : bool);
    if Umq.is_empty umq then begin
      (* Wake for the next scheduled commit OR the next in-flight message
         arrival — with transport delay the timeline can be drained while
         messages are still on the wire. *)
      match Query_engine.next_wakeup w with
      | None -> () (* drained: done *)
      | Some t ->
          let dt = t -. Query_engine.now w in
          if dt > 0.0 then stats.Stats.idle <- stats.Stats.idle +. dt;
          Query_engine.idle_until w t;
          loop ()
    end
    else begin
      Dyno_obs.Span.with_span sp ~now Dyno_obs.Span.Maintain
        (Fmt.str "step %d" !steps)
        iteration;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Dyno_sim.Domain_pool.shutdown pool)
    loop;
  (* Force a final sample at quiescence so the series always ends with the
     caught-up state (staleness exactly 0). *)
  Dyno_obs.Timeseries.sample series ~now:(Query_engine.now w);
  stats.Stats.end_time <- Query_engine.now w;
  record_net_stats w stats;
  mirror_stats obs stats;
  stats
