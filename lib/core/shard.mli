(** Partition plan: which shard owns which source.

    Scale-out slices the view manager by {e source}: every update stream
    is owned by exactly one shard, which runs its own UMQ, transport
    channel, exactly-once sequencer and worker pool.  Per-source FIFO
    order (the sequencer's invariant) is therefore preserved trivially —
    a source's messages never cross a shard boundary — while shards
    drain their queues independently until a schema change forces a
    cross-shard barrier (see {!Shard_scheduler}).

    A plan is a total function from the world's sources to shard ids
    [0 .. shards-1].  Sources without an explicit [partition] override
    are dealt round-robin in the order given, so the default plan is
    balanced by source count (not by load — heavy-tailed workloads pass
    overrides to spread hot sources). *)

type t

val plan :
  ?partition:(string * int) list -> shards:int -> string list -> t
(** [plan ?partition ~shards sources] assigns every source a shard.
    Explicit [partition] pairs win; remaining sources are dealt
    round-robin over the shards in list order.
    @raise Invalid_argument if [shards < 1], a partition override names
    an unknown source or an out-of-range shard, or [sources] is empty
    or contains duplicates. *)

val solo : string list -> t
(** [plan ~shards:1 sources] — everything on one shard. *)

val count : t -> int
(** Number of shards (≥ 1). *)

val owner : t -> string -> int
(** The shard owning a source — O(1).
    @raise Invalid_argument on a source outside the plan. *)

val sources_of : t -> int -> string list
(** Sources owned by a shard, in the original [sources] order. *)

val sources : t -> string list
(** Every source in the plan, in the original order. *)

val pp : Format.formatter -> t -> unit
