(** Dependency correction (Section 4.2): reorder the UMQ into a legal
    order.

    Cycles in the dependency graph (maintenance deadlocks) cannot be broken
    by aborting a participant — source updates are already committed and
    unabortable — so they are {e merged} into batch nodes processed
    atomically by the batch view-adaptation algorithm; the condensed graph
    is then topologically sorted.  By Theorem 2 the resulting order has all
    dependencies safe, so (Theorem 1) no broken query can arise from the
    updates currently queued. *)

open Dyno_view

type report = {
  reordered : bool;  (** the queue order actually changed *)
  merged_cycles : int;
  merged_updates : int;
  merged_members : int list list;
      (** message ids of each collapsed cycle — merge provenance *)
  nodes : int;
  edges : int;
}

(** [apply umq g] corrects the queue according to graph [g] and installs
    the legal order.  Returns what happened, for stats/trace. *)
let apply (umq : Umq.t) (g : Dep_graph.t) : report =
  let before = Umq.entries umq in
  let c = Dep_graph.correct g in
  let reordered =
    List.length before <> List.length c.Dep_graph.order
    || List.exists2
         (fun a b -> Umq.entry_ids a <> Umq.entry_ids b)
         before c.Dep_graph.order
  in
  if reordered then Umq.replace umq c.Dep_graph.order;
  {
    reordered;
    merged_cycles = c.Dep_graph.merged_cycles;
    merged_updates = c.Dep_graph.merged_updates;
    merged_members = c.Dep_graph.merged_members;
    nodes = Dep_graph.size g;
    edges = List.length (Dep_graph.edges g);
  }

(** [merge_all umq] — the strawman correction: collapse the whole queue
    into a single batch (messages in commit order).  Loses intermediate MV
    states and produces one long, abort-prone maintenance process; kept as
    an experimental baseline (ablation). *)
let merge_all (umq : Umq.t) : report =
  let msgs =
    List.sort
      (fun a b -> Int.compare (Update_msg.id a) (Update_msg.id b))
      (Umq.messages umq)
  in
  match msgs with
  | [] | [ _ ] ->
      {
        reordered = false;
        merged_cycles = 0;
        merged_updates = 0;
        merged_members = [];
        nodes = List.length msgs;
        edges = 0;
      }
  | _ ->
      Umq.replace umq [ Umq.Batch msgs ];
      {
        reordered = true;
        merged_cycles = 1;
        merged_updates = List.length msgs;
        merged_members = [ List.map Update_msg.id msgs ];
        nodes = List.length msgs;
        edges = 0;
      }
