(** Dyno: the dynamic reordering scheduler — the main loop of Figure 6.

    Drives the UMQ to empty: (pessimistic) pre-exec detection + correction
    guarded by the schema-change flag, maintenance of the head entry (VM
    for data updates, VS+VA for schema changes, batch adaptation for
    merged nodes), and in-exec recovery when a maintenance query breaks:
    the process aborts, the queue is corrected, and maintenance resumes
    under the new legal order. *)

open Dyno_view

(** How data updates are maintained (re-exported from {!Run_config}). *)
type vm_mode = Run_config.vm_mode =
  | Incremental  (** SWEEP-style probes computing a view delta (default) *)
  | Recompute
      (** naive baseline: re-materialize the whole view per update — the
          classic strawman incremental maintenance is measured against *)

(** The scheduler consumes the shared {!Run_config.t} record (one record
    drives the serial, multi-view and sharded schedulers).  [parallel]
    dispatches antichains of single data updates from distinct sources
    with SWEEP exclusion sets fixed at dispatch; same-source commit order
    and every CD/SD edge still serialize (Theorems 1–2), and [1] is
    bit-identical to the historical serial loop. *)
type config = Run_config.t = {
  strategy : Strategy.t;
  max_steps : int;
  compensate : bool;
  vm_mode : vm_mode;
  du_group : int;
  parallel : int;
  self_maint : bool;
  runtime : [ `Simulated | `Domains of int ];
      (** execution backend for antichain sweep compute — see
          {!Run_config.t} *)
}

val default_config : config
(** [= Run_config.default]: pessimistic, compensated, incremental, no
    grouping, serial, one million steps. *)

exception Step_limit_exceeded of int

(** Outcome of maintaining one queue entry (shared with the sharded
    scheduler, which drives the same per-entry machinery across many
    queues). *)
type step_outcome =
  | Done
  | AbortedStep of Dyno_source.Data_source.broken
  | UnreachableStep of Dyno_net.Retry.unreachable
      (** a maintenance query exhausted its transport retry budget; the
          entry stays at the queue head and is retried after recovery *)

val maintain_entry :
  ?local:Dyno_vm.Sweep.local ->
  compensate:bool ->
  vm_mode:vm_mode ->
  Query_engine.t ->
  Mat_view.t ->
  Dyno_source.Meta_knowledge.t ->
  Stats.t ->
  Umq.entry ->
  step_outcome
(** Maintain one queue entry (VM for a data update, VS+VA for a schema
    change, batch adaptation for a merged node), updating counters on
    success.  Does {e not} dequeue — the caller owns the queue.  [local]
    (self-maintenance tier) lets fully-covered sweeps skip their probe
    round trips — see {!Dyno_vm.Vm.maintain}. *)

(** One parallel-round member as the multicore runtime's worker-domain
    pool sees it (shared with the multi-view and sharded schedulers —
    [pj_mv] and [pj_local] vary per member only there). *)
type pool_job = {
  pj_mv : Mat_view.t;
  pj_msg : Update_msg.t;
  pj_du : Dyno_relational.Update.t;
  pj_applied : int list;  (** multi-view: queued ids already integrated *)
  pj_exclude_extra : int list;  (** exclusion set frozen at dispatch *)
  pj_local : Dyno_vm.Sweep.local option;
}

val pool_sweeps :
  pool:Dyno_sim.Domain_pool.t ->
  compensate:bool ->
  Query_engine.t ->
  Stats.t ->
  pool_job array ->
  Dyno_vm.Vm.swept option array
(** Evaluate a dispatched round's fully-covered local sweeps on the
    worker-domain pool: coordinator-side {!Dyno_vm.Vm.prepare_sweep} per
    member, one {!Dyno_sim.Domain_pool.run_all} batch of pure
    {!Dyno_vm.Sweep.compute_local} thunks, then coordinator-side
    bookkeeping.  [Some swept] members are decided; [None] members still
    need the cooperative probed path.  Increments [Stats.mcore_tasks] by
    the number of offloaded computations. *)

val aux_store : Query_engine.t -> Mat_view.t -> Dyno_selfmaint.Aux_store.t
(** Build the view's auxiliary-projection store: derive the plan from the
    view definition, seed every projection from its source's state at the
    per-source {e delivered} frontier (reconstructed from the queues'
    admission history, so in-flight commits are excluded), and wire the
    refresh cost to the engine's cost model.  The caller installs
    {!Dyno_selfmaint.Aux_store.on_message} as an admit hook to keep it
    fed.  Shared with the multi-view and sharded schedulers. *)

val sync_aux : Query_engine.t -> Dyno_selfmaint.Aux_store.t -> Mat_view.t -> unit
(** Revalidate invalidated projections once no schema change of their
    source remains queued on any route (cheap no-op unless something is
    invalid).  Call once per scheduler iteration, after delivery. *)

val abort_provenance : Umq.t -> Dyno_source.Data_source.broken -> string
(** Lineage narrative for an abort: the broken-query diagnosis plus the
    queued schema change from the broken source (the conflicting SC the
    correction will resolve), when one is still queued. *)

val note_merge_all :
  Dyno_obs.Lineage.t -> time:float -> Correct.report -> unit
(** Record merge-all collapse provenance (parent links to the batch's
    oldest member) on the lineage ring. *)

val stall_and_wait :
  Query_engine.t -> Stats.t -> t0:float -> Dyno_net.Retry.unreachable -> unit
(** A maintenance step stalled on an unreachable source: charge the sunk
    work as busy, wait for recovery, and let the caller retry.  No
    correction runs — the queue order is not the problem. *)

val record_net_stats : Query_engine.t -> Stats.t -> unit
(** Copy the engine- and queue-level transport counters (retries,
    timeouts, lost/duplicated messages, dedup/reorder healing, net wait)
    into the run's statistics. *)

val mirror_stats : Dyno_obs.Obs.t -> Stats.t -> unit
(** Mirror the run's final statistics into the metrics registry under
    [sched.*] names (no-op on a disabled registry). *)

val run :
  ?config:config ->
  Query_engine.t ->
  Mat_view.t ->
  Dyno_source.Meta_knowledge.t ->
  Stats.t
(** [run w mv mk] loops until both the UMQ and the timeline of future
    source commits are drained, and returns the collected statistics.
    @raise Step_limit_exceeded if the loop exceeds [config.max_steps]. *)
