(** Dyno: the dynamic reordering scheduler — the main loop of Figure 6.

    Drives the UMQ to empty: (pessimistic) pre-exec detection + correction
    guarded by the schema-change flag, maintenance of the head entry (VM
    for data updates, VS+VA for schema changes, batch adaptation for
    merged nodes), and in-exec recovery when a maintenance query breaks:
    the process aborts, the queue is corrected, and maintenance resumes
    under the new legal order. *)

open Dyno_view

(** How data updates are maintained. *)
type vm_mode =
  | Incremental  (** SWEEP-style probes computing a view delta (default) *)
  | Recompute
      (** naive baseline: re-materialize the whole view per update — the
          classic strawman incremental maintenance is measured against *)

type config = {
  strategy : Strategy.t;
  max_steps : int;  (** safety valve against livelock in tests *)
  compensate : bool;
      (** SWEEP compensation for concurrent DUs; disable only to
          demonstrate the duplication anomaly (Example 1.a) *)
  vm_mode : vm_mode;
  du_group : int;
      (** deferred/grouped maintenance: up to this many consecutive queued
          data updates are maintained as one atomic batch (1 = the paper's
          per-update processing).  Groups never cross schema changes or
          merged batches and preserve queue order, so dependencies stay
          safe; the view skips intermediate states (freshness for
          throughput). *)
  parallel : int;
      (** dependency-parallel maintenance: up to this many mutually
          independent queued entries — an antichain of the corrected
          topological order — are maintained concurrently, overlapping
          their probe round trips on cooperative executor tasks.
          Same-source commit order and every CD/SD edge still serialize
          (Theorems 1–2): only single data updates from distinct sources
          with no queued schema change ahead of them are dispatched
          together, with SWEEP exclusion sets fixed at dispatch.  [1]
          (the default) is the strictly serial scheduler, bit-identical
          to the historical loop. *)
}

val default_config : config
(** Pessimistic, compensated, incremental, no grouping, serial, one
    million steps. *)

exception Step_limit_exceeded of int

val record_net_stats : Query_engine.t -> Stats.t -> unit
(** Copy the engine- and queue-level transport counters (retries,
    timeouts, lost/duplicated messages, dedup/reorder healing, net wait)
    into the run's statistics. *)

val mirror_stats : Dyno_obs.Obs.t -> Stats.t -> unit
(** Mirror the run's final statistics into the metrics registry under
    [sched.*] names (no-op on a disabled registry). *)

val run :
  ?config:config ->
  Query_engine.t ->
  Mat_view.t ->
  Dyno_source.Meta_knowledge.t ->
  Stats.t
(** [run w mv mk] loops until both the UMQ and the timeline of future
    source commits are drained, and returns the collected statistics.
    @raise Step_limit_exceeded if the loop exceeds [config.max_steps]. *)
