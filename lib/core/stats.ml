(** Run statistics: the measurements behind every figure of Section 6.

    The paper charts two quantities per run — total maintenance cost and
    abort cost, both in seconds — plus the event counters we use in tests
    (broken queries, corrections, merges).  "Maintenance cost" is busy
    time: work the view manager performed (probes, refreshes, detection,
    correction, aborted work); idle waiting for source commits is tracked
    separately.  "The maintenance cost includes the abort cost throughout
    our experiments" (footnote 4) — same here. *)

type t = {
  mutable busy : float;  (** total maintenance cost (includes aborts) *)
  mutable abort_cost : float;  (** work thrown away due to broken queries *)
  mutable idle : float;  (** time spent waiting for updates *)
  mutable end_time : float;  (** simulated clock at completion *)
  mutable du_maintained : int;
  mutable sc_maintained : int;
  mutable batches : int;  (** merged batch nodes maintained *)
  mutable batch_updates : int;  (** messages inside those batches *)
  mutable irrelevant : int;  (** updates not touching the view *)
  mutable aborts : int;
  mutable broken_queries : int;
  mutable detections : int;  (** pre-exec detection passes *)
  mutable corrections : int;  (** correction (reorder) passes *)
  mutable merges : int;  (** cycles collapsed *)
  mutable probes : int;  (** maintenance queries sent *)
  mutable compensations : int;  (** probe answers compensated *)
  mutable view_commits : int;
  mutable view_undefined : bool;
  (* Transport counters (zero on a reliable channel). *)
  mutable retries : int;  (** probe attempts re-sent after backoff *)
  mutable timeouts : int;  (** probe attempts that timed out *)
  mutable msgs_lost : int;  (** transmissions dropped by the channel *)
  mutable msgs_duplicated : int;  (** messages the channel delivered twice *)
  mutable dups_dropped : int;  (** duplicate deliveries dropped at the UMQ *)
  mutable reorders_healed : int;  (** held messages released in order *)
  mutable net_stalls : int;
      (** maintenance steps stalled on an unreachable source (retried
          after recovery — not aborts) *)
  mutable cross_shard_barriers : int;
      (** sharded runs: rounds where every shard paused for a global
          schema-change barrier (zero outside the sharded scheduler) *)
  mutable probes_avoided : int;
      (** self-maintenance: sweeps answered from auxiliary views instead
          of probe round trips (zero unless [--self-maint]) *)
  mutable bytes_saved : int;
      (** self-maintenance: estimated wire bytes the avoided probes would
          have shipped *)
  mutable net_wait : float;  (** time lost to timeouts/backoff/recovery, s *)
  mutable mcore_tasks : int;
      (** multicore backend: sweep computations evaluated on worker
          domains (zero on the default simulated runtime) *)
}

let create () =
  {
    busy = 0.0;
    abort_cost = 0.0;
    idle = 0.0;
    end_time = 0.0;
    du_maintained = 0;
    sc_maintained = 0;
    batches = 0;
    batch_updates = 0;
    irrelevant = 0;
    aborts = 0;
    broken_queries = 0;
    detections = 0;
    corrections = 0;
    merges = 0;
    probes = 0;
    compensations = 0;
    view_commits = 0;
    view_undefined = false;
    retries = 0;
    timeouts = 0;
    msgs_lost = 0;
    msgs_duplicated = 0;
    dups_dropped = 0;
    reorders_healed = 0;
    net_stalls = 0;
    cross_shard_barriers = 0;
    probes_avoided = 0;
    bytes_saved = 0;
    net_wait = 0.0;
    mcore_tasks = 0;
  }

let has_transport_activity s =
  s.retries > 0 || s.timeouts > 0 || s.msgs_lost > 0
  || s.msgs_duplicated > 0 || s.dups_dropped > 0 || s.reorders_healed > 0
  || s.net_stalls > 0
  || s.net_wait > 0.0

let pp ppf s =
  Fmt.pf ppf
    "@[<v>maintenance cost: %8.2f s (abort cost %6.2f s, idle %8.2f s, end \
     %8.2f s)@,\
     maintained: %d DU, %d SC, %d batch (%d msgs), %d irrelevant@,\
     aborts: %d (broken queries %d)@,\
     detection passes: %d, corrections: %d, cycles merged: %d@,\
     probes: %d (compensated %d), view commits: %d%s@]"
    s.busy s.abort_cost s.idle s.end_time s.du_maintained s.sc_maintained
    s.batches s.batch_updates s.irrelevant s.aborts s.broken_queries
    s.detections s.corrections s.merges s.probes s.compensations
    s.view_commits
    (if s.view_undefined then ", VIEW UNDEFINED" else "");
  (* Only when the transport actually misbehaved, so reliable-channel runs
     print byte-identically to the historical direct-call output. *)
  if has_transport_activity s then
    Fmt.pf ppf
      "@,@[<v>transport: %d retr%s, %d timeout(s), %.2f s waiting@,\
       messages: %d transmission(s) lost, %d duplicated, %d dup(s) \
       dropped, %d reorder(s) healed, %d stall(s)@]"
      s.retries
      (if s.retries = 1 then "y" else "ies")
      s.timeouts s.net_wait s.msgs_lost s.msgs_duplicated s.dups_dropped
      s.reorders_healed s.net_stalls;
  (* Same byte-compatibility bargain as the transport section: only
     sharded runs ever print it. *)
  if s.cross_shard_barriers > 0 then
    Fmt.pf ppf "@,cross-shard barriers: %d" s.cross_shard_barriers;
  (* Likewise: only self-maintaining runs ever print it. *)
  if s.probes_avoided > 0 then
    Fmt.pf ppf "@,self-maintenance: %d probe(s) avoided, ~%d B saved"
      s.probes_avoided s.bytes_saved;
  (* Likewise: only [--runtime domains:N] runs ever print it. *)
  if s.mcore_tasks > 0 then
    Fmt.pf ppf "@,multicore: %d sweep task(s) on worker domains"
      s.mcore_tasks

(** Machine-readable JSON rendering (mirrors the bench's [--json]
    output style; no external JSON dependency). *)
let to_json_string s =
  let b = Buffer.create 512 in
  let field_sep = ref "" in
  let add fmt =
    Buffer.add_string b !field_sep;
    field_sep := ",\n  ";
    Fmt.kstr (Buffer.add_string b) fmt
  in
  Buffer.add_string b "{\n  ";
  add "\"busy\": %.6f" s.busy;
  add "\"abort_cost\": %.6f" s.abort_cost;
  add "\"idle\": %.6f" s.idle;
  add "\"end_time\": %.6f" s.end_time;
  add "\"du_maintained\": %d" s.du_maintained;
  add "\"sc_maintained\": %d" s.sc_maintained;
  add "\"batches\": %d" s.batches;
  add "\"batch_updates\": %d" s.batch_updates;
  add "\"irrelevant\": %d" s.irrelevant;
  add "\"aborts\": %d" s.aborts;
  add "\"broken_queries\": %d" s.broken_queries;
  add "\"detections\": %d" s.detections;
  add "\"corrections\": %d" s.corrections;
  add "\"merges\": %d" s.merges;
  add "\"probes\": %d" s.probes;
  add "\"compensations\": %d" s.compensations;
  add "\"view_commits\": %d" s.view_commits;
  add "\"view_undefined\": %b" s.view_undefined;
  add "\"retries\": %d" s.retries;
  add "\"timeouts\": %d" s.timeouts;
  add "\"msgs_lost\": %d" s.msgs_lost;
  add "\"msgs_duplicated\": %d" s.msgs_duplicated;
  add "\"dups_dropped\": %d" s.dups_dropped;
  add "\"reorders_healed\": %d" s.reorders_healed;
  add "\"net_stalls\": %d" s.net_stalls;
  add "\"cross_shard_barriers\": %d" s.cross_shard_barriers;
  add "\"probes_avoided\": %d" s.probes_avoided;
  add "\"bytes_saved\": %d" s.bytes_saved;
  add "\"net_wait\": %.6f" s.net_wait;
  (* Conditional for the same reason as the [pp] sections: the default
     simulated runtime's JSON stays byte-identical across releases. *)
  if s.mcore_tasks > 0 then add "\"mcore_tasks\": %d" s.mcore_tasks;
  Buffer.add_string b "\n}";
  Buffer.contents b
