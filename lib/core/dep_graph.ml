(** The dependency graph over the Update Message Queue, and its correction
    (Section 4.1.1 and 4.2).

    Nodes are UMQ entries (single updates or previously-merged batches);
    edges are the concurrent and semantic dependencies of
    {!Dependency}.  Correction first collapses every strongly connected
    component — the maintenance deadlocks of Section 3.5 — into one merged
    batch node (updates that cannot be processed separately are processed
    as one atomic batch), then topologically sorts the now-acyclic graph
    into a {e legal order} (Definition 7): every dependency points from an
    earlier to a later queue position, i.e. is safe.

    The topological sort is {e stable}: among ready nodes it always emits
    the one with the smallest original queue position, so updates are
    reordered only as far as the dependencies force — keeping maintenance
    "in the smallest possible granularity … refreshing the view as quickly
    as possible" (Section 4.2). *)

open Dyno_relational
open Dyno_view

type t = {
  nodes : Umq.entry array;
  edges : Dependency.edge list;
  unsafe_edges : Dependency.edge list;
      (* edges violating the current queue order (Definition 6), computed
         once at construction — every consumer (detection outcome, has_unsafe
         gate, correction trigger) asks the same question of an immutable
         graph, so answer it once instead of re-filtering per caller. *)
}

let nodes g = Array.to_list g.nodes
let edges g = g.edges
let size g = Array.length g.nodes

(* Node indices ARE queue positions, so an edge is safe iff prerequisite
   precedes dependent numerically. *)
let compute_unsafe edges =
  List.filter (fun e -> not (Dependency.is_safe (fun i -> i) e)) edges

(** [make ~nodes ~edges] builds a graph directly — used by tests and by
    tools that want to analyse hand-crafted dependency structures. *)
let make ~nodes ~edges =
  { nodes = Array.of_list nodes; edges; unsafe_edges = compute_unsafe edges }

(** [build_many views entries] constructs the graph for the current queue
    contents against a {e set} of views (multi-view mode): a schema change
    induces concurrent dependencies as soon as it conflicts with {e any}
    view.  Complexity O(v·m·n) for concurrent dependencies plus O(n) for
    semantic ones. *)
let build_many (views : (Query.t * (string * Schema.t) list) list)
    (entries : Umq.entry list) : t =
  let nodes = Array.of_list entries in
  let n = Array.length nodes in
  let edges = ref [] in
  let add e = edges := e :: !edges in
  (* Concurrent dependencies. *)
  Array.iteri
    (fun y entry ->
      let conflicts =
        List.exists
          (fun m ->
            match Update_msg.as_sc m with
            | Some sc ->
                List.exists
                  (fun (query, schemas) ->
                    Dependency.sc_conflicts_with_view query schemas sc)
                  views
            | None -> false)
          (Umq.entry_messages entry)
      in
      if conflicts then
        for x = 0 to n - 1 do
          if x <> y then
            add { Dependency.dependent = x; prerequisite = y; kind = Concurrent }
        done)
    nodes;
  (* Semantic dependencies: chain entries per source in commit (id) order.
     An entry participates for every source it contains messages of; its
     rank within a source is the smallest id it holds there. *)
  let per_source : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i entry ->
      List.iter
        (fun m ->
          let src = Update_msg.source m in
          let l =
            match Hashtbl.find_opt per_source src with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add per_source src l;
                l
          in
          l := (Update_msg.id m, i) :: !l)
        (Umq.entry_messages entry))
    nodes;
  Hashtbl.iter
    (fun _src l ->
      let sorted =
        List.sort (fun (a, _) (b, _) -> Int.compare a b) !l
      in
      let rec chain = function
        | (_, i) :: ((_, j) :: _ as rest) ->
            if i <> j then
              add { Dependency.dependent = j; prerequisite = i; kind = Semantic };
            chain rest
        | _ -> ()
      in
      chain sorted)
    per_source;
  let edges = List.rev !edges in
  { nodes; edges; unsafe_edges = compute_unsafe edges }

(** [build query schemas entries] — the single-view case.  Complexity
    O(m·n) for concurrent dependencies plus O(n) for semantic ones, as
    analysed in the paper. *)
let build (query : Query.t) (schemas : (string * Schema.t) list)
    (entries : Umq.entry list) : t =
  build_many [ (query, schemas) ] entries

(** Unsafe dependencies under the current queue order (Definition 6) —
    cached at construction, O(1) per call. *)
let unsafe g = g.unsafe_edges

let unsafe_count g = List.length g.unsafe_edges
let has_unsafe g = g.unsafe_edges <> []

(* ------------------------------------------------------------------ *)
(* Tarjan's strongly connected components                              *)
(* ------------------------------------------------------------------ *)

(** [scc g] returns the strongly connected components (each a list of node
    indices) in reverse topological order of the condensation — Tarjan's
    algorithm, O(n + e).  Edges are oriented prerequisite → dependent. *)
let scc g =
  let n = Array.length g.nodes in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Dependency.edge) ->
      adj.(e.prerequisite) <- e.dependent :: adj.(e.prerequisite))
    g.edges;
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  !components

(* ------------------------------------------------------------------ *)
(* Forensic provenance                                                  *)
(* ------------------------------------------------------------------ *)

let pp_ids ppf = function
  | [ id ] -> Fmt.pf ppf "#%d" id
  | ids ->
      Fmt.pf ppf "batch [%a]" Fmt.(list ~sep:sp (fun ppf -> Fmt.pf ppf "#%d")) ids

(** [describe_edge g e] — a human-readable account of why the edge
    exists, naming the message ids involved and (for concurrent
    dependencies) the triggering schema change.  This is the provenance
    [dyno explain] replays. *)
let describe_edge g (e : Dependency.edge) : string =
  let ids i = Umq.entry_ids g.nodes.(i) in
  match e.Dependency.kind with
  | Dependency.Concurrent -> (
      match
        List.find_opt Update_msg.is_sc
          (Umq.entry_messages g.nodes.(e.Dependency.prerequisite))
      with
      | Some sc ->
          Fmt.str "CD edge: %a conflicts with SC #%d (%s) and must wait for it"
            pp_ids
            (ids e.Dependency.dependent)
            (Update_msg.id sc) (Update_msg.source sc)
      | None ->
          Fmt.str "CD edge: %a must follow %a" pp_ids
            (ids e.Dependency.dependent)
            pp_ids
            (ids e.Dependency.prerequisite))
  | Dependency.Semantic ->
      let src =
        match Umq.entry_messages g.nodes.(e.Dependency.prerequisite) with
        | m :: _ -> Update_msg.source m
        | [] -> "?"
      in
      Fmt.str "SD edge: %a must follow %a (commit order at %s)" pp_ids
        (ids e.Dependency.dependent)
        pp_ids
        (ids e.Dependency.prerequisite)
        src

(** Message ids of the edge's dependent entry — where the provenance is
    recorded in the lineage. *)
let edge_dependent_ids g (e : Dependency.edge) : int list =
  Umq.entry_ids g.nodes.(e.Dependency.dependent)

(** Result of a correction pass. *)
type correction = {
  order : Umq.entry list;  (** the legal order to install in the UMQ *)
  merged_cycles : int;  (** number of cycles collapsed into batches *)
  merged_updates : int;  (** messages involved in those cycles *)
  merged_members : int list list;
      (** message ids of each collapsed cycle, one list per new batch —
          the provenance behind every merge *)
}

(** [correct g] computes a legal order: cycles merged into batch entries
    (members in commit order), then a stable topological sort.  Theorem 2:
    the result has every dependency safe. *)
let correct g : correction =
  let comps = scc g in
  let n = Array.length g.nodes in
  (* Map node -> component id; build merged entries per component. *)
  let comp_of = Array.make n (-1) in
  let comps_arr = Array.of_list comps in
  Array.iteri
    (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members)
    comps_arr;
  let merged_cycles = ref 0 in
  let merged_updates = ref 0 in
  let merged_members = ref [] in
  let entry_of_comp ci =
    let members = comps_arr.(ci) in
    match members with
    | [ v ] -> g.nodes.(v)
    | vs ->
        incr merged_cycles;
        let msgs =
          List.concat_map (fun v -> Umq.entry_messages g.nodes.(v)) vs
          |> List.sort (fun a b ->
                 Int.compare (Update_msg.id a) (Update_msg.id b))
        in
        merged_updates := !merged_updates + List.length msgs;
        merged_members := List.map Update_msg.id msgs :: !merged_members;
        Umq.Batch msgs
  in
  (* Condensation adjacency + indegrees. *)
  let nc = Array.length comps_arr in
  let cadj = Array.make nc [] in
  let indeg = Array.make nc 0 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Dependency.edge) ->
      let a = comp_of.(e.prerequisite) and b = comp_of.(e.dependent) in
      if a <> b && not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.add seen (a, b) ();
        cadj.(a) <- b :: cadj.(a);
        indeg.(b) <- indeg.(b) + 1
      end)
    g.edges;
  (* Original position of a component = min position of its members
     (positions are node indices, i.e. queue order). *)
  let cpos =
    Array.mapi (fun _ members -> List.fold_left min max_int members) comps_arr
  in
  (* Stable Kahn: repeatedly emit the ready component with the smallest
     original position. *)
  let ready = ref [] in
  Array.iteri (fun ci d -> if d = 0 then ready := ci :: !ready) indeg;
  let order = ref [] in
  let emitted = ref 0 in
  while !ready <> [] do
    let best =
      List.fold_left
        (fun acc ci ->
          match acc with
          | None -> Some ci
          | Some b -> if cpos.(ci) < cpos.(b) then Some ci else acc)
        None !ready
      |> Option.get
    in
    ready := List.filter (fun ci -> ci <> best) !ready;
    order := best :: !order;
    incr emitted;
    List.iter
      (fun b ->
        indeg.(b) <- indeg.(b) - 1;
        if indeg.(b) = 0 then ready := b :: !ready)
      cadj.(best)
  done;
  assert (!emitted = nc);
  (* Build the order first: [entry_of_comp] updates the merge counters. *)
  let order = List.rev_map entry_of_comp !order in
  {
    order;
    merged_cycles = !merged_cycles;
    merged_updates = !merged_updates;
    merged_members = List.rev !merged_members;
  }

let pp ppf g =
  Fmt.pf ppf "@[<v>%d node(s):@,%a@,%d edge(s):@,%a@]" (size g)
    Fmt.(
      list ~sep:cut (fun ppf (i, e) -> Fmt.pf ppf "  [%d] %a" i Umq.pp_entry e))
    (List.mapi (fun i e -> (i, e)) (nodes g))
    (List.length g.edges)
    Fmt.(list ~sep:cut (fun ppf e -> Fmt.pf ppf "  %a" Dependency.pp_edge e))
    g.edges
