(** Run statistics: the measurements behind every figure of Section 6.
    "Maintenance cost" is busy time (probes, refreshes, detection,
    correction, aborted work); "the maintenance cost includes the abort
    cost throughout our experiments" (the paper's footnote 4). *)

type t = {
  mutable busy : float;  (** total maintenance cost, s (includes aborts) *)
  mutable abort_cost : float;  (** work thrown away on broken queries, s *)
  mutable idle : float;  (** time spent waiting for updates, s *)
  mutable end_time : float;  (** simulated clock at completion *)
  mutable du_maintained : int;
  mutable sc_maintained : int;
  mutable batches : int;  (** merged batch nodes maintained *)
  mutable batch_updates : int;  (** messages inside those batches *)
  mutable irrelevant : int;  (** updates not touching the view *)
  mutable aborts : int;
  mutable broken_queries : int;
  mutable detections : int;  (** pre-exec detection passes (graph built) *)
  mutable corrections : int;  (** correction (reorder) passes *)
  mutable merges : int;  (** cycles collapsed *)
  mutable probes : int;  (** maintenance queries sent *)
  mutable compensations : int;  (** probe answers compensated *)
  mutable view_commits : int;
  mutable view_undefined : bool;
  (* Transport counters (zero on a reliable channel). *)
  mutable retries : int;  (** probe attempts re-sent after backoff *)
  mutable timeouts : int;  (** probe attempts that timed out *)
  mutable msgs_lost : int;  (** transmissions dropped by the channel *)
  mutable msgs_duplicated : int;  (** messages the channel delivered twice *)
  mutable dups_dropped : int;  (** duplicate deliveries dropped at the UMQ *)
  mutable reorders_healed : int;  (** held messages released in order *)
  mutable net_stalls : int;
      (** maintenance steps stalled on an unreachable source (retried
          after recovery — not aborts) *)
  mutable cross_shard_barriers : int;
      (** sharded runs: rounds where every shard paused for a global
          schema-change barrier (zero outside the sharded scheduler) *)
  mutable probes_avoided : int;
      (** self-maintenance: sweeps answered from auxiliary views instead
          of probe round trips (zero unless [--self-maint]) *)
  mutable bytes_saved : int;
      (** self-maintenance: estimated wire bytes the avoided probes would
          have shipped *)
  mutable net_wait : float;  (** time lost to timeouts/backoff/recovery, s *)
  mutable mcore_tasks : int;
      (** multicore backend: sweep computations evaluated on worker
          domains (zero on the default simulated runtime) *)
}

val create : unit -> t

val has_transport_activity : t -> bool
(** Any transport counter nonzero — i.e. the channel actually misbehaved. *)

val pp : Format.formatter -> t -> unit
(** Prints the transport line only when {!has_transport_activity}, so
    reliable-channel runs render byte-identically to the historical
    output. *)

val to_json_string : t -> string
(** Machine-readable JSON rendering of every field.  [mcore_tasks] is
    emitted only when nonzero, so the default simulated runtime's JSON
    stays byte-identical across releases. *)
