(** The shared runtime configuration record consumed by all three
    schedulers — serial ({!Scheduler}), multi-view ({!Multi_scheduler})
    and sharded ({!Shard_scheduler}).  One record, one set of defaults,
    one CLI plumbing path; schedulers that do not implement a knob
    document it as ignored rather than duplicating a trimmed copy of the
    fields. *)

(** How data updates are maintained. *)
type vm_mode =
  | Incremental  (** SWEEP-style probes computing a view delta (default) *)
  | Recompute
      (** naive baseline: re-materialize the whole view per update — the
          classic strawman incremental maintenance is measured against *)

type t = {
  strategy : Strategy.t;
  max_steps : int;  (** safety valve against livelock in tests *)
  compensate : bool;
      (** SWEEP compensation for concurrent DUs; disable only to
          demonstrate the duplication anomaly (Example 1.a) *)
  vm_mode : vm_mode;
  du_group : int;
      (** deferred/grouped maintenance: up to this many consecutive queued
          data updates are maintained as one atomic batch (1 = the paper's
          per-update processing).  Groups never cross schema changes or
          merged batches and preserve queue order, so dependencies stay
          safe; the view skips intermediate states (freshness for
          throughput). *)
  parallel : int;
      (** dependency-parallel maintenance: up to this many mutually
          independent queued entries — an antichain of the corrected
          topological order — are maintained concurrently per queue,
          overlapping their probe round trips on cooperative executor
          tasks.  [1] (the default) is the strictly serial per-queue
          scheduler. *)
  self_maint : bool;
      (** self-maintenance tier: keep auxiliary probe-column projections
          current at the view manager and answer maintenance sweeps
          locally whenever they cover the probed aliases, falling back to
          SWEEP probes on any coverage miss or schema-change
          invalidation.  [false] (the default) is byte-identical to a
          build without the tier. *)
  runtime : [ `Simulated | `Domains of int ];
      (** execution backend for the CPU-heavy sweep compute.
          [`Simulated] (the default) runs everything on the cooperative
          effect-handler executor — single host core, deterministic,
          byte-identical to every prior release.  [`Domains n] evaluates
          the pure local-sweep compute of a dispatched round on a pool
          of [n] real OCaml 5 domains ({!Dyno_sim.Domain_pool}) while
          admission, the UMQ sequencer, probe scheduling, commits and
          the cross-shard barrier stay serial on the coordinator domain
          — same extents, same verdicts, real wall-clock speedup. *)
}

let default =
  {
    strategy = Strategy.Pessimistic;
    max_steps = 1_000_000;
    compensate = true;
    vm_mode = Incremental;
    du_group = 1;
    parallel = 1;
    self_maint = false;
    runtime = `Simulated;
  }

let of_strategy strategy = { default with strategy }

let with_strategy strategy t = { t with strategy }
let with_max_steps max_steps t = { t with max_steps }
let with_compensate compensate t = { t with compensate }
let with_vm_mode vm_mode t = { t with vm_mode }
let with_du_group du_group t = { t with du_group }
let with_parallel parallel t = { t with parallel }
let with_self_maint self_maint t = { t with self_maint }
let with_runtime runtime t = { t with runtime }
