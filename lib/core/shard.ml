(* Partition plan: source → shard assignment.  See shard.mli. *)

type t = {
  shards : int;
  order : string list;  (* all sources, original order *)
  owner : (string, int) Hashtbl.t;
}

let plan ?(partition = []) ~shards sources =
  if shards < 1 then
    invalid_arg (Fmt.str "Shard.plan: shards = %d (want >= 1)" shards);
  if sources = [] then invalid_arg "Shard.plan: no sources";
  let owner = Hashtbl.create (List.length sources) in
  List.iter
    (fun s ->
      if Hashtbl.mem owner s then
        invalid_arg (Fmt.str "Shard.plan: duplicate source %s" s);
      Hashtbl.replace owner s (-1))
    sources;
  List.iter
    (fun (s, i) ->
      if not (Hashtbl.mem owner s) then
        invalid_arg (Fmt.str "Shard.plan: partition names unknown source %s" s);
      if i < 0 || i >= shards then
        invalid_arg
          (Fmt.str "Shard.plan: source %s -> shard %d of %d" s i shards);
      Hashtbl.replace owner s i)
    partition;
  (* Deal the rest round-robin in list order, skipping overridden ones. *)
  let next = ref 0 in
  List.iter
    (fun s ->
      if Hashtbl.find owner s = -1 then begin
        Hashtbl.replace owner s (!next mod shards);
        incr next
      end)
    sources;
  { shards; order = sources; owner }

let solo sources = plan ~shards:1 sources

let count t = t.shards

let owner t source =
  match Hashtbl.find_opt t.owner source with
  | Some i -> i
  | None -> invalid_arg (Fmt.str "Shard.owner: unknown source %s" source)

let sources_of t i = List.filter (fun s -> Hashtbl.find t.owner s = i) t.order
let sources t = t.order

let pp ppf t =
  Fmt.pf ppf "@[<v>%d shard(s):" t.shards;
  for i = 0 to t.shards - 1 do
    Fmt.pf ppf "@,  %d: %a" i Fmt.(list ~sep:comma string) (sources_of t i)
  done;
  Fmt.pf ppf "@]"
