(** An autonomous data source: a small versioned relational store.

    Each source owns a {!Dyno_relational.Catalog.t} and the extents of its
    relations, commits data updates and schema changes {e autonomously}
    (they can never be aborted by the view manager — the root constraint of
    the paper), and answers maintenance queries {e against its current
    state}.  A query that references metadata the source no longer has is
    answered with [Error] — the broken query of Definition 2.

    The store is multi-versioned: every commit bumps the version and
    records enough information to reconstruct any past state
    ({!snapshot_at}).  Version history is what lets tests check strong
    consistency and lets view adaptation obtain pre-change states. *)

open Dyno_relational

type hist_entry =
  | H_du of { update : Update.t; time : float }
  | H_sc of {
      sc : Schema_change.t;
      time : float;
      saved_catalog : Catalog.t;  (** catalog before the change *)
      saved_rels : (string * Relation.t) list;
          (** pre-change copies of relations touched by the change *)
    }

type t = {
  id : string;
  catalog : Catalog.t;
  tables : (string, Relation.t) Hashtbl.t;
  mutable version : int;  (** bumped on every commit; 0 = initial state *)
  mutable history : (int * hist_entry) list;  (** newest first *)
  snapshots : (int, Catalog.t * (string, Relation.t) Hashtbl.t) Hashtbl.t;
      (** memoized past states, keyed by version.  A version's state never
          changes retroactively, so entries stay valid forever; keeping
          them alive means the indexes probes build on old extents survive
          across probes at the same version. *)
}

type broken = { source : string; query_name : string; reason : string }
(** Diagnosis of a broken maintenance query. *)

type answer = {
  rows : Relation.t;
  scanned : int;  (** total source tuples scanned to answer (cost input) *)
}

let create id =
  {
    id;
    catalog = Catalog.create ();
    tables = Hashtbl.create 8;
    version = 0;
    history = [];
    snapshots = Hashtbl.create 8;
  }

let id s = s.id
let catalog s = s.catalog
let version s = s.version

let relations s = Catalog.relations s.catalog

let relation s name =
  match Hashtbl.find_opt s.tables name with
  | Some r -> r
  | None -> raise (Catalog.No_such_relation name)

let relation_opt s name = Hashtbl.find_opt s.tables name

(** [add_relation s name schema] registers an empty base relation (initial
    load, not versioned as an update). *)
let add_relation s name schema =
  Catalog.add_relation s.catalog name schema;
  Hashtbl.replace s.tables name (Relation.create schema)

(** [load s name tuples] bulk-appends initial data (not versioned). *)
let load s name tuples =
  let r = relation s name in
  List.iter (fun t -> Relation.insert r (Tuple.of_list t)) tuples

let load_counted s name pairs =
  let r = relation s name in
  List.iter (fun (t, c) -> Relation.add r (Tuple.of_list t) c) pairs

(* ------------------------------------------------------------------ *)
(* Autonomous commits                                                 *)
(* ------------------------------------------------------------------ *)

exception Commit_rejected of string

let reject fmt = Fmt.kstr (fun s -> raise (Commit_rejected s)) fmt

(** [commit_du s ~time u] applies a data update; the delta schema must match
    the current schema of the target relation.  Returns the new version. *)
let commit_du s ~time (u : Update.t) =
  if not (String.equal (Update.source u) s.id) then
    reject "update targets source %s, not %s" (Update.source u) s.id;
  let rel_name = Update.rel u in
  (match Catalog.schema_of_opt s.catalog rel_name with
  | None -> reject "no relation %s at source %s" rel_name s.id
  | Some schema ->
      if not (Schema.equal schema (Relation.schema (Update.delta u))) then
        reject "delta schema %a does not match %s's current schema %a"
          Schema.pp
          (Relation.schema (Update.delta u))
          rel_name Schema.pp schema);
  let r = relation s rel_name in
  (* Autonomous sources apply their own committed writes unconditionally;
     a deletion of an absent tuple would be a source-side bug.  Applied in
     place — O(|delta|), and any indexes probes have built on the extent
     stay registered and are maintained incrementally. *)
  Relation.apply_delta_in_place r (Update.delta u);
  s.version <- s.version + 1;
  s.history <- (s.version, H_du { update = u; time }) :: s.history;
  s.version

(** Relations whose extent or schema a change touches (for snapshotting). *)
let touched_rels (sc : Schema_change.t) =
  match sc with
  | Rename_relation { old_name; _ } -> [ old_name ]
  | Drop_relation { name; _ } -> [ name ]
  | Add_relation _ -> []
  | Rename_attribute { rel; _ } | Drop_attribute { rel; _ }
  | Add_attribute { rel; _ } ->
      [ rel ]

(** [commit_sc s ~time sc] applies a schema change: catalog surgery plus the
    corresponding extent transformation.  Returns the new version. *)
let commit_sc s ~time (sc : Schema_change.t) =
  if not (String.equal (Schema_change.source sc) s.id) then
    reject "schema change targets source %s, not %s"
      (Schema_change.source sc) s.id;
  let saved_catalog = Catalog.copy s.catalog in
  let saved_rels =
    List.filter_map
      (fun n ->
        Option.map (fun r -> (n, Relation.copy r)) (relation_opt s n))
      (touched_rels sc)
  in
  (try Catalog.apply s.catalog sc
   with e -> reject "inapplicable schema change: %s" (Printexc.to_string e));
  (* Extent transformation mirroring the catalog change. *)
  (match sc with
  | Rename_relation { old_name; new_name; _ } ->
      let r = relation s old_name in
      Hashtbl.remove s.tables old_name;
      Hashtbl.replace s.tables new_name r
  | Drop_relation { name; _ } -> Hashtbl.remove s.tables name
  | Add_relation { name; schema; _ } ->
      Hashtbl.replace s.tables name (Relation.create schema)
  | Rename_attribute { rel; old_name; new_name; _ } ->
      Hashtbl.replace s.tables rel
        (Relation.rename_attr (relation s rel) ~old_name ~new_name)
  | Drop_attribute { rel; attr; _ } ->
      let r = relation s rel in
      let schema' = Catalog.schema_of s.catalog rel in
      let keep = Schema.names schema' in
      ignore attr;
      Hashtbl.replace s.tables rel (Relation.project r keep)
  | Add_attribute { rel; default; _ } ->
      let r = relation s rel in
      let schema' = Catalog.schema_of s.catalog rel in
      Hashtbl.replace s.tables rel
        (Relation.map_tuples schema' (fun t -> Tuple.append t default) r));
  s.version <- s.version + 1;
  s.history <- (s.version, H_sc { sc; time; saved_catalog; saved_rels }) :: s.history;
  s.version

(** [commit s ~time ev] dispatches a timeline event. *)
let commit s ~time (ev : Dyno_sim.Timeline.event) =
  match ev with
  | Dyno_sim.Timeline.Du u -> commit_du s ~time u
  | Dyno_sim.Timeline.Sc sc -> commit_sc s ~time sc

(* ------------------------------------------------------------------ *)
(* Query answering (with broken-query detection)                      *)
(* ------------------------------------------------------------------ *)

(** [answer s q ~bound] evaluates [q] against the source's {e current}
    state.  Table refs whose [source] field names this source are resolved
    in the local catalog; other aliases must be provided in [bound]
    (partial results shipped with the query, as SWEEP does).  Any schema
    discrepancy — missing relation, missing attribute — yields [Error]
    rather than an exception: that is the in-exec broken-query signal. *)
let answer ?(planner : Eval.plan = `Indexed) s (q : Query.t)
    ~(bound : (string * Relation.t) list) : (answer, broken) result =
  let broken reason = Error { source = s.id; query_name = Query.name q; reason } in
  let missing =
    List.find_map
      (fun (tr : Query.table_ref) ->
        if List.mem_assoc tr.alias bound then None
        else if String.equal tr.source s.id then
          if not (Catalog.mem s.catalog tr.rel) then
            Some (Fmt.str "relation %s does not exist" tr.rel)
          else None
        else Some (Fmt.str "alias %s not bound and not local" tr.alias))
      (Query.from q)
  in
  match missing with
  | Some reason -> broken reason
  | None -> (
      let scanned = ref 0 in
      let env (tr : Query.table_ref) =
        match List.assoc_opt tr.alias bound with
        | Some r -> r
        | None ->
            let r = relation s tr.rel in
            scanned := !scanned + Relation.support r;
            r
      in
      match Eval.run ~planner ~catalog:env q with
      | rows -> Ok { rows; scanned = !scanned }
      | exception Eval.Error reason -> broken reason
      | exception Catalog.No_such_relation r ->
          broken (Fmt.str "relation %s does not exist" r))

(** [validate s q] — metadata-only dry run of query [q] against the
    current catalog: do the referenced local relations and attributes
    still exist?  Used by view adaptation to detect conflicts while it is
    still computing (the repeated source access of an Equation-6 style
    adaptation), without paying for another scan. *)
let validate s (q : Query.t) : (unit, broken) result =
  let broken reason =
    Error { source = s.id; query_name = Query.name q; reason }
  in
  let local_schemas =
    List.filter_map
      (fun (tr : Query.table_ref) ->
        if String.equal tr.source s.id then
          Some (tr.alias, Catalog.schema_of_opt s.catalog tr.rel, tr.rel)
        else None)
      (Query.from q)
  in
  match
    List.find_opt (fun (_, schema, _) -> schema = None) local_schemas
  with
  | Some (_, _, rel) -> broken (Fmt.str "relation %s does not exist" rel)
  | None -> (
      let has_attr alias attr =
        match
          List.find_opt (fun (a, _, _) -> String.equal a alias) local_schemas
        with
        | Some (_, Some schema, _) -> Schema.mem schema attr
        | _ -> true (* non-local alias: not this source's responsibility *)
      in
      let bad_ref =
        List.find_opt
          (fun (r : Attr.Qualified.t) ->
            match Attr.Qualified.rel r with
            | Some alias -> not (has_attr alias (Attr.Qualified.attr r))
            | None ->
                (* Unqualified: fine if any local relation has it or it may
                   belong to a non-local alias. *)
                not
                  (List.exists
                     (fun (_, schema, _) ->
                       match schema with
                       | Some sc -> Schema.mem sc (Attr.Qualified.attr r)
                       | None -> false)
                     local_schemas)
                && local_schemas <> []
                && List.length (Query.from q) = List.length local_schemas)
          (Query.all_refs q)
      in
      match bad_ref with
      | Some r ->
          broken (Fmt.str "attribute %a does not exist" Attr.Qualified.pp r)
      | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* Version history                                                    *)
(* ------------------------------------------------------------------ *)

(** Full state of the source at [version]: a catalog copy plus every
    relation extent.  Reconstructed by undoing history newest-first, so it
    is exact (schema changes keep pre-images). *)
let snapshot_at_uncached s ~version =
  let catalog = ref (Catalog.copy s.catalog) in
  let tables = Hashtbl.copy s.tables in
  (* Deep-copy current extents so undo does not alias live data. *)
  Hashtbl.iter (fun k r -> Hashtbl.replace tables k (Relation.copy r)) s.tables;
  List.iter
    (fun (v, entry) ->
      if v > version then
        match entry with
        | H_du { update; _ } ->
            let rel_name = Update.rel update in
            let r = Hashtbl.find tables rel_name in
            Hashtbl.replace tables rel_name
              (Relation.sum r (Relation.negate (Update.delta update)))
        | H_sc { sc; saved_catalog; saved_rels; _ } ->
            catalog := Catalog.copy saved_catalog;
            (* Remove post-images of touched relations… *)
            (match sc with
            | Rename_relation { new_name; _ } -> Hashtbl.remove tables new_name
            | Add_relation { name; _ } -> Hashtbl.remove tables name
            | Drop_relation _ | Rename_attribute _ | Drop_attribute _
            | Add_attribute _ ->
                List.iter (fun (n, _) -> Hashtbl.remove tables n) saved_rels);
            (* …and restore pre-images. *)
            List.iter
              (fun (n, r) -> Hashtbl.replace tables n (Relation.copy r))
              saved_rels)
    s.history;
  (!catalog, tables)

(** Memoizing wrapper: a past version's state never changes retroactively
    (commits only append), so reconstructions are cached.  Repeated probes
    at the same old version — the strong-consistency replay, concurrent
    readers pinned to a snapshot — pay the undo walk once, and the indexes
    they build on the cached extents persist across probes.  Callers must
    treat the returned state as read-only. *)
let snapshot_at s ~version =
  if version > s.version || version < 0 then
    invalid_arg
      (Fmt.str "snapshot_at: version %d out of range [0..%d]" version s.version);
  match Hashtbl.find_opt s.snapshots version with
  | Some snap -> snap
  | None ->
      let snap = snapshot_at_uncached s ~version in
      (* Bound the cache: histories are long-lived but replays cluster on
         recent versions; dropping everything on overflow is simple and
         keeps the common monotone replay fast. *)
      if Hashtbl.length s.snapshots > 256 then Hashtbl.reset s.snapshots;
      Hashtbl.replace s.snapshots version snap;
      snap

(** [relation_at s ~version name] extent of [name] at [version].
    @raise Catalog.No_such_relation if absent at that version. *)
let relation_at s ~version name =
  let _, tables = snapshot_at s ~version in
  match Hashtbl.find_opt tables name with
  | Some r -> r
  | None -> raise (Catalog.No_such_relation name)

let history s = List.rev s.history

(** {2 Commit frontier}

    What the freshness/staleness tracker reads: when did this source
    commit a given version?  History is newest-first and versions are
    dense, so both lookups are cheap. *)

(** [commit_time_of_version s v] — the simulated time at which version
    [v] was committed; [None] for version 0 (initial load, not
    versioned) or a version this source never produced. *)
let commit_time_of_version s v =
  match List.assoc_opt v s.history with
  | Some (H_du { time; _ }) | Some (H_sc { time; _ }) -> Some time
  | None -> None

(** [last_commit_time s] — time of the newest commit, if any. *)
let last_commit_time s =
  match s.history with
  | (_, H_du { time; _ }) :: _ | (_, H_sc { time; _ }) :: _ -> Some time
  | [] -> None

let pp ppf s =
  Fmt.pf ppf "@[<v2>source %s (v%d):@,%a@]" s.id s.version Catalog.pp s.catalog

let pp_broken ppf (b : broken) =
  Fmt.pf ppf "broken query %s at %s: %s" b.query_name b.source b.reason
