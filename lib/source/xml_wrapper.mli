(** The XML-to-relational wrapper of the paper's Figures 1–2: mappings
    from element forests to relational tables, plus the translation of
    document-level operations into the source-update events the rest of
    the system consumes — including the mapping {e retuning} of Example
    1.b, which becomes the add/populate/drop schema-change sequence that
    breaks in-flight maintenance queries.

    {b Transport contract.}  Every event a wrapper emits is committed at
    the source first ({!Dyno_source.Data_source.commit_du} /
    [commit_sc]), which assigns it the source's next commit version —
    and that version doubles as the message's per-source monotone
    sequence number on the wire ([Update_msg.seq]).  Wrappers are
    assumed to send on a FIFO stream and to retransmit lost messages
    ({!Dyno_net.Channel}); the UMQ's sequencer relies on these numbers
    to drop duplicates and re-order late arrivals, restoring the
    exactly-once, commit-ordered delivery the maintenance algorithms
    assume. *)

open Dyno_relational

(** Where a column's value comes from, relative to a row node. *)
type column_src =
  | Text of string list
      (** text of the node reached by a relative path ([[]] = the row
          node's own text) *)
  | Ancestor_text of string * string list
      (** climb to the nearest ancestor with the tag, then follow the
          relative path *)
  | Ancestor_index of string
      (** 1-based document-order index of the nearest ancestor with the
          tag — the synthetic id of the Figure 1 mapping's [SID] *)
  | Row_index  (** 1-based index of the row node among selected rows *)

type rule = {
  rel : string;
  schema : Schema.t;
  row_path : string list;
  columns : (string * column_src) list;
}

type mapping = rule list

exception Extraction_error of string

val extract_rule : rule -> Document.node list -> Relation.t
(** Materialize one relation from the forest.
    @raise Extraction_error on missing elements or untypable text. *)

val extract : mapping -> Document.node list -> (string * Relation.t) list

val install : mapping -> Data_source.t -> Document.node list -> unit
(** Create and load the mapped relations in the relational facade
    (initial wiring; not versioned). *)

val diff_events :
  source:string ->
  mapping ->
  old_roots:Document.node list ->
  new_roots:Document.node list ->
  time:float ->
  (float * Dyno_sim.Timeline.event) list
(** The autonomous commits a document change induces: one data update per
    mapped relation whose extracted extent changed. *)

val remap_events :
  source:string ->
  old_mapping:mapping ->
  new_mapping:mapping ->
  roots:Document.node list ->
  time:float ->
  (float * Dyno_sim.Timeline.event) list
(** The schema-change sequence of a mapping retuning: new relations added
    (and populated), relations no longer mapped dropped, shared relations
    data-diffed.  All events share [time]. *)

(** {1 The paper's two Retailer mappings} *)

val retailer_two_tables : mapping
(** Figure 1: [Store(SID, Store)] + [Item(SID, Book, Author, Price)]. *)

val retailer_single_table : mapping
(** Figure 2: the retuned single table [StoreItems]. *)

val store_doc :
  name:string -> books:(string * string * float) list -> Document.node
(** A Retailer store document with its books. *)
