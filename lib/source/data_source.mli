(** An autonomous data source: a small versioned relational store that
    commits data updates and schema changes {e autonomously} (they can
    never be aborted by the view manager — the root constraint of the
    paper) and answers maintenance queries against its {e current} state.
    The store is multi-versioned: any past state can be reconstructed,
    which is what lets tests check strong consistency. *)

open Dyno_relational

type t

type broken = { source : string; query_name : string; reason : string }
(** Diagnosis of a broken maintenance query. *)

type answer = {
  rows : Relation.t;
  scanned : int;  (** source tuples scanned to answer (cost input) *)
}

val create : string -> t
val id : t -> string
val catalog : t -> Catalog.t

val version : t -> int
(** Bumped on every commit; 0 = initial state.  Doubles as the
    per-source monotone sequence number stamped on each outgoing update
    message ([Update_msg.seq]): the UMQ's exactly-once sequencer is
    anchored at the version of the source's first commit and expects
    every later commit to follow in order. *)

val relations : t -> string list

val relation : t -> string -> Relation.t
(** @raise Catalog.No_such_relation when absent. *)

val relation_opt : t -> string -> Relation.t option

val add_relation : t -> string -> Schema.t -> unit
(** Register an empty base relation (initial load, not versioned). *)

val load : t -> string -> Value.t list list -> unit
(** Bulk-append initial data (not versioned). *)

val load_counted : t -> string -> (Value.t list * int) list -> unit

(** {1 Autonomous commits} *)

exception Commit_rejected of string

val commit_du : t -> time:float -> Update.t -> int
(** Apply a data update (the delta schema must match the relation's
    current schema); returns the new version.
    @raise Commit_rejected when invalid. *)

val commit_sc : t -> time:float -> Schema_change.t -> int
(** Apply a schema change: catalog surgery plus the corresponding extent
    transformation; returns the new version.
    @raise Commit_rejected when inapplicable. *)

val commit : t -> time:float -> Dyno_sim.Timeline.event -> int

(** {1 Query answering} *)

val answer :
  ?planner:Eval.plan ->
  t -> Query.t -> bound:(string * Relation.t) list ->
  (answer, broken) result
(** Evaluate against the current state.  Aliases in [bound] resolve to the
    supplied relations (partial results shipped with the query, as SWEEP
    does); other local refs resolve in the catalog.  Any schema
    discrepancy yields [Error] — the in-exec broken-query signal.
    [planner] (default [`Indexed]) picks the physical plan; under
    [`Indexed] repeated probes reuse persistent indexes on the source's
    extents, which commits keep maintained incrementally. *)

val validate : t -> Query.t -> (unit, broken) result
(** Metadata-only dry run: do the referenced local relations and
    attributes still exist?  One round trip, no scan. *)

(** {1 Version history} *)

val snapshot_at : t -> version:int -> Catalog.t * (string, Relation.t) Hashtbl.t
(** Full state at a version, reconstructed by undoing history (schema
    changes keep pre-images, so it is exact).  Reconstructions are
    memoized per version — a past version never changes retroactively —
    so repeated probes at the same version are O(1) after the first, and
    indexes built on the cached extents persist across probes.  Treat the
    returned state as {b read-only}: it is shared between callers.
    @raise Invalid_argument when out of range. *)

val relation_at : t -> version:int -> string -> Relation.t
(** Extent at a version, from the memoized snapshot (read-only; see
    {!snapshot_at}).
    @raise Catalog.No_such_relation if absent at that version. *)

(** Commit-log entries (oldest first from {!history}). *)
type hist_entry =
  | H_du of { update : Update.t; time : float }
  | H_sc of {
      sc : Schema_change.t;
      time : float;
      saved_catalog : Catalog.t;
      saved_rels : (string * Relation.t) list;
    }

val history : t -> (int * hist_entry) list

val commit_time_of_version : t -> int -> float option
(** Simulated time at which a version was committed; [None] for
    version 0 (initial load, not versioned) or an unknown version.  The
    freshness/staleness tracker's commit-frontier read. *)

val last_commit_time : t -> float option
(** Time of the newest commit, if any. *)

val pp : Format.formatter -> t -> unit
val pp_broken : Format.formatter -> broken -> unit
