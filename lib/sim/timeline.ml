(** Timeline of autonomous source commits.

    Sources in a loosely-coupled environment commit updates at times of
    their own choosing; the timeline holds those future commits, ordered by
    timestamp.  The view-manager side of the simulation pops every commit
    whose time has passed whenever the simulated clock advances — which
    implements Definition 2's conflict condition exactly: an update
    "committed before the maintenance query is answered" is applied to the
    source (and enqueued at the view manager) before the query result is
    computed. *)

open Dyno_relational

type event = Du of Update.t | Sc of Schema_change.t

let event_source = function
  | Du u -> Update.source u
  | Sc sc -> Schema_change.source sc

let event_rel = function Du u -> Update.rel u | Sc sc -> Schema_change.rel sc

let is_sc = function Sc _ -> true | Du _ -> false

let pp_event ppf = function
  | Du u -> Update.pp ppf u
  | Sc sc -> Schema_change.pp ppf sc

type entry = { time : float; seq : int; event : event }

type t = {
  mutable pending : entry list;  (** sorted by (time, seq) when [sorted] *)
  mutable sorted : bool;
  mutable count : int;
  mutable next_seq : int;
}
(* Scheduling prepends and marks the list dirty; the sort happens lazily
   on the first read.  Million-event workloads (the scale bench) thus pay
   one O(n log n) sort instead of O(n² log n) insertion sorts, and
   [pop_until] peels a sorted prefix instead of partitioning the whole
   list on every clock advance. *)

let create () = { pending = []; sorted = true; count = 0; next_seq = 0 }

let compare_entry a b =
  match Float.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let ensure_sorted t =
  if not t.sorted then begin
    t.pending <- List.sort compare_entry t.pending;
    t.sorted <- true
  end

(** [schedule t ~time event] enqueues a commit at absolute time [time];
    ties are broken by scheduling order. *)
let schedule t ~time event =
  let e = { time; seq = t.next_seq; event } in
  t.next_seq <- t.next_seq + 1;
  t.count <- t.count + 1;
  t.pending <- e :: t.pending;
  t.sorted <- (match t.pending with [ _ ] -> true | _ -> false)

let of_list entries =
  let t = create () in
  List.iter (fun (time, ev) -> schedule t ~time ev) entries;
  t

let is_empty t = t.pending = []

let length t = t.count

(** Earliest pending commit time, if any. *)
let next_time t =
  ensure_sorted t;
  match t.pending with [] -> None | e :: _ -> Some e.time

(** [pop_until t ~time] removes and returns (in order) every commit with
    timestamp ≤ [time]. *)
let pop_until t ~time =
  ensure_sorted t;
  let cutoff = time +. 1e-12 in
  let rec take acc = function
    | e :: rest when e.time <= cutoff -> take (e :: acc) rest
    | rest ->
        t.pending <- rest;
        List.rev acc
  in
  let due = take [] t.pending in
  t.count <- t.count - List.length due;
  due

let peek_all t =
  ensure_sorted t;
  t.pending

let pp_entry ppf e = Fmt.pf ppf "@[<h>[%.3fs #%d] %a@]" e.time e.seq pp_event e.event

let pp ppf t =
  ensure_sorted t;
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_entry) t.pending
