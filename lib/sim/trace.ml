(** Execution traces: a timestamped log of everything notable that happens
    during a simulated run.

    Tests assert against traces (e.g. "a broken query occurred, then a
    correction, then no further aborts"), the CLI prints them, and the
    statistics module derives cost breakdowns from them.

    Storage is a ring buffer.  By default capacity is unbounded (the
    buffer doubles as needed — what tests want: every entry retained); a
    long-running deployment passes [~capacity] to bound memory, after
    which the oldest entries are overwritten.  Per-kind counts are kept
    incrementally — {!count} is O(1) and covers {e every} entry ever
    recorded since the last {!clear}, including entries a bounded buffer
    has already evicted. *)

type kind =
  | Commit  (** a source committed an update *)
  | Enqueue  (** the wrapper delivered an update message to the UMQ *)
  | Maint_start  (** maintenance of an update began *)
  | Query_sent  (** a maintenance query was sent to a source *)
  | Query_answered  (** a maintenance query returned rows *)
  | Broken_query  (** a maintenance query failed on a schema conflict *)
  | Compensate  (** compensation removed concurrent-DU effects *)
  | Abort  (** an in-flight maintenance process was aborted *)
  | Refresh  (** the materialized view was refreshed and committed *)
  | Detect  (** a pre-exec detection pass ran *)
  | Correct  (** the dependency-correction (reorder) ran *)
  | Merge  (** cyclic dependencies were merged into a batch node *)
  | Sync  (** view synchronization rewrote the view definition *)
  | Adapt  (** view adaptation brought the extent up to date *)
  | Msg_dropped  (** the channel lost a transmission (retransmitted) *)
  | Msg_duplicated  (** a duplicate delivery was dropped by the UMQ *)
  | Timeout  (** a maintenance-query attempt got no answer in time *)
  | Retry  (** a maintenance query was retried after backoff *)
  | Outage  (** a source was found unreachable (outage window) *)
  | Info  (** anything else *)

let kind_to_string = function
  | Commit -> "commit"
  | Enqueue -> "enqueue"
  | Maint_start -> "maint-start"
  | Query_sent -> "query-sent"
  | Query_answered -> "query-answered"
  | Broken_query -> "BROKEN-QUERY"
  | Compensate -> "compensate"
  | Abort -> "ABORT"
  | Refresh -> "refresh"
  | Detect -> "detect"
  | Correct -> "correct"
  | Merge -> "merge"
  | Sync -> "sync"
  | Adapt -> "adapt"
  | Msg_dropped -> "msg-dropped"
  | Msg_duplicated -> "msg-duplicated"
  | Timeout -> "TIMEOUT"
  | Retry -> "retry"
  | Outage -> "OUTAGE"
  | Info -> "info"

let n_kinds = 20

let kind_index = function
  | Commit -> 0
  | Enqueue -> 1
  | Maint_start -> 2
  | Query_sent -> 3
  | Query_answered -> 4
  | Broken_query -> 5
  | Compensate -> 6
  | Abort -> 7
  | Refresh -> 8
  | Detect -> 9
  | Correct -> 10
  | Merge -> 11
  | Sync -> 12
  | Adapt -> 13
  | Msg_dropped -> 14
  | Msg_duplicated -> 15
  | Timeout -> 16
  | Retry -> 17
  | Outage -> 18
  | Info -> 19

type entry = { time : float; kind : kind; detail : string }

let dummy_entry = { time = 0.0; kind = Info; detail = "" }

type t = {
  mutable buf : entry array;  (** ring storage *)
  mutable head : int;  (** index of the oldest retained entry *)
  mutable len : int;  (** retained entries *)
  capacity : int option;  (** [None] = unbounded (buffer grows) *)
  counts : int array;  (** per-kind totals since the last {!clear} *)
  mutable recorded : int;  (** total entries since the last {!clear} *)
  mutable enabled : bool;
}

let create ?(enabled = true) ?capacity () =
  let capacity =
    match capacity with
    | Some c when c < 1 -> invalid_arg "Trace.create: capacity must be >= 1"
    | c -> c
  in
  let initial = match capacity with Some c -> c | None -> 64 in
  {
    buf = Array.make initial dummy_entry;
    head = 0;
    len = 0;
    capacity;
    counts = Array.make n_kinds 0;
    recorded = 0;
    enabled;
  }

let capacity t = t.capacity

let dropped t = t.recorded - t.len
(** Entries evicted by a bounded ring since the last {!clear}. *)

let grow t =
  let n = Array.length t.buf in
  let buf' = Array.make (2 * n) dummy_entry in
  for i = 0 to t.len - 1 do
    buf'.(i) <- t.buf.((t.head + i) mod n)
  done;
  t.buf <- buf';
  t.head <- 0

let record t ~time kind detail =
  if t.enabled then begin
    let e = { time; kind; detail } in
    t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
    t.recorded <- t.recorded + 1;
    (match t.capacity with
    | None ->
        if t.len = Array.length t.buf then grow t;
        t.buf.((t.head + t.len) mod Array.length t.buf) <- e;
        t.len <- t.len + 1
    | Some c ->
        if t.len < c then begin
          t.buf.((t.head + t.len) mod c) <- e;
          t.len <- t.len + 1
        end
        else begin
          (* Full: overwrite the oldest. *)
          t.buf.(t.head) <- e;
          t.head <- (t.head + 1) mod c
        end)
  end

let recordf t ~time kind fmt =
  Fmt.kstr (fun s -> record t ~time kind s) fmt

(** Retained entries in chronological order. *)
let entries t =
  let n = Array.length t.buf in
  List.init t.len (fun i -> t.buf.((t.head + i) mod n))

(** [count t kind] — O(1): every entry of [kind] recorded since the last
    {!clear}, including entries a bounded ring has evicted. *)
let count t kind = t.counts.(kind_index kind)

(** Retained entries of [kind], chronological. *)
let find_all t kind = List.filter (fun e -> e.kind = kind) (entries t)

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.recorded <- 0;
  Array.fill t.counts 0 n_kinds 0

let pp_entry ppf e =
  Fmt.pf ppf "[%8.3fs] %-14s %s" e.time (kind_to_string e.kind) e.detail

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_entry) (entries t)

(** Machine-readable JSON rendering of the retained entries: a JSON array
    of [{"time": s, "kind": "...", "detail": "..."}] objects.  [detail]
    strings are escaped (they embed user/schema names and pretty-printed
    tuples, so quotes and backslashes do occur). *)
let to_json_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Fmt.str "\n  {\"time\": %.9f, \"kind\": %s, \"detail\": %s}" e.time
           (Dyno_obs.Json.quote (kind_to_string e.kind))
           (Dyno_obs.Json.quote e.detail)))
    (entries t);
  Buffer.add_string b (if t.len = 0 then "]" else "\n]");
  Buffer.contents b
