(** Execution traces: a timestamped log of everything notable that happens
    during a simulated run.

    Tests assert against traces (e.g. "a broken query occurred, then a
    correction, then no further aborts"), the CLI prints them, and the
    statistics module derives cost breakdowns from them. *)

type kind =
  | Commit  (** a source committed an update *)
  | Enqueue  (** the wrapper delivered an update message to the UMQ *)
  | Maint_start  (** maintenance of an update began *)
  | Query_sent  (** a maintenance query was sent to a source *)
  | Query_answered  (** a maintenance query returned rows *)
  | Broken_query  (** a maintenance query failed on a schema conflict *)
  | Compensate  (** compensation removed concurrent-DU effects *)
  | Abort  (** an in-flight maintenance process was aborted *)
  | Refresh  (** the materialized view was refreshed and committed *)
  | Detect  (** a pre-exec detection pass ran *)
  | Correct  (** the dependency-correction (reorder) ran *)
  | Merge  (** cyclic dependencies were merged into a batch node *)
  | Sync  (** view synchronization rewrote the view definition *)
  | Adapt  (** view adaptation brought the extent up to date *)
  | Msg_dropped  (** the channel lost a transmission (retransmitted) *)
  | Msg_duplicated  (** a duplicate delivery was dropped by the UMQ *)
  | Timeout  (** a maintenance-query attempt got no answer in time *)
  | Retry  (** a maintenance query was retried after backoff *)
  | Outage  (** a source was found unreachable (outage window) *)
  | Info  (** anything else *)

let kind_to_string = function
  | Commit -> "commit"
  | Enqueue -> "enqueue"
  | Maint_start -> "maint-start"
  | Query_sent -> "query-sent"
  | Query_answered -> "query-answered"
  | Broken_query -> "BROKEN-QUERY"
  | Compensate -> "compensate"
  | Abort -> "ABORT"
  | Refresh -> "refresh"
  | Detect -> "detect"
  | Correct -> "correct"
  | Merge -> "merge"
  | Sync -> "sync"
  | Adapt -> "adapt"
  | Msg_dropped -> "msg-dropped"
  | Msg_duplicated -> "msg-duplicated"
  | Timeout -> "TIMEOUT"
  | Retry -> "retry"
  | Outage -> "OUTAGE"
  | Info -> "info"

type entry = { time : float; kind : kind; detail : string }

type t = { mutable entries : entry list (* newest first *); mutable enabled : bool }

let create ?(enabled = true) () = { entries = []; enabled }

let record t ~time kind detail =
  if t.enabled then t.entries <- { time; kind; detail } :: t.entries

let recordf t ~time kind fmt =
  Fmt.kstr (fun s -> record t ~time kind s) fmt

(** Entries in chronological order. *)
let entries t = List.rev t.entries

let count t kind =
  List.length (List.filter (fun e -> e.kind = kind) t.entries)

let find_all t kind = List.filter (fun e -> e.kind = kind) (entries t)

let clear t = t.entries <- []

let pp_entry ppf e =
  Fmt.pf ppf "[%8.3fs] %-14s %s" e.time (kind_to_string e.kind) e.detail

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_entry) (entries t)
