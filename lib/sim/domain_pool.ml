(* A fixed pool of OCaml 5 domains for the CPU-heavy phase of view
   maintenance.  Stdlib-only: one mutex, two condition variables, and a
   pair of atomics per batch.

   Work distribution is chunked self-scheduling: a batch publishes its
   task array once, and every participant (the spawned workers AND the
   calling coordinator domain) claims geometrically shrinking chunks of
   indices with a single fetch-and-add — large chunks while the deque is
   full, single tasks near the tail, so stragglers are stolen from
   without per-task lock traffic.

   Contract:
   - [run_all] returns results in input order, regardless of which
     domain ran which task.
   - A task that raises is captured; after the whole batch drains, the
     exception of the FIRST failed task (in input order) is re-raised.
     One failure never poisons a worker or skips sibling tasks.
   - Tasks must not call [run_all] on the same pool (no nesting) and
     must not park on the simulation executor: the pool is for pure
     compute over immutable snapshots.
   - [create ~domains:n] spawns [n - 1] workers; the coordinator is the
     n-th participant.  [n <= 1] spawns nothing and [run_all] degrades
     to an inline serial loop, so a pool of one is always safe. *)

type t = {
  domains : int;  (* requested parallelism, >= 1 *)
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  work : Condition.t;  (* new batch published, or shutdown *)
  finished : Condition.t;  (* current batch fully drained *)
  mutable job : (unit -> unit) option;  (* claiming loop of the open batch *)
  mutable epoch : int;  (* bumped per batch so sated workers re-park *)
  mutable stop : bool;
  mutable in_batch : bool;
}

let domains t = t.domains

let worker_loop t =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stop) && t.epoch = !last do
      Condition.wait t.work t.m
    done;
    if t.stop then begin
      Mutex.unlock t.m;
      running := false
    end
    else begin
      last := t.epoch;
      let job = t.job in
      Mutex.unlock t.m;
      match job with
      | Some job -> ( try job () with _ -> () )
      | None -> ()
    end
  done

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      domains;
      workers = [];
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      epoch = 0;
      stop = false;
      in_batch = false;
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let serial tasks =
  Array.map (fun f -> try Ok (f ()) with e -> Error e) tasks

let run_all t tasks =
  let n = Array.length tasks in
  if t.in_batch then
    invalid_arg "Domain_pool.run_all: nested call from inside a task";
  let results =
    if n = 0 then [||]
    else if t.workers = [] then serial tasks
    else begin
      t.in_batch <- true;
      let results = Array.make n (Error Exit) in
      let claimed = Array.make n false in
      let next = Atomic.make 0 in
      let remaining = Atomic.make n in
      let job () =
        let continue = ref true in
        while !continue do
          (* Shrinking chunks: half the unclaimed tail split over all
             participants, floored at one task. *)
          let left = n - Atomic.get next in
          let chunk = max 1 (left / (2 * t.domains)) in
          let start = Atomic.fetch_and_add next chunk in
          if start >= n then continue := false
          else begin
            let stop_i = min n (start + chunk) in
            for i = start to stop_i - 1 do
              claimed.(i) <- true;
              results.(i) <- (try Ok (tasks.(i) ()) with e -> Error e)
            done;
            let ran = stop_i - start in
            if Atomic.fetch_and_add remaining (-ran) = ran then begin
              Mutex.lock t.m;
              Condition.broadcast t.finished;
              Mutex.unlock t.m
            end
          end
        done
      in
      Mutex.lock t.m;
      t.job <- Some job;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      (* The coordinator is a full participant: it claims chunks like any
         worker, then blocks only for stragglers on other domains. *)
      job ();
      Mutex.lock t.m;
      while Atomic.get remaining > 0 do
        Condition.wait t.finished t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      t.in_batch <- false;
      (* Every index must have been claimed exactly once. *)
      assert (Array.for_all Fun.id claimed);
      results
    end
  in
  (* First failure in INPUT order wins, after the whole batch drained. *)
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []
