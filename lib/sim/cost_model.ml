(** Cost model: translates engine work into simulated seconds.

    Replaces the paper's testbed (4× Pentium III, Oracle8i, JDBC over a LAN)
    with explicit constants.  The defaults are calibrated against the
    paper's reported scales:

    - Figure 8: maintaining 3000 data updates costs ≈ 700 s, i.e. ≈ 0.23 s
      per DU.  A DU maintenance probes the 5 other relations; with a 30 ms
      round trip and ≈ 16 ms of scan/transfer per probe this lands at
      ≈ 0.23 s.
    - Figures 9–11: one schema-change maintenance (VS rewrite + VA
      adaptation over the 6×100k-tuple view) costs ≈ 20 s, which is why the
      abort-cost peak in Figure 10 sits at inter-SC intervals of ≈ 17–23 s.

    The [row_scale] factor lets benchmarks run on a physically smaller
    extent (default 10k tuples/relation) while charging simulated time as
    if relations had the paper's 100k tuples. *)

type t = {
  query_latency : float;  (** fixed round-trip per maintenance query, s *)
  per_tuple_scan : float;  (** source-side cost per tuple scanned, s *)
  per_tuple_transfer : float;  (** per result tuple shipped to the view, s *)
  view_write_per_tuple : float;  (** applying a delta tuple to the MV, s *)
  view_commit : float;  (** fixed cost of committing a view refresh, s *)
  vs_rewrite : float;  (** view synchronization (rewrite + meta lookup), s *)
  va_fixed : float;  (** fixed part of view adaptation, s *)
  va_per_tuple : float;  (** adaptation cost per tuple scanned/written, s *)
  va_rebuild_per_tuple : float;
      (** extra per-tuple cost of rebuilding the whole extent when the
          rewritten view changed shape (delete+reinsert at the view
          server) — this is what makes drop-attribute maintenance
          substantially more expensive than renames *)
  detect_flag : float;  (** checking the schema-change flag, s *)
  detect_per_edge : float;  (** dependency-graph work per examined pair, s *)
  correct_per_node : float;  (** topo-sort/SCC work per node+edge, s *)
  rpc_timeout : float;
      (** how long the view manager waits for a maintenance-query answer
          before declaring the attempt lost and retrying, s *)
  retransmit_interval : float;
      (** wrapper retransmission interval after a lost update message, s *)
  row_scale : float;  (** logical rows per physical row (cost scaling) *)
}

let default =
  {
    query_latency = 0.030;
    per_tuple_scan = 2.0e-7;
    per_tuple_transfer = 8.0e-6;
    view_write_per_tuple = 1.0e-5;
    view_commit = 0.005;
    vs_rewrite = 1.0;
    va_fixed = 2.0;
    va_per_tuple = 2.0e-5;
    va_rebuild_per_tuple = 6.0e-5;
    detect_flag = 1.0e-6;
    detect_per_edge = 2.0e-6;
    correct_per_node = 2.0e-6;
    rpc_timeout = 0.250;
    retransmit_interval = 0.100;
    row_scale = 1.0;
  }

(** A model whose physical extent is [1/k] of the logical one. *)
let scaled k = { default with row_scale = k }

(** Zero-cost model: pure-algorithm runs (unit tests) where simulated time
    is irrelevant. *)
let free =
  {
    query_latency = 0.0;
    per_tuple_scan = 0.0;
    per_tuple_transfer = 0.0;
    view_write_per_tuple = 0.0;
    view_commit = 0.0;
    vs_rewrite = 0.0;
    va_fixed = 0.0;
    va_per_tuple = 0.0;
    va_rebuild_per_tuple = 0.0;
    detect_flag = 0.0;
    detect_per_edge = 0.0;
    correct_per_node = 0.0;
    rpc_timeout = 0.0;
    retransmit_interval = 0.0;
    row_scale = 1.0;
  }

let rows cm n = cm.row_scale *. float_of_int n

(** Cost of one maintenance-query probe: round trip + source scan +
    result transfer. *)
let probe cm ~scanned ~returned =
  cm.query_latency
  +. (cm.per_tuple_scan *. rows cm scanned)
  +. (cm.per_tuple_transfer *. rows cm returned)

(** Cost of refreshing the materialized view with a delta of [delta_tuples]
    tuples. *)
let refresh cm ~delta_tuples =
  cm.view_commit +. (cm.view_write_per_tuple *. rows cm delta_tuples)

(** Cost of the view-synchronization rewrite step. *)
let synchronize cm = cm.vs_rewrite

(** Cost of view adaptation touching [scanned] source tuples and writing
    [written] view tuples. *)
let adapt cm ~scanned ~written =
  cm.va_fixed
  +. (cm.va_per_tuple *. rows cm (scanned + written))

(** Extra cost of a shape-changing rematerialization writing [written]
    view tuples. *)
let rebuild cm ~written = cm.va_rebuild_per_tuple *. rows cm written

(** Cost of a pre-exec detection pass over [n] updates with [m] schema
    changes among them (O(mn) pair examinations + O(n) bucket scan). *)
let detect cm ~n ~m =
  cm.detect_flag +. (cm.detect_per_edge *. float_of_int ((m * n) + n))

(** Cost of correction (SCC + topological sort), O(n + e). *)
let correct cm ~nodes ~edges =
  cm.correct_per_node *. float_of_int (nodes + edges)

let pp ppf cm =
  Fmt.pf ppf
    "@[<v>query_latency=%.3fs per_tuple_scan=%.2e per_tuple_transfer=%.2e@,\
     vs_rewrite=%.2fs va_fixed=%.2fs va_per_tuple=%.2e row_scale=%.1f@]"
    cm.query_latency cm.per_tuple_scan cm.per_tuple_transfer cm.vs_rewrite
    cm.va_fixed cm.va_per_tuple cm.row_scale
