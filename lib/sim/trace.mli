(** Execution traces: a timestamped log of everything notable in a
    simulated run.  Tests assert against traces, the CLI prints them,
    statistics derive cost breakdowns from them. *)

type kind =
  | Commit  (** a source committed an update *)
  | Enqueue  (** the wrapper delivered an update message to the UMQ *)
  | Maint_start
  | Query_sent
  | Query_answered
  | Broken_query  (** a maintenance query failed on a schema conflict *)
  | Compensate  (** compensation removed concurrent-DU effects *)
  | Abort  (** an in-flight maintenance process was aborted *)
  | Refresh  (** the materialized view was refreshed and committed *)
  | Detect  (** a pre-exec detection pass ran *)
  | Correct  (** the dependency correction (reorder) ran *)
  | Merge  (** cyclic dependencies were merged into a batch node *)
  | Sync  (** view synchronization rewrote the view definition *)
  | Adapt  (** view adaptation brought the extent up to date *)
  | Msg_dropped  (** the channel lost a transmission (retransmitted) *)
  | Msg_duplicated  (** a duplicate delivery was dropped by the UMQ *)
  | Timeout  (** a maintenance-query attempt got no answer in time *)
  | Retry  (** a maintenance query was retried after backoff *)
  | Outage  (** a source was found unreachable (outage window) *)
  | Info

val kind_to_string : kind -> string

type entry = { time : float; kind : kind; detail : string }

type t

val create : ?enabled:bool -> unit -> t
val record : t -> time:float -> kind -> string -> unit

val recordf :
  t -> time:float -> kind -> ('a, Format.formatter, unit, unit) format4 -> 'a

val entries : t -> entry list
(** Chronological order. *)

val count : t -> kind -> int
val find_all : t -> kind -> entry list
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
