(** Execution traces: a timestamped log of everything notable in a
    simulated run.  Tests assert against traces, the CLI prints them,
    statistics derive cost breakdowns from them.

    Storage is a ring buffer: unbounded by default (every entry
    retained), bounded when [~capacity] is given to {!create}, in which
    case the oldest entries are overwritten once full.  Per-kind counts
    are maintained incrementally, so {!count} is O(1) and keeps counting
    entries a bounded ring has already evicted. *)

type kind =
  | Commit  (** a source committed an update *)
  | Enqueue  (** the wrapper delivered an update message to the UMQ *)
  | Maint_start
  | Query_sent
  | Query_answered
  | Broken_query  (** a maintenance query failed on a schema conflict *)
  | Compensate  (** compensation removed concurrent-DU effects *)
  | Abort  (** an in-flight maintenance process was aborted *)
  | Refresh  (** the materialized view was refreshed and committed *)
  | Detect  (** a pre-exec detection pass ran *)
  | Correct  (** the dependency correction (reorder) ran *)
  | Merge  (** cyclic dependencies were merged into a batch node *)
  | Sync  (** view synchronization rewrote the view definition *)
  | Adapt  (** view adaptation brought the extent up to date *)
  | Msg_dropped  (** the channel lost a transmission (retransmitted) *)
  | Msg_duplicated  (** a duplicate delivery was dropped by the UMQ *)
  | Timeout  (** a maintenance-query attempt got no answer in time *)
  | Retry  (** a maintenance query was retried after backoff *)
  | Outage  (** a source was found unreachable (outage window) *)
  | Info

val kind_to_string : kind -> string

type entry = { time : float; kind : kind; detail : string }

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds the ring (>= 1); omit it for an unbounded trace.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int option

val dropped : t -> int
(** Entries evicted by a bounded ring since the last {!clear} (always 0
    for an unbounded trace). *)

val record : t -> time:float -> kind -> string -> unit

val recordf :
  t -> time:float -> kind -> ('a, Format.formatter, unit, unit) format4 -> 'a

val entries : t -> entry list
(** Retained entries, chronological order. *)

val count : t -> kind -> int
(** O(1); counts every entry recorded since the last {!clear}, including
    entries a bounded ring has evicted. *)

val find_all : t -> kind -> entry list
(** Retained entries of the given kind, chronological order. *)

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val to_json_string : t -> string
(** The retained entries as a JSON array of
    [{"time": …, "kind": "…", "detail": "…"}] objects. *)
