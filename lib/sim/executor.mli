(** Deterministic cooperative task executor over the simulated clock.

    Tasks are single-domain effect-handler coroutines: a spawned task
    runs until it sleeps, at which point control returns to the driver,
    which resumes whichever parked task has the earliest wake-up time
    (ties broken by spawn order).  Simulated time only moves forward,
    via {!Clock.advance_to}, so a round of tasks interleaves exactly
    like a discrete-event simulation: deterministic and repeatable, with
    no OS threads involved.

    The intended use is overlapping maintenance work whose latencies are
    simulated clock advances (probe round-trips): each independent piece
    of work becomes a task, every in-task time charge routes through
    {!sleep_for}/{!sleep_until}, and the round's elapsed simulated time
    becomes the {e maximum} rather than the {e sum} of the tasks'
    individual latencies. *)

type t

val create : Clock.t -> t
val clock : t -> Clock.t

val in_task : t -> bool
(** Are we currently executing inside a task spawned by {!run_all}? *)

val current_task : t -> int option
(** Id of the running task, if any.  Ids are assigned in spawn order and
    are unique over the executor's lifetime. *)

val tasks_parked : t -> int
(** Number of tasks currently parked waiting for their wake-up time. *)

val on_switch : t -> (int option -> unit) -> unit
(** Install a hook called with [Some id] every time task [id] starts or
    resumes, and with [None] every time control returns to the driver.
    Used to retarget ambient observability state (the span recorder's
    current logical thread) at each context switch. *)

val sleep_for : t -> float -> unit
(** Charge a duration of simulated time.  Inside a task this parks the
    task and lets others run in the meantime; outside any task it is
    exactly [Clock.advance].
    @raise Invalid_argument on a negative duration. *)

val sleep_until : t -> float -> unit
(** Park until an absolute simulated time (clamped to now if already
    past).  Outside any task it is exactly [Clock.advance_to]. *)

val run_all : t -> (unit -> unit) list -> unit
(** Spawn one task per thunk (all runnable now, in list order) and drive
    them to completion, advancing the clock to each earliest wake-up
    time in turn.  Returns once every task has finished; the clock then
    sits at the latest wake-up reached.  If tasks raised, the remaining
    tasks still run to completion and the first exception (in occurrence
    order) is re-raised afterwards.
    @raise Invalid_argument when called from inside a task or while
    another [run_all] on the same executor is in progress. *)
