(** Deterministic random number generation for workloads.

    A thin wrapper over [Random.State] with explicit seeding and a [split]
    operation so that independent workload components (data generator, DU
    stream, SC stream) draw from independent streams and experiments are
    exactly reproducible run-to-run. *)

type t = Random.State.t

let make seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]

(** [split t] derives an independent generator; the parent advances. *)
let split t =
  let s = Random.State.int t 0x3FFFFFFF in
  make s

(** [branches t n] derives [n] independent child generators from ONE
    parent draw: each child is seeded by [base + i], never by sharing
    the parent's mutable state.  This is the only sanctioned way to
    hand randomness to worker domains — a child stream can cross a
    domain boundary because it is a fresh [Random.State], while [t]
    itself (like every [Rng.t]) is single-domain mutable state and
    stays with its creator.  Consuming exactly one parent draw keeps
    the parent's stream position independent of [n]. *)
let branches t n =
  if n < 0 then invalid_arg "Rng.branches: negative count";
  let base = Random.State.int t 0x3FFFFFFF in
  Array.init n (fun i -> make (base + i))

let int t bound = Random.State.int t bound

(** [int_in t lo hi] uniform in the inclusive range [lo..hi]. *)
let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + Random.State.int t (hi - lo + 1)

let float t bound = Random.State.float t bound

let bool t = Random.State.bool t

(** [bernoulli t p] is true with probability [p].  Consumes no draw when
    the outcome is certain ([p <= 0] or [p >= 1]), so rate-zero fault
    configurations leave the stream untouched. *)
let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else Random.State.float t 1.0 < p

(** [pick t xs] uniform element of a non-empty list. *)
let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [pick_weighted t xs] picks from [(weight, x)] pairs with probability
    proportional to weight. *)
let pick_weighted t xs =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 xs in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: no positive weight";
  let r = float t total in
  let rec go acc = function
    | [] -> snd (List.hd (List.rev xs))
    | (w, x) :: rest -> if acc +. w >= r then x else go (acc +. w) rest
  in
  go 0.0 xs

(** [shuffle t xs] Fisher–Yates shuffle. *)
let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** Random identifier-ish string of length [n]. *)
let ident t n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))
