(* Deterministic cooperative tasks over the simulated clock, built on
   OCaml 5 effect handlers.  See the .mli for the contract. *)

open Effect
open Effect.Deep

type _ Effect.t += Sleep_until : float -> unit Effect.t

type pending =
  | Start of (unit -> unit)
  | Resume of (unit, unit) continuation

type t = {
  clk : Clock.t;
  mutable next_id : int;
  (* Parked/runnable tasks, sorted by (wake time, task id).  Rounds are
     small (bounded by the antichain width), so a sorted list beats a
     heap on constant factors and keeps the tie-break explicit. *)
  mutable queue : (float * int * pending) list;
  mutable current : int option;
  mutable running : bool;
  mutable switch_hook : int option -> unit;
  mutable failures : (exn * Printexc.raw_backtrace) list;
}

let create clk =
  {
    clk;
    next_id = 0;
    queue = [];
    current = None;
    running = false;
    switch_hook = ignore;
    failures = [];
  }

let clock t = t.clk
let in_task t = t.current <> None
let current_task t = t.current
let tasks_parked t = List.length t.queue
let on_switch t f = t.switch_hook <- f

let insert t time id p =
  let rec go = function
    | [] -> [ (time, id, p) ]
    | ((time', id', _) as hd) :: tl ->
        if time' < time || (time' = time && id' < id) then hd :: go tl
        else (time, id, p) :: hd :: tl
  in
  t.queue <- go t.queue

let sleep_until t target =
  if in_task t then perform (Sleep_until target)
  else Clock.advance_to t.clk (Float.max target (Clock.now t.clk))

let sleep_for t dt =
  if dt < 0.0 then invalid_arg "Executor.sleep_for: negative duration";
  if in_task t then perform (Sleep_until (Clock.now t.clk +. dt))
  else Clock.advance t.clk dt

let handler t id =
  {
    retc = (fun () -> ());
    exnc =
      (fun e -> t.failures <- t.failures @ [ (e, Printexc.get_raw_backtrace ()) ]);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Sleep_until target ->
            Some
              (fun (k : (a, unit) continuation) ->
                let now = Clock.now t.clk in
                let target = if target < now then now else target in
                insert t target id (Resume k))
        | _ -> None);
  }

let run_all t thunks =
  if in_task t then invalid_arg "Executor.run_all: called from inside a task";
  if t.running then invalid_arg "Executor.run_all: already running";
  t.running <- true;
  t.failures <- [];
  List.iter
    (fun f ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      insert t (Clock.now t.clk) id (Start f))
    thunks;
  let rec drive () =
    match t.queue with
    | [] -> ()
    | (time, id, p) :: rest ->
        t.queue <- rest;
        if time > Clock.now t.clk then Clock.advance_to t.clk time;
        t.current <- Some id;
        t.switch_hook (Some id);
        (match p with
        | Start f -> match_with f () (handler t id)
        | Resume k -> continue k ());
        t.current <- None;
        t.switch_hook None;
        drive ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.running <- false;
      t.current <- None;
      t.switch_hook None)
    drive;
  match t.failures with
  | [] -> ()
  | (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
