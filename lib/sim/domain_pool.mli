(** A fixed pool of OCaml 5 domains for the CPU-heavy phase of view
    maintenance (stdlib-only: mutex/condition publication, chunked
    atomic work claiming).

    The pool runs PURE COMPUTE over immutable snapshots.  Tasks must not
    touch the simulation executor, the UMQ, observability sinks, or any
    other coordinator-owned mutable state — see DESIGN.md §17 for the
    coordinator-only module list. *)

type t

val create : domains:int -> t
(** [create ~domains:n] spawns [n - 1] worker domains; the caller's
    domain is the [n]-th participant in every batch.  [n <= 1] spawns
    nothing and [run_all] runs inline and serially. *)

val domains : t -> int
(** The requested parallelism [n] (including the coordinator). *)

val run_all : t -> (unit -> 'a) array -> 'a array
(** [run_all t tasks] runs every task to completion, distributing them
    over the pool's domains, and returns their results in input order.
    Per-task exceptions are captured; after the batch fully drains, the
    exception of the first failed task (in input order) is re-raised.
    Blocks until the batch is drained.  Tasks must not call [run_all]
    (no nesting): @raise Invalid_argument on a nested call. *)

val shutdown : t -> unit
(** Signal every worker to exit and join them.  Idempotent; the pool
    degrades to inline serial execution afterwards. *)
