(** Cost model: translates engine work into simulated seconds, replacing
    the paper's testbed (4× Pentium III, Oracle8i, JDBC) with explicit
    constants calibrated to its reported scales — one DU maintenance
    ≈ 0.23 s, one schema-change maintenance ≈ 20–26 s (which is why the
    abort-cost peak of Figure 10 sits at inter-SC intervals near the SC
    maintenance time).  [row_scale] lets benchmarks run on a physically
    smaller extent while charging time as if relations had the paper's
    100k tuples. *)

type t = {
  query_latency : float;  (** fixed round-trip per maintenance query, s *)
  per_tuple_scan : float;  (** source-side cost per tuple scanned, s *)
  per_tuple_transfer : float;  (** per result tuple shipped to the view, s *)
  view_write_per_tuple : float;  (** applying a delta tuple to the MV, s *)
  view_commit : float;  (** fixed cost of committing a view refresh, s *)
  vs_rewrite : float;  (** view synchronization (rewrite + meta lookup), s *)
  va_fixed : float;  (** fixed part of view adaptation, s *)
  va_per_tuple : float;  (** adaptation cost per tuple scanned/written, s *)
  va_rebuild_per_tuple : float;
      (** extra per-tuple cost of rebuilding the whole extent when the
          rewritten view changed shape — what makes drop-attribute
          maintenance substantially more expensive than renames *)
  detect_flag : float;  (** checking the schema-change flag, s *)
  detect_per_edge : float;  (** dependency-graph work per examined pair, s *)
  correct_per_node : float;  (** topo-sort/SCC work per node+edge, s *)
  rpc_timeout : float;
      (** wait for a maintenance-query answer before retrying, s *)
  retransmit_interval : float;
      (** wrapper retransmission interval after a lost update message, s *)
  row_scale : float;  (** logical rows per physical row (cost scaling) *)
}

val default : t

val scaled : float -> t
(** A model whose physical extent is [1/k] of the logical one. *)

val free : t
(** Zero-cost model for pure-algorithm runs (unit tests). *)

val rows : t -> int -> float
(** Physical row count scaled to logical rows. *)

val probe : t -> scanned:int -> returned:int -> float
(** One maintenance-query probe: round trip + scan + result transfer. *)

val refresh : t -> delta_tuples:int -> float
val synchronize : t -> float
val adapt : t -> scanned:int -> written:int -> float
val rebuild : t -> written:int -> float

val detect : t -> n:int -> m:int -> float
(** Pre-exec detection over [n] updates with [m] schema changes —
    O(m·n + n) pair examinations. *)

val correct : t -> nodes:int -> edges:int -> float
(** Correction (SCC + topological sort), O(n + e). *)

val pp : Format.formatter -> t -> unit
