(** Deterministic random number generation for workloads: explicit
    seeding and splitting so experiments are exactly reproducible.

    DOMAIN SAFETY: an [Rng.t] is single-domain mutable state — it is
    coordinator-only, like every stateful module in this simulator
    ([Executor], [Timeline], [Trace], [Clock], the UMQ and the
    schedulers).  Nothing in the worker-domain compute path
    ([Domain_pool] tasks) may draw from a shared [Rng.t]; when a
    parallel stage needs randomness, derive per-task child streams
    up front with [branches] and move each child, not the parent. *)

type t

val make : int -> t

val split : t -> t
(** Derive an independent generator; the parent advances. *)

val branches : t -> int -> t array
(** [branches t n] derives [n] independent child generators from a
    single parent draw.  Children are seeded by value (seed derivation,
    never a shared [Random.State] ref), so each may safely move to a
    worker domain.  The parent advances by exactly one draw regardless
    of [n]. *)

val int : t -> int -> int
val int_in : t -> int -> int -> int
(** Uniform in an inclusive range. *)

val float : t -> float -> float
val bool : t -> bool

val bernoulli : t -> float -> bool
(** True with probability [p]; consumes no draw when [p <= 0] or
    [p >= 1]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val pick_weighted : t -> (float * 'a) list -> 'a
val shuffle : t -> 'a list -> 'a list
val ident : t -> int -> string
