(** Deterministic random number generation for workloads: explicit
    seeding and splitting so experiments are exactly reproducible. *)

type t

val make : int -> t

val split : t -> t
(** Derive an independent generator; the parent advances. *)

val int : t -> int -> int
val int_in : t -> int -> int -> int
(** Uniform in an inclusive range. *)

val float : t -> float -> float
val bool : t -> bool

val bernoulli : t -> float -> bool
(** True with probability [p]; consumes no draw when [p <= 0] or
    [p >= 1]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val pick_weighted : t -> (float * 'a) list -> 'a
val shuffle : t -> 'a list -> 'a list
val ident : t -> int -> string
