(** Ring-buffered time series sampled on the simulated clock.

    A sampler owns a set of named {e probes} — pure read-only closures the
    instrumented subsystems register at run start (UMQ depth, scheduler
    in-flight count, per-source commit frontier, view staleness, …) — and
    snapshots all of them at most once per [interval] of simulated time.
    The scheduler drives it: {!maybe_sample} is called once per loop
    iteration, so samples land exactly at scheduler wake-ups.  That is the
    right granularity for a discrete-event simulation — every state change
    (commit, delivery, refresh, abort) happens at a wake-up, so the series
    captures every change point and never invents values for instants at
    which nothing could have changed.

    Probes registered with [`Counter] kind additionally get a derived
    [<name>.rate] column: the per-second increase since the previous
    sample (commits/s, probes/s, aborts-per-window).

    Sampling never touches the simulated clock, the trace or the spans —
    it is pure observation, so an enabled sampler leaves runs
    byte-identical to seed behavior (pinned by the zero-overhead identity
    test).  A {!disabled} sampler is a structural no-op. *)

type kind = [ `Gauge | `Counter ]

type probe = {
  pname : string;
  pkind : kind;
  read : float -> float;  (** current value at simulated time [now] *)
  mutable last : float;  (** previous sampled value (rate derivation) *)
}

type sample = { at : float; values : (string * float) list }

type t = {
  on : bool;
  interval : float;
  capacity : int;
  mutable probes : probe list;  (** registration order, reversed *)
  mutable ring : sample array;  (** allocated lazily at first sample *)
  mutable count : int;  (** total samples ever taken *)
  mutable next_due : float;
  mutable last_at : float;  (** time of the previous sample; nan if none *)
  mutable notify : (sample -> unit) option;
}

let create ?(capacity = 4096) ~interval () =
  if interval <= 0.0 then invalid_arg "Timeseries.create: interval <= 0";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity <= 0";
  {
    on = true;
    interval;
    capacity;
    probes = [];
    ring = [||];
    count = 0;
    next_due = 0.0;
    last_at = Float.nan;
    notify = None;
  }

(** The shared no-op sampler. *)
let disabled =
  {
    on = false;
    interval = Float.infinity;
    capacity = 1;
    probes = [];
    ring = [||];
    count = 0;
    next_due = Float.infinity;
    last_at = Float.nan;
    notify = None;
  }

let enabled t = t.on
let interval t = t.interval

(** [probe t ?kind name read] registers (or replaces) a probe.  [read] is
    called with the sample's simulated time and must be pure w.r.t. the
    simulation: no clock advance, no trace, no mutation. *)
let probe t ?(kind = `Gauge) name read =
  if t.on then begin
    let p = { pname = name; pkind = kind; read; last = Float.nan } in
    let others = List.filter (fun q -> q.pname <> name) t.probes in
    t.probes <- p :: others
  end

let on_sample t f = if t.on then t.notify <- Some f

let take t ~now =
  let dt = now -. t.last_at in
  let values =
    List.fold_left
      (fun acc p ->
        let v = p.read now in
        let acc =
          match p.pkind with
          | `Gauge -> acc
          | `Counter ->
              let rate =
                if Float.is_nan p.last || dt <= 0.0 then 0.0
                else (v -. p.last) /. dt
              in
              (p.pname ^ ".rate", rate) :: acc
        in
        p.last <- v;
        (p.pname, v) :: acc)
      []
      (List.rev t.probes)
  in
  let s = { at = now; values = List.rev values } in
  if Array.length t.ring = 0 then t.ring <- Array.make t.capacity s
  else t.ring.(t.count mod t.capacity) <- s;
  t.count <- t.count + 1;
  t.last_at <- now;
  (match t.notify with None -> () | Some f -> f s)

(** [sample t ~now] — force a sample right now (run start / end), unless
    one was already taken at exactly this instant. *)
let sample t ~now =
  if t.on && not (t.last_at = now) then begin
    take t ~now;
    t.next_due <- now +. t.interval
  end

(** [maybe_sample t ~now] — sample iff at least [interval] has elapsed
    since the last sample was due; returns whether a sample was taken. *)
let maybe_sample t ~now =
  if t.on && now >= t.next_due && not (t.last_at = now) then begin
    take t ~now;
    t.next_due <- now +. t.interval;
    true
  end
  else false

let length t = min t.count t.capacity

(** Samples evicted by the ring (oldest-overwritten). *)
let dropped t = max 0 (t.count - t.capacity)

(** Retained samples, oldest first. *)
let samples t =
  let n = length t in
  let first = t.count - n in
  List.init n (fun i -> t.ring.((first + i) mod t.capacity))

let clear t =
  t.ring <- [||];
  t.count <- 0;
  t.next_due <- 0.0;
  t.last_at <- Float.nan;
  List.iter (fun p -> p.last <- Float.nan) t.probes

(* One JSON object per line: {"t": 1.25, "umq.depth": 3.0, ...}.  Keys are
   machine-chosen but escaped anyway; values are finite floats. *)
let jsonl_of_sample s =
  let b = Buffer.create 128 in
  Buffer.add_string b (Fmt.str "{\"t\": %.6f" s.at);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Fmt.str ", %s: %.6f" (Json.quote k) v))
    s.values;
  Buffer.add_string b "}";
  Buffer.contents b

let to_jsonl t =
  String.concat "\n" (List.map jsonl_of_sample (samples t))
