(** Exporters for recorded spans and events.

    Two formats:

    - {!chrome_trace} — the Chrome trace-event format (a JSON object with
      a [traceEvents] array of [ph]/[ts]/[dur]/[pid]/[tid] objects),
      loadable directly in Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev})
      or [chrome://tracing].  Timestamps are microseconds of simulated
      time; pid 1 is the view manager, tid 0 the scheduler, one tid per
      source (named via [thread_name] metadata events).
    - {!spans_jsonl} — one JSON object per line per span/event, trivially
      greppable and stream-parsable.

    {!breakdown} reproduces the paper's Figure-style cost split
    (busy / abort / idle / net-wait) {e from spans alone} — no access to
    {!Dyno_core.Stats} — which is what makes it an independent check of
    the accounting. *)

let us t = t *. 1e6 (* simulated seconds → trace µs *)

let attrs_json attrs =
  match attrs with
  | [] -> "{}"
  | attrs ->
      "{"
      ^ String.concat ", "
          (List.rev_map
             (fun (k, v) -> Fmt.str "%s: %s" (Json.quote k) (Json.quote v))
             attrs)
      ^ "}"

(** [chrome_trace ?lineage r] — the complete trace as one JSON document.
    With [lineage], each admitted update additionally contributes a
    Perfetto {e flow} — a start ("s") at commit, a step ("t") per
    dispatch and a finish ("f") at its terminal event — rendered as a
    clickable arrow chain following the update across threads. *)
let chrome_trace ?(lineage = Lineage.disabled) (r : Span.recorder) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  let sep = ref "" in
  let add line =
    Buffer.add_string b !sep;
    sep := ",\n";
    Buffer.add_string b line
  in
  add
    (Fmt.str
       "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
        \"args\": {\"name\": \"view manager\"}}");
  List.iter
    (fun (name, tid) ->
      add
        (Fmt.str
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
            %d, \"args\": {\"name\": %s}}"
           tid (Json.quote name)))
    (Span.threads r);
  List.iter
    (fun (sp : Span.t) ->
      add
        (Fmt.str
           "{\"name\": %s, \"cat\": %s, \"ph\": \"X\", \"ts\": %.3f, \
            \"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": %s}"
           (Json.quote sp.name)
           (Json.quote (Span.kind_to_string sp.kind))
           (us sp.start)
           (us (sp.finish -. sp.start))
           sp.tid (attrs_json sp.attrs)))
    (Span.spans r);
  List.iter
    (fun (e : Span.event) ->
      add
        (Fmt.str
           "{\"name\": %s, \"ph\": \"i\", \"ts\": %.3f, \"pid\": 1, \
            \"tid\": %d, \"s\": \"t\", \"args\": {\"detail\": %s}}"
           (Json.quote e.ename) (us e.time) e.etid (Json.quote e.detail)))
    (Span.events r);
  if Lineage.enabled lineage then
    List.iter
      (fun (lr : Lineage.record) ->
        if lr.Lineage.msg_id >= 0 then begin
          let name = Json.quote (Fmt.str "msg %d" lr.Lineage.msg_id) in
          let flow ph ?(bp = "") ts =
            add
              (Fmt.str
                 "{\"name\": %s, \"cat\": \"lineage\", \"ph\": \"%s\", \
                  \"id\": %d, \"ts\": %.3f, \"pid\": 1, \"tid\": 0%s}"
                 name ph lr.Lineage.msg_id (us ts) bp)
          in
          flow "s" lr.Lineage.commit_at;
          List.iter
            (fun (e : Lineage.event) ->
              if e.Lineage.kind = "dispatch" then flow "t" e.Lineage.at)
            (Lineage.events lr);
          let finish_at =
            match lr.Lineage.term with
            | Some _ -> lr.Lineage.term_at
            | None -> lr.Lineage.cursor
          in
          flow "f" ~bp:", \"bp\": \"e\"" finish_at
        end)
      (Lineage.records lineage);
  Buffer.add_string b "\n]}";
  Buffer.contents b

(** [spans_jsonl r] — one JSON object per line: spans then events. *)
let spans_jsonl (r : Span.recorder) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun (sp : Span.t) ->
      Buffer.add_string b
        (Fmt.str
           "{\"type\": \"span\", \"id\": %d, \"parent\": %d, \"tid\": %d, \
            \"kind\": %s, \"name\": %s, \"start\": %.9f, \"end\": %.9f, \
            \"attrs\": %s}\n"
           sp.id sp.parent sp.tid
           (Json.quote (Span.kind_to_string sp.kind))
           (Json.quote sp.name) sp.start sp.finish (attrs_json sp.attrs)))
    (Span.spans r);
  List.iter
    (fun (e : Span.event) ->
      Buffer.add_string b
        (Fmt.str
           "{\"type\": \"event\", \"tid\": %d, \"name\": %s, \"time\": \
            %.9f, \"detail\": %s}\n"
           e.etid (Json.quote e.ename) e.time (Json.quote e.detail)))
    (Span.events r);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Cost breakdown from spans alone                                     *)
(* ------------------------------------------------------------------ *)

type phase = {
  kind : Span.kind;
  count : int;
  total : float;  (** summed span duration, simulated s *)
  max : float;
}

type breakdown = {
  horizon : float;  (** last span/event timestamp — the run's end time *)
  busy : float;
      (** union of the [Maintain] span intervals (= maintenance cost).
          Serial runs have disjoint [Maintain] spans, so this equals the
          plain sum; under parallel rounds overlapping spans are counted
          once, which is exactly what "simulated busy time" means when
          probe round-trips overlap. *)
  abort_cost : float;
      (** Σ of the [abort_s] attribute over aborted [Maintain] spans:
          work sunk into maintenance steps that aborted *)
  idle : float;  (** [horizon − busy]: waiting for source commits *)
  net_wait : float;  (** Σ [Timeout] + [Retry] + [Stall] span durations *)
  phases : phase list;  (** per-kind totals, non-empty kinds only *)
}

(** [breakdown r] — the busy/abort/idle/net-wait split plus per-phase
    totals, derived exclusively from the recorded spans. *)
let breakdown (r : Span.recorder) : breakdown =
  let spans = Span.spans r in
  let horizon =
    List.fold_left
      (fun acc (sp : Span.t) -> Float.max acc sp.finish)
      (List.fold_left
         (fun acc (e : Span.event) -> Float.max acc e.time)
         0.0 (Span.events r))
      spans
  in
  let sum_kind k =
    List.fold_left
      (fun (n, tot, mx) (sp : Span.t) ->
        if sp.kind = k then
          let d = sp.finish -. sp.start in
          (n + 1, tot +. d, Float.max mx d)
        else (n, tot, mx))
      (0, 0.0, 0.0) spans
  in
  let phases =
    List.filter_map
      (fun k ->
        let count, total, max = sum_kind k in
        if count = 0 then None else Some { kind = k; count; total; max })
      Span.all_kinds
  in
  let total_of k =
    match List.find_opt (fun p -> p.kind = k) phases with
    | Some p -> p.total
    | None -> 0.0
  in
  (* Busy = measure of the union of Maintain intervals.  Spans arrive
     sorted by start time, so one sweep with a current merged interval
     suffices. *)
  let busy =
    let rec sweep acc cur = function
      | [] -> ( match cur with None -> acc | Some (s, e) -> acc +. (e -. s))
      | (sp : Span.t) :: rest when sp.kind <> Span.Maintain ->
          sweep acc cur rest
      | (sp : Span.t) :: rest -> (
          match cur with
          | None -> sweep acc (Some (sp.start, sp.finish)) rest
          | Some (s, e) ->
              if sp.start <= e then
                sweep acc (Some (s, Float.max e sp.finish)) rest
              else sweep (acc +. (e -. s)) (Some (sp.start, sp.finish)) rest)
    in
    sweep 0.0 None spans
  in
  let abort_cost =
    List.fold_left
      (fun acc (sp : Span.t) ->
        if sp.kind = Span.Maintain then
          match List.assoc_opt "abort_s" sp.attrs with
          | Some s -> acc +. (try float_of_string s with _ -> 0.0)
          | None -> acc
        else acc)
      0.0 spans
  in
  {
    horizon;
    busy;
    abort_cost;
    idle = Float.max 0.0 (horizon -. busy);
    net_wait =
      total_of Span.Timeout +. total_of Span.Retry +. total_of Span.Stall;
    phases;
  }

let pp_breakdown ppf (b : breakdown) =
  Fmt.pf ppf
    "@[<v>cost split (from spans): busy %.2f s | abort %.2f s | idle %.2f \
     s | net-wait %.2f s | end %.2f s@,"
    b.busy b.abort_cost b.idle b.net_wait b.horizon;
  Fmt.pf ppf "  %-12s %6s %12s %12s %12s@," "phase" "count" "total(s)"
    "mean(s)" "max(s)";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %-12s %6d %12.3f %12.5f %12.5f@,"
        (Span.kind_to_string p.kind)
        p.count p.total
        (p.total /. float_of_int p.count)
        p.max)
    b.phases;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* OpenMetrics / Prometheus text exposition                            *)
(* ------------------------------------------------------------------ *)

(* Metric names are restricted to [a-zA-Z0-9_:]; the registry's dotted
   names map onto it with dots (and anything else exotic) as
   underscores, under a [dyno_] namespace prefix. *)
let openmetrics_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "dyno_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(** [openmetrics mx] — the registry in OpenMetrics text exposition:
    counters as [counter] (with the mandated [_total] sample suffix),
    gauges as [gauge], histograms as [summary] (p50/p90/p99 quantile
    series plus [_sum]/[_count]), terminated by [# EOF]. *)
let openmetrics (mx : Metrics.t) : string =
  let b = Buffer.create 2048 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  Metrics.fold mx
    (fun () name m ->
      let om = openmetrics_name name in
      match m with
      | Metrics.Counter r ->
          line "# TYPE %s counter" om;
          line "%s_total %d" om !r
      | Metrics.Gauge r ->
          line "# TYPE %s gauge" om;
          line "%s %.9g" om !r
      | Metrics.Histogram _ -> (
          match Metrics.histogram_summary mx name with
          | None -> ()
          | Some s ->
              line "# TYPE %s summary" om;
              line "%s{quantile=\"0.5\"} %.9g" om s.Metrics.p50;
              line "%s{quantile=\"0.9\"} %.9g" om s.Metrics.p90;
              line "%s{quantile=\"0.99\"} %.9g" om s.Metrics.p99;
              line "%s_sum %.9g" om s.Metrics.sum;
              line "%s_count %d" om s.Metrics.count))
    ();
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
