(** The observability handle: one {!Span} recorder + one {!Metrics}
    registry + one {!Timeseries} sampler, threaded through the pipeline
    inside {!Dyno_view.Query_engine}.  {!disabled} (the default) is a
    structural no-op. *)

type t = {
  spans : Span.recorder;
  metrics : Metrics.t;
  series : Timeseries.t;
  lineage : Lineage.t;
}

val create :
  ?enabled:bool -> ?sample_interval:float -> ?lineage:bool -> unit -> t
(** [sample_interval] (simulated seconds) turns on the time-series
    sampler; without it the sampler is {!Timeseries.disabled} while spans
    and metrics still record.  [lineage] (default true) turns on
    per-update causal lineage recording. *)

val disabled : t
(** The shared no-op handle (the engine's default). *)

val enabled : t -> bool
val spans : t -> Span.recorder
val metrics : t -> Metrics.t
val series : t -> Timeseries.t
val lineage : t -> Lineage.t
val clear : t -> unit
