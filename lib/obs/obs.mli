(** The observability handle: one {!Span} recorder + one {!Metrics}
    registry, threaded through the pipeline inside
    {!Dyno_view.Query_engine}.  {!disabled} (the default) is a structural
    no-op. *)

type t = { spans : Span.recorder; metrics : Metrics.t }

val create : ?enabled:bool -> unit -> t

val disabled : t
(** The shared no-op handle (the engine's default). *)

val enabled : t -> bool
val spans : t -> Span.recorder
val metrics : t -> Metrics.t
val clear : t -> unit
