(** A registry of named counters, gauges and log-bucketed latency
    histograms.

    Subsumes the ad-hoc transport counters of {!Dyno_core.Stats}: at the
    end of a run the scheduler mirrors every aggregate counter here, and
    the pipeline feeds per-phase duration histograms (probe RTT, detection
    pass, correction pass, batch adaptation, UMQ hold time) live.

    Histograms bucket on a log₂ scale from 1 µs up (64 buckets ≅ 5×10⁸ s),
    so a quantile readout costs one pass over a small fixed array and the
    registry never allocates per observation.  Quantiles (p50/p90/p99) are
    reported as the upper bound of the bucket holding that rank —
    conservative to within a factor of 2, which is the usual trade of
    log-bucketed histograms (HdrHistogram-style).

    A disabled registry is a structural no-op. *)

let n_buckets = 64
let base = 1e-6 (* bucket 0 upper bound: 1 µs *)

(* Upper bound of bucket [i]: base × 2^i (float exponentiation: bucket 63
   must not overflow the native int). *)
let bucket_bound i = base *. (2.0 ** float_of_int i)

let bucket_of v =
  if v <= base then 0
  else
    let i = 1 + int_of_float (Float.log2 (v /. base)) in
    if i >= n_buckets then n_buckets - 1 else i

type histogram = {
  hname : string;
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type t = {
  on : bool;
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (** registration order, reversed *)
}

let create ?(enabled = true) () =
  { on = enabled; tbl = Hashtbl.create (if enabled then 32 else 1); order = [] }

(** A shared no-op registry. *)
let disabled = create ~enabled:false ()

let enabled t = t.on

let get t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl name m;
      t.order <- name :: t.order;
      m

let incr t ?(by = 1) name =
  if t.on then
    match get t name (fun () -> Counter (ref 0)) with
    | Counter r -> r := !r + by
    | _ -> invalid_arg (name ^ " is not a counter")

let set_counter t name v =
  if t.on then
    match get t name (fun () -> Counter (ref 0)) with
    | Counter r -> r := v
    | _ -> invalid_arg (name ^ " is not a counter")

let set_gauge t name v =
  if t.on then
    match get t name (fun () -> Gauge (ref 0.0)) with
    | Gauge r -> r := v
    | _ -> invalid_arg (name ^ " is not a gauge")

let add_gauge t name v =
  if t.on then
    match get t name (fun () -> Gauge (ref 0.0)) with
    | Gauge r -> r := !r +. v
    | _ -> invalid_arg (name ^ " is not a gauge")

let observe t name v =
  if t.on then
    match
      get t name (fun () ->
          Histogram
            {
              hname = name;
              buckets = Array.make n_buckets 0;
              n = 0;
              sum = 0.0;
              minv = Float.infinity;
              maxv = Float.neg_infinity;
            })
    with
    | Histogram h ->
        let i = bucket_of v in
        h.buckets.(i) <- h.buckets.(i) + 1;
        h.n <- h.n + 1;
        h.sum <- h.sum +. v;
        if v < h.minv then h.minv <- v;
        if v > h.maxv then h.maxv <- v
    | _ -> invalid_arg (name ^ " is not a histogram")

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter r) -> !r
  | _ -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge r) -> !r
  | _ -> 0.0

(* Rank-based readout: the upper bound of the bucket holding the
   ceil(q·n)-th observation. *)
let histogram_quantile h q =
  if h.n = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.round (q *. float_of_int h.n +. 0.5)) in
      if r < 1 then 1 else if r > h.n then h.n else r
    in
    let rec walk i seen =
      if i >= n_buckets then h.maxv
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then Float.min (bucket_bound i) h.maxv else walk (i + 1) seen
    in
    walk 0 0
  end

let quantile t name q =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> histogram_quantile h q
  | _ -> 0.0

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize h =
  {
    count = h.n;
    sum = h.sum;
    min = (if h.n = 0 then 0.0 else h.minv);
    max = (if h.n = 0 then 0.0 else h.maxv);
    p50 = histogram_quantile h 0.50;
    p90 = histogram_quantile h 0.90;
    p99 = histogram_quantile h 0.99;
  }

let histogram_summary t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> Some (summarize h)
  | _ -> None

(** [kind_of t name] — what (if anything) is registered under [name]. *)
let kind_of t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter _) -> Some `Counter
  | Some (Gauge _) -> Some `Gauge
  | Some (Histogram _) -> Some `Histogram
  | None -> None

(** Every metric, in registration order. *)
let fold t f acc =
  List.fold_left
    (fun acc name -> f acc name (Hashtbl.find t.tbl name))
    acc (List.rev t.order)

let names t = List.rev t.order

let clear t =
  Hashtbl.reset t.tbl;
  t.order <- []

(* JSON rendering; metric names are machine-chosen ([a-z0-9._]) so they
   need no escaping, but we escape anyway for safety. *)
let to_json_string t =
  let b = Buffer.create 1024 in
  let esc = Json.escape in
  let sect title filter render =
    Buffer.add_string b (Fmt.str "  %S: {" title);
    let first = ref true in
    fold t
      (fun () name m ->
        match filter m with
        | None -> ()
        | Some v ->
            if not !first then Buffer.add_string b ",";
            first := false;
            Buffer.add_string b (Fmt.str "\n    \"%s\": %s" (esc name) (render v)))
      ();
    Buffer.add_string b (if !first then "},\n" else "\n  },\n")
  in
  Buffer.add_string b "{\n";
  sect "counters"
    (function Counter r -> Some !r | _ -> None)
    (fun v -> string_of_int v);
  sect "gauges"
    (function Gauge r -> Some !r | _ -> None)
    (fun v -> Fmt.str "%.6f" v);
  Buffer.add_string b "  \"histograms\": {";
  let first = ref true in
  fold t
    (fun () name m ->
      match m with
      | Histogram h ->
          if not !first then Buffer.add_string b ",";
          first := false;
          let s = summarize h in
          Buffer.add_string b
            (Fmt.str
               "\n    \"%s\": {\"count\": %d, \"sum\": %.6f, \"min\": %.6f, \
                \"max\": %.6f, \"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f}"
               (esc name) s.count s.sum s.min s.max s.p50 s.p90 s.p99)
      | _ -> ())
    ();
  Buffer.add_string b (if !first then "}\n" else "\n  }\n");
  Buffer.add_string b "}";
  Buffer.contents b

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  fold t
    (fun () name m ->
      match m with
      | Counter r -> Fmt.pf ppf "%-24s %d@," name !r
      | Gauge r -> Fmt.pf ppf "%-24s %.3f@," name !r
      | Histogram h ->
          let s = summarize h in
          Fmt.pf ppf
            "%-24s n=%-6d sum=%9.3fs  p50=%.4fs p90=%.4fs p99=%.4fs \
             max=%.4fs@,"
            name s.count s.sum s.p50 s.p90 s.p99 s.max)
    ();
  Fmt.pf ppf "@]"
