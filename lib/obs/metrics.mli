(** A registry of named counters, gauges and log-bucketed latency
    histograms with p50/p90/p99 readout.  A disabled registry is a
    structural no-op.  Naming scheme (documented in DESIGN.md §11):
    [subsystem.quantity] with a [_s] suffix for durations in simulated
    seconds — e.g. [probe.rtt_s], [net.retries], [umq.hold_s]. *)

type t

val create : ?enabled:bool -> unit -> t

val disabled : t
(** A shared no-op registry. *)

val enabled : t -> bool

val incr : t -> ?by:int -> string -> unit
(** Increment a counter (get-or-create). *)

val set_counter : t -> string -> int -> unit
val set_gauge : t -> string -> float -> unit

val add_gauge : t -> string -> float -> unit
(** Accumulate into a gauge (get-or-create) — for float-valued totals
    such as [net.overlap_saved_s]. *)

val observe : t -> string -> float -> unit
(** Record one duration (seconds) into a histogram (get-or-create). *)

val counter_value : t -> string -> int
(** 0 when absent. *)

val gauge_value : t -> string -> float

val quantile : t -> string -> float -> float
(** [quantile t name q] for [q] in [0,1]: the upper bound of the log₂
    bucket holding that rank, clamped to the observed max (0 when the
    histogram is absent or empty). *)

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram_summary : t -> string -> histogram_summary option

val kind_of : t -> string -> [ `Counter | `Gauge | `Histogram ] option
(** What (if anything) is registered under a name. *)

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

and histogram

val fold : t -> ('a -> string -> metric -> 'a) -> 'a -> 'a
(** Every metric, in registration order. *)

val names : t -> string list
val clear : t -> unit

val to_json_string : t -> string
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val pp : Format.formatter -> t -> unit
