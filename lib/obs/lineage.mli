(** Per-update causal lineage: one record per source update, keyed by
    [(source, seq)] at commit and by UMQ message id from admission
    onward.  Charging events tile the commit-to-terminal interval into
    named segments (channel / hold / queue / barrier / probe / compute /
    stall / abort) via an advancing cursor, so the segment sums equal the
    elapsed time by construction.  {!disabled} is a structural no-op —
    lineage-off runs are byte-identical. *)

type segment =
  | Channel  (** commit → packet arrival at the warehouse *)
  | Hold  (** sequencer held-for-gap wait *)
  | Queue  (** admission → dispatch (or re-dispatch after abort) *)
  | Barrier  (** dispatched from a cross-shard barrier drain *)
  | Probe  (** source round-trips during maintenance *)
  | Compute  (** maintenance work that is not a probe *)
  | Stall  (** outage stall while dispatched *)
  | Abort  (** work sunk into an aborted maintenance step *)

val all_segments : segment list
val segment_name : segment -> string

type terminal = Applied | Irrelevant | Dropped_undefined

val terminal_name : terminal -> string

type event = {
  at : float;
  kind : string;
  seg : segment option;
  charged : float;
  detail : string;
}

type record = {
  source : string;
  seq : int;
  sc : bool;
  mutable msg_id : int;  (** -1 until the sequencer admits it *)
  commit_at : float;
  mutable cursor : float;
  mutable revents : event list;
  segs : float array;
  mutable held : bool;
  mutable term : terminal option;
  mutable term_at : float;
  mutable parent : int;  (** causal parent msg id (batch merge), -1 *)
}

type t

val create : ?enabled:bool -> ?metrics:Metrics.t -> unit -> t
(** [metrics] receives [lineage.*] counters and [lineage.<segment>_s]
    histograms as records reach their terminal state. *)

val disabled : t
val enabled : t -> bool
val clear : t -> unit

(** {1 Recording} *)

val commit :
  t -> source:string -> seq:int -> time:float -> sc:bool -> detail:string ->
  unit
(** A source transaction committed: open the record, start the clock. *)

val sent :
  t -> source:string -> seq:int -> time:float -> transmissions:int ->
  duplicated:bool -> arrival:float -> unit
(** The channel's send report: retransmissions after loss, in-flight
    duplication, final arrival time. *)

val arrive : t -> source:string -> seq:int -> time:float -> unit
(** Packet reached the warehouse — charges the [Channel] segment. *)

val held : t -> source:string -> seq:int -> time:float -> unit
(** The exactly-once sequencer is holding the packet for a gap. *)

val dedup : t -> source:string -> seq:int -> time:float -> unit
(** A duplicate delivery of an already-sequenced packet was discarded. *)

val admit : t -> source:string -> seq:int -> time:float -> msg_id:int -> unit
(** The sequencer admitted the packet into the UMQ as [msg_id]; charges
    the [Hold] segment when the packet had been held. *)

val dispatch :
  t -> ids:int list -> time:float -> ?seg:segment -> detail:string -> unit ->
  unit
(** The scheduler picked the entry holding [ids] for maintenance —
    charges [Queue] (default) or [Barrier] per update. *)

val note : t -> ids:int list -> time:float -> kind:string -> detail:string -> unit
(** A pure (non-charging) event on each id's record. *)

val stall : t -> ids:int list -> time:float -> detail:string -> unit
(** An outage stalled the dispatched entry — charges [Stall]. *)

val abort : t -> ids:int list -> time:float -> detail:string -> unit
(** The maintenance step aborted — charges [Abort]; [detail] carries the
    provenance (aborting SC, believed schema). *)

val edge : t -> dep_ids:int list -> time:float -> detail:string -> unit
(** Forensics: a detected CD/SD edge, recorded on the dependent ids. *)

val merged : t -> ids:int list -> time:float -> detail:string -> unit
(** Forensics: a cycle merge or [Merge_all] collapse; members gain a
    causal parent link to the batch's smallest id. *)

(** {1 Ambient probe scope} *)

val set_context : t -> int -> unit
(** Switch the ambient context (same per-task integer as the span
    recorder's). *)

val set_scope : t -> int list -> unit
(** Register the ids whose maintenance is running in the current
    context; [\[\]] clears.  Probe charges go to the active scope. *)

val note_scope : t -> time:float -> kind:string -> detail:string -> unit
(** A pure event on each record in the active ambient scope — used by
    subsystems (e.g. the self-maintenance tier) that know what happened
    but not which update is being maintained. *)

val probe_begin : t -> time:float -> unit
(** Charge [Compute] up to the probe's start for the scoped ids. *)

val probe_end : t -> time:float -> detail:string -> unit
(** Charge the probe round-trip to [Probe] for the scoped ids. *)

(** {1 Terminal} *)

val finish :
  t -> ids:int list -> time:float -> state:terminal -> detail:string -> unit
(** Charge the trailing [Compute] and seal the record (first terminal
    wins); observes [lineage.total_s] and per-segment histograms. *)

(** {1 Readout} *)

val records : t -> record list
(** All records in commit order. *)

val find_msg : t -> int -> record option
val events : record -> event list
(** Events oldest-first. *)

val segment_value : record -> segment -> float
val segments : record -> (string * float) list
(** Non-zero segments in canonical order. *)

val elapsed : record -> float
(** Commit-to-terminal elapsed (0 when not terminal). *)

val segment_sum : record -> float

(** {1 Export} *)

val to_jsonl : t -> string
(** One JSON object per record per line, commit order. *)

val pp_record : Format.formatter -> record -> unit
(** The human-readable causal narrative used by [dyno explain]. *)
