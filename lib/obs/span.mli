(** Hierarchical, simulated-clock-timestamped spans.

    The span vocabulary mirrors the maintenance pipeline: a top-level
    [Maintain] span per scheduler iteration, with [Detect], [Correct],
    [Probe] (and its [Timeout]/[Retry] children), [Compensate], [Refresh],
    [Vs], [Va], [Batch] and [Stall] nested under it.  A disabled recorder
    is a structural no-op. *)

type kind =
  | Maintain  (** one scheduler iteration's busy work over a queue head *)
  | Detect  (** a pre-exec detection pass (dependency graph built) *)
  | Correct  (** a correction (reorder/merge) pass *)
  | Probe  (** one maintenance-query round trip (retries included) *)
  | Compensate  (** SWEEP compensation of a probe answer *)
  | Refresh  (** the view-extent refresh + commit *)
  | Vs  (** view synchronization (definition rewrite) *)
  | Va  (** view adaptation (Equation 6 or re-materialization) *)
  | Batch  (** a merged/grouped batch maintained atomically *)
  | Retry  (** backoff wait before a probe retry *)
  | Timeout  (** one probe attempt that got no answer in time *)
  | Stall  (** waiting out an unreachable source (no abort) *)
  | Task  (** one cooperative maintenance task inside a parallel round *)
  | Local
      (** a maintenance sweep answered from the auxiliary-view store —
          zero probe round trips (self-maintenance) *)

val kind_to_string : kind -> string
val all_kinds : kind list

type t = {
  id : int;  (** unique per recorder, > 0 *)
  parent : int;  (** enclosing span id, or 0 for a root span *)
  tid : int;  (** logical thread (see {!thread_id}) *)
  kind : kind;
  mutable name : string;
  start : float;  (** simulated seconds *)
  mutable finish : float;  (** simulated seconds; = [start] while open *)
  mutable attrs : (string * string) list;  (** newest first *)
}

type event = { time : float; etid : int; ename : string; detail : string }

type recorder

val create : ?enabled:bool -> unit -> recorder

val disabled : recorder
(** A shared no-op recorder: every operation returns immediately, ids are
    constantly [0], nothing is allocated per call. *)

val enabled : recorder -> bool
val scheduler_thread : string

val thread_id : recorder -> string -> int
(** Stable small integer for a logical thread name (get-or-create).
    Thread 0 is the scheduler; sources register as they first appear. *)

val threads : recorder -> (string * int) list
(** Registered threads, in registration order. *)

val set_context : recorder -> int -> unit
(** Switch the ambient open-span context.  Context 0 is the ordinary
    serial driver; the cooperative executor's switch hook selects a
    distinct context per task so that spans opened by interleaved tasks
    nest under their own task's open spans, not each other's.  No-op on
    a disabled recorder. *)

val context : recorder -> int
(** The current ambient context (0 unless inside an executor task). *)

val begin_span :
  recorder -> time:float -> ?thread:string -> kind -> string -> int
(** Open a span parented under the current innermost open span; returns
    its id (0 when disabled). *)

val end_span : recorder -> time:float -> int -> unit
(** Close an open span.  Open children are closed at the same time
    (defensive; disciplined callers end in LIFO order). *)

val set_attr : recorder -> int -> string -> string -> unit
val set_name : recorder -> int -> string -> unit

val with_span :
  recorder ->
  now:(unit -> float) ->
  ?thread:string ->
  kind ->
  string ->
  (int -> 'a) ->
  'a
(** Exception-safe bracket: begins a span, runs the body with its id, ends
    the span at the then-current simulated time even on exceptions. *)

val instant :
  recorder -> time:float -> ?thread:string -> string -> string -> unit
(** A point event on a logical thread (message lost, outage hit, …). *)

val spans : recorder -> t list
(** Closed spans in start-time order (ties: creation order). *)

val open_spans : recorder -> t list
val events : recorder -> event list
val span_count : recorder -> int
val find : recorder -> int -> t option

val total_duration : recorder -> kind -> float
(** Summed duration of all closed spans of a kind. *)

val count_kind : recorder -> kind -> int
val clear : recorder -> unit
val pp_span : Format.formatter -> t -> unit
val pp : Format.formatter -> recorder -> unit
