(** Declarative service-level objectives over the metrics registry.

    An objective is a one-line spec such as

    {v staleness.p99 <= 30      stall_ratio <= 0.2      sched.aborts < 5 v}

    i.e. [NAME[.STAT] OP THRESHOLD] with [STAT] one of
    [p50 p90 p99 max mean count], [OP] one of [<= < >= > ==].  [NAME] is
    resolved against the registry with the naming conventions of
    DESIGN.md §11: the literal name first, then [NAME_s] (duration
    histograms carry an [_s] suffix — so [staleness.p99] finds the
    [staleness_s] histogram), then [sched.NAME] (so [stall_ratio] finds
    the scheduler's [sched.stall_ratio] gauge).

    Evaluation is end-of-run: {!eval} reads the registry once and returns
    a verdict ([dyno run --slo SPEC] prints them; [--slo-exit] turns any
    failure into a nonzero exit status — the CI regression-gate hook). *)

type stat = Value | P50 | P90 | P99 | Max | Mean | Count

type op = Le | Lt | Ge | Gt | Eq

type objective = {
  spec : string;  (** the original text, for display *)
  metric : string;
  stat : stat;
  op : op;
  threshold : float;
}

type verdict = {
  objective : objective;
  actual : float option;  (** [None] when the metric was never recorded *)
  pass : bool;
}

let stat_of_string = function
  | "p50" -> Some P50
  | "p90" -> Some P90
  | "p99" -> Some P99
  | "max" -> Some Max
  | "mean" -> Some Mean
  | "count" -> Some Count
  | _ -> None

let pp_stat ppf = function
  | Value -> ()
  | P50 -> Fmt.pf ppf ".p50"
  | P90 -> Fmt.pf ppf ".p90"
  | P99 -> Fmt.pf ppf ".p99"
  | Max -> Fmt.pf ppf ".max"
  | Mean -> Fmt.pf ppf ".mean"
  | Count -> Fmt.pf ppf ".count"

let pp_op ppf op =
  Fmt.string ppf
    (match op with Le -> "<=" | Lt -> "<" | Ge -> ">=" | Gt -> ">" | Eq -> "==")

(* Split [spec] at the first comparison operator (two-char ops first). *)
let split_op spec =
  let n = String.length spec in
  let rec scan i =
    if i >= n then None
    else
      match spec.[i] with
      | '<' | '>' ->
          let two = i + 1 < n && spec.[i + 1] = '=' in
          let op =
            match (spec.[i], two) with
            | '<', true -> Le
            | '<', false -> Lt
            | '>', true -> Ge
            | _ -> Gt
          in
          let w = if two then 2 else 1 in
          Some (String.sub spec 0 i, op, String.sub spec (i + w) (n - i - w))
      | '=' when i + 1 < n && spec.[i + 1] = '=' ->
          Some (String.sub spec 0 i, Eq, String.sub spec (i + 2) (n - i - 2))
      | _ -> scan (i + 1)
  in
  scan 0

(** [parse spec] — [Error] carries a human-readable diagnosis. *)
let parse spec : (objective, string) result =
  match split_op spec with
  | None -> Error (Fmt.str "%S: no comparison operator (<= < >= > ==)" spec)
  | Some (lhs, op, rhs) -> (
      let lhs = String.trim lhs and rhs = String.trim rhs in
      match float_of_string_opt rhs with
      | None -> Error (Fmt.str "%S: threshold %S is not a number" spec rhs)
      | Some threshold ->
          if lhs = "" then Error (Fmt.str "%S: empty metric name" spec)
          else
            let metric, stat =
              match String.rindex_opt lhs '.' with
              | Some i -> (
                  let suffix =
                    String.sub lhs (i + 1) (String.length lhs - i - 1)
                  in
                  match stat_of_string suffix with
                  | Some st -> (String.sub lhs 0 i, st)
                  | None -> (lhs, Value))
              | None -> (lhs, Value)
            in
            Ok { spec; metric; stat; op; threshold })

let parse_exn spec =
  match parse spec with Ok o -> o | Error e -> invalid_arg e

(* Name-resolution fallback chain (see module doc). *)
let candidates name =
  [ name; name ^ "_s"; "sched." ^ name; "sched." ^ name ^ "_s" ]

let resolve mx name =
  List.find_opt (fun n -> Metrics.kind_of mx n <> None) (candidates name)

let read mx obj : float option =
  match resolve mx obj.metric with
  | None -> None
  | Some name -> (
      match Metrics.kind_of mx name with
      | Some `Counter -> Some (float_of_int (Metrics.counter_value mx name))
      | Some `Gauge -> Some (Metrics.gauge_value mx name)
      | Some `Histogram -> (
          match Metrics.histogram_summary mx name with
          | None -> None
          | Some s -> (
              match obj.stat with
              | P50 -> Some s.Metrics.p50
              | P90 -> Some s.Metrics.p90
              | P99 | Value -> Some s.Metrics.p99
                  (* a bare histogram name defaults to its tail quantile —
                     the conservative read for a "stay below X" objective *)
              | Max -> Some s.Metrics.max
              | Count -> Some (float_of_int s.Metrics.count)
              | Mean ->
                  Some
                    (if s.Metrics.count = 0 then 0.0
                     else s.Metrics.sum /. float_of_int s.Metrics.count)))
      | None -> None)

let compare_op op actual threshold =
  match op with
  | Le -> actual <= threshold
  | Lt -> actual < threshold
  | Ge -> actual >= threshold
  | Gt -> actual > threshold
  | Eq -> Float.abs (actual -. threshold) <= 1e-9

(** [eval mx obj] — a missing metric fails the objective (an SLO over a
    signal that was never recorded is not met, it is unverifiable). *)
let eval mx obj =
  match read mx obj with
  | None -> { objective = obj; actual = None; pass = false }
  | Some actual ->
      { objective = obj; actual = Some actual;
        pass = compare_op obj.op actual obj.threshold }

let eval_all mx objs = List.map (eval mx) objs

let all_pass verdicts = List.for_all (fun v -> v.pass) verdicts

let pp_objective ppf o =
  Fmt.pf ppf "%s%a %a %g" o.metric pp_stat o.stat pp_op o.op o.threshold

let pp_verdict ppf v =
  let obj = Fmt.str "%a" pp_objective v.objective in
  match v.actual with
  | None ->
      Fmt.pf ppf "FAIL  %-32s (metric %s not recorded)" obj
        v.objective.metric
  | Some a ->
      Fmt.pf ppf "%s  %-32s (actual %.4g)"
        (if v.pass then "PASS" else "FAIL")
        obj a
