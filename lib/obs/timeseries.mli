(** Ring-buffered time series sampled on the simulated clock.  The
    scheduler calls {!maybe_sample} once per loop iteration, so samples
    land at scheduler wake-ups — the instants at which the simulated
    world can change — at most once per configured interval.  Sampling is
    pure observation: it never touches the clock, the trace or the spans,
    so an enabled sampler leaves runs byte-identical.  {!disabled} is a
    structural no-op. *)

type kind = [ `Gauge | `Counter ]
(** [`Counter] probes additionally get a derived [<name>.rate] column:
    per-second increase since the previous sample. *)

type sample = { at : float; values : (string * float) list }
(** One snapshot: simulated time plus every probe's value (and derived
    rates), in probe registration order. *)

type t

val create : ?capacity:int -> interval:float -> unit -> t
(** [capacity] (default 4096) bounds retained samples — the ring
    overwrites oldest-first and counts evictions in {!dropped}.
    @raise Invalid_argument if [interval <= 0] or [capacity <= 0]. *)

val disabled : t
(** The shared no-op sampler. *)

val enabled : t -> bool
val interval : t -> float

val probe : t -> ?kind:kind -> string -> (float -> float) -> unit
(** [probe t ?kind name read] registers (or replaces) a probe; [read] is
    called with the sample's simulated time and must be pure w.r.t. the
    simulation (no clock advance, no trace, no mutation). *)

val on_sample : t -> (sample -> unit) -> unit
(** Install a callback fired after every sample (the [--watch] display). *)

val maybe_sample : t -> now:float -> bool
(** Sample iff the interval has elapsed since the last sample was due;
    returns whether a sample was taken. *)

val sample : t -> now:float -> unit
(** Force a sample right now (run start / run end), unless one was
    already taken at exactly this instant. *)

val samples : t -> sample list
(** Retained samples, oldest first. *)

val length : t -> int
val dropped : t -> int
val clear : t -> unit

val to_jsonl : t -> string
(** One RFC-8259 JSON object per line:
    [{"t": 1.25, "umq.depth": 3.000000, ...}]. *)
