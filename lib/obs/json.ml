(** Minimal JSON string escaping — the only JSON primitive the exporters
    need that is easy to get wrong.  No external JSON dependency: the
    repo's machine-readable outputs are hand-rendered (as in
    {!Dyno_core.Stats.to_json_string}) and validated by the tiny checker
    in [test/json_check.ml]. *)

(** [escape s] — the body of a JSON string literal for [s] (quotes not
    included): escapes double quotes, backslashes and all control
    characters. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** [quote s] — a complete JSON string literal for [s]. *)
let quote s = "\"" ^ escape s ^ "\""
