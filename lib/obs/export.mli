(** Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing),
    JSONL span/event dump, and a busy/abort/idle/net-wait cost breakdown
    computed from spans alone. *)

val chrome_trace : ?lineage:Lineage.t -> Span.recorder -> string
(** A complete Chrome trace-event JSON document:
    [{"displayTimeUnit": ..., "traceEvents": [...]}] with [ph]/[ts]/[dur]/
    [pid]/[tid] objects — timestamps in µs of simulated time, pid 1, tid 0
    the scheduler and one tid per source (named via [thread_name]
    metadata).  With [lineage], each admitted update adds a Perfetto flow
    ("s"/"t"/"f" events sharing the message id) tracing its journey from
    commit through every dispatch to its terminal state. *)

val spans_jsonl : Span.recorder -> string
(** One JSON object per line per span/event. *)

type phase = {
  kind : Span.kind;
  count : int;
  total : float;  (** summed span duration, simulated s *)
  max : float;
}

type breakdown = {
  horizon : float;  (** last span/event timestamp — the run's end time *)
  busy : float;  (** Σ [Maintain] span durations (= maintenance cost) *)
  abort_cost : float;
      (** Σ of the [abort_s] attribute over aborted [Maintain] spans *)
  idle : float;  (** [horizon − busy]: waiting for source commits *)
  net_wait : float;  (** Σ [Timeout] + [Retry] + [Stall] span durations *)
  phases : phase list;  (** per-kind totals, non-empty kinds only *)
}

val breakdown : Span.recorder -> breakdown
(** The paper's Figure-style cost split, derived exclusively from the
    recorded spans (an independent check of the {!Dyno_core.Stats}
    accounting). *)

val pp_breakdown : Format.formatter -> breakdown -> unit

val openmetrics : Metrics.t -> string
(** The registry in OpenMetrics / Prometheus text exposition: counters
    with the mandated [_total] suffix, gauges, histograms as summaries
    (p50/p90/p99 quantile series + [_sum]/[_count]); terminated by
    [# EOF].  Names are sanitized to [a-zA-Z0-9_:] under a [dyno_]
    prefix ([probe.rtt_s] → [dyno_probe_rtt_s]). *)
