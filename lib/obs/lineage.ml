(** Per-update causal lineage: one record per source update, keyed by
    [(source, seq)] at commit time and by UMQ message id from admission
    onward.  Every stage of an update's life — channel flight, the
    exactly-once sequencer, UMQ queue wait, dispatch, probes,
    compensation, refresh, abort/correction and the terminal state —
    appends an event; events that close a stage also {e charge} the
    elapsed time since the record's cursor to a named segment and advance
    the cursor.  Because the cursor tiles the timeline, the segment sums
    equal commit-to-terminal elapsed time {e by construction} (the qcheck
    property in [test/test_obs.ml] pins the bookkeeping, not the
    arithmetic).

    A disabled recorder (the default, shared {!disabled}) is a structural
    no-op: no clock reads, no RNG draws, no allocation beyond the call —
    lineage-off runs are byte-identical. *)

type segment =
  | Channel  (** commit → packet arrival at the warehouse *)
  | Hold  (** sequencer held-for-gap wait *)
  | Queue  (** admission → dispatch (or re-dispatch after abort) *)
  | Barrier  (** dispatched from a cross-shard barrier drain *)
  | Probe  (** source round-trips during maintenance *)
  | Compute  (** maintenance work that is not a probe *)
  | Stall  (** outage stall while dispatched *)
  | Abort  (** work sunk into an aborted maintenance step *)

let all_segments =
  [ Channel; Hold; Queue; Barrier; Probe; Compute; Stall; Abort ]

let segment_name = function
  | Channel -> "channel"
  | Hold -> "hold"
  | Queue -> "queue"
  | Barrier -> "barrier"
  | Probe -> "probe"
  | Compute -> "compute"
  | Stall -> "stall"
  | Abort -> "abort"

let seg_index = function
  | Channel -> 0
  | Hold -> 1
  | Queue -> 2
  | Barrier -> 3
  | Probe -> 4
  | Compute -> 5
  | Stall -> 6
  | Abort -> 7

let n_segments = 8

type terminal =
  | Applied  (** integrated into every registered view *)
  | Irrelevant  (** no pivot row — dropped without view work *)
  | Dropped_undefined  (** view became undefined; update discarded *)

let terminal_name = function
  | Applied -> "applied"
  | Irrelevant -> "irrelevant"
  | Dropped_undefined -> "dropped_undefined"

type event = {
  at : float;  (** simulated time of the event *)
  kind : string;  (** "commit", "send", "arrive", "admit", ... *)
  seg : segment option;  (** segment this event charged, if any *)
  charged : float;  (** duration charged (0 for pure events) *)
  detail : string;
}

type record = {
  source : string;
  seq : int;
  sc : bool;
  mutable msg_id : int;  (** -1 until the sequencer admits it *)
  commit_at : float;
  mutable cursor : float;
  mutable revents : event list;  (** newest first *)
  segs : float array;  (** per-{!segment} charged totals *)
  mutable held : bool;  (** currently held for a sequence gap *)
  mutable term : terminal option;
  mutable term_at : float;
  mutable parent : int;  (** causal parent msg id (batch rebirth), -1 *)
}

type t = {
  on : bool;
  metrics : Metrics.t;
  by_key : (string * int, record) Hashtbl.t;
  by_msg : (int, record) Hashtbl.t;
  mutable rorder : record list;  (** commit order, newest first *)
  scopes : (int, int list) Hashtbl.t;  (** ambient ctx → dispatched ids *)
  mutable ctx : int;
}

let create ?(enabled = true) ?(metrics = Metrics.disabled) () =
  {
    on = enabled;
    metrics;
    by_key = Hashtbl.create (if enabled then 64 else 0);
    by_msg = Hashtbl.create (if enabled then 64 else 0);
    rorder = [];
    scopes = Hashtbl.create (if enabled then 8 else 0);
    ctx = 0;
  }

let disabled = create ~enabled:false ()
let enabled t = t.on

let clear t =
  if t.on then begin
    Hashtbl.reset t.by_key;
    Hashtbl.reset t.by_msg;
    t.rorder <- [];
    Hashtbl.reset t.scopes;
    t.ctx <- 0
  end

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let ev r ~at ~kind ?seg ?(charged = 0.0) detail =
  r.revents <- { at; kind; seg; charged; detail } :: r.revents

(* Charge [time − cursor] to [seg] and advance the cursor.  The clock is
   monotone, so the duration is non-negative (clamped against float
   noise).  A sealed record never accumulates again — stray charges after
   the terminal (e.g. from a stale ambient scope) cannot break the
   Σ segments = elapsed invariant. *)
let charge r ~time seg =
  if r.term <> None then 0.0
  else begin
    let d = Float.max 0.0 (time -. r.cursor) in
    r.segs.(seg_index seg) <- r.segs.(seg_index seg) +. d;
    r.cursor <- time;
    d
  end

let find_key t ~source ~seq = Hashtbl.find_opt t.by_key (source, seq)
let find_msg t id = if t.on then Hashtbl.find_opt t.by_msg id else None

let commit t ~source ~seq ~time ~sc ~detail =
  if t.on then begin
    let r =
      {
        source;
        seq;
        sc;
        msg_id = -1;
        commit_at = time;
        cursor = time;
        revents = [];
        segs = Array.make n_segments 0.0;
        held = false;
        term = None;
        term_at = 0.0;
        parent = -1;
      }
    in
    Hashtbl.replace t.by_key (source, seq) r;
    t.rorder <- r :: t.rorder;
    ev r ~at:time ~kind:"commit" detail
  end

let sent t ~source ~seq ~time ~transmissions ~duplicated ~arrival =
  if t.on then
    match find_key t ~source ~seq with
    | None -> ()
    | Some r ->
        let detail =
          Fmt.str "%d transmission%s%s%s, arrival t=%.3fs" transmissions
            (if transmissions = 1 then "" else "s")
            (if transmissions > 1 then
               Fmt.str " (%d lost)" (transmissions - 1)
             else "")
            (if duplicated then ", duplicated in flight" else "")
            arrival
        in
        ev r ~at:time ~kind:"send" detail

let arrive t ~source ~seq ~time =
  if t.on then
    match find_key t ~source ~seq with
    | None -> ()
    | Some r ->
        let d = charge r ~time Channel in
        ev r ~at:time ~kind:"arrive" ~seg:Channel ~charged:d
          "packet at warehouse"

let held t ~source ~seq ~time =
  if t.on then
    match find_key t ~source ~seq with
    | None -> ()
    | Some r ->
        r.held <- true;
        ev r ~at:time ~kind:"held" "sequencer holding for a gap"

let dedup t ~source ~seq ~time =
  if t.on then begin
    Metrics.incr t.metrics "lineage.dedups";
    match find_key t ~source ~seq with
    | None -> ()
    | Some r -> ev r ~at:time ~kind:"dedup" "duplicate delivery discarded"
  end

let admit t ~source ~seq ~time ~msg_id =
  if t.on then
    match find_key t ~source ~seq with
    | None -> ()
    | Some r ->
        r.msg_id <- msg_id;
        Hashtbl.replace t.by_msg msg_id r;
        if r.held then begin
          r.held <- false;
          let d = charge r ~time Hold in
          ev r ~at:time ~kind:"admit" ~seg:Hold ~charged:d
            (Fmt.str "released from gap hold as msg #%d" msg_id)
        end
        else
          ev r ~at:time ~kind:"admit"
            (Fmt.str "admitted exactly-once as msg #%d" msg_id)

(* Dispatch and everything after is keyed by message id.  [seg] names
   the wait the dispatch closes: [Queue] for normal scheduling, [Barrier]
   when drained by a cross-shard barrier. *)
let dispatch t ~ids ~time ?(seg = Queue) ~detail () =
  if t.on then
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r ->
            let d = charge r ~time seg in
            ev r ~at:time ~kind:"dispatch" ~seg ~charged:d detail)
      ids

let note t ~ids ~time ~kind ~detail =
  if t.on then
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r -> ev r ~at:time ~kind detail)
      ids

let stall t ~ids ~time ~detail =
  if t.on then
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r ->
            let d = charge r ~time Stall in
            ev r ~at:time ~kind:"stall" ~seg:Stall ~charged:d detail)
      ids

let abort t ~ids ~time ~detail =
  if t.on then begin
    Metrics.incr t.metrics "lineage.aborts";
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r ->
            let d = charge r ~time Abort in
            ev r ~at:time ~kind:"abort" ~seg:Abort ~charged:d detail)
      ids
  end

(* Forensics: a detected dependency edge, recorded on the dependent's
   record. *)
let edge t ~dep_ids ~time ~detail =
  if t.on then
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r -> ev r ~at:time ~kind:"dep-edge" detail)
      dep_ids

(* Forensics: a cycle merge (or Merge_all collapse).  Members gain a
   parent link to the batch's smallest id — the causal "rebirth" of the
   merged updates as one Batch entry. *)
let merged t ~ids ~time ~detail =
  if t.on then begin
    Metrics.incr t.metrics "lineage.merges";
    let parent = List.fold_left min max_int ids in
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r ->
            if r.msg_id <> parent then r.parent <- parent;
            ev r ~at:time ~kind:"merge" detail)
      ids
  end

(* ------------------------------------------------------------------ *)
(* Ambient probe scope                                                 *)
(* ------------------------------------------------------------------ *)

(* Probes fire deep inside the query engine, which knows the target but
   not which update is paying for the round-trip.  The scheduler
   registers the dispatched ids as the {e scope} of the current ambient
   context (the same per-task integer the span recorder uses), and the
   engine charges probe time to whatever scope is active. *)

let set_context t ctx = if t.on then t.ctx <- ctx

let set_scope t ids =
  if t.on then
    if ids = [] then Hashtbl.remove t.scopes t.ctx
    else Hashtbl.replace t.scopes t.ctx ids

let scope t =
  if t.on then
    match Hashtbl.find_opt t.scopes t.ctx with Some ids -> ids | None -> []
  else []

let note_scope t ~time ~kind ~detail =
  if t.on then
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r -> ev r ~at:time ~kind detail)
      (scope t)

let probe_begin t ~time =
  if t.on then
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r -> ignore (charge r ~time Compute))
      (scope t)

let probe_end t ~time ~detail =
  if t.on then
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r ->
            let d = charge r ~time Probe in
            ev r ~at:time ~kind:"probe" ~seg:Probe ~charged:d detail)
      (scope t)

(* ------------------------------------------------------------------ *)
(* Terminal                                                            *)
(* ------------------------------------------------------------------ *)

let finish t ~ids ~time ~state ~detail =
  if t.on then
    List.iter
      (fun id ->
        match find_msg t id with
        | None -> ()
        | Some r ->
            if r.term = None then begin
              let d = charge r ~time Compute in
              r.term <- Some state;
              r.term_at <- time;
              ev r ~at:time
                ~kind:(terminal_name state)
                ~seg:Compute ~charged:d detail;
              Metrics.incr t.metrics
                (Fmt.str "lineage.%s" (terminal_name state));
              Metrics.observe t.metrics "lineage.total_s" (time -. r.commit_at);
              Array.iteri
                (fun i v ->
                  if v > 0.0 then
                    Metrics.observe t.metrics
                      (Fmt.str "lineage.%s_s"
                         (segment_name (List.nth all_segments i)))
                      v)
                r.segs
            end)
      ids

(* ------------------------------------------------------------------ *)
(* Readout                                                             *)
(* ------------------------------------------------------------------ *)

let records t = List.rev t.rorder
let events r = List.rev r.revents
let segment_value r seg = r.segs.(seg_index seg)

let segments r =
  List.filter_map
    (fun s ->
      let v = segment_value r s in
      if v > 0.0 then Some (segment_name s, v) else None)
    all_segments

let elapsed r =
  match r.term with Some _ -> r.term_at -. r.commit_at | None -> 0.0

let segment_sum r = Array.fold_left ( +. ) 0.0 r.segs

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let record_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Fmt.str
       "{\"msg\": %d, \"source\": %s, \"seq\": %d, \"sc\": %b, \
        \"commit_s\": %.9f, \"terminal\": %s, \"terminal_s\": %.9f, \
        \"parent\": %d, \"segments\": {"
       r.msg_id (Json.quote r.source) r.seq r.sc r.commit_at
       (match r.term with
       | Some s -> Json.quote (terminal_name s)
       | None -> "null")
       r.term_at r.parent);
  let sep = ref "" in
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Fmt.str "%s%s: %.9f" !sep (Json.quote name) v);
      sep := ", ")
    (segments r);
  Buffer.add_string b "}, \"events\": [";
  sep := "";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Fmt.str
           "%s{\"t\": %.9f, \"kind\": %s, \"segment\": %s, \"charged\": \
            %.9f, \"detail\": %s}"
           !sep e.at (Json.quote e.kind)
           (match e.seg with
           | Some s -> Json.quote (segment_name s)
           | None -> "null")
           e.charged (Json.quote e.detail));
      sep := ", ")
    (events r);
  Buffer.add_string b "]}";
  Buffer.contents b

(** One JSON object per line per record, in commit order. *)
let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string b (record_json r);
      Buffer.add_char b '\n')
    (records t);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Narrative (dyno explain)                                            *)
(* ------------------------------------------------------------------ *)

let pp_record ppf r =
  Fmt.pf ppf "@[<v>message #%d — %s from %s (seq %d), committed t=%.3fs@,"
    r.msg_id
    (if r.sc then "SC" else "DU")
    r.source r.seq r.commit_at;
  if r.parent >= 0 then
    Fmt.pf ppf "  causal parent: merged into batch led by msg #%d@," r.parent;
  List.iter
    (fun e ->
      Fmt.pf ppf "  t=%8.3fs  %-10s %s%s@," e.at e.kind e.detail
        (match e.seg with
        | Some s when e.charged > 0.0 ->
            Fmt.str "  [%s +%.3fs]" (segment_name s) e.charged
        | _ -> ""))
    (events r);
  (match r.term with
  | Some s ->
      Fmt.pf ppf "  terminal: %s at t=%.3fs (elapsed %.3fs)@,"
        (terminal_name s) r.term_at (elapsed r)
  | None -> Fmt.pf ppf "  terminal: (still pending at end of run)@,");
  (match segments r with
  | [] -> ()
  | segs ->
      Fmt.pf ppf "  critical path: %s@,"
        (String.concat " | "
           (List.map (fun (n, v) -> Fmt.str "%s %.3fs" n v) segs)));
  Fmt.pf ppf "@]"
