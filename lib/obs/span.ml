(** Hierarchical spans over the simulated clock.

    A span is one timed phase of the maintenance pipeline — a whole
    maintenance step, a detection pass, one probe round trip, a backoff
    wait — with a parent link, a logical thread, and free-form key/value
    attributes.  Spans are recorded against the {e simulated} clock, so a
    trace of a run is exactly reproducible and the per-phase durations sum
    to the same quantities {!Dyno_core.Stats} reports.

    The recorder keeps one explicit stack of open spans per {e context}
    — context 0 is the ordinary serial driver; the cooperative executor
    switches the ambient context at every task switch so interleaved
    tasks each see their own open-span stack.  [begin_span] parents the
    new span under the top of the ambient context's stack, [end_span]
    closes it.  A {e disabled} recorder is a structural no-op: nothing
    is allocated per call, no clock interaction happens, and ids are
    constant — so obs-off runs behave bit-identically to a build without
    the recorder. *)

(** The span vocabulary of the maintenance pipeline.  [Maintain] is the
    top-level unit (one scheduler iteration over a queue head, detection
    and correction included); everything else nests under it. *)
type kind =
  | Maintain  (** one scheduler iteration's busy work over a queue head *)
  | Detect  (** a pre-exec detection pass (dependency graph built) *)
  | Correct  (** a correction (reorder/merge) pass *)
  | Probe  (** one maintenance-query round trip (retries included) *)
  | Compensate  (** SWEEP compensation of a probe answer *)
  | Refresh  (** the view-extent refresh + commit *)
  | Vs  (** view synchronization (definition rewrite) *)
  | Va  (** view adaptation (Equation 6 or re-materialization) *)
  | Batch  (** a merged/grouped batch maintained atomically *)
  | Retry  (** backoff wait before a probe retry *)
  | Timeout  (** one probe attempt that got no answer in time *)
  | Stall  (** waiting out an unreachable source (no abort) *)
  | Task  (** one cooperative maintenance task inside a parallel round *)
  | Local
      (** a maintenance sweep answered from the auxiliary-view store —
          zero probe round trips (self-maintenance) *)

let kind_to_string = function
  | Maintain -> "maintain"
  | Detect -> "detect"
  | Correct -> "correct"
  | Probe -> "probe"
  | Compensate -> "compensate"
  | Refresh -> "refresh"
  | Vs -> "vs"
  | Va -> "va"
  | Batch -> "batch"
  | Retry -> "retry"
  | Timeout -> "timeout"
  | Stall -> "stall"
  | Task -> "task"
  | Local -> "local"

let all_kinds =
  [
    Maintain; Detect; Correct; Probe; Compensate; Refresh; Vs; Va; Batch;
    Retry; Timeout; Stall; Task; Local;
  ]

type t = {
  id : int;  (** unique per recorder, > 0 *)
  parent : int;  (** enclosing span id, or 0 for a root span *)
  tid : int;  (** logical thread (see {!thread_id}) *)
  kind : kind;
  mutable name : string;
  start : float;  (** simulated seconds *)
  mutable finish : float;  (** simulated seconds; = [start] while open *)
  mutable attrs : (string * string) list;  (** newest first *)
}

(** A point-in-time event (message lost, commit applied, …). *)
type event = { time : float; etid : int; ename : string; detail : string }

type recorder = {
  on : bool;
  mutable next_id : int;
  stacks : (int, t list) Hashtbl.t;
      (** context → open spans, innermost first.  Context 0 is the serial
          driver; the executor's switch hook selects a per-task context. *)
  mutable ambient : int;  (** context new spans open under *)
  ctx_of : (int, int) Hashtbl.t;  (** span id → context it opened in *)
  mutable closed : t list;  (** newest first *)
  mutable evs : event list;  (** newest first *)
  mutable threads : (string * int) list;  (** name → tid, reverse order *)
  mutable next_tid : int;
  by_id : (int, t) Hashtbl.t;
}

let scheduler_thread = "scheduler"

let create ?(enabled = true) () =
  {
    on = enabled;
    next_id = 1;
    stacks = Hashtbl.create (if enabled then 8 else 1);
    ambient = 0;
    ctx_of = Hashtbl.create (if enabled then 64 else 1);
    closed = [];
    evs = [];
    threads = (if enabled then [ (scheduler_thread, 0) ] else []);
    next_tid = 1;
    by_id = Hashtbl.create (if enabled then 64 else 1);
  }

(** A shared no-op recorder: every operation returns immediately. *)
let disabled = create ~enabled:false ()

let enabled r = r.on

(** [thread_id r name] — stable small integer for logical thread [name]
    (get-or-create).  Thread 0 is the scheduler; sources register as they
    first appear. *)
let thread_id r name =
  if not r.on then 0
  else
    match List.assoc_opt name r.threads with
    | Some tid -> tid
    | None ->
        let tid = r.next_tid in
        r.next_tid <- tid + 1;
        r.threads <- (name, tid) :: r.threads;
        tid

(** Registered threads, in registration order. *)
let threads r = List.rev r.threads

(** [set_context r ctx] — switch the ambient open-span context.  The
    executor's switch hook calls this so spans opened by interleaved
    tasks nest under their own task's spans, not each other's. *)
let set_context r ctx = if r.on then r.ambient <- ctx

let context r = r.ambient
let stack_of r ctx = Option.value ~default:[] (Hashtbl.find_opt r.stacks ctx)

let begin_span r ~time ?thread kind name =
  if not r.on then 0
  else begin
    let tid =
      match thread with None -> 0 | Some n -> thread_id r n
    in
    let stack = stack_of r r.ambient in
    let parent = match stack with [] -> 0 | s :: _ -> s.id in
    let sp =
      {
        id = r.next_id;
        parent;
        tid;
        kind;
        name;
        start = time;
        finish = time;
        attrs = [];
      }
    in
    r.next_id <- r.next_id + 1;
    Hashtbl.replace r.stacks r.ambient (sp :: stack);
    Hashtbl.replace r.ctx_of sp.id r.ambient;
    Hashtbl.replace r.by_id sp.id sp;
    sp.id
  end

(* Close one open span.  Out-of-order ends (an exception unwound past an
   open child) close the orphans at the same time — defensive; disciplined
   callers always end in LIFO order. *)
let end_span r ~time id =
  if r.on && id > 0 then begin
    let ctx = Option.value ~default:0 (Hashtbl.find_opt r.ctx_of id) in
    let stack = stack_of r ctx in
    let rec pop = function
      | [] -> []
      | sp :: rest ->
          sp.finish <- time;
          r.closed <- sp :: r.closed;
          if sp.id = id then rest else pop rest
    in
    if List.exists (fun sp -> sp.id = id) stack then
      Hashtbl.replace r.stacks ctx (pop stack)
  end

let set_attr r id key value =
  if r.on && id > 0 then
    match Hashtbl.find_opt r.by_id id with
    | None -> ()
    | Some sp -> sp.attrs <- (key, value) :: sp.attrs

let set_name r id name =
  if r.on && id > 0 then
    match Hashtbl.find_opt r.by_id id with
    | None -> ()
    | Some sp -> sp.name <- name

(** [with_span r ~now kind name f] — exception-safe bracket: begins a
    span, runs [f id], ends the span at the current simulated time even if
    [f] raises.  [now] is read again at the end so the span covers exactly
    the simulated time [f] consumed. *)
let with_span r ~(now : unit -> float) ?thread kind name f =
  if not r.on then f 0
  else begin
    let id = begin_span r ~time:(now ()) ?thread kind name in
    match f id with
    | v ->
        end_span r ~time:(now ()) id;
        v
    | exception e ->
        end_span r ~time:(now ()) id;
        raise e
  end

(** [instant r ~time name detail] — a point event on a logical thread. *)
let instant r ~time ?thread name detail =
  if r.on then begin
    let tid = match thread with None -> 0 | Some n -> thread_id r n in
    r.evs <- { time; etid = tid; ename = name; detail } :: r.evs
  end

(** Closed spans in start-time order (ties: creation order). *)
let spans r =
  List.sort
    (fun a b ->
      match Float.compare a.start b.start with
      | 0 -> Int.compare a.id b.id
      | c -> c)
    r.closed

(* All open spans across every context, innermost/newest first. *)
let open_spans r =
  Hashtbl.fold (fun _ stack acc -> stack @ acc) r.stacks []
  |> List.sort (fun a b -> Int.compare b.id a.id)
let events r = List.rev r.evs
let span_count r = List.length r.closed

(** Span by id ([None] for the disabled recorder's id 0). *)
let find r id = if id = 0 then None else Hashtbl.find_opt r.by_id id

(** Total duration of all closed spans of [kind]. *)
let total_duration r kind =
  List.fold_left
    (fun acc sp -> if sp.kind = kind then acc +. (sp.finish -. sp.start) else acc)
    0.0 r.closed

let count_kind r kind =
  List.fold_left
    (fun acc sp -> if sp.kind = kind then acc + 1 else acc)
    0 r.closed

let clear r =
  Hashtbl.reset r.stacks;
  r.ambient <- 0;
  Hashtbl.reset r.ctx_of;
  r.closed <- [];
  r.evs <- [];
  Hashtbl.reset r.by_id

let pp_span ppf sp =
  Fmt.pf ppf "[%8.3fs +%7.3fs] %-10s %s" sp.start (sp.finish -. sp.start)
    (kind_to_string sp.kind) sp.name

let pp ppf r =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_span) (spans r)
