(** Declarative service-level objectives over the {!Metrics} registry:
    one-line specs of the form [NAME[.STAT] OP THRESHOLD], e.g.
    [staleness.p99 <= 30] or [stall_ratio <= 0.2].  [STAT] is one of
    [p50 p90 p99 max mean count]; [NAME] resolves via the DESIGN.md §11
    naming conventions (literal, then [NAME_s], then [sched.NAME]).
    Evaluated at end of run; failures can fail the process
    ([dyno run --slo SPEC --slo-exit]). *)

type stat = Value | P50 | P90 | P99 | Max | Mean | Count
type op = Le | Lt | Ge | Gt | Eq

type objective = {
  spec : string;  (** the original text, for display *)
  metric : string;
  stat : stat;
  op : op;
  threshold : float;
}

type verdict = {
  objective : objective;
  actual : float option;  (** [None] when the metric was never recorded *)
  pass : bool;
}

val parse : string -> (objective, string) result
(** [Error] carries a human-readable diagnosis. *)

val parse_exn : string -> objective
(** @raise Invalid_argument on a malformed spec. *)

val eval : Metrics.t -> objective -> verdict
(** A metric that was never recorded fails the objective. *)

val eval_all : Metrics.t -> objective list -> verdict list
val all_pass : verdict list -> bool

val pp_objective : Format.formatter -> objective -> unit
val pp_verdict : Format.formatter -> verdict -> unit
