(** The observability handle threaded through the maintenance pipeline:
    one span recorder plus one metrics registry.

    The handle rides inside {!Dyno_view.Query_engine} (like the event
    {!Dyno_sim.Trace}), so every subsystem that already receives the
    engine — schedulers, SWEEP, VS/VA, the Equation 6 batch path, the
    transport channel — can record spans and observe metrics without new
    plumbing.  The default is {!disabled}: a structural no-op whose calls
    never touch the simulated clock, so obs-off runs are bit-identical to
    a build without observability. *)

type t = { spans : Span.recorder; metrics : Metrics.t }

let create ?(enabled = true) () =
  { spans = Span.create ~enabled (); metrics = Metrics.create ~enabled () }

(** The shared no-op handle (the engine's default). *)
let disabled = { spans = Span.disabled; metrics = Metrics.disabled }

let enabled t = Span.enabled t.spans
let spans t = t.spans
let metrics t = t.metrics

let clear t =
  Span.clear t.spans;
  Metrics.clear t.metrics
