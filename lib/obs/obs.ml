(** The observability handle threaded through the maintenance pipeline:
    one span recorder, one metrics registry, one time-series sampler.

    The handle rides inside {!Dyno_view.Query_engine} (like the event
    {!Dyno_sim.Trace}), so every subsystem that already receives the
    engine — schedulers, SWEEP, VS/VA, the Equation 6 batch path, the
    transport channel — can record spans, observe metrics and register
    sampler probes without new plumbing.  The default is {!disabled}: a
    structural no-op whose calls never touch the simulated clock, so
    obs-off runs are bit-identical to a build without observability. *)

type t = {
  spans : Span.recorder;
  metrics : Metrics.t;
  series : Timeseries.t;
  lineage : Lineage.t;
}

(** [create ?enabled ?sample_interval ?lineage ()] — [sample_interval]
    (simulated seconds) turns on the time-series sampler; without it the
    sampler is the no-op {!Timeseries.disabled} (spans and metrics still
    record).  [lineage] (default true) turns on per-update causal
    lineage; pass [~lineage:false] for an obs-on/lineage-off run. *)
let create ?(enabled = true) ?sample_interval ?(lineage = true) () =
  let metrics = Metrics.create ~enabled () in
  {
    spans = Span.create ~enabled ();
    metrics;
    series =
      (match sample_interval with
      | Some interval when enabled -> Timeseries.create ~interval ()
      | _ -> Timeseries.disabled);
    lineage =
      (if enabled && lineage then Lineage.create ~metrics ()
       else Lineage.disabled);
  }

(** The shared no-op handle (the engine's default). *)
let disabled =
  { spans = Span.disabled; metrics = Metrics.disabled;
    series = Timeseries.disabled; lineage = Lineage.disabled }

let enabled t = Span.enabled t.spans
let spans t = t.spans
let metrics t = t.metrics
let series t = t.series
let lineage t = t.lineage

let clear t =
  Span.clear t.spans;
  Metrics.clear t.metrics;
  Timeseries.clear t.series;
  Lineage.clear t.lineage
