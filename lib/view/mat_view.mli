(** The materialized view: extent storage plus a commit log.  Every
    successful maintenance process ends with w(MV) c(MV); with snapshot
    tracking on, each commit stores a full copy of the extent and the
    definition it was built on, so strong consistency can be verified
    offline. *)

open Dyno_relational

type commit = {
  at : float;  (** simulated commit time *)
  def_version : int;  (** view-definition version the commit was built on *)
  maintained : int list;  (** update-message ids integrated by this commit *)
  snapshot : Relation.t option;
  def_snapshot : (Query.t * (string * Schema.t) list) option;
}

type t

val create : ?track_snapshots:bool -> View_def.t -> Relation.t -> t
val def : t -> View_def.t
val extent : t -> Relation.t
val cardinality : t -> int
val commit_count : t -> int

val commits : t -> commit list
(** Chronological order. *)

val record_commit : t -> at:float -> maintained:int list -> unit
(** Commit without an extent change (irrelevant updates, no-op batches). *)

val refresh : t -> at:float -> maintained:int list -> Relation.t -> unit
(** Apply a signed delta and commit — w(MV) c(MV) of a VM process.
    @raise Invalid_argument if the delta drives a multiplicity negative
    (a maintenance bug; tests rely on this tripwire). *)

val replace : t -> at:float -> maintained:int list -> Relation.t -> unit
(** Install a whole new extent (adaptation after the definition changed
    shape). *)

(** {1 Applied frontier}

    Per-source freshness bookkeeping written by the schedulers' staleness
    tracker: the highest source version the view has integrated (or
    trivially reflects) and the simulated time of that source commit. *)

val note_applied : t -> source:string -> version:int -> commit_time:float -> unit
(** Advance the frontier for a source (monotone: a stale redelivery never
    moves it backwards). *)

val applied_version : t -> string -> int option

val applied_frontier : t -> (string * (int * float)) list
(** [(source, (version, commit_time))], sorted by source id. *)

val pp : Format.formatter -> t -> unit
