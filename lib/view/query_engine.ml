(** The query engine and simulated world.

    Ties together the simulated clock, the timeline of future autonomous
    source commits, the source registry, the UMQ — and, since the
    transport layer, the message {!Dyno_net.Channel} that separates the
    view manager from the sources.  Responsibilities:

    - {b UMQ manager} (Figure 7, [UMQ_Manager]): whenever simulated time
      passes a scheduled commit, the commit is applied at its source and
      the corresponding update message is handed to the {e wrapper's
      channel}; when its copy arrives it runs through the UMQ's
      exactly-once sequencer (dedup + gap-aware reordering) and is
      enqueued (setting the schema-change flag for SCs).
    - {b Query execution with in-exec detection} (Figure 7,
      [Query_Engine]): a maintenance query is charged its latency and scan
      cost on the simulated clock; every source commit whose time precedes
      the answer is applied {e first}, so the answer reflects exactly the
      interleaving semantics of Definition 2.  A schema mismatch yields
      [Error (Broken _)] and raises the broken-query flag.
    - {b Retry under transport faults}: a probe that is lost or hits an
      outage window times out and is retried with exponential backoff; an
      exhausted budget yields [Error (Unreachable _)], which the scheduler
      treats as a transient stall (wait and retry the maintenance step),
      {e not} as an abort into VS/VA.

    With the default {!Dyno_net.Channel.reliable} faults the channel is a
    structural pass-through (no RNG draws, arrival = send time), so
    zero-fault runs are bit-identical to the historical direct-call
    path. *)

open Dyno_relational
open Dyno_sim
open Dyno_net

(** One transport route: a shard's UMQ and the channel feeding it.  A
    single-view-manager world has exactly one route; a sharded world has
    one per shard (each with its own exactly-once sequencer inside the
    UMQ and its own fault/RNG stream), with commits routed by source
    ownership.  Route 0 doubles as the historical single queue. *)
type route = {
  r_umq : Umq.t;
  r_channel : Update_msg.payload Channel.t;
}

type t = {
  clock : Clock.t;
  exec : Executor.t;
      (** cooperative task executor over [clock]; outside any task its
          sleeps degenerate to plain clock advances, so serial runs are
          untouched *)
  timeline : Timeline.t;
  registry : Dyno_source.Registry.t;
  mutable routes : route array;
      (** wrapper→UMQ transport(s); one per shard, routed by source *)
  mutable route_of : string -> int;  (** source → owning route index *)
  cost : Cost_model.t;
  trace : Trace.t;
  planner : Eval.plan;
      (** physical plan every query through this engine runs with *)
  faults : Channel.faults;  (** channel fault config (shared by routes) *)
  net_seed : int;  (** base channel seed; route [i] draws from seed + i *)
  retry : Retry.policy;  (** probe retry policy *)
  obs : Dyno_obs.Obs.t;  (** span recorder + metrics registry *)
  held_since : (string * int, float) Hashtbl.t;
      (** arrival time of copies the UMQ is holding for reordering,
          keyed (source, seq) — feeds the [umq.hold_s] histogram *)
  mutable timeouts : int;  (** probe attempts that got no answer in time *)
  mutable retries : int;  (** probe attempts re-sent after backoff *)
  mutable net_wait : float;  (** simulated seconds lost to transport, s *)
  mutable admit_hooks : (Update_msg.t -> unit) list;
      (** observers of the admitted update stream (install order);
          empty by default — see {!add_admit_hook} *)
}

let create ?(trace = Trace.create ()) ?(planner = `Indexed)
    ?(faults = Channel.reliable) ?(net_seed = 0) ?retry
    ?(obs = Dyno_obs.Obs.disabled) ~cost ~registry ~timeline ~umq () =
  let retry =
    match retry with Some p -> p | None -> Retry.of_cost cost
  in
  let clock = Clock.create () in
  let exec = Executor.create clock in
  (* Keep span nesting honest under task interleaving: every context
     switch retargets the recorder's ambient open-span stack (context 0
     is the serial driver; task [i] gets context [i + 1]). *)
  Executor.on_switch exec (fun task ->
      let ctx = match task with None -> 0 | Some i -> i + 1 in
      Dyno_obs.Span.set_context (Dyno_obs.Obs.spans obs) ctx;
      (* Lineage shares the ambient context so probe round-trips are
         charged to the update(s) the running task is maintaining. *)
      Dyno_obs.Lineage.set_context (Dyno_obs.Obs.lineage obs) ctx);
  {
    clock;
    exec;
    timeline;
    registry;
    routes =
      [| { r_umq = umq; r_channel = Channel.create ~faults ~obs ~seed:net_seed () } |];
    route_of = (fun _ -> 0);
    cost;
    trace;
    planner;
    faults;
    net_seed;
    retry;
    obs;
    held_since = Hashtbl.create 16;
    timeouts = 0;
    retries = 0;
    net_wait = 0.0;
    admit_hooks = [];
  }

let now w = Clock.now w.clock
let timeline w = w.timeline
let clock w = w.clock
let executor w = w.exec
let trace w = w.trace
let umq w = w.routes.(0).r_umq
let registry w = w.registry
let cost w = w.cost
let planner w = w.planner
let channel w = w.routes.(0).r_channel
let retry_policy w = w.retry
let obs w = w.obs
let net_timeouts w = w.timeouts
let net_retries w = w.retries
let net_wait w = w.net_wait

let route w source = w.routes.(w.route_of source)

let install_routes w ~umqs ~route_of =
  if Array.length umqs = 0 then
    invalid_arg "Query_engine.install_routes: no queues";
  if Channel.in_flight w.routes.(0).r_channel > 0 then
    invalid_arg "Query_engine.install_routes: traffic already in flight";
  (* Route [i]'s channel gets its own RNG stream ([net_seed + i]) so the
     fault draws of distinct shards are independent; a 1-route install is
     bit-identical to the channel built by [create]. *)
  w.routes <-
    Array.mapi
      (fun i umq ->
        {
          r_umq = umq;
          r_channel =
            Channel.create ~faults:w.faults ~obs:w.obs
              ~seed:(w.net_seed + i) ();
        })
      umqs;
  w.route_of <- (fun source ->
      let i = route_of source in
      if i < 0 || i >= Array.length w.routes then
        invalid_arg
          (Fmt.str "Query_engine: source %s routed to shard %d of %d" source
             i (Array.length w.routes));
      i)

let add_admit_hook w h = w.admit_hooks <- w.admit_hooks @ [ h ]

let route_count w = Array.length w.routes
let route_umq w i = w.routes.(i).r_umq
let umqs w = Array.to_list (Array.map (fun r -> r.r_umq) w.routes)
let umq_for w ~source = (route w source).r_umq

let net_msgs_lost w =
  Array.fold_left
    (fun acc r -> acc + Channel.lost_transmissions r.r_channel)
    0 w.routes

let net_msgs_duplicated w =
  Array.fold_left
    (fun acc r -> acc + Channel.duplicates_sent r.r_channel)
    0 w.routes

let umq_dups_dropped w =
  Array.fold_left (fun acc r -> acc + Umq.dups_dropped r.r_umq) 0 w.routes

let umq_reorders_healed w =
  Array.fold_left (fun acc r -> acc + Umq.reorders_healed r.r_umq) 0 w.routes

let set_broken_query_flags w =
  Array.iter (fun r -> Umq.set_broken_query_flag r.r_umq) w.routes

(* Run one arriving copy through its route's exactly-once sequencer. *)
let admit_packet w ri (p : Update_msg.payload Channel.packet) =
  let lin = Dyno_obs.Obs.lineage w.obs in
  match
    Umq.deliver w.routes.(ri).r_umq ~source:p.source ~seq:p.seq
      ~commit_time:p.sent ~source_version:p.seq p.payload
  with
  | Umq.Admitted ms ->
      List.iter
        (fun m ->
          (* A message the sequencer had been holding for reordering is
             released now: charge its hold time to the UMQ histogram. *)
          (match Hashtbl.find_opt w.held_since (p.source, Update_msg.seq m) with
          | Some since ->
              Hashtbl.remove w.held_since (p.source, Update_msg.seq m);
              Dyno_obs.Metrics.observe
                (Dyno_obs.Obs.metrics w.obs)
                "umq.hold_s" (now w -. since)
          | None -> ());
          (* The carried packet arrives now; messages drained from the
             gap hold already recorded their arrival when they were
             held, so only their hold wait closes here (in [admit]). *)
          if Update_msg.seq m = p.seq then
            Dyno_obs.Lineage.arrive lin ~source:p.source ~seq:p.seq
              ~time:p.arrival;
          Dyno_obs.Lineage.admit lin ~source:p.source ~seq:(Update_msg.seq m)
            ~time:(now w) ~msg_id:(Update_msg.id m);
          Trace.recordf w.trace ~time:(now w) Trace.Enqueue "%a" Update_msg.pp
            m;
          List.iter (fun h -> h m) w.admit_hooks)
        ms
  | Umq.Duplicate ->
      Dyno_obs.Metrics.incr (Dyno_obs.Obs.metrics w.obs) "umq.duplicates";
      Dyno_obs.Lineage.dedup lin ~source:p.source ~seq:p.seq ~time:(now w);
      Trace.recordf w.trace ~time:(now w) Trace.Msg_duplicated
        "dropped duplicate seq %d from %s" p.seq p.source
  | Umq.Held ->
      Hashtbl.replace w.held_since (p.source, p.seq) (now w);
      Dyno_obs.Lineage.arrive lin ~source:p.source ~seq:p.seq ~time:p.arrival;
      Dyno_obs.Lineage.held lin ~source:p.source ~seq:p.seq ~time:(now w);
      Dyno_obs.Metrics.incr (Dyno_obs.Obs.metrics w.obs) "umq.held";
      Dyno_obs.Span.instant
        (Dyno_obs.Obs.spans w.obs)
        ~time:(now w) ~thread:p.source "umq-held"
        (Fmt.str "seq=%d" p.seq);
      Trace.recordf w.trace ~time:(now w) Trace.Info
        "holding out-of-order seq %d from %s" p.seq p.source

(* Deliver every channel copy whose arrival time has passed.  With
   several routes, due packets are merged in global arrival order (ties
   keep route-index order) so cross-shard admission is deterministic. *)
let deliver_arrived w =
  if Array.length w.routes = 1 then
    List.iter (admit_packet w 0) (Channel.due w.routes.(0).r_channel ~now:(now w))
  else begin
    let batches = ref [] in
    for i = Array.length w.routes - 1 downto 0 do
      match Channel.due w.routes.(i).r_channel ~now:(now w) with
      | [] -> ()
      | ps -> batches := List.map (fun p -> (i, p)) ps :: !batches
    done;
    match !batches with
    | [] -> ()
    | [ ps ] -> List.iter (fun (i, p) -> admit_packet w i p) ps
    | several ->
        List.concat several
        |> List.stable_sort
             (fun (_, (a : Update_msg.payload Channel.packet)) (_, b) ->
               Float.compare a.Channel.arrival b.Channel.arrival)
        |> List.iter (fun (i, p) -> admit_packet w i p)
  end

(** [deliver_due w] applies every source commit scheduled at or before the
    current simulated time, sends the corresponding message down the
    wrapper's channel, and delivers every channel copy that has arrived. *)
let deliver_due w =
  List.iter
    (fun (e : Timeline.entry) ->
      let src, version =
        Dyno_source.Registry.commit w.registry ~time:e.time e.event
      in
      let source = Dyno_source.Data_source.id src in
      Trace.recordf w.trace ~time:e.time Trace.Commit "%s v%d: %a" source
        version Timeline.pp_event e.event;
      (* The first commit carries the lowest seq this source will ever
         send; registering it here (before any delivery can happen)
         anchors the sequencer even if that first message is reordered. *)
      let r = route w source in
      Umq.ensure_source r.r_umq ~source ~first_seq:version;
      let payload =
        match e.event with
        | Timeline.Du u -> Update_msg.Du u
        | Timeline.Sc sc -> Update_msg.Sc sc
      in
      let lin = Dyno_obs.Obs.lineage w.obs in
      Dyno_obs.Lineage.commit lin ~source ~seq:version ~time:e.time
        ~sc:(match payload with Update_msg.Sc _ -> true | Update_msg.Du _ -> false)
        ~detail:(Fmt.str "%a" Timeline.pp_event e.event);
      let report =
        Channel.send r.r_channel ~now:e.time ~source ~seq:version payload
      in
      Dyno_obs.Lineage.sent lin ~source ~seq:version ~time:e.time
        ~transmissions:report.transmissions ~duplicated:report.duplicated
        ~arrival:report.arrival;
      if report.transmissions > 1 then
        Trace.recordf w.trace ~time:e.time Trace.Msg_dropped
          "%s seq %d: %d transmission(s) lost, retransmitted" source version
          (report.transmissions - 1);
      deliver_arrived w)
    (Timeline.pop_until w.timeline ~time:(now w));
  deliver_arrived w

(** [advance w dt] spends [dt] simulated seconds of view-manager work and
    delivers any source commits that happen meanwhile.  Inside an
    executor task the wait parks the task (other tasks run and the clock
    moves under them); outside any task it is a plain clock advance —
    either way commits due by the wake-up time are delivered before
    control returns. *)
let advance w dt =
  Executor.sleep_for w.exec dt;
  deliver_due w

(** [idle_until w t] lets the view manager sit idle until absolute time [t]
    (used by no-concurrency baselines that space updates apart). *)
let idle_until w t =
  if t > now w then begin
    Executor.sleep_until w.exec t;
    deliver_due w
  end

(** Next instant at which something is scheduled to happen without the
    view manager doing anything: a future source commit or an in-flight
    message arrival. *)
let next_wakeup w =
  let min_opt a b =
    match (a, b) with
    | None, t | t, None -> t
    | Some a, Some b -> Some (Float.min a b)
  in
  Array.fold_left
    (fun acc r -> min_opt acc (Channel.next_arrival r.r_channel))
    (Timeline.next_time w.timeline)
    w.routes

(* A probe answer from [source] arrived on the same FIFO stream as the
   source's update messages, so every message it sent earlier has arrived
   too: flush them into the UMQ before the answer is used.  This is what
   keeps the SWEEP compensation frontier exact under transport delay. *)
let flush_in_flight w ~source =
  let ri = w.route_of source in
  List.iter (admit_packet w ri)
    (Channel.flush_source w.routes.(ri).r_channel ~source)

(** How a maintenance query can fail:

    - [Broken] — the genuine broken query of the paper: a schema conflict
      detected in-exec; the maintenance process must abort into VS/VA.
    - [Unreachable] — a transient transport failure: the retry budget was
      exhausted without an answer; the maintenance step should be retried
      once the source is reachable again.  No abort, no correction. *)
type failure =
  | Broken of Dyno_source.Data_source.broken
  | Unreachable of Retry.unreachable

let pp_failure ppf = function
  | Broken b -> Dyno_source.Data_source.pp_broken ppf b
  | Unreachable u -> Retry.pp_unreachable ppf u

(* Retry skeleton shared by [execute] and [validate]: decide the fate of
   each RPC attempt against the fault config, charging timeout + backoff
   on the simulated clock (commits keep being delivered meanwhile), until
   an attempt goes through or the budget is exhausted. *)
let with_rpc w ~target ~what (attempt_ok : unit -> ('a, failure) result) :
    ('a, failure) result =
  let rec attempt ~n ~waited =
    let ch = (route w target).r_channel in
    let outage = Channel.outage_at ch ~source:target ~now:(now w) in
    let lost =
      match outage with Some _ -> true | None -> Channel.rpc_lost ch
    in
    if not lost then attempt_ok ()
    else begin
      let sp = Dyno_obs.Obs.spans w.obs
      and mx = Dyno_obs.Obs.metrics w.obs in
      w.timeouts <- w.timeouts + 1;
      Dyno_obs.Metrics.incr mx "net.timeouts";
      (match outage with
      | Some o ->
          Trace.recordf w.trace ~time:(now w) Trace.Outage
            "%s unreachable (outage until %.3fs)" target o.ends
      | None -> ());
      Dyno_obs.Span.with_span sp
        ~now:(fun () -> now w)
        Dyno_obs.Span.Timeout
        (Fmt.str "%s %s attempt %d" what target n)
        (fun _ -> advance w w.retry.Retry.timeout);
      w.net_wait <- w.net_wait +. w.retry.Retry.timeout;
      Trace.recordf w.trace ~time:(now w) Trace.Timeout
        "%s %s: no answer after %.3fs (attempt %d/%d)" what target
        w.retry.Retry.timeout n w.retry.Retry.max_attempts;
      let waited = waited +. w.retry.Retry.timeout in
      if n >= w.retry.Retry.max_attempts then
        Error (Unreachable { Retry.source = target; attempts = n; waited })
      else begin
        let backoff = Retry.backoff_delay w.retry ~attempt:n in
        Dyno_obs.Span.with_span sp
          ~now:(fun () -> now w)
          Dyno_obs.Span.Retry
          (Fmt.str "%s %s backoff %d" what target n)
          (fun _ -> advance w backoff);
        w.net_wait <- w.net_wait +. backoff;
        w.retries <- w.retries + 1;
        Dyno_obs.Metrics.incr mx "net.retries";
        Trace.recordf w.trace ~time:(now w) Trace.Retry
          "%s %s: retry %d/%d after %.3fs backoff" what target (n + 1)
          w.retry.Retry.max_attempts backoff;
        attempt ~n:(n + 1) ~waited:(waited +. backoff)
      end
    end
  in
  attempt ~n:1 ~waited:0.0

(** [execute w q ~bound ~target] runs one maintenance-query probe against
    source [target].

    Timing: the round-trip latency plus the source-side scan cost elapse
    {e before} the answer is computed, and every source commit falling in
    that window is applied first — so the answer reflects all updates
    "committed before the query is answered" (Definition 2), which is what
    makes compensation necessary and schema conflicts observable.  The
    result-transfer cost elapses after evaluation. *)
(* Wrap one probe (or validate) round trip in a [Probe] span, tagging its
   outcome and feeding the [probe.rtt_s] histogram. *)
let probe_span w ~target ~name (body : unit -> ('a, failure) result) :
    ('a, failure) result =
  let sp = Dyno_obs.Obs.spans w.obs in
  let lin = Dyno_obs.Obs.lineage w.obs in
  Dyno_obs.Span.with_span sp
    ~now:(fun () -> now w)
    Dyno_obs.Span.Probe name
    (fun span_id ->
      let t0 = now w in
      Dyno_obs.Lineage.probe_begin lin ~time:t0;
      let result = body () in
      let outcome =
        match result with
        | Ok _ -> "ok"
        | Error (Broken _) -> "broken"
        | Error (Unreachable _) -> "unreachable"
      in
      Dyno_obs.Span.set_attr sp span_id "target" target;
      Dyno_obs.Span.set_attr sp span_id "outcome" outcome;
      Dyno_obs.Lineage.probe_end lin ~time:(now w)
        ~detail:(Fmt.str "%s %s: %s, rtt %.3fs" name target outcome (now w -. t0));
      Dyno_obs.Metrics.observe
        (Dyno_obs.Obs.metrics w.obs)
        "probe.rtt_s" (now w -. t0);
      result)

(** [execute_timed w q ~bound ~target] — like {!execute}, but also
    returns the simulated time at which the source computed the answer
    (before the result transfer).  Under concurrent maintenance other
    tasks may deliver commits while this task parks on the result
    transfer; the caller's compensation frontier must only include
    pending updates committed at or before that instant. *)
let execute_timed w (q : Query.t) ~bound ~target :
    (Dyno_source.Data_source.answer * float, failure) result =
  probe_span w ~target ~name:(Fmt.str "probe %s" target) @@ fun () ->
  Trace.recordf w.trace ~time:(now w) Trace.Query_sent "%s <- %s" target
    (Query.name q);
  let src = Dyno_source.Registry.find w.registry target in
  (* Estimate the scan the source is about to do (current sizes). *)
  let scan_estimate =
    List.fold_left
      (fun acc (tr : Query.table_ref) ->
        if String.equal tr.source target then
          match Dyno_source.Data_source.relation_opt src tr.rel with
          | Some r -> acc + Relation.support r
          | None -> acc
        else acc)
      0 (Query.from q)
  in
  with_rpc w ~target ~what:"probe" (fun () ->
      (* Issue half: the request goes on the wire; this task parks for
         the round trip + source scan while other tasks' probes overlap. *)
      let rtt = Cost_model.probe w.cost ~scanned:scan_estimate ~returned:0 in
      let ch = (route w target).r_channel in
      let rpc =
        Channel.issue_rpc ch ~now:(now w) ~source:target
          ~ready:(now w +. rtt)
      in
      advance w rtt;
      (* Complete half: take the round trip off the wire. *)
      Channel.complete_rpc ch rpc;
      (* The answer travels the source's FIFO stream: its earlier update
         messages arrive first (SWEEP's per-source ordering assumption). *)
      flush_in_flight w ~source:target;
      let answered_at = now w in
      match
        Dyno_source.Data_source.answer ~planner:w.planner src q ~bound
      with
      | Ok ans ->
          (* Result transfer: time passes but commits landing in this
             window are NOT delivered yet — the answer was computed before
             them, so the caller's compensation frontier must not include
             them either.  They are delivered at the next source
             interaction.  (In a task, other tasks run meanwhile and may
             deliver their own commits — hence [answered_at].) *)
          Executor.sleep_for w.exec
            (Cost_model.probe w.cost ~scanned:0
               ~returned:(Relation.support ans.rows)
             -. w.cost.Cost_model.query_latency
            |> Float.max 0.0);
          Trace.recordf w.trace ~time:(now w) Trace.Query_answered
            "%s -> %d rows" target
            (Relation.support ans.rows);
          Ok (ans, answered_at)
      | Error b ->
          set_broken_query_flags w;
          Trace.recordf w.trace ~time:(now w) Trace.Broken_query "%a"
            Dyno_source.Data_source.pp_broken b;
          Error (Broken b))

let execute w (q : Query.t) ~bound ~target :
    (Dyno_source.Data_source.answer, failure) result =
  Result.map fst (execute_timed w q ~bound ~target)

(** [validate w q ~target] — lightweight metadata check of [q] against
    source [target]'s current catalog: one round trip, no scan.  View
    adaptation interleaves these with its computation so that a schema
    change committed at any point of the maintenance window is detected
    (in-exec) before the view commits. *)
let validate w (q : Query.t) ~target : (unit, failure) result =
  probe_span w ~target ~name:(Fmt.str "validate %s" target) @@ fun () ->
  let src = Dyno_source.Registry.find w.registry target in
  with_rpc w ~target ~what:"validate" (fun () ->
      advance w w.cost.Cost_model.query_latency;
      flush_in_flight w ~source:target;
      match Dyno_source.Data_source.validate src q with
      | Ok () -> Ok ()
      | Error b ->
          set_broken_query_flags w;
          Trace.recordf w.trace ~time:(now w) Trace.Broken_query
            "validation: %a" Dyno_source.Data_source.pp_broken b;
          Error (Broken b))

(** [await_recovery w ~source] — called by the scheduler after an
    [Unreachable] verdict: wait out the source's outage window if one is
    active (otherwise one retry-timeout as a cool-down), delivering
    commits meanwhile.  Returns the simulated seconds waited. *)
let await_recovery w ~source =
  let t0 = now w in
  (match Channel.outage_at (route w source).r_channel ~source ~now:t0 with
  | Some o -> idle_until w o.ends
  | None ->
      advance w
        (Float.max w.retry.Retry.timeout w.cost.Cost_model.retransmit_interval));
  let dt = now w -. t0 in
  w.net_wait <- w.net_wait +. dt;
  dt

(** [source_relation w ~source ~rel] direct read of a source's current
    relation — used by adaptation, which the paper models as maintenance
    queries too; we charge it through [execute]-style costs at the caller. *)
let source_relation w ~source ~rel =
  let src = Dyno_source.Registry.find w.registry source in
  Dyno_source.Data_source.relation_opt src rel

(** Concurrent data updates currently pending in the UMQ against relation
    [rel] at [source] — the information compensation needs. *)
let pending_dus w ~source ~rel =
  Umq.pending_dus (route w source).r_umq ~source ~rel
