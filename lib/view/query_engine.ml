(** The query engine and simulated world.

    Ties together the simulated clock, the timeline of future autonomous
    source commits, the source registry and the UMQ.  Responsibilities:

    - {b UMQ manager} (Figure 7, [UMQ_Manager]): whenever simulated time
      passes a scheduled commit, the commit is applied at its source and
      the corresponding update message is enqueued (setting the
      schema-change flag for SCs).
    - {b Query execution with in-exec detection} (Figure 7,
      [Query_Engine]): a maintenance query is charged its latency and scan
      cost on the simulated clock; every source commit whose time precedes
      the answer is applied {e first}, so the answer reflects exactly the
      interleaving semantics of Definition 2.  A schema mismatch yields
      [Error] and raises the broken-query flag. *)

open Dyno_relational
open Dyno_sim

type t = {
  clock : Clock.t;
  timeline : Timeline.t;
  registry : Dyno_source.Registry.t;
  umq : Umq.t;
  cost : Cost_model.t;
  trace : Trace.t;
  planner : Eval.plan;
      (** physical plan every query through this engine runs with *)
}

let create ?(trace = Trace.create ()) ?(planner = `Indexed) ~cost ~registry
    ~timeline ~umq () =
  { clock = Clock.create (); timeline; registry; umq; cost; trace; planner }

let now w = Clock.now w.clock
let timeline w = w.timeline
let clock w = w.clock
let trace w = w.trace
let umq w = w.umq
let registry w = w.registry
let cost w = w.cost
let planner w = w.planner

(** [deliver_due w] applies every source commit scheduled at or before the
    current simulated time, enqueuing the corresponding messages. *)
let deliver_due w =
  List.iter
    (fun (e : Timeline.entry) ->
      let src, version =
        Dyno_source.Registry.commit w.registry ~time:e.time e.event
      in
      Trace.recordf w.trace ~time:e.time Trace.Commit "%s v%d: %a"
        (Dyno_source.Data_source.id src)
        version Timeline.pp_event e.event;
      let payload =
        match e.event with
        | Timeline.Du u -> Update_msg.Du u
        | Timeline.Sc sc -> Update_msg.Sc sc
      in
      let m =
        Umq.enqueue w.umq ~commit_time:e.time ~source_version:version payload
      in
      Trace.recordf w.trace ~time:(now w) Trace.Enqueue "%a" Update_msg.pp m)
    (Timeline.pop_until w.timeline ~time:(now w))

(** [advance w dt] spends [dt] simulated seconds of view-manager work and
    delivers any source commits that happen meanwhile. *)
let advance w dt =
  Clock.advance w.clock dt;
  deliver_due w

(** [idle_until w t] lets the view manager sit idle until absolute time [t]
    (used by no-concurrency baselines that space updates apart). *)
let idle_until w t =
  if t > now w then begin
    Clock.advance_to w.clock t;
    deliver_due w
  end

(** [execute w q ~bound ~target] runs one maintenance-query probe against
    source [target].

    Timing: the round-trip latency plus the source-side scan cost elapse
    {e before} the answer is computed, and every source commit falling in
    that window is applied first — so the answer reflects all updates
    "committed before the query is answered" (Definition 2), which is what
    makes compensation necessary and schema conflicts observable.  The
    result-transfer cost elapses after evaluation. *)
let execute w (q : Query.t) ~bound ~target :
    (Dyno_source.Data_source.answer, Dyno_source.Data_source.broken) result =
  Trace.recordf w.trace ~time:(now w) Trace.Query_sent "%s <- %s" target
    (Query.name q);
  let src = Dyno_source.Registry.find w.registry target in
  (* Estimate the scan the source is about to do (current sizes). *)
  let scan_estimate =
    List.fold_left
      (fun acc (tr : Query.table_ref) ->
        if String.equal tr.source target then
          match Dyno_source.Data_source.relation_opt src tr.rel with
          | Some r -> acc + Relation.support r
          | None -> acc
        else acc)
      0 (Query.from q)
  in
  advance w (Cost_model.probe w.cost ~scanned:scan_estimate ~returned:0);
  match Dyno_source.Data_source.answer ~planner:w.planner src q ~bound with
  | Ok ans ->
      (* Result transfer: time passes but commits landing in this window
         are NOT delivered yet — the answer was computed before them, so
         the caller's compensation frontier must not include them either.
         They are delivered at the next source interaction. *)
      Clock.advance w.clock
        (Cost_model.probe w.cost ~scanned:0 ~returned:(Relation.support ans.rows)
        -. w.cost.Cost_model.query_latency
        |> Float.max 0.0);
      Trace.recordf w.trace ~time:(now w) Trace.Query_answered
        "%s -> %d rows" target
        (Relation.support ans.rows);
      Ok ans
  | Error b ->
      Umq.set_broken_query_flag w.umq;
      Trace.recordf w.trace ~time:(now w) Trace.Broken_query "%a"
        Dyno_source.Data_source.pp_broken b;
      Error b

(** [validate w q ~target] — lightweight metadata check of [q] against
    source [target]'s current catalog: one round trip, no scan.  View
    adaptation interleaves these with its computation so that a schema
    change committed at any point of the maintenance window is detected
    (in-exec) before the view commits. *)
let validate w (q : Query.t) ~target : (unit, Dyno_source.Data_source.broken) result
    =
  advance w w.cost.Cost_model.query_latency;
  let src = Dyno_source.Registry.find w.registry target in
  match Dyno_source.Data_source.validate src q with
  | Ok () -> Ok ()
  | Error b ->
      Umq.set_broken_query_flag w.umq;
      Trace.recordf w.trace ~time:(now w) Trace.Broken_query "validation: %a"
        Dyno_source.Data_source.pp_broken b;
      Error b

(** [source_relation w ~source ~rel] direct read of a source's current
    relation — used by adaptation, which the paper models as maintenance
    queries too; we charge it through [execute]-style costs at the caller. *)
let source_relation w ~source ~rel =
  let src = Dyno_source.Registry.find w.registry source in
  Dyno_source.Data_source.relation_opt src rel

(** Concurrent data updates currently pending in the UMQ against relation
    [rel] at [source] — the information compensation needs. *)
let pending_dus w ~source ~rel = Umq.pending_dus w.umq ~source ~rel
