(** The query engine and simulated world: ties together the clock, the
    timeline of future autonomous commits, the source registry, the UMQ
    and the transport channel.  Implements the paper's Figure 7 processes
    — the UMQ manager (deliver commits through the wrapper's channel and
    the exactly-once sequencer, set the schema-change flag) and the query
    engine with in-exec broken-query detection — with Definition 2's
    interleaving semantics: every commit falling before a query is
    answered is applied first.  Probes lost to the channel (or hitting an
    outage) time out and are retried with exponential backoff. *)

open Dyno_relational
open Dyno_sim

type t

val create :
  ?trace:Trace.t ->
  ?planner:Eval.plan ->
  ?faults:Dyno_net.Channel.faults ->
  ?net_seed:int ->
  ?retry:Dyno_net.Retry.policy ->
  ?obs:Dyno_obs.Obs.t ->
  cost:Cost_model.t ->
  registry:Dyno_source.Registry.t ->
  timeline:Timeline.t ->
  umq:Umq.t ->
  unit ->
  t
(** [planner] (default [`Indexed]) is the physical plan every maintenance
    query and compensation evaluation through this engine runs with; tests
    pass [`Nested_loop] to pin the reference plan.  [faults] (default
    {!Dyno_net.Channel.reliable}) configures the transport channel —
    reliable is a structural pass-through, bit-identical to a direct call;
    [net_seed] seeds the channel's own RNG stream; [retry] (default
    {!Dyno_net.Retry.of_cost}) governs probe timeout/backoff.  [obs]
    (default {!Dyno_obs.Obs.disabled} — a structural no-op) records
    [Probe]/[Timeout]/[Retry] spans, the [probe.rtt_s] and [umq.hold_s]
    histograms and the [net.*]/[umq.*] counters, and is shared with the
    channel and with every subsystem holding this engine. *)

val now : t -> float

val planner : t -> Eval.plan
(** The engine's physical plan choice (see {!create}). *)

val timeline : t -> Timeline.t
val clock : t -> Clock.t

val executor : t -> Executor.t
(** The engine's cooperative task executor over its clock.  Outside any
    task its sleeps are plain clock advances, so purely serial callers
    can ignore it; the parallel schedulers spawn maintenance tasks on it
    so independent probe round trips overlap. *)

val trace : t -> Trace.t

val umq : t -> Umq.t
(** Route 0's queue — {e the} queue of a single-view-manager world, and
    the first shard's queue of a sharded one. *)

val registry : t -> Dyno_source.Registry.t
val cost : t -> Cost_model.t

val channel : t -> Update_msg.payload Dyno_net.Channel.t
(** Route 0's channel (see {!umq}). *)

val retry_policy : t -> Dyno_net.Retry.policy

val install_routes :
  t -> umqs:Umq.t array -> route_of:(string -> int) -> unit
(** Replace the single default route with one route per shard: queue [i]
    of [umqs] is fed by its own channel (same fault config, RNG stream
    seeded [net_seed + i]) and owns the sources [route_of] maps to [i].
    Must be called before any traffic flows (raises [Invalid_argument]
    if messages are already in flight); installing a 1-element array is
    bit-identical to the route built by {!create}.  The queues should
    share one message-id counter ({!Umq.create}'s [ids]) so ids stay
    globally unique across shards. *)

val route_count : t -> int
(** Number of installed routes ([1] unless {!install_routes} ran). *)

val route_umq : t -> int -> Umq.t
(** The queue owned by route [i]. *)

val umqs : t -> Umq.t list
(** All routes' queues, in route order. *)

val umq_for : t -> source:string -> Umq.t
(** The queue owning a source's updates. *)

val add_admit_hook : t -> (Update_msg.t -> unit) -> unit
(** Observe the admitted update stream: [h] is called once per message
    the exactly-once sequencer admits into any route's UMQ (post-dedup,
    in per-source order), at the instant of admission.  Hooks run in
    install order and must not mutate engine state.  No hooks are
    installed by default, so runs without one are byte-identical to the
    historical behaviour.  This is how the self-maintenance tier rides
    the delivered stream for free. *)

val net_msgs_lost : t -> int
(** Transmissions dropped by the channel(s), summed across routes. *)

val net_msgs_duplicated : t -> int
(** Duplicate transmissions injected by the channel(s), summed. *)

val umq_dups_dropped : t -> int
(** Copies discarded by the exactly-once sequencer(s), summed. *)

val umq_reorders_healed : t -> int
(** Out-of-order deliveries healed by the sequencer(s), summed. *)

val obs : t -> Dyno_obs.Obs.t
(** The observability handle (see {!create}). *)

val net_timeouts : t -> int
(** Probe attempts that got no answer within the timeout. *)

val net_retries : t -> int
(** Probe attempts re-sent after backoff. *)

val net_wait : t -> float
(** Simulated seconds spent on timeouts, backoff and recovery waits. *)

val deliver_due : t -> unit
(** Apply every source commit scheduled at or before the current simulated
    time, send its message down the channel, and run every arrived copy
    through the UMQ sequencer. *)

val advance : t -> float -> unit
(** Spend simulated seconds of view-manager work, delivering any source
    commits that happen meanwhile. *)

val idle_until : t -> float -> unit
(** Sit idle until an absolute time (the no-concurrency baselines). *)

val next_wakeup : t -> float option
(** Next instant at which something happens without the view manager
    doing anything: a future commit or an in-flight message arrival. *)

(** How a maintenance query can fail: [Broken] is the paper's broken
    query (schema conflict, abort into VS/VA); [Unreachable] is a
    transient transport failure (retry budget exhausted — wait and retry
    the maintenance step, no abort). *)
type failure =
  | Broken of Dyno_source.Data_source.broken
  | Unreachable of Dyno_net.Retry.unreachable

val pp_failure : Format.formatter -> failure -> unit

val execute :
  t ->
  Query.t ->
  bound:(string * Relation.t) list ->
  target:string ->
  (Dyno_source.Data_source.answer, failure) result
(** Run one maintenance-query probe against a source.  Round-trip latency
    and scan cost elapse (with commit delivery) {e before} the answer is
    computed; the probed source's in-flight update messages are flushed
    into the UMQ with it (FIFO-stream semantics), so the caller's
    compensation frontier matches the answer exactly; result-transfer time
    elapses after it {e without} delivery.  A schema conflict yields
    [Error (Broken _)] and raises the broken-query flag; a lost probe is
    retried per the policy and yields [Error (Unreachable _)] when the
    budget is exhausted. *)

val execute_timed :
  t ->
  Query.t ->
  bound:(string * Relation.t) list ->
  target:string ->
  (Dyno_source.Data_source.answer * float, failure) result
(** Like {!execute}, but also returns the simulated time at which the
    source computed the answer (before the result transfer).  Under
    concurrent maintenance, other tasks may deliver further commits
    while this task parks on the result transfer; a compensation
    frontier must only include pending updates committed at or before
    the returned instant. *)

val validate : t -> Query.t -> target:string -> (unit, failure) result
(** Lightweight metadata check against a source's current catalog: one
    round trip, no scan.  Adaptation interleaves these with its
    computation so late-arriving schema changes are detected in-exec.
    Subject to the same retry policy as {!execute}. *)

val await_recovery : t -> source:string -> float
(** After an [Unreachable] verdict: wait out the source's outage window
    (or one retry-timeout as a cool-down), delivering commits meanwhile;
    returns the simulated seconds waited. *)

val source_relation : t -> source:string -> rel:string -> Relation.t option
(** Direct read of a source's current relation (oracles, initialization —
    not charged). *)

val pending_dus :
  t -> source:string -> rel:string -> (Update_msg.t * Update.t) list
(** Concurrent data updates currently pending in the UMQ against a
    relation — the information compensation needs (delegates to
    {!Umq.pending_dus}). *)
