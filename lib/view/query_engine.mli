(** The query engine and simulated world: ties together the clock, the
    timeline of future autonomous commits, the source registry and the
    UMQ.  Implements the paper's Figure 7 processes — the UMQ manager
    (deliver commits, set the schema-change flag) and the query engine
    with in-exec broken-query detection — with Definition 2's interleaving
    semantics: every commit falling before a query is answered is applied
    first. *)

open Dyno_relational
open Dyno_sim

type t

val create :
  ?trace:Trace.t ->
  ?planner:Eval.plan ->
  cost:Cost_model.t ->
  registry:Dyno_source.Registry.t ->
  timeline:Timeline.t ->
  umq:Umq.t ->
  unit ->
  t
(** [planner] (default [`Indexed]) is the physical plan every maintenance
    query and compensation evaluation through this engine runs with; tests
    pass [`Nested_loop] to pin the reference plan. *)

val now : t -> float

val planner : t -> Eval.plan
(** The engine's physical plan choice (see {!create}). *)

val timeline : t -> Timeline.t
val clock : t -> Clock.t
val trace : t -> Trace.t
val umq : t -> Umq.t
val registry : t -> Dyno_source.Registry.t
val cost : t -> Cost_model.t

val deliver_due : t -> unit
(** Apply every source commit scheduled at or before the current simulated
    time, enqueuing the corresponding messages. *)

val advance : t -> float -> unit
(** Spend simulated seconds of view-manager work, delivering any source
    commits that happen meanwhile. *)

val idle_until : t -> float -> unit
(** Sit idle until an absolute time (the no-concurrency baselines). *)

val execute :
  t ->
  Query.t ->
  bound:(string * Relation.t) list ->
  target:string ->
  (Dyno_source.Data_source.answer, Dyno_source.Data_source.broken) result
(** Run one maintenance-query probe against a source.  Round-trip latency
    and scan cost elapse (with commit delivery) {e before} the answer is
    computed; result-transfer time elapses after it {e without} delivery,
    so the caller's compensation frontier matches the answer exactly.  A
    schema conflict yields [Error] and raises the broken-query flag. *)

val validate :
  t -> Query.t -> target:string -> (unit, Dyno_source.Data_source.broken) result
(** Lightweight metadata check against a source's current catalog: one
    round trip, no scan.  Adaptation interleaves these with its
    computation so late-arriving schema changes are detected in-exec. *)

val source_relation : t -> source:string -> rel:string -> Relation.t option
(** Direct read of a source's current relation (oracles, initialization —
    not charged). *)

val pending_dus :
  t -> source:string -> rel:string -> (Update_msg.t * Update.t) list
(** Concurrent data updates currently pending in the UMQ against a
    relation — the information compensation needs (delegates to
    {!Umq.pending_dus}). *)
