(** The Update Message Queue (UMQ): buffers update messages in arrival
    order; Dyno's correction may {e reorder} it and may {e merge}
    cyclically-dependent messages into batch entries maintained
    atomically.  Also carries the two global flags of the paper's
    Figures 6/7: the schema-change flag (set on SC arrival, consumed
    test-and-set by the Dyno loop) and the broken-query flag (set by the
    query engine's in-exec detection). *)

type entry =
  | Single of Update_msg.t
  | Batch of Update_msg.t list
      (** merged cyclic updates, in their internal legal (commit) order *)

val entry_messages : entry -> Update_msg.t list
val entry_ids : entry -> int list
val entry_has_sc : entry -> bool
val pp_entry : Format.formatter -> entry -> unit

type t

val create : ?ids:int ref -> unit -> t
(** [create ?ids ()] — [ids] is the message-id counter to draw from
    (fresh by default).
    Sharded worlds pass one shared counter to every shard's queue so
    message ids stay globally unique — exclusion sets, the consistency
    checker's message index and the cross-shard commit order all key on
    them — and double as a global arrival order. *)

val is_empty : t -> bool
val length : t -> int
val entries : t -> entry list

val messages : t -> Update_msg.t list
(** All queued messages, in queue order. *)

val total_enqueued : t -> int

val enqueue :
  t -> commit_time:float -> source_version:int -> Update_msg.payload ->
  Update_msg.t
(** Append a new message, assigning its id; sets the schema-change flag
    for SCs (the UMQ manager of Figure 7). *)

val history : t -> Update_msg.t list
(** Every message ever enqueued, in arrival order (audit / consistency
    checking). *)

(** {1 Exactly-once sequencer}

    Restores the per-source FIFO discipline that SWEEP compensation and
    dependency-graph construction assume when the transport may deliver
    late, twice, or out of order: messages are admitted strictly in
    per-source sequence order, duplicates dropped, early arrivals held
    until the gap before them fills. *)

val ensure_source : t -> source:string -> first_seq:int -> unit
(** Register the first sequence number [source] will ever send, if not
    already known.  Must be called no later than the source's first
    commit, which precedes any delivery. *)

type delivery =
  | Admitted of Update_msg.t list
      (** the message (and any held successors it released), enqueued in
          sequence order *)
  | Duplicate  (** already admitted or already held — dropped *)
  | Held  (** arrived ahead of a gap — buffered until the gap fills *)

val deliver :
  t ->
  source:string ->
  seq:int ->
  commit_time:float ->
  source_version:int ->
  Update_msg.payload ->
  delivery
(** Run one arriving copy through the sequencer. *)

val dups_dropped : t -> int
val reorders_healed : t -> int
val held_count : t -> int

val pending_dus :
  t -> source:string -> rel:string -> (Update_msg.t * Dyno_relational.Update.t) list
(** Queued, unmaintained data updates on [rel@source] in commit order —
    the indexed hot lookup of SWEEP compensation. *)

val head : t -> entry option
val remove_head : t -> unit

val remove_entry : t -> entry -> unit
(** Remove the first queued entry carrying exactly the given entry's
    message-id set, wherever it sits — a parallel round maintains an
    antichain of entries that need not be a queue prefix.  No-op when
    absent. *)

val replace : t -> entry list -> unit
(** Install a corrected (reordered / merged) queue.  The multiset of
    message ids must be preserved — correction may neither drop nor invent
    updates (sources cannot abort).
    @raise Invalid_argument otherwise. *)

(** {1 Flags (Figure 6/7 protocol)} *)

val set_schema_change_flag : t -> unit

val test_and_clear_schema_change_flag : t -> bool
(** [Test_If_True_Set_False]. *)

val peek_schema_change_flag : t -> bool
val set_broken_query_flag : t -> unit
val clear_broken_query_flag : t -> unit
val broken_query_flag : t -> bool

val pp : Format.formatter -> t -> unit
