(** Update messages: what the wrappers deliver into the Update Message
    Queue.

    Each message wraps one autonomous source commit — a data update or a
    schema change — together with the commit time and the source version
    it produced.  The id is assigned by the UMQ manager at enqueue time and
    identifies the corresponding maintenance process in the dependency
    graph. *)

open Dyno_relational

type payload = Du of Update.t | Sc of Schema_change.t

type t = {
  id : int;  (** unique, in arrival order *)
  commit_time : float;  (** when the source committed it *)
  source_version : int;  (** source version right after this commit *)
  seq : int;
      (** per-source monotone sequence number stamped by the wrapper —
          the transport layer's dedup/reorder key.  Equals
          [source_version] under the one-commit-one-message discipline. *)
  payload : payload;
}

let make ?seq ~id ~commit_time ~source_version payload =
  let seq = Option.value ~default:source_version seq in
  { id; commit_time; source_version; seq; payload }

let id m = m.id
let commit_time m = m.commit_time
let source_version m = m.source_version
let seq m = m.seq
let payload m = m.payload

let source m =
  match m.payload with
  | Du u -> Update.source u
  | Sc sc -> Schema_change.source sc

(** Relation targeted, under its name at commit time. *)
let rel m =
  match m.payload with
  | Du u -> Update.rel u
  | Sc sc -> Schema_change.rel sc

let is_sc m = match m.payload with Sc _ -> true | Du _ -> false
let is_du m = match m.payload with Du _ -> true | Sc _ -> false

let as_du m = match m.payload with Du u -> Some u | Sc _ -> None
let as_sc m = match m.payload with Sc sc -> Some sc | Du _ -> None

let of_event ?seq ~id ~commit_time ~source_version
    (ev : Dyno_sim.Timeline.event) =
  let payload =
    match ev with
    | Dyno_sim.Timeline.Du u -> Du u
    | Dyno_sim.Timeline.Sc sc -> Sc sc
  in
  make ?seq ~id ~commit_time ~source_version payload

let pp ppf m =
  match m.payload with
  | Du u ->
      Fmt.pf ppf "#%d@%.3fs DU(%s@%s, %d tuples)" m.id m.commit_time
        (Update.rel u) (Update.source u) (Update.size u)
  | Sc sc -> Fmt.pf ppf "#%d@%.3fs SC(%a)" m.id m.commit_time Schema_change.pp sc

let to_string m = Fmt.str "%a" pp m
