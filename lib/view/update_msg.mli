(** Update messages: what the wrappers deliver into the UMQ.  Each wraps
    one autonomous source commit together with the commit time and the
    source version it produced; the id (assigned at enqueue) identifies
    the corresponding maintenance process in the dependency graph. *)

open Dyno_relational

type payload = Du of Update.t | Sc of Schema_change.t

type t

val make :
  ?seq:int -> id:int -> commit_time:float -> source_version:int -> payload -> t
(** [seq] — per-source monotone sequence number stamped by the wrapper
    (dedup/reorder key); defaults to [source_version]. *)

val id : t -> int
val commit_time : t -> float
val source_version : t -> int
val seq : t -> int
val payload : t -> payload
val source : t -> string

val rel : t -> string
(** Relation targeted, under its name at commit time. *)

val is_sc : t -> bool
val is_du : t -> bool
val as_du : t -> Update.t option
val as_sc : t -> Schema_change.t option

val of_event :
  ?seq:int ->
  id:int ->
  commit_time:float ->
  source_version:int ->
  Dyno_sim.Timeline.event ->
  t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
