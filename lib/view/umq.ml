(** The Update Message Queue (UMQ).

    Buffers update messages from the wrappers in arrival order; Dyno's
    correction step may {e reorder} it (that is the whole point of DYnamic
    reOrdering) and may {e merge} cyclically-dependent messages into batch
    entries that are maintained atomically.

    The queue also carries the two global flags of Figure 6/7:
    [new_schema_change] (set by the UMQ manager when an SC arrives, consumed
    test-and-set by the Dyno loop) and [broken_query] (set by the query
    engine's in-exec detection). *)

type entry =
  | Single of Update_msg.t
  | Batch of Update_msg.t list
      (** merged cyclic updates, in their internal legal (commit) order *)

let entry_messages = function Single m -> [ m ] | Batch ms -> ms

let entry_ids e = List.map Update_msg.id (entry_messages e)

let entry_has_sc e = List.exists Update_msg.is_sc (entry_messages e)

let pp_entry ppf = function
  | Single m -> Update_msg.pp ppf m
  | Batch ms ->
      Fmt.pf ppf "BATCH{%a}" Fmt.(list ~sep:(any "; ") Update_msg.pp) ms

type t = {
  mutable front : entry list;  (** head first *)
  mutable back : entry list;
      (** tail, newest first — appended O(1); the logical queue is
          [front @ List.rev back].  A million-update backlog (the scale
          bench) would otherwise pay O(n) per enqueue. *)
  mutable n_entries : int;
  ids : int ref;
      (** message-id counter.  Sharded worlds pass one shared counter to
          every shard's queue so ids stay globally unique (exclusion sets,
          the consistency checker's message index and the cross-shard
          commit order all key on them) and double as a global arrival
          order. *)
  mutable new_schema_change : bool;
  mutable broken_query : bool;
  mutable total_enqueued : int;
  mutable history : Update_msg.t list;
      (** every message ever enqueued, newest first (audit/consistency) *)
  du_index : (string * string, Update_msg.t list) Hashtbl.t;
      (** (source, rel) → queued DU messages, newest first — the hot
          lookup of SWEEP compensation, kept incremental so probing does
          not scan the whole queue *)
  expected : (string, int) Hashtbl.t;
      (** per-source sequencer: next sequence number to admit *)
  held : (string, (int * (float * int * Update_msg.payload)) list) Hashtbl.t;
      (** per-source hold buffer for messages that arrived ahead of a gap:
          seq → (commit_time, source_version, payload), unsorted, small *)
  mutable dups_dropped : int;
  mutable reorders_healed : int;
}

let create ?ids () =
  {
    front = [];
    back = [];
    n_entries = 0;
    ids = (match ids with Some r -> r | None -> ref 0);
    new_schema_change = false;
    broken_query = false;
    total_enqueued = 0;
    history = [];
    du_index = Hashtbl.create 16;
    expected = Hashtbl.create 8;
    held = Hashtbl.create 8;
    dups_dropped = 0;
    reorders_healed = 0;
  }

(* Merge the back buffer into the front list.  Amortized O(1) per
   enqueued entry when the front is drained before forcing (the scheduler
   hot paths only read the queue's prefix); full-queue readers (detection,
   correction, pretty-printing) pay the concatenation. *)
let force_all q =
  if q.back <> [] then begin
    q.front <- q.front @ List.rev q.back;
    q.back <- []
  end

let index_key m =
  (Update_msg.source m, Update_msg.rel m)

let index_add q m =
  if Update_msg.is_du m then begin
    let k = index_key m in
    let prev = Option.value ~default:[] (Hashtbl.find_opt q.du_index k) in
    Hashtbl.replace q.du_index k (m :: prev)
  end

let index_remove q m =
  if Update_msg.is_du m then begin
    let k = index_key m in
    match Hashtbl.find_opt q.du_index k with
    | None -> ()
    | Some l ->
        let l' =
          List.filter (fun x -> Update_msg.id x <> Update_msg.id m) l
        in
        if l' = [] then Hashtbl.remove q.du_index k
        else Hashtbl.replace q.du_index k l'
  end

let is_empty q = q.front = [] && q.back = []
let length q = q.n_entries

let entries q =
  force_all q;
  q.front

(** All messages currently queued, in queue order. *)
let messages q = List.concat_map entry_messages (entries q)

let total_enqueued q = q.total_enqueued

(** [enqueue q ~commit_time ~source_version payload] appends a new message,
    assigning its id; sets the schema-change flag for SCs (the UMQ manager
    of Figure 7). *)
let enqueue q ~commit_time ~source_version payload =
  let m =
    Update_msg.make ~id:!(q.ids) ~commit_time ~source_version payload
  in
  incr q.ids;
  q.total_enqueued <- q.total_enqueued + 1;
  q.back <- Single m :: q.back;
  q.n_entries <- q.n_entries + 1;
  q.history <- m :: q.history;
  index_add q m;
  if Update_msg.is_sc m then q.new_schema_change <- true;
  m

(** {2 Exactly-once sequencer}

    The transport layer may deliver a wrapper's messages late, twice, or
    out of order.  The UMQ manager restores the per-source FIFO discipline
    that SWEEP compensation and dependency-graph construction assume:
    every source message carries a monotone sequence number; the queue
    admits them strictly in sequence, dropping duplicates and holding
    early arrivals until the gap before them fills. *)

let dups_dropped q = q.dups_dropped
let reorders_healed q = q.reorders_healed

(** Queued-ahead-of-a-gap message count (diagnostic). *)
let held_count q = Hashtbl.fold (fun _ l acc -> acc + List.length l) q.held 0

(** [ensure_source q ~source ~first_seq] registers the first sequence
    number ever sent by [source], if not already known.  Called by the
    engine at the source's first commit — which necessarily precedes any
    delivery — so a reordered first message cannot be mistaken for being
    in-sequence. *)
let ensure_source q ~source ~first_seq =
  if not (Hashtbl.mem q.expected source) then
    Hashtbl.replace q.expected source first_seq

type delivery =
  | Admitted of Update_msg.t list
      (** the message (and any held successors it released), enqueued in
          sequence order *)
  | Duplicate  (** already admitted or already held — dropped *)
  | Held  (** arrived ahead of a gap — buffered until the gap fills *)

(** [deliver q ~source ~seq ~commit_time ~source_version payload] runs one
    arriving copy through the sequencer. *)
let deliver q ~source ~seq ~commit_time ~source_version payload =
  ensure_source q ~source ~first_seq:seq;
  let expected = Hashtbl.find q.expected source in
  if seq < expected then begin
    q.dups_dropped <- q.dups_dropped + 1;
    Duplicate
  end
  else if seq > expected then begin
    let buf = Option.value ~default:[] (Hashtbl.find_opt q.held source) in
    if List.mem_assoc seq buf then begin
      q.dups_dropped <- q.dups_dropped + 1;
      Duplicate
    end
    else begin
      Hashtbl.replace q.held source
        ((seq, (commit_time, source_version, payload)) :: buf);
      Held
    end
  end
  else begin
    let first = enqueue q ~commit_time ~source_version payload in
    Hashtbl.replace q.expected source (seq + 1);
    (* Drain the hold buffer: every consecutive successor is released. *)
    let rec drain acc =
      let next = Hashtbl.find q.expected source in
      let buf = Option.value ~default:[] (Hashtbl.find_opt q.held source) in
      match List.assoc_opt next buf with
      | None -> List.rev acc
      | Some (ct, sv, pl) ->
          Hashtbl.replace q.held source (List.remove_assoc next buf);
          let m = enqueue q ~commit_time:ct ~source_version:sv pl in
          Hashtbl.replace q.expected source (next + 1);
          q.reorders_healed <- q.reorders_healed + 1;
          drain (m :: acc)
    in
    Admitted (first :: drain [])
  end

(** [pending_dus q ~source ~rel] — queued, unmaintained data updates on
    [rel@source], in commit order. *)
let pending_dus q ~source ~rel =
  match Hashtbl.find_opt q.du_index (source, rel) with
  | None -> []
  | Some l ->
      List.rev_map
        (fun m ->
          match Update_msg.as_du m with
          | Some u -> (m, u)
          | None -> assert false)
        l

(** Every message ever enqueued, in arrival order. *)
let history q = List.rev q.history

let head q =
  if q.front = [] then force_all q;
  match q.front with [] -> None | e :: _ -> Some e

let remove_head q =
  if q.front = [] then force_all q;
  match q.front with
  | [] -> ()
  | e :: rest ->
      List.iter (index_remove q) (entry_messages e);
      q.front <- rest;
      q.n_entries <- q.n_entries - 1

(** [remove_entry q e] removes the first queued entry carrying exactly
    [e]'s message-id set, wherever it sits — a parallel round maintains
    an antichain of entries that need not be a queue prefix.  No-op when
    absent. *)
let remove_entry q e =
  let target = List.sort compare (entry_ids e) in
  let removed = ref false in
  let rec go = function
    | [] -> []
    | e' :: rest ->
        if (not !removed) && List.sort compare (entry_ids e') = target
        then begin
          removed := true;
          List.iter (index_remove q) (entry_messages e');
          rest
        end
        else e' :: go rest
  in
  q.front <- go q.front;
  if not !removed then q.back <- List.rev (go (List.rev q.back));
  if !removed then q.n_entries <- q.n_entries - 1

(** [replace q entries] installs a corrected (reordered / merged) queue.
    The multiset of message ids must be preserved — correction may neither
    drop nor invent updates (sources cannot abort).
    @raise Invalid_argument otherwise. *)
let replace q new_entries =
  let ids es = List.sort compare (List.concat_map entry_ids es) in
  if ids new_entries <> ids (entries q) then
    invalid_arg "Umq.replace: correction must preserve the set of updates";
  q.front <- new_entries;
  q.back <- [];
  q.n_entries <- List.length new_entries

(* Flag protocol of Figure 6 (atomic in the paper; the simulation is
   single-threaded so plain reads/writes suffice). *)

let set_schema_change_flag q = q.new_schema_change <- true

(** Test-and-clear, as in [Test_If_True_Set_False]. *)
let test_and_clear_schema_change_flag q =
  let v = q.new_schema_change in
  q.new_schema_change <- false;
  v

let peek_schema_change_flag q = q.new_schema_change

let set_broken_query_flag q = q.broken_query <- true
let clear_broken_query_flag q = q.broken_query <- false
let broken_query_flag q = q.broken_query

let pp ppf q =
  Fmt.pf ppf "@[<v>UMQ (%d entries)%s%s:@,%a@]" (length q)
    (if q.new_schema_change then " [SC-flag]" else "")
    (if q.broken_query then " [broken-flag]" else "")
    Fmt.(list ~sep:cut pp_entry)
    (entries q)
