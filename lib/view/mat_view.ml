(** The materialized view: extent storage plus a commit log.

    Every successful maintenance process ends with w(MV) c(MV): the extent
    is updated and a commit record appended.  When [track_snapshots] is on
    (tests, consistency checking), each commit also stores a full copy of
    the extent so that strong consistency can be verified offline. *)

open Dyno_relational

type commit = {
  at : float;  (** simulated commit time *)
  def_version : int;  (** view-definition version the commit was built on *)
  maintained : int list;  (** update-message ids integrated by this commit *)
  snapshot : Relation.t option;
  def_snapshot : (Query.t * (string * Schema.t) list) option;
      (** definition + believed schemas at commit time (when tracking) *)
}

type t = {
  def : View_def.t;
  mutable extent : Relation.t;
  mutable commits : commit list;  (** newest first *)
  track_snapshots : bool;
  applied : (string, int * float) Hashtbl.t;
      (** applied frontier: per source, the highest source version this
          view has integrated (or trivially reflects) and the simulated
          time of that source commit.  Written by the schedulers'
          freshness tracker, read by staleness probes and [dyno report]. *)
}

let create ?(track_snapshots = false) def extent =
  { def; extent; commits = []; track_snapshots; applied = Hashtbl.create 8 }

let def v = v.def
let extent v = v.extent
let cardinality v = Relation.cardinality v.extent

let commit_count v = List.length v.commits

(** Commits in chronological order. *)
let commits v = List.rev v.commits

let record_commit v ~at ~maintained =
  v.commits <-
    {
      at;
      def_version = View_def.version v.def;
      maintained;
      snapshot = (if v.track_snapshots then Some (Relation.copy v.extent) else None);
      def_snapshot =
        (if v.track_snapshots then
           Some (View_def.peek v.def, View_def.schemas v.def)
         else None);
    }
    :: v.commits

(** [refresh v ~at ~maintained delta] applies a signed delta to the extent
    and commits — the w(MV) c(MV) of a VM process.
    @raise Invalid_argument if the delta drives a multiplicity negative
    (a maintenance bug; tests rely on this tripwire). *)
let refresh v ~at ~maintained delta =
  v.extent <- Relation.apply_delta v.extent delta;
  record_commit v ~at ~maintained

(** [replace v ~at ~maintained extent] installs a whole new extent — used
    by view adaptation when the definition itself changed shape. *)
let replace v ~at ~maintained extent =
  v.extent <- extent;
  record_commit v ~at ~maintained

(** [note_applied v ~source ~version ~commit_time] advances the applied
    frontier for [source] (monotone: a stale redelivery never moves it
    backwards). *)
let note_applied v ~source ~version ~commit_time =
  match Hashtbl.find_opt v.applied source with
  | Some (have, _) when have >= version -> ()
  | _ -> Hashtbl.replace v.applied source (version, commit_time)

(** [applied_version v source] — highest integrated version of [source],
    if any update from it was ever applied. *)
let applied_version v source =
  Option.map fst (Hashtbl.find_opt v.applied source)

(** The whole applied frontier, sorted by source id:
    [(source, (version, commit_time))]. *)
let applied_frontier v =
  Hashtbl.fold (fun src f acc -> (src, f) :: acc) v.applied []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf v =
  Fmt.pf ppf "@[<v>%a@,extent: %d tuples, %d commits@]" View_def.pp v.def
    (Relation.cardinality v.extent)
    (commit_count v)
