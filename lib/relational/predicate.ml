(** Conjunctive predicates over (possibly qualified) attribute references.

    A predicate is a conjunction of comparison atoms; each operand is either
    an attribute reference or a constant.  This covers the SPJ view class
    the paper works with (equality joins plus constant filters, as in
    Queries 1–5). *)

type op = Eq | Ne | Lt | Le | Gt | Ge

type operand = Ref of Attr.Qualified.t | Const of Value.t

type atom = { lhs : operand; op : op; rhs : operand }

(** Conjunction of atoms; [[]] is TRUE. *)
type t = atom list

let op_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_operand ppf = function
  | Ref q -> Attr.Qualified.pp ppf q
  | Const v -> Value.pp ppf v

let pp_atom ppf a =
  Fmt.pf ppf "%a %s %a" pp_operand a.lhs (op_to_string a.op) pp_operand a.rhs

let pp ppf (p : t) =
  match p with
  | [] -> Fmt.string ppf "TRUE"
  | _ -> Fmt.(list ~sep:(any " AND ") pp_atom) ppf p

let to_string p = Fmt.str "%a" pp p

(* Convenience constructors. *)
let atom lhs op rhs = { lhs; op; rhs }

let eq_attr a b =
  atom (Ref (Attr.Qualified.of_string a)) Eq (Ref (Attr.Qualified.of_string b))

let eq_const a v = atom (Ref (Attr.Qualified.of_string a)) Eq (Const v)

let cmp a op v = atom (Ref (Attr.Qualified.of_string a)) op (Const v)

let apply_op op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(** [refs p] is every attribute reference occurring in [p]. *)
let refs (p : t) =
  List.concat_map
    (fun a ->
      let one = function Ref q -> [ q ] | Const _ -> [] in
      one a.lhs @ one a.rhs)
    p

(** [eval_atom resolve a tup]: [resolve] maps a qualified reference to a
    position in [tup].
    @raise Not_found if [resolve] fails (caller turns that into a
    broken-query error with context). *)
let eval_atom resolve a (tup : Tuple.t) =
  let value = function
    | Const v -> v
    | Ref q -> Tuple.get tup (resolve q)
  in
  apply_op a.op (Value.compare (value a.lhs) (value a.rhs))

let eval resolve (p : t) tup = List.for_all (fun a -> eval_atom resolve a tup) p

(** [compile resolve p] resolves every attribute reference to its tuple
    position ONCE and returns a closure evaluating the conjunction with
    pure array indexing — no per-tuple name resolution.  Semantically
    identical to [eval resolve p], including raising whatever [resolve]
    raises, except resolution failures surface at compile time instead
    of on the first tuple.  The hot inner loops of {!Eval.run} call the
    compiled form; per-tuple [eval] remains for one-off checks. *)
let compile resolve (p : t) =
  let compiled =
    Array.of_list
      (List.map
         (fun a ->
           let pos = function
             | Const v -> Error v
             | Ref q -> Ok (resolve q)
           in
           (pos a.lhs, a.op, pos a.rhs))
         p)
  in
  let value tup = function Error v -> v | Ok i -> Tuple.get tup i in
  fun (tup : Tuple.t) ->
    let n = Array.length compiled in
    let rec go i =
      i >= n
      ||
      let l, op, r = compiled.(i) in
      apply_op op (Value.compare (value tup l) (value tup r)) && go (i + 1)
    in
    go 0

(** [map_refs f p] rewrites every attribute reference (used by view
    synchronization to apply renamings). *)
let map_refs f (p : t) : t =
  List.map
    (fun a ->
      let one = function Ref q -> Ref (f q) | Const _ as c -> c in
      { a with lhs = one a.lhs; rhs = one a.rhs })
    p

(** [partition_by_alias aliases p] splits the conjunction into (per-alias
    local atoms, multi-alias join atoms).  [owner q] must return the alias
    an unqualified reference resolves to. *)
let partition_by_alias owner (p : t) =
  let alias_of = function
    | Const _ -> None
    | Ref q -> Some (match Attr.Qualified.rel q with Some r -> r | None -> owner q)
  in
  List.partition
    (fun a ->
      match (alias_of a.lhs, alias_of a.rhs) with
      | Some x, Some y -> String.equal x y
      | _ -> true)
    p

(** Atoms of the shape [R.a = S.b] with distinct aliases — the equi-join
    conditions a hash join can use. *)
let equijoin_pairs owner (p : t) =
  List.filter_map
    (fun a ->
      match (a.op, a.lhs, a.rhs) with
      | Eq, Ref x, Ref y ->
          let ax = match Attr.Qualified.rel x with Some r -> r | None -> owner x in
          let ay = match Attr.Qualified.rel y with Some r -> r | None -> owner y in
          if String.equal ax ay then None else Some ((ax, x), (ay, y))
      | _ -> None)
    p
