(** Secondary hash indexes over signed multisets.

    An index maps a {e key} — the projection of a tuple onto a fixed set of
    column positions — to the bucket of tuples currently sharing that key,
    each with its signed multiplicity.  Buckets are hash tables themselves,
    so maintenance under multiplicity changes is O(1) per changed tuple and
    a lookup is O(bucket).

    Indexes are position-based, not name-based: a rename of an attribute
    leaves every index valid, and {!Relation} can register indexes against
    its own storage and keep them fresh from [Relation.add] — the
    incremental maintenance that makes repeated maintenance probes against
    a large, slowly-changing extent cheap (build once, probe forever). *)

type t = {
  positions : int array;  (** key columns, in key order *)
  buckets : int Tuple.Table.t Tuple.Table.t;
      (** key -> (tuple -> non-zero multiplicity) *)
}

let create positions = { positions = Array.copy positions; buckets = Tuple.Table.create 64 }

let positions ix = ix.positions

(** [same_key ix positions] — does [ix] index exactly these columns? *)
let same_key ix ps =
  Array.length ix.positions = Array.length ps
  && (let ok = ref true in
      Array.iteri (fun i p -> if p <> ps.(i) then ok := false) ix.positions;
      !ok)

let key_of ix tup = Tuple.project_idx tup ix.positions

(** [update ix tup k] adjusts the indexed multiplicity of [tup] by [k],
    dropping entries (and empty buckets) at zero — mirror of
    [Relation.add]. *)
let update ix tup k =
  if k <> 0 then begin
    let key = key_of ix tup in
    let bucket =
      match Tuple.Table.find_opt ix.buckets key with
      | Some b -> b
      | None ->
          let b = Tuple.Table.create 4 in
          Tuple.Table.replace ix.buckets key b;
          b
    in
    let c = k + Option.value ~default:0 (Tuple.Table.find_opt bucket tup) in
    if c = 0 then begin
      Tuple.Table.remove bucket tup;
      if Tuple.Table.length bucket = 0 then Tuple.Table.remove ix.buckets key
    end
    else Tuple.Table.replace bucket tup c
  end

(** [iter_matches ix key f] streams every (tuple, multiplicity) whose key
    projection equals [key] — the probe side of an indexed join. *)
let iter_matches ix key f =
  match Tuple.Table.find_opt ix.buckets key with
  | None -> ()
  | Some bucket -> Tuple.Table.iter f bucket

(** [lookup ix key] — snapshot of the matching bucket (unspecified order). *)
let lookup ix key =
  match Tuple.Table.find_opt ix.buckets key with
  | None -> []
  | Some bucket -> Tuple.Table.fold (fun t c acc -> (t, c) :: acc) bucket []

(** Number of distinct keys currently indexed. *)
let key_count ix = Tuple.Table.length ix.buckets

(** Number of distinct tuples across all buckets. *)
let support ix =
  Tuple.Table.fold (fun _ b acc -> acc + Tuple.Table.length b) ix.buckets 0

let pp ppf ix =
  Fmt.pf ppf "index on columns (%a): %d key(s), %d tuple(s)"
    Fmt.(array ~sep:(any ",") int)
    ix.positions (key_count ix) (support ix)
