(** Secondary hash indexes over signed multisets.

    An index maps a {e key} — the projection of a tuple onto a fixed set of
    column positions — to the bucket of tuples currently sharing that key,
    each with its signed multiplicity.  Buckets are compact association
    lists: real workloads have small buckets (a handful of tuples per key),
    and probing — the hot path of every indexed join — then streams a few
    cons cells instead of walking a nested hash table's slot array, which
    is what used to cost the indexed plan its lead over the ephemeral hash
    join.  Maintenance is O(bucket) per changed tuple, a lookup O(bucket).

    Indexes are position-based, not name-based: a rename of an attribute
    leaves every index valid, and {!Relation} can register indexes against
    its own storage and keep them fresh from [Relation.add] — the
    incremental maintenance that makes repeated maintenance probes against
    a large, slowly-changing extent cheap (build once, probe forever). *)

type t = {
  positions : int array;  (** key columns, in key order *)
  buckets : (Tuple.t * int) list Tuple.Table.t;
      (** key -> assoc of (tuple, non-zero multiplicity) *)
}

let create positions = { positions = Array.copy positions; buckets = Tuple.Table.create 64 }

let positions ix = ix.positions

(** [same_key ix positions] — does [ix] index exactly these columns? *)
let same_key ix ps =
  Array.length ix.positions = Array.length ps
  && (let ok = ref true in
      Array.iteri (fun i p -> if p <> ps.(i) then ok := false) ix.positions;
      !ok)

let key_of ix tup = Tuple.project_idx tup ix.positions

(** [update ix tup k] adjusts the indexed multiplicity of [tup] by [k],
    dropping entries (and empty buckets) at zero — mirror of
    [Relation.add]. *)
let update ix tup k =
  if k <> 0 then begin
    let key = key_of ix tup in
    let bucket =
      Option.value ~default:[] (Tuple.Table.find_opt ix.buckets key)
    in
    let rec adjust = function
      | [] -> [ (tup, k) ]
      | (t, c) :: rest ->
          if Tuple.equal t tup then
            let c' = c + k in
            if c' = 0 then rest else (t, c') :: rest
          else (t, c) :: adjust rest
    in
    match adjust bucket with
    | [] -> Tuple.Table.remove ix.buckets key
    | b -> Tuple.Table.replace ix.buckets key b
  end

(** [iter_matches ix key f] streams every (tuple, multiplicity) whose key
    projection equals [key] — the probe side of an indexed join. *)
let iter_matches ix key f =
  match Tuple.Table.find_opt ix.buckets key with
  | None -> ()
  | Some bucket -> List.iter (fun (t, c) -> f t c) bucket

(** [lookup ix key] — snapshot of the matching bucket (unspecified order). *)
let lookup ix key =
  Option.value ~default:[] (Tuple.Table.find_opt ix.buckets key)

(** Number of distinct keys currently indexed. *)
let key_count ix = Tuple.Table.length ix.buckets

(** Number of distinct tuples across all buckets. *)
let support ix =
  Tuple.Table.fold (fun _ b acc -> acc + List.length b) ix.buckets 0

let pp ppf ix =
  Fmt.pf ppf "index on columns (%a): %d key(s), %d tuple(s)"
    Fmt.(array ~sep:(any ",") int)
    ix.positions (key_count ix) (support ix)
