(** Relations as {e signed multisets} of tuples, carrying their schema.

    Multiplicities may be negative: a relation with mixed signs represents a
    {e delta} (insertions with positive counts, deletions with negative
    counts), the uniform representation used throughout incremental view
    maintenance (Griffin–Libkin counting semantics).  All algebra operators
    ([select], [project], [join], [sum], [diff]) are linear in that
    representation, which is exactly what Equation 6 of the paper needs. *)

type t = {
  schema : Schema.t;
  data : int Tuple.Table.t; (* tuple -> non-zero signed multiplicity *)
  indexes : Index.t list ref;
      (* registered secondary indexes, kept fresh by [add].  A [ref] so
         that O(1) re-schemings ([rename_attr]) sharing [data] also share
         the registry — an index built through either alias stays fresh
         through both. *)
}

exception Schema_mismatch of string

let create schema =
  { schema; data = Tuple.Table.create 64; indexes = ref [] }

let schema r = r.schema

(** Number of distinct tuples (support size). *)
let support r = Tuple.Table.length r.data

(** Sum of multiplicities (can be negative for deltas). *)
let cardinality r = Tuple.Table.fold (fun _ c acc -> acc + c) r.data 0

(** Sum of absolute multiplicities. *)
let mass r = Tuple.Table.fold (fun _ c acc -> acc + abs c) r.data 0

let is_empty r = support r = 0

let count r tup = match Tuple.Table.find_opt r.data tup with
  | Some c -> c
  | None -> 0

let mem r tup = count r tup <> 0

(** [add_unchecked r tup k] — {!add} minus the schema typecheck, for
    output tuples that are type-correct by construction (projections and
    concatenations of tuples already in a relation).  The hot loops of
    every physical join and of the algebra operators below run through
    it; external writers go through the checked {!add}. *)
let add_unchecked r tup k =
  if k <> 0 then begin
    let c = count r tup + k in
    if c = 0 then Tuple.Table.remove r.data tup
    else Tuple.Table.replace r.data tup c;
    List.iter (fun ix -> Index.update ix tup k) !(r.indexes)
  end

(** [add r tup k] adjusts the multiplicity of [tup] by [k], dropping the
    entry when it reaches zero.  Typechecks against the schema. *)
let add r tup k =
  if k <> 0 then begin
    if not (Schema.typecheck r.schema tup) then
      raise
        (Schema_mismatch
           (Fmt.str "tuple %a does not match schema %a" Tuple.pp tup Schema.pp
              r.schema));
    add_unchecked r tup k
  end

let insert r tup = add r tup 1
let delete r tup = add r tup (-1)

let of_list schema tuples =
  let r = create schema in
  List.iter (fun t -> insert r (Tuple.of_list t)) tuples;
  r

let of_counted schema pairs =
  let r = create schema in
  List.iter (fun (t, c) -> add r (Tuple.of_list t) c) pairs;
  r

let iter f r = Tuple.Table.iter f r.data
let fold f r acc = Tuple.Table.fold f r.data acc

let to_counted r =
  List.sort
    (fun (a, _) (b, _) -> Tuple.compare a b)
    (fold (fun t c acc -> (t, c) :: acc) r [])

let to_list r =
  List.concat_map
    (fun (t, c) -> if c > 0 then List.init c (fun _ -> t) else [])
    (to_counted r)

let copy r =
  (* Indexes are not copied: the copy starts with a fresh registry and
     rebuilds lazily on demand. *)
  { schema = r.schema; data = Tuple.Table.copy r.data; indexes = ref [] }

(* ------------------------------------------------------------------ *)
(* Secondary indexes                                                  *)
(* ------------------------------------------------------------------ *)

(* The find-or-build of [ensure_index_pos] is the one relational code
   path that MUTATES shared state from reader positions: the multicore
   backend evaluates sweeps over shared immutable snapshots on worker
   domains, and two workers probing the same base relation may race to
   build the same lazy index.  One global lock serializes registration
   (builds are rare — once per (relation, key) — so contention is nil);
   an index is registered only after its build scan completes, so a
   probe through a found index never observes a half-built table.
   Tuple data itself is never mutated during a parallel batch: commits
   are coordinator-only and strictly serial (DESIGN.md §17). *)
let index_registry_lock = Mutex.create ()

(** [ensure_index_pos r positions] returns the registered index keyed on
    exactly [positions], building (one O(n) scan) and registering it first
    if absent.  Once registered it is maintained incrementally by {!add}.
    Thread-safe: find-or-build is serialized across domains. *)
let ensure_index_pos r (positions : int array) =
  Mutex.protect index_registry_lock (fun () ->
      match
        List.find_opt (fun ix -> Index.same_key ix positions) !(r.indexes)
      with
      | Some ix -> ix
      | None ->
          let ix = Index.create positions in
          iter (fun t c -> Index.update ix t c) r;
          r.indexes := ix :: !(r.indexes);
          ix)

(** [find_index_pos r positions] — the registered index keyed on exactly
    [positions], if one has already been built: {!ensure_index_pos}
    without the build side effect, so a planner can ask "is there a
    maintained index?" without committing to one. *)
let find_index_pos r (positions : int array) =
  List.find_opt (fun ix -> Index.same_key ix positions) !(r.indexes)

(** [ensure_index r names] — {!ensure_index_pos} with the key given as
    attribute names resolved against the current schema. *)
let ensure_index r names =
  ensure_index_pos r
    (Array.of_list (List.map (Schema.index_of r.schema) names))

let index_count r = List.length !(r.indexes)

(** Multiset equality: same schema (by attribute equality) and identical
    multiplicity for every tuple. *)
let equal a b =
  Schema.equal a.schema b.schema
  && support a = support b
  && (try
        iter (fun t c -> if count b t <> c then raise Exit) a;
        true
      with Exit -> false)

(** Equality up to attribute names (positional contents only) — used when a
    rewritten view renames columns but preserves extent. *)
let equal_contents a b =
  Schema.arity a.schema = Schema.arity b.schema
  && support a = support b
  && (try
        iter (fun t c -> if count b t <> c then raise Exit) a;
        true
      with Exit -> false)

let pp ppf r =
  let rows = to_counted r in
  Fmt.pf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
    Fmt.(
      list ~sep:cut (fun ppf (t, c) ->
          if c = 1 then Tuple.pp ppf t else Fmt.pf ppf "%a x%d" Tuple.pp t c))
    rows

(* ------------------------------------------------------------------ *)
(* Algebra                                                            *)
(* ------------------------------------------------------------------ *)

(** [select p r] keeps tuples satisfying [p] (multiplicities preserved). *)
let select p r =
  let out = create r.schema in
  iter (fun t c -> if p t then add_unchecked out t c) r;
  out

(** [map_tuples schema' f r] applies a tuple transformation, re-aggregating
    multiplicities under the image (projection semantics on multisets). *)
let map_tuples schema' f r =
  let out = create schema' in
  iter (fun t c -> add_unchecked out (f t) c) r;
  out

(** [project r names] multiset projection onto [names] (in order). *)
let project r names =
  let idxs = Array.of_list (List.map (Schema.index_of r.schema) names) in
  let schema' = Schema.project r.schema names in
  map_tuples schema' (fun t -> Tuple.project_idx t idxs) r

(** [rename_attr r ~old_name ~new_name] renames a column (data unchanged). *)
let rename_attr r ~old_name ~new_name =
  let schema' = Schema.rename r.schema ~old_name ~new_name in
  { r with schema = schema' }

(** [sum a b] multiset union with signed multiplicities (a ⊎ b). *)
let sum a b =
  if not (Schema.equal a.schema b.schema) then
    raise
      (Schema_mismatch
         (Fmt.str "sum: %a vs %a" Schema.pp a.schema Schema.pp b.schema));
  let out = copy a in
  iter (fun t c -> add_unchecked out t c) b;
  out

(** [negate r] flips every multiplicity (turns insertions into deletions). *)
let negate r =
  let out = create r.schema in
  iter (fun t c -> add_unchecked out t (-c)) r;
  out

(** [diff a b] is [sum a (negate b)]. *)
let diff a b = sum a (negate b)

(** [positive r] / [negative r] split a delta into its insert/delete parts;
    [negative] returns the deletions with positive counts. *)
let positive r =
  let out = create r.schema in
  iter (fun t c -> if c > 0 then add_unchecked out t c) r;
  out

let negative r =
  let out = create r.schema in
  iter (fun t c -> if c < 0 then add_unchecked out t (-c)) r;
  out

(** [product a b] Cartesian product; output schema is [Schema.concat].
    Multiplicities multiply (counting semantics). *)
let product a b =
  let schema' = Schema.concat a.schema b.schema in
  let out = create schema' in
  iter
    (fun ta ca ->
      iter (fun tb cb -> add_unchecked out (Tuple.concat ta tb) (ca * cb)) b)
    a;
  out

(** [equijoin a b pairs] hash equi-join on [(left_attr, right_attr)] pairs.
    Output schema is [Schema.concat a b] (right-side clashes suffixed).
    The smaller side is hashed.  Works on signed multisets: output
    multiplicity is the product of input multiplicities. *)
let equijoin a b pairs =
  let la = List.map (fun (x, _) -> Schema.index_of a.schema x) pairs in
  let lb = List.map (fun (_, y) -> Schema.index_of b.schema y) pairs in
  let la = Array.of_list la and lb = Array.of_list lb in
  let schema' = Schema.concat a.schema b.schema in
  let out = create schema' in
  (* Hash the right side on its key; stream the left. *)
  let index = Tuple.Table.create (max 16 (support b)) in
  iter
    (fun tb cb ->
      let key = Tuple.project_idx tb lb in
      let prev = Option.value ~default:[] (Tuple.Table.find_opt index key) in
      Tuple.Table.replace index key ((tb, cb) :: prev))
    b;
  iter
    (fun ta ca ->
      let key = Tuple.project_idx ta la in
      match Tuple.Table.find_opt index key with
      | None -> ()
      | Some matches ->
          List.iter
            (fun (tb, cb) -> add_unchecked out (Tuple.concat ta tb) (ca * cb))
            matches)
    a;
  out

(** [distinct r] collapses positive multiplicities to 1 and drops negative
    ones (SQL [SELECT DISTINCT] over the positive support). *)
let distinct r =
  let out = create r.schema in
  iter (fun t c -> if c > 0 then add_unchecked out t 1) r;
  out

(** [scale k r] multiplies every multiplicity by [k]. *)
let scale k r =
  let out = create r.schema in
  if k <> 0 then iter (fun t c -> add_unchecked out t (k * c)) r;
  out

(** [is_subset a b]: every positive tuple of [a] occurs in [b] with at least
    the same multiplicity. *)
let is_subset a b =
  try
    iter (fun t c -> if c > 0 && count b t < c then raise Exit) a;
    true
  with Exit -> false

(** [min_zero r] clips negative multiplicities to zero — applying a delta to
    a materialized extent must never leave phantom negative tuples; a
    negative residue indicates a maintenance bug and is reported by
    {!apply_delta}. *)
let has_negative r =
  try
    iter (fun _ c -> if c < 0 then raise Exit) r;
    false
  with Exit -> true

(** [apply_delta base delta] = [sum base delta], checking that the result is
    a proper (non-negative) multiset.
    @raise Schema_mismatch on schema disagreement.
    @raise Invalid_argument on negative residue. *)
let apply_delta base delta =
  let r = sum base delta in
  if has_negative r then
    invalid_arg
      (Fmt.str "apply_delta: negative multiplicity in result (delta %a)"
         Schema.pp delta.schema);
  r

(** [apply_delta_in_place base delta] — same contract as {!apply_delta},
    but mutates [base]: O(|delta|) instead of O(|base|), and registered
    indexes on [base] stay alive and are maintained incrementally.  The
    non-negativity precheck runs before any mutation, so a rejected delta
    leaves [base] untouched. *)
let apply_delta_in_place base delta =
  if not (Schema.equal base.schema delta.schema) then
    raise
      (Schema_mismatch
         (Fmt.str "apply_delta_in_place: %a vs %a" Schema.pp base.schema
            Schema.pp delta.schema));
  iter
    (fun t c ->
      if count base t + c < 0 then
        invalid_arg
          (Fmt.str "apply_delta_in_place: negative multiplicity for %a"
             Tuple.pp t))
    delta;
  iter (fun t c -> add_unchecked base t c) delta
