(** SPJ query evaluation over signed-multiset relations: a left-deep join
    pipeline with selection push-down, residual predicates and final
    projection.  {!run} is the single entry point; the [?planner] argument
    picks the physical plan.  Also what each simulated source server runs
    locally to answer maintenance queries. *)

exception Error of string

(** Name-resolution context: aliases bound to relations, with original
    schemas kept (joined schemas may suffix-rename clashing columns, but
    positions are stable). *)
type binding = { alias : string; schema : Schema.t; offset : int }

type binder = {
  bindings : binding list;
  owner : Attr.Qualified.t -> string;
      (** owning alias of an unqualified reference *)
}

val make_binder : Query.t -> (string * Schema.t) list -> binder
(** @raise Error on unknown or ambiguous references. *)

val resolve : binder -> Attr.Qualified.t -> int
(** Absolute position of a reference in the join-product tuple. *)

val resolve_in_alias : binder -> string -> string -> int
(** Position of an attribute within a single bound relation. *)

(** {1 Physical operators} *)

val positional_join :
  ?project:Schema.t * (Tuple.t -> Tuple.t) ->
  Relation.t ->
  Relation.t ->
  (int * int) list ->
  Relation.t
(** Ephemeral hash join on (left position, right position) pairs; the
    smaller side is hashed, the table is discarded afterwards.  Output
    schema is [Schema.concat left right], unless [?project] supplies a
    (schema, transform) pair applied to each output tuple as it is
    emitted — the fused final projection of the query pipeline. *)

val nested_loop_join :
  Relation.t -> Relation.t -> (int * int) list -> Relation.t
(** O(n·m) compare-everything join — the reference plan.  Only matches are
    materialized, never the full product. *)

(** {1 The query entry point} *)

type plan = [ `Indexed | `Nested_loop ]
(** Physical plan choice.  [`Indexed]: equality-conjunct analysis routes
    equi-joins against base relations through {e persistent} hash indexes
    ({!Relation.ensure_index_pos} — built once, maintained incrementally,
    reused across queries) and turns constant-equality selections into
    index lookups, falling back to ephemeral hash joins between
    intermediates.  [`Nested_loop]: the quadratic reference plan the
    property tests hold the indexed plans to. *)

type catalog = Query.table_ref -> Relation.t
(** Resolves each FROM entry to its extent. *)

val catalog : (string * Relation.t) list -> catalog
(** Catalog backed by an association list keyed by alias.
    @raise Error (at application time) for an unbound alias. *)

val run : ?planner:plan -> catalog:catalog -> Query.t -> Relation.t
(** Evaluate a query.  [planner] defaults to [`Indexed].
    @raise Error on binding or resolution failure — the relational-level
    face of a broken query. *)
