(** Conjunctive predicates over (possibly qualified) attribute references —
    the SPJ predicate class of the paper's Queries (1)–(5): equality joins
    plus constant filters (all six comparison operators supported). *)

type op = Eq | Ne | Lt | Le | Gt | Ge

type operand = Ref of Attr.Qualified.t | Const of Value.t

type atom = { lhs : operand; op : op; rhs : operand }

type t = atom list
(** Conjunction of atoms; [[]] is TRUE. *)

val op_to_string : op -> string
val pp_operand : Format.formatter -> operand -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Constructors. *)

val atom : operand -> op -> operand -> atom

val eq_attr : string -> string -> atom
(** [eq_attr "S.SID" "I.SID"] — equality between two references (parsed
    with {!Attr.Qualified.of_string}). *)

val eq_const : string -> Value.t -> atom
val cmp : string -> op -> Value.t -> atom

val apply_op : op -> int -> bool
(** Interpret a comparison against a [compare]-style result. *)

val refs : t -> Attr.Qualified.t list
(** Every attribute reference occurring in the conjunction. *)

val eval_atom : (Attr.Qualified.t -> int) -> atom -> Tuple.t -> bool
(** [resolve] maps a reference to a tuple position. *)

val eval : (Attr.Qualified.t -> int) -> t -> Tuple.t -> bool

val compile : (Attr.Qualified.t -> int) -> t -> Tuple.t -> bool
(** [compile resolve p] resolves every reference to its tuple position
    once, up front, and returns a closure evaluating the conjunction by
    array indexing alone — the form the {!Eval.run} inner loops use.
    Semantically identical to [eval resolve p]; resolution failures
    (whatever [resolve] raises) surface at compile time instead of on
    the first tuple. *)

val map_refs : (Attr.Qualified.t -> Attr.Qualified.t) -> t -> t
(** Rewrite every reference (view synchronization uses this to apply
    renamings). *)

val partition_by_alias :
  (Attr.Qualified.t -> string) -> t -> atom list * atom list
(** Split into (per-alias local atoms, multi-alias join atoms); the
    function resolves unqualified references to their owning alias. *)

val equijoin_pairs :
  (Attr.Qualified.t -> string) ->
  t ->
  ((string * Attr.Qualified.t) * (string * Attr.Qualified.t)) list
(** Atoms of shape [R.a = S.b] with distinct aliases — the conditions a
    hash join can use, as ((alias, ref), (alias, ref)) pairs. *)
