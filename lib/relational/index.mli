(** Secondary hash indexes over signed multisets: key (a projection onto
    fixed column positions) -> bucket of (tuple, signed multiplicity).
    Buckets are compact association lists (small in practice), so a probe
    streams a few cons cells; maintenance is O(bucket) per multiplicity
    change, and a large extent is scanned once at build time and probed
    thereafter.

    Indexes are position-based: attribute renames never invalidate them.
    {!Relation.ensure_index} builds and registers one against a relation's
    own storage; it is then kept fresh by every [Relation.add]. *)

type t

val create : int array -> t
(** Empty index keyed on the given column positions. *)

val positions : t -> int array
val same_key : t -> int array -> bool
(** Does the index key exactly these columns, in this order? *)

val key_of : t -> Tuple.t -> Tuple.t
(** Project a tuple onto the index's key columns. *)

val update : t -> Tuple.t -> int -> unit
(** Adjust a tuple's indexed multiplicity by a signed delta; entries and
    buckets reaching zero are dropped (mirror of [Relation.add]). *)

val iter_matches : t -> Tuple.t -> (Tuple.t -> int -> unit) -> unit
(** Stream every (tuple, multiplicity) under a key — O(bucket), the probe
    side of an indexed join. *)

val lookup : t -> Tuple.t -> (Tuple.t * int) list
(** Snapshot of the bucket under a key (unspecified order). *)

val key_count : t -> int
(** Distinct keys indexed. *)

val support : t -> int
(** Distinct tuples across all buckets. *)

val pp : Format.formatter -> t -> unit
