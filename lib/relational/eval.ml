(** SPJ query evaluation over signed-multiset relations.

    The evaluator binds each FROM entry to a relation supplied by a
    {!catalog}, performs a left-deep join pipeline with selection
    push-down, applies residual predicates, and projects the select list.
    {!run} is the single entry point; its [?planner] selects the physical
    plan: [`Indexed] (default) probes persistent hash indexes on base
    relations for equi-joins and constant-equality selections, falling
    back to ephemeral hash joins; [`Nested_loop] forces the quadratic
    reference plan.  The module is deliberately free of any
    source/distribution concerns — the distributed decomposition lives in
    [Dyno_vm]; this module is also what each simulated {e source server}
    runs locally to answer maintenance queries. *)

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(** A binding: alias bound to a relation, its original schema kept for
    name resolution (joined schemas may have suffix-renamed columns, but
    positions are stable). *)
type binding = { alias : string; schema : Schema.t; offset : int }

type binder = {
  bindings : binding list;
  owner : Attr.Qualified.t -> string;  (** owning alias of an unqualified ref *)
}

(** [make_binder q schemas] resolves reference ownership for query [q] given
    the schema of each alias.  @raise Error on unknown or ambiguous refs. *)
let make_binder (q : Query.t) (schemas : (string * Schema.t) list) =
  let bindings =
    let rec go offset acc = function
      | [] -> List.rev acc
      | (tr : Query.table_ref) :: rest ->
          let schema =
            match List.assoc_opt tr.alias schemas with
            | Some s -> s
            | None -> err "no schema bound for alias %s" tr.alias
          in
          go
            (offset + Schema.arity schema)
            ({ alias = tr.alias; schema; offset } :: acc)
            rest
    in
    go 0 [] (Query.from q)
  in
  let owner (r : Attr.Qualified.t) =
    let attr = Attr.Qualified.attr r in
    match
      List.filter (fun b -> Schema.mem b.schema attr) bindings
    with
    | [ b ] -> b.alias
    | [] -> err "unknown attribute %s" attr
    | bs ->
        err "ambiguous attribute %s (in %s)" attr
          (String.concat ", " (List.map (fun b -> b.alias) bs))
  in
  { bindings; owner }

(** [resolve binder r] is the absolute position of reference [r] in the
    join-product tuple. *)
let resolve binder (r : Attr.Qualified.t) =
  let alias =
    match Attr.Qualified.rel r with
    | Some a -> a
    | None -> binder.owner r
  in
  match List.find_opt (fun b -> String.equal b.alias alias) binder.bindings with
  | None -> err "unknown alias %s in reference %a" alias Attr.Qualified.pp r
  | Some b -> (
      match Schema.index_of_opt b.schema (Attr.Qualified.attr r) with
      | Some i -> b.offset + i
      | None ->
          err "relation %s has no attribute %s" alias (Attr.Qualified.attr r))

(** [resolve_in_alias binder alias attr] is the position of [attr] within
    the single relation bound to [alias] (not the join product). *)
let resolve_in_alias binder alias attr =
  match List.find_opt (fun b -> String.equal b.alias alias) binder.bindings with
  | None -> err "unknown alias %s" alias
  | Some b -> (
      match Schema.index_of_opt b.schema attr with
      | Some i -> i
      | None -> err "relation %s has no attribute %s" alias attr)

(* Positional hash join: join [left] (arbitrary join-product schema) with
   [right] on (left position, right position) pairs.  The smaller side is
   hashed and the larger streamed — maintenance probes typically join a
   partial result of a handful of tuples against a large base relation, so
   this keeps the per-probe cost at one pass with cheap lookups. *)
let positional_join ?project left right (pairs : (int * int) list) =
  let lpos = Array.of_list (List.map fst pairs) in
  let rpos = Array.of_list (List.map snd pairs) in
  let schema', emit =
    match project with
    | None ->
        ( Schema.concat (Relation.schema left) (Relation.schema right),
          fun t -> t )
    | Some (sch, f) -> (sch, f)
  in
  let out = Relation.create schema' in
  let hash_left = Relation.support left <= Relation.support right in
  let build, build_pos, stream, stream_pos =
    if hash_left then (left, lpos, right, rpos) else (right, rpos, left, lpos)
  in
  let index = Tuple.Table.create (max 16 (Relation.support build)) in
  Relation.iter
    (fun t c ->
      let key = Tuple.project_idx t build_pos in
      let prev = Option.value ~default:[] (Tuple.Table.find_opt index key) in
      Tuple.Table.replace index key ((t, c) :: prev))
    build;
  Relation.iter
    (fun t c ->
      let key = Tuple.project_idx t stream_pos in
      match Tuple.Table.find_opt index key with
      | None -> ()
      | Some matches ->
          List.iter
            (fun (t', c') ->
              (* Output order is always (left, right). *)
              let tup =
                if hash_left then Tuple.concat t' t else Tuple.concat t t'
              in
              Relation.add_unchecked out (emit tup) (c * c'))
            matches)
    stream;
  out

(* Positional nested-loop join: every pair of tuples compared on the key
   positions, no hashing, no index — the O(n·m) reference plan the planner
   falls back to and the baseline the micro-benchmarks measure the indexed
   plans against.  Materializes only matches (never the full product). *)
let nested_loop_join left right (pairs : (int * int) list) =
  let lpos = Array.of_list (List.map fst pairs) in
  let rpos = Array.of_list (List.map snd pairs) in
  let n = Array.length lpos in
  let schema' = Schema.concat (Relation.schema left) (Relation.schema right) in
  let out = Relation.create schema' in
  Relation.iter
    (fun ta ca ->
      Relation.iter
        (fun tb cb ->
          let rec matches i =
            i >= n
            || Value.equal (Tuple.get ta lpos.(i)) (Tuple.get tb rpos.(i))
               && matches (i + 1)
          in
          if matches 0 then Relation.add_unchecked out (Tuple.concat ta tb) (ca * cb))
        right)
    left;
  out

type plan = [ `Indexed | `Nested_loop ]

type catalog = Query.table_ref -> Relation.t

let catalog (env : (string * Relation.t) list) : catalog =
 fun tr ->
  match List.assoc_opt tr.alias env with
  | Some r -> r
  | None -> err "no relation bound for alias %s" tr.alias

(* Split positional local atoms into constant-equality conjuncts (usable
   as an index key) and the rest. *)
let split_const_eqs res (atoms : Predicate.atom list) =
  List.fold_right
    (fun (a : Predicate.atom) (eqs, rest) ->
      match (a.op, a.lhs, a.rhs) with
      | Predicate.Eq, Predicate.Ref r, Predicate.Const v
      | Predicate.Eq, Predicate.Const v, Predicate.Ref r ->
          ((res r, v) :: eqs, rest)
      | _ -> (eqs, a :: rest))
    atoms ([], [])

(** [run ?planner ~catalog q] — the single query entry point: evaluates
    [q], resolving each FROM entry through [catalog].

    [`Indexed] (the default) performs equality-conjunct analysis on the
    WHERE clause: equi-join steps against a base relation probe a
    {e persistent} hash index registered on that relation
    ({!Relation.ensure_index_pos} — built once, maintained incrementally,
    reused across queries), constant-equality selections on a base
    relation become index lookups, and everything else falls back to
    ephemeral hash joins.  [`Nested_loop] forces the quadratic
    compare-everything plan — the reference the property tests hold the
    indexed plans to.

    @raise Error on binding or resolution failure. *)
let run ?(planner : plan = `Indexed) ~(catalog : catalog) (q : Query.t) =
  let tables =
    List.map (fun (tr : Query.table_ref) -> (tr, catalog tr)) (Query.from q)
  in
  let schemas =
    List.map (fun ((tr : Query.table_ref), r) -> (tr.alias, Relation.schema r)) tables
  in
  let binder = make_binder q schemas in
  let owner r = binder.owner r in
  let local, global = Predicate.partition_by_alias owner (Query.where q) in
  let join_pairs = Predicate.equijoin_pairs owner global in
  (* Residual global atoms: non-equijoin cross-alias conditions. *)
  let residual =
    List.filter
      (fun (a : Predicate.atom) ->
        match (a.op, a.lhs, a.rhs) with
        | Predicate.Eq, Predicate.Ref x, Predicate.Ref y ->
            let ax = match Attr.Qualified.rel x with Some r -> r | None -> owner x in
            let ay = match Attr.Qualified.rel y with Some r -> r | None -> owner y in
            String.equal ax ay
        | _ -> true)
      global
  in
  (* Local (single-alias) atoms of a FROM entry, and their positional
     evaluation within that entry's own schema. *)
  let local_atoms (tr : Query.table_ref) =
    List.filter
      (fun (a : Predicate.atom) ->
        List.exists
          (fun (r : Attr.Qualified.t) ->
            let al = match Attr.Qualified.rel r with Some x -> x | None -> owner r in
            String.equal al tr.alias)
          (Predicate.refs [ a ]))
      local
  in
  let local_res (tr : Query.table_ref) r =
    resolve_in_alias binder tr.alias (Attr.Qualified.attr r)
  in
  (* Per-alias selection push-down.  Under [`Indexed], constant-equality
     conjuncts become one index lookup instead of a scan. *)
  (* Positions are resolved ONCE per materialization via
     [Predicate.compile]; the per-tuple loop is then pure array
     indexing (no name resolution on the hot path). *)
  let materialize ((tr : Query.table_ref), rel) =
    let mine = local_atoms tr in
    if mine = [] then rel
    else
      let res = local_res tr in
      match planner with
      | `Nested_loop -> Relation.select (Predicate.compile res mine) rel
      | `Indexed -> (
          match split_const_eqs res mine with
          | [], _ -> Relation.select (Predicate.compile res mine) rel
          | eqs, rest ->
              let ix =
                Relation.ensure_index_pos rel
                  (Array.of_list (List.map fst eqs))
              in
              let key = Tuple.of_list (List.map snd eqs) in
              let rest_pred =
                if rest = [] then None else Some (Predicate.compile res rest)
              in
              let out = Relation.create (Relation.schema rel) in
              Index.iter_matches ix key (fun t c ->
                  if (match rest_pred with None -> true | Some p -> p t) then
                    Relation.add_unchecked out t c);
              out)
  in
  (* Predicate closure over a FROM entry's own tuples, for filtering index
     matches without materializing the filtered extent. *)
  let local_pred (tr : Query.table_ref) =
    match local_atoms tr with
    | [] -> None
    | mine -> Some (Predicate.compile (local_res tr) mine)
  in
  (* One join step streaming [stream] against the persistent index of the
     pristine base [raw]: each stream tuple's key is probed, matches are
     filtered by the base's local predicate on the fly.  Output tuple
     order stays (left, right) = (accumulated, new). *)
  let index_probe ~emit ~stream ~stream_pos ~raw ~raw_pos ~raw_pred
      ~raw_is_left out =
    let ix = Relation.ensure_index_pos raw raw_pos in
    Relation.iter
      (fun ts cs ->
        let key = Tuple.project_idx ts stream_pos in
        Index.iter_matches ix key (fun ti ci ->
            if match raw_pred with None -> true | Some p -> p ti then
              let tup =
                if raw_is_left then Tuple.concat ti ts else Tuple.concat ts ti
              in
              Relation.add_unchecked out (emit tup) (cs * ci)))
      stream
  in
  (* Final projection, resolved up front so the last join step can emit
     projected tuples directly (see [sink] below). *)
  let out_attrs =
    List.map
      (fun (it : Query.select_item) ->
        let pos = resolve binder it.expr in
        let alias =
          match Attr.Qualified.rel it.expr with
          | Some a -> a
          | None -> owner it.expr
        in
        let b = List.find (fun b -> String.equal b.alias alias) binder.bindings in
        let src_attr = Schema.find b.schema (Attr.Qualified.attr it.expr) in
        (pos, Attr.make it.as_name (Attr.ty src_attr)))
      (Query.select q)
  in
  let out_schema = Schema.of_list (List.map snd out_attrs) in
  let idxs = Array.of_list (List.map fst out_attrs) in
  (* Projection fused into the final join step: when no residual predicate
     needs the full join product, the last hash join emits projected
     tuples directly, saving one whole materialize-and-rehash pass over
     the wide intermediate. *)
  let fused = ref false in
  let joined =
    match tables with
    | [] -> err "empty FROM"
    | ((tr0 : Query.table_ref), r0) :: rest ->
        (* [acc] is the materialized intermediate; until the first join
           consumes it, the leftmost base stays pristine so its persistent
           index remains usable. *)
        let acc = ref None in
        let pristine = ref (Some ((tr0 : Query.table_ref), r0)) in
        let acc_mat () =
          match !acc with
          | Some m -> m
          | None ->
              let m = materialize (tr0, r0) in
              pristine := None;
              acc := Some m;
              m
        in
        let bound = ref [ tr0.alias ] in
        let last = List.length rest - 1 in
        List.iteri
          (fun i ((tr : Query.table_ref), r) ->
            (* The fused-projection sink, available only on the final
               step (positions in [idxs] refer to the full product) and
               only when no residual predicate needs the wide tuple. *)
            let sink () =
              if i = last && residual = [] then begin
                fused := true;
                Some (out_schema, fun t -> Tuple.project_idx t idxs)
              end
              else None
            in
            let pairs =
              List.filter_map
                (fun ((ax, qx), (ay, qy)) ->
                  let pos_in_acc qa = resolve binder qa in
                  let pos_in_new qa =
                    resolve_in_alias binder tr.alias (Attr.Qualified.attr qa)
                  in
                  if List.mem ax !bound && String.equal ay tr.alias then
                    Some (pos_in_acc qx, pos_in_new qy)
                  else if List.mem ay !bound && String.equal ax tr.alias then
                    Some (pos_in_acc qy, pos_in_new qx)
                  else None)
                join_pairs
            in
            let step =
              match planner with
              | `Nested_loop -> nested_loop_join (acc_mat ()) (materialize (tr, r)) pairs
              | `Indexed when pairs = [] ->
                  Relation.product (acc_mat ()) (materialize (tr, r))
              | `Indexed -> (
                  let lpos = Array.of_list (List.map fst pairs) in
                  let rpos = Array.of_list (List.map snd pairs) in
                  let lsize =
                    match !pristine with
                    | Some (_, lraw) -> Relation.support lraw
                    | None -> Relation.support (acc_mat ())
                  in
                  (* A persistent index wins when it is already built and
                     maintained, or when the probing side is much smaller
                     than the base it would index — the maintenance-probe
                     shape (build once, probe forever).  Otherwise fall
                     back to an ephemeral hash join: building, then
                     forever maintaining, an index the query streams past
                     about once is pure overhead. *)
                  let index_wins ~raw ~probes pos =
                    Option.is_some (Relation.find_index_pos raw pos)
                    || probes * 4 <= Relation.support raw
                  in
                  if Relation.support r >= lsize then begin
                    if not (index_wins ~raw:r ~probes:lsize rpos) then
                      positional_join ?project:(sink ()) (acc_mat ())
                        (materialize (tr, r)) pairs
                    else begin
                      (* Probe the (large) new base's persistent index with
                         the accumulated (small) side. *)
                      let left = acc_mat () in
                      let sch, emit =
                        match sink () with
                        | Some (sch, f) -> (sch, f)
                        | None ->
                            ( Schema.concat (Relation.schema left)
                                (Relation.schema r),
                              fun t -> t )
                      in
                      let out = Relation.create sch in
                      index_probe ~emit ~stream:left ~stream_pos:lpos ~raw:r
                        ~raw_pos:rpos ~raw_pred:(local_pred tr)
                        ~raw_is_left:false out;
                      out
                    end
                  end
                  else
                    match !pristine with
                    | Some (ltr, lraw)
                      when index_wins ~raw:lraw ~probes:(Relation.support r)
                             lpos ->
                        (* The accumulated side is still a pristine (large)
                           base: probe ITS persistent index with the new
                           (small) side — the maintenance-probe fast path. *)
                        let right = materialize (tr, r) in
                        let sch, emit =
                          match sink () with
                          | Some (sch, f) -> (sch, f)
                          | None ->
                              ( Schema.concat (Relation.schema lraw)
                                  (Relation.schema right),
                                fun t -> t )
                        in
                        let out = Relation.create sch in
                        index_probe ~emit ~stream:right ~stream_pos:rpos
                          ~raw:lraw ~raw_pos:lpos ~raw_pred:(local_pred ltr)
                          ~raw_is_left:true out;
                        pristine := None;
                        out
                    | Some _ | None ->
                        (* Two intermediates, or no index worth building:
                           ephemeral hash join, smaller side hashed. *)
                        positional_join ?project:(sink ()) (acc_mat ())
                          (materialize (tr, r)) pairs)
            in
            pristine := None;
            acc := Some step;
            bound := tr.alias :: !bound)
          rest;
        acc_mat ()
  in
  (* Residual predicate. *)
  let joined =
    if residual = [] then joined
    else Relation.select (Predicate.compile (resolve binder) residual) joined
  in
  (* Final projection (already emitted by the last join step when fused). *)
  if !fused then joined
  else Relation.map_tuples out_schema (fun t -> Tuple.project_idx t idxs) joined
