(** Relations as {e signed multisets} of tuples, carrying their schema.

    Multiplicities may be negative: a relation with mixed signs is a
    {e delta} (insertions positive, deletions negative) — the uniform
    representation of incremental view maintenance.  Every operator is
    linear in that representation, which is what SWEEP compensation and
    Equation 6 rely on. *)

type t

exception Schema_mismatch of string

val create : Schema.t -> t
val schema : t -> Schema.t

val support : t -> int
(** Number of distinct tuples. *)

val cardinality : t -> int
(** Sum of multiplicities (can be negative for deltas). *)

val mass : t -> int
(** Sum of absolute multiplicities. *)

val is_empty : t -> bool
val count : t -> Tuple.t -> int
val mem : t -> Tuple.t -> bool

val add : t -> Tuple.t -> int -> unit
(** Adjust a tuple's multiplicity; entries reaching zero are dropped.
    @raise Schema_mismatch when the tuple does not typecheck. *)

val add_unchecked : t -> Tuple.t -> int -> unit
(** {!add} minus the per-tuple schema typecheck — for evaluator hot loops
    whose output tuples are type-correct by construction (projections and
    concatenations of tuples already in a relation).  Never feed it
    external input. *)

val insert : t -> Tuple.t -> unit
val delete : t -> Tuple.t -> unit

val of_list : Schema.t -> Value.t list list -> t
val of_counted : Schema.t -> (Value.t list * int) list -> t

(** {1 Traversal}

    [iter]/[fold] are O(n) allocation-free streams over the live storage in
    unspecified order — the accessors every hot path should use.
    [to_counted]/[to_list] are O(n log n) {e sorted snapshots} that allocate
    a fresh assoc list; keep them for tests, printing and serialization,
    where deterministic order matters more than speed. *)

val iter : (Tuple.t -> int -> unit) -> t -> unit
(** O(n) stream, unspecified order, no allocation. *)

val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** O(n) stream, unspecified order. *)

val to_counted : t -> (Tuple.t * int) list
(** O(n log n) snapshot, sorted by tuple order — tests/printing only. *)

val to_list : t -> Tuple.t list
(** O(n log n) snapshot of the positive part, duplicates expanded —
    tests/printing only. *)

val copy : t -> t
(** Deep copy of the storage.  Registered indexes are {e not} copied; the
    copy starts with an empty index registry. *)

(** {1 Secondary indexes}

    Hash indexes registered against this relation's storage and maintained
    incrementally by {!add} (O(1) per multiplicity change).  See
    {!Index}. *)

val ensure_index : t -> string list -> Index.t
(** Index keyed on the named attributes (resolved against the current
    schema): returns the registered one or builds it with one O(n) scan. *)

val ensure_index_pos : t -> int array -> Index.t
(** As {!ensure_index}, with the key given as column positions. *)

val find_index_pos : t -> int array -> Index.t option
(** The registered index keyed on exactly these positions, if one has
    already been built — {!ensure_index_pos} without the build side
    effect (planner's "is there a maintained index?" question). *)

val index_count : t -> int
(** Number of registered indexes (introspection/tests). *)

val equal : t -> t -> bool
(** Same schema and identical multiplicity for every tuple. *)

val equal_contents : t -> t -> bool
(** Equality up to attribute names (positional contents only). *)

val pp : Format.formatter -> t -> unit

(** {1 Algebra (all linear over signed multisets)} *)

val select : (Tuple.t -> bool) -> t -> t

val map_tuples : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t
(** Transform tuples, re-aggregating multiplicities under the image. *)

val project : t -> string list -> t
val rename_attr : t -> old_name:string -> new_name:string -> t

val sum : t -> t -> t
(** Multiset union with signed multiplicities.
    @raise Schema_mismatch on schema disagreement. *)

val negate : t -> t
val diff : t -> t -> t

val positive : t -> t
(** The insertions of a delta. *)

val negative : t -> t
(** The deletions of a delta, with positive counts. *)

val product : t -> t -> t
(** Cartesian product; multiplicities multiply. *)

val equijoin : t -> t -> (string * string) list -> t
(** Hash equi-join on (left attr, right attr) pairs; output schema is
    [Schema.concat]; multiplicities multiply. *)

val distinct : t -> t
(** Positive support with multiplicity 1. *)

val scale : int -> t -> t

val is_subset : t -> t -> bool
(** Every positive tuple occurs in the second argument with at least the
    same multiplicity. *)

val has_negative : t -> bool

val apply_delta : t -> t -> t
(** [apply_delta base delta = sum base delta], checking the result is a
    proper (non-negative) multiset.
    @raise Invalid_argument on negative residue — the tripwire that turns
    a maintenance bug into a loud failure. *)

val apply_delta_in_place : t -> t -> unit
(** Same contract as {!apply_delta}, but mutates the base in place:
    O(|delta|) instead of O(|base|), and registered indexes stay alive and
    are maintained incrementally.  The non-negativity precheck runs before
    any mutation, so a rejected delta leaves the base untouched.
    @raise Invalid_argument on negative residue (base unchanged). *)
