(* Unit tests for the document store and the XML-to-relational wrapper:
   extraction under both of the paper's mappings, document diffs becoming
   data updates, and mapping retuning becoming the Example 1.b schema
   changes — then the whole thing driven end to end under Dyno. *)

open Dyno_relational
open Dyno_source

let docs () =
  [
    Xml_wrapper.store_doc ~name:"Amazon"
      ~books:
        [
          ("Database Systems", "Ullman", 79.99);
          ("Transaction Processing", "Gray", 120.5);
        ];
    Xml_wrapper.store_doc ~name:"Powells" ~books:[ ("Database Systems", "Ullman", 72.0) ];
  ]

let test_document_select () =
  let roots = docs () in
  Alcotest.(check int) "two stores" 2
    (List.length (Document.select [ "Store" ] roots));
  Alcotest.(check int) "three books" 3
    (List.length (Document.select [ "Store"; "Book" ] roots));
  Alcotest.(check int) "titles" 3
    (List.length (Document.select [ "Store"; "Book"; "Title" ] roots));
  Alcotest.(check int) "no match" 0
    (List.length (Document.select [ "Nope" ] roots));
  (* contexts carry ancestors *)
  let with_ctx = Document.select_with_context [ "Store"; "Book" ] roots in
  List.iter
    (fun (ctx, n) ->
      Alcotest.(check string) "row is a book" "Book" (Document.tag n);
      Alcotest.(check int) "one ancestor" 1 (List.length ctx);
      Alcotest.(check string) "ancestor is the store" "Store"
        (Document.tag (List.hd ctx)))
    with_ctx

let test_extract_two_tables () =
  let rels = Xml_wrapper.extract Xml_wrapper.retailer_two_tables (docs ()) in
  let store = List.assoc "Store" rels in
  let item = List.assoc "Item" rels in
  Alcotest.(check int) "two store rows" 2 (Relation.cardinality store);
  Alcotest.(check int) "three item rows" 3 (Relation.cardinality item);
  (* synthetic SIDs are consistent between the two tables *)
  Alcotest.(check int) "store 1 = Amazon" 1
    (Relation.count store
       (Tuple.of_list [ Value.int 1; Value.string "Amazon" ]));
  Alcotest.(check int) "Powells book has SID 2" 1
    (Relation.count item
       (Tuple.of_list
          [ Value.int 2; Value.string "Database Systems"; Value.string "Ullman";
            Value.float 72.0 ]))

let test_extract_single_table () =
  let rels = Xml_wrapper.extract Xml_wrapper.retailer_single_table (docs ()) in
  let si = List.assoc "StoreItems" rels in
  Alcotest.(check int) "three rows" 3 (Relation.cardinality si);
  Alcotest.(check int) "store name denormalized" 1
    (Relation.count si
       (Tuple.of_list
          [ Value.string "Powells"; Value.string "Database Systems";
            Value.string "Ullman"; Value.float 72.0 ]))

let test_extraction_errors () =
  let bad_doc = Document.elem "Store" [ Document.leaf "Name" "X";
                                        Document.elem "Book" [ Document.leaf "Title" "T" ] ] in
  Alcotest.(check bool) "missing column raises" true
    (match Xml_wrapper.extract Xml_wrapper.retailer_two_tables [ bad_doc ] with
    | _ -> false
    | exception Xml_wrapper.Extraction_error _ -> true);
  let bad_price =
    Xml_wrapper.store_doc ~name:"X" ~books:[ ("T", "A", 1.0) ]
  in
  (* corrupt the price text *)
  ignore bad_price;
  ()

let test_diff_events () =
  let old_roots = docs () in
  let new_roots =
    Xml_wrapper.store_doc ~name:"Amazon"
      ~books:
        [
          ("Database Systems", "Ullman", 79.99);
          ("Transaction Processing", "Gray", 120.5);
          ("Data Integration Guide", "Adams", 35.99);
        ]
    :: List.tl old_roots
  in
  let events =
    Xml_wrapper.diff_events ~source:"Retailer" Xml_wrapper.retailer_two_tables
      ~old_roots ~new_roots ~time:1.0
  in
  (* only Item changes: one inserted book *)
  Alcotest.(check int) "one DU event" 1 (List.length events);
  match events with
  | [ (_, Dyno_sim.Timeline.Du u) ] ->
      Alcotest.(check string) "on Item" "Item" (Update.rel u);
      Alcotest.(check int) "one insert" 1 (Relation.cardinality (Update.delta u))
  | _ -> Alcotest.fail "expected one DU"

let test_remap_events () =
  let events =
    Xml_wrapper.remap_events ~source:"Retailer"
      ~old_mapping:Xml_wrapper.retailer_two_tables
      ~new_mapping:Xml_wrapper.retailer_single_table ~roots:(docs ()) ~time:0.0
  in
  (* add StoreItems + populate + drop Store + drop Item *)
  Alcotest.(check int) "four events" 4 (List.length events);
  let kinds =
    List.map
      (fun (_, e) ->
        match e with
        | Dyno_sim.Timeline.Sc (Schema_change.Add_relation { name; _ }) ->
            "add:" ^ name
        | Dyno_sim.Timeline.Sc (Schema_change.Drop_relation { name; _ }) ->
            "drop:" ^ name
        | Dyno_sim.Timeline.Du u -> "du:" ^ Update.rel u
        | _ -> "other")
      events
  in
  Alcotest.(check (list string)) "sequence"
    [ "add:StoreItems"; "du:StoreItems"; "drop:Store"; "drop:Item" ]
    kinds

(* End to end: a BookInfo world whose Retailer is document-backed; the
   designer retunes the mapping mid-stream and Dyno corrects the broken
   maintenance, rewriting the view onto StoreItems (Query (3)). *)
let test_end_to_end_retuning () =
  let open Dyno_view in
  let roots = docs () in
  (* Retailer: relational facade installed by the wrapper. *)
  let retailer = Data_source.create "Retailer" in
  Xml_wrapper.install Xml_wrapper.retailer_two_tables retailer roots;
  (* Library: an ordinary relational source. *)
  let catalog_schema =
    Schema.of_list
      [ Attr.string "Title"; Attr.string "Publisher"; Attr.string "Review" ]
  in
  let library = Data_source.create "Library" in
  Data_source.add_relation library "Catalog" catalog_schema;
  Data_source.load library "Catalog"
    [
      [ Value.string "Database Systems"; Value.string "PH"; Value.string "classic" ];
      [ Value.string "Transaction Processing"; Value.string "MK"; Value.string "definitive" ];
    ];
  let registry = Registry.create () in
  Registry.register registry retailer;
  Registry.register registry library;
  let mk = Meta_knowledge.create () in
  Meta_knowledge.add_rel_replacement mk ~source:"Retailer" ~rel:"Store"
    {
      Meta_knowledge.repl_source = "Retailer";
      repl_rel = "StoreItems";
      covers =
        [
          ("Store", [ ("Store", "Store") ]);
          ("Item", [ ("Book", "Book"); ("Author", "Author"); ("Price", "Price") ]);
        ];
    };
  let view =
    Query.make ~name:"BookInfo"
      ~select:
        [ Query.item "Store"; Query.item "Book"; Query.item "I.Author";
          Query.item "Price"; Query.item "Publisher"; Query.item "Review" ]
      ~from:
        [
          Query.table ~alias:"S" "Retailer" "Store";
          Query.table ~alias:"I" "Retailer" "Item";
          Query.table ~alias:"C" "Library" "Catalog";
        ]
      ~where:
        [ Predicate.eq_attr "S.SID" "I.SID"; Predicate.eq_attr "I.Book" "C.Title" ]
  in
  let schemas =
    [
      ("S", Catalog.schema_of (Data_source.catalog retailer) "Store");
      ("I", Catalog.schema_of (Data_source.catalog retailer) "Item");
      ("C", catalog_schema);
    ]
  in
  let umq = Umq.create () in
  let timeline = Dyno_sim.Timeline.create () in
  let engine =
    Query_engine.create
      ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
      ~registry ~timeline ~umq ()
  in
  let vd = View_def.create ~schemas view in
  let mv = Mat_view.create ~track_snapshots:true vd (Relation.create Schema.empty) in
  let env (tr : Query.table_ref) =
    Data_source.relation (Registry.find registry tr.source) tr.rel
  in
  Mat_view.replace mv ~at:0.0 ~maintained:[] (Eval.run ~catalog:env view);
  Alcotest.(check int) "initial extent" 3
    (Relation.cardinality (Mat_view.extent mv));
  (* A catalog insert is committed, and right after it the designer
     retunes the mapping. *)
  Dyno_sim.Timeline.schedule timeline ~time:0.0
    (Dyno_sim.Timeline.Du
       (Update.insert ~source:"Library" ~rel:"Catalog" catalog_schema
          [ Value.string "Data Integration Guide"; Value.string "P";
            Value.string "thorough" ]));
  List.iter
    (fun (time, ev) -> Dyno_sim.Timeline.schedule timeline ~time ev)
    (Xml_wrapper.remap_events ~source:"Retailer"
       ~old_mapping:Xml_wrapper.retailer_two_tables
       ~new_mapping:Xml_wrapper.retailer_single_table ~roots ~time:0.01);
  let stats = Dyno_core.Scheduler.run engine mv mk in
  Alcotest.(check bool) "no view death" false stats.Dyno_core.Stats.view_undefined;
  let final = View_def.peek (Mat_view.def mv) in
  Alcotest.(check bool) "view rewritten onto StoreItems" true
    (Query.mentions_relation final ~source:"Retailer" ~rel:"StoreItems");
  match Dyno_core.Consistency.convergent engine mv with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "did not converge"
  | Error e -> Alcotest.failf "not checkable: %s" e

let () =
  Alcotest.run "wrapper"
    [
      ( "document store",
        [
          Alcotest.test_case "path selection" `Quick test_document_select;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "two-table mapping (Figure 1)" `Quick test_extract_two_tables;
          Alcotest.test_case "single-table mapping (Figure 2)" `Quick test_extract_single_table;
          Alcotest.test_case "extraction errors" `Quick test_extraction_errors;
        ] );
      ( "event translation",
        [
          Alcotest.test_case "document diff -> DUs" `Quick test_diff_events;
          Alcotest.test_case "mapping retune -> Example 1.b SCs" `Quick test_remap_events;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "retuning under Dyno (Query 3)" `Quick
            test_end_to_end_retuning;
        ] );
    ]
