(* Unit tests for the SPJ evaluator: joins, push-down, projection,
   residual predicates, error handling; results cross-checked against a
   naive product+filter evaluation. *)

open Dyno_relational

let r_schema = Schema.of_list [ Attr.int "k"; Attr.string "name" ]
let s_schema = Schema.of_list [ Attr.int "fk"; Attr.float "price" ]
let t_schema = Schema.of_list [ Attr.int "tk"; Attr.string "tag" ]

let r =
  Relation.of_list r_schema
    [
      [ Value.int 1; Value.string "one" ];
      [ Value.int 2; Value.string "two" ];
      [ Value.int 3; Value.string "three" ];
    ]

let s =
  Relation.of_list s_schema
    [
      [ Value.int 1; Value.float 10.0 ];
      [ Value.int 1; Value.float 11.0 ];
      [ Value.int 2; Value.float 20.0 ];
      [ Value.int 9; Value.float 90.0 ];
    ]

let t =
  Relation.of_list t_schema
    [ [ Value.int 1; Value.string "hot" ]; [ Value.int 2; Value.string "cold" ] ]

let q2 ~where =
  Query.make ~name:"q2"
    ~select:[ Query.item "R.name"; Query.item "S.price" ]
    ~from:[ Query.table ~alias:"R" "x" "R"; Query.table ~alias:"S" "x" "S" ]
    ~where

let test_equijoin () =
  let out = Eval.run ~catalog:(Eval.catalog [ ("R", r); ("S", s) ]) (q2 ~where:[ Predicate.eq_attr "R.k" "S.fk" ]) in
  Alcotest.(check int) "3 joined rows" 3 (Relation.cardinality out);
  Alcotest.(check (list string)) "output names" [ "name"; "price" ]
    (Schema.names (Relation.schema out))

let test_cross_product_when_no_condition () =
  let out = Eval.run ~catalog:(Eval.catalog [ ("R", r); ("S", s) ]) (q2 ~where:[]) in
  Alcotest.(check int) "3*4 rows" 12 (Relation.cardinality out)

let test_selection_pushdown_equivalence () =
  (* local filter + join computed two ways must agree *)
  let where =
    [
      Predicate.eq_attr "R.k" "S.fk";
      Predicate.cmp "S.price" Predicate.Ge (Value.float 11.0);
      Predicate.eq_const "R.name" (Value.string "one");
    ]
  in
  let out = Eval.run ~catalog:(Eval.catalog [ ("R", r); ("S", s) ]) (q2 ~where) in
  (* naive: full product, then filter *)
  let naive =
    let p = Relation.product r s in
    let ps = Relation.schema p in
    Relation.select
      (fun tup ->
        Value.equal (Tuple.field ps tup "k") (Tuple.field ps tup "fk")
        && Value.compare (Tuple.field ps tup "price") (Value.float 11.0) >= 0
        && Value.equal (Tuple.field ps tup "name") (Value.string "one"))
      p
    |> fun sel -> Relation.project sel [ "name"; "price" ]
  in
  Alcotest.(check bool) "pushdown = naive" true (Relation.equal_contents out naive)

let test_residual_non_equi_join () =
  (* R.k < S.fk is not hash-joinable: exercised via residual filtering *)
  let where =
    [ Predicate.atom
        (Predicate.Ref (Attr.Qualified.of_string "R.k"))
        Predicate.Lt
        (Predicate.Ref (Attr.Qualified.of_string "S.fk")) ]
  in
  let out = Eval.run ~catalog:(Eval.catalog [ ("R", r); ("S", s) ]) (q2 ~where) in
  (* pairs: k in {1,2,3} x fk in {1,1,2,9}: k<fk → (1,2),(1,9),(2,9),(3,9) = 4 *)
  Alcotest.(check int) "non-equi residual" 4 (Relation.cardinality out)

let test_three_way_chain () =
  let q =
    Query.make ~name:"q3"
      ~select:[ Query.item "R.name"; Query.item "T.tag" ]
      ~from:
        [
          Query.table ~alias:"R" "x" "R";
          Query.table ~alias:"S" "x" "S";
          Query.table ~alias:"T" "x" "T";
        ]
      ~where:[ Predicate.eq_attr "R.k" "S.fk"; Predicate.eq_attr "S.fk" "T.tk" ]
  in
  let out = Eval.run ~catalog:(Eval.catalog [ ("R", r); ("S", s); ("T", t) ]) q in
  (* k=1: 2 S rows x tag hot; k=2: 1 x cold → 3 rows *)
  Alcotest.(check int) "chain join" 3 (Relation.cardinality out)

let test_unqualified_resolution () =
  let q =
    Query.make ~name:"qu"
      ~select:[ Query.item "name"; Query.item "price" ]
      ~from:[ Query.table ~alias:"R" "x" "R"; Query.table ~alias:"S" "x" "S" ]
      ~where:[ Predicate.eq_attr "k" "fk" ]
  in
  let out = Eval.run ~catalog:(Eval.catalog [ ("R", r); ("S", s) ]) q in
  Alcotest.(check int) "resolved by uniqueness" 3 (Relation.cardinality out)

let test_errors () =
  let bad_attr =
    Query.make ~name:"qb" ~select:[ Query.item "R.nope" ]
      ~from:[ Query.table ~alias:"R" "x" "R" ]
      ~where:[]
  in
  Alcotest.(check bool) "unknown attribute" true
    (match Eval.run ~catalog:(Eval.catalog [ ("R", r) ]) bad_attr with
    | _ -> false
    | exception Eval.Error _ -> true);
  let dup_schema = Schema.of_list [ Attr.int "k"; Attr.string "z" ] in
  let r2 = Relation.of_list dup_schema [ [ Value.int 1; Value.string "w" ] ] in
  let ambiguous =
    Query.make ~name:"qa" ~select:[ Query.item "k" ]
      ~from:[ Query.table ~alias:"R" "x" "R"; Query.table ~alias:"R2" "x" "R2" ]
      ~where:[]
  in
  Alcotest.(check bool) "ambiguous attribute" true
    (match Eval.run ~catalog:(Eval.catalog [ ("R", r); ("R2", r2) ]) ambiguous with
    | _ -> false
    | exception Eval.Error _ -> true);
  Alcotest.(check bool) "unbound alias" true
    (match Eval.run ~catalog:(Eval.catalog []) bad_attr with
    | _ -> false
    | exception Eval.Error _ -> true)

let test_signed_inputs () =
  (* evaluating a query over a delta relation keeps signs (linearity) *)
  let delta =
    Relation.of_counted r_schema [ ([ Value.int 1; Value.string "one" ], -1) ]
  in
  let out =
    Eval.run ~catalog:(Eval.catalog [ ("R", delta); ("S", s) ])
      (q2 ~where:[ Predicate.eq_attr "R.k" "S.fk" ])
  in
  Alcotest.(check int) "negative propagates through join" (-2)
    (Relation.cardinality out)

let test_projection_duplicates () =
  (* projecting away the key merges duplicates into counts *)
  let q =
    Query.make ~name:"qp" ~select:[ Query.item "S.fk" ]
      ~from:[ Query.table ~alias:"S" "x" "S" ]
      ~where:[]
  in
  let out = Eval.run ~catalog:(Eval.catalog [ ("S", s) ]) q in
  Alcotest.(check int) "fk=1 count 2" 2
    (Relation.count out (Tuple.of_list [ Value.int 1 ]));
  Alcotest.(check int) "support 3" 3 (Relation.support out)

let test_alias_rename_in_select () =
  let q =
    Query.make ~name:"qr"
      ~select:[ Query.item ~as_:"label" "R.name" ]
      ~from:[ Query.table ~alias:"R" "x" "R" ]
      ~where:[]
  in
  let out = Eval.run ~catalog:(Eval.catalog [ ("R", r) ]) q in
  Alcotest.(check (list string)) "renamed output" [ "label" ]
    (Schema.names (Relation.schema out))

let () =
  Alcotest.run "eval"
    [
      ( "eval",
        [
          Alcotest.test_case "hash equi-join" `Quick test_equijoin;
          Alcotest.test_case "cross product fallback" `Quick test_cross_product_when_no_condition;
          Alcotest.test_case "pushdown = naive evaluation" `Quick test_selection_pushdown_equivalence;
          Alcotest.test_case "non-equi residual join" `Quick test_residual_non_equi_join;
          Alcotest.test_case "three-way chain" `Quick test_three_way_chain;
          Alcotest.test_case "unqualified resolution" `Quick test_unqualified_resolution;
          Alcotest.test_case "error cases" `Quick test_errors;
          Alcotest.test_case "signed inputs (linearity)" `Quick test_signed_inputs;
          Alcotest.test_case "projection merges duplicates" `Quick test_projection_duplicates;
          Alcotest.test_case "select AS renames" `Quick test_alias_rename_in_select;
        ] );
    ]
