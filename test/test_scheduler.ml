(* Integration tests of the full Dyno loop over the paper's 6-relation
   world: every strategy must drain every workload, converge to the
   recomputed extent, and keep every committed view state strongly
   consistent. *)

open Dyno_workload
open Dyno_core

let cost = Dyno_sim.Cost_model.free
let row1 = { Dyno_sim.Cost_model.default with row_scale = 1.0 }

(* World config shared by most integration workloads: snapshots + trace on. *)
let tracked ~rows ~cost =
  Scenario.Config.(
    default |> with_rows rows |> with_cost cost |> with_snapshots true
    |> with_trace true)

let strategies =
  [ Strategy.Pessimistic; Strategy.Optimistic; Strategy.Merge_all ]

let run_workload ~rows ~timeline ~strategy () =
  let t = Scenario.make (tracked ~rows ~cost) ~timeline in
  let stats = Scenario.run t ~config:(Run_config.of_strategy strategy) in
  (t, stats)

let assert_converged t =
  match Scenario.check_convergent t with
  | Ok true -> ()
  | Ok false ->
      Alcotest.failf "view did not converge to recomputed extent@.%a"
        Dyno_sim.Trace.pp t.Scenario.trace
  | Error e -> Alcotest.failf "convergence check impossible: %s" e

let assert_strong t =
  let r = Scenario.check_strong t in
  if not (Consistency.ok r) then
    Alcotest.failf "strong consistency violated: %a@.trace:@.%a"
      Consistency.pp_report r Dyno_sim.Trace.pp t.Scenario.trace

let test_du_only strategy () =
  let timeline =
    Generator.mixed ~rows:30 ~seed:42 ~n_dus:40 ~du_interval:0.0
      ~sc_interval:0.0 ~sc_kinds:[] ()
  in
  let t, stats = run_workload ~rows:30 ~timeline ~strategy () in
  Alcotest.(check int) "40 DUs maintained" 40
    (stats.Stats.du_maintained + stats.Stats.irrelevant);
  Alcotest.(check int) "no aborts" 0 stats.Stats.aborts;
  assert_converged t;
  assert_strong t

let test_mixed strategy () =
  let timeline =
    Generator.mixed ~rows:25 ~seed:7 ~n_dus:30 ~du_interval:0.0
      ~sc_interval:0.0
      ~sc_kinds:(Generator.drop_then_renames 4)
      ()
  in
  let t, stats = run_workload ~rows:25 ~timeline ~strategy () in
  Alcotest.(check bool) "queue drained" true
    (Dyno_view.Umq.is_empty t.Scenario.umq);
  ignore stats;
  assert_converged t;
  assert_strong t

let test_mixed_spaced strategy () =
  (* Schema changes spread out in time (nonzero simulated costs so that
     arrivals interleave with ongoing maintenance). *)
  let timeline =
    Generator.mixed ~rows:20 ~seed:11 ~n_dus:25 ~du_interval:0.1
      ~sc_start:0.5 ~sc_interval:2.0
      ~sc_kinds:(Generator.drop_then_renames 5)
      ()
  in
  let t = Scenario.make (tracked ~rows:20 ~cost:row1) ~timeline in
  let stats = Scenario.run t ~config:(Run_config.of_strategy strategy) in
  ignore stats;
  assert_converged t;
  assert_strong t

let test_all_sc_kinds strategy () =
  let timeline =
    Generator.mixed ~rows:15 ~seed:3 ~n_dus:20 ~du_interval:0.05
      ~sc_start:0.2 ~sc_interval:1.0
      ~sc_kinds:
        [
          Generator.Rename_attr;
          Generator.Add_attr;
          Generator.Drop_attr;
          Generator.Rename_rel;
          Generator.Rename_rel;
          Generator.Drop_attr;
        ]
      ()
  in
  let t = Scenario.make (tracked ~rows:15 ~cost:row1) ~timeline in
  let stats = Scenario.run t ~config:(Run_config.of_strategy strategy) in
  ignore stats;
  assert_converged t;
  assert_strong t

let test_rename_chain strategy () =
  (* Two renames of the same relation queued together: the second one's
     name no longer matches the view's stale reference — the case the
     conservative CD test exists for. *)
  let timeline =
    Generator.build ~rows:10 ~seed:5
      [
        Generator.At_du 0.0;
        Generator.At_sc (0.0, Generator.Rename_rel);
        Generator.At_sc (0.0, Generator.Rename_rel);
        Generator.At_sc (0.0, Generator.Rename_rel);
        Generator.At_du 0.0;
      ]
  in
  let t, _stats = run_workload ~rows:10 ~timeline ~strategy () in
  assert_converged t;
  assert_strong t

let test_recompute_mode strategy () =
  (* the naive-recompute baseline must deliver the same correctness *)
  let timeline =
    Generator.mixed ~rows:12 ~seed:17 ~n_dus:12 ~du_interval:0.1
      ~sc_interval:1.5
      ~sc_kinds:(Generator.drop_then_renames 2)
      ()
  in
  let t = Scenario.make (tracked ~rows:12 ~cost:row1) ~timeline in
  let _stats =
    Scenario.run t
      ~config:
        Run_config.(
          of_strategy strategy |> with_vm_mode Dyno_core.Run_config.Recompute)
  in
  assert_converged t;
  assert_strong t

let test_du_grouping strategy () =
  (* grouped (deferred) DU maintenance must deliver the same final state
     with fewer view commits *)
  let mk () =
    Generator.mixed ~rows:15 ~seed:13 ~n_dus:24 ~du_interval:0.05
      ~sc_start:0.4 ~sc_interval:1.0
      ~sc_kinds:(Generator.drop_then_renames 2)
      ()
  in
  let run du_group =
    let t = Scenario.make (tracked ~rows:15 ~cost:row1) ~timeline:(mk ()) in
    let stats =
      Scenario.run t
        ~config:Run_config.(of_strategy strategy |> with_du_group du_group)
    in
    assert_converged t;
    assert_strong t;
    stats
  in
  let single = run 1 in
  let grouped = run 8 in
  Alcotest.(check bool) "grouping commits less often" true
    (grouped.Stats.view_commits < single.Stats.view_commits)

(* -- strategy-independent edge cases -------------------------------- *)

let test_view_undefined () =
  (* dropping a join key (not dispensable, no replacement) leaves the view
     undefined; later updates are acknowledged and dropped, and the run
     still terminates cleanly *)
  let timeline =
    Dyno_sim.Timeline.of_list
      [
        ( 0.0,
          Dyno_sim.Timeline.Sc
            (Dyno_relational.Schema_change.Drop_attribute
               { source = "DS1"; rel = "R1"; attr = "K1" }) );
      ]
  in
  let t =
    Scenario.make
      Scenario.Config.(
        default |> with_rows 8 |> with_cost cost |> with_trace true)
      ~timeline
  in
  (* a DU arriving after the view died *)
  Dyno_sim.Timeline.schedule t.Scenario.timeline ~time:1.0
    (Dyno_sim.Timeline.Du
       (Dyno_relational.Update.insert ~source:"DS2" ~rel:"R3"
          (Paper_schema.schema_of_rel 3)
          (Paper_schema.tuple_for 3 0)));
  let stats =
    Scenario.run t ~config:(Run_config.of_strategy Strategy.Pessimistic)
  in
  Alcotest.(check bool) "view undefined" true stats.Stats.view_undefined;
  Alcotest.(check bool) "queue drained anyway" true
    (Dyno_view.Umq.is_empty t.Scenario.umq);
  Alcotest.(check int) "later update dropped" 1 stats.Stats.irrelevant

let test_step_limit () =
  let timeline =
    Generator.mixed ~rows:8 ~seed:1 ~n_dus:30 ~du_interval:0.0
      ~sc_interval:0.0 ~sc_kinds:[] ()
  in
  let t =
    Scenario.make
      Scenario.Config.(default |> with_rows 8 |> with_cost cost)
      ~timeline
  in
  Alcotest.(check bool) "step limit raises" true
    (match
       Scenario.run t
         ~config:
           Run_config.(
             of_strategy Strategy.Pessimistic |> with_max_steps 3)
     with
    | _ -> false
    | exception Dyno_core.Scheduler.Step_limit_exceeded _ -> true)

let test_idle_accounting () =
  (* spaced updates: maintenance cost excludes waiting *)
  let timeline =
    Generator.mixed ~rows:8 ~seed:2 ~n_dus:3 ~du_start:5.0 ~du_interval:10.0
      ~sc_interval:0.0 ~sc_kinds:[] ()
  in
  let t =
    Scenario.make
      Scenario.Config.(default |> with_rows 8 |> with_cost row1)
      ~timeline
  in
  let stats =
    Scenario.run t ~config:(Run_config.of_strategy Strategy.Optimistic)
  in
  Alcotest.(check bool) "idle time accounted" true (stats.Stats.idle > 20.0);
  Alcotest.(check bool) "busy excludes idle" true (stats.Stats.busy < 5.0);
  Alcotest.(check int) "no aborts when spaced" 0 stats.Stats.aborts

let test_spaced_scs_never_abort () =
  let timeline =
    Generator.mixed ~rows:8 ~seed:3 ~n_dus:0 ~sc_start:0.0
      ~sc_interval:10_000.0
      ~sc_kinds:(Generator.drop_then_renames 3)
      ()
  in
  let t =
    Scenario.make
      Scenario.Config.(
        default |> with_rows 8 |> with_cost row1 |> with_snapshots true)
      ~timeline
  in
  let stats =
    Scenario.run t ~config:(Run_config.of_strategy Strategy.Optimistic)
  in
  Alcotest.(check int) "no aborts" 0 stats.Stats.aborts;
  assert_converged t;
  assert_strong t

let suite strategy =
  let n = Strategy.to_string strategy in
  [
    Alcotest.test_case (n ^ ": DU-only workload") `Quick (test_du_only strategy);
    Alcotest.test_case (n ^ ": mixed flood") `Quick (test_mixed strategy);
    Alcotest.test_case (n ^ ": mixed spaced") `Quick (test_mixed_spaced strategy);
    Alcotest.test_case (n ^ ": all SC kinds") `Quick (test_all_sc_kinds strategy);
    Alcotest.test_case (n ^ ": rename chain") `Quick (test_rename_chain strategy);
    Alcotest.test_case (n ^ ": recompute baseline") `Quick
      (test_recompute_mode strategy);
    Alcotest.test_case (n ^ ": grouped DU maintenance") `Quick
      (test_du_grouping strategy);
  ]

let () =
  Alcotest.run "scheduler"
    (List.map (fun s -> (Strategy.to_string s, suite s)) strategies
    @ [
        ( "edge cases",
          [
            Alcotest.test_case "view becomes undefined" `Quick test_view_undefined;
            Alcotest.test_case "step limit" `Quick test_step_limit;
            Alcotest.test_case "idle accounting" `Quick test_idle_accounting;
            Alcotest.test_case "spaced SCs never abort" `Quick
              test_spaced_scs_never_abort;
          ] );
      ])
