(* Unit tests for the trace-derived report: episode extraction, outcome
   split, event counts, broken-query attribution. *)

open Dyno_sim
open Dyno_core

let tr () =
  let t = Trace.create () in
  (* a successful DU maintenance: 0.0 .. 0.3 *)
  Trace.record t ~time:0.0 Trace.Maint_start "#0@0.000s DU(R1@DS1, 1 tuples)";
  Trace.record t ~time:0.1 Trace.Query_sent "DS1 <- q";
  Trace.record t ~time:0.3 Trace.Refresh "view += 1";
  (* an aborted SC maintenance: 1.0 .. 8.5 *)
  Trace.record t ~time:1.0 Trace.Maint_start "#1@1.000s SC(ALTER ...)";
  Trace.record t ~time:8.5 Trace.Broken_query
    "broken query adapt:V:R3 at DS2: relation R3 does not exist";
  Trace.record t ~time:8.5 Trace.Abort "maintenance aborted";
  (* a successful batch: 9.0 .. 29.0 *)
  Trace.record t ~time:9.0 Trace.Maint_start "BATCH{#1; #2}";
  Trace.record t ~time:29.0 Trace.Adapt "view re-materialized";
  t

let test_episodes () =
  let r = Report.of_trace (tr ()) in
  Alcotest.(check int) "three episodes" 3 (List.length r.Report.episodes);
  let du_ok = Report.by_kind r Report.Du_maint ~aborted:false in
  Alcotest.(check int) "one successful DU" 1 (List.length du_ok);
  Alcotest.(check (float 1e-9)) "DU duration" 0.3 (List.hd du_ok);
  let sc_ab = Report.by_kind r Report.Sc_maint ~aborted:true in
  Alcotest.(check int) "one aborted SC" 1 (List.length sc_ab);
  Alcotest.(check (float 1e-9)) "SC abort duration" 7.5 (List.hd sc_ab);
  let batch_ok = Report.by_kind r Report.Batch_maint ~aborted:false in
  Alcotest.(check (float 1e-9)) "batch duration" 20.0 (List.hd batch_ok)

let test_summary () =
  let s = Report.summarize [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "count" 3 s.Report.count;
  Alcotest.(check (float 1e-9)) "total" 6.0 s.Report.total;
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Report.mean;
  Alcotest.(check (float 1e-9)) "max" 3.0 s.Report.max;
  Alcotest.(check int) "empty" 0 (Report.summarize []).Report.count

let test_event_counts () =
  let r = Report.of_trace (tr ()) in
  Alcotest.(check bool) "maint-start counted" true
    (List.assoc_opt Trace.Maint_start r.Report.event_counts = Some 3);
  Alcotest.(check bool) "zero kinds omitted" true
    (List.assoc_opt Trace.Compensate r.Report.event_counts = None)

let test_broken_by_source () =
  let r = Report.of_trace (tr ()) in
  Alcotest.(check (list (pair string int))) "DS2 blamed" [ ("DS2", 1) ]
    r.Report.broken_by_source

let test_on_live_run () =
  (* the report machinery must digest a real trace without confusion *)
  let timeline =
    Dyno_workload.Generator.mixed ~rows:10 ~seed:9 ~n_dus:10 ~du_interval:0.2
      ~sc_interval:2.0
      ~sc_kinds:(Dyno_workload.Generator.drop_then_renames 2)
      ()
  in
  let t =
    Dyno_workload.Scenario.make
      Dyno_workload.Scenario.Config.(
        default |> with_rows 10
        |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
        |> with_trace true)
      ~timeline
  in
  let stats =
    Dyno_workload.Scenario.run t
      ~config:(Dyno_core.Run_config.of_strategy Strategy.Pessimistic)
  in
  let r = Report.of_trace t.Dyno_workload.Scenario.trace in
  let finished =
    List.length (List.filter (fun e -> not e.Report.aborted) r.Report.episodes)
  in
  Alcotest.(check bool) "episodes cover all commits" true
    (finished >= stats.Stats.view_commits - stats.Stats.irrelevant);
  List.iter
    (fun e ->
      Alcotest.(check bool) "durations non-negative" true (e.Report.duration >= 0.0))
    r.Report.episodes

let () =
  Alcotest.run "report"
    [
      ( "report",
        [
          Alcotest.test_case "episode extraction" `Quick test_episodes;
          Alcotest.test_case "summaries" `Quick test_summary;
          Alcotest.test_case "event counts" `Quick test_event_counts;
          Alcotest.test_case "broken-query attribution" `Quick test_broken_by_source;
          Alcotest.test_case "live run digestion" `Quick test_on_live_run;
        ] );
    ]
