(* Unit tests for the view-manager infrastructure: UMQ (flags, reorder
   invariants, pending-DU index), View_def (read/write/rollback), Mat_view
   (refresh guard, commit log), Query_engine (delivery order and in-exec
   broken-query detection). *)

open Dyno_relational
open Dyno_view

let schema = Schema.of_list [ Attr.int "k" ]

let du_payload k =
  Update_msg.Du
    (Update.make ~source:"ds" ~rel:"R" (Relation.of_list schema [ [ Value.int k ] ]))

let sc_payload () =
  Update_msg.Sc
    (Schema_change.Rename_relation { source = "ds"; old_name = "R"; new_name = "R2" })

let test_umq_enqueue_and_flags () =
  let q = Umq.create () in
  Alcotest.(check bool) "starts empty" true (Umq.is_empty q);
  let m0 = Umq.enqueue q ~commit_time:0.0 ~source_version:1 (du_payload 1) in
  Alcotest.(check int) "id 0" 0 (Update_msg.id m0);
  Alcotest.(check bool) "no SC flag from DU" false (Umq.peek_schema_change_flag q);
  let _m1 = Umq.enqueue q ~commit_time:1.0 ~source_version:2 (sc_payload ()) in
  Alcotest.(check bool) "SC sets flag" true (Umq.peek_schema_change_flag q);
  Alcotest.(check bool) "test-and-clear returns true" true
    (Umq.test_and_clear_schema_change_flag q);
  Alcotest.(check bool) "then false" false (Umq.test_and_clear_schema_change_flag q);
  Alcotest.(check int) "length" 2 (Umq.length q);
  Alcotest.(check int) "history" 2 (List.length (Umq.history q))

let test_umq_remove_head () =
  let q = Umq.create () in
  let m0 = Umq.enqueue q ~commit_time:0.0 ~source_version:1 (du_payload 1) in
  let m1 = Umq.enqueue q ~commit_time:1.0 ~source_version:2 (du_payload 2) in
  ignore m1;
  (match Umq.head q with
  | Some (Umq.Single m) -> Alcotest.(check int) "head is first" (Update_msg.id m0) (Update_msg.id m)
  | _ -> Alcotest.fail "expected head");
  Umq.remove_head q;
  Alcotest.(check int) "one left" 1 (Umq.length q);
  (* history survives removal *)
  Alcotest.(check int) "history intact" 2 (List.length (Umq.history q))

let test_umq_replace_invariant () =
  let q = Umq.create () in
  let m0 = Umq.enqueue q ~commit_time:0.0 ~source_version:1 (du_payload 1) in
  let m1 = Umq.enqueue q ~commit_time:1.0 ~source_version:2 (du_payload 2) in
  (* legal: reorder *)
  Umq.replace q [ Umq.Single m1; Umq.Single m0 ];
  (match Umq.head q with
  | Some (Umq.Single m) -> Alcotest.(check int) "reordered" 1 (Update_msg.id m)
  | _ -> Alcotest.fail "head");
  (* legal: merge into a batch *)
  Umq.replace q [ Umq.Batch [ m0; m1 ] ];
  Alcotest.(check int) "merged" 1 (Umq.length q);
  (* illegal: dropping an update *)
  Alcotest.(check bool) "dropping update rejected" true
    (match Umq.replace q [ Umq.Single m0 ] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_umq_pending_index () =
  let q = Umq.create () in
  let _ = Umq.enqueue q ~commit_time:0.0 ~source_version:1 (du_payload 1) in
  let _ = Umq.enqueue q ~commit_time:1.0 ~source_version:2 (du_payload 2) in
  let _ = Umq.enqueue q ~commit_time:2.0 ~source_version:3 (sc_payload ()) in
  let pend = Umq.pending_dus q ~source:"ds" ~rel:"R" in
  Alcotest.(check int) "two pending DUs (SC not indexed)" 2 (List.length pend);
  (* in commit order *)
  (match pend with
  | [ (a, _); (b, _) ] ->
      Alcotest.(check bool) "ordered" true (Update_msg.id a < Update_msg.id b)
  | _ -> Alcotest.fail "expected 2");
  Umq.remove_head q;
  Alcotest.(check int) "index follows removal" 1
    (List.length (Umq.pending_dus q ~source:"ds" ~rel:"R"));
  Alcotest.(check int) "other rel empty" 0
    (List.length (Umq.pending_dus q ~source:"ds" ~rel:"Other"))

let view_q () =
  Query.make ~name:"V"
    ~select:[ Query.item "R.k" ]
    ~from:[ Query.table ~alias:"R" "ds" "R" ]
    ~where:[]

let test_view_def () =
  let vd = View_def.create ~schemas:[ ("R", schema) ] (view_q ()) in
  Alcotest.(check int) "version 0" 0 (View_def.version vd);
  let _q, v = View_def.read vd in
  Alcotest.(check int) "read version" 0 v;
  Alcotest.(check int) "reads counted" 1 (View_def.reads vd);
  let saved = View_def.save vd in
  View_def.write vd ~schemas:[ ("R", schema) ]
    (Query.rename_relation (view_q ()) ~source:"ds" ~old_rel:"R" ~new_rel:"R2");
  Alcotest.(check int) "version bumped" 1 (View_def.version vd);
  Alcotest.(check bool) "rewritten" true
    (Query.mentions_relation (View_def.peek vd) ~source:"ds" ~rel:"R2");
  View_def.restore vd saved;
  Alcotest.(check bool) "rolled back" true
    (Query.mentions_relation (View_def.peek vd) ~source:"ds" ~rel:"R");
  View_def.invalidate vd;
  Alcotest.(check bool) "invalid" false (View_def.is_valid vd)

let test_mat_view () =
  let vd = View_def.create ~schemas:[ ("R", schema) ] (view_q ()) in
  let mv =
    Mat_view.create ~track_snapshots:true vd (Relation.of_list schema [ [ Value.int 1 ] ])
  in
  let delta = Relation.of_counted schema [ ([ Value.int 2 ], 1) ] in
  Mat_view.refresh mv ~at:1.0 ~maintained:[ 0 ] delta;
  Alcotest.(check int) "extent grew" 2 (Relation.cardinality (Mat_view.extent mv));
  Alcotest.(check int) "one commit" 1 (Mat_view.commit_count mv);
  (match Mat_view.commits mv with
  | [ c ] ->
      Alcotest.(check bool) "snapshot taken" true (c.Mat_view.snapshot <> None);
      Alcotest.(check (list int)) "maintained ids" [ 0 ] c.Mat_view.maintained
  | _ -> Alcotest.fail "one commit expected");
  (* deleting a non-existent tuple trips the guard *)
  let bad = Relation.of_counted schema [ ([ Value.int 99 ], -1) ] in
  Alcotest.(check bool) "negative refresh trapped" true
    (match Mat_view.refresh mv ~at:2.0 ~maintained:[ 1 ] bad with
    | () -> false
    | exception Invalid_argument _ -> true)

(* -- Query_engine: delivery semantics ------------------------------- *)

let make_world () =
  let src = Dyno_source.Data_source.create "ds" in
  Dyno_source.Data_source.add_relation src "R" schema;
  Dyno_source.Data_source.load src "R" [ [ Value.int 1 ] ];
  let registry = Dyno_source.Registry.create () in
  Dyno_source.Registry.register registry src;
  let umq = Umq.create () in
  let timeline = Dyno_sim.Timeline.create () in
  let w =
    Query_engine.create
      ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
      ~registry ~timeline ~umq ()
  in
  (w, src, timeline, umq)

let test_engine_delivery_before_answer () =
  let w, _src, timeline, umq = make_world () in
  (* a DU commits 10ms into the 30ms probe round trip: the answer must
     include it (Definition 2) and the message must be queued *)
  Dyno_sim.Timeline.schedule timeline ~time:0.01
    (Dyno_sim.Timeline.Du
       (Update.make ~source:"ds" ~rel:"R" (Relation.of_list schema [ [ Value.int 2 ] ])));
  match Query_engine.execute w (view_q ()) ~bound:[] ~target:"ds" with
  | Ok ans ->
      Alcotest.(check int) "answer reflects concurrent commit" 2
        (Relation.cardinality ans.Dyno_source.Data_source.rows);
      Alcotest.(check int) "message enqueued" 1 (Umq.length umq)
  | Error _ -> Alcotest.fail "no break expected"

let test_engine_broken_flag () =
  let w, _src, timeline, umq = make_world () in
  Dyno_sim.Timeline.schedule timeline ~time:0.01
    (Dyno_sim.Timeline.Sc
       (Schema_change.Drop_relation { source = "ds"; name = "R" }));
  (match Query_engine.execute w (view_q ()) ~bound:[] ~target:"ds" with
  | Ok _ -> Alcotest.fail "probe should break"
  | Error (Query_engine.Broken b) ->
      Alcotest.(check string) "reason mentions relation" "ds"
        b.Dyno_source.Data_source.source
  | Error (Query_engine.Unreachable _) -> Alcotest.fail "not a net failure");
  Alcotest.(check bool) "broken flag raised" true (Umq.broken_query_flag umq)

let test_engine_validate () =
  let w, _src, timeline, _umq = make_world () in
  Alcotest.(check bool) "valid now" true
    (Query_engine.validate w (view_q ()) ~target:"ds" = Ok ());
  Dyno_sim.Timeline.schedule timeline ~time:0.001
    (Dyno_sim.Timeline.Sc
       (Schema_change.Rename_relation { source = "ds"; old_name = "R"; new_name = "RX" }));
  Alcotest.(check bool) "validation catches rename" true
    (match Query_engine.validate w (view_q ()) ~target:"ds" with
    | Error _ -> true
    | Ok () -> false)

let () =
  Alcotest.run "view"
    [
      ( "umq",
        [
          Alcotest.test_case "enqueue & flags" `Quick test_umq_enqueue_and_flags;
          Alcotest.test_case "remove head" `Quick test_umq_remove_head;
          Alcotest.test_case "replace preserves updates" `Quick test_umq_replace_invariant;
          Alcotest.test_case "pending-DU index" `Quick test_umq_pending_index;
        ] );
      ( "view definition & extent",
        [
          Alcotest.test_case "read/write/rollback" `Quick test_view_def;
          Alcotest.test_case "materialized view" `Quick test_mat_view;
        ] );
      ( "query engine",
        [
          Alcotest.test_case "commits delivered before answer" `Quick
            test_engine_delivery_before_answer;
          Alcotest.test_case "in-exec broken detection" `Quick test_engine_broken_flag;
          Alcotest.test_case "metadata validation" `Quick test_engine_validate;
        ] );
    ]
