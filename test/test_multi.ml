(* Integration tests for the multi-view extension: one update stream
   maintained into several materialized views over the paper's sources.
   Both views must converge and stay strongly consistent under every
   strategy, including runs with aborts where a later view's break leaves
   earlier views already committed (the applied-set machinery). *)

open Dyno_relational
open Dyno_view
open Dyno_workload
open Dyno_core

(* Second view: a narrower join over R1, R2 only. *)
let view2_query () =
  Query.make ~name:"V2"
    ~select:[ Query.item "R1.K1"; Query.item "R1.B1"; Query.item "R2.B2" ]
    ~from:
      [
        Query.table "DS1" "R1";
        Query.table "DS1" "R2";
      ]
    ~where:[ Predicate.eq_attr "R1.K1" "R2.K2" ]

let view2_schemas () =
  [ ("R1", Paper_schema.schema_of_rel 1); ("R2", Paper_schema.schema_of_rel 2) ]

type world = {
  registry : Dyno_source.Registry.t;
  mk : Dyno_source.Meta_knowledge.t;
  umq : Umq.t;
  engine : Query_engine.t;
  multi : Multi_scheduler.t;
}

let make_world ~rows ~cost ~timeline () =
  let registry = Paper_schema.build_sources ~rows in
  let mk = Paper_schema.build_meta () in
  let umq = Umq.create () in
  let trace = Dyno_sim.Trace.create ~enabled:true () in
  let engine = Query_engine.create ~trace ~cost ~registry ~timeline ~umq () in
  let materialize query schemas =
    let vd = View_def.create ~schemas query in
    let mv = Mat_view.create ~track_snapshots:true vd (Relation.create Schema.empty) in
    let env (tr : Query.table_ref) =
      Dyno_source.Data_source.relation
        (Dyno_source.Registry.find registry tr.source)
        tr.rel
    in
    Mat_view.replace mv ~at:0.0 ~maintained:[] (Eval.run ~catalog:env query);
    mv
  in
  let mv1 = materialize (Paper_schema.view_query ()) (Paper_schema.view_schemas ()) in
  let mv2 = materialize (view2_query ()) (view2_schemas ()) in
  { registry; mk; umq; engine; multi = Multi_scheduler.create [ mv1; mv2 ] }

let check_view w mv label =
  let vd = Mat_view.def mv in
  if View_def.is_valid vd then begin
    (match Consistency.convergent w.engine mv with
    | Ok true -> ()
    | Ok false -> Alcotest.failf "%s did not converge" label
    | Error e -> Alcotest.failf "%s not checkable: %s" label e);
    let msg_index =
      List.map
        (fun m ->
          (Update_msg.id m, (Update_msg.source m, Update_msg.source_version m)))
        (Umq.history w.umq)
    in
    let r = Consistency.check_strong w.engine mv ~msg_index in
    if not (Consistency.ok r) then
      Alcotest.failf "%s strong consistency: %a" label Consistency.pp_report r
  end

let run_and_check ~rows ~cost ~timeline ~strategy () =
  let w = make_world ~rows ~cost ~timeline () in
  let stats =
    Multi_scheduler.run
      ~config:
        Dyno_core.Run_config.(of_strategy strategy |> with_max_steps 200_000)
      w.engine w.multi w.mk
  in
  Alcotest.(check bool) "queue drained" true (Umq.is_empty w.umq);
  List.iteri
    (fun i mv -> check_view w mv (Fmt.str "view %d" i))
    (Multi_scheduler.views w.multi);
  (w, stats)

let test_du_only strategy () =
  let timeline =
    Generator.mixed ~rows:20 ~seed:41 ~n_dus:25 ~du_interval:0.0
      ~sc_interval:0.0 ~sc_kinds:[] ()
  in
  let _, stats =
    run_and_check ~rows:20 ~cost:Dyno_sim.Cost_model.free ~timeline ~strategy ()
  in
  Alcotest.(check int) "no aborts" 0 stats.Stats.aborts

let test_mixed strategy () =
  let timeline =
    Generator.mixed ~rows:15 ~seed:42 ~n_dus:20 ~du_interval:0.1 ~sc_start:0.3
      ~sc_interval:1.2
      ~sc_kinds:(Generator.drop_then_renames 4)
      ()
  in
  ignore
    (run_and_check ~rows:15
       ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
       ~timeline ~strategy ())

let test_partial_application () =
  (* Force the later-view-breaks scenario: a DU is committed, then an SC
     lands mid-maintenance of view 2 (the narrower view over DS1) so that
     view 1 may already have committed the DU.  Correctness must survive
     the retry. *)
  let timeline =
    Generator.build ~rows:12 ~seed:43
      [
        Generator.At_du 0.0;
        Generator.At_du 0.0;
        Generator.At_sc (0.15, Generator.Rename_rel);
        Generator.At_du 0.2;
        Generator.At_sc (0.4, Generator.Drop_attr);
        Generator.At_du 0.5;
      ]
  in
  ignore
    (run_and_check ~rows:12
       ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
       ~timeline ~strategy:Strategy.Pessimistic ())

let test_views_see_different_relevance () =
  (* updates on R5/R6 are irrelevant to the narrow view but not to the
     wide one; both must stay consistent *)
  let timeline =
    Generator.build ~rows:10 ~seed:44
      (List.init 10 (fun i -> Generator.At_du (float_of_int i *. 0.05)))
  in
  let w, _ =
    run_and_check ~rows:10 ~cost:Dyno_sim.Cost_model.free ~timeline
      ~strategy:Strategy.Optimistic ()
  in
  match Multi_scheduler.views w.multi with
  | [ mv1; mv2 ] ->
      Alcotest.(check bool) "narrow view has fewer columns" true
        (Schema.arity (Relation.schema (Mat_view.extent mv2))
        < Schema.arity (Relation.schema (Mat_view.extent mv1)))
  | _ -> Alcotest.fail "two views expected"

let () =
  Alcotest.run "multi-view"
    [
      ( "multi-view",
        List.concat_map
          (fun strategy ->
            let n = Strategy.to_string strategy in
            [
              Alcotest.test_case (n ^ ": DU-only") `Quick (test_du_only strategy);
              Alcotest.test_case (n ^ ": mixed") `Quick (test_mixed strategy);
            ])
          Strategy.all
        @ [
            Alcotest.test_case "partial application across views" `Quick
              test_partial_application;
            Alcotest.test_case "different relevance per view" `Quick
              test_views_see_different_relevance;
          ] );
    ]
