(* The reproduction claims of EXPERIMENTS.md, encoded as assertions: every
   qualitative shape the paper's figures exhibit must hold on scaled-down
   runs of the same workloads.  Simulated time depends on the cost model's
   row scaling, not the physical extent, so small physical relations
   reproduce the bench numbers at a fraction of the wall time. *)

open Dyno_relational
open Dyno_workload
open Dyno_core

let rows = 50
let cost () = Dyno_sim.Cost_model.scaled (100_000.0 /. float_of_int rows)

let config () =
  Scenario.Config.(default |> with_rows rows |> with_cost (cost ()))

let run ~timeline ~strategy =
  let t = Scenario.make (config ()) ~timeline in
  Scenario.run t ~config:(Run_config.of_strategy strategy)

let mixed ~seed ~n_dus ~n_scs ~sc_interval ~strategy =
  run
    ~timeline:
      (Generator.mixed ~rows ~seed ~n_dus ~du_interval:1.0 ~sc_interval
         ~sc_kinds:(Generator.drop_then_renames n_scs)
         ())
    ~strategy

(* Figure 8: detection overhead unobservable; cost linear in #DUs. *)
let test_fig8_shape () =
  let du_only n strategy =
    run
      ~timeline:
        (Generator.mixed ~rows ~seed:8 ~n_dus:n ~du_interval:0.0
           ~sc_interval:0.0 ~sc_kinds:[] ())
      ~strategy
  in
  let with500 = du_only 500 Strategy.Pessimistic in
  let without500 = du_only 500 Strategy.Optimistic in
  Alcotest.(check bool) "detection overhead unobservable (< 0.5%)" true
    (Float.abs (with500.Stats.busy -. without500.Stats.busy)
    < 0.005 *. with500.Stats.busy);
  let with1000 = du_only 1000 Strategy.Pessimistic in
  let ratio = with1000.Stats.busy /. with500.Stats.busy in
  Alcotest.(check bool)
    (Fmt.str "linear: 1000/500 ratio %.2f within [1.8, 2.2]" ratio)
    true
    (ratio > 1.8 && ratio < 2.2)

(* Figure 9: aborting SC maintenance is expensive, aborting DU maintenance
   is cheap; pessimistic avoids the expensive abort. *)
let test_fig9_shape () =
  let du_r1 =
    Dyno_sim.Timeline.Du
      (Update.insert ~source:"DS1" ~rel:"R1"
         (Paper_schema.schema_of_rel 1)
         (Paper_schema.tuple_for ~salt:777 1 0))
  in
  let drop_r3 =
    Dyno_sim.Timeline.Sc
      (Schema_change.Drop_attribute { source = "DS2"; rel = "R3"; attr = "B3" })
  in
  let rename_r5 =
    Dyno_sim.Timeline.Sc
      (Schema_change.Rename_relation
         { source = "DS3"; old_name = "R5"; new_name = "R5X" })
  in
  let flood events strategy =
    run ~timeline:(Dyno_sim.Timeline.of_list (List.map (fun e -> (0.0, e)) events)) ~strategy
  in
  let opt_du_sc = flood [ du_r1; drop_r3 ] Strategy.Optimistic in
  let opt_sc_sc = flood [ drop_r3; rename_r5 ] Strategy.Optimistic in
  let pess_sc_sc = flood [ drop_r3; rename_r5 ] Strategy.Pessimistic in
  Alcotest.(check bool) "DU abort cheap (< 1 s)" true
    (opt_du_sc.Stats.abort_cost < 1.0);
  Alcotest.(check bool) "SC abort expensive (> 5 s)" true
    (opt_sc_sc.Stats.abort_cost > 5.0);
  Alcotest.(check bool) "pessimistic avoids the SC abort" true
    (pess_sc_sc.Stats.abort_cost < 0.5);
  Alcotest.(check bool) "optimistic total > pessimistic total" true
    (opt_sc_sc.Stats.busy > pess_sc_sc.Stats.busy +. 5.0)

(* Figure 10: cheapest at interval 0; abort peaks near the SC maintenance
   time then collapses; pessimistic aborts <= optimistic aborts. *)
let test_fig10_shape () =
  let point itv strategy =
    mixed ~seed:21 ~n_dus:200 ~n_scs:10 ~sc_interval:itv ~strategy
  in
  let p0 = point 0.0 Strategy.Pessimistic in
  let p9 = point 9.0 Strategy.Pessimistic in
  let p23 = point 23.0 Strategy.Pessimistic in
  let p41 = point 41.0 Strategy.Pessimistic in
  Alcotest.(check bool) "interval 0 cheapest" true
    (p0.Stats.busy < p9.Stats.busy && p0.Stats.busy < p23.Stats.busy);
  Alcotest.(check bool) "abort peaks near SC maintenance time" true
    (p23.Stats.abort_cost > p9.Stats.abort_cost);
  Alcotest.(check bool) "aborts collapse once intervals exceed maintenance"
    true
    (p41.Stats.abort_cost < 0.1 *. p23.Stats.abort_cost);
  let o9 = point 9.0 Strategy.Optimistic in
  Alcotest.(check bool) "pessimistic aborts <= optimistic aborts" true
    (p9.Stats.abort_cost <= o9.Stats.abort_cost +. 1e-9)

(* Figure 11: abort cost grows with the number of schema changes. *)
let test_fig11_shape () =
  let point n = mixed ~seed:22 ~n_dus:200 ~n_scs:n ~sc_interval:25.0
      ~strategy:Strategy.Pessimistic
  in
  let p5 = point 5 and p15 = point 15 in
  Alcotest.(check bool) "abort grows with #SCs" true
    (p15.Stats.abort_cost > 1.5 *. p5.Stats.abort_cost);
  Alcotest.(check bool) "total grows with #SCs" true
    (p15.Stats.busy > p5.Stats.busy)

(* Figure 12: abort cost flat in #DUs. *)
let test_fig12_shape () =
  let point n = mixed ~seed:23 ~n_dus:n ~n_scs:5 ~sc_interval:25.0
      ~strategy:Strategy.Pessimistic
  in
  let p200 = point 200 and p400 = point 400 in
  Alcotest.(check bool)
    (Fmt.str "abort flat: %.1f vs %.1f" p200.Stats.abort_cost p400.Stats.abort_cost)
    true
    (Float.abs (p400.Stats.abort_cost -. p200.Stats.abort_cost)
    < 0.1 *. Float.max 1.0 p200.Stats.abort_cost);
  Alcotest.(check bool) "total grows with #DUs" true
    (p400.Stats.busy > p200.Stats.busy)

(* Baseline: incremental maintenance beats naive recompute by a wide
   margin. *)
let test_baseline_shape () =
  let du_only vm_mode =
    let timeline =
      Generator.mixed ~rows ~seed:32 ~n_dus:50 ~du_interval:0.0
        ~sc_interval:0.0 ~sc_kinds:[] ()
    in
    let t = Scenario.make (config ()) ~timeline in
    Scenario.run t
      ~config:
        Run_config.(
          of_strategy Strategy.Pessimistic |> with_vm_mode vm_mode)
  in
  let inc = du_only Run_config.Incremental in
  let rec_ = du_only Run_config.Recompute in
  Alcotest.(check bool) "incremental >= 20x cheaper" true
    (rec_.Stats.busy > 20.0 *. inc.Stats.busy)

let () =
  Alcotest.run "figures"
    [
      ( "paper shapes",
        [
          Alcotest.test_case "Figure 8: detection free, cost linear" `Quick
            test_fig8_shape;
          Alcotest.test_case "Figure 9: abort cost asymmetry" `Quick
            test_fig9_shape;
          Alcotest.test_case "Figure 10: interval sweep shape" `Quick
            test_fig10_shape;
          Alcotest.test_case "Figure 11: abort grows with #SCs" `Quick
            test_fig11_shape;
          Alcotest.test_case "Figure 12: abort flat in #DUs" `Quick
            test_fig12_shape;
          Alcotest.test_case "baseline: incremental beats recompute" `Quick
            test_baseline_shape;
        ] );
    ]
