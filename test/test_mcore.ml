(* Multicore runtime: maintenance compute on real OCaml 5 domains.

   Two layers under test.  [Dyno_sim.Domain_pool] is the fixed worker
   set with chunked work stealing: results must come back in input
   order, the first failing task (in input order) must re-raise on the
   coordinator, and shutdown must drain and join every worker.  Above
   it, [--runtime domains:N] must be observationally equivalent to the
   default simulated backend: the pool only relocates pure local-sweep
   compute, so for every workload, fault mix, strategy and shard count
   the final extent, the consistency verdicts and the per-source
   applied sets are identical. *)

open Dyno_relational
open Dyno_net
open Dyno_workload
module Pool = Dyno_sim.Domain_pool

(* -- Domain_pool ------------------------------------------------------- *)

let test_pool_order () =
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let n = 100 in
      let tasks =
        Array.init n (fun i () ->
            (* Uneven work so fast tasks finish out of order internally. *)
            let acc = ref 0 in
            for k = 0 to (i mod 7) * 1000 do
              acc := !acc + k
            done;
            ignore !acc;
            i * i)
      in
      let results = Pool.run_all pool tasks in
      Alcotest.(check int) "result count" n (Array.length results);
      Array.iteri
        (fun i r -> Alcotest.(check int) (Fmt.str "slot %d" i) (i * i) r)
        results)

exception Boom of int

let test_pool_exception () =
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let tasks =
        Array.init 20 (fun i () ->
            if i = 3 || i = 17 then raise (Boom i) else i)
      in
      (match Pool.run_all pool tasks with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) "first failure in input order wins" 3 i);
      (* The pool survives a failed batch: the next batch is clean. *)
      let ok = Pool.run_all pool (Array.init 8 (fun i () -> i + 1)) in
      Alcotest.(check int) "pool reusable after failure" 8 ok.(7))

let test_pool_shutdown_drains () =
  let pool = Pool.create ~domains:3 in
  let r = Pool.run_all pool (Array.init 50 (fun i () -> 2 * i)) in
  Alcotest.(check int) "batch before shutdown" 98 r.(49);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  (* After shutdown the pool degrades to serial evaluation — no worker
     is left to park a task on, and nothing hangs. *)
  let r = Pool.run_all pool (Array.init 5 (fun i () -> i + 10)) in
  Alcotest.(check int) "serial after shutdown" 14 r.(4)

let test_pool_serial_and_nesting () =
  let pool = Pool.create ~domains:1 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let r = Pool.run_all pool (Array.init 9 (fun i () -> i * 3)) in
      Alcotest.(check int) "domains:1 runs serially on the caller" 24 r.(8);
      Alcotest.(check int) "empty batch" 0
        (Array.length (Pool.run_all pool [||])));
  let pool = Pool.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      match
        Pool.run_all pool
          [| (fun () -> Array.length (Pool.run_all pool [| (fun () -> 0) |])) |]
      with
      | _ -> Alcotest.fail "nested run_all must be rejected"
      | exception Invalid_argument _ -> ())

(* -- the runtime actually offloads ------------------------------------- *)

let scenario ?faults ?net_seed ?(shards = 1) ~seed ~n_dus ~n_scs () =
  let timeline =
    Generator.mixed ~rows:10 ~seed ~n_dus ~du_interval:0.2 ~sc_start:0.1
      ~sc_interval:1.5
      ~sc_kinds:(Generator.drop_then_renames n_scs)
      ()
  in
  let c =
    Scenario.Config.(
      default |> with_rows 10
      |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
      |> with_snapshots true |> with_shards shards)
  in
  let c =
    match faults with Some f -> Scenario.Config.with_faults f c | None -> c
  in
  let c =
    match net_seed with
    | Some n -> Scenario.Config.with_net_seed n c
    | None -> c
  in
  Scenario.make c ~timeline

let run_with ~runtime ?faults ?net_seed ?shards ~strategy ~seed ~n_dus ~n_scs
    () =
  let t = scenario ?faults ?net_seed ?shards ~seed ~n_dus ~n_scs () in
  let stats =
    Scenario.run t
      ~config:
        Dyno_core.Run_config.(
          of_strategy strategy |> with_parallel 4 |> with_self_maint true
          |> with_runtime runtime)
  in
  (t, stats)

let test_offload_fires () =
  let _, stats =
    run_with ~runtime:(`Domains 2)
      ~strategy:Dyno_core.Strategy.Pessimistic ~seed:7 ~n_dus:24 ~n_scs:0 ()
  in
  Alcotest.(check bool)
    "sweeps ran on worker domains" true
    (stats.Dyno_core.Stats.mcore_tasks > 0);
  let _, stats =
    run_with ~runtime:`Simulated ~strategy:Dyno_core.Strategy.Pessimistic
      ~seed:7 ~n_dus:24 ~n_scs:0 ()
  in
  Alcotest.(check int)
    "simulated backend never counts pool tasks" 0
    stats.Dyno_core.Stats.mcore_tasks

(* -- the golden property ----------------------------------------------- *)

(* Per-source sets of integrated update versions (see test_shard.ml). *)
let applied_per_source (t : Scenario.t) =
  let index = Scenario.msg_index t in
  let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : Dyno_view.Mat_view.commit) ->
      List.iter
        (fun id ->
          match List.assoc_opt id index with
          | None -> ()
          | Some (src, version) -> (
              match Hashtbl.find_opt tbl src with
              | Some l -> l := version :: !l
              | None -> Hashtbl.add tbl src (ref [ version ])))
        c.maintained)
    (Dyno_view.Mat_view.commits t.mv);
  Hashtbl.fold
    (fun src l acc -> (src, List.sort_uniq Int.compare !l) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let arb_mcore_workload =
  QCheck.make
    QCheck.Gen.(
      let f01 lo hi =
        map (fun x -> float_of_int x /. 100.0) (int_range lo hi)
      in
      pair
        (quad (int_range 1 10000) (int_range 1 12) (int_range 0 2)
           (int_range 0 2))
        (quad (f01 0 25) (f01 0 25)
           (pair (f01 0 25) (int_range 0 2))
           (pair (int_range 0 1000) (int_range 0 2))))
    ~print:(fun ( (seed, dus, scs, strat),
                  (loss, dup, (reorder, sh), (net_seed, dom)) ) ->
      Fmt.str
        "seed=%d dus=%d scs=%d strategy=%d loss=%.2f dup=%.2f reorder=%.2f \
         shards=%d net_seed=%d domains=%d"
        seed dus scs strat loss dup reorder
        (match sh with 0 -> 1 | 1 -> 2 | _ -> 4)
        net_seed
        (match dom with 0 -> 1 | 1 -> 2 | _ -> 4))

let prop_domains_equals_simulated =
  QCheck.Test.make
    ~name:
      "--runtime domains:N is observationally the simulated backend \
       (faults, SCs, shards included)"
    ~count:300 arb_mcore_workload
    (fun ( (seed, n_dus, n_scs, strat),
           (loss, dup, (reorder, sh), (net_seed, dom)) ) ->
      let strategy =
        match strat with
        | 0 -> Dyno_core.Strategy.Pessimistic
        | 1 -> Dyno_core.Strategy.Optimistic
        | _ -> Dyno_core.Strategy.Merge_all
      in
      let shards = match sh with 0 -> 1 | 1 -> 2 | _ -> 4 in
      let domains = match dom with 0 -> 1 | 1 -> 2 | _ -> 4 in
      let faults =
        {
          Channel.reliable with
          loss;
          dup;
          reorder;
          reorder_delay = 0.5;
          retransmit = 0.05;
        }
      in
      let run ~runtime =
        run_with ~runtime ~faults ~net_seed ~shards ~strategy ~seed ~n_dus
          ~n_scs ()
      in
      let tb, stats_b = run ~runtime:`Simulated in
      let td, stats_d = run ~runtime:(`Domains domains) in
      let same_extent =
        Relation.equal
          (Dyno_view.Mat_view.extent tb.Scenario.mv)
          (Dyno_view.Mat_view.extent td.Scenario.mv)
      in
      let convergent =
        match Scenario.check_convergent td with
        | Ok b -> b
        | Error _ -> false
      in
      let same_strong =
        Bool.equal
          (Dyno_core.Consistency.ok (Scenario.check_strong tb))
          (Dyno_core.Consistency.ok (Scenario.check_strong td))
      in
      let same_applied = applied_per_source tb = applied_per_source td in
      let no_undefined =
        stats_b.Dyno_core.Stats.view_undefined
        = stats_d.Dyno_core.Stats.view_undefined
      in
      same_extent && convergent && same_strong && same_applied && no_undefined)

let to_alcotest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "mcore"
    [
      ( "pool",
        [
          Alcotest.test_case "results in input order" `Quick test_pool_order;
          Alcotest.test_case "first exception propagates" `Quick
            test_pool_exception;
          Alcotest.test_case "shutdown drains and joins" `Quick
            test_pool_shutdown_drains;
          Alcotest.test_case "serial pool + nesting rejected" `Quick
            test_pool_serial_and_nesting;
        ] );
      ( "runtime",
        [ Alcotest.test_case "offload fires" `Quick test_offload_fires ] );
      ( "equivalence",
        List.map to_alcotest [ prop_domains_equals_simulated ] );
    ]
