(* Property-based tests (qcheck, registered as alcotest cases):

   - algebraic laws of signed-multiset relations, including the linearity
     that SWEEP compensation and Equation 6 rely on;
   - Equation 6 equals new-minus-old for arbitrary old/new states;
   - schema-change delta composition laws;
   - correction always produces a legal order (Theorem 2) and never loses
     an update;
   - the golden end-to-end property: for random mixed workloads, every
     strategy drives the view to convergence with strong consistency. *)

open Dyno_relational

let schema = Schema.of_list [ Attr.int "k"; Attr.int "v" ]
let schema_b = Schema.of_list [ Attr.int "k2"; Attr.int "w" ]

(* -- generators ------------------------------------------------------ *)

let gen_relation ?(sch = schema) () =
  QCheck.Gen.(
    let tuple =
      map2 (fun k v -> [ Value.int k; Value.int v ]) (int_range 0 5) (int_range 0 3)
    in
    let entry = map2 (fun t c -> (t, c)) tuple (int_range (-3) 3) in
    map (fun entries -> Relation.of_counted sch entries) (list_size (int_range 0 10) entry))

let arb_relation = QCheck.make (gen_relation ()) ~print:(Fmt.str "%a" Relation.pp)

let arb_relation_b =
  QCheck.make (gen_relation ~sch:schema_b ()) ~print:(Fmt.str "%a" Relation.pp)

let arb_pos_relation =
  QCheck.make
    QCheck.Gen.(map Relation.positive (gen_relation ()))
    ~print:(Fmt.str "%a" Relation.pp)

(* -- relation algebra -------------------------------------------------- *)

let prop_sum_commutative =
  QCheck.Test.make ~name:"sum is commutative" ~count:200
    (QCheck.pair arb_relation arb_relation)
    (fun (a, b) -> Relation.equal (Relation.sum a b) (Relation.sum b a))

let prop_sum_associative =
  QCheck.Test.make ~name:"sum is associative" ~count:200
    (QCheck.triple arb_relation arb_relation arb_relation)
    (fun (a, b, c) ->
      Relation.equal
        (Relation.sum a (Relation.sum b c))
        (Relation.sum (Relation.sum a b) c))

let prop_diff_self_empty =
  QCheck.Test.make ~name:"a - a = 0" ~count:200 arb_relation (fun a ->
      Relation.is_empty (Relation.diff a a))

let prop_negate_distributes =
  QCheck.Test.make ~name:"-(a+b) = (-a)+(-b)" ~count:200
    (QCheck.pair arb_relation arb_relation)
    (fun (a, b) ->
      Relation.equal
        (Relation.negate (Relation.sum a b))
        (Relation.sum (Relation.negate a) (Relation.negate b)))

let prop_pos_neg_decomposition =
  QCheck.Test.make ~name:"a = pos(a) - neg(a)" ~count:200 arb_relation (fun a ->
      Relation.equal a (Relation.diff (Relation.positive a) (Relation.negative a)))

let prop_project_preserves_cardinality =
  QCheck.Test.make ~name:"projection preserves signed cardinality" ~count:200
    arb_relation (fun a ->
      Relation.cardinality (Relation.project a [ "v" ]) = Relation.cardinality a)

let join_query =
  Query.make ~name:"J"
    ~select:[ Query.item "A.k"; Query.item "A.v"; Query.item "B.w" ]
    ~from:[ Query.table ~alias:"A" "x" "A"; Query.table ~alias:"B" "x" "B" ]
    ~where:[ Predicate.eq_attr "A.k" "B.k2" ]

let eval_join a b = Eval.run ~catalog:(Eval.catalog [ ("A", a); ("B", b) ]) join_query

let prop_join_linearity =
  QCheck.Test.make ~name:"SPJ queries are linear: J(a+b,c) = J(a,c)+J(b,c)"
    ~count:200
    (QCheck.triple arb_relation arb_relation arb_relation_b)
    (fun (a, b, c) ->
      Relation.equal (eval_join (Relation.sum a b) c)
        (Relation.sum (eval_join a c) (eval_join b c)))

(* -- evaluator against a naive reference -------------------------------- *)

(* reference evaluation: full cross product, then filter, then project —
   no push-down, no hash joins, no binder cleverness *)
let reference_eval (env : (string * Relation.t) list) (q : Query.t) =
  let schemas = List.map (fun (a, r) -> (a, Relation.schema r)) env in
  (* absolute position of alias.attr in the product tuple *)
  let resolve (r : Attr.Qualified.t) =
    let alias =
      match Attr.Qualified.rel r with
      | Some a -> a
      | None ->
          fst
            (List.find
               (fun (_, s) -> Schema.mem s (Attr.Qualified.attr r))
               schemas)
    in
    let rec go offset = function
      | [] -> failwith "alias not found"
      | (a, s) :: rest ->
          if String.equal a alias then offset + Schema.index_of s (Attr.Qualified.attr r)
          else go (offset + Schema.arity s) rest
    in
    go 0 schemas
  in
  let product =
    match Query.from q with
    | [] -> failwith "empty from"
    | first :: rest ->
        List.fold_left
          (fun acc (tr : Query.table_ref) ->
            Relation.product acc (List.assoc tr.alias env))
          (List.assoc first.Query.alias env)
          rest
  in
  let filtered =
    Relation.select (fun t -> Predicate.eval resolve (Query.where q) t) product
  in
  let items =
    List.map
      (fun (it : Query.select_item) ->
        let pos = resolve it.Query.expr in
        let src =
          Schema.attr_at (Relation.schema product) pos
        in
        (pos, Attr.make it.Query.as_name (Attr.ty src)))
      (Query.select q)
  in
  let out_schema = Schema.of_list (List.map snd items) in
  let idxs = Array.of_list (List.map fst items) in
  Relation.map_tuples out_schema (fun t -> Tuple.project_idx t idxs) filtered

let prop_eval_matches_reference =
  QCheck.Test.make ~name:"evaluator = naive product+filter+project" ~count:200
    (QCheck.pair arb_relation arb_relation_b)
    (fun (a, b) ->
      let q =
        Query.make ~name:"ref"
          ~select:[ Query.item "A.v"; Query.item "B.w"; Query.item ~as_:"key" "A.k" ]
          ~from:[ Query.table ~alias:"A" "x" "A"; Query.table ~alias:"B" "x" "B" ]
          ~where:
            [
              Predicate.eq_attr "A.k" "B.k2";
              Predicate.cmp "B.w" Predicate.Ge (Value.int 1);
            ]
      in
      let env = [ ("A", a); ("B", b) ] in
      Relation.equal (Eval.run ~catalog:(Eval.catalog env) q) (reference_eval env q))

(* -- Equation 6 -------------------------------------------------------- *)

let prop_equation6 =
  QCheck.Test.make ~name:"equation6 = V(new) - V(old)" ~count:200
    (QCheck.pair
       (QCheck.pair arb_pos_relation arb_pos_relation)
       (QCheck.pair
          (QCheck.make (gen_relation ~sch:schema_b ())
             ~print:(Fmt.str "%a" Relation.pp))
          (QCheck.make (gen_relation ~sch:schema_b ())
             ~print:(Fmt.str "%a" Relation.pp))))
    (fun ((old_a, new_a), (old_b0, new_b0)) ->
      let old_b = Relation.positive old_b0 and new_b = Relation.positive new_b0 in
      let dv =
        Dyno_va.Adapt.equation6
          ~old_env:[ ("A", old_a); ("B", old_b) ]
          ~new_env:[ ("A", new_a); ("B", new_b) ]
          join_query
      in
      Relation.equal dv
        (Relation.diff
           (eval_join new_a new_b)
           (eval_join old_a old_b)))

(* -- schema-change delta laws ------------------------------------------ *)

(* derive a random APPLICABLE schema-change sequence by folding random
   choices over the evolving schema *)
let gen_sc_seq =
  QCheck.Gen.(
    let base = Schema.of_list [ Attr.int "a"; Attr.int "b"; Attr.int "c" ] in
    map
      (fun choices ->
        let _, rev_scs, _ =
          List.fold_left
            (fun (sch, acc, fresh) choice ->
              let names = Schema.names sch in
              let pick i = List.nth names (i mod List.length names) in
              match choice mod 3 with
              | 0 when names <> [] ->
                  (* rename *)
                  let o = pick choice in
                  let n = Fmt.str "n%d" fresh in
                  ( Schema.rename sch ~old_name:o ~new_name:n,
                    Schema_change.Rename_attribute
                      { source = "ds"; rel = "R"; old_name = o; new_name = n }
                    :: acc,
                    fresh + 1 )
              | 1 when List.length names > 1 ->
                  let o = pick choice in
                  ( Schema.drop sch o,
                    Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = o } :: acc,
                    fresh )
              | _ ->
                  let n = Fmt.str "x%d" fresh in
                  ( Schema.add sch (Attr.int n),
                    Schema_change.Add_attribute
                      { source = "ds"; rel = "R"; attr = Attr.int n; default = Value.int 0 }
                    :: acc,
                    fresh + 1 ))
            (base, [], 0) choices
        in
        (base, List.rev rev_scs))
      (list_size (int_range 0 8) (int_range 0 1000)))

let arb_sc_seq =
  QCheck.make gen_sc_seq ~print:(fun (_, scs) ->
      Fmt.str "%a" Fmt.(list ~sep:(any "; ") Schema_change.pp) scs)

let prop_delta_matches_catalog =
  QCheck.Test.make ~name:"net delta schema = stepwise catalog application"
    ~count:200 arb_sc_seq (fun (base, scs) ->
      let d = Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" base scs in
      let cat = Catalog.create () in
      Catalog.add_relation cat "R" base;
      List.iter (Catalog.apply cat) scs;
      Schema.equal (Schema_change.Delta.apply_schema d base) (Catalog.schema_of cat "R"))

let prop_delta_split_compose =
  QCheck.Test.make ~name:"of_changes(s1@s2) = compose(of s1, of s2)" ~count:200
    (QCheck.pair arb_sc_seq QCheck.small_nat)
    (fun ((base, scs), cut) ->
      QCheck.assume (scs <> []);
      let k = cut mod (List.length scs + 1) in
      let s1 = List.filteri (fun i _ -> i < k) scs in
      let s2 = List.filteri (fun i _ -> i >= k) scs in
      let d1 = Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" base s1 in
      let mid = Schema_change.Delta.apply_schema d1 base in
      let d2 = Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" mid s2 in
      let composed = Schema_change.Delta.compose d1 d2 in
      let folded = Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" base scs in
      Schema.equal
        (Schema_change.Delta.apply_schema composed base)
        (Schema_change.Delta.apply_schema folded base))

let prop_project_tuple_arity =
  QCheck.Test.make ~name:"projected tuples match the post-delta schema"
    ~count:200 arb_sc_seq (fun (base, scs) ->
      let d = Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" base scs in
      let tup = Tuple.of_list (List.init (Schema.arity base) (fun i -> Value.int i)) in
      let s' = Schema_change.Delta.apply_schema d base in
      let t' = Schema_change.Delta.project_tuple d base tup in
      Schema.typecheck s' t')

(* -- correction legality (Theorem 2) ----------------------------------- *)

let view2 =
  Query.make ~name:"V"
    ~select:[ Query.item "A.k"; Query.item "B.k2" ]
    ~from:[ Query.table ~alias:"A" "ds1" "A"; Query.table ~alias:"B" "ds2" "B" ]
    ~where:[ Predicate.eq_attr "A.k" "B.k2" ]

let view2_schemas = [ ("A", schema); ("B", schema_b) ]

let gen_msgs =
  QCheck.Gen.(
    map
      (fun choices ->
        List.mapi
          (fun id choice ->
            let source = if choice mod 2 = 0 then "ds1" else "ds2" in
            let rel = if source = "ds1" then "A" else "B" in
            let payload =
              if choice mod 5 = 0 then
                Dyno_view.Update_msg.Sc
                  (Schema_change.Rename_relation
                     { source; old_name = rel; new_name = Fmt.str "%s%d" rel id })
              else
                Dyno_view.Update_msg.Du
                  (Update.make ~source ~rel
                     (Relation.of_list
                        (if rel = "A" then schema else schema_b)
                        [ [ Value.int id; Value.int 0 ] ]))
            in
            Dyno_view.Update_msg.make ~id ~commit_time:(float_of_int id)
              ~source_version:id payload)
          choices)
      (list_size (int_range 1 14) (int_range 0 1000)))

let arb_msgs =
  QCheck.make gen_msgs ~print:(fun msgs ->
      Fmt.str "%a" Fmt.(list ~sep:(any "; ") Dyno_view.Update_msg.pp) msgs)

let prop_correction_legal =
  QCheck.Test.make ~name:"corrected order is legal and loses nothing"
    ~count:300 arb_msgs (fun msgs ->
      let entries = List.map (fun m -> Dyno_view.Umq.Single m) msgs in
      let g = Dyno_core.Dep_graph.build view2 view2_schemas entries in
      let c = Dyno_core.Dep_graph.correct g in
      (* 1. no update lost or duplicated *)
      let ids_in l =
        List.sort compare (List.concat_map Dyno_view.Umq.entry_ids l)
      in
      let preserved = ids_in entries = ids_in c.Dyno_core.Dep_graph.order in
      (* 2. every dependency safe in the new order *)
      let pos = Hashtbl.create 16 in
      List.iteri
        (fun i e ->
          List.iter
            (fun m -> Hashtbl.replace pos (Dyno_view.Update_msg.id m) i)
            (Dyno_view.Umq.entry_messages e))
        c.Dyno_core.Dep_graph.order;
      let node_ids =
        Array.of_list
          (List.map Dyno_view.Umq.entry_ids (Dyno_core.Dep_graph.nodes g))
      in
      let legal =
        List.for_all
          (fun (e : Dyno_core.Dependency.edge) ->
            let p = Hashtbl.find pos (List.hd node_ids.(e.prerequisite)) in
            let d = Hashtbl.find pos (List.hd node_ids.(e.dependent)) in
            p <= d)
          (Dyno_core.Dep_graph.edges g)
      in
      (* 3. batch members stay in commit order *)
      let batches_ordered =
        List.for_all
          (function
            | Dyno_view.Umq.Single _ -> true
            | Dyno_view.Umq.Batch ms ->
                let ids = List.map Dyno_view.Update_msg.id ms in
                ids = List.sort compare ids)
          c.Dyno_core.Dep_graph.order
      in
      preserved && legal && batches_ordered)

(* -- golden end-to-end property ----------------------------------------- *)

let arb_workload =
  QCheck.make
    QCheck.Gen.(
      quad (int_range 1 10000) (int_range 0 18) (int_range 0 3) (int_range 0 2))
    ~print:(fun (seed, dus, scs, strat) ->
      Fmt.str "seed=%d dus=%d scs=%d strategy=%d" seed dus scs strat)

let prop_end_to_end =
  QCheck.Test.make
    ~name:"random workloads converge with strong consistency (all strategies)"
    ~count:40 arb_workload (fun (seed, n_dus, n_scs, strat) ->
      let strategy =
        match strat with
        | 0 -> Dyno_core.Strategy.Pessimistic
        | 1 -> Dyno_core.Strategy.Optimistic
        | _ -> Dyno_core.Strategy.Merge_all
      in
      let timeline =
        Dyno_workload.Generator.mixed ~rows:10 ~seed ~n_dus ~du_interval:0.2
          ~sc_start:0.1 ~sc_interval:1.5
          ~sc_kinds:(Dyno_workload.Generator.drop_then_renames n_scs)
          ()
      in
      let t =
        Dyno_workload.Scenario.make
          Dyno_workload.Scenario.Config.(
            default |> with_rows 10
            |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
            |> with_snapshots true)
          ~timeline
      in
      ignore
        (Dyno_workload.Scenario.run t
           ~config:(Dyno_core.Run_config.of_strategy strategy));
      let convergent =
        match Dyno_workload.Scenario.check_convergent t with
        | Ok b -> b
        | Error _ -> false
      in
      let strong =
        Dyno_core.Consistency.ok (Dyno_workload.Scenario.check_strong t)
      in
      convergent && strong)

(* -- versioned-store reconstruction ------------------------------------- *)

(* The strong-consistency checker rests on Data_source.relation_at being
   exact.  Property: for a random commit history (data updates, attribute
   renames/drops/adds, relation renames), the reconstruction of every past
   version equals a forward-replayed mirror captured at commit time. *)
let prop_snapshot_reconstruction =
  QCheck.Test.make ~name:"relation_at reconstructs every past version"
    ~count:60
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 15) (int_range 0 1000))
       ~print:(Fmt.str "%a" Fmt.(Dump.list int)))
    (fun choices ->
      let src = Dyno_source.Data_source.create "ds" in
      Dyno_source.Data_source.add_relation src "R" schema;
      Dyno_source.Data_source.load src "R"
        [ [ Value.int 0; Value.int 0 ]; [ Value.int 1; Value.int 1 ] ];
      (* mirror: (version, rel name, extent copy) *)
      let capture () =
        let name =
          List.hd (Catalog.relations (Dyno_source.Data_source.catalog src))
        in
        ( Dyno_source.Data_source.version src,
          name,
          Relation.copy (Dyno_source.Data_source.relation src name) )
      in
      let mirrors = ref [ capture () ] in
      let fresh = ref 0 in
      List.iter
        (fun choice ->
          let name =
            List.hd (Catalog.relations (Dyno_source.Data_source.catalog src))
          in
          let sch =
            Catalog.schema_of (Dyno_source.Data_source.catalog src) name
          in
          incr fresh;
          (try
             match choice mod 5 with
             | 0 | 1 ->
                 (* insert a row valid under the current schema *)
                 let row =
                   List.map
                     (fun a ->
                       match Attr.ty a with
                       | Value.Vtype.TInt -> Value.int (choice mod 7)
                       | _ -> Value.null)
                     (Schema.attrs sch)
                 in
                 ignore
                   (Dyno_source.Data_source.commit_du src ~time:0.0
                      (Update.make ~source:"ds" ~rel:name
                         (Relation.of_list sch [ row ])))
             | 2 ->
                 ignore
                   (Dyno_source.Data_source.commit_sc src ~time:0.0
                      (Schema_change.Rename_relation
                         { source = "ds"; old_name = name;
                           new_name = Fmt.str "R%d" !fresh }))
             | 3 ->
                 ignore
                   (Dyno_source.Data_source.commit_sc src ~time:0.0
                      (Schema_change.Add_attribute
                         { source = "ds"; rel = name;
                           attr = Attr.int (Fmt.str "n%d" !fresh);
                           default = Value.int 0 }))
             | _ ->
                 (* drop the last attribute if more than one remains *)
                 if Schema.arity sch > 1 then
                   ignore
                     (Dyno_source.Data_source.commit_sc src ~time:0.0
                        (Schema_change.Drop_attribute
                           { source = "ds"; rel = name;
                             attr =
                               Attr.name (Schema.attr_at sch (Schema.arity sch - 1));
                           }))
           with Dyno_source.Data_source.Commit_rejected _ -> ());
          mirrors := capture () :: !mirrors)
        choices;
      List.for_all
        (fun (v, name, expected) ->
          match Dyno_source.Data_source.relation_at src ~version:v name with
          | actual -> Relation.equal actual expected
          | exception _ -> false)
        !mirrors)

(* -- multi-view golden property ----------------------------------------- *)

let prop_multi_view_end_to_end =
  QCheck.Test.make
    ~name:"multi-view: random workloads keep every view consistent" ~count:15
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 10000) (int_range 0 12) (int_range 0 2))
       ~print:(fun (s, d, c) -> Fmt.str "seed=%d dus=%d scs=%d" s d c))
    (fun (seed, n_dus, n_scs) ->
      let open Dyno_view in
      let rows = 8 in
      let registry = Dyno_workload.Paper_schema.build_sources ~rows in
      let mk = Dyno_workload.Paper_schema.build_meta () in
      let umq = Umq.create () in
      let timeline =
        Dyno_workload.Generator.mixed ~rows ~seed ~n_dus ~du_interval:0.15
          ~sc_start:0.1 ~sc_interval:1.0
          ~sc_kinds:(Dyno_workload.Generator.drop_then_renames n_scs)
          ()
      in
      let engine =
        Query_engine.create
          ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
          ~registry ~timeline ~umq ()
      in
      let materialize query schemas =
        let vd = View_def.create ~schemas query in
        let mv =
          Mat_view.create ~track_snapshots:true vd (Relation.create Schema.empty)
        in
        let env (tr : Query.table_ref) =
          Dyno_source.Data_source.relation
            (Dyno_source.Registry.find registry tr.source)
            tr.rel
        in
        Mat_view.replace mv ~at:0.0 ~maintained:[] (Eval.run ~catalog:env query);
        mv
      in
      let narrow =
        Query.make ~name:"V2"
          ~select:[ Query.item "R1.K1"; Query.item "R2.A2" ]
          ~from:[ Query.table "DS1" "R1"; Query.table "DS1" "R2" ]
          ~where:[ Predicate.eq_attr "R1.K1" "R2.K2" ]
      in
      let mv1 =
        materialize
          (Dyno_workload.Paper_schema.view_query ())
          (Dyno_workload.Paper_schema.view_schemas ())
      in
      let mv2 =
        materialize narrow
          [
            ("R1", Dyno_workload.Paper_schema.schema_of_rel 1);
            ("R2", Dyno_workload.Paper_schema.schema_of_rel 2);
          ]
      in
      let multi = Dyno_core.Multi_scheduler.create [ mv1; mv2 ] in
      ignore (Dyno_core.Multi_scheduler.run engine multi mk);
      let msg_index =
        List.map
          (fun m ->
            ( Update_msg.id m,
              (Update_msg.source m, Update_msg.source_version m) ))
          (Umq.history umq)
      in
      List.for_all
        (fun mv ->
          let vd = Mat_view.def mv in
          (not (View_def.is_valid vd))
          || (match Dyno_core.Consistency.convergent engine mv with
             | Ok b -> b
             | Error _ -> false)
             && Dyno_core.Consistency.ok
                  (Dyno_core.Consistency.check_strong engine mv ~msg_index))
        (Dyno_core.Multi_scheduler.views multi))

(* -- stats JSON round-trip --------------------------------------------- *)

(* [Stats.to_json_string] must survive a parse → re-serialize loop through
   the in-tree JSON parser with every field intact — counters, transport
   fields, [cross_shard_barriers] and the self-maintenance pair included.
   Floats are generated dyadic (n/8) so the %.6f rendering is exact. *)
let gen_stats =
  QCheck.Gen.(
    let dy = map (fun n -> float_of_int n /. 8.0) (int_range 0 80_000) in
    let i = int_range 0 100_000 in
    map3
      (fun fl b ints ->
        let f k = List.nth fl k and n k = List.nth ints k in
        let open Dyno_core in
        let s = Stats.create () in
        s.Stats.busy <- f 0;
        s.Stats.abort_cost <- f 1;
        s.Stats.idle <- f 2;
        s.Stats.end_time <- f 3;
        s.Stats.net_wait <- f 4;
        s.Stats.du_maintained <- n 0;
        s.Stats.sc_maintained <- n 1;
        s.Stats.batches <- n 2;
        s.Stats.batch_updates <- n 3;
        s.Stats.irrelevant <- n 4;
        s.Stats.aborts <- n 5;
        s.Stats.broken_queries <- n 6;
        s.Stats.detections <- n 7;
        s.Stats.corrections <- n 8;
        s.Stats.merges <- n 9;
        s.Stats.probes <- n 10;
        s.Stats.compensations <- n 11;
        s.Stats.view_commits <- n 12;
        s.Stats.view_undefined <- b;
        s.Stats.retries <- n 13;
        s.Stats.timeouts <- n 14;
        s.Stats.msgs_lost <- n 15;
        s.Stats.msgs_duplicated <- n 16;
        s.Stats.dups_dropped <- n 17;
        s.Stats.reorders_healed <- n 18;
        s.Stats.net_stalls <- n 19;
        s.Stats.cross_shard_barriers <- n 20;
        s.Stats.probes_avoided <- n 21;
        s.Stats.bytes_saved <- n 22;
        s)
      (list_repeat 5 dy) bool (list_repeat 23 i))

let arb_stats = QCheck.make gen_stats ~print:Dyno_core.Stats.to_json_string

let prop_stats_json_roundtrip =
  QCheck.Test.make ~name:"Stats JSON survives parse -> re-serialize"
    ~count:200 arb_stats (fun s ->
      let open Dyno_jsonv.Jsonv in
      match parse (Dyno_core.Stats.to_json_string s) with
      | Error _ -> false
      | Ok doc ->
          let fl k =
            match Option.bind (member k doc) num with
            | Some v -> v
            | None -> Float.nan
          in
          let it k = int_of_float (fl k) in
          let open Dyno_core in
          let s' = Stats.create () in
          s'.Stats.busy <- fl "busy";
          s'.Stats.abort_cost <- fl "abort_cost";
          s'.Stats.idle <- fl "idle";
          s'.Stats.end_time <- fl "end_time";
          s'.Stats.du_maintained <- it "du_maintained";
          s'.Stats.sc_maintained <- it "sc_maintained";
          s'.Stats.batches <- it "batches";
          s'.Stats.batch_updates <- it "batch_updates";
          s'.Stats.irrelevant <- it "irrelevant";
          s'.Stats.aborts <- it "aborts";
          s'.Stats.broken_queries <- it "broken_queries";
          s'.Stats.detections <- it "detections";
          s'.Stats.corrections <- it "corrections";
          s'.Stats.merges <- it "merges";
          s'.Stats.probes <- it "probes";
          s'.Stats.compensations <- it "compensations";
          s'.Stats.view_commits <- it "view_commits";
          s'.Stats.view_undefined <-
            member "view_undefined" doc = Some (Bool true);
          s'.Stats.retries <- it "retries";
          s'.Stats.timeouts <- it "timeouts";
          s'.Stats.msgs_lost <- it "msgs_lost";
          s'.Stats.msgs_duplicated <- it "msgs_duplicated";
          s'.Stats.dups_dropped <- it "dups_dropped";
          s'.Stats.reorders_healed <- it "reorders_healed";
          s'.Stats.net_stalls <- it "net_stalls";
          s'.Stats.cross_shard_barriers <- it "cross_shard_barriers";
          s'.Stats.probes_avoided <- it "probes_avoided";
          s'.Stats.bytes_saved <- it "bytes_saved";
          s'.Stats.net_wait <- fl "net_wait";
          String.equal
            (Dyno_core.Stats.to_json_string s)
            (Dyno_core.Stats.to_json_string s'))

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "relation algebra",
        List.map to_alcotest
          [
            prop_sum_commutative;
            prop_sum_associative;
            prop_diff_self_empty;
            prop_negate_distributes;
            prop_pos_neg_decomposition;
            prop_project_preserves_cardinality;
            prop_join_linearity;
            prop_eval_matches_reference;
          ] );
      ("equation 6", List.map to_alcotest [ prop_equation6 ]);
      ( "schema-change deltas",
        List.map to_alcotest
          [ prop_delta_matches_catalog; prop_delta_split_compose; prop_project_tuple_arity ] );
      ("correction", List.map to_alcotest [ prop_correction_legal ]);
      ( "versioned store",
        List.map to_alcotest [ prop_snapshot_reconstruction ] );
      ("end to end", List.map to_alcotest [ prop_end_to_end; prop_multi_view_end_to_end ]);
      ("stats json", List.map to_alcotest [ prop_stats_json_roundtrip ]);
    ]
