(* Unit tests for the SQL lexer/parser: view definitions, DML, DDL, error
   reporting, and a semantic round trip through the evaluator. *)

open Dyno_relational

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_lexer () =
  let toks = Sql_lexer.tokenize "SELECT a.b, 'it''s' <= 3.5 <> -2 @;" in
  Alcotest.(check int) "token count" 13 (List.length toks);
  Alcotest.(check bool) "string escape" true
    (List.exists (function Sql_lexer.STRING "it's" -> true | _ -> false) toks);
  Alcotest.(check bool) "negative int" true
    (List.exists (function Sql_lexer.INT (-2) -> true | _ -> false) toks);
  Alcotest.(check bool) "keyword recognized" true
    (List.exists (function Sql_lexer.KEYWORD "SELECT" -> true | _ -> false) toks);
  Alcotest.(check bool) "unterminated string" true
    (match Sql_lexer.tokenize "'oops" with
    | _ -> false
    | exception Sql_lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bad char" true
    (match Sql_lexer.tokenize "a # b" with
    | _ -> false
    | exception Sql_lexer.Lex_error _ -> true)

let bookinfo_sql =
  "CREATE VIEW BookInfo AS \
   SELECT Store, Book, I.Author, Price, Publisher, Category, Review \
   FROM Store@Retailer AS S, Item@Retailer AS I, Catalog@Library AS C \
   WHERE S.SID = I.SID AND I.Book = C.Title"

let test_parse_view_query1 () =
  let q = ok (Sql_parser.parse_view bookinfo_sql) in
  Alcotest.(check string) "name" "BookInfo" (Query.name q);
  Alcotest.(check int) "7 select items" 7 (List.length (Query.select q));
  Alcotest.(check (list string)) "aliases" [ "S"; "I"; "C" ] (Query.aliases q);
  Alcotest.(check (list string)) "sources" [ "Retailer"; "Library" ] (Query.sources q);
  Alcotest.(check int) "2 join conditions" 2 (List.length (Query.where q))

let test_parse_bare_select () =
  let q = ok (Sql_parser.parse_view "SELECT R.x FROM R@ds WHERE R.x > 3") in
  Alcotest.(check string) "default name" "query" (Query.name q);
  Alcotest.(check int) "filter" 1 (List.length (Query.where q))

let test_roundtrip_through_printer () =
  (* printing a parsed view and reparsing yields the same structure *)
  let q = ok (Sql_parser.parse_view bookinfo_sql) in
  let printed = Sql.view_to_string q in
  let q2 = ok (Sql_parser.parse_view printed) in
  Alcotest.(check string) "roundtrip" (Query.to_string q) (Query.to_string q2)

let test_parse_view_semantics () =
  (* parsed query evaluates like a hand-built one *)
  let q = ok (Sql_parser.parse_view
                "SELECT A.k, B.w FROM A@x AS A, B@x AS B WHERE A.k = B.k2 AND B.w >= 10")
  in
  let a_schema = Schema.of_list [ Attr.int "k" ] in
  let b_schema = Schema.of_list [ Attr.int "k2"; Attr.int "w" ] in
  let a = Relation.of_list a_schema [ [ Value.int 1 ]; [ Value.int 2 ] ] in
  let b =
    Relation.of_list b_schema
      [ [ Value.int 1; Value.int 10 ]; [ Value.int 2; Value.int 5 ] ]
  in
  let out = Eval.run ~catalog:(Eval.catalog [ ("A", a); ("B", b) ]) q in
  Alcotest.(check int) "only w>=10 row" 1 (Relation.cardinality out)

let test_parse_insert_delete () =
  let schema = Schema.of_list [ Attr.int "k"; Attr.string "s" ] in
  let stmt = ok (Sql_parser.parse_statement "INSERT INTO R@ds VALUES (1, 'a'), (2, 'b')") in
  let u = ok (Sql_parser.to_update schema stmt) in
  Alcotest.(check int) "two inserts" 2 (Relation.cardinality (Update.delta u));
  Alcotest.(check string) "source" "ds" (Update.source u);
  let stmt = ok (Sql_parser.parse_statement "DELETE FROM R@ds VALUES (1, 'a');") in
  let u = ok (Sql_parser.to_update schema stmt) in
  Alcotest.(check int) "negative delta" (-1) (Relation.cardinality (Update.delta u));
  (* typecheck enforced *)
  let stmt = ok (Sql_parser.parse_statement "INSERT INTO R@ds VALUES ('wrong', 1)") in
  Alcotest.(check bool) "type error reported" true
    (match Sql_parser.to_update schema stmt with Error _ -> true | Ok _ -> false)

let test_parse_ddl () =
  let check_sc sql expected =
    match ok (Sql_parser.parse_statement sql) with
    | Sql_parser.Alter sc ->
        Alcotest.(check string) sql expected (Schema_change.to_string sc)
    | _ -> Alcotest.fail "expected ALTER"
  in
  check_sc "ALTER SOURCE ds RENAME TABLE R TO R2"
    "ALTER SOURCE ds RENAME TABLE R TO R2";
  check_sc "ALTER SOURCE ds DROP TABLE R" "ALTER SOURCE ds DROP TABLE R";
  check_sc "ALTER TABLE R@ds RENAME COLUMN a TO b"
    "ALTER TABLE R@ds RENAME COLUMN a TO b";
  check_sc "ALTER TABLE R@ds DROP COLUMN a" "ALTER TABLE R@ds DROP COLUMN a";
  (match ok (Sql_parser.parse_statement "ALTER TABLE R@ds ADD COLUMN n INT DEFAULT 0") with
  | Sql_parser.Alter (Schema_change.Add_attribute { attr; default; _ }) ->
      Alcotest.(check string) "attr name" "n" (Attr.name attr);
      Alcotest.(check bool) "default" true (Value.equal default (Value.int 0))
  | _ -> Alcotest.fail "expected ADD COLUMN");
  match ok (Sql_parser.parse_statement "CREATE TABLE T@ds (k INT, s VARCHAR, f FLOAT, b BOOLEAN)") with
  | Sql_parser.Create_table { schema; rel; source } ->
      Alcotest.(check string) "rel" "T" rel;
      Alcotest.(check string) "source" "ds" source;
      Alcotest.(check int) "4 columns" 4 (Schema.arity schema)
  | _ -> Alcotest.fail "expected CREATE TABLE"

let test_parse_errors () =
  let bad sql =
    match Sql_parser.parse_view sql with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "missing FROM" true (bad "SELECT a");
  Alcotest.(check bool) "missing source annotation" true (bad "SELECT a FROM R");
  Alcotest.(check bool) "trailing junk" true (bad "SELECT a FROM R@x garbage");
  Alcotest.(check bool) "duplicate alias" true
    (bad "SELECT a FROM R@x AS T, S@x AS T");
  let bads =
    match Sql_parser.parse_statement "INSERT INTO R@ds (1)" with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "missing VALUES" true bads

let () =
  Alcotest.run "sql"
    [
      ( "sql",
        [
          Alcotest.test_case "lexer" `Quick test_lexer;
          Alcotest.test_case "parse Query (1)" `Quick test_parse_view_query1;
          Alcotest.test_case "bare SELECT" `Quick test_parse_bare_select;
          Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip_through_printer;
          Alcotest.test_case "parsed views evaluate" `Quick test_parse_view_semantics;
          Alcotest.test_case "INSERT/DELETE" `Quick test_parse_insert_delete;
          Alcotest.test_case "DDL statements" `Quick test_parse_ddl;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
    ]
