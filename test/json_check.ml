(* A deliberately tiny recursive-descent JSON well-formedness checker used
   by the round-trip tests: no external JSON library is in the dependency
   cone, and the tests only need "does this string parse as JSON", not a
   document model.  Accepts exactly RFC 8259 grammar (objects, arrays,
   strings with escapes, numbers, true/false/null); rejects trailing
   garbage. *)

exception Bad of string * int

let fail pos msg = raise (Bad (msg, pos))

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> fail c.pos "unexpected end of input"

let expect c ch =
  let got = next c in
  if got <> ch then fail (c.pos - 1) (Printf.sprintf "expected %C, got %C" ch got)

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        c.pos <- c.pos + 1;
        go ()
    | _ -> ()
  in
  go ()

let expect_lit c lit =
  String.iter (fun ch -> expect c ch) lit

let parse_string c =
  expect c '"';
  let rec go () =
    match next c with
    | '"' -> ()
    | '\\' -> (
        match next c with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
        | 'u' ->
            for _ = 1 to 4 do
              match next c with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
              | ch -> fail (c.pos - 1) (Printf.sprintf "bad hex digit %C" ch)
            done;
            go ()
        | ch -> fail (c.pos - 1) (Printf.sprintf "bad escape %C" ch))
    | ch when Char.code ch < 0x20 ->
        fail (c.pos - 1) "unescaped control character in string"
    | _ -> go ()
  in
  go ()

let parse_number c =
  (match peek c with Some '-' -> ignore (next c) | _ -> ());
  let digits () =
    let n = ref 0 in
    let rec go () =
      match peek c with
      | Some '0' .. '9' ->
          incr n;
          c.pos <- c.pos + 1;
          go ()
      | _ -> ()
    in
    go ();
    if !n = 0 then fail c.pos "expected digit"
  in
  digits ();
  (match peek c with
  | Some '.' ->
      c.pos <- c.pos + 1;
      digits ()
  | _ -> ());
  match peek c with
  | Some ('e' | 'E') ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some ('+' | '-') -> c.pos <- c.pos + 1
      | _ -> ());
      digits ()
  | _ -> ()

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '"' -> parse_string c
  | Some '{' -> parse_object c
  | Some '[' -> parse_array c
  | Some 't' -> expect_lit c "true"
  | Some 'f' -> expect_lit c "false"
  | Some 'n' -> expect_lit c "null"
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos (Printf.sprintf "unexpected %C" ch)
  | None -> fail c.pos "unexpected end of input"

and parse_object c =
  expect c '{';
  skip_ws c;
  match peek c with
  | Some '}' -> c.pos <- c.pos + 1
  | _ ->
      let rec members () =
        skip_ws c;
        parse_string c;
        skip_ws c;
        expect c ':';
        parse_value c;
        skip_ws c;
        match next c with
        | ',' -> members ()
        | '}' -> ()
        | ch -> fail (c.pos - 1) (Printf.sprintf "expected , or }, got %C" ch)
      in
      members ()

and parse_array c =
  expect c '[';
  skip_ws c;
  match peek c with
  | Some ']' -> c.pos <- c.pos + 1
  | _ ->
      let rec elements () =
        parse_value c;
        skip_ws c;
        match next c with
        | ',' -> elements ()
        | ']' -> ()
        | ch -> fail (c.pos - 1) (Printf.sprintf "expected , or ], got %C" ch)
      in
      elements ()

let check s =
  let c = { s; pos = 0 } in
  match
    parse_value c;
    skip_ws c;
    peek c
  with
  | None -> Ok ()
  | Some ch -> Error (Printf.sprintf "trailing %C at %d" ch c.pos)
  | exception Bad (msg, pos) -> Error (Printf.sprintf "%s at %d" msg pos)

let check_exn ~what s =
  match check s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s is not well-formed JSON: %s" what e

let check_jsonl_exn ~what s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> line <> "")
  |> List.iteri (fun i line ->
         match check line with
         | Ok () -> ()
         | Error e ->
             Alcotest.failf "%s line %d is not well-formed JSON: %s" what i e)
