(* Alcotest-facing wrappers over the shared RFC-8259 checker
   (lib/jsonv): the tests only need "does this string parse as JSON",
   not a document model — but the parser itself now lives in
   [Dyno_jsonv.Jsonv] so the bench regression gate and the [json_check]
   CLI can reuse it. *)

let check = Dyno_jsonv.Jsonv.check

let check_exn ~what s =
  match check s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s is not well-formed JSON: %s" what e

let check_jsonl_exn ~what s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> line <> "")
  |> List.iteri (fun i line ->
         match check line with
         | Ok () -> ()
         | Error e ->
             Alcotest.failf "%s line %d is not well-formed JSON: %s" what i e)
