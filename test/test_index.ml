(* Property tests for the physical layer (qcheck, registered as alcotest
   cases): the indexed planner is held to the nested-loop reference plan
   on random signed multisets — negative multiplicities included — and
   incrementally maintained indexes are held to a full rescan.  Edge
   cases (empty inputs, unbound aliases, vanished attributes) must behave
   identically under both planners. *)

open Dyno_relational

let schema_a = Schema.of_list [ Attr.int "k"; Attr.int "v" ]
let schema_b = Schema.of_list [ Attr.int "k2"; Attr.int "w" ]
let schema_c = Schema.of_list [ Attr.int "k3"; Attr.int "u" ]

(* Small key domains so random joins actually match; counts span
   (-3, 3) so deltas with mixed signs flow through every operator. *)
let gen_relation sch =
  QCheck.Gen.(
    let tuple =
      map2
        (fun k v -> [ Value.int k; Value.int v ])
        (int_range 0 5) (int_range 0 3)
    in
    let entry = map2 (fun t c -> (t, c)) tuple (int_range (-3) 3) in
    map
      (fun entries -> Relation.of_counted sch entries)
      (list_size (int_range 0 12) entry))

let arb_rel sch = QCheck.make (gen_relation sch) ~print:(Fmt.str "%a" Relation.pp)

let both_plans q env =
  let run planner = Eval.run ~planner ~catalog:(Eval.catalog env) q in
  Relation.equal (run `Indexed) (run `Nested_loop)

(* -- plan equivalence ------------------------------------------------ *)

let join2 =
  Query.make ~name:"J2"
    ~select:[ Query.item "A.k"; Query.item "A.v"; Query.item "B.w" ]
    ~from:[ Query.table ~alias:"A" "x" "A"; Query.table ~alias:"B" "x" "B" ]
    ~where:[ Predicate.eq_attr "A.k" "B.k2" ]

let prop_join2 =
  QCheck.Test.make ~name:"indexed join = nested-loop join (2 tables)"
    ~count:500
    (QCheck.pair (arb_rel schema_a) (arb_rel schema_b))
    (fun (a, b) -> both_plans join2 [ ("A", a); ("B", b) ])

let join3 =
  (* the middle alias joins both neighbours: exercises probing the
     accumulated intermediate as well as the pristine leftmost base *)
  Query.make ~name:"J3"
    ~select:[ Query.item "A.v"; Query.item "B.w"; Query.item "C.u" ]
    ~from:
      [
        Query.table ~alias:"A" "x" "A";
        Query.table ~alias:"B" "x" "B";
        Query.table ~alias:"C" "x" "C";
      ]
    ~where:
      [ Predicate.eq_attr "A.k" "B.k2"; Predicate.eq_attr "B.w" "C.k3" ]

let prop_join3 =
  QCheck.Test.make ~name:"indexed join = nested-loop join (3 tables)"
    ~count:500
    (QCheck.triple (arb_rel schema_a) (arb_rel schema_b) (arb_rel schema_c))
    (fun (a, b, c) -> both_plans join3 [ ("A", a); ("B", b); ("C", c) ])

let select_q =
  (* constant-equality conjunct (an index lookup under `Indexed) plus a
     residual non-equality atom *)
  Query.make ~name:"S"
    ~select:[ Query.item "A.k"; Query.item "A.v" ]
    ~from:[ Query.table ~alias:"A" "x" "A" ]
    ~where:
      [
        Predicate.eq_const "A.k" (Value.int 2);
        Predicate.cmp "A.v" Predicate.Ne (Value.int 1);
      ]

let prop_select =
  QCheck.Test.make ~name:"indexed selection = nested-loop selection"
    ~count:500 (arb_rel schema_a)
    (fun a -> both_plans select_q [ ("A", a) ])

(* -- index maintenance ------------------------------------------------ *)

(* Random add/delete stream applied to an indexed relation: every bucket
   of the incrementally maintained index must agree with a full rescan. *)
let gen_ops =
  QCheck.Gen.(
    let op =
      map2
        (fun k c -> ([ Value.int k; Value.int (k mod 3) ], c))
        (int_range 0 5)
        (int_range (-3) 3)
    in
    list_size (int_range 0 40) op)

let arb_ops =
  QCheck.make gen_ops
    ~print:
      (Fmt.str "%a"
         (Fmt.list (fun ppf (vs, c) ->
              Fmt.pf ppf "(%a, %+d)" (Fmt.list Value.pp) vs c)))

let prop_index_maintenance =
  QCheck.Test.make ~name:"incremental index = full rescan" ~count:500 arb_ops
    (fun ops ->
      let r = Relation.create schema_a in
      let ix = Relation.ensure_index r [ "k" ] in
      List.iter (fun (vs, c) -> Relation.add r (Tuple.of_list vs) c) ops;
      let sorted l = List.sort compare l in
      (* per-key buckets match a rescan of the final extent... *)
      let buckets_ok =
        List.for_all
          (fun k ->
            let key = Tuple.of_list [ Value.int k ] in
            let rescan =
              Relation.fold
                (fun t c acc ->
                  if Value.equal (Tuple.get t 0) (Value.int k) then
                    (t, c) :: acc
                  else acc)
                r []
            in
            sorted (Index.lookup ix key) = sorted rescan)
          [ 0; 1; 2; 3; 4; 5 ]
      in
      (* ...and the index carries exactly the relation's support: no
         zombie entries survive cancellation to zero. *)
      buckets_ok && Index.support ix = Relation.support r)

(* -- edge cases (plain alcotest) -------------------------------------- *)

let empty_a () = Relation.create schema_a
let empty_b () = Relation.create schema_b

let test_empty_inputs () =
  List.iter
    (fun env ->
      List.iter
        (fun planner ->
          let r = Eval.run ~planner ~catalog:(Eval.catalog env) join2 in
          Alcotest.(check int) "empty join" 0 (Relation.support r))
        [ `Indexed; `Nested_loop ])
    [
      [ ("A", empty_a ()); ("B", empty_b ()) ];
      [ ("A", empty_a ()); ("B", Relation.of_list schema_b [ [ Value.int 1; Value.int 1 ] ]) ];
      [ ("A", Relation.of_list schema_a [ [ Value.int 1; Value.int 1 ] ]); ("B", empty_b ()) ];
    ]

let expect_eval_error name f =
  match f () with
  | (_ : Relation.t) -> Alcotest.failf "%s: expected Eval.Error" name
  | exception Eval.Error _ -> ()

let test_unbound_alias () =
  List.iter
    (fun planner ->
      expect_eval_error "unbound alias" (fun () ->
          Eval.run ~planner
            ~catalog:(Eval.catalog [ ("A", empty_a ()) ])
            join2))
    [ `Indexed; `Nested_loop ]

let test_mismatched_schema () =
  (* B bound to a relation without the k2 the query joins on — the
     in-exec broken-query signal must fire under either plan *)
  List.iter
    (fun planner ->
      expect_eval_error "vanished attribute" (fun () ->
          Eval.run ~planner
            ~catalog:
              (Eval.catalog
                 [ ("A", empty_a ()); ("B", Relation.create schema_c) ])
            join2))
    [ `Indexed; `Nested_loop ]

let test_index_registry () =
  let r = Relation.of_list schema_a [ [ Value.int 1; Value.int 2 ] ] in
  let ix = Relation.ensure_index r [ "k" ] in
  let again = Relation.ensure_index r [ "k" ] in
  Alcotest.(check bool) "ensure is idempotent" true (ix == again);
  Alcotest.(check int) "one index registered" 1 (Relation.index_count r);
  ignore (Relation.ensure_index r [ "v" ]);
  Alcotest.(check int) "second key registered" 2 (Relation.index_count r)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "index"
    [
      ( "plan equivalence",
        List.map to_alcotest [ prop_join2; prop_join3; prop_select ] );
      ("index maintenance", List.map to_alcotest [ prop_index_maintenance ]);
      ( "edge cases",
        [
          Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
          Alcotest.test_case "unbound alias" `Quick test_unbound_alias;
          Alcotest.test_case "mismatched schema" `Quick test_mismatched_schema;
          Alcotest.test_case "index registry" `Quick test_index_registry;
        ] );
    ]
