(* Tests for the observability layer (lib/obs) and its integration:

   - span recorder mechanics: nesting, attrs, disabled no-op;
   - metrics registry: counters, gauges, histogram quantiles;
   - trace ring buffer: bounded eviction, O(1) counts across eviction;
   - chrome-trace structural checks: every child span lies within its
     parent's [ts, ts + dur] window;
   - cross-accounting: Σ Maintain span durations = Stats.busy, and the
     span-derived breakdown agrees with Stats on busy/abort/idle/net-wait;
   - the obs-off guarantee: enabling recording changes no Stats byte and
     no view tuple;
   - JSON round-trips: stats, metrics, trace, chrome trace and the span
     JSONL all parse under the tiny checker in Json_check. *)

open Dyno_obs

(* -- a small faulty workload that exercises every span kind ------------- *)

let scenario ?(obs = Obs.disabled) ?(loss = 0.0) ~seed ~n_dus ~n_scs () =
  let timeline =
    Dyno_workload.Generator.mixed ~rows:10 ~seed ~n_dus ~du_interval:0.2
      ~sc_start:0.1 ~sc_interval:1.5
      ~sc_kinds:(Dyno_workload.Generator.drop_then_renames n_scs)
      ()
  in
  let faults =
    { Dyno_net.Channel.reliable with loss; retransmit = 0.05 }
  in
  Dyno_workload.Scenario.make ~rows:10
    ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
    ~track_snapshots:true ~trace_enabled:true ~faults ~net_seed:99 ~obs
    ~timeline ()

let run_observed ?loss ?(strategy = Dyno_core.Strategy.Pessimistic) () =
  let obs = Obs.create () in
  let t = scenario ~obs ?loss ~seed:11 ~n_dus:12 ~n_scs:2 () in
  let stats = Dyno_workload.Scenario.run t ~strategy in
  (obs, t, stats)

(* -- span recorder ------------------------------------------------------ *)

let test_span_nesting_ids () =
  let r = Span.create () in
  let clock = ref 0.0 in
  let now () = !clock in
  let inner_id = ref 0 in
  let outer =
    Span.with_span r ~now Span.Maintain "outer" (fun outer ->
        clock := 1.0;
        Span.with_span r ~now Span.Probe "inner" (fun inner ->
            inner_id := inner;
            clock := 2.0);
        clock := 3.0;
        outer)
  in
  match Span.(find r !inner_id, find r outer) with
  | Some inner, Some outer_span ->
      Alcotest.(check int) "child parented" outer inner.Span.parent;
      Alcotest.(check int) "root has no parent" 0 outer_span.Span.parent;
      Alcotest.(check (float 0.0)) "inner start" 1.0 inner.Span.start;
      Alcotest.(check (float 0.0)) "inner finish" 2.0 inner.Span.finish;
      Alcotest.(check (float 0.0)) "outer finish" 3.0 outer_span.Span.finish
  | _ -> Alcotest.fail "both spans should be recorded"

let test_span_disabled_noop () =
  let r = Span.disabled in
  let id =
    Span.with_span r
      ~now:(fun () -> 0.0)
      Span.Maintain "x"
      (fun id ->
        Span.set_attr r id "k" "v";
        Span.instant r ~time:0.0 "ev" "d";
        id)
  in
  Alcotest.(check int) "id is 0" 0 id;
  Alcotest.(check int) "no spans" 0 (Span.span_count r);
  Alcotest.(check int) "no events" 0 (List.length (Span.events r))

let test_span_exception_safety () =
  let r = Span.create () in
  let clock = ref 5.0 in
  (try
     Span.with_span r
       ~now:(fun () -> !clock)
       Span.Vs "boom"
       (fun _ ->
         clock := 7.0;
         failwith "boom")
   with Failure _ -> ());
  match Span.spans r with
  | [ s ] ->
      Alcotest.(check (float 0.0)) "closed at raise time" 7.0 s.Span.finish;
      Alcotest.(check int) "nothing left open" 0 (List.length (Span.open_spans r))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* -- metrics ------------------------------------------------------------ *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m ~by:4 "a";
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "a");
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value m "g");
  Alcotest.(check int) "absent counter is 0" 0 (Metrics.counter_value m "zz")

let test_metrics_quantiles () =
  let m = Metrics.create () in
  (* 100 observations 0.01 .. 1.00: p50 ≈ 0.5, p99 ≈ 1.0 up to one log₂
     bucket of slack (quantile returns the bucket's upper bound clamped to
     the observed max). *)
  for i = 1 to 100 do
    Metrics.observe m "lat_s" (float_of_int i /. 100.0)
  done;
  let p50 = Metrics.quantile m "lat_s" 0.5 in
  let p99 = Metrics.quantile m "lat_s" 0.99 in
  Alcotest.(check bool) "p50 in [0.5, 1.0]" true (p50 >= 0.5 && p50 <= 1.0);
  Alcotest.(check bool) "p99 in [0.99, 1.0]" true (p99 >= 0.99 && p99 <= 1.0);
  match Metrics.histogram_summary m "lat_s" with
  | Some s ->
      Alcotest.(check int) "count" 100 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 50.5 s.Metrics.sum;
      Alcotest.(check (float 1e-9)) "min" 0.01 s.Metrics.min;
      Alcotest.(check (float 1e-9)) "max" 1.0 s.Metrics.max
  | None -> Alcotest.fail "summary expected"

let test_metrics_disabled_noop () =
  let m = Metrics.disabled in
  Metrics.incr m "a";
  Metrics.observe m "h" 1.0;
  Alcotest.(check int) "no counter" 0 (Metrics.counter_value m "a");
  Alcotest.(check (list string)) "no names" [] (Metrics.names m)

(* -- trace ring buffer -------------------------------------------------- *)

let test_trace_ring_eviction () =
  let open Dyno_sim in
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) Trace.Info (string_of_int i)
  done;
  let kept =
    List.map (fun (e : Trace.entry) -> e.Trace.detail) (Trace.entries t)
  in
  Alcotest.(check (list string)) "last 3 kept, in order" [ "3"; "4"; "5" ] kept;
  Alcotest.(check int) "dropped" 2 (Trace.dropped t);
  Alcotest.(check int) "count survives eviction" 5 (Trace.count t Trace.Info);
  Alcotest.(check (option int)) "capacity" (Some 3) (Trace.capacity t)

let test_trace_unbounded_growth () =
  let open Dyno_sim in
  let t = Trace.create () in
  for i = 1 to 1000 do
    Trace.record t ~time:(float_of_int i) Trace.Commit "c"
  done;
  Alcotest.(check int) "all retained" 1000 (List.length (Trace.entries t));
  Alcotest.(check int) "none dropped" 0 (Trace.dropped t);
  Alcotest.(check int) "count" 1000 (Trace.count t Trace.Commit);
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Trace.create: capacity must be >= 1") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

(* -- chrome-trace structure: children nest within parents --------------- *)

let test_span_nesting_in_run () =
  let obs, _, _ = run_observed ~loss:0.3 () in
  let spans = Span.spans (Obs.spans obs) in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : Span.t) -> Hashtbl.replace by_id s.Span.id s) spans;
  List.iter
    (fun (s : Span.t) ->
      if s.Span.parent <> 0 then
        match Hashtbl.find_opt by_id s.Span.parent with
        | None -> Alcotest.failf "span %d: dangling parent %d" s.Span.id s.Span.parent
        | Some p ->
            let within =
              s.Span.start >= p.Span.start -. 1e-9
              && s.Span.finish <= p.Span.finish +. 1e-9
            in
            if not within then
              Alcotest.failf
                "span %d [%g, %g] escapes parent %d [%g, %g]" s.Span.id
                s.Span.start s.Span.finish p.Span.id p.Span.start p.Span.finish)
    spans;
  (* the run under faults exercises the whole vocabulary we care about *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "kind %s present" (Span.kind_to_string k))
        true
        (Span.count_kind (Obs.spans obs) k > 0))
    Span.[ Maintain; Detect; Correct; Probe; Refresh; Vs; Va; Batch; Retry; Timeout ]

(* -- cross-accounting against Stats ------------------------------------- *)

let sum_kind r k = Span.total_duration r k

let test_maintain_sum_equals_busy () =
  let obs, _, stats = run_observed ~loss:0.3 () in
  let r = Obs.spans obs in
  Alcotest.(check (float 1e-6))
    "Σ maintain = Stats.busy" stats.Dyno_core.Stats.busy
    (sum_kind r Span.Maintain)

let test_breakdown_matches_stats () =
  let obs, _, stats = run_observed ~loss:0.3 () in
  let b = Export.breakdown (Obs.spans obs) in
  let open Dyno_core in
  Alcotest.(check (float 1e-6)) "busy" stats.Stats.busy b.Export.busy;
  Alcotest.(check (float 1e-6))
    "abort cost" stats.Stats.abort_cost b.Export.abort_cost;
  Alcotest.(check (float 1e-6))
    "net wait" stats.Stats.net_wait b.Export.net_wait;
  Alcotest.(check (float 1e-6))
    "idle = horizon - busy" (b.Export.horizon -. b.Export.busy) b.Export.idle

let test_metrics_mirror_stats () =
  let obs, _, stats = run_observed ~loss:0.3 () in
  let m = Obs.metrics obs in
  let open Dyno_core in
  Alcotest.(check int)
    "du_maintained mirrored" stats.Stats.du_maintained
    (Metrics.counter_value m "sched.du_maintained");
  Alcotest.(check int)
    "probes mirrored" stats.Stats.probes
    (Metrics.counter_value m "sched.probes");
  Alcotest.(check int)
    "live retries = stats retries" stats.Stats.retries
    (Metrics.counter_value m "net.retries");
  Alcotest.(check (float 1e-9))
    "busy gauge" stats.Stats.busy
    (Metrics.gauge_value m "sched.busy_s")

(* -- obs off changes nothing -------------------------------------------- *)

let test_obs_off_identical () =
  let run obs =
    let t = scenario ~obs ~loss:0.3 ~seed:11 ~n_dus:12 ~n_scs:2 () in
    let stats =
      Dyno_workload.Scenario.run t ~strategy:Dyno_core.Strategy.Pessimistic
    in
    ( Fmt.str "%a" Dyno_core.Stats.pp stats,
      Dyno_view.Mat_view.extent t.Dyno_workload.Scenario.mv )
  in
  let s_off, e_off = run Obs.disabled in
  let s_on, e_on = run (Obs.create ()) in
  Alcotest.(check string) "stats byte-identical" s_off s_on;
  Alcotest.(check bool) "extent identical" true
    (Dyno_relational.Relation.equal e_off e_on)

(* -- JSON round-trips --------------------------------------------------- *)

let test_json_round_trips () =
  let obs, t, stats = run_observed ~loss:0.3 () in
  Json_check.check_exn ~what:"stats JSON"
    (Dyno_core.Stats.to_json_string stats);
  Json_check.check_exn ~what:"metrics JSON"
    (Metrics.to_json_string (Obs.metrics obs));
  Json_check.check_exn ~what:"trace JSON"
    (Dyno_sim.Trace.to_json_string t.Dyno_workload.Scenario.trace);
  Json_check.check_exn ~what:"chrome trace"
    (Export.chrome_trace (Obs.spans obs));
  Json_check.check_jsonl_exn ~what:"span JSONL"
    (Export.spans_jsonl (Obs.spans obs))

let test_json_escaping () =
  (* attr/name values with quotes, backslashes and control chars must
     still render as valid JSON *)
  let r = Span.create () in
  Span.with_span r
    ~now:(fun () -> 0.0)
    Span.Probe "na\"me\\with\ttabs"
    (fun id -> Span.set_attr r id "k\"ey" "v\nal");
  Span.instant r ~time:0.0 "ev\"ent" "de\ttail";
  Json_check.check_exn ~what:"escaped chrome trace" (Export.chrome_trace r);
  Json_check.check_jsonl_exn ~what:"escaped span JSONL" (Export.spans_jsonl r);
  let m = Metrics.create () in
  Metrics.incr m "weird\"name\\";
  Json_check.check_exn ~what:"escaped metrics" (Metrics.to_json_string m);
  let tr = Dyno_sim.Trace.create ~enabled:true () in
  Dyno_sim.Trace.record tr ~time:0.0 Dyno_sim.Trace.Info "de\"tail\\";
  Json_check.check_exn ~what:"escaped trace" (Dyno_sim.Trace.to_json_string tr);
  Json_check.check_exn ~what:"checker rejects garbage is tested inline"
    "{\"a\": [1, 2.5e-3, true, null, \"x\\u00e9\"]}";
  match Json_check.check "{\"a\": }" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker should reject malformed JSON"

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting + ids" `Quick test_span_nesting_ids;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_noop;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "histogram quantiles" `Quick
            test_metrics_quantiles;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_metrics_disabled_noop;
        ] );
      ( "trace-ring",
        [
          Alcotest.test_case "bounded eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "unbounded growth" `Quick
            test_trace_unbounded_growth;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "children nest within parents" `Quick
            test_span_nesting_in_run;
          Alcotest.test_case "Σ maintain = Stats.busy" `Quick
            test_maintain_sum_equals_busy;
          Alcotest.test_case "breakdown matches Stats" `Quick
            test_breakdown_matches_stats;
          Alcotest.test_case "metrics mirror Stats" `Quick
            test_metrics_mirror_stats;
          Alcotest.test_case "obs off changes nothing" `Quick
            test_obs_off_identical;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trips parse" `Quick test_json_round_trips;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
        ] );
    ]
