(* Tests for the observability layer (lib/obs) and its integration:

   - span recorder mechanics: nesting, attrs, disabled no-op;
   - metrics registry: counters, gauges, histogram quantiles;
   - trace ring buffer: bounded eviction, O(1) counts across eviction;
   - chrome-trace structural checks: every child span lies within its
     parent's [ts, ts + dur] window;
   - cross-accounting: Σ Maintain span durations = Stats.busy, and the
     span-derived breakdown agrees with Stats on busy/abort/idle/net-wait;
   - the obs-off guarantee: enabling recording changes no Stats byte and
     no view tuple;
   - JSON round-trips: stats, metrics, trace, chrome trace and the span
     JSONL all parse under the tiny checker in Json_check. *)

open Dyno_obs

(* -- a small faulty workload that exercises every span kind ------------- *)

let scenario ?(obs = Obs.disabled) ?(loss = 0.0) ?(shards = 1) ~seed ~n_dus
    ~n_scs () =
  let timeline =
    Dyno_workload.Generator.mixed ~rows:10 ~seed ~n_dus ~du_interval:0.2
      ~sc_start:0.1 ~sc_interval:1.5
      ~sc_kinds:(Dyno_workload.Generator.drop_then_renames n_scs)
      ()
  in
  let faults =
    { Dyno_net.Channel.reliable with loss; retransmit = 0.05 }
  in
  Dyno_workload.Scenario.make
    Dyno_workload.Scenario.Config.(
      default |> with_rows 10
      |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
      |> with_snapshots true |> with_trace true |> with_faults faults
      |> with_net_seed 99 |> with_obs obs |> with_shards shards)
    ~timeline

let run_observed ?loss ?(strategy = Dyno_core.Strategy.Pessimistic) () =
  let obs = Obs.create () in
  let t = scenario ~obs ?loss ~seed:11 ~n_dus:12 ~n_scs:2 () in
  let stats =
    Dyno_workload.Scenario.run t
      ~config:(Dyno_core.Run_config.of_strategy strategy)
  in
  (obs, t, stats)

(* -- span recorder ------------------------------------------------------ *)

let test_span_nesting_ids () =
  let r = Span.create () in
  let clock = ref 0.0 in
  let now () = !clock in
  let inner_id = ref 0 in
  let outer =
    Span.with_span r ~now Span.Maintain "outer" (fun outer ->
        clock := 1.0;
        Span.with_span r ~now Span.Probe "inner" (fun inner ->
            inner_id := inner;
            clock := 2.0);
        clock := 3.0;
        outer)
  in
  match Span.(find r !inner_id, find r outer) with
  | Some inner, Some outer_span ->
      Alcotest.(check int) "child parented" outer inner.Span.parent;
      Alcotest.(check int) "root has no parent" 0 outer_span.Span.parent;
      Alcotest.(check (float 0.0)) "inner start" 1.0 inner.Span.start;
      Alcotest.(check (float 0.0)) "inner finish" 2.0 inner.Span.finish;
      Alcotest.(check (float 0.0)) "outer finish" 3.0 outer_span.Span.finish
  | _ -> Alcotest.fail "both spans should be recorded"

let test_span_disabled_noop () =
  let r = Span.disabled in
  let id =
    Span.with_span r
      ~now:(fun () -> 0.0)
      Span.Maintain "x"
      (fun id ->
        Span.set_attr r id "k" "v";
        Span.instant r ~time:0.0 "ev" "d";
        id)
  in
  Alcotest.(check int) "id is 0" 0 id;
  Alcotest.(check int) "no spans" 0 (Span.span_count r);
  Alcotest.(check int) "no events" 0 (List.length (Span.events r))

let test_span_exception_safety () =
  let r = Span.create () in
  let clock = ref 5.0 in
  (try
     Span.with_span r
       ~now:(fun () -> !clock)
       Span.Vs "boom"
       (fun _ ->
         clock := 7.0;
         failwith "boom")
   with Failure _ -> ());
  match Span.spans r with
  | [ s ] ->
      Alcotest.(check (float 0.0)) "closed at raise time" 7.0 s.Span.finish;
      Alcotest.(check int) "nothing left open" 0 (List.length (Span.open_spans r))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* -- metrics ------------------------------------------------------------ *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m ~by:4 "a";
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "a");
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value m "g");
  Alcotest.(check int) "absent counter is 0" 0 (Metrics.counter_value m "zz")

let test_metrics_quantiles () =
  let m = Metrics.create () in
  (* 100 observations 0.01 .. 1.00: p50 ≈ 0.5, p99 ≈ 1.0 up to one log₂
     bucket of slack (quantile returns the bucket's upper bound clamped to
     the observed max). *)
  for i = 1 to 100 do
    Metrics.observe m "lat_s" (float_of_int i /. 100.0)
  done;
  let p50 = Metrics.quantile m "lat_s" 0.5 in
  let p99 = Metrics.quantile m "lat_s" 0.99 in
  Alcotest.(check bool) "p50 in [0.5, 1.0]" true (p50 >= 0.5 && p50 <= 1.0);
  Alcotest.(check bool) "p99 in [0.99, 1.0]" true (p99 >= 0.99 && p99 <= 1.0);
  match Metrics.histogram_summary m "lat_s" with
  | Some s ->
      Alcotest.(check int) "count" 100 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 50.5 s.Metrics.sum;
      Alcotest.(check (float 1e-9)) "min" 0.01 s.Metrics.min;
      Alcotest.(check (float 1e-9)) "max" 1.0 s.Metrics.max
  | None -> Alcotest.fail "summary expected"

let test_metrics_disabled_noop () =
  let m = Metrics.disabled in
  Metrics.incr m "a";
  Metrics.observe m "h" 1.0;
  Alcotest.(check int) "no counter" 0 (Metrics.counter_value m "a");
  Alcotest.(check (list string)) "no names" [] (Metrics.names m)

(* -- trace ring buffer -------------------------------------------------- *)

let test_trace_ring_eviction () =
  let open Dyno_sim in
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) Trace.Info (string_of_int i)
  done;
  let kept =
    List.map (fun (e : Trace.entry) -> e.Trace.detail) (Trace.entries t)
  in
  Alcotest.(check (list string)) "last 3 kept, in order" [ "3"; "4"; "5" ] kept;
  Alcotest.(check int) "dropped" 2 (Trace.dropped t);
  Alcotest.(check int) "count survives eviction" 5 (Trace.count t Trace.Info);
  Alcotest.(check (option int)) "capacity" (Some 3) (Trace.capacity t)

let test_trace_unbounded_growth () =
  let open Dyno_sim in
  let t = Trace.create () in
  for i = 1 to 1000 do
    Trace.record t ~time:(float_of_int i) Trace.Commit "c"
  done;
  Alcotest.(check int) "all retained" 1000 (List.length (Trace.entries t));
  Alcotest.(check int) "none dropped" 0 (Trace.dropped t);
  Alcotest.(check int) "count" 1000 (Trace.count t Trace.Commit);
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Trace.create: capacity must be >= 1") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

(* -- chrome-trace structure: children nest within parents --------------- *)

let test_span_nesting_in_run () =
  let obs, _, _ = run_observed ~loss:0.3 () in
  let spans = Span.spans (Obs.spans obs) in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : Span.t) -> Hashtbl.replace by_id s.Span.id s) spans;
  List.iter
    (fun (s : Span.t) ->
      if s.Span.parent <> 0 then
        match Hashtbl.find_opt by_id s.Span.parent with
        | None -> Alcotest.failf "span %d: dangling parent %d" s.Span.id s.Span.parent
        | Some p ->
            let within =
              s.Span.start >= p.Span.start -. 1e-9
              && s.Span.finish <= p.Span.finish +. 1e-9
            in
            if not within then
              Alcotest.failf
                "span %d [%g, %g] escapes parent %d [%g, %g]" s.Span.id
                s.Span.start s.Span.finish p.Span.id p.Span.start p.Span.finish)
    spans;
  (* the run under faults exercises the whole vocabulary we care about *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "kind %s present" (Span.kind_to_string k))
        true
        (Span.count_kind (Obs.spans obs) k > 0))
    Span.[ Maintain; Detect; Correct; Probe; Refresh; Vs; Va; Batch; Retry; Timeout ]

(* -- cross-accounting against Stats ------------------------------------- *)

let sum_kind r k = Span.total_duration r k

let test_maintain_sum_equals_busy () =
  let obs, _, stats = run_observed ~loss:0.3 () in
  let r = Obs.spans obs in
  Alcotest.(check (float 1e-6))
    "Σ maintain = Stats.busy" stats.Dyno_core.Stats.busy
    (sum_kind r Span.Maintain)

let test_breakdown_matches_stats () =
  let obs, _, stats = run_observed ~loss:0.3 () in
  let b = Export.breakdown (Obs.spans obs) in
  let open Dyno_core in
  Alcotest.(check (float 1e-6)) "busy" stats.Stats.busy b.Export.busy;
  Alcotest.(check (float 1e-6))
    "abort cost" stats.Stats.abort_cost b.Export.abort_cost;
  Alcotest.(check (float 1e-6))
    "net wait" stats.Stats.net_wait b.Export.net_wait;
  Alcotest.(check (float 1e-6))
    "idle = horizon - busy" (b.Export.horizon -. b.Export.busy) b.Export.idle

let test_metrics_mirror_stats () =
  let obs, _, stats = run_observed ~loss:0.3 () in
  let m = Obs.metrics obs in
  let open Dyno_core in
  Alcotest.(check int)
    "du_maintained mirrored" stats.Stats.du_maintained
    (Metrics.counter_value m "sched.du_maintained");
  Alcotest.(check int)
    "probes mirrored" stats.Stats.probes
    (Metrics.counter_value m "sched.probes");
  Alcotest.(check int)
    "live retries = stats retries" stats.Stats.retries
    (Metrics.counter_value m "net.retries");
  Alcotest.(check (float 1e-9))
    "busy gauge" stats.Stats.busy
    (Metrics.gauge_value m "sched.busy_s")

(* -- obs off changes nothing -------------------------------------------- *)

let test_obs_off_identical () =
  let run obs =
    let t = scenario ~obs ~loss:0.3 ~seed:11 ~n_dus:12 ~n_scs:2 () in
    let stats =
      Dyno_workload.Scenario.run t
        ~config:(Dyno_core.Run_config.of_strategy Dyno_core.Strategy.Pessimistic)
    in
    ( Fmt.str "%a" Dyno_core.Stats.pp stats,
      Dyno_view.Mat_view.extent t.Dyno_workload.Scenario.mv )
  in
  let s_off, e_off = run Obs.disabled in
  let s_on, e_on = run (Obs.create ()) in
  Alcotest.(check string) "stats byte-identical" s_off s_on;
  Alcotest.(check bool) "extent identical" true
    (Dyno_relational.Relation.equal e_off e_on);
  (* lineage off with the rest of obs on is just as invisible *)
  let s_nl, e_nl = run (Obs.create ~lineage:false ()) in
  Alcotest.(check string) "lineage-off stats byte-identical" s_off s_nl;
  Alcotest.(check bool) "lineage-off extent identical" true
    (Dyno_relational.Relation.equal e_off e_nl)

(* -- lineage: cursor tiling, forensics, terminals ----------------------- *)

let terminal_kinds = [ "applied"; "irrelevant"; "dropped_undefined" ]

let terminal_event_count r =
  List.length
    (List.filter
       (fun (e : Lineage.event) -> List.mem e.Lineage.kind terminal_kinds)
       (Lineage.events r))

let test_lineage_cursor_tiling () =
  let lin = Lineage.create () in
  Lineage.commit lin ~source:"DS1" ~seq:1 ~time:0.0 ~sc:false ~detail:"DU";
  Lineage.sent lin ~source:"DS1" ~seq:1 ~time:0.0 ~transmissions:2
    ~duplicated:false ~arrival:0.4;
  Lineage.arrive lin ~source:"DS1" ~seq:1 ~time:0.4;
  Lineage.admit lin ~source:"DS1" ~seq:1 ~time:0.4 ~msg_id:0;
  Lineage.dispatch lin ~ids:[ 0 ] ~time:1.4 ~detail:"head" ();
  Lineage.set_scope lin [ 0 ];
  Lineage.probe_begin lin ~time:1.5;
  Lineage.probe_end lin ~time:1.7 ~detail:"probe DS1";
  Lineage.finish lin ~ids:[ 0 ] ~time:2.0 ~state:Lineage.Applied
    ~detail:"done";
  match Lineage.find_msg lin 0 with
  | None -> Alcotest.fail "record should be indexed by msg id"
  | Some r ->
      let seg = Lineage.segment_value r in
      Alcotest.(check (float 1e-12)) "channel" 0.4 (seg Lineage.Channel);
      Alcotest.(check (float 1e-12)) "queue" 1.0 (seg Lineage.Queue);
      Alcotest.(check (float 1e-12)) "probe" 0.2 (seg Lineage.Probe);
      (* compute = 0.1 before the probe + 0.3 trailing at finish *)
      Alcotest.(check (float 1e-12)) "compute" 0.4 (seg Lineage.Compute);
      Alcotest.(check (float 1e-12)) "elapsed" 2.0 (Lineage.elapsed r);
      Alcotest.(check (float 1e-12))
        "segments tile the elapsed interval" (Lineage.elapsed r)
        (Lineage.segment_sum r);
      Alcotest.(check int) "exactly one terminal event" 1
        (terminal_event_count r);
      (* the record is sealed: later charges are structural no-ops *)
      Lineage.dispatch lin ~ids:[ 0 ] ~time:9.0 ~detail:"too late" ();
      Lineage.finish lin ~ids:[ 0 ] ~time:9.5 ~state:Lineage.Irrelevant
        ~detail:"second terminal loses";
      Alcotest.(check (float 1e-12)) "sum unchanged after seal" 2.0
        (Lineage.segment_sum r);
      Alcotest.(check bool) "first terminal wins" true
        (r.Lineage.term = Some Lineage.Applied)

let test_lineage_hold_dedup_merge () =
  let mx = Metrics.create () in
  let lin = Lineage.create ~metrics:mx () in
  (* a held-for-gap packet charges [Hold] between arrival and admission *)
  Lineage.commit lin ~source:"DS2" ~seq:2 ~time:0.0 ~sc:false ~detail:"DU";
  Lineage.arrive lin ~source:"DS2" ~seq:2 ~time:0.3;
  Lineage.held lin ~source:"DS2" ~seq:2 ~time:0.3;
  Lineage.dedup lin ~source:"DS2" ~seq:2 ~time:0.5;
  Lineage.admit lin ~source:"DS2" ~seq:2 ~time:0.9 ~msg_id:7;
  (match Lineage.find_msg lin 7 with
  | None -> Alcotest.fail "held record should be admitted as msg 7"
  | Some r ->
      Alcotest.(check (float 1e-12)) "hold charged" 0.6
        (Lineage.segment_value r Lineage.Hold);
      Alcotest.(check int) "dedup counted" 1
        (Metrics.counter_value mx "lineage.dedups"));
  (* a merge links members to the batch's smallest id as causal parent *)
  List.iter
    (fun (seq, id) ->
      Lineage.commit lin ~source:"DS1" ~seq ~time:1.0 ~sc:(seq = 9)
        ~detail:"member";
      Lineage.admit lin ~source:"DS1" ~seq ~time:1.0 ~msg_id:id)
    [ (8, 3); (9, 5) ];
  Lineage.merged lin ~ids:[ 5; 3 ] ~time:2.0 ~detail:"cycle merged";
  (match (Lineage.find_msg lin 3, Lineage.find_msg lin 5) with
  | Some a, Some b ->
      Alcotest.(check int) "smallest id is the parent" (-1) a.Lineage.parent;
      Alcotest.(check int) "member links to parent" 3 b.Lineage.parent
  | _ -> Alcotest.fail "merge members should exist");
  Alcotest.(check int) "merges counted" 1
    (Metrics.counter_value mx "lineage.merges")

let test_lineage_disabled_noop () =
  let lin = Lineage.disabled in
  Lineage.commit lin ~source:"DS1" ~seq:1 ~time:0.0 ~sc:false ~detail:"x";
  Lineage.admit lin ~source:"DS1" ~seq:1 ~time:0.0 ~msg_id:0;
  Lineage.finish lin ~ids:[ 0 ] ~time:1.0 ~state:Lineage.Applied ~detail:"x";
  Alcotest.(check bool) "reports disabled" false (Lineage.enabled lin);
  Alcotest.(check int) "no records" 0 (List.length (Lineage.records lin));
  Alcotest.(check bool) "no index" true (Lineage.find_msg lin 0 = None);
  Alcotest.(check string) "empty JSONL" "" (Lineage.to_jsonl lin)

let test_lineage_abort_forensics () =
  (* optimistic strategy applies before detection, so drop-column SCs force
     real aborts: the narrative must name the aborting SC and the CD/SD
     edges behind the wait *)
  let obs, _, _ =
    run_observed ~loss:0.2 ~strategy:Dyno_core.Strategy.Optimistic ()
  in
  let records = Lineage.records (Obs.lineage obs) in
  let has kind pred =
    List.exists
      (fun r ->
        List.exists
          (fun (e : Lineage.event) ->
            e.Lineage.kind = kind && pred e.Lineage.detail)
          (Lineage.events r))
      records
  in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "an abort names its SC" true
    (has "abort" (fun d -> contains_sub d "aborting SC #"));
  Alcotest.(check bool) "a CD/SD edge was recorded" true
    (has "dep-edge" (fun d -> contains_sub d "edge"));
  Alcotest.(check bool) "aborts counted" true
    (Metrics.counter_value (Obs.metrics obs) "lineage.aborts" > 0);
  (* the narrative printer agrees with the event list *)
  let aborted =
    List.find
      (fun r ->
        List.exists
          (fun (e : Lineage.event) -> e.Lineage.kind = "abort")
          (Lineage.events r))
      records
  in
  let text = Fmt.str "%a" Lineage.pp_record aborted in
  Alcotest.(check bool) "narrative mentions the abort" true
    (contains_sub text "aborting SC #")

(* Under faults, across shard counts: every delivered update reaches
   exactly one terminal state, every segment is non-negative, and the
   segments tile the commit-to-terminal interval exactly. *)
let prop_lineage =
  QCheck.Test.make
    ~name:
      "lineage: one terminal per delivered id, segs >= 0, Σ segs = elapsed"
    ~count:200
    QCheck.(
      quad (int_range 0 9999) (int_range 3 10) (int_range 0 25)
        (int_range 0 2))
    (fun (seed, n_dus, loss_pct, shard_ix) ->
      let loss = float_of_int loss_pct /. 100.0 in
      let shards = [| 1; 2; 4 |].(shard_ix) in
      let obs = Obs.create () in
      let t = scenario ~obs ~loss ~shards ~seed ~n_dus ~n_scs:1 () in
      let _stats =
        Dyno_workload.Scenario.run t
          ~config:
            (Dyno_core.Run_config.of_strategy Dyno_core.Strategy.Pessimistic)
      in
      let records = Lineage.records (Obs.lineage obs) in
      if records = [] then QCheck.Test.fail_report "no lineage records";
      List.iter
        (fun (r : Lineage.record) ->
          let who = Fmt.str "%s#%d (msg %d)" r.Lineage.source r.Lineage.seq
              r.Lineage.msg_id
          in
          if r.Lineage.msg_id >= 0 then begin
            if r.Lineage.term = None then
              QCheck.Test.fail_reportf "%s delivered but never terminal" who;
            let n = terminal_event_count r in
            if n <> 1 then
              QCheck.Test.fail_reportf "%s has %d terminal events" who n
          end;
          List.iter
            (fun s ->
              if Lineage.segment_value r s < 0.0 then
                QCheck.Test.fail_reportf "%s: negative %s segment" who
                  (Lineage.segment_name s))
            Lineage.all_segments;
          if r.Lineage.term <> None then begin
            let sum = Lineage.segment_sum r
            and elapsed = Lineage.elapsed r in
            if Float.abs (sum -. elapsed) > 1e-6 then
              QCheck.Test.fail_reportf
                "%s: segments sum %.9f <> elapsed %.9f" who sum elapsed
          end)
        records;
      true)

(* -- JSON round-trips --------------------------------------------------- *)

let test_json_round_trips () =
  let obs, t, stats = run_observed ~loss:0.3 () in
  Json_check.check_exn ~what:"stats JSON"
    (Dyno_core.Stats.to_json_string stats);
  Json_check.check_exn ~what:"metrics JSON"
    (Metrics.to_json_string (Obs.metrics obs));
  Json_check.check_exn ~what:"trace JSON"
    (Dyno_sim.Trace.to_json_string t.Dyno_workload.Scenario.trace);
  Json_check.check_exn ~what:"chrome trace"
    (Export.chrome_trace ~lineage:(Obs.lineage obs) (Obs.spans obs));
  Json_check.check_jsonl_exn ~what:"span JSONL"
    (Export.spans_jsonl (Obs.spans obs));
  Json_check.check_jsonl_exn ~what:"lineage JSONL"
    (Lineage.to_jsonl (Obs.lineage obs));
  (* the Perfetto flow thread: a start at commit and a binding-point end
     per admitted update must be present in the same document *)
  let trace = Export.chrome_trace ~lineage:(Obs.lineage obs) (Obs.spans obs) in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "flow start events present" true
    (contains_sub trace "\"ph\": \"s\"");
  Alcotest.(check bool) "flow end events present" true
    (contains_sub trace "\"bp\": \"e\"")

let test_json_escaping () =
  (* attr/name values with quotes, backslashes and control chars must
     still render as valid JSON *)
  let r = Span.create () in
  Span.with_span r
    ~now:(fun () -> 0.0)
    Span.Probe "na\"me\\with\ttabs"
    (fun id -> Span.set_attr r id "k\"ey" "v\nal");
  Span.instant r ~time:0.0 "ev\"ent" "de\ttail";
  Json_check.check_exn ~what:"escaped chrome trace" (Export.chrome_trace r);
  Json_check.check_jsonl_exn ~what:"escaped span JSONL" (Export.spans_jsonl r);
  let m = Metrics.create () in
  Metrics.incr m "weird\"name\\";
  Json_check.check_exn ~what:"escaped metrics" (Metrics.to_json_string m);
  let tr = Dyno_sim.Trace.create ~enabled:true () in
  Dyno_sim.Trace.record tr ~time:0.0 Dyno_sim.Trace.Info "de\"tail\\";
  Json_check.check_exn ~what:"escaped trace" (Dyno_sim.Trace.to_json_string tr);
  Json_check.check_exn ~what:"checker rejects garbage is tested inline"
    "{\"a\": [1, 2.5e-3, true, null, \"x\\u00e9\"]}";
  match Json_check.check "{\"a\": }" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker should reject malformed JSON"

(* -- metrics edge cases: empty / single / bucket bounds / clamping ------ *)

let test_metrics_empty_histogram () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.0)) "absent quantile is 0" 0.0
    (Metrics.quantile m "never" 0.5);
  Alcotest.(check bool) "absent summary is None" true
    (Metrics.histogram_summary m "never" = None);
  (* a name registered as another kind is not a histogram either *)
  Metrics.incr m "c";
  Alcotest.(check bool) "counter has no summary" true
    (Metrics.histogram_summary m "c" = None);
  Alcotest.(check (float 0.0)) "counter quantile is 0" 0.0
    (Metrics.quantile m "c" 0.99)

let test_metrics_single_sample () =
  let m = Metrics.create () in
  Metrics.observe m "one" 0.37;
  (* with a single observation every quantile clamps to the observed max *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Fmt.str "q=%g collapses to the sample" q)
        0.37
        (Metrics.quantile m "one" q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  match Metrics.histogram_summary m "one" with
  | Some s ->
      Alcotest.(check int) "count" 1 s.Metrics.count;
      Alcotest.(check (float 1e-12)) "sum" 0.37 s.Metrics.sum;
      Alcotest.(check (float 1e-12)) "min" 0.37 s.Metrics.min;
      Alcotest.(check (float 1e-12)) "max" 0.37 s.Metrics.max;
      Alcotest.(check (float 1e-12)) "p50 = p99 = the sample" s.Metrics.p50
        s.Metrics.p99
  | None -> Alcotest.fail "summary expected"

let test_metrics_bucket_boundaries () =
  let m = Metrics.create () in
  (* exactly the base bound (1 µs) lands in bucket 0 whose upper bound is
     exactly 1e-6 — the quantile readout is exact, not off by a bucket *)
  Metrics.observe m "edge" 1e-6;
  Alcotest.(check (float 1e-18)) "p99 at exact base bound" 1e-6
    (Metrics.quantile m "edge" 0.99);
  (* un-clamped bound readout: 100 samples inside (1 µs, 2 µs] plus one
     above ⇒ p50 is that bucket's upper bound, exactly 2e-6 *)
  for _ = 1 to 100 do
    Metrics.observe m "bounds" 1.1e-6
  done;
  Metrics.observe m "bounds" 3e-6;
  Alcotest.(check (float 1e-18)) "p50 = log₂ bucket upper bound" 2e-6
    (Metrics.quantile m "bounds" 0.5);
  Alcotest.(check (float 1e-18)) "p99 still in the low bucket" 2e-6
    (Metrics.quantile m "bounds" 0.99)

let test_metrics_max_clamping () =
  let m = Metrics.create () in
  (* 40, 50, 60 s all fall in the same [33.6, 67.1] log₂ bucket: without
     clamping every quantile would read the bucket bound 67.1; the clamp
     pins them to the observed max *)
  List.iter (Metrics.observe m "lat") [ 40.0; 50.0; 60.0 ];
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Fmt.str "q=%g clamps to max" q)
        60.0
        (Metrics.quantile m "lat" q))
    [ 0.5; 0.9; 0.99 ];
  match Metrics.histogram_summary m "lat" with
  | Some s ->
      Alcotest.(check (float 1e-9)) "summary p50 clamped too" 60.0 s.Metrics.p50;
      Alcotest.(check (float 1e-9)) "max" 60.0 s.Metrics.max
  | None -> Alcotest.fail "summary expected"

(* -- time-series sampler ------------------------------------------------ *)

let test_series_interval_gating () =
  let s = Timeseries.create ~interval:1.0 () in
  let v = ref 0.0 in
  Timeseries.probe s "x" (fun _ -> !v);
  Alcotest.(check bool) "first sample due immediately" true
    (Timeseries.maybe_sample s ~now:0.0);
  Alcotest.(check bool) "within the interval: skipped" false
    (Timeseries.maybe_sample s ~now:0.4);
  v := 7.0;
  Alcotest.(check bool) "due again at the interval" true
    (Timeseries.maybe_sample s ~now:1.0);
  (match Timeseries.samples s with
  | [ a; b ] ->
      Alcotest.(check (float 0.0)) "t₀" 0.0 a.Timeseries.at;
      Alcotest.(check (float 0.0)) "x@t₀" 0.0
        (List.assoc "x" a.Timeseries.values);
      Alcotest.(check (float 0.0)) "x@t₁ reads the probe live" 7.0
        (List.assoc "x" b.Timeseries.values)
  | l -> Alcotest.failf "expected 2 samples, got %d" (List.length l));
  (* a forced sample at an already-sampled instant dedupes... *)
  Timeseries.sample s ~now:1.0;
  Alcotest.(check int) "same-instant force deduped" 2 (Timeseries.length s);
  (* ...but a forced sample mid-interval is taken *)
  Timeseries.sample s ~now:1.25;
  Alcotest.(check int) "off-interval force taken" 3 (Timeseries.length s)

let test_series_counter_rates () =
  let s = Timeseries.create ~interval:0.5 () in
  let c = ref 0.0 in
  Timeseries.probe s ~kind:`Counter "c" (fun _ -> !c);
  Timeseries.sample s ~now:0.0;
  c := 10.0;
  Timeseries.sample s ~now:2.0;
  match Timeseries.samples s with
  | [ a; b ] ->
      Alcotest.(check (float 0.0)) "first sample has no history: rate 0" 0.0
        (List.assoc "c.rate" a.Timeseries.values);
      Alcotest.(check (float 1e-12)) "rate = Δv/Δt" 5.0
        (List.assoc "c.rate" b.Timeseries.values);
      Alcotest.(check (float 0.0)) "raw value kept alongside" 10.0
        (List.assoc "c" b.Timeseries.values)
  | l -> Alcotest.failf "expected 2 samples, got %d" (List.length l)

let test_series_ring_and_jsonl () =
  let s = Timeseries.create ~capacity:3 ~interval:1.0 () in
  Timeseries.probe s "x" (fun now -> now *. 2.0);
  for i = 0 to 4 do
    Timeseries.sample s ~now:(float_of_int i)
  done;
  Alcotest.(check int) "ring holds capacity" 3 (Timeseries.length s);
  Alcotest.(check int) "evictions counted" 2 (Timeseries.dropped s);
  (match Timeseries.samples s with
  | [ a; _; c ] ->
      Alcotest.(check (float 0.0)) "oldest retained" 2.0 a.Timeseries.at;
      Alcotest.(check (float 0.0)) "newest last" 4.0 c.Timeseries.at
  | l -> Alcotest.failf "expected 3 samples, got %d" (List.length l));
  Json_check.check_jsonl_exn ~what:"series JSONL" (Timeseries.to_jsonl s);
  Alcotest.check_raises "interval <= 0 rejected"
    (Invalid_argument "Timeseries.create: interval <= 0") (fun () ->
      ignore (Timeseries.create ~interval:0.0 ()));
  Alcotest.check_raises "capacity <= 0 rejected"
    (Invalid_argument "Timeseries.create: capacity <= 0") (fun () ->
      ignore (Timeseries.create ~capacity:0 ~interval:1.0 ()))

let test_series_disabled_noop () =
  let s = Timeseries.disabled in
  Timeseries.probe s "x" (fun _ -> 1.0);
  Alcotest.(check bool) "never samples" false (Timeseries.maybe_sample s ~now:0.0);
  Timeseries.sample s ~now:1.0;
  Alcotest.(check int) "stays empty" 0 (Timeseries.length s);
  Alcotest.(check bool) "reports disabled" false (Timeseries.enabled s);
  (* Obs only owns a live sampler when an interval was requested *)
  Alcotest.(check bool) "Obs.create () has no sampler" false
    (Timeseries.enabled (Obs.series (Obs.create ())));
  Alcotest.(check bool) "Obs.create ~sample_interval has one" true
    (Timeseries.enabled (Obs.series (Obs.create ~sample_interval:0.5 ())))

(* -- SLO parsing + evaluation ------------------------------------------- *)

let test_slo_parse () =
  (match Slo.parse "staleness.p99 <= 30" with
  | Ok o ->
      Alcotest.(check string) "metric" "staleness" o.Slo.metric;
      Alcotest.(check bool) "stat" true (o.Slo.stat = Slo.P99);
      Alcotest.(check bool) "op" true (o.Slo.op = Slo.Le);
      Alcotest.(check (float 0.0)) "threshold" 30.0 o.Slo.threshold
  | Error e -> Alcotest.failf "should parse: %s" e);
  (match Slo.parse "stall_ratio < 0.2" with
  | Ok o ->
      Alcotest.(check bool) "no suffix means raw value" true
        (o.Slo.stat = Slo.Value);
      Alcotest.(check bool) "strict op" true (o.Slo.op = Slo.Lt)
  | Error e -> Alcotest.failf "should parse: %s" e);
  (match Slo.parse "view.V.staleness_s.max == 0" with
  | Ok o ->
      (* only the last dot-segment is a stat candidate: dotted metric
         names survive *)
      Alcotest.(check string) "dotted metric kept" "view.V.staleness_s"
        o.Slo.metric;
      Alcotest.(check bool) "max stat" true (o.Slo.stat = Slo.Max);
      Alcotest.(check bool) "eq op" true (o.Slo.op = Slo.Eq)
  | Error e -> Alcotest.failf "should parse: %s" e);
  List.iter
    (fun bad ->
      match Slo.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" bad)
    [ ""; "no operator here"; "m <= "; "m <= twelve"; " <= 3" ];
  Alcotest.check_raises "parse_exn raises on garbage"
    (Invalid_argument "\"nope\": no comparison operator (<= < >= > ==)")
    (fun () -> ignore (Slo.parse_exn "nope"))

let test_slo_eval () =
  let m = Metrics.create () in
  Metrics.set_gauge m "sched.stall_ratio" 0.25;
  Metrics.incr m ~by:4 "sched.aborts";
  Metrics.observe m "staleness_s" 0.5;
  Metrics.observe m "staleness_s" 0.5;
  Metrics.observe m "staleness_s" 40.0;
  let eval spec = Slo.eval m (Slo.parse_exn spec) in
  (* resolution chain: literal, NAME_s, sched.NAME *)
  let v = eval "stall_ratio <= 0.3" in
  Alcotest.(check bool) "gauge via sched. prefix passes" true v.Slo.pass;
  Alcotest.(check (option (float 0.0))) "actual read" (Some 0.25) v.Slo.actual;
  Alcotest.(check bool) "counter compares as float" true
    (eval "aborts <= 4").Slo.pass;
  Alcotest.(check bool) "counter strict fail" false
    (eval "aborts < 4").Slo.pass;
  (* histogram: NAME finds NAME_s; bare name defaults to the tail
     quantile, which clamps to the observed max *)
  Alcotest.(check bool) "staleness <= 40 passes" true
    (eval "staleness <= 40").Slo.pass;
  Alcotest.(check bool) "staleness <= 30 fails" false
    (eval "staleness <= 30").Slo.pass;
  Alcotest.(check bool) "explicit p50 stays low" true
    (eval "staleness.p50 <= 1").Slo.pass;
  Alcotest.(check bool) "count stat" true (eval "staleness.count == 3").Slo.pass;
  Alcotest.(check bool) "mean stat" true
    (eval "staleness.mean <= 13.7").Slo.pass;
  (* a metric that was never recorded is unverifiable: FAIL, actual None *)
  let missing = eval "no_such_metric <= 1" in
  Alcotest.(check bool) "missing metric fails" false missing.Slo.pass;
  Alcotest.(check bool) "missing metric has no actual" true
    (missing.Slo.actual = None);
  let vs = Slo.eval_all m (List.map Slo.parse_exn [ "aborts <= 4"; "stall_ratio <= 0.3" ]) in
  Alcotest.(check bool) "all_pass over passing set" true (Slo.all_pass vs);
  Alcotest.(check bool) "all_pass spots one failure" false
    (Slo.all_pass (vs @ [ eval "aborts < 4" ]))

(* -- OpenMetrics exposition --------------------------------------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_openmetrics_format () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "net.retries";
  Metrics.set_gauge m "sched.stall_ratio" 0.25;
  Metrics.observe m "staleness_s" 0.5;
  Metrics.observe m "staleness_s" 1.5;
  let out = Export.openmetrics m in
  Alcotest.(check bool) "counter sanitized + _total suffix" true
    (contains out "# TYPE dyno_net_retries counter");
  Alcotest.(check bool) "counter sample" true
    (contains out "dyno_net_retries_total 3");
  Alcotest.(check bool) "gauge sample" true
    (contains out "dyno_sched_stall_ratio 0.25");
  Alcotest.(check bool) "histogram as summary" true
    (contains out "# TYPE dyno_staleness_s summary");
  Alcotest.(check bool) "tail quantile series" true
    (contains out "dyno_staleness_s{quantile=\"0.99\"}");
  Alcotest.(check bool) "count series" true
    (contains out "dyno_staleness_s_count 2");
  Alcotest.(check bool) "sum series" true
    (contains out "dyno_staleness_s_sum 2");
  let n = String.length out in
  Alcotest.(check bool) "terminated by # EOF" true
    (n >= 6 && String.sub out (n - 6) 6 = "# EOF\n")

(* -- staleness property (acceptance) ------------------------------------ *)

(* Under faults, with the sampler on: every sampled staleness reading is
   non-negative, the per-view applied frontier never regresses (a commit
   of the lagging source can only shrink the version lag — regressions
   would trip the freshness monotonicity counter), and once the run
   drains its UMQ the forced final sample reads exactly 0. *)
let prop_staleness =
  QCheck.Test.make
    ~name:"staleness: sampled >= 0, frontier monotone, 0 at quiescence"
    ~count:200
    QCheck.(triple (int_range 0 9999) (int_range 3 10) (int_range 5 35))
    (fun (seed, n_dus, loss_pct) ->
      let loss = float_of_int loss_pct /. 100.0 in
      let obs = Obs.create ~sample_interval:0.25 () in
      let t = scenario ~obs ~loss ~seed ~n_dus ~n_scs:1 () in
      let _stats =
        Dyno_workload.Scenario.run t
          ~config:
            (Dyno_core.Run_config.of_strategy Dyno_core.Strategy.Pessimistic)
      in
      let samples = Timeseries.samples (Obs.series obs) in
      if samples = [] then QCheck.Test.fail_report "no samples taken";
      let stale (s : Timeseries.sample) =
        match List.assoc_opt "staleness_s" s.Timeseries.values with
        | Some v -> v
        | None -> QCheck.Test.fail_report "staleness_s column missing"
      in
      List.iter
        (fun s ->
          if stale s < 0.0 then
            QCheck.Test.fail_reportf "negative staleness %g at t=%g" (stale s)
              s.Timeseries.at)
        samples;
      if
        Metrics.counter_value (Obs.metrics obs)
          "freshness.monotonicity_violations"
        <> 0
      then QCheck.Test.fail_report "per-view applied frontier regressed";
      let last = List.nth samples (List.length samples - 1) in
      if stale last <> 0.0 then
        QCheck.Test.fail_reportf "staleness %g at quiescence (t=%g)"
          (stale last) last.Timeseries.at;
      true)

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting + ids" `Quick test_span_nesting_ids;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_noop;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "histogram quantiles" `Quick
            test_metrics_quantiles;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_metrics_disabled_noop;
          Alcotest.test_case "empty histogram" `Quick
            test_metrics_empty_histogram;
          Alcotest.test_case "single sample" `Quick test_metrics_single_sample;
          Alcotest.test_case "log₂ bucket boundaries" `Quick
            test_metrics_bucket_boundaries;
          Alcotest.test_case "quantiles clamp to max" `Quick
            test_metrics_max_clamping;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "interval gating + dedupe" `Quick
            test_series_interval_gating;
          Alcotest.test_case "counter rate derivation" `Quick
            test_series_counter_rates;
          Alcotest.test_case "ring eviction + JSONL" `Quick
            test_series_ring_and_jsonl;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_series_disabled_noop;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse" `Quick test_slo_parse;
          Alcotest.test_case "eval + resolution chain" `Quick test_slo_eval;
          Alcotest.test_case "openmetrics exposition" `Quick
            test_openmetrics_format;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "cursor tiles the interval" `Quick
            test_lineage_cursor_tiling;
          Alcotest.test_case "hold + dedup + merge parent" `Quick
            test_lineage_hold_dedup_merge;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_lineage_disabled_noop;
          Alcotest.test_case "abort forensics name the SC" `Quick
            test_lineage_abort_forensics;
          QCheck_alcotest.to_alcotest prop_lineage;
        ] );
      ( "staleness",
        [ QCheck_alcotest.to_alcotest prop_staleness ] );
      ( "trace-ring",
        [
          Alcotest.test_case "bounded eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "unbounded growth" `Quick
            test_trace_unbounded_growth;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "children nest within parents" `Quick
            test_span_nesting_in_run;
          Alcotest.test_case "Σ maintain = Stats.busy" `Quick
            test_maintain_sum_equals_busy;
          Alcotest.test_case "breakdown matches Stats" `Quick
            test_breakdown_matches_stats;
          Alcotest.test_case "metrics mirror Stats" `Quick
            test_metrics_mirror_stats;
          Alcotest.test_case "obs off changes nothing" `Quick
            test_obs_off_identical;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trips parse" `Quick test_json_round_trips;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
        ] );
    ]
