(* Tests for the unreliable transport layer (lib/net) and its integration:

   - channel arithmetic: reliable pass-through, loss→retransmission delay,
     duplication, reordering holds, outage parking, FIFO flush;
   - the UMQ sequencer: exactly-once admission (dup drop, gap hold, heal);
   - retry policy backoff math;
   - zero-fault identity: a reliable channel changes nothing observable;
   - the golden qcheck property: a lossy/duplicating/reordering-but-fair
     channel converges to the same final view extent as a reliable one,
     with strong consistency intact (≥300 random cases). *)

open Dyno_net
open Dyno_relational

(* -- channel ----------------------------------------------------------- *)

let test_reliable_passthrough () =
  let ch : string Channel.t = Channel.create ~seed:42 () in
  let r = Channel.send ch ~now:1.5 ~source:"ds" ~seq:1 "m1" in
  Alcotest.(check int) "one transmission" 1 r.Channel.transmissions;
  Alcotest.(check bool) "no duplicate" false r.Channel.duplicated;
  Alcotest.(check (float 0.0)) "arrives at send time" 1.5 r.Channel.arrival;
  (match Channel.due ch ~now:1.5 with
  | [ p ] ->
      Alcotest.(check string) "payload" "m1" p.Channel.payload;
      Alcotest.(check int) "seq" 1 p.Channel.seq
  | l -> Alcotest.failf "expected 1 packet, got %d" (List.length l));
  Alcotest.(check int) "nothing left" 0 (Channel.in_flight ch);
  Alcotest.(check bool) "no rpc loss" false (Channel.rpc_lost ch);
  Alcotest.(check int) "no losses" 0 (Channel.lost_transmissions ch);
  Alcotest.(check int) "no dups" 0 (Channel.duplicates_sent ch)

let test_loss_is_retransmission_delay () =
  (* loss = 1 would never terminate without the valve; use a seed where
     loss = 0.9999… effectively forces retransmissions, then check the
     arrival honours lost × retransmit. *)
  let faults =
    { Channel.reliable with loss = 0.5; retransmit = 0.1 }
  in
  let ch : string Channel.t = Channel.create ~faults ~seed:7 () in
  let r = Channel.send ch ~now:0.0 ~source:"ds" ~seq:1 "m" in
  Alcotest.(check (float 1e-9))
    "arrival = lost × retransmit"
    (float_of_int (r.Channel.transmissions - 1) *. 0.1)
    r.Channel.arrival;
  Alcotest.(check int)
    "loss counter matches"
    (r.Channel.transmissions - 1)
    (Channel.lost_transmissions ch);
  (* eventual delivery regardless of the draw sequence *)
  Alcotest.(check bool) "in flight" true (Channel.in_flight ch = 1)

let test_duplication () =
  let faults = { Channel.reliable with dup = 1.0; retransmit = 0.1 } in
  let ch : string Channel.t = Channel.create ~faults ~seed:3 () in
  let r = Channel.send ch ~now:0.0 ~source:"ds" ~seq:5 "m" in
  Alcotest.(check bool) "duplicated" true r.Channel.duplicated;
  Alcotest.(check int) "two copies in flight" 2 (Channel.in_flight ch);
  Alcotest.(check int) "dup counter" 1 (Channel.duplicates_sent ch);
  let copies = Channel.due ch ~now:10.0 in
  Alcotest.(check int) "both arrive" 2 (List.length copies);
  Alcotest.(check bool) "same seq" true
    (List.for_all (fun (p : _ Channel.packet) -> p.Channel.seq = 5) copies)

let test_outage_parks_messages () =
  let faults =
    {
      Channel.reliable with
      outages = [ { Channel.source = "ds"; starts = 1.0; ends = 3.0 } ];
    }
  in
  let ch : string Channel.t = Channel.create ~faults ~seed:0 () in
  (* sent during the window: parked until it closes *)
  let r = Channel.send ch ~now:1.5 ~source:"ds" ~seq:1 "m" in
  Alcotest.(check (float 1e-9)) "parked to window end" 3.0 r.Channel.arrival;
  (* another source is unaffected *)
  let r2 = Channel.send ch ~now:1.5 ~source:"other" ~seq:1 "m" in
  Alcotest.(check (float 1e-9)) "other source clear" 1.5 r2.Channel.arrival;
  (match Channel.outage_at ch ~source:"ds" ~now:2.0 with
  | Some o -> Alcotest.(check (float 0.0)) "window end" 3.0 o.Channel.ends
  | None -> Alcotest.fail "outage expected");
  Alcotest.(check bool) "clear after window" true
    (Channel.outage_at ch ~source:"ds" ~now:3.0 = None)

let test_flush_source_orders_by_seq () =
  let faults =
    { Channel.reliable with reorder = 1.0; reorder_delay = 5.0 }
  in
  let ch : string Channel.t = Channel.create ~faults ~seed:1 () in
  ignore (Channel.send ch ~now:0.0 ~source:"ds" ~seq:1 "a");
  ignore (Channel.send ch ~now:1.0 ~source:"ds" ~seq:2 "b");
  ignore (Channel.send ch ~now:2.0 ~source:"other" ~seq:1 "x");
  (* all held back; the flush pops ds's copies in sequence order *)
  let flushed = Channel.flush_source ch ~source:"ds" in
  Alcotest.(check (list string)) "seq order" [ "a"; "b" ]
    (List.map (fun (p : _ Channel.packet) -> p.Channel.payload) flushed);
  Alcotest.(check int) "other stays" 1 (Channel.in_flight ch);
  match Channel.next_arrival ch with
  | Some a -> Alcotest.(check (float 1e-9)) "other's arrival" 7.0 a
  | None -> Alcotest.fail "expected pending arrival"

(* -- retry policy ------------------------------------------------------ *)

let test_backoff_math () =
  let p = Retry.make ~timeout:0.2 ~backoff:0.1 ~multiplier:2.0 () in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.1 (Retry.backoff_delay p ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.2 (Retry.backoff_delay p ~attempt:2);
  Alcotest.(check (float 1e-9)) "attempt 3" 0.4 (Retry.backoff_delay p ~attempt:3)

(* -- UMQ sequencer ----------------------------------------------------- *)

let payload_of i =
  Dyno_view.Update_msg.Du
    (Update.make ~source:"ds" ~rel:"R"
       (Relation.of_list
          (Schema.of_list [ Attr.int "k" ])
          [ [ Value.int i ] ]))

let test_sequencer_exactly_once () =
  let open Dyno_view in
  let q = Umq.create () in
  Umq.ensure_source q ~source:"ds" ~first_seq:1;
  (* in-order admission *)
  (match Umq.deliver q ~source:"ds" ~seq:1 ~commit_time:0.0 ~source_version:1 (payload_of 1) with
  | Umq.Admitted [ _ ] -> ()
  | _ -> Alcotest.fail "seq 1 should be admitted alone");
  (* duplicate dropped *)
  (match Umq.deliver q ~source:"ds" ~seq:1 ~commit_time:0.0 ~source_version:1 (payload_of 1) with
  | Umq.Duplicate -> ()
  | _ -> Alcotest.fail "replayed seq 1 should be a duplicate");
  Alcotest.(check int) "dup counted" 1 (Umq.dups_dropped q);
  (* gap: seq 3 before seq 2 is held *)
  (match Umq.deliver q ~source:"ds" ~seq:3 ~commit_time:2.0 ~source_version:3 (payload_of 3) with
  | Umq.Held -> ()
  | _ -> Alcotest.fail "seq 3 should be held");
  Alcotest.(check int) "one held" 1 (Umq.held_count q);
  Alcotest.(check int) "queue has only seq 1" 1 (Umq.length q);
  (* a second copy of the held message is also a duplicate *)
  (match Umq.deliver q ~source:"ds" ~seq:3 ~commit_time:2.0 ~source_version:3 (payload_of 3) with
  | Umq.Duplicate -> ()
  | _ -> Alcotest.fail "held seq 3 replay should be a duplicate");
  (* the gap fills: 2 admits and drains 3 *)
  (match Umq.deliver q ~source:"ds" ~seq:2 ~commit_time:1.0 ~source_version:2 (payload_of 2) with
  | Umq.Admitted [ m2; m3 ] ->
      Alcotest.(check int) "first is v2" 2 (Update_msg.source_version m2);
      Alcotest.(check int) "then v3" 3 (Update_msg.source_version m3)
  | _ -> Alcotest.fail "seq 2 should admit itself and release seq 3");
  Alcotest.(check int) "heal counted" 1 (Umq.reorders_healed q);
  Alcotest.(check int) "nothing held" 0 (Umq.held_count q);
  Alcotest.(check int) "all three queued" 3 (Umq.length q);
  (* per-source independence *)
  Umq.ensure_source q ~source:"other" ~first_seq:7;
  match Umq.deliver q ~source:"other" ~seq:7 ~commit_time:3.0 ~source_version:7 (payload_of 7) with
  | Umq.Admitted [ _ ] -> ()
  | _ -> Alcotest.fail "other source starts at its own first_seq"

(* -- end-to-end: zero-fault identity ----------------------------------- *)

let scenario ?(trace_enabled = false) ?faults ?net_seed ?obs ~seed ~n_dus
    ~n_scs () =
  let timeline =
    Dyno_workload.Generator.mixed ~rows:10 ~seed ~n_dus ~du_interval:0.2
      ~sc_start:0.1 ~sc_interval:1.5
      ~sc_kinds:(Dyno_workload.Generator.drop_then_renames n_scs)
      ()
  in
  let c =
    Dyno_workload.Scenario.Config.(
      default |> with_rows 10
      |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
      |> with_snapshots true |> with_trace trace_enabled)
  in
  let c =
    match faults with
    | Some f -> Dyno_workload.Scenario.Config.with_faults f c
    | None -> c
  in
  let c =
    match net_seed with
    | Some n -> Dyno_workload.Scenario.Config.with_net_seed n c
    | None -> c
  in
  let c =
    match obs with
    | Some o -> Dyno_workload.Scenario.Config.with_obs o c
    | None -> c
  in
  Dyno_workload.Scenario.make c ~timeline

let test_zero_fault_identity () =
  let run ?faults ?net_seed ?parallel ?self_maint ?obs () =
    let t =
      scenario ~trace_enabled:true ?faults ?net_seed ?obs ~seed:11 ~n_dus:12
        ~n_scs:2 ()
    in
    let stats =
      Dyno_workload.Scenario.run t
        ~config:
          Dyno_core.Run_config.(
            of_strategy Dyno_core.Strategy.Pessimistic
            |> with_parallel (Option.value parallel ~default:1)
            |> with_self_maint (Option.value self_maint ~default:false))
    in
    ( Fmt.str "%a" Dyno_core.Stats.pp stats,
      Dyno_view.Mat_view.extent t.mv,
      Dyno_sim.Trace.entries t.trace )
  in
  let check_identical what (s0, e0, t0) (s1, e1, t1) =
    Alcotest.(check string) (what ^ ": stats byte-identical") s0 s1;
    Alcotest.(check bool)
      (what ^ ": extent identical")
      true (Relation.equal e0 e1);
    (* the recorded event sequences must match entry for entry, not just in
       aggregate: neither a reliable channel nor a degenerate parallel
       degree leaves any footprint in the trace *)
    Alcotest.(check int)
      (what ^ ": same trace length")
      (List.length t0) (List.length t1);
    List.iteri
      (fun i ((a : Dyno_sim.Trace.entry), (b : Dyno_sim.Trace.entry)) ->
        Alcotest.(check string)
          (Fmt.str "%s: trace entry %d identical" what i)
          (Fmt.str "%a" Dyno_sim.Trace.pp_entry a)
          (Fmt.str "%a" Dyno_sim.Trace.pp_entry b))
      (List.combine t0 t1)
  in
  let base = run () in
  check_identical "reliable channel" base
    (run ~faults:Channel.reliable ~net_seed:987654 ());
  (* --parallel 1 must take the serial path bit for bit: same stats, same
     extent, byte-identical trace. *)
  check_identical "parallel=1" base (run ~parallel:1 ());
  (* --self-maint off must leave no footprint: no admit hook installed,
     no store built, output byte-identical to the historical run. *)
  check_identical "self-maint off" base (run ~self_maint:false ());
  (* observability is pure observation: recording spans/metrics without
     the sampler, and sampling the time series itself, both leave the run
     byte-identical to the obs-disabled baseline. *)
  check_identical "obs on, sampler off" base
    (run ~obs:(Dyno_obs.Obs.create ()) ());
  let sampled = Dyno_obs.Obs.create ~sample_interval:0.25 () in
  check_identical "obs on, sampler on" base (run ~obs:sampled ());
  Alcotest.(check bool) "the sampler did actually sample" true
    (Dyno_obs.Timeseries.length (Dyno_obs.Obs.series sampled) > 0);
  (* lineage is pure observation too: recording it, or switching it off
     while the rest of obs stays on, both leave the run byte-identical *)
  let lineage_on = Dyno_obs.Obs.create () in
  check_identical "obs on, lineage on" base (run ~obs:lineage_on ());
  Alcotest.(check bool) "lineage did actually record" true
    (Dyno_obs.Lineage.records (Dyno_obs.Obs.lineage lineage_on) <> []);
  check_identical "obs on, lineage off" base
    (run ~obs:(Dyno_obs.Obs.create ~lineage:false ()) ())

(* -- the golden property ----------------------------------------------- *)

let arb_faulty_workload =
  QCheck.make
    QCheck.Gen.(
      let f01 lo hi = map (fun x -> float_of_int x /. 100.0) (int_range lo hi) in
      pair
        (quad (int_range 1 10000) (int_range 0 12) (int_range 0 2) (int_range 0 2))
        (quad (f01 0 30) (f01 0 30) (f01 0 30) (int_range 0 1000)))
    ~print:(fun ((seed, dus, scs, strat), (loss, dup, reorder, net_seed)) ->
      Fmt.str
        "seed=%d dus=%d scs=%d strategy=%d loss=%.2f dup=%.2f reorder=%.2f \
         net_seed=%d"
        seed dus scs strat loss dup reorder net_seed)

(* A fair-lossy channel (every message is eventually delivered; loss,
   duplication and reordering rates strictly below 1) must not change what
   the view converges to: the final extent equals the reliable run's
   extent, and strong consistency still holds. *)
let prop_faulty_converges_like_reliable =
  QCheck.Test.make
    ~name:
      "lossy/dup/reordering-but-fair channel converges to the reliable \
       extent"
    ~count:300 arb_faulty_workload
    (fun ((seed, n_dus, n_scs, strat), (loss, dup, reorder, net_seed)) ->
      let strategy =
        match strat with
        | 0 -> Dyno_core.Strategy.Pessimistic
        | 1 -> Dyno_core.Strategy.Optimistic
        | _ -> Dyno_core.Strategy.Merge_all
      in
      let faults =
        {
          Channel.reliable with
          loss;
          dup;
          reorder;
          reorder_delay = 0.5;
          retransmit = 0.05;
        }
      in
      let run ?faults ?net_seed () =
        let t = scenario ?faults ?net_seed ~seed ~n_dus ~n_scs () in
        let stats =
          Dyno_workload.Scenario.run t
            ~config:(Dyno_core.Run_config.of_strategy strategy)
        in
        (t, stats)
      in
      let tr, _ = run () in
      let tf, stats_f = run ~faults ~net_seed () in
      let same_extent =
        Relation.equal
          (Dyno_view.Mat_view.extent tr.Dyno_workload.Scenario.mv)
          (Dyno_view.Mat_view.extent tf.Dyno_workload.Scenario.mv)
      in
      let convergent =
        match Dyno_workload.Scenario.check_convergent tf with
        | Ok b -> b
        | Error _ -> false
      in
      let strong =
        Dyno_core.Consistency.ok (Dyno_workload.Scenario.check_strong tf)
      in
      let no_undefined = not stats_f.Dyno_core.Stats.view_undefined in
      same_extent && convergent && strong && no_undefined)

let to_alcotest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "net"
    [
      ( "channel",
        [
          Alcotest.test_case "reliable pass-through" `Quick
            test_reliable_passthrough;
          Alcotest.test_case "loss = retransmission delay" `Quick
            test_loss_is_retransmission_delay;
          Alcotest.test_case "duplication" `Quick test_duplication;
          Alcotest.test_case "outage parking" `Quick test_outage_parks_messages;
          Alcotest.test_case "flush is seq-ordered" `Quick
            test_flush_source_orders_by_seq;
        ] );
      ("retry", [ Alcotest.test_case "backoff math" `Quick test_backoff_math ]);
      ( "sequencer",
        [
          Alcotest.test_case "exactly-once admission" `Quick
            test_sequencer_exactly_once;
        ] );
      ( "identity",
        [
          Alcotest.test_case "zero faults change nothing" `Quick
            test_zero_fault_identity;
        ] );
      ( "convergence",
        List.map to_alcotest [ prop_faulty_converges_like_reliable ] );
    ]
