(* Property tests for dependency-parallel maintenance: running the
   scheduler with [parallel > 1] must be observationally equivalent to the
   serial scheduler.  Antichain members carry exclusion sets fixed at
   dispatch and commit serially at the barrier in queue order, so the only
   thing parallelism may change is the simulated clock — never the view.

   The property is checked under fault injection: loss, duplication and
   reordering on the probe channel exercise retries, aborts and
   compensations inside parallel rounds. *)

open Dyno_relational
open Dyno_net

let scenario ?faults ?net_seed ~seed ~n_dus ~n_scs () =
  let timeline =
    Dyno_workload.Generator.mixed ~rows:10 ~seed ~n_dus ~du_interval:0.2
      ~sc_start:0.1 ~sc_interval:1.5
      ~sc_kinds:(Dyno_workload.Generator.drop_then_renames n_scs)
      ()
  in
  let c =
    Dyno_workload.Scenario.Config.(
      default |> with_rows 10
      |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
      |> with_snapshots true)
  in
  let c =
    match faults with
    | Some f -> Dyno_workload.Scenario.Config.with_faults f c
    | None -> c
  in
  let c =
    match net_seed with
    | Some n -> Dyno_workload.Scenario.Config.with_net_seed n c
    | None -> c
  in
  Dyno_workload.Scenario.make c ~timeline

(* Per-source sets of update messages integrated into the view: commit-log
   [maintained] ids resolved through the scenario's id -> (source, version)
   index, deduplicated and sorted.  The serial and parallel runs may order
   commits differently on the clock, but must apply the same updates of
   every source. *)
let applied_per_source (t : Dyno_workload.Scenario.t) =
  let index = Dyno_workload.Scenario.msg_index t in
  let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : Dyno_view.Mat_view.commit) ->
      List.iter
        (fun id ->
          match List.assoc_opt id index with
          | None -> ()
          | Some (src, version) -> (
              match Hashtbl.find_opt tbl src with
              | Some l -> l := version :: !l
              | None -> Hashtbl.add tbl src (ref [ version ])))
        c.maintained)
    (Dyno_view.Mat_view.commits t.mv);
  Hashtbl.fold
    (fun src l acc -> (src, List.sort_uniq Int.compare !l) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let arb_parallel_workload =
  QCheck.make
    QCheck.Gen.(
      let f01 lo hi = map (fun x -> float_of_int x /. 100.0) (int_range lo hi) in
      pair
        (quad (int_range 1 10000) (int_range 1 12) (int_range 0 2) (int_range 0 2))
        (quad (f01 0 25) (f01 0 25) (pair (f01 0 25) (int_range 2 6))
           (int_range 0 1000)))
    ~print:(fun ((seed, dus, scs, strat), (loss, dup, (reorder, par), net_seed)) ->
      Fmt.str
        "seed=%d dus=%d scs=%d strategy=%d loss=%.2f dup=%.2f reorder=%.2f \
         parallel=%d net_seed=%d"
        seed dus scs strat loss dup reorder par net_seed)

(* The golden property of the parallel engine: for every workload, fault
   mix and strategy, [parallel = k] reaches the same final extent, the
   same strong-consistency verdict and the same per-source applied-update
   sets as the serial scheduler. *)
let prop_parallel_equals_serial =
  QCheck.Test.make
    ~name:"parallel maintenance is observationally serial (faults included)"
    ~count:300 arb_parallel_workload
    (fun ((seed, n_dus, n_scs, strat), (loss, dup, (reorder, par), net_seed)) ->
      let strategy =
        match strat with
        | 0 -> Dyno_core.Strategy.Pessimistic
        | 1 -> Dyno_core.Strategy.Optimistic
        | _ -> Dyno_core.Strategy.Merge_all
      in
      let faults =
        {
          Channel.reliable with
          loss;
          dup;
          reorder;
          reorder_delay = 0.5;
          retransmit = 0.05;
        }
      in
      let run ~parallel =
        let t = scenario ~faults ~net_seed ~seed ~n_dus ~n_scs () in
        let stats =
          Dyno_workload.Scenario.run t
            ~config:
              Dyno_core.Run_config.(
                of_strategy strategy |> with_parallel parallel)
        in
        (t, stats)
      in
      let ts, stats_s = run ~parallel:1 in
      let tp, stats_p = run ~parallel:par in
      let same_extent =
        Relation.equal
          (Dyno_view.Mat_view.extent ts.Dyno_workload.Scenario.mv)
          (Dyno_view.Mat_view.extent tp.Dyno_workload.Scenario.mv)
      in
      let strong_s =
        Dyno_core.Consistency.ok (Dyno_workload.Scenario.check_strong ts)
      in
      let strong_p =
        Dyno_core.Consistency.ok (Dyno_workload.Scenario.check_strong tp)
      in
      let convergent =
        match Dyno_workload.Scenario.check_convergent tp with
        | Ok b -> b
        | Error _ -> false
      in
      let same_applied =
        applied_per_source ts = applied_per_source tp
      in
      let no_undefined =
        stats_s.Dyno_core.Stats.view_undefined
        = stats_p.Dyno_core.Stats.view_undefined
      in
      same_extent && convergent
      && Bool.equal strong_s strong_p
      && same_applied && no_undefined)

let to_alcotest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        List.map to_alcotest [ prop_parallel_equals_serial ] );
    ]
