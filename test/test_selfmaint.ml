(* Self-maintenance tier: auxiliary key/FK projections answer fully
   covered maintenance sweeps locally, skipping probe round trips.  The
   tier is an optimization, never a semantic change, so the golden
   property is observational equivalence: for every workload, fault mix,
   strategy and shard count, [--self-maint] reaches the same final
   extent, the same convergence and strong-consistency verdicts and the
   same per-source applied sets as the probing baseline. *)

open Dyno_relational
open Dyno_net
open Dyno_workload

let scenario ?faults ?net_seed ?(shards = 1) ~seed ~n_dus ~n_scs () =
  let timeline =
    Generator.mixed ~rows:10 ~seed ~n_dus ~du_interval:0.2 ~sc_start:0.1
      ~sc_interval:1.5
      ~sc_kinds:(Generator.drop_then_renames n_scs)
      ()
  in
  let c =
    Scenario.Config.(
      default |> with_rows 10
      |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
      |> with_snapshots true |> with_shards shards)
  in
  let c =
    match faults with Some f -> Scenario.Config.with_faults f c | None -> c
  in
  let c =
    match net_seed with
    | Some n -> Scenario.Config.with_net_seed n c
    | None -> c
  in
  Scenario.make c ~timeline

(* -- derivation -------------------------------------------------------- *)

(* One projection per alias of the view query, each with the alias's
   needed probe attributes (join keys + selected columns). *)
let test_derive () =
  let t = scenario ~seed:1 ~n_dus:0 ~n_scs:0 () in
  let defs = Dyno_selfmaint.Aux_plan.derive t.Scenario.mv in
  let q = Dyno_view.View_def.peek (Dyno_view.Mat_view.def t.Scenario.mv) in
  Alcotest.(check int)
    "one projection per alias"
    (List.length (Query.from q))
    (List.length defs);
  List.iter
    (fun (d : Dyno_selfmaint.Aux_plan.aux_def) ->
      Alcotest.(check bool)
        (Fmt.str "%s has attributes" d.alias)
        true (d.attrs <> []);
      let src =
        Dyno_view.Query_engine.source_relation t.Scenario.engine
          ~source:d.source ~rel:d.rel
      in
      match src with
      | None -> Alcotest.failf "%s: source relation %s missing" d.alias d.rel
      | Some r ->
          List.iter
            (fun a ->
              Alcotest.(check bool)
                (Fmt.str "%s.%s exists at the source" d.alias a)
                true
                (Schema.mem (Relation.schema r) a))
            d.attrs)
    defs;
  let aliases = List.map (fun (d : Dyno_selfmaint.Aux_plan.aux_def) -> d.alias) defs in
  Alcotest.(check int)
    "aliases distinct"
    (List.length aliases)
    (List.length (List.sort_uniq String.compare aliases))

(* -- the store --------------------------------------------------------- *)

let test_store_refresh_and_invalidate () =
  let t = scenario ~seed:2 ~n_dus:0 ~n_scs:0 () in
  let w = t.Scenario.engine in
  let store = Dyno_core.Scheduler.aux_store w t.Scenario.mv in
  Alcotest.(check (float 1e-9))
    "full coverage after seeding" 1.0
    (Dyno_selfmaint.Aux_store.coverage store);
  (* Seeded projections = the projection of the source relation at the
     delivered frontier (nothing delivered yet = initial load). *)
  let defs = Dyno_selfmaint.Aux_plan.derive t.Scenario.mv in
  List.iter
    (fun (d : Dyno_selfmaint.Aux_plan.aux_def) ->
      match Dyno_selfmaint.Aux_store.aux store d.alias with
      | None -> Alcotest.failf "%s: no auxiliary data" d.alias
      | Some r ->
          let src =
            Option.get
              (Dyno_view.Query_engine.source_relation w ~source:d.source
                 ~rel:d.rel)
          in
          Alcotest.(check bool)
            (Fmt.str "%s seeded = projected source" d.alias)
            true
            (Relation.equal r (Relation.project src d.attrs)))
    defs;
  (* A delivered DU refreshes the matching projection incrementally. *)
  let d1 =
    List.find
      (fun (d : Dyno_selfmaint.Aux_plan.aux_def) -> String.equal d.rel "R1")
      defs
  in
  let before =
    Relation.mass (Option.get (Dyno_selfmaint.Aux_store.aux store d1.alias))
  in
  let u =
    Update.insert
      ~source:(Paper_schema.source_of_rel 1)
      ~rel:(Paper_schema.rel_name 1)
      (Paper_schema.schema_of_rel 1)
      (Paper_schema.tuple_for ~salt:77 1 0)
  in
  Dyno_selfmaint.Aux_store.on_message store
    (Dyno_view.Update_msg.make ~id:990 ~commit_time:0.5 ~source_version:11
       (Dyno_view.Update_msg.Du u));
  let after =
    Relation.mass (Option.get (Dyno_selfmaint.Aux_store.aux store d1.alias))
  in
  Alcotest.(check int) "insert refreshed the projection" (before + 1) after;
  (* A schema change invalidates every projection of its source. *)
  Dyno_selfmaint.Aux_store.on_message store
    (Dyno_view.Update_msg.make ~id:991 ~commit_time:0.6 ~source_version:12
       (Dyno_view.Update_msg.Sc
          (Schema_change.Drop_attribute
             { source = "DS1"; rel = "R2"; attr = "B2" })));
  Alcotest.(check bool)
    "invalidations counted" true
    (Dyno_selfmaint.Aux_store.invalidations store > 0);
  Alcotest.(check bool)
    "coverage dropped" true
    (Dyno_selfmaint.Aux_store.coverage store < 1.0);
  List.iter
    (fun (d : Dyno_selfmaint.Aux_plan.aux_def) ->
      if String.equal d.source "DS1" then
        Alcotest.(check bool)
          (Fmt.str "%s invalid after DS1 schema change" d.alias)
          true
          (Dyno_selfmaint.Aux_store.aux store d.alias = None))
    defs

(* -- the local path actually fires ------------------------------------- *)

let test_local_fires () =
  let run ~self_maint =
    let t = scenario ~seed:3 ~n_dus:20 ~n_scs:0 () in
    let stats =
      Scenario.run t
        ~config:
          Dyno_core.Run_config.(
            of_strategy Dyno_core.Strategy.Pessimistic
            |> with_self_maint self_maint)
    in
    (t, stats)
  in
  let tb, _ = run ~self_maint:false in
  let ts, stats = run ~self_maint:true in
  Alcotest.(check bool)
    "sweeps answered locally" true
    (stats.Dyno_core.Stats.probes_avoided > 0);
  Alcotest.(check int)
    "no probe was needed (full coverage, no SCs)" 0
    stats.Dyno_core.Stats.probes;
  Alcotest.(check bool)
    "wire bytes saved" true
    (stats.Dyno_core.Stats.bytes_saved > 0);
  Alcotest.(check bool)
    "extent identical to baseline" true
    (Relation.equal
       (Dyno_view.Mat_view.extent tb.Scenario.mv)
       (Dyno_view.Mat_view.extent ts.Scenario.mv));
  match Scenario.check_convergent ts with
  | Ok b -> Alcotest.(check bool) "convergent" true b
  | Error e -> Alcotest.failf "not checkable: %s" e

(* -- the golden property ----------------------------------------------- *)

(* Per-source sets of integrated update versions (see test_shard.ml). *)
let applied_per_source (t : Scenario.t) =
  let index = Scenario.msg_index t in
  let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : Dyno_view.Mat_view.commit) ->
      List.iter
        (fun id ->
          match List.assoc_opt id index with
          | None -> ()
          | Some (src, version) -> (
              match Hashtbl.find_opt tbl src with
              | Some l -> l := version :: !l
              | None -> Hashtbl.add tbl src (ref [ version ])))
        c.maintained)
    (Dyno_view.Mat_view.commits t.mv);
  Hashtbl.fold
    (fun src l acc -> (src, List.sort_uniq Int.compare !l) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let arb_selfmaint_workload =
  QCheck.make
    QCheck.Gen.(
      let f01 lo hi = map (fun x -> float_of_int x /. 100.0) (int_range lo hi) in
      pair
        (quad (int_range 1 10000) (int_range 1 12) (int_range 0 2)
           (int_range 0 2))
        (quad (f01 0 25) (f01 0 25)
           (pair (f01 0 25) (int_range 0 2))
           (int_range 0 1000)))
    ~print:
      (fun ((seed, dus, scs, strat), (loss, dup, (reorder, sh), net_seed)) ->
      Fmt.str
        "seed=%d dus=%d scs=%d strategy=%d loss=%.2f dup=%.2f reorder=%.2f \
         shards=%d net_seed=%d"
        seed dus scs strat loss dup reorder
        (match sh with 0 -> 1 | 1 -> 2 | _ -> 4)
        net_seed)

let prop_selfmaint_equals_baseline =
  QCheck.Test.make
    ~name:
      "self-maintenance is observationally the probing baseline (faults, \
       SCs, shards included)"
    ~count:300 arb_selfmaint_workload
    (fun ((seed, n_dus, n_scs, strat), (loss, dup, (reorder, sh), net_seed))
       ->
      let strategy =
        match strat with
        | 0 -> Dyno_core.Strategy.Pessimistic
        | 1 -> Dyno_core.Strategy.Optimistic
        | _ -> Dyno_core.Strategy.Merge_all
      in
      let shards = match sh with 0 -> 1 | 1 -> 2 | _ -> 4 in
      let faults =
        {
          Channel.reliable with
          loss;
          dup;
          reorder;
          reorder_delay = 0.5;
          retransmit = 0.05;
        }
      in
      let run ~self_maint =
        let t = scenario ~faults ~net_seed ~shards ~seed ~n_dus ~n_scs () in
        let stats =
          Scenario.run t
            ~config:
              Dyno_core.Run_config.(
                of_strategy strategy |> with_self_maint self_maint)
        in
        (t, stats)
      in
      let tb, stats_b = run ~self_maint:false in
      let ts, stats_s = run ~self_maint:true in
      let same_extent =
        Relation.equal
          (Dyno_view.Mat_view.extent tb.Scenario.mv)
          (Dyno_view.Mat_view.extent ts.Scenario.mv)
      in
      let convergent =
        match Scenario.check_convergent ts with
        | Ok b -> b
        | Error _ -> false
      in
      let same_strong =
        Bool.equal
          (Dyno_core.Consistency.ok (Scenario.check_strong tb))
          (Dyno_core.Consistency.ok (Scenario.check_strong ts))
      in
      let same_applied = applied_per_source tb = applied_per_source ts in
      let no_undefined =
        stats_b.Dyno_core.Stats.view_undefined
        = stats_s.Dyno_core.Stats.view_undefined
      in
      same_extent && convergent && same_strong && same_applied && no_undefined)

let to_alcotest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "selfmaint"
    [
      ("derive", [ Alcotest.test_case "aux plan" `Quick test_derive ]);
      ( "store",
        [
          Alcotest.test_case "seed / refresh / invalidate" `Quick
            test_store_refresh_and_invalidate;
        ] );
      ( "local path",
        [ Alcotest.test_case "covered sweeps skip probes" `Quick
            test_local_fires ] );
      ( "equivalence",
        List.map to_alcotest [ prop_selfmaint_equals_baseline ] );
    ]
