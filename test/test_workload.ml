(* Unit tests for the workload layer: the paper's experimental schema, the
   generator's validity guarantees (every generated event applies cleanly
   at its source even across schema evolution), and scenario assembly. *)

open Dyno_relational
open Dyno_workload

let test_paper_schema_shape () =
  Alcotest.(check int) "six relations" 6 Paper_schema.n_relations;
  Alcotest.(check (list string)) "three sources" [ "DS1"; "DS2"; "DS3" ]
    Paper_schema.sources;
  Alcotest.(check string) "R1,R2 at DS1" "DS1" (Paper_schema.source_of_rel 2);
  Alcotest.(check string) "R3 at DS2" "DS2" (Paper_schema.source_of_rel 3);
  Alcotest.(check string) "R6 at DS3" "DS3" (Paper_schema.source_of_rel 6);
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Fmt.str "R%d has 4 attributes" i)
        4
        (Schema.arity (Paper_schema.schema_of_rel i)))
    [ 1; 2; 3; 4; 5; 6 ];
  let q = Paper_schema.view_query () in
  Alcotest.(check int) "view selects all 24 attributes" 24
    (List.length (Query.select q));
  Alcotest.(check int) "chain of 5 join conditions" 5 (List.length (Query.where q))

let test_initial_view_is_one_to_one () =
  let rows = 20 in
  let registry = Paper_schema.build_sources ~rows in
  let env (tr : Query.table_ref) =
    Dyno_source.Data_source.relation
      (Dyno_source.Registry.find registry tr.source)
      tr.rel
  in
  let extent = Eval.run ~catalog:env (Paper_schema.view_query ()) in
  Alcotest.(check int) "one view row per key" rows (Relation.cardinality extent)

(* The generator's central guarantee: every event on the timeline commits
   cleanly, in order, against fresh sources — across renames, drops and
   adds. *)
let test_generated_timeline_always_applies () =
  List.iter
    (fun seed ->
      let rows = 15 in
      let timeline =
        Generator.mixed ~rows ~seed ~n_dus:60 ~du_interval:0.5 ~sc_start:1.0
          ~sc_interval:3.0
          ~sc_kinds:
            [
              Generator.Drop_attr; Generator.Rename_rel; Generator.Rename_attr;
              Generator.Add_attr; Generator.Rename_rel; Generator.Drop_attr;
              Generator.Rename_rel; Generator.Rename_attr;
            ]
          ()
      in
      let registry = Paper_schema.build_sources ~rows in
      List.iter
        (fun (e : Dyno_sim.Timeline.entry) ->
          match Dyno_source.Registry.commit registry ~time:e.time e.event with
          | _ -> ()
          | exception exn ->
              Alcotest.failf "seed %d: event %a failed: %s" seed
                Dyno_sim.Timeline.pp_event e.event (Printexc.to_string exn))
        (Dyno_sim.Timeline.pop_until timeline ~time:infinity))
    [ 1; 2; 3; 4; 5 ]

let test_generator_counts () =
  let timeline =
    Generator.mixed ~rows:10 ~seed:7 ~n_dus:25 ~du_interval:1.0 ~sc_interval:5.0
      ~sc_kinds:(Generator.drop_then_renames 4)
      ()
  in
  let events = Dyno_sim.Timeline.peek_all timeline in
  let dus, scs =
    List.partition
      (fun (e : Dyno_sim.Timeline.entry) ->
        match e.event with Dyno_sim.Timeline.Du _ -> true | _ -> false)
      events
  in
  Alcotest.(check int) "25 DUs" 25 (List.length dus);
  Alcotest.(check int) "4 SCs" 4 (List.length scs);
  (* drop_then_renames shape *)
  (match List.map (fun (e : Dyno_sim.Timeline.entry) -> e.event) scs with
  | Dyno_sim.Timeline.Sc (Schema_change.Drop_attribute _) :: rest ->
      Alcotest.(check bool) "renames after" true
        (List.for_all
           (function
             | Dyno_sim.Timeline.Sc (Schema_change.Rename_relation _) -> true
             | _ -> false)
           rest)
  | _ -> Alcotest.fail "expected drop first");
  (* SC spacing honoured *)
  match scs with
  | a :: b :: _ ->
      Alcotest.(check (float 1e-9)) "interval" 5.0 (b.Dyno_sim.Timeline.time -. a.Dyno_sim.Timeline.time)
  | _ -> Alcotest.fail "two SCs expected"

let test_generator_determinism () =
  let mk () =
    Generator.mixed ~rows:10 ~seed:123 ~n_dus:15 ~du_interval:0.5
      ~sc_interval:2.0 ~sc_kinds:(Generator.drop_then_renames 3) ()
  in
  let dump t =
    List.map
      (fun (e : Dyno_sim.Timeline.entry) ->
        Fmt.str "%.3f %a" e.time Dyno_sim.Timeline.pp_event e.event)
      (Dyno_sim.Timeline.peek_all t)
  in
  Alcotest.(check (list string)) "same seed, same timeline" (dump (mk ())) (dump (mk ()))

let test_scenario_smoke () =
  let timeline =
    Generator.mixed ~rows:10 ~seed:5 ~n_dus:8 ~du_interval:0.0 ~sc_interval:0.0
      ~sc_kinds:[] ()
  in
  let t =
    Scenario.make
      Scenario.Config.(
        default |> with_rows 10 |> with_cost Dyno_sim.Cost_model.free)
      ~timeline
  in
  Alcotest.(check int) "view materialized" 10
    (Relation.cardinality (Dyno_view.Mat_view.extent t.Scenario.mv));
  let stats =
    Scenario.run t
      ~config:(Dyno_core.Run_config.of_strategy Dyno_core.Strategy.Pessimistic)
  in
  Alcotest.(check int) "all maintained" 8
    (stats.Dyno_core.Stats.du_maintained + stats.Dyno_core.Stats.irrelevant);
  Alcotest.(check bool) "extent equals oracle" true
    (Relation.equal (Scenario.recompute_extent t)
       (Dyno_view.Mat_view.extent t.Scenario.mv))

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "paper schema shape" `Quick test_paper_schema_shape;
          Alcotest.test_case "initial one-to-one view" `Quick test_initial_view_is_one_to_one;
          Alcotest.test_case "generated timelines always apply" `Quick
            test_generated_timeline_always_applies;
          Alcotest.test_case "generator counts & spacing" `Quick test_generator_counts;
          Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
          Alcotest.test_case "scenario smoke" `Quick test_scenario_smoke;
        ] );
    ]
