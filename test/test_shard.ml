(* Property tests for the sharded view manager: partitioning the sources
   across shards — each with its own queue, channel and exactly-once
   sequencer — must be observationally equivalent to the single serial
   view manager.  Shard-local DU rounds commit in global arrival order
   with exclusion sets fixed at dispatch, and schema changes serialize at
   the cross-shard barrier, so the only thing sharding may change is the
   simulated clock — never the view.

   Checked under fault injection (per-shard channels draw independent
   RNG streams, so loss/dup/reorder patterns differ between the serial
   and sharded runs — the equivalence must hold anyway: exactly-once
   sequencing makes the delivered per-source streams identical). *)

open Dyno_relational
open Dyno_net

let scenario ?faults ?net_seed ~shards ~seed ~n_dus ~n_scs () =
  let timeline =
    Dyno_workload.Generator.mixed ~rows:10 ~seed ~n_dus ~du_interval:0.2
      ~sc_start:0.1 ~sc_interval:1.5
      ~sc_kinds:(Dyno_workload.Generator.drop_then_renames n_scs)
      ()
  in
  let c =
    Dyno_workload.Scenario.Config.(
      default |> with_rows 10
      |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
      |> with_snapshots true |> with_shards shards)
  in
  let c =
    match faults with
    | Some f -> Dyno_workload.Scenario.Config.with_faults f c
    | None -> c
  in
  let c =
    match net_seed with
    | Some n -> Dyno_workload.Scenario.Config.with_net_seed n c
    | None -> c
  in
  Dyno_workload.Scenario.make c ~timeline

(* Per-source sets of update messages integrated into the view (see
   test_parallel.ml): commit-log ids resolved through the id ->
   (source, version) index.  Serial and sharded runs may interleave
   commits differently on the clock, but must apply the same updates of
   every source. *)
let applied_per_source (t : Dyno_workload.Scenario.t) =
  let index = Dyno_workload.Scenario.msg_index t in
  let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : Dyno_view.Mat_view.commit) ->
      List.iter
        (fun id ->
          match List.assoc_opt id index with
          | None -> ()
          | Some (src, version) -> (
              match Hashtbl.find_opt tbl src with
              | Some l -> l := version :: !l
              | None -> Hashtbl.add tbl src (ref [ version ])))
        c.maintained)
    (Dyno_view.Mat_view.commits t.mv);
  Hashtbl.fold
    (fun src l acc -> (src, List.sort_uniq Int.compare !l) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let arb_shard_workload =
  QCheck.make
    QCheck.Gen.(
      let f01 lo hi = map (fun x -> float_of_int x /. 100.0) (int_range lo hi) in
      pair
        (quad (int_range 1 10000) (int_range 1 12) (int_range 0 2)
           (int_range 0 2))
        (quad (f01 0 25) (f01 0 25)
           (pair (f01 0 25) (int_range 0 1))
           (int_range 0 1000)))
    ~print:
      (fun ((seed, dus, scs, strat), (loss, dup, (reorder, sh), net_seed)) ->
      Fmt.str
        "seed=%d dus=%d scs=%d strategy=%d loss=%.2f dup=%.2f reorder=%.2f \
         shards=%d net_seed=%d"
        seed dus scs strat loss dup reorder
        (if sh = 0 then 2 else 4)
        net_seed)

(* The golden property of the sharded engine: for every workload, fault
   mix and strategy, [shards = k] reaches the same final extent, the
   same strong-consistency verdict and the same per-source applied
   sets as the single serial view manager. *)
let prop_sharded_equals_serial =
  QCheck.Test.make
    ~name:"sharded maintenance is observationally serial (faults included)"
    ~count:300 arb_shard_workload
    (fun ((seed, n_dus, n_scs, strat), (loss, dup, (reorder, sh), net_seed))
       ->
      let strategy =
        match strat with
        | 0 -> Dyno_core.Strategy.Pessimistic
        | 1 -> Dyno_core.Strategy.Optimistic
        | _ -> Dyno_core.Strategy.Merge_all
      in
      let shards = if sh = 0 then 2 else 4 in
      let faults =
        {
          Channel.reliable with
          loss;
          dup;
          reorder;
          reorder_delay = 0.5;
          retransmit = 0.05;
        }
      in
      let run ~shards =
        let t = scenario ~faults ~net_seed ~shards ~seed ~n_dus ~n_scs () in
        let stats =
          Dyno_workload.Scenario.run t
            ~config:(Dyno_core.Run_config.of_strategy strategy)
        in
        (t, stats)
      in
      let ts, stats_s = run ~shards:1 in
      let tk, stats_k = run ~shards in
      let same_extent =
        Relation.equal
          (Dyno_view.Mat_view.extent ts.Dyno_workload.Scenario.mv)
          (Dyno_view.Mat_view.extent tk.Dyno_workload.Scenario.mv)
      in
      let strong_s =
        Dyno_core.Consistency.ok (Dyno_workload.Scenario.check_strong ts)
      in
      let strong_k =
        Dyno_core.Consistency.ok (Dyno_workload.Scenario.check_strong tk)
      in
      let convergent =
        match Dyno_workload.Scenario.check_convergent tk with
        | Ok b -> b
        | Error _ -> false
      in
      let same_applied = applied_per_source ts = applied_per_source tk in
      let no_undefined =
        stats_s.Dyno_core.Stats.view_undefined
        = stats_k.Dyno_core.Stats.view_undefined
      in
      same_extent && convergent
      && Bool.equal strong_s strong_k
      && same_applied && no_undefined)

(* Shards combine with per-shard parallelism: every shard dispatches an
   antichain of its own queue per round.  Same observational claim. *)
let prop_sharded_parallel_equals_serial =
  QCheck.Test.make
    ~name:"shards x parallel is observationally serial" ~count:60
    arb_shard_workload
    (fun ((seed, n_dus, n_scs, strat), (loss, dup, (reorder, sh), net_seed))
       ->
      let strategy =
        match strat with
        | 0 -> Dyno_core.Strategy.Pessimistic
        | 1 -> Dyno_core.Strategy.Optimistic
        | _ -> Dyno_core.Strategy.Merge_all
      in
      let shards = if sh = 0 then 2 else 4 in
      let faults =
        {
          Channel.reliable with
          loss;
          dup;
          reorder;
          reorder_delay = 0.5;
          retransmit = 0.05;
        }
      in
      let run ~shards ~parallel =
        let t = scenario ~faults ~net_seed ~shards ~seed ~n_dus ~n_scs () in
        ignore
          (Dyno_workload.Scenario.run t
             ~config:
               Dyno_core.Run_config.(
                 of_strategy strategy |> with_parallel parallel)
            : Dyno_core.Stats.t);
        t
      in
      let ts = run ~shards:1 ~parallel:1 in
      let tk = run ~shards ~parallel:3 in
      Relation.equal
        (Dyno_view.Mat_view.extent ts.Dyno_workload.Scenario.mv)
        (Dyno_view.Mat_view.extent tk.Dyno_workload.Scenario.mv)
      && applied_per_source ts = applied_per_source tk
      && Bool.equal
           (Dyno_core.Consistency.ok (Dyno_workload.Scenario.check_strong ts))
           (Dyno_core.Consistency.ok (Dyno_workload.Scenario.check_strong tk)))

(* A 1-shard plan is not merely equivalent — Shard_scheduler.run must
   delegate to Scheduler.run and be bit-identical, trace entries
   included, on a zero-fault world. *)
let test_one_shard_identity () =
  let mk () =
    let timeline =
      Dyno_workload.Generator.mixed ~rows:10 ~seed:11 ~n_dus:12
        ~du_interval:0.2 ~sc_start:0.1 ~sc_interval:1.5
        ~sc_kinds:(Dyno_workload.Generator.drop_then_renames 2)
        ()
    in
    Dyno_workload.Scenario.make
      Dyno_workload.Scenario.Config.(
        default |> with_rows 10
        |> with_cost { Dyno_sim.Cost_model.default with row_scale = 1.0 }
        |> with_snapshots true |> with_trace true)
      ~timeline
  in
  let config =
    Dyno_core.Run_config.of_strategy Dyno_core.Strategy.Pessimistic
  in
  (* Through the sharded front door (1-shard plan)... *)
  let t1 = mk () in
  let s1 = Dyno_workload.Scenario.run t1 ~config in
  (* ...and through the serial scheduler directly. *)
  let t2 = mk () in
  let s2 =
    Dyno_core.Scheduler.run ~config t2.Dyno_workload.Scenario.engine
      t2.Dyno_workload.Scenario.mv t2.Dyno_workload.Scenario.mk
  in
  Alcotest.(check string)
    "stats byte-identical"
    (Fmt.str "%a" Dyno_core.Stats.pp s1)
    (Fmt.str "%a" Dyno_core.Stats.pp s2);
  Alcotest.(check bool)
    "extent identical" true
    (Relation.equal
       (Dyno_view.Mat_view.extent t1.Dyno_workload.Scenario.mv)
       (Dyno_view.Mat_view.extent t2.Dyno_workload.Scenario.mv));
  Alcotest.(check string)
    "trace byte-identical"
    (Fmt.str "%a" Dyno_sim.Trace.pp t1.Dyno_workload.Scenario.trace)
    (Fmt.str "%a" Dyno_sim.Trace.pp t2.Dyno_workload.Scenario.trace)

(* The partition plan itself. *)
let test_plan () =
  let p =
    Dyno_core.Shard.plan ~shards:3
      ~partition:[ ("DS3", 0) ]
      [ "DS1"; "DS2"; "DS3" ]
  in
  Alcotest.(check int) "count" 3 (Dyno_core.Shard.count p);
  Alcotest.(check int) "override wins" 0 (Dyno_core.Shard.owner p "DS3");
  Alcotest.(check int) "round-robin 0" 0 (Dyno_core.Shard.owner p "DS1");
  Alcotest.(check int) "round-robin 1" 1 (Dyno_core.Shard.owner p "DS2");
  Alcotest.(check bool)
    "unknown source rejected" true
    (match Dyno_core.Shard.owner p "DS9" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "bad shard count rejected" true
    (match Dyno_core.Shard.plan ~shards:0 [ "DS1" ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "out-of-range override rejected" true
    (match Dyno_core.Shard.plan ~shards:2 ~partition:[ ("DS1", 5) ] [ "DS1" ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Validation error paths of the plan constructor itself. *)
let test_plan_errors () =
  Alcotest.(check bool)
    "duplicate source rejected" true
    (match Dyno_core.Shard.plan ~shards:2 [ "DS1"; "DS2"; "DS1" ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "partition naming unknown source rejected" true
    (match
       Dyno_core.Shard.plan ~shards:2
         ~partition:[ ("DS9", 0) ]
         [ "DS1"; "DS2" ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "empty source list rejected" true
    (match Dyno_core.Shard.plan ~shards:2 [] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* Negative shard override is out of range too. *)
  Alcotest.(check bool)
    "negative override rejected" true
    (match
       Dyno_core.Shard.plan ~shards:2 ~partition:[ ("DS1", -1) ] [ "DS1" ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* More shards than sources is legal — some shards just own nothing. *)
  let p = Dyno_core.Shard.plan ~shards:4 [ "DS1"; "DS2" ] in
  Alcotest.(check int) "oversized plan keeps its count" 4
    (Dyno_core.Shard.count p);
  Alcotest.(check (list string))
    "shard 3 legally empty" []
    (Dyno_core.Shard.sources_of p 3)

let to_alcotest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "shard"
    [
      ( "plan",
        [
          Alcotest.test_case "partition plan" `Quick test_plan;
          Alcotest.test_case "validation errors" `Quick test_plan_errors;
        ] );
      ( "identity",
        [ Alcotest.test_case "1 shard = serial, bit for bit" `Quick
            test_one_shard_identity ] );
      ( "equivalence",
        List.map to_alcotest
          [ prop_sharded_equals_serial; prop_sharded_parallel_equals_serial ]
      );
    ]
