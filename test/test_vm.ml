(* Unit tests for view maintenance (VM) with SWEEP compensation: delta
   correctness against recompute, anomaly handling, abort behaviour. *)

open Dyno_relational
open Dyno_view

let a_schema = Schema.of_list [ Attr.int "k"; Attr.string "x" ]
let b_schema = Schema.of_list [ Attr.int "k2"; Attr.string "y" ]
let c_schema = Schema.of_list [ Attr.int "k3"; Attr.int "z" ]

let view_q () =
  Query.make ~name:"V"
    ~select:[ Query.item "A.k"; Query.item "A.x"; Query.item "B.y"; Query.item "C.z" ]
    ~from:
      [
        Query.table ~alias:"A" "ds1" "A";
        Query.table ~alias:"B" "ds1" "B";
        Query.table ~alias:"C" "ds2" "C";
      ]
    ~where:[ Predicate.eq_attr "A.k" "B.k2"; Predicate.eq_attr "B.k2" "C.k3" ]

let schemas () = [ ("A", a_schema); ("B", b_schema); ("C", c_schema) ]

type world = {
  w : Query_engine.t;
  mv : Mat_view.t;
  timeline : Dyno_sim.Timeline.t;
  umq : Umq.t;
  registry : Dyno_source.Registry.t;
}

let make_world () =
  let ds1 = Dyno_source.Data_source.create "ds1" in
  Dyno_source.Data_source.add_relation ds1 "A" a_schema;
  Dyno_source.Data_source.add_relation ds1 "B" b_schema;
  Dyno_source.Data_source.load ds1 "A"
    [ [ Value.int 1; Value.string "a1" ]; [ Value.int 2; Value.string "a2" ] ];
  Dyno_source.Data_source.load ds1 "B"
    [ [ Value.int 1; Value.string "b1" ]; [ Value.int 2; Value.string "b2" ] ];
  let ds2 = Dyno_source.Data_source.create "ds2" in
  Dyno_source.Data_source.add_relation ds2 "C" c_schema;
  Dyno_source.Data_source.load ds2 "C"
    [ [ Value.int 1; Value.int 10 ]; [ Value.int 2; Value.int 20 ] ];
  let registry = Dyno_source.Registry.create () in
  Dyno_source.Registry.register registry ds1;
  Dyno_source.Registry.register registry ds2;
  let umq = Umq.create () in
  let timeline = Dyno_sim.Timeline.create () in
  let w =
    Query_engine.create
      ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
      ~registry ~timeline ~umq ()
  in
  let vd = View_def.create ~schemas:(schemas ()) (view_q ()) in
  let mv = Mat_view.create vd (Relation.create Schema.empty) in
  let env (tr : Query.table_ref) =
    Dyno_source.Data_source.relation (Dyno_source.Registry.find registry tr.source) tr.rel
  in
  Mat_view.replace mv ~at:0.0 ~maintained:[] (Eval.run ~catalog:env (view_q ()));
  { w; mv; timeline; umq; registry }

let recompute wd =
  let env (tr : Query.table_ref) =
    Dyno_source.Data_source.relation
      (Dyno_source.Registry.find wd.registry tr.source)
      tr.rel
  in
  Eval.run ~catalog:env (View_def.peek (Mat_view.def wd.mv))

(* Commit a DU at its source immediately and hand the message to VM. *)
let commit_and_maintain ?compensate wd ~source ~rel delta =
  let u = Update.make ~source ~rel delta in
  let v =
    Dyno_source.Data_source.commit_du
      (Dyno_source.Registry.find wd.registry source)
      ~time:(Query_engine.now wd.w) u
  in
  let m =
    Umq.enqueue wd.umq ~commit_time:(Query_engine.now wd.w) ~source_version:v
      (Update_msg.Du u)
  in
  let out = Dyno_vm.Vm.maintain ?compensate wd.w wd.mv m u in
  Umq.remove_head wd.umq;
  out

let test_insert_matches_recompute () =
  let wd = make_world () in
  let delta = Relation.of_list b_schema [ [ Value.int 1; Value.string "b1bis" ] ] in
  (match commit_and_maintain wd ~source:"ds1" ~rel:"B" delta with
  | Dyno_vm.Vm.Refreshed { delta_tuples; stats } ->
      Alcotest.(check int) "one view tuple" 1 delta_tuples;
      Alcotest.(check int) "probes = n-1" 2 stats.Dyno_vm.Sweep.probes
  | _ -> Alcotest.fail "expected refresh");
  Alcotest.(check bool) "extent = recompute" true
    (Relation.equal (recompute wd) (Mat_view.extent wd.mv))

let test_delete_matches_recompute () =
  let wd = make_world () in
  let delta =
    Relation.of_counted a_schema [ ([ Value.int 2; Value.string "a2" ], -1) ]
  in
  (match commit_and_maintain wd ~source:"ds1" ~rel:"A" delta with
  | Dyno_vm.Vm.Refreshed { delta_tuples; _ } ->
      Alcotest.(check int) "one tuple removed" 1 delta_tuples
  | _ -> Alcotest.fail "expected refresh");
  Alcotest.(check bool) "extent = recompute" true
    (Relation.equal (recompute wd) (Mat_view.extent wd.mv));
  Alcotest.(check int) "card dropped" 1 (Relation.cardinality (Mat_view.extent wd.mv))

let test_irrelevant_update () =
  let wd = make_world () in
  let ds2 = Dyno_source.Registry.find wd.registry "ds2" in
  Dyno_source.Data_source.add_relation ds2 "Other" a_schema;
  let delta = Relation.of_list a_schema [ [ Value.int 9; Value.string "zz" ] ] in
  (match commit_and_maintain wd ~source:"ds2" ~rel:"Other" delta with
  | Dyno_vm.Vm.Irrelevant -> ()
  | _ -> Alcotest.fail "expected Irrelevant");
  Alcotest.(check int) "commit recorded anyway" 2 (Mat_view.commit_count wd.mv)

let test_compensation_prevents_duplication () =
  (* While maintaining a C insert, a matching B insert commits mid-probe.
     With compensation the final extent equals the serial recompute after
     both are maintained; without it the shared tuple is duplicated. *)
  let run ~compensate =
    let wd = make_world () in
    let c_delta = Relation.of_list c_schema [ [ Value.int 3; Value.int 30 ] ] in
    let a3 = Relation.of_list a_schema [ [ Value.int 3; Value.string "a3" ] ] in
    let b3 = Relation.of_list b_schema [ [ Value.int 3; Value.string "b3" ] ] in
    (* A(3) exists upfront so the join only awaits B(3) *)
    ignore
      (Dyno_source.Data_source.commit_du
         (Dyno_source.Registry.find wd.registry "ds1")
         ~time:0.0
         (Update.make ~source:"ds1" ~rel:"A" a3));
    (* schedule the concurrent B insert 10ms in: it lands inside the first
       probe's 30ms round trip *)
    Dyno_sim.Timeline.schedule wd.timeline ~time:0.01
      (Dyno_sim.Timeline.Du (Update.make ~source:"ds1" ~rel:"B" b3));
    (match commit_and_maintain ~compensate wd ~source:"ds2" ~rel:"C" c_delta with
    | Dyno_vm.Vm.Refreshed _ -> ()
    | Dyno_vm.Vm.Irrelevant -> Alcotest.fail "not irrelevant"
    | Dyno_vm.Vm.Aborted b ->
        Alcotest.failf "unexpected abort: %a" Dyno_source.Data_source.pp_broken b
    | Dyno_vm.Vm.Unreachable u ->
        Alcotest.failf "unexpected stall: %a" Dyno_net.Retry.pp_unreachable u);
    (* now maintain the pending B insert *)
    (match Umq.head wd.umq with
    | Some (Umq.Single m) -> (
        match Update_msg.payload m with
        | Update_msg.Du u ->
            (match Dyno_vm.Vm.maintain ~compensate wd.w wd.mv m u with
            | Dyno_vm.Vm.Refreshed _ -> ()
            | _ -> Alcotest.fail "B maintenance failed");
            Umq.remove_head wd.umq
        | _ -> Alcotest.fail "expected DU")
    | _ -> Alcotest.fail "pending B expected");
    let expected = recompute wd in
    let tup3 =
      Tuple.of_list [ Value.int 3; Value.string "a3"; Value.string "b3"; Value.int 30 ]
    in
    (Relation.count (Mat_view.extent wd.mv) tup3, Relation.equal expected (Mat_view.extent wd.mv))
  in
  let count_with, ok_with = run ~compensate:true in
  Alcotest.(check int) "compensated: exactly once" 1 count_with;
  Alcotest.(check bool) "compensated: equals recompute" true ok_with;
  let count_without, _ = run ~compensate:false in
  Alcotest.(check int) "uncompensated: duplicated" 2 count_without

let test_broken_probe_aborts () =
  let wd = make_world () in
  (* drop C.z (selected by the view) just after the maintenance starts *)
  Dyno_sim.Timeline.schedule wd.timeline ~time:0.001
    (Dyno_sim.Timeline.Sc
       (Schema_change.Drop_attribute { source = "ds2"; rel = "C"; attr = "z" }));
  let delta = Relation.of_list a_schema [ [ Value.int 1; Value.string "dup" ] ] in
  match commit_and_maintain wd ~source:"ds1" ~rel:"A" delta with
  | Dyno_vm.Vm.Aborted b ->
      Alcotest.(check string) "broken at ds2" "ds2" b.Dyno_source.Data_source.source;
      Alcotest.(check bool) "broken flag" true (Umq.broken_query_flag wd.umq)
  | _ -> Alcotest.fail "expected abort"

let test_schema_divergence_aborts () =
  let wd = make_world () in
  (* the source schema evolved but the view manager has not synced: the DU
     delta no longer matches the believed schema *)
  let ds1 = Dyno_source.Registry.find wd.registry "ds1" in
  ignore
    (Dyno_source.Data_source.commit_sc ds1 ~time:0.0
       (Schema_change.Drop_attribute { source = "ds1"; rel = "A"; attr = "x" }));
  let narrow = Schema.of_list [ Attr.int "k" ] in
  let u = Update.make ~source:"ds1" ~rel:"A" (Relation.of_list narrow [ [ Value.int 5 ] ]) in
  let v = Dyno_source.Data_source.commit_du ds1 ~time:0.0 u in
  let m = Umq.enqueue wd.umq ~commit_time:0.0 ~source_version:v (Update_msg.Du u) in
  match Dyno_vm.Vm.maintain wd.w wd.mv m u with
  | Dyno_vm.Vm.Aborted _ -> ()
  | _ -> Alcotest.fail "expected divergence abort"

let test_invalid_view_raises () =
  let wd = make_world () in
  View_def.invalidate (Mat_view.def wd.mv);
  let delta = Relation.of_list a_schema [ [ Value.int 1; Value.string "q" ] ] in
  let u = Update.make ~source:"ds1" ~rel:"A" delta in
  let m = Umq.enqueue wd.umq ~commit_time:0.0 ~source_version:1 (Update_msg.Du u) in
  Alcotest.(check bool) "raises Invalid_view" true
    (match Dyno_vm.Vm.maintain wd.w wd.mv m u with
    | _ -> false
    | exception Dyno_vm.Vm.Invalid_view _ -> true)

(* -- grouped (deferred) maintenance --------------------------------- *)

let enqueue_du wd ~source ~rel delta =
  let u = Update.make ~source ~rel delta in
  let v =
    Dyno_source.Data_source.commit_du
      (Dyno_source.Registry.find wd.registry source)
      ~time:(Query_engine.now wd.w) u
  in
  Umq.enqueue wd.umq ~commit_time:(Query_engine.now wd.w) ~source_version:v
    (Update_msg.Du u)

let test_group_matches_sequential () =
  let wd = make_world () in
  let msgs =
    [
      enqueue_du wd ~source:"ds1" ~rel:"A"
        (Relation.of_list a_schema [ [ Value.int 3; Value.string "a3" ] ]);
      enqueue_du wd ~source:"ds1" ~rel:"B"
        (Relation.of_list b_schema [ [ Value.int 3; Value.string "b3" ] ]);
      enqueue_du wd ~source:"ds2" ~rel:"C"
        (Relation.of_list c_schema [ [ Value.int 3; Value.int 30 ] ]);
      enqueue_du wd ~source:"ds1" ~rel:"A"
        (Relation.of_counted a_schema [ ([ Value.int 1; Value.string "a1" ], -1) ]);
    ]
  in
  (match Dyno_vm.Vm.maintain_group wd.w wd.mv msgs with
  | Dyno_vm.Vm.Refreshed _ -> ()
  | _ -> Alcotest.fail "group should refresh");
  List.iter (fun _ -> Umq.remove_head wd.umq) msgs;
  Alcotest.(check bool) "group result = recompute" true
    (Relation.equal (recompute wd) (Mat_view.extent wd.mv));
  (* one commit for the whole group, carrying every id *)
  (match List.rev (Mat_view.commits wd.mv) with
  | last :: _ ->
      Alcotest.(check (list int)) "all ids in one commit"
        (List.sort compare (List.map Update_msg.id msgs))
        (List.sort compare last.Mat_view.maintained)
  | [] -> Alcotest.fail "commit expected");
  Alcotest.(check int) "exactly two commits (init + group)" 2
    (Mat_view.commit_count wd.mv)

let test_group_abort_leaves_view_untouched () =
  let wd = make_world () in
  let before = Relation.copy (Mat_view.extent wd.mv) in
  let msgs =
    [
      enqueue_du wd ~source:"ds1" ~rel:"A"
        (Relation.of_list a_schema [ [ Value.int 4; Value.string "a4" ] ]);
    ]
  in
  (* an SC breaks the sweep mid-group *)
  Dyno_sim.Timeline.schedule wd.timeline ~time:(Query_engine.now wd.w +. 0.001)
    (Dyno_sim.Timeline.Sc
       (Schema_change.Drop_attribute { source = "ds2"; rel = "C"; attr = "z" }));
  (match Dyno_vm.Vm.maintain_group wd.w wd.mv msgs with
  | Dyno_vm.Vm.Aborted _ -> ()
  | _ -> Alcotest.fail "expected abort");
  Alcotest.(check bool) "extent unchanged on abort" true
    (Relation.equal before (Mat_view.extent wd.mv))

let test_group_rejects_sc () =
  let wd = make_world () in
  let m =
    Umq.enqueue wd.umq ~commit_time:0.0 ~source_version:1
      (Update_msg.Sc
         (Schema_change.Rename_relation
            { source = "ds1"; old_name = "A"; new_name = "A2" }))
  in
  Alcotest.(check bool) "SC in group rejected" true
    (match Dyno_vm.Vm.maintain_group wd.w wd.mv [ m ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_maint_query_shapes () =
  (* probe_query structure: selects needed attrs (prefixed) + partial
     columns, joins against the shipped partial *)
  let owner = Dyno_vm.Maint_query.owner_of_schemas (schemas ()) in
  let q = view_q () in
  let pivot = List.hd (Query.from q) in
  let partial = Dyno_vm.Maint_query.initial_partial q owner pivot
      (Relation.of_list a_schema [ [ Value.int 1; Value.string "v" ] ])
  in
  Alcotest.(check (list string)) "prefixed partial columns" [ "A__k"; "A__x" ]
    (Schema.names (Relation.schema partial));
  let b_ref = List.nth (Query.from q) 1 in
  let probe =
    Dyno_vm.Maint_query.probe_query q owner b_ref
      ~partial_schema:(Relation.schema partial) ~bound:[ "A" ]
  in
  Alcotest.(check int) "probe FROM has table + partial" 2
    (List.length (Query.from probe));
  Alcotest.(check bool) "join condition present" true (Query.where probe <> []);
  let out_schema = Dyno_vm.Maint_query.view_output_schema q (schemas ()) in
  Alcotest.(check (list string)) "output schema" [ "k"; "x"; "y"; "z" ]
    (Schema.names out_schema)

let test_sweep_order () =
  let q = view_q () in
  let order = Dyno_vm.Maint_query.sweep_order q "B" in
  Alcotest.(check (list string)) "left then right" [ "A"; "C" ]
    (List.map (fun (tr : Query.table_ref) -> tr.alias) order);
  let order2 = Dyno_vm.Maint_query.sweep_order q "C" in
  Alcotest.(check (list string)) "walk left from the end" [ "B"; "A" ]
    (List.map (fun (tr : Query.table_ref) -> tr.alias) order2)

let () =
  Alcotest.run "vm"
    [
      ( "maintenance",
        [
          Alcotest.test_case "insert matches recompute" `Quick test_insert_matches_recompute;
          Alcotest.test_case "delete matches recompute" `Quick test_delete_matches_recompute;
          Alcotest.test_case "irrelevant update" `Quick test_irrelevant_update;
          Alcotest.test_case "compensation vs duplication anomaly" `Quick
            test_compensation_prevents_duplication;
          Alcotest.test_case "broken probe aborts" `Quick test_broken_probe_aborts;
          Alcotest.test_case "schema divergence aborts" `Quick test_schema_divergence_aborts;
          Alcotest.test_case "invalid view raises" `Quick test_invalid_view_raises;
        ] );
      ( "grouped maintenance",
        [
          Alcotest.test_case "group = sequential result" `Quick
            test_group_matches_sequential;
          Alcotest.test_case "abort leaves view untouched" `Quick
            test_group_abort_leaves_view_untouched;
          Alcotest.test_case "schema change rejected" `Quick test_group_rejects_sc;
        ] );
      ( "maintenance queries",
        [
          Alcotest.test_case "probe/partial shapes" `Quick test_maint_query_shapes;
          Alcotest.test_case "sweep order" `Quick test_sweep_order;
        ] );
    ]
