(* Unit tests for view adaptation (VA): Equation 6, compensated fetches,
   extent replacement, and the Section 5 batch preprocessing. *)

open Dyno_relational
open Dyno_view

let a_schema = Schema.of_list [ Attr.int "k"; Attr.string "x" ]
let b_schema = Schema.of_list [ Attr.int "k2"; Attr.int "w" ]

let q2 () =
  Query.make ~name:"V"
    ~select:[ Query.item "A.k"; Query.item "A.x"; Query.item "B.w" ]
    ~from:[ Query.table ~alias:"A" "ds1" "A"; Query.table ~alias:"B" "ds1" "B" ]
    ~where:[ Predicate.eq_attr "A.k" "B.k2" ]

let rel_a rows = Relation.of_list a_schema rows
let rel_b rows = Relation.of_list b_schema rows

(* -- Equation 6 ----------------------------------------------------- *)

let check_equation6 ~old_a ~new_a ~old_b ~new_b =
  let q = q2 () in
  let old_env = [ ("A", old_a); ("B", old_b) ] in
  let new_env = [ ("A", new_a); ("B", new_b) ] in
  let dv = Dyno_va.Adapt.equation6 ~old_env ~new_env q in
  let expected =
    Relation.diff (Eval.run ~catalog:(Eval.catalog new_env) q) (Eval.run ~catalog:(Eval.catalog old_env) q)
  in
  Alcotest.(check bool) "ΔV = V(new) − V(old)" true (Relation.equal dv expected)

let test_equation6_inserts () =
  check_equation6
    ~old_a:(rel_a [ [ Value.int 1; Value.string "a" ] ])
    ~new_a:(rel_a [ [ Value.int 1; Value.string "a" ]; [ Value.int 2; Value.string "b" ] ])
    ~old_b:(rel_b [ [ Value.int 1; Value.int 10 ] ])
    ~new_b:(rel_b [ [ Value.int 1; Value.int 10 ]; [ Value.int 2; Value.int 20 ] ])

let test_equation6_deletes () =
  check_equation6
    ~old_a:(rel_a [ [ Value.int 1; Value.string "a" ]; [ Value.int 2; Value.string "b" ] ])
    ~new_a:(rel_a [ [ Value.int 2; Value.string "b" ] ])
    ~old_b:(rel_b [ [ Value.int 1; Value.int 10 ]; [ Value.int 2; Value.int 20 ] ])
    ~new_b:(rel_b [ [ Value.int 2; Value.int 20 ] ])

let test_equation6_mixed_both_sides () =
  (* simultaneous inserts and deletes on both relations, including a key
     that moves: the cross terms matter here *)
  check_equation6
    ~old_a:(rel_a [ [ Value.int 1; Value.string "a" ]; [ Value.int 3; Value.string "c" ] ])
    ~new_a:(rel_a [ [ Value.int 1; Value.string "a'" ]; [ Value.int 2; Value.string "b" ] ])
    ~old_b:(rel_b [ [ Value.int 1; Value.int 10 ]; [ Value.int 3; Value.int 30 ] ])
    ~new_b:(rel_b [ [ Value.int 1; Value.int 11 ]; [ Value.int 2; Value.int 20 ] ])

let test_equation6_no_change () =
  let a = rel_a [ [ Value.int 1; Value.string "a" ] ] in
  let b = rel_b [ [ Value.int 1; Value.int 10 ] ] in
  let dv =
    Dyno_va.Adapt.equation6
      ~old_env:[ ("A", a); ("B", b) ]
      ~new_env:[ ("A", a); ("B", b) ]
      (q2 ())
  in
  Alcotest.(check int) "empty delta" 0 (Relation.support dv);
  Alcotest.(check (list string)) "delta has view schema" [ "k"; "x"; "w" ]
    (Schema.names (Relation.schema dv))

(* -- batch preprocessing (Section 5) -------------------------------- *)

let msg id payload = Update_msg.make ~id ~commit_time:0.0 ~source_version:id payload

let test_preprocess_merges_dus () =
  let d1 = Update.make ~source:"ds" ~rel:"R" (rel_a [ [ Value.int 1; Value.string "p" ] ]) in
  let d2 = Update.make ~source:"ds" ~rel:"R" (rel_a [ [ Value.int 2; Value.string "q" ] ]) in
  let prep =
    Dyno_va.Batch.preprocess [ msg 0 (Update_msg.Du d1); msg 1 (Update_msg.Du d2) ]
  in
  Alcotest.(check int) "no SCs" 0 (List.length prep.Dyno_va.Batch.scs);
  (match prep.Dyno_va.Batch.du_deltas with
  | [ (src, rel, d) ] ->
      Alcotest.(check string) "source" "ds" src;
      Alcotest.(check string) "rel" "R" rel;
      Alcotest.(check int) "merged" 2 (Relation.cardinality d)
  | _ -> Alcotest.fail "one merged delta expected")

let test_preprocess_projects_through_sc () =
  (* the paper's §5 sequence: insert (k,x), drop x, insert (k): merged into
     homogeneous single-column inserts *)
  let d1 = Update.make ~source:"ds" ~rel:"R" (rel_a [ [ Value.int 3; Value.string "s" ] ]) in
  let sc = Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = "x" } in
  let narrow = Schema.of_list [ Attr.int "k" ] in
  let d2 = Update.make ~source:"ds" ~rel:"R" (Relation.of_list narrow [ [ Value.int 5 ] ]) in
  let prep =
    Dyno_va.Batch.preprocess
      [ msg 0 (Update_msg.Du d1); msg 1 (Update_msg.Sc sc); msg 2 (Update_msg.Du d2) ]
  in
  (match prep.Dyno_va.Batch.du_deltas with
  | [ (_, "R", d) ] ->
      Alcotest.(check int) "both inserts survive" 2 (Relation.cardinality d);
      Alcotest.(check (list string)) "homogeneous schema" [ "k" ]
        (Schema.names (Relation.schema d));
      Alcotest.(check int) "(3) present" 1 (Relation.count d (Tuple.of_list [ Value.int 3 ]));
      Alcotest.(check int) "(5) present" 1 (Relation.count d (Tuple.of_list [ Value.int 5 ]))
  | _ -> Alcotest.fail "one merged delta expected");
  Alcotest.(check int) "sc kept" 1 (List.length prep.Dyno_va.Batch.scs)

let test_preprocess_rename_rekeys () =
  let d1 = Update.make ~source:"ds" ~rel:"R" (rel_a [ [ Value.int 1; Value.string "a" ] ]) in
  let sc = Schema_change.Rename_relation { source = "ds"; old_name = "R"; new_name = "R2" } in
  let d2 = Update.make ~source:"ds" ~rel:"R2" (rel_a [ [ Value.int 2; Value.string "b" ] ]) in
  let prep =
    Dyno_va.Batch.preprocess
      [ msg 0 (Update_msg.Du d1); msg 1 (Update_msg.Sc sc); msg 2 (Update_msg.Du d2) ]
  in
  match prep.Dyno_va.Batch.du_deltas with
  | [ (_, rel, d) ] ->
      Alcotest.(check string) "keyed under final name" "R2" rel;
      Alcotest.(check int) "merged across rename" 2 (Relation.cardinality d)
  | _ -> Alcotest.fail "one merged delta expected"

let test_preprocess_drop_absorbs () =
  let d1 = Update.make ~source:"ds" ~rel:"R" (rel_a [ [ Value.int 1; Value.string "a" ] ]) in
  let sc = Schema_change.Drop_relation { source = "ds"; name = "R" } in
  let prep =
    Dyno_va.Batch.preprocess [ msg 0 (Update_msg.Du d1); msg 1 (Update_msg.Sc sc) ]
  in
  Alcotest.(check int) "delta absorbed" 0 (List.length prep.Dyno_va.Batch.du_deltas);
  Alcotest.(check int) "tuple counted as dropped" 1 prep.Dyno_va.Batch.dropped_du_tuples

(* -- same_shape classification --------------------------------------- *)

let test_same_shape () =
  let old_query = q2 () in
  let old_schemas = [ ("A", a_schema); ("B", b_schema) ] in
  (* pure relation rename: same shape *)
  let renamed = Query.rename_relation old_query ~source:"ds1" ~old_rel:"A" ~new_rel:"A2" in
  Alcotest.(check bool) "rename keeps shape" true
    (Dyno_va.Batch.same_shape ~old_query ~old_schemas ~new_query:renamed
       ~new_schemas:old_schemas);
  (* dropping a select item changes shape *)
  let narrower =
    { old_query with Query.select = [ Query.item "A.k"; Query.item "B.w" ] }
  in
  Alcotest.(check bool) "narrower select changes shape" false
    (Dyno_va.Batch.same_shape ~old_query ~old_schemas ~new_query:narrower
       ~new_schemas:old_schemas)

(* -- compensated fetch + full replace over a live world -------------- *)

let make_world () =
  let ds1 = Dyno_source.Data_source.create "ds1" in
  Dyno_source.Data_source.add_relation ds1 "A" a_schema;
  Dyno_source.Data_source.add_relation ds1 "B" b_schema;
  Dyno_source.Data_source.load ds1 "A" [ [ Value.int 1; Value.string "a" ] ];
  Dyno_source.Data_source.load ds1 "B" [ [ Value.int 1; Value.int 10 ] ];
  let registry = Dyno_source.Registry.create () in
  Dyno_source.Registry.register registry ds1;
  let umq = Umq.create () in
  let timeline = Dyno_sim.Timeline.create () in
  let w =
    Query_engine.create ~cost:Dyno_sim.Cost_model.free ~registry ~timeline ~umq ()
  in
  let vd = View_def.create ~schemas:[ ("A", a_schema); ("B", b_schema) ] (q2 ()) in
  let mv = Mat_view.create vd (Relation.create Schema.empty) in
  let env (tr : Query.table_ref) = Dyno_source.Data_source.relation ds1 tr.rel in
  Mat_view.replace mv ~at:0.0 ~maintained:[] (Eval.run ~catalog:env (q2 ()));
  (w, mv, ds1, umq)

let test_fetch_compensated () =
  let w, mv, ds1, umq = make_world () in
  (* a pending, unmaintained DU must be compensated away *)
  let u = Update.make ~source:"ds1" ~rel:"A" (rel_a [ [ Value.int 2; Value.string "zz" ] ]) in
  let v = Dyno_source.Data_source.commit_du ds1 ~time:0.0 u in
  ignore (Umq.enqueue umq ~commit_time:0.0 ~source_version:v (Update_msg.Du u));
  let vd = Mat_view.def mv in
  let tr = List.hd (Query.from (View_def.peek vd)) in
  (match
     Dyno_va.Adapt.fetch_compensated w ~query:(View_def.peek vd)
       ~schemas:(View_def.schemas vd) tr ~exclude:[]
   with
  | Ok r ->
      Alcotest.(check int) "pending insert hidden" 1 (Relation.cardinality r)
  | Error f -> Alcotest.failf "broken: %a" Query_engine.pp_failure f);
  (* with the message excluded (being maintained), the insert stays *)
  match
    Dyno_va.Adapt.fetch_compensated w ~query:(View_def.peek vd)
      ~schemas:(View_def.schemas vd) tr ~exclude:[ 0 ]
  with
  | Ok r -> Alcotest.(check int) "excluded id stays" 2 (Relation.cardinality r)
  | Error f -> Alcotest.failf "broken: %a" Query_engine.pp_failure f

let test_replace_extent_after_sync () =
  let w, mv, ds1, _umq = make_world () in
  (* source drops A.x; the view drops it too (simulate a dispensable
     rewrite by hand), then adaptation rebuilds the extent *)
  ignore
    (Dyno_source.Data_source.commit_sc ds1 ~time:0.0
       (Schema_change.Drop_attribute { source = "ds1"; rel = "A"; attr = "x" }));
  let vd = Mat_view.def mv in
  let new_q =
    Query.make ~name:"V"
      ~select:[ Query.item "A.k"; Query.item "B.w" ]
      ~from:(Query.from (View_def.peek vd))
      ~where:(Query.where (View_def.peek vd))
  in
  View_def.write vd ~schemas:[ ("A", Schema.of_list [ Attr.int "k" ]); ("B", b_schema) ] new_q;
  (match Dyno_va.Adapt.replace_extent w mv ~maintained:[ 42 ] ~exclude:[ 42 ] with
  | Ok () -> ()
  | Error f -> Alcotest.failf "broken: %a" Query_engine.pp_failure f);
  Alcotest.(check (list string)) "new extent schema" [ "k"; "w" ]
    (Schema.names (Relation.schema (Mat_view.extent mv)));
  Alcotest.(check int) "one row" 1 (Relation.cardinality (Mat_view.extent mv))

let () =
  Alcotest.run "va"
    [
      ( "equation 6",
        [
          Alcotest.test_case "inserts" `Quick test_equation6_inserts;
          Alcotest.test_case "deletes" `Quick test_equation6_deletes;
          Alcotest.test_case "mixed on both sides" `Quick test_equation6_mixed_both_sides;
          Alcotest.test_case "no change" `Quick test_equation6_no_change;
        ] );
      ( "batch preprocessing",
        [
          Alcotest.test_case "merges DUs" `Quick test_preprocess_merges_dus;
          Alcotest.test_case "projects through SC (paper §5)" `Quick
            test_preprocess_projects_through_sc;
          Alcotest.test_case "rename re-keys accumulators" `Quick test_preprocess_rename_rekeys;
          Alcotest.test_case "relation drop absorbs deltas" `Quick test_preprocess_drop_absorbs;
        ] );
      ( "adaptation",
        [
          Alcotest.test_case "shape classification" `Quick test_same_shape;
          Alcotest.test_case "compensated fetch" `Quick test_fetch_compensated;
          Alcotest.test_case "replace extent after sync" `Quick test_replace_extent_after_sync;
        ] );
    ]
