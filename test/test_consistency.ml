(* Unit tests for the consistency checkers: they must accept correct runs
   (covered extensively by test_scheduler) and, crucially, they must
   actually CATCH corruption — a checker that never fails proves
   nothing. *)

open Dyno_relational
open Dyno_view
open Dyno_workload
open Dyno_core

let run_small () =
  let timeline =
    Generator.mixed ~rows:12 ~seed:99 ~n_dus:10 ~du_interval:0.0
      ~sc_interval:0.0 ~sc_kinds:[] ()
  in
  let t =
    Scenario.make
      Scenario.Config.(
        default |> with_rows 12 |> with_cost Dyno_sim.Cost_model.free
        |> with_snapshots true)
      ~timeline
  in
  ignore
    (Scenario.run t
       ~config:(Dyno_core.Run_config.of_strategy Strategy.Pessimistic));
  t

let test_accepts_correct_run () =
  let t = run_small () in
  (match Scenario.check_convergent t with
  | Ok true -> ()
  | _ -> Alcotest.fail "should converge");
  let r = Scenario.check_strong t in
  Alcotest.(check bool) "strong ok" true (Consistency.ok r);
  Alcotest.(check bool) "commits were actually checked" true (r.Consistency.checked > 1)

let test_catches_corrupted_extent () =
  let t = run_small () in
  (* sabotage the extent: inject a phantom tuple *)
  let mv = t.Scenario.mv in
  let extent = Mat_view.extent mv in
  let schema = Relation.schema extent in
  let phantom =
    Tuple.of_list
      (List.map
         (fun a ->
           match Attr.ty a with
           | Value.Vtype.TInt -> Value.int 987654
           | Value.Vtype.TFloat -> Value.float 9.9
           | Value.Vtype.TString -> Value.string "phantom"
           | Value.Vtype.TBool -> Value.bool true)
         (Schema.attrs schema))
  in
  Relation.add extent phantom 1;
  (match Scenario.check_convergent t with
  | Ok false -> ()
  | Ok true -> Alcotest.fail "corruption must break convergence"
  | Error e -> Alcotest.failf "unexpected: %s" e)

let test_catches_corrupted_snapshot () =
  let t = run_small () in
  (* corrupt the last commit's snapshot *)
  (match Mat_view.commits t.Scenario.mv |> List.rev with
  | last :: _ -> (
      match last.Mat_view.snapshot with
      | Some snap ->
          let schema = Relation.schema snap in
          let tup =
            Tuple.of_list
              (List.map
                 (fun a ->
                   match Attr.ty a with
                   | Value.Vtype.TInt -> Value.int 123123
                   | Value.Vtype.TFloat -> Value.float 1.0
                   | Value.Vtype.TString -> Value.string "bad"
                   | Value.Vtype.TBool -> Value.bool false)
                 (Schema.attrs schema))
          in
          Relation.add snap tup 1
      | None -> Alcotest.fail "snapshots expected")
  | [] -> Alcotest.fail "commits expected");
  let r = Scenario.check_strong t in
  Alcotest.(check bool) "mismatch detected" false (Consistency.ok r);
  Alcotest.(check int) "exactly one bad commit" 1 (List.length r.Consistency.mismatches)

let test_convergent_on_undefined_view () =
  let t = run_small () in
  View_def.invalidate (Mat_view.def t.Scenario.mv);
  match Scenario.check_convergent t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined view is not checkable"

let () =
  Alcotest.run "consistency"
    [
      ( "consistency",
        [
          Alcotest.test_case "accepts a correct run" `Quick test_accepts_correct_run;
          Alcotest.test_case "catches corrupted extent" `Quick test_catches_corrupted_extent;
          Alcotest.test_case "catches corrupted snapshot" `Quick test_catches_corrupted_snapshot;
          Alcotest.test_case "undefined view not checkable" `Quick
            test_convergent_on_undefined_view;
        ] );
    ]
