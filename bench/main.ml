(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Section 6) plus Bechamel micro-benchmarks of the detection/correction
   machinery and an ablation of the correction granularity.

     dune exec bench/main.exe                  -- everything
     dune exec bench/main.exe -- --only fig10  -- one experiment
     dune exec bench/main.exe -- --rows 1000   -- larger physical extent
     dune exec bench/main.exe -- --fast        -- fewer points (CI)

   Reported times are SIMULATED seconds from the calibrated cost model
   (see lib/sim/cost_model.ml and DESIGN.md §3): the paper's absolute
   numbers came from a 4-PC Oracle8i testbed, so only the shapes are
   expected to match.  The micro benches are REAL time. *)

open Dyno_relational
open Dyno_workload
open Dyno_core

let rows = ref 500
let fast = ref false
let only = ref ""
let quota = ref 0.5

(* Logical extent is the paper's 100k tuples/relation; the cost model
   scales physical rows up to it. *)
let scale () = 100_000.0 /. float_of_int !rows

let cost () = Dyno_sim.Cost_model.scaled (scale ())

let line = String.make 72 '-'

let header fmt =
  Fmt.kstr (fun s -> Fmt.pr "@.%s@.%s@.%s@." line s line) fmt

let scenario_config () =
  Scenario.Config.(default |> with_rows !rows |> with_cost (cost ()))

let run_timeline ~timeline ~strategy =
  let t = Scenario.make (scenario_config ()) ~timeline in
  let stats = Scenario.run t ~config:(Run_config.of_strategy strategy) in
  (t, stats)

(* ------------------------------------------------------------------ *)
(* Figure 8: data-update processing with vs without detection          *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  header
    "Figure 8 - DU processing cost with vs without detection (seconds)";
  Fmt.pr
    "paper shape: both series indistinguishable, linear, ~700 s at 3000 \
     DUs@.@.";
  Fmt.pr "%8s  %14s  %17s  %12s@." "#DUs" "with detection"
    "without detection" "paper (~)";
  let points =
    if !fast then [ 500; 1000; 1500 ] else [ 500; 1000; 1500; 2000; 2500; 3000 ]
  in
  List.iter
    (fun n ->
      let mk () =
        Generator.mixed ~rows:!rows ~seed:8 ~n_dus:n ~du_interval:0.0
          ~sc_interval:0.0 ~sc_kinds:[] ()
      in
      (* "With detection": the Dyno pessimistic loop runs its pre-exec flag
         check before every maintenance; "without": the optimistic loop
         never detects (and nothing ever breaks in a DU-only workload). *)
      let _, with_d = run_timeline ~timeline:(mk ()) ~strategy:Strategy.Pessimistic in
      let _, without_d = run_timeline ~timeline:(mk ()) ~strategy:Strategy.Optimistic in
      Fmt.pr "%8d  %14.1f  %17.1f  %12.1f@." n with_d.Stats.busy
        without_d.Stats.busy
        (0.233 *. float_of_int n))
    points

(* ------------------------------------------------------------------ *)
(* Figure 9: cost of broken query (two conflict workloads x 3 modes)   *)
(* ------------------------------------------------------------------ *)

(* Explicit conflicting updates over the paper schema. *)
let du_on_r1 () =
  Dyno_sim.Timeline.Du
    (Update.insert ~source:"DS1" ~rel:"R1"
       (Paper_schema.schema_of_rel 1)
       (Paper_schema.tuple_for ~salt:777 1 0))

let drop_attr_r3 () =
  Dyno_sim.Timeline.Sc
    (Schema_change.Drop_attribute { source = "DS2"; rel = "R3"; attr = "B3" })

let rename_r5 () =
  Dyno_sim.Timeline.Sc
    (Schema_change.Rename_relation
       { source = "DS3"; old_name = "R5"; new_name = "R5X" })

let fig9 () =
  header "Figure 9 - cost of broken query (seconds)";
  Fmt.pr
    "paper shape: optimistic highest, much higher for SC+SC; pessimistic \
     close to no-concurrency@.@.";
  let run_events spaced strategy events =
    let timeline =
      Dyno_sim.Timeline.of_list
        (List.mapi
           (fun i ev -> ((if spaced then float_of_int i *. 10_000.0 else 0.0), ev))
           events)
    in
    let _, stats = run_timeline ~timeline ~strategy in
    stats
  in
  let workloads =
    [
      ("one DU + one SC", [ du_on_r1 (); drop_attr_r3 () ]);
      ("one SC + one SC", [ drop_attr_r3 (); rename_r5 () ]);
    ]
  in
  Fmt.pr "%18s  %10s  %11s  %18s  %18s@." "workload" "no-conc."
    "pessimistic" "optimistic" "(abort of opt.)";
  List.iter
    (fun (name, events) ->
      let no_con = run_events true Strategy.Pessimistic events in
      let pess = run_events false Strategy.Pessimistic events in
      let opt = run_events false Strategy.Optimistic events in
      Fmt.pr "%18s  %10.1f  %11.1f  %18.1f  %18.1f@." name
        no_con.Stats.busy pess.Stats.busy opt.Stats.busy opt.Stats.abort_cost)
    workloads

(* ------------------------------------------------------------------ *)
(* Figures 10-12: mixed workloads                                      *)
(* ------------------------------------------------------------------ *)

let mixed_run ~seed ~n_dus ~n_scs ~sc_interval ~strategy =
  (* DUs trickle in at one per second (a realistic background load); the
     schema-change train starts immediately. *)
  let timeline =
    Generator.mixed ~rows:!rows ~seed ~n_dus ~du_interval:1.0
      ~sc_interval
      ~sc_kinds:(Generator.drop_then_renames n_scs)
      ()
  in
  snd (run_timeline ~timeline ~strategy)

let print_4series points point_label results =
  Fmt.pr "%12s  %11s  %11s  %11s  %11s@." point_label "optimistic"
    "abort(opt)" "pessimistic" "abort(pess)";
  List.iter2
    (fun p (opt, pess) ->
      Fmt.pr "%12s  %11.1f  %11.1f  %11.1f  %11.1f@." p
        opt.Stats.busy opt.Stats.abort_cost pess.Stats.busy
        pess.Stats.abort_cost)
    points results

let fig10 () =
  header
    "Figure 10 - varying the time interval between schema changes \
     (200 DUs + 10 SCs; seconds)";
  Fmt.pr
    "paper shape: cheapest at 0 s (one batch), peak when interval is near \
     one SC maintenance time, pessimistic consistently below optimistic@.@.";
  let points =
    if !fast then [ 0.; 9.; 23.; 41. ] else [ 0.; 3.; 9.; 17.; 23.; 29.; 41. ]
  in
  let results =
    List.map
      (fun itv ->
        ( mixed_run ~seed:21 ~n_dus:200 ~n_scs:10 ~sc_interval:itv
            ~strategy:Strategy.Optimistic,
          mixed_run ~seed:21 ~n_dus:200 ~n_scs:10 ~sc_interval:itv
            ~strategy:Strategy.Pessimistic ))
      points
  in
  print_4series
    (List.map (fun p -> Fmt.str "%.0f s" p) points)
    "interval" results

let fig11 () =
  header
    "Figure 11 - increasing the number of schema changes (interval 25 s, \
     200 DUs; seconds)";
  Fmt.pr
    "paper shape: cost and abort cost grow with #SCs; pessimistic below \
     optimistic@.@.";
  let points = if !fast then [ 5; 15; 25 ] else [ 5; 10; 15; 20; 25 ] in
  let results =
    List.map
      (fun n ->
        ( mixed_run ~seed:22 ~n_dus:200 ~n_scs:n ~sc_interval:25.0
            ~strategy:Strategy.Optimistic,
          mixed_run ~seed:22 ~n_dus:200 ~n_scs:n ~sc_interval:25.0
            ~strategy:Strategy.Pessimistic ))
      points
  in
  print_4series (List.map string_of_int points) "#SCs" results

let fig12 () =
  header
    "Figure 12 - increasing the number of data updates (5 SCs, interval \
     25 s; seconds)";
  Fmt.pr
    "paper shape: abort cost roughly flat in #DUs (aborts are caused by \
     schema changes)@.@.";
  let points =
    if !fast then [ 200; 400; 600 ] else [ 200; 300; 400; 500; 600 ]
  in
  let results =
    List.map
      (fun n ->
        ( mixed_run ~seed:23 ~n_dus:n ~n_scs:5 ~sc_interval:25.0
            ~strategy:Strategy.Optimistic,
          mixed_run ~seed:23 ~n_dus:n ~n_scs:5 ~sc_interval:25.0
            ~strategy:Strategy.Pessimistic ))
      points
  in
  print_4series (List.map string_of_int points) "#DUs" results

(* ------------------------------------------------------------------ *)
(* Ablation: correction granularity and strategy choice                *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header
    "Ablation - correction granularity (200 DUs + 10 SCs, interval 9 s)";
  Fmt.pr
    "merge-all collapses the whole queue on any conflict: fewer, larger \
     maintenance steps,@.fewer intermediate view states (coarser \
     freshness), and larger abort exposure (Section 4.2).@.@.";
  Fmt.pr "%12s  %9s  %9s  %8s  %9s  %8s  %8s@." "strategy" "cost(s)"
    "abort(s)" "aborts" "commits" "batches" "merges";
  List.iter
    (fun strategy ->
      let timeline =
        Generator.mixed ~rows:!rows ~seed:31 ~n_dus:200 ~du_interval:1.0
          ~sc_interval:9.0
          ~sc_kinds:(Generator.drop_then_renames 10)
          ()
      in
      let _, s = run_timeline ~timeline ~strategy in
      Fmt.pr "%12s  %9.1f  %9.1f  %8d  %9d  %8d  %8d@."
        (Strategy.to_string strategy)
        s.Stats.busy s.Stats.abort_cost s.Stats.aborts s.Stats.view_commits
        s.Stats.batches s.Stats.merges)
    [ Strategy.Pessimistic; Strategy.Optimistic; Strategy.Merge_all ];
  Fmt.pr
    "@.Baseline - incremental VM (SWEEP deltas) vs naive recompute per DU \
     (100 DUs, no SCs):@.@.";
  Fmt.pr "%14s  %10s  %9s@." "vm mode" "cost(s)" "commits";
  List.iter
    (fun (label, vm_mode) ->
      let timeline =
        Generator.mixed ~rows:!rows ~seed:32 ~n_dus:100 ~du_interval:0.0
          ~sc_interval:0.0 ~sc_kinds:[] ()
      in
      let t = Scenario.make (scenario_config ()) ~timeline in
      let s =
        Scenario.run t
          ~config:
            Run_config.(
              of_strategy Strategy.Pessimistic |> with_vm_mode vm_mode)
      in
      Fmt.pr "%14s  %10.1f  %9d@." label s.Stats.busy s.Stats.view_commits)
    [
      ("incremental", Dyno_core.Run_config.Incremental);
      ("recompute", Dyno_core.Run_config.Recompute);
    ];
  Fmt.pr
    "@.Deferred/grouped DU maintenance (200 DUs flooding in, no SCs): group      size vs cost@.and view freshness (commits).@.@.";
  Fmt.pr "%12s  %10s  %9s@." "group size" "cost(s)" "commits";
  List.iter
    (fun du_group ->
      let timeline =
        Generator.mixed ~rows:!rows ~seed:33 ~n_dus:200 ~du_interval:0.0
          ~sc_interval:0.0 ~sc_kinds:[] ()
      in
      let t = Scenario.make (scenario_config ()) ~timeline in
      let s =
        Scenario.run t
          ~config:
            Run_config.(
              of_strategy Strategy.Pessimistic |> with_du_group du_group)
      in
      Fmt.pr "%12d  %10.1f  %9d@." du_group s.Stats.busy s.Stats.view_commits)
    [ 1; 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* Sensitivity: what drives the Figure 11 abort growth                 *)
(* ------------------------------------------------------------------ *)

let sensitivity () =
  header
    "Sensitivity - drop-attribute maintenance cost vs the 25 s interval \
     (10 SCs, 200 DUs)";
  Fmt.pr
    "Figure 11's abort growth appears exactly when one shape-changing \
     maintenance takes@.longer than the inter-SC interval: each arriving \
     rename then breaks the in-flight@.drop, merges with it and restarts \
     it.  Sweeping the rebuild cost shows the crossover.@.@.";
  Fmt.pr "%22s  %14s  %9s  %9s@." "rebuild cost/tuple" "drop maint (s)"
    "cost(s)" "abort(s)";
  List.iter
    (fun rebuild ->
      let cost_model =
        { (cost ()) with Dyno_sim.Cost_model.va_rebuild_per_tuple = rebuild }
      in
      let timeline =
        Generator.mixed ~rows:!rows ~seed:22 ~n_dus:200 ~du_interval:1.0
          ~sc_interval:25.0
          ~sc_kinds:(Generator.drop_then_renames 10)
          ()
      in
      let t =
        Scenario.make
          Scenario.Config.(
            default |> with_rows !rows |> with_cost cost_model)
          ~timeline
      in
      let s =
        Scenario.run t ~config:(Run_config.of_strategy Strategy.Pessimistic)
      in
      (* one drop ≈ rename cost + rebuild over the 100k-tuple extent *)
      let drop_estimate =
        20.0 +. (rebuild *. Dyno_sim.Cost_model.rows cost_model !rows)
      in
      Fmt.pr "%22.0e  %14.1f  %9.1f  %9.1f@." rebuild drop_estimate
        s.Stats.busy s.Stats.abort_cost)
    [ 0.0; 2.0e-5; 6.0e-5; 1.2e-4 ]

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (real time): detection / correction machinery      *)
(* ------------------------------------------------------------------ *)

let synthetic_umq ~n_dus ~n_scs =
  let umq = Dyno_view.Umq.create () in
  for i = 0 to n_dus - 1 do
    let r = (i mod Paper_schema.n_relations) + 1 in
    ignore
      (Dyno_view.Umq.enqueue umq ~commit_time:(float_of_int i)
         ~source_version:i
         (Dyno_view.Update_msg.Du
            (Update.insert
               ~source:(Paper_schema.source_of_rel r)
               ~rel:(Paper_schema.rel_name r)
               (Paper_schema.schema_of_rel r)
               (Paper_schema.tuple_for ~salt:i r 0))))
  done;
  for i = 0 to n_scs - 1 do
    let r = (i mod Paper_schema.n_relations) + 1 in
    ignore
      (Dyno_view.Umq.enqueue umq
         ~commit_time:(float_of_int (n_dus + i))
         ~source_version:(n_dus + i)
         (Dyno_view.Update_msg.Sc
            (Schema_change.Rename_relation
               {
                 source = Paper_schema.source_of_rel r;
                 old_name = Paper_schema.rel_name r;
                 new_name = Fmt.str "%s_x%d" (Paper_schema.rel_name r) i;
               })))
  done;
  umq

let micro () =
  header
    "Micro-benchmarks (REAL time) - detection & correction machinery";
  Fmt.pr
    "the paper's claim: detection overhead on DU processing is negligible \
     (O(1) flag check);@.graph build is O(m*n), correction O(n+e).@.@.";
  let open Bechamel in
  let query = Paper_schema.view_query () in
  let schemas = Paper_schema.view_schemas () in
  let test_flag =
    let umq = synthetic_umq ~n_dus:1000 ~n_scs:0 in
    Test.make ~name:"flag fast path (1000 DUs, 0 SC)"
      (Staged.stage (fun () ->
           ignore (Dyno_view.Umq.peek_schema_change_flag umq)))
  in
  let graph_test ~n_dus ~n_scs =
    let umq = synthetic_umq ~n_dus ~n_scs in
    let entries = Dyno_view.Umq.entries umq in
    Test.make
      ~name:(Fmt.str "graph build (%d DUs, %d SCs)" n_dus n_scs)
      (Staged.stage (fun () ->
           ignore (Dep_graph.build query schemas entries)))
  in
  let correct_test ~n_dus ~n_scs =
    let umq = synthetic_umq ~n_dus ~n_scs in
    let entries = Dyno_view.Umq.entries umq in
    let g = Dep_graph.build query schemas entries in
    Test.make
      ~name:(Fmt.str "correction: SCC+toposort (%d DUs, %d SCs)" n_dus n_scs)
      (Staged.stage (fun () -> ignore (Dep_graph.correct g)))
  in
  let tests =
    [
      test_flag;
      graph_test ~n_dus:100 ~n_scs:1;
      graph_test ~n_dus:100 ~n_scs:10;
      graph_test ~n_dus:1000 ~n_scs:10;
      correct_test ~n_dus:100 ~n_scs:10;
      correct_test ~n_dus:1000 ~n_scs:10;
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000
        ~quota:(Time.second !quota)
        ~kde:(Some 1000) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun t ->
      let results = analyze (benchmark t) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "%-45s %12.1f ns/op@." name est
          | _ -> Fmt.pr "%-45s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Join micro-benchmarks (real time): physical plans head to head      *)
(* ------------------------------------------------------------------ *)

let json_path = ref ""
let check_path = ref ""
let tolerance = ref 25.0
let json_entries : (string * int * float) list ref = ref []

let record_json ~op ~n ns = json_entries := (op, n, ns) :: !json_entries

(* Shared JSON emission for the result-writing experiments (join, net,
   overlap, selfmaint, scale, mcore): every document is kept in memory
   for [--check] and written to [--json] through one code path. *)
let bench_docs : (string, Dyno_jsonv.Jsonv.t) Hashtbl.t = Hashtbl.create 4

(* Host-side footprint of the producing experiment: wall-clock since the
   runner dispatched it (monotonic enough at bench granularity) and the
   process peak RSS from /proc.  Appended as one extra entry to every
   emitted document; [check_regressions] skips entries it has no key
   for, so baselines with or without it stay comparable. *)
let exp_start = ref 0.0

let host_max_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              String.split_on_char ' ' line
              |> List.filter (fun s -> s <> "")
              |> function
              | _ :: v :: _ -> int_of_string_opt v
              | _ -> None
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in ic) scan

let with_host_footprint (doc : Dyno_jsonv.Jsonv.t) =
  let open Dyno_jsonv.Jsonv in
  match doc with
  | Arr entries ->
      let host =
        ("host_wall_s", Num (Unix.gettimeofday () -. !exp_start))
        ::
        (match host_max_rss_kb () with
        | Some kb -> [ ("host_max_rss_kb", Num (float_of_int kb)) ]
        | None -> [])
      in
      Arr (entries @ [ Obj host ])
  | d -> d

let emit_json ~experiment (doc : Dyno_jsonv.Jsonv.t) =
  let doc = with_host_footprint doc in
  Hashtbl.replace bench_docs experiment doc;
  if !json_path <> "" then begin
    match open_out !json_path with
    | exception Sys_error e ->
        Fmt.epr "cannot write %s: %s@." !json_path e;
        exit 1
    | oc ->
        output_string oc (Dyno_jsonv.Jsonv.to_string doc);
        output_char oc '\n';
        close_out oc;
        Fmt.pr "@.wrote %s results to %s@." experiment !json_path
  end

(* One Bechamel measurement -> ns/op estimate. *)
let ns_of_test ?quota_s test =
  let open Bechamel in
  let quota_s = match quota_s with Some q -> q | None -> !quota in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some [ est ] -> Some est | _ -> acc)
    results None

let join_bench () =
  header "Join micro-benchmarks (REAL time) - physical plans, n x n equi-join";
  Fmt.pr
    "indexed: persistent hash index on the join key, built once and probed \
     per run@.(the maintenance hot path - commits keep the index \
     maintained); ephemeral:@.per-run hash build and discard; nested-loop: \
     the O(n*m) reference plan.@.@.";
  let open Bechamel in
  let sch_r = Schema.of_list [ Attr.int "k"; Attr.int "v" ] in
  let sch_s = Schema.of_list [ Attr.int "k2"; Attr.int "w" ] in
  let q =
    Query.make ~name:"J"
      ~select:[ Query.item "R.k"; Query.item "R.v"; Query.item "S.w" ]
      ~from:[ Query.table ~alias:"R" "ds" "R"; Query.table ~alias:"S" "ds" "S" ]
      ~where:[ Predicate.eq_attr "R.k" "S.k2" ]
  in
  let make_rel sch n salt =
    Relation.of_list sch
      (List.init n (fun i -> [ Value.int i; Value.int ((i * 7) + salt) ]))
  in
  let sizes = if !fast then [ 1_000 ] else [ 1_000; 10_000 ] in
  Fmt.pr "%8s  %15s  %15s  %15s  %9s@." "rows" "indexed" "ephemeral"
    "nested-loop" "speedup";
  List.iter
    (fun n ->
      let r = make_rel sch_r n 0 and s = make_rel sch_s n 3 in
      let catalog = Eval.catalog [ ("R", r); ("S", s) ] in
      (* Warm the persistent indexes so the indexed series measures probe
         cost, not the one-off build (in the VM, source commits keep them
         maintained incrementally across probes). *)
      ignore (Eval.run ~planner:`Indexed ~catalog q);
      let t_indexed =
        Test.make
          ~name:(Fmt.str "indexed (%d rows)" n)
          (Staged.stage (fun () ->
               ignore (Eval.run ~planner:`Indexed ~catalog q)))
      in
      let kr = Schema.index_of sch_r "k" and ks = Schema.index_of sch_s "k2" in
      let t_ephemeral =
        Test.make
          ~name:(Fmt.str "ephemeral hash (%d rows)" n)
          (Staged.stage (fun () ->
               ignore (Eval.positional_join r s [ (kr, ks) ])))
      in
      let t_nested =
        Test.make
          ~name:(Fmt.str "nested loop (%d rows)" n)
          (Staged.stage (fun () ->
               ignore (Eval.run ~planner:`Nested_loop ~catalog q)))
      in
      (* A single 10k x 10k nested-loop op runs for seconds: give it quota
         enough for a couple of samples so OLS has points to fit. *)
      let nested_quota = Float.max !quota 2.0 in
      match
        ( ns_of_test t_indexed,
          ns_of_test t_ephemeral,
          ns_of_test ~quota_s:nested_quota t_nested )
      with
      | Some i, Some e, Some nl ->
          record_json ~op:"indexed" ~n i;
          record_json ~op:"ephemeral_hash" ~n e;
          record_json ~op:"nested_loop" ~n nl;
          Fmt.pr "%8d  %12.0f ns  %12.0f ns  %12.0f ns  %8.1fx@." n i e nl
            (nl /. i)
      | _ -> Fmt.pr "%8d  (no estimate)@." n)
    sizes;
  let open Dyno_jsonv.Jsonv in
  emit_json ~experiment:"join"
    (Arr
       (List.rev_map
          (fun (op, rows, ns) ->
            Obj
              [
                ("op", Str op);
                ("rows", Num (float_of_int rows));
                ("ns_per_op", Num ns);
              ])
          !json_entries))

(* ------------------------------------------------------------------ *)
(* Transport: maintenance cost vs channel loss rate                    *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: sweeps the lib/net fault injector.  Shape to
   expect: busy time grows with the loss rate (timeouts + backoff are
   charged to the view manager), while the view still converges — the
   retry loop and the UMQ sequencer absorb every fault. *)
let net_bench () =
  header "Transport - maintenance cost vs message/RPC loss rate (seconds)";
  Fmt.pr
    "expected shape: busy grows with loss (timeout + backoff); converged      stays true@.@.";
  Fmt.pr "%8s  %10s  %10s  %8s  %8s  %10s@." "loss" "busy" "net wait"
    "retries" "lost" "converged";
  let points =
    if !fast then [ 0.0; 0.1; 0.3 ] else [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.4 ]
  in
  let n_dus = if !fast then 100 else 300 in
  let entries =
    List.map
      (fun loss ->
        let timeline =
          Generator.mixed ~rows:!rows ~seed:8 ~n_dus ~du_interval:1.0
            ~sc_interval:0.0 ~sc_kinds:[] ()
        in
        let faults =
          { Dyno_net.Channel.reliable with loss; retransmit = 0.1 }
        in
        let t =
          Scenario.make
            Scenario.Config.(
              scenario_config () |> with_faults faults |> with_net_seed 8)
            ~timeline
        in
        let stats =
          Scenario.run t ~config:(Run_config.of_strategy Strategy.Pessimistic)
        in
        let converged =
          match Scenario.check_convergent t with Ok b -> b | Error _ -> false
        in
        Fmt.pr "%8.2f  %10.1f  %10.1f  %8d  %8d  %10b@." loss stats.Stats.busy
          stats.Stats.net_wait stats.Stats.retries stats.Stats.msgs_lost
          converged;
        let open Dyno_jsonv.Jsonv in
        Obj
          [
            ("loss", Num loss);
            ("busy_s", Num stats.Stats.busy);
            ("net_wait_s", Num stats.Stats.net_wait);
            ("retries", Num (float_of_int stats.Stats.retries));
            ("lost", Num (float_of_int stats.Stats.msgs_lost));
            ("converged", Bool converged);
          ])
      points
  in
  emit_json ~experiment:"net" (Dyno_jsonv.Jsonv.Arr entries)

(* ------------------------------------------------------------------ *)
(* Overlap: serial vs dependency-parallel maintenance (simulated time)  *)
(* ------------------------------------------------------------------ *)

(* Four relations, each alone at its own source, view = chain join of all
   four.  Every DU therefore needs 3 probe round-trips to the OTHER
   sources, and DUs from distinct sources are mutually independent — the
   ideal antichain workload.  The cost model is latency-dominated (1 s
   query RTT, microsecond scans), so serial busy time is ~3 RTTs per DU
   back-to-back while [--parallel 4] overlaps whole antichains of four. *)
let overlap_bench () =
  header
    "Overlap - dependency-parallel maintenance, 4 independent sources \
     (SIMULATED seconds)";
  Fmt.pr
    "four single-relation sources, chain-join view, 1 s probe RTT: serial \
     pays@.every round-trip back-to-back; parallel dispatches antichains \
     of 4.@.@.";
  let n_sources = 4 in
  let src i = Fmt.str "S%d" i in
  let rel i = Fmt.str "T%d" i in
  let key i = Fmt.str "K%d" i in
  let schema i =
    Schema.of_list [ Attr.int (key i); Attr.int (Fmt.str "A%d" i) ]
  in
  let base_rows = 50 in
  let query =
    Query.make ~name:"OV"
      ~select:
        (List.concat_map
           (fun i ->
             [
               Query.item (Fmt.str "%s.%s" (rel i) (key i));
               Query.item (Fmt.str "%s.A%d" (rel i) i);
             ])
           (List.init n_sources (fun i -> i + 1)))
      ~from:
        (List.init n_sources (fun i ->
             let i = i + 1 in
             Query.table (src i) (rel i)))
      ~where:
        (List.init (n_sources - 1) (fun i ->
             let i = i + 1 in
             Predicate.eq_attr
               (Fmt.str "%s.%s" (rel i) (key i))
               (Fmt.str "%s.%s" (rel (i + 1)) (key (i + 1)))))
  in
  let build_registry () =
    let reg = Dyno_source.Registry.create () in
    for i = 1 to n_sources do
      Dyno_source.Registry.register reg
        (Dyno_source.Data_source.create (src i));
      let s = Dyno_source.Registry.find reg (src i) in
      Dyno_source.Data_source.add_relation s (rel i) (schema i);
      Dyno_source.Data_source.load s (rel i)
        (List.init base_rows (fun k ->
             [ Value.int k; Value.int ((k * 3) + i) ]))
    done;
    reg
  in
  (* [n_rounds] waves of one insert per source, all committed within the
     first half-second so the UMQ always holds a full-width antichain. *)
  let n_rounds = if !fast then 6 else 12 in
  let build_timeline () =
    let tl = Dyno_sim.Timeline.create () in
    for j = 0 to n_rounds - 1 do
      for i = 1 to n_sources do
        Dyno_sim.Timeline.schedule tl
          ~time:(0.01 *. float_of_int ((j * n_sources) + i))
          (Dyno_sim.Timeline.Du
             (Update.insert ~source:(src i) ~rel:(rel i) (schema i)
                [ Value.int (j mod base_rows); Value.int (1000 + (j * 10) + i) ]))
      done
    done;
    tl
  in
  let cost =
    {
      Dyno_sim.Cost_model.default with
      query_latency = 1.0;
      row_scale = 1.0;
    }
  in
  let run ?obs ~parallel () =
    let reg = build_registry () in
    let umq = Dyno_view.Umq.create () in
    let trace = Dyno_sim.Trace.create ~enabled:false () in
    let engine =
      Dyno_view.Query_engine.create ~trace ?obs ~cost ~registry:reg
        ~timeline:(build_timeline ()) ~umq ()
    in
    let vd =
      Dyno_view.View_def.create
        ~schemas:
          (List.init n_sources (fun i ->
               let i = i + 1 in
               (rel i, schema i)))
        query
    in
    let mv =
      Dyno_view.Mat_view.create vd (Relation.create Schema.empty)
    in
    let env (tr : Query.table_ref) =
      Dyno_source.Data_source.relation
        (Dyno_source.Registry.find reg tr.source)
        tr.rel
    in
    Dyno_view.Mat_view.replace mv ~at:0.0 ~maintained:[]
      (Eval.run
         ~planner:(Dyno_view.Query_engine.planner engine)
         ~catalog:env query);
    let mk = Dyno_source.Meta_knowledge.create () in
    let stats =
      Scheduler.run
        ~config:
          {
            Scheduler.strategy = Strategy.Pessimistic;
            max_steps = 1_000_000;
            compensate = true;
            vm_mode = Scheduler.Incremental;
            du_group = 1;
            parallel;
            self_maint = false;
            runtime = `Simulated;
          }
        engine mv mk
    in
    (stats, Dyno_view.Mat_view.extent mv)
  in
  let stats_s, extent_s = run ~parallel:1 () in
  let stats_p, extent_p = run ~parallel:n_sources () in
  if not (Relation.equal extent_s extent_p) then begin
    Fmt.epr "overlap bench: parallel extent diverged from serial@.";
    exit 1
  end;
  (* lineage-overhead probe: the same parallel run with the full obs
     stack (spans + metrics + lineage) on must stay byte-identical in
     simulated time and cost < 5% extra host CPU. *)
  let timed f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  (* one throwaway each to warm allocators before timing *)
  ignore (run ~parallel:n_sources ());
  let (stats_off, _), cpu_off = timed (fun () -> run ~parallel:n_sources ()) in
  let (stats_lin, extent_lin), cpu_lin =
    timed (fun () ->
        run ~obs:(Dyno_obs.Obs.create ()) ~parallel:n_sources ())
  in
  if not (Relation.equal extent_p extent_lin) then begin
    Fmt.epr "overlap bench: lineage-on extent diverged@.";
    exit 1
  end;
  let busy_delta = Float.abs (stats_lin.Stats.busy -. stats_off.Stats.busy) in
  if busy_delta > 1e-9 then begin
    Fmt.epr "overlap bench: lineage-on changed simulated busy by %g s@."
      busy_delta;
    exit 1
  end;
  let cpu_overhead_pct =
    if cpu_off > 0.0 then (cpu_lin -. cpu_off) /. cpu_off *. 100.0 else 0.0
  in
  (* host CPU timings on a fast run are noisy; fail only on a blowup an
     order of magnitude past the 5% budget *)
  if cpu_off > 0.01 && cpu_overhead_pct > 50.0 then begin
    Fmt.epr "overlap bench: lineage overhead %.1f%% CPU (budget 5%%)@."
      cpu_overhead_pct;
    exit 1
  end;
  let speedup = stats_s.Stats.busy /. stats_p.Stats.busy in
  Fmt.pr "%12s  %10s  %10s  %8s@." "mode" "busy (s)" "commits" "probes";
  Fmt.pr "%12s  %10.1f  %10d  %8d@." "serial" stats_s.Stats.busy
    stats_s.Stats.view_commits stats_s.Stats.probes;
  Fmt.pr "%12s  %10.1f  %10d  %8d@."
    (Fmt.str "parallel=%d" n_sources)
    stats_p.Stats.busy stats_p.Stats.view_commits stats_p.Stats.probes;
  Fmt.pr "@.speedup: %.2fx (extents identical)@." speedup;
  Fmt.pr
    "lineage: busy_s delta %.9f (must be 0), host CPU %+.1f%% vs obs-off \
     (%.3fs -> %.3fs)@."
    busy_delta cpu_overhead_pct cpu_off cpu_lin;
  let open Dyno_jsonv.Jsonv in
  let mode name parallel (s : Stats.t) =
    Obj
      [
        ("mode", Str name);
        ("parallel", Num (float_of_int parallel));
        ("busy_s", Num s.Stats.busy);
        ("commits", Num (float_of_int s.Stats.view_commits));
        ("probes", Num (float_of_int s.Stats.probes));
      ]
  in
  emit_json ~experiment:"overlap"
    (Arr
       [
         mode "serial" 1 stats_s;
         mode "parallel" n_sources stats_p;
         Obj [ ("speedup", Num speedup) ];
         Obj
           [
             ("lineage_busy_delta_s", Num busy_delta);
             ("lineage_cpu_overhead_pct", Num cpu_overhead_pct);
           ];
       ])

(* ------------------------------------------------------------------ *)
(* Self-maintenance: the auxiliary-view tier vs the probing SWEEP       *)
(* ------------------------------------------------------------------ *)

(* Same world and fault sweep as the transport bench, run twice per loss
   point: the probing baseline and [--self-maint].  Once the auxiliary
   projections are seeded, every DU sweep over the chain-join view is
   fully covered and answers locally, so the self-maintaining run dodges
   the probe round-trips entirely — and with them the channel's losses,
   timeouts and backoff.  Extents are asserted identical at every point
   (the tier is an optimization, never a semantic change). *)
let selfmaint_bench () =
  header
    "Self-maintenance - auxiliary-view tier vs probing SWEEP under \
     transport loss (SIMULATED seconds)";
  Fmt.pr
    "expected shape: >= 60%% of probe round-trips answered locally; busy \
     and bytes-on-wire@.drop accordingly; extents stay identical at every \
     loss rate.@.@.";
  Fmt.pr "%8s  %8s  %8s  %8s  %7s  %10s  %10s  %12s@." "loss" "probes"
    "probes'" "avoided" "pct" "busy" "busy'" "bytes saved";
  let points =
    if !fast then [ 0.0; 0.1; 0.3 ] else [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.4 ]
  in
  let n_dus = if !fast then 100 else 300 in
  let entries =
    List.map
      (fun loss ->
        let faults =
          { Dyno_net.Channel.reliable with loss; retransmit = 0.1 }
        in
        let world () =
          let timeline =
            Generator.mixed ~rows:!rows ~seed:8 ~n_dus ~du_interval:1.0
              ~sc_interval:0.0 ~sc_kinds:[] ()
          in
          Scenario.make
            Scenario.Config.(
              scenario_config () |> with_faults faults |> with_net_seed 8)
            ~timeline
        in
        let base = world () in
        let stats_b =
          Scenario.run base
            ~config:(Run_config.of_strategy Strategy.Pessimistic)
        in
        let sm = world () in
        let stats_s =
          Scenario.run sm
            ~config:
              Run_config.(
                of_strategy Strategy.Pessimistic |> with_self_maint true)
        in
        if
          not
            (Relation.equal
               (Dyno_view.Mat_view.extent base.Scenario.mv)
               (Dyno_view.Mat_view.extent sm.Scenario.mv))
        then begin
          Fmt.epr
            "selfmaint bench: extent diverged from baseline at loss %.2f@."
            loss;
          exit 1
        end;
        let converged =
          match Scenario.check_convergent sm with
          | Ok b -> b
          | Error _ -> false
        in
        let avoided = stats_s.Stats.probes_avoided in
        let pct =
          let total = stats_s.Stats.probes + avoided in
          if total = 0 then 0.0
          else 100.0 *. float_of_int avoided /. float_of_int total
        in
        Fmt.pr "%8.2f  %8d  %8d  %8d  %6.1f%%  %10.1f  %10.1f  %10d B@." loss
          stats_b.Stats.probes stats_s.Stats.probes avoided pct
          stats_b.Stats.busy stats_s.Stats.busy stats_s.Stats.bytes_saved;
        let open Dyno_jsonv.Jsonv in
        Obj
          [
            ("loss", Num loss);
            ("probes_base", Num (float_of_int stats_b.Stats.probes));
            ("probes_sm", Num (float_of_int stats_s.Stats.probes));
            ("probes_avoided", Num (float_of_int avoided));
            ("pct_avoided", Num pct);
            ("busy_base_s", Num stats_b.Stats.busy);
            ("busy_sm_s", Num stats_s.Stats.busy);
            ("bytes_saved_b", Num (float_of_int stats_s.Stats.bytes_saved));
            ("converged", Bool converged);
          ])
      points
  in
  Fmt.pr
    "@.(probes' / busy' = the --self-maint run; extents checked identical \
     at every point)@.";
  emit_json ~experiment:"selfmaint" (Dyno_jsonv.Jsonv.Arr entries)

(* ------------------------------------------------------------------ *)
(* Scale: sharded view manager, DU throughput at bounded staleness      *)
(* ------------------------------------------------------------------ *)

(* Eight single-relation sources, chain-join view, heavy-tailed
   (Zipf alpha = 0.7) per-source commit distribution, and a paced arrival
   schedule: each leg offers load at ~91% of what its hottest shard can
   sustain, so the view's staleness stays bounded (checked as a
   [view.*.staleness_s] p99 SLO) and the reported throughput is
   honest-to-goodness sustained DU/s of simulated time, not a drain rate
   with unbounded lag.  Every DU alternates insert/delete of one
   off-join-key row, so extents stay bounded across a million updates
   while each sweep still pays its 7 probe round-trips. *)
let scale_bench () =
  header
    "Scale - sharded view manager: sustained DU/s at bounded staleness \
     (SIMULATED time)";
  Fmt.pr
    "8 Zipf-weighted sources partitioned over 1/2/4/8 shards; each leg is \
     paced to ~91%%@.of its hottest shard's service rate, so throughput \
     scales as 1 / (hottest shard's@.traffic share) while staleness p99 \
     stays bounded.@.@.";
  let n_sources = 8 in
  let base_rows = 4 in
  let src i = Fmt.str "S%d" i in
  let rel i = Fmt.str "T%d" i in
  let key i = Fmt.str "K%d" i in
  let schema i =
    Schema.of_list [ Attr.int (key i); Attr.int (Fmt.str "A%d" i) ]
  in
  let query =
    Query.make ~name:"SCALE"
      ~select:
        (List.concat_map
           (fun i ->
             [
               Query.item (Fmt.str "%s.%s" (rel i) (key i));
               Query.item (Fmt.str "%s.A%d" (rel i) i);
             ])
           (List.init n_sources (fun i -> i + 1)))
      ~from:
        (List.init n_sources (fun i ->
             let i = i + 1 in
             Query.table (src i) (rel i)))
      ~where:
        (List.init (n_sources - 1) (fun i ->
             let i = i + 1 in
             Predicate.eq_attr
               (Fmt.str "%s.%s" (rel i) (key i))
               (Fmt.str "%s.%s" (rel (i + 1)) (key (i + 1)))))
  in
  let build_registry () =
    let reg = Dyno_source.Registry.create () in
    for i = 1 to n_sources do
      Dyno_source.Registry.register reg
        (Dyno_source.Data_source.create (src i));
      let s = Dyno_source.Registry.find reg (src i) in
      Dyno_source.Data_source.add_relation s (rel i) (schema i);
      Dyno_source.Data_source.load s (rel i)
        (List.init base_rows (fun k -> [ Value.int k; Value.int ((k * 3) + i) ]))
    done;
    reg
  in
  let weights = Generator.zipf ~alpha:0.7 ~n:n_sources in
  (* Deterministic heavy-tailed source stream: smooth weighted
     round-robin over the Zipf weights.  Deterministic pacing keeps the
     whole bench reproducible (stable baselines) and avoids artificial
     burst noise in the staleness tail. *)
  let source_stream () =
    let acc = Array.make n_sources 0.0 in
    fun () ->
      let best = ref 0 in
      for i = 0 to n_sources - 1 do
        acc.(i) <- acc.(i) +. weights.(i);
        if acc.(i) > acc.(!best) then best := i
      done;
      acc.(!best) <- acc.(!best) -. 1.0;
      !best
  in
  let build_timeline ~n ~horizon =
    let next = source_stream () in
    let flip = Array.make n_sources false in
    let tl = Dyno_sim.Timeline.create () in
    for j = 0 to n - 1 do
      let i = next () in
      let row = [ Value.int (100 + i); Value.int i ] in
      let mku = if flip.(i) then Update.delete else Update.insert in
      flip.(i) <- not flip.(i);
      Dyno_sim.Timeline.schedule tl
        ~time:(horizon *. float_of_int j /. float_of_int n)
        (Dyno_sim.Timeline.Du
           (mku ~source:(src (i + 1)) ~rel:(rel (i + 1))
              (schema (i + 1))
              row))
    done;
    tl
  in
  let cost =
    {
      Dyno_sim.Cost_model.default with
      query_latency = 1.0;
      row_scale = 1.0;
    }
  in
  (* Spans off (a million Maintain spans is gigabytes of retained
     records), metrics on: the staleness histograms and shard gauges are
     bounded-size. *)
  let run ~shards ~timeline =
    let reg = build_registry () in
    let srcs = List.init n_sources (fun i -> src (i + 1)) in
    let plan = Dyno_core.Shard.plan ~shards srcs in
    let ids = ref 0 in
    let umqs =
      Array.init shards (fun _ -> Dyno_view.Umq.create ~ids ())
    in
    let obs =
      {
        Dyno_obs.Obs.spans = Dyno_obs.Span.disabled;
        metrics = Dyno_obs.Metrics.create ~enabled:true ();
        series = Dyno_obs.Timeseries.disabled;
        lineage = Dyno_obs.Lineage.disabled;
      }
    in
    let trace = Dyno_sim.Trace.create ~enabled:false () in
    let engine =
      Dyno_view.Query_engine.create ~trace ~obs ~cost ~registry:reg
        ~timeline ~umq:umqs.(0) ()
    in
    if shards > 1 then
      Dyno_view.Query_engine.install_routes engine ~umqs
        ~route_of:(Dyno_core.Shard.owner plan);
    let vd =
      Dyno_view.View_def.create
        ~schemas:
          (List.init n_sources (fun i ->
               let i = i + 1 in
               (rel i, schema i)))
        query
    in
    let mv = Dyno_view.Mat_view.create vd (Relation.create Schema.empty) in
    let env (tr : Query.table_ref) =
      Dyno_source.Data_source.relation
        (Dyno_source.Registry.find reg tr.source)
        tr.rel
    in
    Dyno_view.Mat_view.replace mv ~at:0.0 ~maintained:[]
      (Eval.run
         ~planner:(Dyno_view.Query_engine.planner engine)
         ~catalog:env query);
    let mk = Dyno_source.Meta_knowledge.create () in
    let stats =
      Dyno_core.Shard_scheduler.run
        ~config:
          Run_config.(
            of_strategy Strategy.Pessimistic |> with_max_steps max_int)
        ~plan engine mv mk
    in
    (stats, Dyno_obs.Obs.metrics obs, plan)
  in
  (* Calibrate the per-DU service time (everything arrives at t = 0, one
     shard, serial drain): the pacing horizons below derive from it, so
     the bench self-adjusts if the cost model moves. *)
  let cal_n = if !fast then 200 else 500 in
  let s_du =
    let stats, _, _ = run ~shards:1 ~timeline:(build_timeline ~n:cal_n ~horizon:0.0) in
    stats.Stats.busy /. float_of_int cal_n
  in
  let n = if !fast then 20_000 else 1_000_000 in
  let slo_thresh = 25.0 *. s_du in
  let slo_spec = Fmt.str "view.SCALE.staleness_s.p99 <= %.6g" slo_thresh in
  let objective = Dyno_obs.Slo.parse_exn slo_spec in
  Fmt.pr
    "calibrated service time: %.2f simulated s/DU; %d DUs per leg; SLO: \
     %s@.@."
    s_du n slo_spec;
  (* Hottest shard's traffic share under the plan's round-robin deal. *)
  let w_max plan shards =
    let w = Array.make shards 0.0 in
    List.iteri
      (fun i s ->
        w.(Dyno_core.Shard.owner plan s) <-
          w.(Dyno_core.Shard.owner plan s) +. weights.(i))
      (List.init n_sources (fun i -> src (i + 1)));
    Array.fold_left Float.max 0.0 w
  in
  Fmt.pr "%7s  %12s  %14s  %5s  %9s  %8s  %8s@." "shards" "DU/s (sim)"
    "staleness p99" "SLO" "barriers" "speedup" "ideal";
  let legs = [ 1; 2; 4; 8 ] in
  let base_throughput = ref 0.0 in
  let entries =
    List.map
      (fun shards ->
        let wm =
          w_max (Dyno_core.Shard.plan ~shards
                   (List.init n_sources (fun i -> src (i + 1))))
            shards
        in
        let horizon = 1.1 *. float_of_int n *. s_du *. wm in
        let stats, metrics, _ =
          run ~shards ~timeline:(build_timeline ~n ~horizon)
        in
        let makespan = stats.Stats.end_time in
        let du_per_s = float_of_int n /. makespan in
        if shards = 1 then base_throughput := du_per_s;
        let p99 =
          match
            Dyno_obs.Metrics.histogram_summary metrics
              "view.SCALE.staleness_s"
          with
          | Some h -> h.Dyno_obs.Metrics.p99
          | None -> Float.nan
        in
        let verdict = Dyno_obs.Slo.eval metrics objective in
        let barriers =
          Dyno_obs.Metrics.counter_value metrics "sched.cross_shard_barriers"
        in
        let speedup = du_per_s /. !base_throughput in
        Fmt.pr "%7d  %12.1f  %12.2f s  %5s  %9d  %7.2fx  %7.2fx@." shards
          du_per_s p99
          (if verdict.Dyno_obs.Slo.pass then "ok" else "FAIL")
          barriers speedup (1.0 /. wm);
        let open Dyno_jsonv.Jsonv in
        Obj
          [
            ("shards", Num (float_of_int shards));
            ("n_dus", Num (float_of_int n));
            ("du_per_s", Num du_per_s);
            ("staleness_p99_s", Num p99);
            ("slo", Str slo_spec);
            ("slo_pass", Bool verdict.Dyno_obs.Slo.pass);
            ("cross_shard_barriers", Num (float_of_int barriers));
            ("speedup_vs_1", Num speedup);
          ])
      legs
  in
  Fmt.pr
    "@.(ideal = 1 / hottest shard's Zipf traffic share; the paced \
     horizon makes each@.leg's makespan track it, minus the drain \
     tail)@.";
  emit_json ~experiment:"scale" (Dyno_jsonv.Jsonv.Arr entries)

(* ------------------------------------------------------------------ *)
(* Multicore: local-sweep compute on worker domains (REAL wall-clock)   *)
(* ------------------------------------------------------------------ *)

(* Six single-relation sources, chain-join view over a multiplicity
   cluster: every join key appears [mult] times in every relation, so a
   one-tuple delta fans out to ~mult^(n-1) joined rows and each local
   sweep is genuinely CPU-heavy.  With self-maintenance on, every sweep
   is fully covered and runs as pure compute over immutable snapshots —
   exactly the unit [--runtime domains:N] relocates to worker domains,
   while admission, the UMQ sequencer and commits stay serial on the
   coordinator and are identical across legs.

   Unlike every other figure, the times here are HOST wall-clock
   seconds (monotonic gettimeofday): the simulated clock is asserted
   byte-identical across legs, the question is how fast the host turns
   the crank.  [domains:1] runs the same pool code path with zero
   spawned workers, so speedup_vs_1 isolates actual parallelism from
   pool bookkeeping. *)
let mcore_bench () =
  header
    "Multicore - local sweeps on worker domains (REAL wall-clock seconds)";
  Fmt.pr
    "6 single-relation sources, chain-join view, every key x%d per \
     relation: each DU's@.covered sweep joins ~mult^5 rows of pure \
     compute.  Legs rerun the identical@.workload under --runtime \
     domains:1/2/4; extents and simulated cost are asserted@.identical, \
     wall-clock is the measurement.@.@."
    (if !fast then 4 else 6);
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "host cores: %d%s@.@." cores
    (if cores < 4 then
       "  (speedup is bounded by the host; the 2.5x target applies at >= 4 \
        cores)"
     else "");
  let n_sources = 6 in
  let n_keys = 8 in
  let mult = if !fast then 4 else 6 in
  let base_rows = n_keys * mult in
  let src i = Fmt.str "S%d" i in
  let rel i = Fmt.str "T%d" i in
  let key i = Fmt.str "K%d" i in
  let schema i =
    Schema.of_list [ Attr.int (key i); Attr.int (Fmt.str "A%d" i) ]
  in
  let query =
    Query.make ~name:"MC"
      ~select:
        (List.concat_map
           (fun i ->
             [
               Query.item (Fmt.str "%s.%s" (rel i) (key i));
               Query.item (Fmt.str "%s.A%d" (rel i) i);
             ])
           (List.init n_sources (fun i -> i + 1)))
      ~from:
        (List.init n_sources (fun i ->
             let i = i + 1 in
             Query.table (src i) (rel i)))
      ~where:
        (List.init (n_sources - 1) (fun i ->
             let i = i + 1 in
             Predicate.eq_attr
               (Fmt.str "%s.%s" (rel i) (key i))
               (Fmt.str "%s.%s" (rel (i + 1)) (key (i + 1)))))
  in
  let build_registry () =
    let reg = Dyno_source.Registry.create () in
    for i = 1 to n_sources do
      Dyno_source.Registry.register reg
        (Dyno_source.Data_source.create (src i));
      let s = Dyno_source.Registry.find reg (src i) in
      Dyno_source.Data_source.add_relation s (rel i) (schema i);
      Dyno_source.Data_source.load s (rel i)
        (List.init base_rows (fun k ->
             [ Value.int (k mod n_keys); Value.int ((k * 3) + i) ]))
    done;
    reg
  in
  (* Insert/delete wave pairs: wave 2t inserts one row on the key
     cluster at every source, wave 2t+1 deletes it again, so the extent
     stays bounded while every single delta pays the full fan-out.  All
     commits land within the first second, so the UMQ always holds
     full-width antichains for [--parallel]. *)
  let n_waves = if !fast then 10 else 40 in
  let build_timeline () =
    let tl = Dyno_sim.Timeline.create () in
    for j = 0 to n_waves - 1 do
      for i = 1 to n_sources do
        let t = j / 2 in
        let row =
          [ Value.int (t mod n_keys); Value.int (100_000 + (t * 10) + i) ]
        in
        let mku = if j mod 2 = 0 then Update.insert else Update.delete in
        Dyno_sim.Timeline.schedule tl
          ~time:(0.001 *. float_of_int ((j * n_sources) + i))
          (Dyno_sim.Timeline.Du
             (mku ~source:(src i) ~rel:(rel i) (schema i) row))
      done
    done;
    tl
  in
  let cost =
    {
      Dyno_sim.Cost_model.default with
      query_latency = 1.0;
      row_scale = 1.0;
    }
  in
  let run ~runtime () =
    let reg = build_registry () in
    let umq = Dyno_view.Umq.create () in
    let trace = Dyno_sim.Trace.create ~enabled:false () in
    let engine =
      Dyno_view.Query_engine.create ~trace ~cost ~registry:reg
        ~timeline:(build_timeline ()) ~umq ()
    in
    let vd =
      Dyno_view.View_def.create
        ~schemas:
          (List.init n_sources (fun i ->
               let i = i + 1 in
               (rel i, schema i)))
        query
    in
    let mv = Dyno_view.Mat_view.create vd (Relation.create Schema.empty) in
    let env (tr : Query.table_ref) =
      Dyno_source.Data_source.relation
        (Dyno_source.Registry.find reg tr.source)
        tr.rel
    in
    Dyno_view.Mat_view.replace mv ~at:0.0 ~maintained:[]
      (Eval.run
         ~planner:(Dyno_view.Query_engine.planner engine)
         ~catalog:env query);
    let mk = Dyno_source.Meta_knowledge.create () in
    let t0 = Unix.gettimeofday () in
    let stats =
      Scheduler.run
        ~config:
          Run_config.(
            of_strategy Strategy.Pessimistic
            |> with_parallel n_sources |> with_self_maint true
            |> with_runtime runtime)
        engine mv mk
    in
    let wall = Unix.gettimeofday () -. t0 in
    (stats, wall, Dyno_view.Mat_view.extent mv)
  in
  (* Reference leg (the default backend) pins semantics and warms the
     allocator; each domains leg then reports its best of [reps] runs
     (min is the standard wall-clock noise filter). *)
  let stats_ref, _, extent_ref = run ~runtime:`Simulated () in
  let reps = if !fast then 2 else 3 in
  let measure d =
    let best = ref infinity and stats = ref stats_ref in
    let extent = ref extent_ref in
    for _ = 1 to reps do
      let s, w, e = run ~runtime:(`Domains d) () in
      if w < !best then best := w;
      stats := s;
      extent := e
    done;
    (!stats, !best, !extent)
  in
  let legs = [ 1; 2; 4 ] in
  let results =
    List.map
      (fun d ->
        let stats, wall, extent = measure d in
        if not (Relation.equal extent extent_ref) then begin
          Fmt.epr "mcore bench: extent diverged at domains:%d@." d;
          exit 1
        end;
        if Float.abs (stats.Stats.busy -. stats_ref.Stats.busy) > 1e-9 then begin
          Fmt.epr
            "mcore bench: simulated cost diverged at domains:%d (%g vs %g)@."
            d stats.Stats.busy stats_ref.Stats.busy;
          exit 1
        end;
        if stats.Stats.mcore_tasks = 0 then begin
          Fmt.epr "mcore bench: no sweep ran on the pool at domains:%d@." d;
          exit 1
        end;
        (d, stats, wall))
      legs
  in
  let wall1 =
    match results with (1, _, w) :: _ -> w | _ -> assert false
  in
  Fmt.pr "%9s  %12s  %12s  %11s  %8s@." "domains" "wall (s)" "busy (sim)"
    "pool tasks" "speedup";
  let entries =
    List.map
      (fun (d, (stats : Stats.t), wall) ->
        let speedup = wall1 /. wall in
        Fmt.pr "%9d  %12.3f  %12.1f  %11d  %7.2fx@." d wall stats.Stats.busy
          stats.Stats.mcore_tasks speedup;
        let open Dyno_jsonv.Jsonv in
        Obj
          [
            ("domains", Num (float_of_int d));
            ("host_cores", Num (float_of_int cores));
            ("wall_s", Num wall);
            ("busy_s", Num stats.Stats.busy);
            ("mcore_tasks", Num (float_of_int stats.Stats.mcore_tasks));
            ("speedup_vs_1", Num speedup);
          ])
      results
  in
  Fmt.pr
    "@.(extents and simulated busy identical across legs; domains:1 is \
     the same pool code@.path with no workers, so speedup isolates \
     parallelism from pool overhead)@.";
  (* The acceptance target is a property of parallel hardware: enforce
     it only where the host can physically express it, and only on the
     full-size run ([--fast] legs are too short for stable ratios). *)
  (if cores >= 4 && not !fast then
     let speedup4 =
       List.fold_left
         (fun acc (d, _, wall) -> if d = 4 then wall1 /. wall else acc)
         0.0 results
     in
     if speedup4 < 2.5 then begin
       Fmt.epr
         "mcore bench: speedup %.2fx at domains:4 below the 2.5x target \
          (%d-core host)@."
         speedup4 cores;
       exit 1
     end);
  emit_json ~experiment:"mcore" (Dyno_jsonv.Jsonv.Arr entries)

(* ------------------------------------------------------------------ *)
(* Regression gate: compare this run's results against a baseline file  *)
(* ------------------------------------------------------------------ *)

(* [--check BASELINE.json] compares the experiment run in this invocation
   against a committed baseline of the same shape (join / overlap / net,
   detected from the baseline's fields).  Only entries present in BOTH
   documents are compared — a [--fast] run covers a subset of the
   baseline's points — and only a change beyond [--tolerance] percent in
   the harmful direction (slower, or smaller speedup) fails.  Exit 1 on
   any regression. *)
let check_regressions () =
  let open Dyno_jsonv.Jsonv in
  let get_num k o = Option.bind (member k o) num in
  let get_str k o = Option.bind (member k o) str in
  match parse_file !check_path with
  | Error e ->
      Fmt.epr "--check: cannot read %s: %s@." !check_path e;
      exit 1
  | Ok base -> (
      let base_entries = Option.value (arr base) ~default:[] in
      let experiment =
        if List.exists (fun o -> get_num "ns_per_op" o <> None) base_entries
        then Some "join"
        else if List.exists (fun o -> get_str "mode" o <> None) base_entries
        then Some "overlap"
        else if List.exists (fun o -> get_num "du_per_s" o <> None) base_entries
        then Some "scale"
        else if List.exists (fun o -> get_num "domains" o <> None) base_entries
        then Some "mcore"
        (* selfmaint entries also carry a [loss] field — test before net *)
        else if
          List.exists (fun o -> get_num "pct_avoided" o <> None) base_entries
        then Some "selfmaint"
        else if List.exists (fun o -> get_num "loss" o <> None) base_entries
        then Some "net"
        else None
      in
      match experiment with
      | None ->
          Fmt.epr "--check: %s has no recognizable benchmark shape@."
            !check_path;
          exit 1
      | Some exp -> (
          match Hashtbl.find_opt bench_docs exp with
          | None ->
              Fmt.epr
                "--check: baseline %s is a %s document but the %s experiment \
                 did not run (use --only %s)@."
                !check_path exp exp exp;
              exit 1
          | Some cur ->
              let cur_entries = Option.value (arr cur) ~default:[] in
              let failures = ref 0 and compared = ref 0 in
              Fmt.pr "@.regression check vs %s (tolerance %.0f%%):@."
                !check_path !tolerance;
              let cmp ~label ~base_v ~cur_v ~higher_better =
                incr compared;
                let regressed =
                  base_v <> 0.0
                  &&
                  if higher_better then
                    cur_v < base_v *. (1.0 -. (!tolerance /. 100.0))
                  else cur_v > base_v *. (1.0 +. (!tolerance /. 100.0))
                in
                let delta =
                  if base_v = 0.0 then 0.0
                  else (cur_v -. base_v) /. base_v *. 100.0
                in
                Fmt.pr "  %-36s base %12.4g  now %12.4g  %+7.1f%%  %s@." label
                  base_v cur_v delta
                  (if regressed then "REGRESSION" else "ok");
                if regressed then incr failures
              in
              (* find the current entry matching a baseline entry under
                 the experiment's natural key *)
              let find keyed o = List.find_opt (keyed o) cur_entries in
              List.iter
                (fun b ->
                  match exp with
                  | "join" -> (
                      match (get_str "op" b, get_num "rows" b) with
                      | Some op, Some rows -> (
                          let same c =
                            get_str "op" c = Some op
                            && get_num "rows" c = Some rows
                          in
                          match find (fun _ -> same) b with
                          | Some c -> (
                              match
                                (get_num "ns_per_op" b, get_num "ns_per_op" c)
                              with
                              | Some bv, Some cv ->
                                  cmp
                                    ~label:(Fmt.str "%s (%.0f rows)" op rows)
                                    ~base_v:bv ~cur_v:cv ~higher_better:false
                              | _ -> ())
                          | None ->
                              Fmt.pr "  %-36s (not in this run; skipped)@."
                                (Fmt.str "%s (%.0f rows)" op rows))
                      | _ -> ())
                  | "overlap" -> (
                      match (get_str "mode" b, get_num "speedup" b) with
                      | Some m, _ -> (
                          let same c = get_str "mode" c = Some m in
                          match find (fun _ -> same) b with
                          | Some c -> (
                              match (get_num "busy_s" b, get_num "busy_s" c)
                              with
                              | Some bv, Some cv ->
                                  cmp
                                    ~label:(Fmt.str "busy_s (%s)" m)
                                    ~base_v:bv ~cur_v:cv ~higher_better:false
                              | _ -> ())
                          | None ->
                              Fmt.pr "  %-36s (not in this run; skipped)@." m)
                      | None, Some sp -> (
                          let speedup_of c = get_num "speedup" c in
                          match List.find_map speedup_of cur_entries with
                          | Some cv ->
                              cmp ~label:"speedup" ~base_v:sp ~cur_v:cv
                                ~higher_better:true
                          | None -> ())
                      | None, None -> ())
                  | "scale" -> (
                      (* throughput per shard count; an SLO flip is
                         always a failure, tolerance notwithstanding *)
                      match get_num "shards" b with
                      | Some sh -> (
                          let same c = get_num "shards" c = Some sh in
                          match find (fun _ -> same) b with
                          | Some c ->
                              (match
                                 (get_num "du_per_s" b, get_num "du_per_s" c)
                               with
                              | Some bv, Some cv ->
                                  cmp
                                    ~label:(Fmt.str "du_per_s (%.0f shards)" sh)
                                    ~base_v:bv ~cur_v:cv ~higher_better:true
                              | _ -> ());
                              if
                                member "slo_pass" b = Some (Bool true)
                                && member "slo_pass" c = Some (Bool false)
                              then begin
                                Fmt.pr
                                  "  %-36s staleness SLO now fails  \
                                   REGRESSION@."
                                  (Fmt.str "%.0f shards" sh);
                                incr failures
                              end
                          | None ->
                              Fmt.pr "  %-36s (not in this run; skipped)@."
                                (Fmt.str "%.0f shards" sh))
                      | None -> ())
                  | "mcore" -> (
                      (* wall-clock ratios (not absolute times): the
                         speedup at each domain count is portable across
                         hosts, raw wall_s is not compared *)
                      match get_num "domains" b with
                      | Some d -> (
                          let same c = get_num "domains" c = Some d in
                          match find (fun _ -> same) b with
                          | Some c -> (
                              match
                                ( get_num "speedup_vs_1" b,
                                  get_num "speedup_vs_1" c )
                              with
                              | Some bv, Some cv -> (
                                  (* a host with fewer cores than the leg's
                                     domain count cannot express the
                                     baseline's parallelism — not a
                                     regression *)
                                  match get_num "host_cores" c with
                                  | Some hc when hc < d ->
                                      Fmt.pr
                                        "  %-36s (host has %.0f cores; \
                                         skipped)@."
                                        (Fmt.str "speedup_vs_1 (domains:%.0f)"
                                           d)
                                        hc
                                  | _ ->
                                      cmp
                                        ~label:
                                          (Fmt.str "speedup_vs_1 \
                                                    (domains:%.0f)" d)
                                        ~base_v:bv ~cur_v:cv
                                        ~higher_better:true)
                              | _ -> ())
                          | None ->
                              Fmt.pr "  %-36s (not in this run; skipped)@."
                                (Fmt.str "domains:%.0f" d))
                      | None -> ())
                  | "selfmaint" -> (
                      (* probes avoided per loss point (higher is better)
                         plus the self-maintaining run's busy time; a
                         convergence flip is always a failure *)
                      match get_num "loss" b with
                      | Some loss -> (
                          let same c = get_num "loss" c = Some loss in
                          match find (fun _ -> same) b with
                          | Some c ->
                              (match
                                 ( get_num "pct_avoided" b,
                                   get_num "pct_avoided" c )
                               with
                              | Some bv, Some cv ->
                                  cmp
                                    ~label:
                                      (Fmt.str "pct_avoided (loss %.2f)" loss)
                                    ~base_v:bv ~cur_v:cv ~higher_better:true
                              | _ -> ());
                              (match
                                 (get_num "busy_sm_s" b, get_num "busy_sm_s" c)
                               with
                              | Some bv, Some cv ->
                                  cmp
                                    ~label:
                                      (Fmt.str "busy_sm_s (loss %.2f)" loss)
                                    ~base_v:bv ~cur_v:cv ~higher_better:false
                              | _ -> ());
                              if
                                member "converged" b = Some (Bool true)
                                && member "converged" c = Some (Bool false)
                              then begin
                                Fmt.pr
                                  "  %-36s no longer converges  REGRESSION@."
                                  (Fmt.str "loss %.2f" loss);
                                incr failures
                              end
                          | None ->
                              Fmt.pr "  %-36s (not in this run; skipped)@."
                                (Fmt.str "loss %.2f" loss))
                      | None -> ())
                  | _ -> (
                      (* net: busy per loss point; a convergence flip is
                         always a failure, tolerance notwithstanding *)
                      match get_num "loss" b with
                      | Some loss -> (
                          let same c = get_num "loss" c = Some loss in
                          match find (fun _ -> same) b with
                          | Some c ->
                              (match (get_num "busy_s" b, get_num "busy_s" c)
                               with
                              | Some bv, Some cv ->
                                  cmp
                                    ~label:(Fmt.str "busy_s (loss %.2f)" loss)
                                    ~base_v:bv ~cur_v:cv ~higher_better:false
                              | _ -> ());
                              if
                                member "converged" b = Some (Bool true)
                                && member "converged" c = Some (Bool false)
                              then begin
                                Fmt.pr
                                  "  %-36s no longer converges  REGRESSION@."
                                  (Fmt.str "loss %.2f" loss);
                                incr failures
                              end
                          | None ->
                              Fmt.pr "  %-36s (not in this run; skipped)@."
                                (Fmt.str "loss %.2f" loss))
                      | None -> ()))
                base_entries;
              if !compared = 0 then begin
                Fmt.epr
                  "--check: no comparable entries between %s and this run@."
                  !check_path;
                exit 1
              end;
              if !failures > 0 then begin
                Fmt.epr "@.%d regression(s) beyond %.0f%% tolerance@."
                  !failures !tolerance;
                exit 1
              end
              else Fmt.pr "@.all %d comparison(s) within tolerance@." !compared
          ))

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("ablation", ablation);
    ("sensitivity", sensitivity);
    ("micro", micro);
    ("join", join_bench);
    ("net", net_bench);
    ("overlap", overlap_bench);
    ("selfmaint", selfmaint_bench);
    ("scale", scale_bench);
    ("mcore", mcore_bench);
  ]

(* The one source of truth for what exists: both [--list] and the
   [--only] usage string derive from the [experiments] table. *)
let experiment_names = List.map fst experiments

let () =
  let list_only = ref false in
  let specs =
    [
      ("--list", Arg.Set list_only, "list the available experiments, one per line, and exit");
      ("--only", Arg.Set_string only, Fmt.str "run a single experiment (%s)" (String.concat ", " experiment_names));
      ("--rows", Arg.Set_int rows, "physical rows per relation (default 500; logical is always 100k via cost scaling)");
      ("--fast", Arg.Set fast, "fewer sweep points / smaller join sizes");
      ("--quota", Arg.Set_float quota, "bechamel quota per micro-bench, seconds (default 0.5)");
      ("--json", Arg.Set_string json_path, "write the join/net/overlap/selfmaint/scale/mcore results to this JSON file");
      ("--check", Arg.Set_string check_path, "compare this run's join/net/overlap/selfmaint/scale/mcore results against a baseline JSON file; exit 1 on regression");
      ("--tolerance", Arg.Set_float tolerance, "allowed regression for --check, percent (default 25)");
    ]
  in
  Arg.parse specs (fun _ -> ()) "dyno benchmarks";
  if !list_only then begin
    List.iter (Fmt.pr "%s@.") experiment_names;
    exit 0
  end;
  let todo =
    if !only = "" then experiments
    else
      match List.assoc_opt !only experiments with
      | Some f -> [ (!only, f) ]
      | None ->
          Fmt.epr "unknown experiment %s (try --list)@." !only;
          exit 1
  in
  Fmt.pr
    "Dyno benchmark harness - %d physical rows/relation, cost model scaled \
     to the paper's 100k.@.All figure numbers are SIMULATED seconds; micro \
     benches are real time.@."
    !rows;
  List.iter
    (fun (_, f) ->
      exp_start := Unix.gettimeofday ();
      f ())
    todo;
  if !check_path <> "" then check_regressions ()
