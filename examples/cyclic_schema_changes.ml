(* Cyclic dependencies and merged maintenance (Sections 3.5 and 5).

   Two schema changes commit back to back:
     SC1 - the XML remapping: Store & Item collapse into StoreItems;
     SC2 - the Library drops Catalog.Review.

   Processing either first produces a view definition the other has
   already invalidated (Queries (3) and (4)), so their maintenance
   processes depend on each other: a cycle — the maintenance deadlock.
   Sources cannot abort, so Dyno merges the cycle into one batch node and
   maintains it atomically; the combined synchronization yields the
   paper's Query (5):

     SELECT Store, Book, S.Author, Price, Publisher, Category,
            R.Comments AS Review
     FROM   StoreItems S, Catalog C, ReaderDigest R
     WHERE  S.Book = C.Title AND C.Title = R.Article

     dune exec examples/cyclic_schema_changes.exe *)

open Dyno_view

let () =
  Bookinfo.section "Initial BookInfo view (Query (1))";
  let w = Bookinfo.make () in
  Bookinfo.print_view w;

  Bookinfo.section "Two conflicting schema changes commit";
  Bookinfo.schedule w (Bookinfo.remapping_events w 0.0);
  Bookinfo.schedule w [ Bookinfo.drop_review_event 0.0 ];
  Query_engine.deliver_due w.Bookinfo.engine;
  Fmt.pr "%a@." Umq.pp w.Bookinfo.umq;

  Bookinfo.section "Dependency graph over the UMQ";
  let vd = Mat_view.def w.Bookinfo.mv in
  let g =
    Dyno_core.Dep_graph.build (View_def.peek vd) (View_def.schemas vd)
      (Umq.entries w.Bookinfo.umq)
  in
  Fmt.pr "%a@." Dyno_core.Dep_graph.pp g;
  Fmt.pr "unsafe dependencies: %d@."
    (Dyno_core.Dep_graph.unsafe_count g);
  let c = Dyno_core.Dep_graph.correct g in
  Fmt.pr "correction merges %d cycle(s) spanning %d update(s)@."
    c.Dyno_core.Dep_graph.merged_cycles c.Dyno_core.Dep_graph.merged_updates;

  Bookinfo.section "Dyno processes the merged batch";
  let stats = Bookinfo.run w in
  Fmt.pr "%a@." Dyno_core.Stats.pp stats;

  Bookinfo.section "Synchronized view (the paper's Query (5))";
  Bookinfo.print_view w;
  match Dyno_core.Consistency.convergent w.Bookinfo.engine w.Bookinfo.mv with
  | Ok true -> Fmt.pr "@.view converged to a full recompute: OK@."
  | Ok false -> Fmt.pr "@.view DIVERGED from a full recompute!@."
  | Error e -> Fmt.pr "@.cannot check: %s@." e
