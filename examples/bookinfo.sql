-- The paper's Example 1 as a scripted SQL session:
--   dune exec bin/dyno_cli.exe -- sql examples/bookinfo.sql
--
-- Everything before CREATE VIEW loads the sources; every statement after
-- it is an autonomous source commit that Dyno maintains the view under.

CREATE TABLE Store@Retailer (SID INT, Store VARCHAR);
CREATE TABLE Item@Retailer (SID INT, Book VARCHAR, Author VARCHAR, Price FLOAT);
CREATE TABLE Catalog@Library (Title VARCHAR, Author VARCHAR, Category VARCHAR,
                              Publisher VARCHAR, Year INT, Review VARCHAR);

INSERT INTO Store@Retailer VALUES (10, 'Amazon'), (20, 'Powells');
INSERT INTO Item@Retailer VALUES
  (10, 'Database Systems', 'Ullman', 79.99),
  (10, 'Transaction Processing', 'Gray', 120.5),
  (20, 'Database Systems', 'Ullman', 72.0);
INSERT INTO Catalog@Library VALUES
  ('Database Systems', 'Ullman', 'CS', 'Prentice Hall', 2001, 'classic'),
  ('Transaction Processing', 'Gray', 'CS', 'Morgan Kaufmann', 1992, 'definitive');

-- Query (1)
CREATE VIEW BookInfo AS
SELECT Store, Book, I.Author, Price, Publisher, Category, Review
FROM Store@Retailer AS S, Item@Retailer AS I, Catalog@Library AS C
WHERE S.SID = I.SID AND I.Book = C.Title;

-- autonomous source updates (maintained incrementally by Dyno)
INSERT INTO Catalog@Library VALUES
  ('Data Integration Guide', 'Adams', 'Engineering', 'Princeton', 2003, 'thorough');
INSERT INTO Item@Retailer VALUES (10, 'Data Integration Guide', 'Adams', 35.99);
DELETE FROM Item@Retailer VALUES (20, 'Database Systems', 'Ullman', 72.0);

-- a harmless schema change: the view manager tracks it
ALTER TABLE Catalog@Library ADD COLUMN Stock INT DEFAULT 0;
