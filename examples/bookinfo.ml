(* The paper's running example (Section 1.2, Figures 1-2): book data
   integrated from a Retailer (XML mapped into the relational tables Store
   and Item by a wrapper) and a Library catalog, materialized as the
   BookInfo view:

     CREATE VIEW BookInfo AS
     SELECT Store, Book, I.Author, Price, Publisher, Category, Review
     FROM   Store S, Item I, Catalog C
     WHERE  S.SID = I.SID AND I.Book = C.Title          -- Query (1)

   Shared by the runnable examples.  Also registers the meta knowledge the
   paper's rewritings rely on: StoreItems can replace Store & Item (the
   alternative XML-to-relational mapping of Figure 2), and
   ReaderDigest.Comments can replace Catalog.Review (Query (4)). *)

open Dyno_relational
open Dyno_view

let retailer = "Retailer"
let library = "Library"
let digest = "Digest"

let store_schema = Schema.of_list [ Attr.int "SID"; Attr.string "Store" ]

let item_schema =
  Schema.of_list
    [ Attr.int "SID"; Attr.string "Book"; Attr.string "Author"; Attr.float "Price" ]

let catalog_schema =
  Schema.of_list
    [
      Attr.string "Title";
      Attr.string "Author";
      Attr.string "Category";
      Attr.string "Publisher";
      Attr.int "Year";
      Attr.string "Review";
    ]

let storeitems_schema =
  Schema.of_list
    [ Attr.string "Store"; Attr.string "Book"; Attr.string "Author"; Attr.float "Price" ]

let readerdigest_schema =
  Schema.of_list [ Attr.string "Article"; Attr.string "Comments" ]

let v = Value.string
let i = Value.int
let f = Value.float

(* Initial contents. *)
let stores = [ [ i 10; v "Amazon" ]; [ i 20; v "Powell's" ] ]

let items =
  [
    [ i 10; v "Database Systems"; v "Ullman"; f 79.99 ];
    [ i 10; v "Transaction Processing"; v "Gray"; f 120.50 ];
    [ i 20; v "Database Systems"; v "Ullman"; f 72.00 ];
  ]

let catalog =
  [
    [ v "Database Systems"; v "Ullman"; v "CS"; v "Prentice Hall"; i 2001; v "classic" ];
    [ v "Transaction Processing"; v "Gray"; v "CS"; v "Morgan Kaufmann"; i 1992; v "definitive" ];
  ]

let readerdigest =
  [
    [ v "Database Systems"; v "a must-read" ];
    [ v "Transaction Processing"; v "encyclopedic" ];
    [ v "Data Integration Guide"; v "promising" ];
  ]

let view_query () : Query.t =
  Query.make ~name:"BookInfo"
    ~select:
      [
        Query.item "Store";
        Query.item "Book";
        Query.item "I.Author";
        Query.item "Price";
        Query.item "Publisher";
        Query.item "Category";
        Query.item "Review";
      ]
    ~from:
      [
        Query.table ~alias:"S" retailer "Store";
        Query.table ~alias:"I" retailer "Item";
        Query.table ~alias:"C" library "Catalog";
      ]
    ~where:[ Predicate.eq_attr "S.SID" "I.SID"; Predicate.eq_attr "I.Book" "C.Title" ]

let view_schemas () =
  [ ("S", store_schema); ("I", item_schema); ("C", catalog_schema) ]

type world = {
  registry : Dyno_source.Registry.t;
  mk : Dyno_source.Meta_knowledge.t;
  umq : Umq.t;
  timeline : Dyno_sim.Timeline.t;
  engine : Query_engine.t;
  mv : Mat_view.t;
  trace : Dyno_sim.Trace.t;
}

(* The current contents of Store ⋈ Item, as the alternative XML mapping
   would materialize them into the single StoreItems table. *)
let storeitems_rows registry =
  let r = Dyno_source.Registry.find registry retailer in
  let q =
    Query.make ~name:"remap"
      ~select:
        [ Query.item "Store"; Query.item "Book"; Query.item "I.Author"; Query.item "Price" ]
      ~from:[ Query.table ~alias:"S" retailer "Store"; Query.table ~alias:"I" retailer "Item" ]
      ~where:[ Predicate.eq_attr "S.SID" "I.SID" ]
  in
  let env (tr : Query.table_ref) = Dyno_source.Data_source.relation r tr.rel in
  Relation.fold
    (fun t c acc ->
      if c > 0 then List.init c (fun _ -> Array.to_list t) @ acc else acc)
    (Eval.run ~catalog:env q) []

(** Build the whole world: three sources loaded, meta knowledge, view
    materialized, engine wired to [timeline]. *)
let make ?(cost = Dyno_sim.Cost_model.free) ?(trace_enabled = true)
    ?(track_snapshots = true) ?timeline () : world =
  let timeline =
    match timeline with Some t -> t | None -> Dyno_sim.Timeline.create ()
  in
  let registry = Dyno_source.Registry.create () in
  let mk = Dyno_source.Meta_knowledge.create () in
  let add_source id rels =
    let s = Dyno_source.Data_source.create id in
    List.iter
      (fun (name, schema, rows) ->
        Dyno_source.Data_source.add_relation s name schema;
        Dyno_source.Data_source.load s name rows)
      rels;
    Dyno_source.Registry.register registry s
  in
  add_source retailer
    [ ("Store", store_schema, stores); ("Item", item_schema, items) ];
  add_source library [ ("Catalog", catalog_schema, catalog) ];
  add_source digest [ ("ReaderDigest", readerdigest_schema, readerdigest) ];
  (* Meta knowledge of Figure 2 / Query (4):
     - StoreItems subsumes Store (Store→Store) and Item (Book, Author,
       Price map through; SID is internalized by the new mapping);
     - Catalog.Review is replaceable by ReaderDigest.Comments joining
       Title = Article. *)
  Dyno_source.Meta_knowledge.add_rel_replacement mk ~source:retailer
    ~rel:"Store"
    {
      Dyno_source.Meta_knowledge.repl_source = retailer;
      repl_rel = "StoreItems";
      covers =
        [
          ("Store", [ ("Store", "Store") ]);
          ("Item", [ ("Book", "Book"); ("Author", "Author"); ("Price", "Price") ]);
        ];
    };
  Dyno_source.Meta_knowledge.add_attr_replacement mk ~source:library
    ~rel:"Catalog" ~attr:"Review"
    {
      Dyno_source.Meta_knowledge.new_source = digest;
      new_rel = "ReaderDigest";
      new_attr = "Comments";
      join_on = [ ("Title", "Article") ];
      via_alias = Some "R";
    };
  let umq = Umq.create () in
  let trace = Dyno_sim.Trace.create ~enabled:trace_enabled () in
  let engine = Query_engine.create ~trace ~cost ~registry ~timeline ~umq () in
  let vd = View_def.create ~schemas:(view_schemas ()) (view_query ()) in
  let mv = Mat_view.create ~track_snapshots vd (Relation.create Schema.empty) in
  let env (tr : Query.table_ref) =
    Dyno_source.Data_source.relation
      (Dyno_source.Registry.find registry tr.source)
      tr.rel
  in
  Mat_view.replace mv ~at:0.0 ~maintained:[] (Eval.run ~catalog:env (view_query ()));
  { registry; mk; umq; timeline; engine; mv; trace }

(* The schema changes of Example 1.b / Figure 2: the designer retunes the
   XML-to-relational mapping — StoreItems appears (populated with the
   joined contents), then Store and Item disappear. *)
let remapping_events w at =
  let rows = storeitems_rows w.registry in
  [
    ( at,
      Dyno_sim.Timeline.Sc
        (Schema_change.Add_relation
           { source = retailer; name = "StoreItems"; schema = storeitems_schema }) );
    ( at,
      Dyno_sim.Timeline.Du
        (Update.make ~source:retailer ~rel:"StoreItems"
           (Relation.of_list storeitems_schema rows)) );
    ( at,
      Dyno_sim.Timeline.Sc
        (Schema_change.Drop_relation { source = retailer; name = "Store" }) );
    ( at,
      Dyno_sim.Timeline.Sc
        (Schema_change.Drop_relation { source = retailer; name = "Item" }) );
  ]

let drop_review_event at =
  ( at,
    Dyno_sim.Timeline.Sc
      (Schema_change.Drop_attribute
         { source = library; rel = "Catalog"; attr = "Review" }) )

let schedule w events =
  List.iter (fun (time, ev) -> Dyno_sim.Timeline.schedule w.timeline ~time ev) events

let run ?(strategy = Dyno_core.Strategy.Pessimistic) ?(compensate = true) w =
  Dyno_core.Scheduler.run
    ~config:
      {
        Dyno_core.Scheduler.strategy;
        max_steps = 100_000;
        compensate;
        vm_mode = Dyno_core.Scheduler.Incremental;
        du_group = 1;
        parallel = 1;
        self_maint = false;
        runtime = `Simulated;
      }
    w.engine w.mv w.mk

let print_view w =
  Fmt.pr "%a@.%a@." Sql.pp_view
    (View_def.peek (Mat_view.def w.mv))
    Sql.pp_relation_table (Mat_view.extent w.mv)

let section title = Fmt.pr "@.=== %s ===@." title
