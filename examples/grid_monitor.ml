(* A Data-Grid style integration (the motivating environment of Section 1):
   six relations across three autonomous source servers, a 24-attribute
   materialized join view, and a mixed stream of data updates and schema
   changes.  Runs the same workload under each concurrency strategy and
   compares cost, aborts and consistency.

     dune exec examples/grid_monitor.exe *)

open Dyno_workload
open Dyno_core

let rows = 100

let workload () =
  Generator.mixed ~rows ~seed:2026 ~n_dus:80 ~du_interval:1.0 ~sc_start:2.0
    ~sc_interval:12.0
    ~sc_kinds:
      [
        Generator.Drop_attr;
        Generator.Rename_rel;
        Generator.Rename_attr;
        Generator.Rename_rel;
        Generator.Add_attr;
        Generator.Rename_rel;
      ]
    ()

let () =
  Fmt.pr
    "Grid monitor: 3 autonomous sources x 2 relations, 80 DUs trickling at \
     1/s,@.6 schema changes every 12 s.  Simulated costs; same workload per \
     strategy.@.";
  Fmt.pr "@.%12s  %9s  %9s  %7s  %7s  %8s  %7s  %11s  %7s@." "strategy"
    "cost(s)" "abort(s)" "aborts" "merges" "batches" "commits" "convergent"
    "strong";
  let observed = ref None in
  List.iter
    (fun strategy ->
      let obs = Dyno_obs.Obs.create () in
      let t =
        Scenario.make
          Scenario.Config.(
            default |> with_rows rows
            |> with_cost
                 { Dyno_sim.Cost_model.default with row_scale = 1000.0 }
            |> with_snapshots true |> with_obs obs)
          ~timeline:(workload ())
      in
      let s = Scenario.run t ~config:(Run_config.of_strategy strategy) in
      if strategy = Strategy.Pessimistic then observed := Some obs;
      let convergent =
        match Scenario.check_convergent t with
        | Ok b -> string_of_bool b
        | Error _ -> "n/a"
      in
      let strong =
        Consistency.ok (Scenario.check_strong t) |> string_of_bool
      in
      Fmt.pr "%12s  %9.1f  %9.1f  %7d  %7d  %8d  %7d  %11s  %7s@."
        (Strategy.to_string strategy)
        s.Stats.busy s.Stats.abort_cost s.Stats.aborts s.Stats.merges
        s.Stats.batches s.Stats.view_commits convergent strong)
    Strategy.all;
  Fmt.pr
    "@.Notes: merge-all trades intermediate view states (fewer commits) for \
     simplicity;@.Dyno's cycle-granular merging keeps the view as fresh as \
     the dependencies allow.@.";
  (* Where did the pessimistic run's time go?  The span recorder knows,
     independently of the Stats accounting. *)
  match !observed with
  | None -> ()
  | Some obs ->
      Fmt.pr "@.Per-phase cost split of the pessimistic run (from spans):@.";
      Fmt.pr "%a@."
        Dyno_obs.Export.pp_breakdown
        (Dyno_obs.Export.breakdown (Dyno_obs.Obs.spans obs));
      Fmt.pr "@.Latency metrics:@.%a@." Dyno_obs.Metrics.pp
        (Dyno_obs.Obs.metrics obs);
      (* How stale did the view run during maintenance?  The freshness
         tracker fed per-view histograms (in simulated seconds and in
         source versions outstanding); read them back as a table and
         check a couple of SLOs against them. *)
      let mx = Dyno_obs.Obs.metrics obs in
      Fmt.pr "@.Per-view staleness (pessimistic run):@.";
      Fmt.pr "  %-8s %-9s %9s %9s %9s %9s %6s@." "view" "unit" "p50" "p90"
        "p99" "max" "n";
      Dyno_obs.Metrics.fold mx
        (fun () name m ->
          match m with
          | Dyno_obs.Metrics.Histogram _
            when String.length name > 17
                 && String.sub name 0 5 = "view."
                 && Filename.check_suffix name ".staleness_s" -> (
              let v = String.sub name 5 (String.length name - 17) in
              let row unit s =
                Fmt.pr "  %-8s %-9s %9.3f %9.3f %9.3f %9.3f %6d@." v unit
                  s.Dyno_obs.Metrics.p50 s.Dyno_obs.Metrics.p90
                  s.Dyno_obs.Metrics.p99 s.Dyno_obs.Metrics.max
                  s.Dyno_obs.Metrics.count
              in
              (match Dyno_obs.Metrics.histogram_summary mx name with
              | Some s -> row "seconds" s
              | None -> ());
              match
                Dyno_obs.Metrics.histogram_summary mx
                  (Fmt.str "view.%s.staleness_versions" v)
              with
              | Some s -> row "versions" s
              | None -> ())
          | _ -> ())
        ();
      Fmt.pr "@.SLO verdicts:@.";
      let slos =
        List.map Dyno_obs.Slo.parse_exn
          [
            "staleness.p50 <= 60";
            "staleness_versions.max <= 100";
            "stall_ratio <= 0.5";
          ]
      in
      List.iter
        (fun v -> Fmt.pr "  %a@." Dyno_obs.Slo.pp_verdict v)
        (Dyno_obs.Slo.eval_all mx slos)
