(* The Retailer of the paper's Figure 1, document-backed: XML store
   documents are mapped to relational tables by a wrapper; the designer
   then retunes the mapping to the single-table design of Figure 2 while
   updates are in flight — the broken-query anomaly of Example 1.b — and
   Dyno corrects it, rewriting the view onto StoreItems.

     dune exec examples/xml_retailer.exe *)

open Dyno_relational
open Dyno_source
open Dyno_view

let docs =
  [
    Xml_wrapper.store_doc ~name:"Amazon"
      ~books:
        [
          ("Database Systems", "Ullman", 79.99);
          ("Transaction Processing", "Gray", 120.5);
        ];
    Xml_wrapper.store_doc ~name:"Powells"
      ~books:[ ("Database Systems", "Ullman", 72.0) ];
  ]

let () =
  Bookinfo.section "The Retailer's native documents";
  List.iter (fun d -> Fmt.pr "%a@." Document.pp d) docs;

  Bookinfo.section "Mapping A (Figure 1): Store + Item";
  List.iter
    (fun (rel, r) -> Fmt.pr "%s:@.%a@." rel Sql.pp_relation_table r)
    (Xml_wrapper.extract Xml_wrapper.retailer_two_tables docs);

  Bookinfo.section "Mapping B (Figure 2): StoreItems";
  List.iter
    (fun (rel, r) -> Fmt.pr "%s:@.%a@." rel Sql.pp_relation_table r)
    (Xml_wrapper.extract Xml_wrapper.retailer_single_table docs);

  Bookinfo.section "A live world on mapping A";
  let retailer = Data_source.create "Retailer" in
  Xml_wrapper.install Xml_wrapper.retailer_two_tables retailer docs;
  let catalog_schema =
    Schema.of_list
      [ Attr.string "Title"; Attr.string "Publisher"; Attr.string "Review" ]
  in
  let library = Data_source.create "Library" in
  Data_source.add_relation library "Catalog" catalog_schema;
  Data_source.load library "Catalog"
    [
      [ Value.string "Database Systems"; Value.string "Prentice Hall";
        Value.string "classic" ];
      [ Value.string "Transaction Processing"; Value.string "Morgan Kaufmann";
        Value.string "definitive" ];
    ];
  let registry = Registry.create () in
  Registry.register registry retailer;
  Registry.register registry library;
  let mk = Meta_knowledge.create () in
  Meta_knowledge.add_rel_replacement mk ~source:"Retailer" ~rel:"Store"
    {
      Meta_knowledge.repl_source = "Retailer";
      repl_rel = "StoreItems";
      covers =
        [
          ("Store", [ ("Store", "Store") ]);
          ("Item", [ ("Book", "Book"); ("Author", "Author"); ("Price", "Price") ]);
        ];
    };
  let view =
    Query.make ~name:"BookInfo"
      ~select:
        [
          Query.item "Store"; Query.item "Book"; Query.item "I.Author";
          Query.item "Price"; Query.item "Publisher"; Query.item "Review";
        ]
      ~from:
        [
          Query.table ~alias:"S" "Retailer" "Store";
          Query.table ~alias:"I" "Retailer" "Item";
          Query.table ~alias:"C" "Library" "Catalog";
        ]
      ~where:
        [ Predicate.eq_attr "S.SID" "I.SID"; Predicate.eq_attr "I.Book" "C.Title" ]
  in
  let schemas =
    [
      ("S", Catalog.schema_of (Data_source.catalog retailer) "Store");
      ("I", Catalog.schema_of (Data_source.catalog retailer) "Item");
      ("C", catalog_schema);
    ]
  in
  let umq = Umq.create () in
  let timeline = Dyno_sim.Timeline.create () in
  let trace = Dyno_sim.Trace.create () in
  let engine =
    Query_engine.create ~trace
      ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
      ~registry ~timeline ~umq ()
  in
  let vd = View_def.create ~schemas view in
  let mv = Mat_view.create vd (Relation.create Schema.empty) in
  let env (tr : Query.table_ref) =
    Data_source.relation (Registry.find registry tr.source) tr.rel
  in
  Mat_view.replace mv ~at:0.0 ~maintained:[] (Eval.run ~catalog:env view);
  Fmt.pr "%a@.%a@." Sql.pp_view view Sql.pp_relation_table (Mat_view.extent mv);

  Bookinfo.section "Documents change + the mapping is retuned mid-flight";
  (* a new book appears in the Amazon document… *)
  let docs' =
    Xml_wrapper.store_doc ~name:"Amazon"
      ~books:
        [
          ("Database Systems", "Ullman", 79.99);
          ("Transaction Processing", "Gray", 120.5);
          ("Data Integration Guide", "Adams", 35.99);
        ]
    :: List.tl docs
  in
  List.iter
    (fun (time, ev) -> Dyno_sim.Timeline.schedule timeline ~time ev)
    (Xml_wrapper.diff_events ~source:"Retailer" Xml_wrapper.retailer_two_tables
       ~old_roots:docs ~new_roots:docs' ~time:0.0);
  (* …and moments later the designer switches to mapping B *)
  List.iter
    (fun (time, ev) -> Dyno_sim.Timeline.schedule timeline ~time ev)
    (Xml_wrapper.remap_events ~source:"Retailer"
       ~old_mapping:Xml_wrapper.retailer_two_tables
       ~new_mapping:Xml_wrapper.retailer_single_table ~roots:docs' ~time:0.02);
  let stats = Dyno_core.Scheduler.run engine mv mk in
  Fmt.pr "%a@." Dyno_core.Stats.pp stats;
  List.iter
    (fun (e : Dyno_sim.Trace.entry) ->
      match e.kind with
      | Dyno_sim.Trace.Broken_query | Dyno_sim.Trace.Abort | Dyno_sim.Trace.Merge
      | Dyno_sim.Trace.Sync ->
          Fmt.pr "  trace: %a@." Dyno_sim.Trace.pp_entry e
      | _ -> ())
    (Dyno_sim.Trace.entries trace);

  Bookinfo.section "The view after Dyno's correction (Query (3))";
  Fmt.pr "%a@.%a@." Sql.pp_view
    (View_def.peek (Mat_view.def mv))
    Sql.pp_relation_table (Mat_view.extent mv);
  match Dyno_core.Consistency.convergent engine mv with
  | Ok b -> Fmt.pr "@.convergent: %b@." b
  | Error e -> Fmt.pr "@.not checkable: %s@." e
