(* json_check — validate that a file is well-formed JSON (or JSONL).

     json_check FILE...          every file must be one JSON document
     json_check --jsonl FILE...  every non-empty line must be one

   Exit 0 when everything parses, 1 otherwise.  Used by CI to gate the
   benchmark/exporter JSON artifacts without a JSON library in the
   dependency cone. *)

let () =
  let jsonl = ref false in
  let files = ref [] in
  let specs =
    [ ("--jsonl", Arg.Set jsonl, "treat each non-empty line as one JSON document") ]
  in
  Arg.parse specs (fun f -> files := f :: !files) "json_check [--jsonl] FILE...";
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline "json_check: no files given";
    exit 1
  end;
  let read path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let bad = ref 0 in
  List.iter
    (fun path ->
      match read path with
      | exception Sys_error e ->
          Printf.eprintf "json_check: %s\n" e;
          incr bad
      | contents ->
          if !jsonl then
            String.split_on_char '\n' contents
            |> List.iteri (fun i line ->
                   if line <> "" then
                     match Dyno_jsonv.Jsonv.check line with
                     | Ok () -> ()
                     | Error e ->
                         Printf.eprintf "%s:%d: invalid JSON: %s\n" path
                           (i + 1) e;
                         incr bad)
          else begin
            match Dyno_jsonv.Jsonv.check contents with
            | Ok () -> ()
            | Error e ->
                Printf.eprintf "%s: invalid JSON: %s\n" path e;
                incr bad
          end)
    files;
  if !bad > 0 then exit 1;
  Printf.printf "json_check: %d file(s) OK\n" (List.length files)
