(* dyno — command-line driver for the Dyno view-maintenance simulator.

   Subcommands:
     run      simulate a mixed DU/SC workload over the paper's 6-relation
              schema under a chosen concurrency strategy
     inspect  print the dependency graph + corrected legal order for a
              workload, without running maintenance
     demo     the BookInfo walk-through is available as example binaries;
              this points at them

   Examples:
     dyno run --strategy pessimistic --dus 200 --scs 10 --sc-interval 9
     dyno run --strategy optimistic --dus 50 --scs 5 --trace
     dyno inspect --dus 8 --scs 3 *)

open Cmdliner
open Dyno_workload
open Dyno_core

(* ---- shared options ------------------------------------------------ *)

let rows =
  let doc = "Physical tuples per relation (cost model scales to 100k)." in
  Arg.(value & opt int 200 & info [ "rows" ] ~docv:"N" ~doc)

let dus =
  let doc = "Number of data updates." in
  Arg.(value & opt int 100 & info [ "dus" ] ~docv:"N" ~doc)

let scs =
  let doc = "Number of schema changes (1 drop-attribute + renames)." in
  Arg.(value & opt int 5 & info [ "scs" ] ~docv:"N" ~doc)

let du_interval =
  let doc = "Seconds between data-update commits." in
  Arg.(value & opt float 1.0 & info [ "du-interval" ] ~docv:"S" ~doc)

let sc_interval =
  let doc = "Seconds between schema-change commits." in
  Arg.(value & opt float 10.0 & info [ "sc-interval" ] ~docv:"S" ~doc)

let seed =
  let doc = "Workload random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let strategy =
  let parse s =
    match Strategy.of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg (Fmt.str "unknown strategy %S" s))
  in
  let strategy_conv = Arg.conv ~docv:"STRATEGY" (parse, Strategy.pp) in
  let doc = "Concurrency strategy: pessimistic | optimistic | merge-all." in
  Arg.(
    value & opt strategy_conv Strategy.Pessimistic & info [ "strategy"; "s" ] ~doc)

let trace_flag =
  let doc = "Print the full execution trace." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let no_compensation =
  let doc = "Disable SWEEP compensation (demonstrates duplication anomalies)." in
  Arg.(value & flag & info [ "no-compensation" ] ~doc)

let report_flag =
  let doc = "Print a cost-breakdown report derived from the trace." in
  Arg.(value & flag & info [ "report" ] ~doc)

(* ---- transport-fault options --------------------------------------- *)

let loss =
  let doc = "P[one update-message transmission is lost] (retransmitted)." in
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc)

let dup =
  let doc = "P[an update message is delivered twice]." in
  Arg.(value & opt float 0.0 & info [ "dup" ] ~docv:"P" ~doc)

let reorder =
  let doc = "P[an update message is held back past its successors]." in
  Arg.(value & opt float 0.0 & info [ "reorder" ] ~docv:"P" ~doc)

let jitter =
  let doc = "Max extra uniform delivery delay per message, seconds." in
  Arg.(value & opt float 0.0 & info [ "jitter" ] ~docv:"S" ~doc)

let reorder_delay =
  let doc =
    "How long a held-back message is delayed, seconds (it overtakes      nothing unless this exceeds the update interval)."
  in
  Arg.(value & opt float 1.5 & info [ "reorder-delay" ] ~docv:"S" ~doc)

let outages =
  let parse s =
    match String.split_on_char ':' s with
    | [ src; start; dur ] -> (
        match (float_of_string_opt start, float_of_string_opt dur) with
        | Some st, Some d when d > 0.0 ->
            Ok
              {
                Dyno_net.Channel.source = src;
                starts = st;
                ends = st +. d;
              }
        | _ -> Error (`Msg (Fmt.str "bad outage %S (want SRC:START:DUR)" s)))
    | _ -> Error (`Msg (Fmt.str "bad outage %S (want SRC:START:DUR)" s))
  in
  let pp_outage ppf (o : Dyno_net.Channel.outage) =
    Fmt.pf ppf "%s:%g:%g" o.source o.starts (o.ends -. o.starts)
  in
  let outage_conv = Arg.conv ~docv:"SRC:START:DUR" (parse, pp_outage) in
  let doc =
    "Make source $(i,SRC) unreachable from $(i,START) for $(i,DUR)      simulated seconds (repeatable)."
  in
  Arg.(
    value
    & opt_all outage_conv []
    & info [ "outage" ] ~docv:"SRC:START:DUR" ~doc)

let net_seed =
  let doc =
    "Transport-channel random seed (defaults to the workload seed)."
  in
  Arg.(value & opt (some int) None & info [ "net-seed" ] ~docv:"SEED" ~doc)

let json_file =
  let doc = "Write the run statistics as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let trace_out =
  let doc =
    "Record spans and write them as Chrome trace-event JSON to $(docv) \
     (load in ui.perfetto.dev or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Record metrics (counters, gauges, latency histograms) and write them \
     as JSON to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let lineage_out =
  let doc =
    "Write per-update causal lineage (commit → channel → sequencer → \
     queue → dispatch → probes → terminal, with per-segment charged \
     durations) as JSON-lines to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "lineage-out" ] ~docv:"FILE" ~doc)

let no_lineage =
  let doc =
    "Disable per-update lineage recording while keeping the rest of the \
     observability stack on (lineage-off runs are byte-identical; used \
     for overhead measurement)."
  in
  Arg.(value & flag & info [ "no-lineage" ] ~doc)

let critical_path_flag =
  let doc =
    "Print the critical-path table: commit→terminal staleness decomposed \
     into channel / hold / queue / barrier / probe / compute segments."
  in
  Arg.(value & flag & info [ "critical-path" ] ~doc)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

(* ---- telemetry options ---------------------------------------------- *)

let sample_interval =
  let doc =
    "Telemetry sampling interval in simulated seconds: snapshot queue \
     depth, in-flight work, commit/apply frontiers and view staleness \
     into a ring-buffered time series at most once per $(docv)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "sample-interval" ] ~docv:"S" ~doc)

let series_out =
  let doc = "Write the sampled time series as JSON-lines to $(docv)." in
  Arg.(value & opt (some string) None & info [ "series-out" ] ~docv:"FILE" ~doc)

let openmetrics_out =
  let doc =
    "Write the metrics registry in OpenMetrics/Prometheus text exposition \
     to $(docv)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "openmetrics-out" ] ~docv:"FILE" ~doc)

let slo_specs =
  let parse s =
    match Dyno_obs.Slo.parse s with
    | Ok o -> Ok o
    | Error e -> Error (`Msg e)
  in
  let slo_conv = Arg.conv ~docv:"SPEC" (parse, Dyno_obs.Slo.pp_objective) in
  let doc =
    "Service-level objective over the end-of-run metrics, e.g. \
     'staleness.p99 <= 30' or 'stall_ratio <= 0.2' (repeatable)."
  in
  Arg.(value & opt_all slo_conv [] & info [ "slo" ] ~docv:"SPEC" ~doc)

let slo_exit =
  let doc = "Exit with status 3 when any $(b,--slo) objective fails." in
  Arg.(value & flag & info [ "slo-exit" ] ~doc)

let watch_flag =
  let doc =
    "Live telemetry: redraw an ANSI table of every sampled series at each \
     sampling instant (implies sampling; default interval 1 s)."
  in
  Arg.(value & flag & info [ "watch" ] ~doc)

(* Sampling is on iff requested explicitly or implied by an output that
   needs it. *)
let effective_interval ~sample_interval ~series_out ~watch =
  match sample_interval with
  | Some _ -> sample_interval
  | None -> if series_out <> None || watch then Some 1.0 else None

let install_watch series =
  if Dyno_obs.Timeseries.enabled series then
    Dyno_obs.Timeseries.on_sample series (fun s ->
        Fmt.pr "\027[2J\027[H";
        Fmt.pr "dyno telemetry — t = %.3f s (simulated)@."
          s.Dyno_obs.Timeseries.at;
        Fmt.pr "%-40s %14s@." "series" "value";
        Fmt.pr "%s@." (String.make 55 '-');
        List.iter
          (fun (n, v) -> Fmt.pr "%-40s %14.6g@." n v)
          s.Dyno_obs.Timeseries.values;
        Fmt.pr "@?")

let write_series series = function
  | None -> ()
  | Some f ->
      write_file f (String.trim (Dyno_obs.Timeseries.to_jsonl series));
      Fmt.pr "time series written to %s (%d samples, %d dropped)@." f
        (Dyno_obs.Timeseries.length series)
        (Dyno_obs.Timeseries.dropped series)

let write_openmetrics mx = function
  | None -> ()
  | Some f ->
      write_file f (String.trim (Dyno_obs.Export.openmetrics mx));
      Fmt.pr "openmetrics written to %s@." f

(* Per-view staleness summary derived from the [view.<v>.staleness_*]
   histograms the freshness tracker records at every apply. *)
let staleness_section mx =
  let open Dyno_obs in
  let views =
    Metrics.fold mx
      (fun acc name m ->
        match m with
        | Metrics.Histogram _
          when String.length name > 17
               && String.sub name 0 5 = "view."
               && Filename.check_suffix name ".staleness_s" ->
            String.sub name 5 (String.length name - 17) :: acc
        | _ -> acc)
      []
    |> List.rev
  in
  if views <> [] then begin
    Fmt.pr "@.staleness (view lag behind the sources' commit frontier):@.";
    Fmt.pr "  %-12s %-9s %9s %9s %9s %9s %7s@." "view" "" "p50" "p90" "p99"
      "max" "n";
    List.iter
      (fun v ->
        (match
           Metrics.histogram_summary mx (Fmt.str "view.%s.staleness_s" v)
         with
        | Some s ->
            Fmt.pr "  %-12s %-9s %9.3f %9.3f %9.3f %9.3f %7d@." v "seconds"
              s.Metrics.p50 s.Metrics.p90 s.Metrics.p99 s.Metrics.max
              s.Metrics.count
        | None -> ());
        match
          Metrics.histogram_summary mx (Fmt.str "view.%s.staleness_versions" v)
        with
        | Some s ->
            Fmt.pr "  %-12s %-9s %9.0f %9.0f %9.0f %9.0f %7d@." "" "versions"
              s.Metrics.p50 s.Metrics.p90 s.Metrics.p99 s.Metrics.max
              s.Metrics.count
        | None -> ())
      views
  end

(* Critical-path table: the lineage per-segment histograms decompose each
   update's commit-to-terminal elapsed time; the quantiles show where the
   population loses its time. *)
let critical_path_section mx =
  let open Dyno_obs in
  match Metrics.histogram_summary mx "lineage.total_s" with
  | None ->
      Fmt.pr
        "@.critical path: no lineage data (lineage disabled or no update \
         reached a terminal state)@."
  | Some tot ->
      Fmt.pr
        "@.critical path (commit→terminal elapsed, decomposed by \
         segment):@.";
      Fmt.pr "  %-10s %9s %9s %9s %9s %7s@." "segment" "p50" "p90" "p99"
        "max" "n";
      List.iter
        (fun seg ->
          let name = Lineage.segment_name seg in
          match
            Metrics.histogram_summary mx (Fmt.str "lineage.%s_s" name)
          with
          | Some s ->
              Fmt.pr "  %-10s %9.3f %9.3f %9.3f %9.3f %7d@." name
                s.Metrics.p50 s.Metrics.p90 s.Metrics.p99 s.Metrics.max
                s.Metrics.count
          | None -> ())
        Lineage.all_segments;
      Fmt.pr "  %-10s %9.3f %9.3f %9.3f %9.3f %7d@." "total" tot.Metrics.p50
        tot.Metrics.p90 tot.Metrics.p99 tot.Metrics.max tot.Metrics.count

(* Per-shard busy/barrier rows, printed only for sharded runs. *)
let shard_section mx =
  let open Dyno_obs in
  let shards = int_of_float (Metrics.gauge_value mx "sched.shards") in
  if shards > 1 then begin
    Fmt.pr "@.shards (%d, schema changes serialize at the barrier):@."
      shards;
    Fmt.pr "  %-8s %12s@." "shard" "busy_s";
    for i = 0 to shards - 1 do
      Fmt.pr "  %-8d %12.3f@." i
        (Metrics.gauge_value mx (Fmt.str "shard.%d.busy_s" i))
    done;
    Fmt.pr "  cross-shard barriers: %d@."
      (Metrics.counter_value mx "sched.cross_shard_barriers")
  end

let sparkline values =
  let glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
  let hi = List.fold_left Float.max 0.0 values in
  values
  |> List.map (fun v ->
         if hi <= 0.0 || v <= 0.0 then " "
         else glyphs.(min 7 (int_of_float (v /. hi *. 7.99))))
  |> String.concat ""

(* Sampled-series sparklines: the run's staleness and queue depth over
   simulated time, compressed to one terminal row each. *)
let timeline_section series =
  let open Dyno_obs in
  let samples = Timeseries.samples series in
  if samples <> [] then begin
    let last_at = (List.nth samples (List.length samples - 1)).Timeseries.at in
    Fmt.pr "@.timeline (%d samples over %.3g s, ≥ %.3g s apart):@."
      (List.length samples) last_at (Timeseries.interval series);
    List.iter
      (fun name ->
        let vs =
          List.filter_map
            (fun s -> List.assoc_opt name s.Timeseries.values)
            samples
        in
        if vs <> [] then begin
          (* keep the last 72 points — one glyph per sample *)
          let n = List.length vs in
          let vs =
            if n <= 72 then vs else List.filteri (fun i _ -> i >= n - 72) vs
          in
          Fmt.pr "  %-22s |%s| max %.4g@." name (sparkline vs)
            (List.fold_left Float.max 0.0 vs)
        end)
      [ "staleness_s"; "staleness_versions"; "umq.depth"; "sched.busy_ratio" ]
  end

(* Evaluate the [--slo] objectives; returns whether all pass. *)
let slo_section mx slos =
  if slos = [] then true
  else begin
    let verdicts = Dyno_obs.Slo.eval_all mx slos in
    Fmt.pr "@.SLOs:@.";
    List.iter (fun v -> Fmt.pr "  %a@." Dyno_obs.Slo.pp_verdict v) verdicts;
    Dyno_obs.Slo.all_pass verdicts
  end

let faults_of ~cost ~loss ~dup ~reorder ~jitter ~reorder_delay ~outages :
    Dyno_net.Channel.faults =
  {
    Dyno_net.Channel.reliable with
    loss;
    dup;
    reorder;
    jitter;
    reorder_delay = (if reorder > 0.0 then reorder_delay else 0.0);
    retransmit = cost.Dyno_sim.Cost_model.retransmit_interval;
    outages;
  }

let multi_flag =
  let doc =
    "Maintain a second, narrower view (R1 join R2) alongside the full \
     24-attribute view with the multi-view scheduler."
  in
  Arg.(value & flag & info [ "multi" ] ~doc)

let parallel_arg =
  let doc =
    "Dependency-parallel maintenance: overlap the probe round trips of up \
     to $(docv) mutually independent queued updates (with --multi: of the \
     per-view sweeps of the head update).  1 is the strictly serial \
     scheduler, bit-identical to the classic loop."
  in
  Arg.(value & opt int 1 & info [ "parallel" ] ~docv:"N" ~doc)

let self_maint_flag =
  let doc =
    "Self-maintenance tier: keep incrementally-maintained auxiliary \
     projections of every join partner at the view manager (fed for free \
     from the delivered update stream) and answer fully-covered \
     maintenance sweeps locally, skipping their probe round trips.  Any \
     coverage miss, stale projection or queued schema change falls back \
     to the probing SWEEP path unchanged."
  in
  Arg.(value & flag & info [ "self-maint" ] ~doc)

let shards_arg =
  let doc =
    "Shard the view manager across $(docv) partitions of the sources,      each shard owning its own update queue, transport channel and      exactly-once sequencer.  Shard-local data updates drain      independently; schema changes serialize at a cross-shard barrier.       1 is the classic single view manager."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let runtime_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "simulated" -> Ok `Simulated
    | s -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "domains" -> (
            let n = String.sub s (i + 1) (String.length s - i - 1) in
            match int_of_string_opt n with
            | Some d when d >= 1 -> Ok (`Domains d)
            | _ -> Error (`Msg (Fmt.str "invalid domain count %S" n)))
        | _ ->
            Error
              (`Msg
                 (Fmt.str
                    "unknown runtime %S (expected 'simulated' or 'domains:N')"
                    s)))
  in
  let print ppf = function
    | `Simulated -> Fmt.string ppf "simulated"
    | `Domains d -> Fmt.pf ppf "domains:%d" d
  in
  Arg.conv (parse, print)

let runtime_arg =
  let doc =
    "Execution backend: 'simulated' (default; the single-threaded \
     cooperative executor, byte-identical to historical runs) or \
     'domains:N' (evaluate fully-covered local maintenance sweeps on N \
     OCaml 5 worker domains; admission, sequencing, commits and the \
     simulated clock stay on the coordinator, so the final extent and \
     consistency verdicts are unchanged).  Only compute the \
     self-maintenance tier answers locally parallelizes — combine with \
     --self-maint and --parallel."
  in
  Arg.(
    value
    & opt runtime_conv `Simulated
    & info [ "runtime" ] ~docv:"RUNTIME" ~doc)

(* The one place CLI flags turn into the shared scheduler run record. *)
let run_config_of ~strategy ~no_compensation ~parallel ~self_maint ~runtime =
  Run_config.(
    of_strategy strategy
    |> with_compensate (not no_compensation)
    |> with_parallel parallel
    |> with_self_maint self_maint
    |> with_runtime runtime)

(* ...and the one place they turn into the world-construction record. *)
let scenario_config_of ~rows ~cost ~trace ~faults ~net_seed ~obs ~shards =
  Scenario.Config.(
    default |> with_rows rows |> with_cost cost |> with_snapshots true
    |> with_trace trace |> with_faults faults |> with_net_seed net_seed
    |> with_obs obs |> with_shards shards)

let timeline_of ~rows ~seed ~dus ~du_interval ~scs ~sc_interval =
  Generator.mixed ~rows ~seed ~n_dus:dus ~du_interval ~sc_interval
    ~sc_kinds:(Generator.drop_then_renames scs)
    ()

(* ---- run ----------------------------------------------------------- *)

let run_cmd =
  let action rows dus scs du_interval sc_interval seed strategy trace
      no_compensation report multi parallel self_maint runtime shards loss dup
      reorder jitter reorder_delay outages net_seed json_file trace_out
      metrics_out lineage_out no_lineage sample_interval series_out
      openmetrics_out slos slo_exit watch =
    let timeline =
      timeline_of ~rows ~seed ~dus ~du_interval ~scs ~sc_interval
    in
    let cost = Dyno_sim.Cost_model.scaled (100_000.0 /. float_of_int rows) in
    let faults =
      faults_of ~cost ~loss ~dup ~reorder ~jitter ~reorder_delay ~outages
    in
    let net_seed = Option.value net_seed ~default:seed in
    let interval = effective_interval ~sample_interval ~series_out ~watch in
    let obs =
      if
        trace_out <> None || metrics_out <> None || openmetrics_out <> None
        || lineage_out <> None || slos <> [] || interval <> None
      then
        Dyno_obs.Obs.create ?sample_interval:interval
          ~lineage:(not no_lineage) ()
      else Dyno_obs.Obs.disabled
    in
    if watch then install_watch (Dyno_obs.Obs.series obs);
    let t =
      Scenario.make
        (scenario_config_of ~rows ~cost ~trace:(trace || report) ~faults
           ~net_seed ~obs ~shards)
        ~timeline
    in
    let stats =
      if multi then begin
        let open Dyno_relational in
        let open Dyno_view in
        let narrow =
          Query.make ~name:"V2"
            ~select:[ Query.item "R1.K1"; Query.item "R1.B1"; Query.item "R2.B2" ]
            ~from:[ Query.table "DS1" "R1"; Query.table "DS1" "R2" ]
            ~where:[ Predicate.eq_attr "R1.K1" "R2.K2" ]
        in
        let vd =
          View_def.create
            ~schemas:
              [
                ("R1", Paper_schema.schema_of_rel 1);
                ("R2", Paper_schema.schema_of_rel 2);
              ]
            narrow
        in
        let mv2 =
          Mat_view.create ~track_snapshots:true vd (Relation.create Schema.empty)
        in
        let env (tr : Query.table_ref) =
          Dyno_source.Data_source.relation
            (Dyno_source.Registry.find t.Scenario.registry tr.source)
            tr.rel
        in
        Mat_view.replace mv2 ~at:0.0 ~maintained:[] (Eval.run ~catalog:env narrow);
        let m = Multi_scheduler.create [ t.Scenario.mv; mv2 ] in
        let stats =
          Multi_scheduler.run
            ~config:
              (run_config_of ~strategy ~no_compensation ~parallel ~self_maint
               ~runtime)
            t.Scenario.engine m t.Scenario.mk
        in
        List.iteri
          (fun i mv ->
            match Consistency.convergent t.Scenario.engine mv with
            | Ok b -> Fmt.pr "view %d convergent: %b@." i b
            | Error e -> Fmt.pr "view %d: not checkable (%s)@." i e)
          (Multi_scheduler.views m);
        stats
      end
      else
        Scenario.run t
          ~config:
            (run_config_of ~strategy ~no_compensation ~parallel ~self_maint
               ~runtime)
    in
    if trace then Fmt.pr "%a@.@." Dyno_sim.Trace.pp t.Scenario.trace;
    if report then Fmt.pr "%a@.@." Report.pp (Report.of_trace t.Scenario.trace);
    Fmt.pr "strategy: %a@.%a@." Strategy.pp strategy Stats.pp stats;
    (if not multi then
       match Scenario.check_convergent t with
       | Ok b -> Fmt.pr "convergent: %b@." b
       | Error e -> Fmt.pr "convergence: not checkable (%s)@." e);
    if not multi then
      Fmt.pr "strong consistency: %a@." Consistency.pp_report
        (Scenario.check_strong t);
    (match json_file with
    | None -> ()
    | Some f ->
        write_file f (Stats.to_json_string stats);
        Fmt.pr "stats written to %s@." f);
    (match trace_out with
    | None -> ()
    | Some f ->
        write_file f
          (Dyno_obs.Export.chrome_trace
             ~lineage:(Dyno_obs.Obs.lineage obs)
             (Dyno_obs.Obs.spans obs));
        Fmt.pr "chrome trace written to %s (open in ui.perfetto.dev)@." f);
    (match metrics_out with
    | None -> ()
    | Some f ->
        write_file f
          (Dyno_obs.Metrics.to_json_string (Dyno_obs.Obs.metrics obs));
        Fmt.pr "metrics written to %s@." f);
    (match lineage_out with
    | None -> ()
    | Some f ->
        let lin = Dyno_obs.Obs.lineage obs in
        write_file f (String.trim (Dyno_obs.Lineage.to_jsonl lin));
        Fmt.pr "lineage written to %s (%d record(s))@." f
          (List.length (Dyno_obs.Lineage.records lin)));
    write_series (Dyno_obs.Obs.series obs) series_out;
    write_openmetrics (Dyno_obs.Obs.metrics obs) openmetrics_out;
    staleness_section (Dyno_obs.Obs.metrics obs);
    let slo_ok = slo_section (Dyno_obs.Obs.metrics obs) slos in
    if Stats.(stats.view_undefined) then exit 2;
    if slo_exit && not slo_ok then exit 3
  in
  let term =
    Term.(
      const action $ rows $ dus $ scs $ du_interval $ sc_interval $ seed
      $ strategy $ trace_flag $ no_compensation $ report_flag $ multi_flag
      $ parallel_arg $ self_maint_flag $ runtime_arg $ shards_arg $ loss $ dup $ reorder
      $ jitter $ reorder_delay $ outages $ net_seed $ json_file $ trace_out
      $ metrics_out $ lineage_out $ no_lineage $ sample_interval
      $ series_out $ openmetrics_out $ slo_specs $ slo_exit $ watch_flag)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a mixed workload under a strategy")
    term

(* ---- report: span-derived cost breakdown ---------------------------- *)

let report_cmd =
  let action rows dus scs du_interval sc_interval seed strategy
      no_compensation parallel self_maint runtime shards loss dup reorder
      jitter reorder_delay outages net_seed trace_out metrics_out lineage_out
      critical_path sample_interval series_out openmetrics_out slos slo_exit
      =
    let timeline =
      timeline_of ~rows ~seed ~dus ~du_interval ~scs ~sc_interval
    in
    let cost = Dyno_sim.Cost_model.scaled (100_000.0 /. float_of_int rows) in
    let faults =
      faults_of ~cost ~loss ~dup ~reorder ~jitter ~reorder_delay ~outages
    in
    let net_seed = Option.value net_seed ~default:seed in
    (* [report] always samples: the timeline section needs a series. *)
    let interval = Option.value sample_interval ~default:1.0 in
    let obs = Dyno_obs.Obs.create ~sample_interval:interval () in
    let t =
      Scenario.make
        (scenario_config_of ~rows ~cost ~trace:false ~faults ~net_seed ~obs
           ~shards)
        ~timeline
    in
    let stats =
      Scenario.run t
        ~config:
          (run_config_of ~strategy ~no_compensation ~parallel ~self_maint
               ~runtime)
    in
    let spans = Dyno_obs.Obs.spans obs in
    Fmt.pr "strategy: %a@.@." Strategy.pp strategy;
    Fmt.pr "%a@." Dyno_obs.Export.pp_breakdown
      (Dyno_obs.Export.breakdown spans);
    Fmt.pr "@.%a@." Dyno_obs.Metrics.pp (Dyno_obs.Obs.metrics obs);
    (match trace_out with
    | None -> ()
    | Some f ->
        write_file f
          (Dyno_obs.Export.chrome_trace
             ~lineage:(Dyno_obs.Obs.lineage obs)
             spans);
        Fmt.pr "@.chrome trace written to %s (open in ui.perfetto.dev)@." f);
    (match metrics_out with
    | None -> ()
    | Some f ->
        write_file f
          (Dyno_obs.Metrics.to_json_string (Dyno_obs.Obs.metrics obs));
        Fmt.pr "metrics written to %s@." f);
    (match lineage_out with
    | None -> ()
    | Some f ->
        let lin = Dyno_obs.Obs.lineage obs in
        write_file f (String.trim (Dyno_obs.Lineage.to_jsonl lin));
        Fmt.pr "lineage written to %s (%d record(s))@." f
          (List.length (Dyno_obs.Lineage.records lin)));
    write_series (Dyno_obs.Obs.series obs) series_out;
    write_openmetrics (Dyno_obs.Obs.metrics obs) openmetrics_out;
    staleness_section (Dyno_obs.Obs.metrics obs);
    shard_section (Dyno_obs.Obs.metrics obs);
    if critical_path then critical_path_section (Dyno_obs.Obs.metrics obs);
    timeline_section (Dyno_obs.Obs.series obs);
    let slo_ok = slo_section (Dyno_obs.Obs.metrics obs) slos in
    if Stats.(stats.view_undefined) then exit 2;
    if slo_exit && not slo_ok then exit 3
  in
  let term =
    Term.(
      const action $ rows $ dus $ scs $ du_interval $ sc_interval $ seed
      $ strategy $ no_compensation $ parallel_arg $ self_maint_flag
      $ runtime_arg $ shards_arg $ loss $ dup $ reorder $ jitter $ reorder_delay
      $ outages $ net_seed $ trace_out $ metrics_out $ lineage_out
      $ critical_path_flag $ sample_interval $ series_out $ openmetrics_out
      $ slo_specs $ slo_exit)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a workload with span recording on and print the \
          busy/abort/idle/net-wait cost breakdown derived from spans alone, \
          plus the metrics registry")
    term

(* ---- explain: per-update causal narrative --------------------------- *)

let explain_msg =
  let doc = "Explain the update admitted to the UMQ as message $(docv)." in
  Arg.(value & opt (some int) None & info [ "msg" ] ~docv:"ID" ~doc)

let explain_abort =
  let doc =
    "Explain the update behind the $(docv)-th abort of the run (1-based, \
     in time order)."
  in
  Arg.(value & opt (some int) None & info [ "abort" ] ~docv:"N" ~doc)

let explain_view =
  let doc =
    "Explain the updates whose lineage mentions view $(docv), slowest \
     first."
  in
  Arg.(value & opt (some string) None & info [ "view" ] ~docv:"VIEW" ~doc)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let lineage_summary_table records =
  Fmt.pr "%4s  %-10s  %-4s  %-10s  %9s  %s@." "msg" "update" "kind"
    "terminal" "elapsed" "dominant segment";
  List.iter
    (fun (r : Dyno_obs.Lineage.record) ->
      let terminal =
        match r.Dyno_obs.Lineage.term with
        | None -> "pending"
        | Some t -> Dyno_obs.Lineage.terminal_name t
      in
      let dominant =
        match
          List.sort
            (fun (_, a) (_, b) -> Float.compare b a)
            (Dyno_obs.Lineage.segments r)
        with
        | [] -> "-"
        | (name, v) :: _ -> Fmt.str "%s (%.3fs)" name v
      in
      Fmt.pr "%4d  %-10s  %-4s  %-10s  %8.3fs  %s@."
        r.Dyno_obs.Lineage.msg_id
        (Fmt.str "%s#%d" r.Dyno_obs.Lineage.source r.Dyno_obs.Lineage.seq)
        (if r.Dyno_obs.Lineage.sc then "SC" else "DU")
        terminal
        (Dyno_obs.Lineage.elapsed r)
        dominant)
    records

let explain_cmd =
  let action rows dus scs du_interval sc_interval seed strategy
      no_compensation parallel self_maint runtime shards loss dup reorder
      jitter reorder_delay outages net_seed msg abort_n view =
    let timeline =
      timeline_of ~rows ~seed ~dus ~du_interval ~scs ~sc_interval
    in
    let cost = Dyno_sim.Cost_model.scaled (100_000.0 /. float_of_int rows) in
    let faults =
      faults_of ~cost ~loss ~dup ~reorder ~jitter ~reorder_delay ~outages
    in
    let net_seed = Option.value net_seed ~default:seed in
    let obs = Dyno_obs.Obs.create () in
    let t =
      Scenario.make
        (scenario_config_of ~rows ~cost ~trace:false ~faults ~net_seed ~obs
           ~shards)
        ~timeline
    in
    let (_ : Stats.t) =
      Scenario.run t
        ~config:
          (run_config_of ~strategy ~no_compensation ~parallel ~self_maint
               ~runtime)
    in
    let lin = Dyno_obs.Obs.lineage obs in
    let records = Dyno_obs.Lineage.records lin in
    let slowest n rs =
      let rs =
        List.sort
          (fun a b ->
            Float.compare (Dyno_obs.Lineage.elapsed b)
              (Dyno_obs.Lineage.elapsed a))
          rs
      in
      List.filteri (fun i _ -> i < n) rs
    in
    let narrate r = Fmt.pr "%a@." Dyno_obs.Lineage.pp_record r in
    match (msg, abort_n, view) with
    | Some id, _, _ -> (
        match Dyno_obs.Lineage.find_msg lin id with
        | Some r -> narrate r
        | None ->
            Fmt.epr "no lineage record for msg %d (ids run 0..%d)@." id
              (List.length records - 1);
            exit 1)
    | None, Some n, _ -> (
        let aborts =
          List.concat_map
            (fun r ->
              List.filter_map
                (fun (e : Dyno_obs.Lineage.event) ->
                  if e.Dyno_obs.Lineage.kind = "abort" then
                    Some (e.Dyno_obs.Lineage.at, r)
                  else None)
                (Dyno_obs.Lineage.events r))
            records
          |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
        in
        match List.nth_opt aborts (n - 1) with
        | Some (_, r) ->
            Fmt.pr "abort %d of %d:@.@." n (List.length aborts);
            narrate r
        | None ->
            Fmt.epr "run had %d abort(s); --abort %d out of range@."
              (List.length aborts) n;
            exit 1)
    | None, None, Some v ->
        let mentions (r : Dyno_obs.Lineage.record) =
          List.exists
            (fun (e : Dyno_obs.Lineage.event) ->
              contains_sub e.Dyno_obs.Lineage.detail v)
            (Dyno_obs.Lineage.events r)
        in
        let hits = List.filter mentions records in
        let hits = if hits = [] then records else hits in
        Fmt.pr "%d update(s) touched view %s:@.@." (List.length hits) v;
        lineage_summary_table hits;
        Fmt.pr "@.slowest:@.@.";
        List.iter narrate (slowest 3 hits)
    | None, None, None ->
        Fmt.pr "%d update(s) traced:@.@." (List.length records);
        lineage_summary_table records;
        Fmt.pr "@.slowest:@.@.";
        List.iter narrate (slowest 3 records)
  in
  let term =
    Term.(
      const action $ rows $ dus $ scs $ du_interval $ sc_interval $ seed
      $ strategy $ no_compensation $ parallel_arg $ self_maint_flag
      $ runtime_arg $ shards_arg $ loss $ dup $ reorder $ jitter $ reorder_delay
      $ outages $ net_seed $ explain_msg $ explain_abort $ explain_view)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Re-run a workload with lineage recording on and print the causal \
          narrative of one update (--msg), of the update behind the N-th \
          abort (--abort), of the updates touching a view (--view), or a \
          summary of every update")
    term

(* ---- inspect ------------------------------------------------------- *)

let inspect_cmd =
  let action rows dus scs seed =
    (* Flood everything at t=0 so the whole workload is queued, then show
       the dependency graph and its correction. *)
    let timeline =
      Generator.mixed ~rows ~seed ~n_dus:dus ~du_interval:0.0 ~sc_interval:0.0
        ~sc_kinds:(Generator.drop_then_renames scs)
        ()
    in
    let t =
      Scenario.make
        Scenario.Config.(
          default |> with_rows rows |> with_cost Dyno_sim.Cost_model.free)
        ~timeline
    in
    Dyno_view.Query_engine.deliver_due t.Scenario.engine;
    let vd = Dyno_view.Mat_view.def t.Scenario.mv in
    let g =
      Dep_graph.build
        (Dyno_view.View_def.peek vd)
        (Dyno_view.View_def.schemas vd)
        (Dyno_view.Umq.entries t.Scenario.umq)
    in
    Fmt.pr "%a@.@.unsafe dependencies: %d@.@." Dep_graph.pp g
      (Dep_graph.unsafe_count g);
    let c = Dep_graph.correct g in
    Fmt.pr "correction: %d cycle(s) merged (%d update(s))@.legal order:@."
      c.Dep_graph.merged_cycles c.Dep_graph.merged_updates;
    List.iteri
      (fun i e -> Fmt.pr "  %2d. %a@." i Dyno_view.Umq.pp_entry e)
      c.Dep_graph.order
  in
  let term = Term.(const action $ rows $ dus $ scs $ seed) in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Show the dependency graph and corrected legal order")
    term

(* ---- sql: run a scripted session ----------------------------------- *)

let sql_cmd =
  let file =
    let doc = "SQL script: CREATE TABLE / INSERT statements set up the \
               sources, CREATE VIEW materializes the view, every statement \
               after it commits autonomously (1 s apart) and Dyno maintains \
               the view." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let action file strategy trace =
    let open Dyno_relational in
    let text =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    (* strip -- comments, split on ';' *)
    let stmts =
      String.split_on_char '\n' text
      |> List.map (fun line ->
             match String.index_opt line '-' with
             | Some i
               when i + 1 < String.length line
                    && line.[i + 1] = '-'
                    && (i = 0 || line.[i - 1] <> '\'') ->
                 String.sub line 0 i
             | _ -> line)
      |> String.concat "\n"
      |> String.split_on_char ';'
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let registry = Dyno_source.Registry.create () in
    let mk = Dyno_source.Meta_knowledge.create () in
    let umq = Dyno_view.Umq.create () in
    let timeline = Dyno_sim.Timeline.create () in
    let tracer = Dyno_sim.Trace.create ~enabled:trace () in
    let engine =
      Dyno_view.Query_engine.create ~trace:tracer
        ~cost:{ Dyno_sim.Cost_model.default with row_scale = 1.0 }
        ~registry ~timeline ~umq ()
    in
    let mv = ref None in
    let next_time = ref 1.0 in
    let ensure_source id =
      if not (Dyno_source.Registry.mem registry id) then
        Dyno_source.Registry.register registry (Dyno_source.Data_source.create id)
    in
    let fail fmt = Fmt.kstr (fun s -> Fmt.epr "error: %s@." s; exit 1) fmt in
    let schema_of ~source ~rel =
      match Dyno_source.Registry.find_opt registry source with
      | None -> fail "unknown source %s" source
      | Some s -> (
          match Catalog.schema_of_opt (Dyno_source.Data_source.catalog s) rel with
          | Some sc -> sc
          | None -> fail "unknown relation %s@%s" rel source)
    in
    List.iter
      (fun stmt_text ->
        if
          String.length stmt_text >= 11
          && String.uppercase_ascii (String.sub stmt_text 0 11) = "CREATE VIEW"
        then begin
          match Sql_parser.parse_view stmt_text with
          | Error e -> fail "in %S: %s" stmt_text e
          | Ok q ->
              let schemas =
                List.map
                  (fun (tr : Query.table_ref) ->
                    (tr.alias, schema_of ~source:tr.source ~rel:tr.rel))
                  (Query.from q)
              in
              let vd = Dyno_view.View_def.create ~schemas q in
              let m =
                Dyno_view.Mat_view.create ~track_snapshots:true vd
                  (Relation.create Schema.empty)
              in
              let env (tr : Query.table_ref) =
                Dyno_source.Data_source.relation
                  (Dyno_source.Registry.find registry tr.source)
                  tr.rel
              in
              Dyno_view.Mat_view.replace m ~at:0.0 ~maintained:[]
                (Eval.run ~catalog:env q);
              mv := Some m
        end
        else
          match Sql_parser.parse_statement stmt_text with
          | Error e -> fail "in %S: %s" stmt_text e
          | Ok (Sql_parser.Create_table { source; rel; schema }) ->
              ensure_source source;
              Dyno_source.Data_source.add_relation
                (Dyno_source.Registry.find registry source)
                rel schema
          | Ok (Sql_parser.Insert { source; rel; _ } as stmt)
          | Ok (Sql_parser.Delete { source; rel; _ } as stmt) -> (
              let schema = schema_of ~source ~rel in
              match Sql_parser.to_update schema stmt with
              | Error e -> fail "in %S: %s" stmt_text e
              | Ok u ->
                  if !mv = None then
                    (* before the view exists: direct load *)
                    Dyno_source.Data_source.load_counted
                      (Dyno_source.Registry.find registry source)
                      rel
                      (Relation.fold
                         (fun t c acc -> (Array.to_list t, c) :: acc)
                         (Update.delta u) [])
                  else begin
                    Dyno_sim.Timeline.schedule timeline ~time:!next_time
                      (Dyno_sim.Timeline.Du u);
                    next_time := !next_time +. 1.0
                  end)
          | Ok (Sql_parser.Alter sc) ->
              if !mv = None then fail "schema changes require a view first";
              Dyno_sim.Timeline.schedule timeline ~time:!next_time
                (Dyno_sim.Timeline.Sc sc);
              next_time := !next_time +. 1.0)
      stmts;
    match !mv with
    | None -> fail "the script must contain a CREATE VIEW statement"
    | Some m ->
        let stats =
          Dyno_core.Scheduler.run
            ~config:(Dyno_core.Run_config.of_strategy strategy) engine m mk
        in
        if trace then Fmt.pr "%a@.@." Dyno_sim.Trace.pp tracer;
        Fmt.pr "%a@.@." Sql.pp_view (Dyno_view.View_def.peek (Dyno_view.Mat_view.def m));
        Fmt.pr "%a@.@." Sql.pp_relation_table (Dyno_view.Mat_view.extent m);
        Fmt.pr "%a@." Stats.pp stats;
        match Consistency.convergent engine m with
        | Ok b -> Fmt.pr "convergent: %b@." b
        | Error e -> Fmt.pr "convergence not checkable: %s@." e
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run a scripted SQL session under Dyno maintenance")
    Term.(const action $ file $ strategy $ trace_flag)

(* ---- demo ---------------------------------------------------------- *)

let demo_cmd =
  let action () =
    Fmt.pr
      "The BookInfo walk-throughs of the paper's examples are separate \
       binaries:@.@.  dune exec examples/quickstart.exe@.  dune exec \
       examples/bookinfo_anomalies.exe@.  dune exec \
       examples/cyclic_schema_changes.exe@.  dune exec \
       examples/grid_monitor.exe@."
  in
  Cmd.v (Cmd.info "demo" ~doc:"Where to find the runnable demos")
    Term.(const action $ const ())

let () =
  let info =
    Cmd.info "dyno" ~version:"1.0.0"
      ~doc:
        "Detection and correction of conflicting source updates for view \
         maintenance (ICDE 2004 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; report_cmd; explain_cmd; inspect_cmd; sql_cmd; demo_cmd ]))
