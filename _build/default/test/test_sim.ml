(* Unit tests for the simulation substrate: clock, timeline, rng, cost
   model, trace. *)

open Dyno_relational
open Dyno_sim

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check (float 1e-9)) "starts at 0" 0.0 (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.5;
  Alcotest.(check (float 1e-9)) "advances" 2.0 (Clock.now c);
  Clock.advance_to c 2.0;
  Alcotest.(check (float 1e-9)) "advance_to same time ok" 2.0 (Clock.now c);
  Alcotest.(check bool) "negative advance rejected" true
    (match Clock.advance c (-1.0) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "backwards rejected" true
    (match Clock.advance_to c 1.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let schema = Schema.of_list [ Attr.int "x" ]

let du k =
  Timeline.Du
    (Update.make ~source:"ds" ~rel:"R"
       (Relation.of_list schema [ [ Value.int k ] ]))

let test_timeline_ordering () =
  let t = Timeline.create () in
  Timeline.schedule t ~time:5.0 (du 1);
  Timeline.schedule t ~time:1.0 (du 2);
  Timeline.schedule t ~time:1.0 (du 3);
  (* same time: scheduling order is preserved via seq *)
  Alcotest.(check int) "3 pending" 3 (Timeline.length t);
  Alcotest.(check bool) "next time" true (Timeline.next_time t = Some 1.0);
  let due = Timeline.pop_until t ~time:1.0 in
  Alcotest.(check int) "two due" 2 (List.length due);
  (match due with
  | [ a; b ] ->
      Alcotest.(check bool) "FIFO among ties" true (a.Timeline.seq < b.Timeline.seq)
  | _ -> Alcotest.fail "expected two");
  Alcotest.(check int) "one left" 1 (Timeline.length t);
  let rest = Timeline.pop_until t ~time:100.0 in
  Alcotest.(check int) "drained" 1 (List.length rest);
  Alcotest.(check bool) "empty" true (Timeline.is_empty t)

let test_rng_determinism () =
  let a = Rng.make 42 and b = Rng.make 42 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b);
  let c = Rng.make 43 in
  Alcotest.(check bool) "different seed differs" true (seq (Rng.make 42) <> seq c);
  let r = Rng.make 1 in
  for _ = 1 to 100 do
    let x = Rng.int_in r 5 10 in
    Alcotest.(check bool) "int_in range" true (x >= 5 && x <= 10)
  done;
  let xs = [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "shuffle is a permutation" xs
    (List.sort compare (Rng.shuffle r xs));
  Alcotest.(check bool) "pick member" true (List.mem (Rng.pick r xs) xs)

let test_cost_model () =
  let cm = Cost_model.default in
  Alcotest.(check bool) "probe grows with scan" true
    (Cost_model.probe cm ~scanned:1000 ~returned:0
    > Cost_model.probe cm ~scanned:10 ~returned:0);
  Alcotest.(check bool) "detect O(mn) grows" true
    (Cost_model.detect cm ~n:100 ~m:10 > Cost_model.detect cm ~n:100 ~m:1);
  let free = Cost_model.free in
  Alcotest.(check (float 1e-12)) "free model costs nothing" 0.0
    (Cost_model.probe free ~scanned:1000 ~returned:1000
    +. Cost_model.adapt free ~scanned:5 ~written:5
    +. Cost_model.detect free ~n:10 ~m:10);
  let scaled = Cost_model.scaled 10.0 in
  Alcotest.(check bool) "scaled charges more per row" true
    (Cost_model.adapt scaled ~scanned:100 ~written:0
    > Cost_model.adapt cm ~scanned:100 ~written:0)

let test_trace () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 Trace.Commit "a";
  Trace.recordf tr ~time:2.0 Trace.Abort "b %d" 7;
  Trace.record tr ~time:3.0 Trace.Commit "c";
  Alcotest.(check int) "count commits" 2 (Trace.count tr Trace.Commit);
  Alcotest.(check int) "count aborts" 1 (Trace.count tr Trace.Abort);
  (match Trace.entries tr with
  | [ e1; _; e3 ] ->
      Alcotest.(check bool) "chronological" true (e1.Trace.time < e3.Trace.time)
  | _ -> Alcotest.fail "expected 3 entries");
  let off = Trace.create ~enabled:false () in
  Trace.record off ~time:0.0 Trace.Commit "x";
  Alcotest.(check int) "disabled records nothing" 0 (List.length (Trace.entries off))

let () =
  Alcotest.run "sim"
    [
      ( "sim",
        [
          Alcotest.test_case "clock" `Quick test_clock;
          Alcotest.test_case "timeline ordering" `Quick test_timeline_ordering;
          Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
          Alcotest.test_case "cost model" `Quick test_cost_model;
          Alcotest.test_case "trace" `Quick test_trace;
        ] );
    ]
