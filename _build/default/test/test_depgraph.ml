(* Unit tests for the dependency model and graph correction: CD/SD edge
   construction, safety classification (Definition 6), Tarjan SCC, cycle
   merging and the stable topological legal order (Theorem 2) — including
   the paper's Figure 4 example. *)

open Dyno_relational
open Dyno_view
open Dyno_core

let schema = Schema.of_list [ Attr.int "k" ]
let schema_b = Schema.of_list [ Attr.int "k2" ]

let view_q () =
  Query.make ~name:"V"
    ~select:[ Query.item "A.k"; Query.item "B.k2" ]
    ~from:[ Query.table ~alias:"A" "ds1" "A"; Query.table ~alias:"B" "ds2" "B" ]
    ~where:[ Predicate.eq_attr "A.k" "B.k2" ]

let schemas () = [ ("A", schema); ("B", schema_b) ]

let du ~id ~source ~rel =
  Update_msg.make ~id ~commit_time:(float_of_int id) ~source_version:id
    (Update_msg.Du
       (Update.make ~source ~rel
          (Relation.of_list (if rel = "A" then schema else schema_b) [ [ Value.int id ] ])))

let sc_rename ~id ~source ~rel =
  Update_msg.make ~id ~commit_time:(float_of_int id) ~source_version:id
    (Update_msg.Sc
       (Schema_change.Rename_relation
          { source; old_name = rel; new_name = rel ^ "x" }))

let sc_add ~id ~source ~rel =
  Update_msg.make ~id ~commit_time:(float_of_int id) ~source_version:id
    (Update_msg.Sc
       (Schema_change.Add_attribute
          { source; rel; attr = Attr.int (Fmt.str "n%d" id); default = Value.int 0 }))

let singles msgs = List.map (fun m -> Umq.Single m) msgs

let build msgs = Dep_graph.build (view_q ()) (schemas ()) (singles msgs)

(* -- edge construction ------------------------------------------------ *)

let test_cd_edges () =
  (* one conflicting SC at position 2: everyone else depends on it *)
  let msgs =
    [ du ~id:0 ~source:"ds1" ~rel:"A";
      du ~id:1 ~source:"ds2" ~rel:"B";
      sc_rename ~id:2 ~source:"ds1" ~rel:"A" ]
  in
  let g = build msgs in
  let cds =
    List.filter (fun (e : Dependency.edge) -> e.kind = Dependency.Concurrent)
      (Dep_graph.edges g)
  in
  Alcotest.(check int) "2 CD edges" 2 (List.length cds);
  List.iter
    (fun (e : Dependency.edge) ->
      Alcotest.(check int) "prerequisite is the SC" 2 e.Dependency.prerequisite)
    cds

let test_add_only_sc_no_cd () =
  let msgs =
    [ du ~id:0 ~source:"ds1" ~rel:"A"; sc_add ~id:1 ~source:"ds1" ~rel:"A" ]
  in
  let g = build msgs in
  Alcotest.(check int) "add-only SC draws no CD edge" 0
    (List.length
       (List.filter (fun (e : Dependency.edge) -> e.kind = Dependency.Concurrent)
          (Dep_graph.edges g)))

let test_sc_on_foreign_source_no_cd () =
  let msgs = [ du ~id:0 ~source:"ds1" ~rel:"A"; sc_rename ~id:1 ~source:"ds9" ~rel:"Z" ] in
  let g = build msgs in
  Alcotest.(check int) "SC at unread source draws no CD" 0
    (List.length
       (List.filter (fun (e : Dependency.edge) -> e.kind = Dependency.Concurrent)
          (Dep_graph.edges g)))

let test_sd_edges_per_source () =
  let msgs =
    [ du ~id:0 ~source:"ds1" ~rel:"A";
      du ~id:1 ~source:"ds2" ~rel:"B";
      du ~id:2 ~source:"ds1" ~rel:"A";
      du ~id:3 ~source:"ds1" ~rel:"A" ]
  in
  let g = build msgs in
  let sds =
    List.filter (fun (e : Dependency.edge) -> e.kind = Dependency.Semantic)
      (Dep_graph.edges g)
  in
  (* ds1 chain: 0→2→3 = 2 edges; ds2 singleton: none *)
  Alcotest.(check int) "chained per source" 2 (List.length sds);
  Alcotest.(check bool) "0 before 2" true
    (List.exists
       (fun (e : Dependency.edge) -> e.prerequisite = 0 && e.dependent = 2)
       sds);
  Alcotest.(check bool) "2 before 3" true
    (List.exists
       (fun (e : Dependency.edge) -> e.prerequisite = 2 && e.dependent = 3)
       sds)

(* -- safety (Definition 6) ------------------------------------------- *)

let test_safety_classification () =
  (* SD edges (earlier commits first, FIFO queue order) are safe; the CD
     edge from a later-queued SC is unsafe. *)
  let msgs =
    [ du ~id:0 ~source:"ds1" ~rel:"A"; sc_rename ~id:1 ~source:"ds1" ~rel:"A" ]
  in
  let g = build msgs in
  let unsafe = Dep_graph.unsafe g in
  Alcotest.(check bool) "has unsafe" true (Dep_graph.has_unsafe g);
  List.iter
    (fun (e : Dependency.edge) ->
      Alcotest.(check bool) "unsafe edges point backwards" true
        (e.prerequisite > e.dependent))
    unsafe

(* -- correction -------------------------------------------------------- *)

let legal_order_check (g : Dep_graph.t) (c : Dep_graph.correction) =
  (* rebuild positions after correction: every dependency must be safe *)
  let pos_of_msg = Hashtbl.create 16 in
  List.iteri
    (fun i entry -> List.iter (fun m -> Hashtbl.replace pos_of_msg (Update_msg.id m) i)
        (Umq.entry_messages entry))
    c.Dep_graph.order;
  (* map original node -> its representative message ids *)
  let node_msgs = Array.of_list (List.map Umq.entry_messages (Dep_graph.nodes g)) in
  List.for_all
    (fun (e : Dependency.edge) ->
      let p = Hashtbl.find pos_of_msg (Update_msg.id (List.hd node_msgs.(e.prerequisite))) in
      let d = Hashtbl.find pos_of_msg (Update_msg.id (List.hd node_msgs.(e.dependent))) in
      p <= d)
    (Dep_graph.edges g)

let test_correction_reorders_sc_first () =
  let msgs =
    [ du ~id:0 ~source:"ds2" ~rel:"B"; du ~id:1 ~source:"ds2" ~rel:"B";
      sc_rename ~id:2 ~source:"ds1" ~rel:"A" ]
  in
  let g = build msgs in
  let c = Dep_graph.correct g in
  Alcotest.(check int) "no cycle here" 0 c.Dep_graph.merged_cycles;
  (match c.Dep_graph.order with
  | first :: _ ->
      Alcotest.(check (list int)) "SC first" [ 2 ] (Umq.entry_ids first)
  | [] -> Alcotest.fail "empty order");
  Alcotest.(check bool) "legal order" true (legal_order_check g c);
  (* stability: the two DUs keep their relative order *)
  let flat = List.concat_map Umq.entry_ids c.Dep_graph.order in
  Alcotest.(check (list int)) "stable among unconstrained" [ 2; 0; 1 ] flat

let test_figure4_cycle_merge () =
  (* Figure 4: DU1 then SC1 (other source) then SC2 (same source as DU1):
     SD DU1→SC2, CD edges from SC1 and SC2 to everyone: the three nodes
     form one cycle and merge into a single batch. *)
  let msgs =
    [ du ~id:0 ~source:"ds1" ~rel:"A" (* DU1 *);
      sc_rename ~id:1 ~source:"ds2" ~rel:"B" (* SC1 *);
      sc_rename ~id:2 ~source:"ds1" ~rel:"A" (* SC2 *) ]
  in
  let g = build msgs in
  let c = Dep_graph.correct g in
  Alcotest.(check int) "one cycle" 1 c.Dep_graph.merged_cycles;
  Alcotest.(check int) "three updates merged" 3 c.Dep_graph.merged_updates;
  (match c.Dep_graph.order with
  | [ Umq.Batch ms ] ->
      Alcotest.(check (list int)) "batch members in commit order" [ 0; 1; 2 ]
        (List.map Update_msg.id ms)
  | _ -> Alcotest.fail "expected a single batch");
  Alcotest.(check bool) "legal" true (legal_order_check g c)

let test_two_sc_cycle () =
  (* two conflicting SCs: mutual CD → 2-cycle (the Section 3.5 deadlock) *)
  let msgs =
    [ sc_rename ~id:0 ~source:"ds1" ~rel:"A"; sc_rename ~id:1 ~source:"ds2" ~rel:"B" ]
  in
  let c = Dep_graph.correct (build msgs) in
  Alcotest.(check int) "merged" 1 c.Dep_graph.merged_cycles;
  Alcotest.(check int) "both in" 2 c.Dep_graph.merged_updates

let test_independent_dus_untouched () =
  let msgs =
    [ du ~id:0 ~source:"ds1" ~rel:"A"; du ~id:1 ~source:"ds2" ~rel:"B";
      du ~id:2 ~source:"ds1" ~rel:"A" ]
  in
  let g = build msgs in
  Alcotest.(check bool) "all safe in FIFO" false (Dep_graph.has_unsafe g);
  let c = Dep_graph.correct g in
  Alcotest.(check (list int)) "order unchanged" [ 0; 1; 2 ]
    (List.concat_map Umq.entry_ids c.Dep_graph.order)

let test_scc_on_crafted_graph () =
  (* craft a graph by hand: 0→1→2→0 cycle plus tail 3 *)
  let msgs =
    [ du ~id:0 ~source:"ds1" ~rel:"A"; du ~id:1 ~source:"ds1" ~rel:"A";
      du ~id:2 ~source:"ds1" ~rel:"A"; du ~id:3 ~source:"ds1" ~rel:"A" ]
  in
  let g =
    Dep_graph.make ~nodes:(singles msgs)
      ~edges:
        [
          { Dependency.dependent = 1; prerequisite = 0; kind = Dependency.Semantic };
          { Dependency.dependent = 2; prerequisite = 1; kind = Dependency.Semantic };
          { Dependency.dependent = 0; prerequisite = 2; kind = Dependency.Concurrent };
          { Dependency.dependent = 3; prerequisite = 2; kind = Dependency.Semantic };
        ]
  in
  let comps = Dep_graph.scc g in
  let sizes = List.sort compare (List.map List.length comps) in
  Alcotest.(check (list int)) "one 3-cycle, one singleton" [ 1; 3 ] sizes

let test_batch_node_participates () =
  (* an already-merged batch entry is one node; a later SC still orders
     before it when dependencies demand *)
  let b = Umq.Batch [ du ~id:0 ~source:"ds1" ~rel:"A"; du ~id:1 ~source:"ds2" ~rel:"B" ] in
  let s = Umq.Single (sc_rename ~id:2 ~source:"ds1" ~rel:"A") in
  let g = Dep_graph.build (view_q ()) (schemas ()) [ b; s ] in
  (* SD: batch's ds1 msg (id 0) before SC (id 2) at same source → SC
     depends on batch; CD: batch depends on SC → cycle → merge *)
  let c = Dep_graph.correct g in
  Alcotest.(check int) "merged batch+sc" 3 c.Dep_graph.merged_updates

(* -- message-level helper (Dependency.message_edges) ------------------ *)

let test_message_edges () =
  let msgs =
    [ du ~id:0 ~source:"ds1" ~rel:"A"; sc_rename ~id:1 ~source:"ds1" ~rel:"A" ]
  in
  let edges = Dependency.message_edges (view_q ()) (schemas ()) msgs in
  Alcotest.(check bool) "has cd" true
    (List.exists (fun (e : Dependency.edge) -> e.kind = Dependency.Concurrent) edges);
  Alcotest.(check bool) "has sd" true
    (List.exists (fun (e : Dependency.edge) -> e.kind = Dependency.Semantic) edges);
  let unsafe = Dependency.unsafe_edges edges in
  Alcotest.(check int) "one unsafe (the cd)" 1 (List.length unsafe)

let test_sc_conflict_tests () =
  let q = view_q () in
  let s = schemas () in
  Alcotest.(check bool) "literal test: rename of view relation" true
    (Dependency.sc_mentioned_in_view q s
       (Schema_change.Rename_relation { source = "ds1"; old_name = "A"; new_name = "Z" }));
  Alcotest.(check bool) "literal test misses chained rename" false
    (Dependency.sc_mentioned_in_view q s
       (Schema_change.Rename_relation { source = "ds1"; old_name = "A_old"; new_name = "Q" }));
  Alcotest.(check bool) "conservative test catches it" true
    (Dependency.sc_conflicts_with_view q s
       (Schema_change.Rename_relation { source = "ds1"; old_name = "A_old"; new_name = "Q" }));
  Alcotest.(check bool) "conservative ignores foreign sources" false
    (Dependency.sc_conflicts_with_view q s
       (Schema_change.Drop_relation { source = "ds9"; name = "A" }))

let () =
  Alcotest.run "dep-graph"
    [
      ( "edges",
        [
          Alcotest.test_case "concurrent dependencies" `Quick test_cd_edges;
          Alcotest.test_case "add-only SC draws none" `Quick test_add_only_sc_no_cd;
          Alcotest.test_case "foreign-source SC draws none" `Quick test_sc_on_foreign_source_no_cd;
          Alcotest.test_case "semantic chains per source" `Quick test_sd_edges_per_source;
          Alcotest.test_case "safety classification" `Quick test_safety_classification;
          Alcotest.test_case "message-level edges" `Quick test_message_edges;
          Alcotest.test_case "conflict tests (literal vs conservative)" `Quick
            test_sc_conflict_tests;
        ] );
      ( "correction",
        [
          Alcotest.test_case "SC jumps the queue" `Quick test_correction_reorders_sc_first;
          Alcotest.test_case "Figure 4 cycle merge" `Quick test_figure4_cycle_merge;
          Alcotest.test_case "two-SC deadlock merges" `Quick test_two_sc_cycle;
          Alcotest.test_case "independent DUs untouched" `Quick test_independent_dus_untouched;
          Alcotest.test_case "Tarjan SCC" `Quick test_scc_on_crafted_graph;
          Alcotest.test_case "batch entries as nodes" `Quick test_batch_node_participates;
        ] );
    ]
