(* Unit tests for Dyno_relational.Schema and Attr: construction, lookup,
   surgery (the primitives schema changes are built from). *)

open Dyno_relational

let s () =
  Schema.of_list [ Attr.int "id"; Attr.string "name"; Attr.float "price" ]

let test_of_list_rejects_dup () =
  Alcotest.check_raises "duplicate attr" (Schema.Duplicate_attribute "id")
    (fun () -> ignore (Schema.of_list [ Attr.int "id"; Attr.string "id" ]))

let test_lookup () =
  let s = s () in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check int) "index id" 0 (Schema.index_of s "id");
  Alcotest.(check int) "index price" 2 (Schema.index_of s "price");
  Alcotest.(check bool) "mem" true (Schema.mem s "name");
  Alcotest.(check bool) "not mem" false (Schema.mem s "bogus");
  Alcotest.check_raises "missing attr" (Schema.No_such_attribute "bogus")
    (fun () -> ignore (Schema.index_of s "bogus"));
  Alcotest.(check bool) "find_opt none" true (Schema.find_opt s "bogus" = None)

let test_project () =
  let s = s () in
  let p = Schema.project s [ "price"; "id" ] in
  Alcotest.(check (list string)) "order preserved as given" [ "price"; "id" ]
    (Schema.names p)

let test_drop () =
  let s = s () in
  let d = Schema.drop s "name" in
  Alcotest.(check (list string)) "dropped" [ "id"; "price" ] (Schema.names d);
  Alcotest.check_raises "drop missing" (Schema.No_such_attribute "zz")
    (fun () -> ignore (Schema.drop s "zz"))

let test_add () =
  let s = s () in
  let a = Schema.add s (Attr.bool "active") in
  Alcotest.(check (list string)) "appended" [ "id"; "name"; "price"; "active" ]
    (Schema.names a);
  Alcotest.check_raises "add dup" (Schema.Duplicate_attribute "id") (fun () ->
      ignore (Schema.add s (Attr.int "id")))

let test_rename () =
  let s = s () in
  let r = Schema.rename s ~old_name:"name" ~new_name:"title" in
  Alcotest.(check (list string)) "renamed" [ "id"; "title"; "price" ]
    (Schema.names r);
  (* type preserved *)
  Alcotest.(check bool) "type kept" true
    (Attr.ty (Schema.find r "title") = Value.Vtype.TString);
  Alcotest.check_raises "rename to taken" (Schema.Duplicate_attribute "price")
    (fun () -> ignore (Schema.rename s ~old_name:"name" ~new_name:"price"));
  (* renaming to itself is fine *)
  Alcotest.(check bool) "self rename" true
    (Schema.equal s (Schema.rename s ~old_name:"id" ~new_name:"id"))

let test_concat_disambiguates () =
  let a = Schema.of_list [ Attr.int "k"; Attr.string "x" ] in
  let b = Schema.of_list [ Attr.int "k"; Attr.float "y" ] in
  let c = Schema.concat a b in
  Alcotest.(check (list string)) "suffixed" [ "k"; "x"; "k_r"; "y" ]
    (Schema.names c);
  (* triple clash: suffix repeats until fresh *)
  let d = Schema.concat c b in
  Alcotest.(check int) "arity" 6 (Schema.arity d);
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq String.compare (Schema.names d)) = 6)

let test_typecheck () =
  let s = s () in
  Alcotest.(check bool) "ok" true
    (Schema.typecheck s [| Value.int 1; Value.string "a"; Value.float 1.0 |]);
  Alcotest.(check bool) "null ok anywhere" true
    (Schema.typecheck s [| Value.null; Value.null; Value.null |]);
  Alcotest.(check bool) "wrong type" false
    (Schema.typecheck s [| Value.string "x"; Value.string "a"; Value.float 1.0 |]);
  Alcotest.(check bool) "wrong arity" false
    (Schema.typecheck s [| Value.int 1 |])

let test_equal_vs_equivalent () =
  let a = Schema.of_list [ Attr.int "x"; Attr.string "y" ] in
  let b = Schema.of_list [ Attr.string "y"; Attr.int "x" ] in
  Alcotest.(check bool) "not equal (order)" false (Schema.equal a b);
  Alcotest.(check bool) "equivalent (set)" true (Schema.equivalent a b)

let test_qualified_refs () =
  let q = Attr.Qualified.of_string "I.Author" in
  Alcotest.(check bool) "rel" true (Attr.Qualified.rel q = Some "I");
  Alcotest.(check string) "attr" "Author" (Attr.Qualified.attr q);
  let u = Attr.Qualified.of_string "Price" in
  Alcotest.(check bool) "unqualified" true (Attr.Qualified.rel u = None);
  Alcotest.(check string) "roundtrip" "I.Author" (Attr.Qualified.to_string q)

let () =
  Alcotest.run "schema"
    [
      ( "schema",
        [
          Alcotest.test_case "duplicate rejection" `Quick test_of_list_rejects_dup;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "concat disambiguation" `Quick test_concat_disambiguates;
          Alcotest.test_case "typecheck" `Quick test_typecheck;
          Alcotest.test_case "equal vs equivalent" `Quick test_equal_vs_equivalent;
          Alcotest.test_case "qualified references" `Quick test_qualified_refs;
        ] );
    ]
