(* Unit tests for Schema_change and its net-effect Delta algebra — the
   Section 5 preprocessing machinery ("rename A to B" then "rename B to C"
   combines to "rename A to C"; data updates re-projected through schema
   changes become homogeneous). *)

open Dyno_relational

let schema = Schema.of_list [ Attr.int "a"; Attr.int "b"; Attr.string "c" ]

let delta_of scs = Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" schema scs

let rename_attr o n =
  Schema_change.Rename_attribute { source = "ds"; rel = "R"; old_name = o; new_name = n }

let drop_attr a = Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = a }

let add_attr name default =
  Schema_change.Add_attribute
    { source = "ds"; rel = "R"; attr = Attr.int name; default }

let test_identity () =
  let d = delta_of [] in
  Alcotest.(check bool) "identity" true (Schema_change.Delta.is_identity d);
  Alcotest.(check bool) "schema unchanged" true
    (Schema.equal schema (Schema_change.Delta.apply_schema d schema))

let test_rename_chain_collapses () =
  let d = delta_of [ rename_attr "a" "x"; rename_attr "x" "y" ] in
  Alcotest.(check bool) "a now named y" true
    (Schema_change.Delta.current_name d "a" = Some "y");
  let s' = Schema_change.Delta.apply_schema d schema in
  Alcotest.(check (list string)) "net rename" [ "y"; "b"; "c" ] (Schema.names s')

let test_rename_then_drop_absorbs () =
  let d = delta_of [ rename_attr "a" "x"; drop_attr "x" ] in
  Alcotest.(check bool) "a dropped" true
    (Schema_change.Delta.current_name d "a" = None);
  let s' = Schema_change.Delta.apply_schema d schema in
  Alcotest.(check (list string)) "gone" [ "b"; "c" ] (Schema.names s')

let test_add_then_drop_cancels () =
  let d = delta_of [ add_attr "z" (Value.int 0); drop_attr "z" ] in
  Alcotest.(check bool) "back to identity" true (Schema_change.Delta.is_identity d)

let test_add_then_rename () =
  let d = delta_of [ add_attr "z" (Value.int 7); rename_attr "z" "zz" ] in
  let s' = Schema_change.Delta.apply_schema d schema in
  Alcotest.(check (list string)) "added under final name" [ "a"; "b"; "c"; "zz" ]
    (Schema.names s')

let test_relation_rename_and_drop () =
  let d =
    delta_of
      [ Schema_change.Rename_relation { source = "ds"; old_name = "R"; new_name = "R2" } ]
  in
  Alcotest.(check bool) "renamed" true (d.Schema_change.Delta.new_rel = Some "R2");
  let d2 =
    Schema_change.Delta.step d
      (Schema_change.Drop_relation { source = "ds"; name = "R2" })
  in
  Alcotest.(check bool) "dropped" true (Schema_change.Delta.dropped_relation d2);
  (* applying anything to a dropped relation fails *)
  Alcotest.(check bool) "no further steps" true
    (match Schema_change.Delta.step d2 (rename_attr "a" "q") with
    | _ -> false
    | exception Schema_change.Delta.Inapplicable _ -> true)

let test_inapplicable_steps () =
  let d = delta_of [] in
  let trap sc =
    match Schema_change.Delta.step d sc with
    | _ -> false
    | exception Schema_change.Delta.Inapplicable _ -> true
  in
  Alcotest.(check bool) "rename missing attr" true (trap (rename_attr "zz" "q"));
  Alcotest.(check bool) "rename onto existing" true (trap (rename_attr "a" "b"));
  Alcotest.(check bool) "drop missing" true (trap (drop_attr "zz"));
  Alcotest.(check bool) "add duplicate" true (trap (add_attr "a" (Value.int 0)));
  Alcotest.(check bool) "wrong relation name" true
    (trap (Schema_change.Rename_relation { source = "ds"; old_name = "X"; new_name = "Y" }));
  Alcotest.(check bool) "wrong source" true
    (match
       Schema_change.Delta.step d
         (Schema_change.Drop_attribute { source = "other"; rel = "R"; attr = "a" })
     with
    | _ -> false
    | exception Schema_change.Delta.Inapplicable _ -> true)

let test_project_tuple_section5 () =
  (* The paper's §5 example: "insert (3,4)", "drop first attribute",
     "insert (5)" — the first insert is projected to "(4)". *)
  let schema2 = Schema.of_list [ Attr.int "a"; Attr.int "b" ] in
  let d =
    Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" schema2 [ drop_attr "a" ]
  in
  let projected =
    Schema_change.Delta.project_tuple d schema2 (Tuple.of_list [ Value.int 3; Value.int 4 ])
  in
  Alcotest.(check bool) "(3,4) -> (4)" true
    (Tuple.equal projected (Tuple.of_list [ Value.int 4 ]))

let test_project_tuple_with_default () =
  let d = delta_of [ drop_attr "b"; add_attr "n" (Value.int 99) ] in
  let projected =
    Schema_change.Delta.project_tuple d schema
      (Tuple.of_list [ Value.int 1; Value.int 2; Value.string "x" ])
  in
  Alcotest.(check bool) "(1,2,'x') -> (1,'x',99)" true
    (Tuple.equal projected (Tuple.of_list [ Value.int 1; Value.string "x"; Value.int 99 ]))

let test_project_delta_reaggregates () =
  let schema2 = Schema.of_list [ Attr.int "a"; Attr.int "b" ] in
  let d = Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" schema2 [ drop_attr "a" ] in
  let rel =
    Relation.of_list schema2
      [ [ Value.int 1; Value.int 7 ]; [ Value.int 2; Value.int 7 ] ]
  in
  let p = Schema_change.Delta.project_delta d schema2 rel in
  Alcotest.(check int) "merged under projection" 2
    (Relation.count p (Tuple.of_list [ Value.int 7 ]))

let test_compose_equals_folded () =
  let s1 = [ rename_attr "a" "x"; drop_attr "b" ] in
  (* the second leg must be expressed against the post-s1 schema *)
  let mid_schema = Schema_change.Delta.apply_schema (delta_of s1) schema in
  let s2 =
    [
      Schema_change.Rename_attribute
        { source = "ds"; rel = "R"; old_name = "x"; new_name = "y" };
      Schema_change.Add_attribute
        { source = "ds"; rel = "R"; attr = Attr.int "w"; default = Value.int 0 };
    ]
  in
  let d1 = delta_of s1 in
  let d2 = Schema_change.Delta.of_changes ~source:"ds" ~rel:"R" mid_schema s2 in
  let composed = Schema_change.Delta.compose d1 d2 in
  let folded = delta_of (s1 @ s2) in
  Alcotest.(check bool) "compose = fold" true
    (Schema.equal
       (Schema_change.Delta.apply_schema composed schema)
       (Schema_change.Delta.apply_schema folded schema))

let test_destructive_classification () =
  Alcotest.(check bool) "drop destructive" true
    (Schema_change.destructive (drop_attr "a"));
  Alcotest.(check bool) "rename destructive" true
    (Schema_change.destructive (rename_attr "a" "b2"));
  Alcotest.(check bool) "add not destructive" false
    (Schema_change.destructive (add_attr "n" (Value.int 0)));
  Alcotest.(check bool) "add relation not destructive" false
    (Schema_change.destructive
       (Schema_change.Add_relation { source = "ds"; name = "N"; schema }))

let () =
  Alcotest.run "schema-change"
    [
      ( "delta algebra",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "rename chain collapses" `Quick test_rename_chain_collapses;
          Alcotest.test_case "rename then drop absorbs" `Quick test_rename_then_drop_absorbs;
          Alcotest.test_case "add then drop cancels" `Quick test_add_then_drop_cancels;
          Alcotest.test_case "add then rename" `Quick test_add_then_rename;
          Alcotest.test_case "relation rename/drop" `Quick test_relation_rename_and_drop;
          Alcotest.test_case "inapplicable steps rejected" `Quick test_inapplicable_steps;
          Alcotest.test_case "compose = fold" `Quick test_compose_equals_folded;
        ] );
      ( "DU homogenization (Section 5)",
        [
          Alcotest.test_case "project tuple (paper example)" `Quick test_project_tuple_section5;
          Alcotest.test_case "project with added default" `Quick test_project_tuple_with_default;
          Alcotest.test_case "project delta re-aggregates" `Quick test_project_delta_reaggregates;
        ] );
      ( "classification",
        [ Alcotest.test_case "destructive vs add-only" `Quick test_destructive_classification ] );
    ]
