(* Unit tests for Catalog: source-local metadata and DDL application. *)

open Dyno_relational

let schema = Schema.of_list [ Attr.int "id"; Attr.string "x" ]

let cat () =
  let c = Catalog.create () in
  Catalog.add_relation c "R" schema;
  Catalog.add_relation c "S" (Schema.of_list [ Attr.int "k" ]);
  c

let test_basics () =
  let c = cat () in
  Alcotest.(check (list string)) "relations" [ "R"; "S" ] (Catalog.relations c);
  Alcotest.(check bool) "mem" true (Catalog.mem c "R");
  Alcotest.(check bool) "schema_of" true (Schema.equal schema (Catalog.schema_of c "R"));
  Alcotest.check_raises "missing" (Catalog.No_such_relation "Z") (fun () ->
      ignore (Catalog.schema_of c "Z"));
  Alcotest.check_raises "duplicate add" (Catalog.Relation_exists "R") (fun () ->
      Catalog.add_relation c "R" schema)

let test_apply_rename_relation () =
  let c = cat () in
  Catalog.apply c (Schema_change.Rename_relation { source = "ds"; old_name = "R"; new_name = "R9" });
  Alcotest.(check bool) "old gone" false (Catalog.mem c "R");
  Alcotest.(check bool) "new there" true (Catalog.mem c "R9");
  Alcotest.check_raises "rename onto existing" (Catalog.Relation_exists "S")
    (fun () ->
      Catalog.apply c
        (Schema_change.Rename_relation { source = "ds"; old_name = "R9"; new_name = "S" }))

let test_apply_drop_add_relation () =
  let c = cat () in
  Catalog.apply c (Schema_change.Drop_relation { source = "ds"; name = "S" });
  Alcotest.(check (list string)) "only R" [ "R" ] (Catalog.relations c);
  Catalog.apply c
    (Schema_change.Add_relation { source = "ds"; name = "T"; schema });
  Alcotest.(check bool) "T added" true (Catalog.mem c "T")

let test_apply_attribute_changes () =
  let c = cat () in
  Catalog.apply c
    (Schema_change.Rename_attribute
       { source = "ds"; rel = "R"; old_name = "x"; new_name = "y" });
  Alcotest.(check (list string)) "renamed" [ "id"; "y" ]
    (Schema.names (Catalog.schema_of c "R"));
  Catalog.apply c
    (Schema_change.Add_attribute
       { source = "ds"; rel = "R"; attr = Attr.float "z"; default = Value.float 0.0 });
  Alcotest.(check (list string)) "added" [ "id"; "y"; "z" ]
    (Schema.names (Catalog.schema_of c "R"));
  Catalog.apply c (Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = "y" });
  Alcotest.(check (list string)) "dropped" [ "id"; "z" ]
    (Schema.names (Catalog.schema_of c "R"))

let test_validates () =
  let c = cat () in
  Alcotest.(check bool) "good ddl" true
    (Catalog.validates c
       (Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = "x" }));
  Alcotest.(check bool) "bad ddl" false
    (Catalog.validates c
       (Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = "nope" }));
  (* validates must not mutate *)
  Alcotest.(check bool) "x still there" true (Schema.mem (Catalog.schema_of c "R") "x")

let test_copy_isolation () =
  let c = cat () in
  let c2 = Catalog.copy c in
  Catalog.drop_relation c2 "R";
  Alcotest.(check bool) "original untouched" true (Catalog.mem c "R")

let () =
  Alcotest.run "catalog"
    [
      ( "catalog",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "rename relation" `Quick test_apply_rename_relation;
          Alcotest.test_case "drop/add relation" `Quick test_apply_drop_add_relation;
          Alcotest.test_case "attribute changes" `Quick test_apply_attribute_changes;
          Alcotest.test_case "validates without mutation" `Quick test_validates;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
        ] );
    ]
